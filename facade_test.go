package synscan

// facade_test drives every public wrapper end to end on one small simulated
// year, so the whole API surface is exercised from outside the internal
// packages.

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

var (
	facadeOnce sync.Once
	facade2022 *YearData
	facade2015 *YearData
)

func facadeData(t testing.TB) (*YearData, *YearData) {
	t.Helper()
	facadeOnce.Do(func() {
		var err error
		facade2022, err = Simulate(Config{Year: 2022, Seed: 2, Scale: 0.0005, TelescopeSize: 2048})
		if err != nil {
			panic(err)
		}
		facade2015, err = Simulate(Config{Year: 2015, Seed: 2, Scale: 0.0005, TelescopeSize: 2048})
		if err != nil {
			panic(err)
		}
	})
	return facade2022, facade2015
}

// TestFacadeAnalyzerWorkers: the sharded analyzer must detect the exact same
// campaign multiset as the sequential one, through the public facade.
func TestFacadeAnalyzerWorkers(t *testing.T) {
	stream := makeAblationStream(40000, 2048)
	run := func(opts ...AnalyzerOption) []string {
		a := NewAnalyzer(65536, opts...)
		for i := range stream {
			a.Ingest(&stream[i])
		}
		scans := a.Finish()
		keys := make([]string, len(scans))
		for i, s := range scans {
			keys[i] = fmt.Sprintf("%+v", *s)
		}
		sort.Strings(keys)
		return keys
	}
	want := run()
	for _, w := range []int{1, 2, 4} {
		got := run(WithWorkers(w))
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d scans, sequential %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: scan %d differs:\n got  %s\n want %s", w, i, got[i], want[i])
			}
		}
	}
}

// TestFacadeSimulateWorkers: a simulated year collected with sharded
// detection must agree with the sequential collection on the headline
// aggregates and the campaign multiset.
func TestFacadeSimulateWorkers(t *testing.T) {
	cfg := Config{Year: 2022, Seed: 2, Scale: 0.0003, TelescopeSize: 2048}
	seq, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	par, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.AcceptedPackets != par.AcceptedPackets {
		t.Fatalf("accepted packets differ: %d vs %d", seq.AcceptedPackets, par.AcceptedPackets)
	}
	if len(seq.Scans) != len(par.Scans) {
		t.Fatalf("scan counts differ: %d vs %d", len(seq.Scans), len(par.Scans))
	}
	key := func(yd *YearData) []string {
		out := make([]string, len(yd.Scans))
		for i, s := range yd.Scans {
			out[i] = fmt.Sprintf("%+v|%+v", *s, yd.ScanOrigins[i])
		}
		sort.Strings(out)
		return out
	}
	a, b := key(seq), key(par)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan %d differs:\n seq %s\n par %s", i, a[i], b[i])
		}
	}
}

func TestFacadeVolatility(t *testing.T) {
	yd, _ := facadeData(t)
	res := Volatility(yd)
	if len(res.PacketRatios) == 0 || res.PacketsTwofold <= 0 {
		t.Fatalf("volatility: %+v", res)
	}
}

func TestFacadePortsPerSource(t *testing.T) {
	yd, y15 := facadeData(t)
	f22, f15 := PortsPerSource(yd), PortsPerSource(y15)
	if f22.SinglePortShare >= f15.SinglePortShare {
		t.Fatalf("single-port share must decline: %v -> %v",
			f15.SinglePortShare, f22.SinglePortShare)
	}
}

func TestFacadeToolAndTypeMix(t *testing.T) {
	yd, _ := facadeData(t)
	if rows := ToolMixByPort(yd, 10); len(rows) != 10 {
		t.Fatalf("ToolMixByPort: %d rows", len(rows))
	}
	if rows := TypeMixByPort(yd, 15); len(rows) == 0 {
		t.Fatal("TypeMixByPort empty")
	}
}

func TestFacadeRecurrenceAndSpeed(t *testing.T) {
	yd, _ := facadeData(t)
	rec := Recurrence([]*YearData{yd})
	if len(rec.ScansPerSource[TypeInstitutional]) == 0 {
		t.Fatal("no institutional recurrence")
	}
	rows := SpeedAndCoverage(yd)
	if len(rows) == 0 {
		t.Fatal("no speed rows")
	}
}

func TestFacadeSectionAnalyses(t *testing.T) {
	yd, _ := facadeData(t)
	if r := PortCoverage(yd, 2); r.PrivilegedCoverage <= 0 {
		t.Fatalf("PortCoverage: %+v", r)
	}
	if r := VerticalScans(yd); r.LargestPortCount <= 0 {
		t.Fatalf("VerticalScans: %+v", r)
	}
	if r := ToolSpeeds(yd); len(r.MedianPPS) == 0 {
		t.Fatalf("ToolSpeeds: %+v", r)
	}
	if r := CoverageModes(yd, ToolMasscan); r.Tool != ToolMasscan {
		t.Fatalf("CoverageModes: %+v", r)
	}
	if pr, err := SpeedPortsCorrelation(yd); err != nil || pr.N == 0 {
		t.Fatalf("SpeedPortsCorrelation: %+v %v", pr, err)
	}
	if r := OriginStructure(yd); len(r.TopCountries) == 0 {
		t.Fatalf("OriginStructure: %+v", r)
	}
	if r := InstitutionalBias(yd, 5); r.InstPacketShare <= 0 {
		t.Fatalf("InstitutionalBias: %+v", r)
	}
	if r := BlockableShare(yd); r.Share <= 0 || r.Share > 1 {
		t.Fatalf("BlockableShare: %+v", r)
	}
}

func TestFacadeCollaboration(t *testing.T) {
	yd, _ := facadeData(t)
	groups := DetectCollaboration(yd.QualifiedScans(), CollabConfig{})
	st := SummarizeCollaboration(groups)
	if st.LogicalScans == 0 || st.RawScans < st.LogicalScans {
		t.Fatalf("collab stats: %+v", st)
	}
}

func TestFacadeBlocklistDecay(t *testing.T) {
	res, err := BlocklistDecay(Config{Year: 2022, Seed: 2, Scale: 0.0003, TelescopeSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate[0] != 1 || res.HitRate[1] >= 1 {
		t.Fatalf("hit rates: %v", res.HitRate)
	}
}

func TestFacadeInstitutionalCoverage(t *testing.T) {
	rows, err := InstitutionalCoverage(Config{Year: 2024, Seed: 2, Scale: 0.001, TelescopeSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d orgs", len(rows))
	}
	if rows[0].PortsCovered < rows[len(rows)-1].PortsCovered {
		t.Fatal("rows must be sorted by coverage")
	}
}

func TestFacadeCoverageDelta(t *testing.T) {
	rows, err := InstitutionalCoverageDelta(2, 0.001, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d orgs", len(rows))
	}
}

func TestFacadeVantage(t *testing.T) {
	res, err := CompareVantagePoints(2020, 2, 0.0003, 2048, 11, 22)
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketRatio <= 0 || res.TopPortOverlap < 0 {
		t.Fatalf("vantage: %+v", res)
	}
}

func TestFacadeDisclosure(t *testing.T) {
	res, err := DisclosureResponse(
		Config{Year: 2019, Seed: 2, Scale: 0.0005, TelescopeSize: 2048},
		Disclosure{Day: 10, Port: 7777, PeakPerDay: 50000, DecayDays: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakFactor < 2 {
		t.Fatalf("no surge: %+v", res.PeakFactor)
	}
}
