package synscan

// facade_test drives every public wrapper end to end on one small simulated
// year, so the whole API surface is exercised from outside the internal
// packages.

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

var (
	facadeOnce sync.Once
	facade2022 *YearData
	facade2015 *YearData
)

func facadeData(t testing.TB) (*YearData, *YearData) {
	t.Helper()
	facadeOnce.Do(func() {
		var err error
		facade2022, err = Simulate(Config{Year: 2022, Seed: 2, Scale: 0.0005, TelescopeSize: 2048})
		if err != nil {
			panic(err)
		}
		facade2015, err = Simulate(Config{Year: 2015, Seed: 2, Scale: 0.0005, TelescopeSize: 2048})
		if err != nil {
			panic(err)
		}
	})
	return facade2022, facade2015
}

// TestFacadeAnalyzerWorkers: the sharded analyzer must detect the exact same
// campaign multiset as the sequential one, through the public facade.
func TestFacadeAnalyzerWorkers(t *testing.T) {
	stream := makeAblationStream(40000, 2048)
	run := func(opts ...AnalyzerOption) []string {
		a := NewAnalyzer(65536, opts...)
		for i := range stream {
			a.Ingest(&stream[i])
		}
		scans := a.Finish()
		keys := make([]string, len(scans))
		for i, s := range scans {
			keys[i] = fmt.Sprintf("%+v", *s)
		}
		sort.Strings(keys)
		return keys
	}
	want := run()
	for _, w := range []int{1, 2, 4} {
		got := run(WithWorkers(w))
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d scans, sequential %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: scan %d differs:\n got  %s\n want %s", w, i, got[i], want[i])
			}
		}
	}
}

// TestFacadeSimulateWorkers: a simulated year collected with sharded
// detection must agree with the sequential collection on the headline
// aggregates and the campaign multiset.
func TestFacadeSimulateWorkers(t *testing.T) {
	cfg := Config{Year: 2022, Seed: 2, Scale: 0.0003, TelescopeSize: 2048}
	seq, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	par, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.AcceptedPackets != par.AcceptedPackets {
		t.Fatalf("accepted packets differ: %d vs %d", seq.AcceptedPackets, par.AcceptedPackets)
	}
	if len(seq.Scans) != len(par.Scans) {
		t.Fatalf("scan counts differ: %d vs %d", len(seq.Scans), len(par.Scans))
	}
	key := func(yd *YearData) []string {
		out := make([]string, len(yd.Scans))
		for i, s := range yd.Scans {
			out[i] = fmt.Sprintf("%+v|%+v", *s, yd.ScanOrigins[i])
		}
		sort.Strings(out)
		return out
	}
	a, b := key(seq), key(par)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan %d differs:\n seq %s\n par %s", i, a[i], b[i])
		}
	}
}

// TestFacadeOnScanMatchesFinish: the streaming delivery model must see the
// identical campaign multiset that the accumulating Finish path returns,
// both sequentially and sharded.
func TestFacadeOnScanMatchesFinish(t *testing.T) {
	stream := makeAblationStream(40000, 2048)
	keys := func(scans []*Scan) []string {
		out := make([]string, len(scans))
		for i, s := range scans {
			out[i] = fmt.Sprintf("%+v", *s)
		}
		sort.Strings(out)
		return out
	}
	run := func(opts ...AnalyzerOption) []string {
		a := NewAnalyzer(65536, opts...)
		for i := range stream {
			a.Ingest(&stream[i])
		}
		return keys(a.Finish())
	}
	for _, w := range []int{1, 3} {
		want := run(WithWorkers(w))
		var streamed []*Scan
		a := NewAnalyzer(65536, WithWorkers(w), WithOnScan(func(s *Scan) {
			streamed = append(streamed, s)
		}))
		for i := range stream {
			a.Ingest(&stream[i])
		}
		if got := a.Finish(); got != nil {
			t.Fatalf("workers=%d: Finish returned %d scans despite WithOnScan", w, len(got))
		}
		got := keys(streamed)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: streamed %d scans, Finish path %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: scan %d differs:\n streamed %s\n finish   %s", w, i, got[i], want[i])
			}
		}
	}
}

// TestFacadeAnalyzerStats: Stats must reflect the ingress filter and the
// detector lifecycle without any explicit metrics wiring.
func TestFacadeAnalyzerStats(t *testing.T) {
	stream := makeAblationStream(20000, 2048)
	a := NewAnalyzer(65536, WithWorkers(2))
	var notSYN uint64
	for i := range stream {
		if !stream[i].IsSYN() {
			notSYN++
		}
		a.Ingest(&stream[i])
	}
	scans := a.Finish()
	st := a.Stats()
	if got := st.Counter("analyzer.packets.accepted"); got != uint64(len(stream))-notSYN {
		t.Fatalf("accepted = %d, want %d", got, uint64(len(stream))-notSYN)
	}
	if got := st.Counter("analyzer.drop.not_syn"); got != notSYN {
		t.Fatalf("not_syn = %d, want %d", got, notSYN)
	}
	if got := st.Counter("detector.flows.closed"); got != uint64(len(scans)) {
		t.Fatalf("flows closed = %d, want %d", got, len(scans))
	}
	if _, ok := st.Gauges["detector.shard.queue_depth"]; !ok {
		t.Fatal("sharded analyzer missing queue-depth gauge")
	}

	// An externally supplied registry is used as-is.
	reg := NewMetrics()
	b := NewAnalyzer(65536, WithMetrics(reg))
	b.Ingest(&stream[0])
	if reg.Snapshot().Counter("analyzer.packets.accepted")+reg.Snapshot().Counter("analyzer.drop.not_syn") != 1 {
		t.Fatal("WithMetrics registry not wired")
	}
}

// TestFacadeConfigMetrics: Simulate with Config.Metrics must fill
// YearData.PipelineStats with telescope, detector and stage-timing metrics
// that agree with the YearData aggregates.
func TestFacadeConfigMetrics(t *testing.T) {
	reg := NewMetrics()
	yd, err := Simulate(Config{
		Year: 2016, Seed: 3, Scale: 0.0003, TelescopeSize: 2048,
		Workers: 2, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := yd.PipelineStats
	if got := st.Counter("telescope.packets.accepted"); got != yd.AcceptedPackets {
		t.Fatalf("accepted = %d, want %d", got, yd.AcceptedPackets)
	}
	if got := st.Counter("detector.flows.closed"); got != uint64(len(yd.Scans)) {
		t.Fatalf("flows closed = %d, want %d", got, len(yd.Scans))
	}
	for _, name := range []string{"collect.run_ns", "collect.flush_ns", "collect.finalize_ns"} {
		if st.Histograms[name].Count != 1 {
			t.Fatalf("stage histogram %s count = %d, want 1", name, st.Histograms[name].Count)
		}
	}
	if st.Counter("enrich.cache.hits")+st.Counter("enrich.cache.misses") != uint64(len(yd.Scans)) {
		t.Fatalf("cache hits+misses = %d, want %d lookups",
			st.Counter("enrich.cache.hits")+st.Counter("enrich.cache.misses"), len(yd.Scans))
	}
}

func TestFacadeVolatility(t *testing.T) {
	yd, _ := facadeData(t)
	res := Volatility(yd)
	if len(res.PacketRatios) == 0 || res.PacketsTwofold <= 0 {
		t.Fatalf("volatility: %+v", res)
	}
}

func TestFacadePortsPerSource(t *testing.T) {
	yd, y15 := facadeData(t)
	f22, f15 := PortsPerSource(yd), PortsPerSource(y15)
	if f22.SinglePortShare >= f15.SinglePortShare {
		t.Fatalf("single-port share must decline: %v -> %v",
			f15.SinglePortShare, f22.SinglePortShare)
	}
}

func TestFacadeToolAndTypeMix(t *testing.T) {
	yd, _ := facadeData(t)
	if rows := ToolMixByPort(yd, 10); len(rows) != 10 {
		t.Fatalf("ToolMixByPort: %d rows", len(rows))
	}
	if rows := TypeMixByPort(yd, 15); len(rows) == 0 {
		t.Fatal("TypeMixByPort empty")
	}
}

func TestFacadeRecurrenceAndSpeed(t *testing.T) {
	yd, _ := facadeData(t)
	rec := Recurrence([]*YearData{yd})
	if len(rec.ScansPerSource[TypeInstitutional]) == 0 {
		t.Fatal("no institutional recurrence")
	}
	rows := SpeedAndCoverage(yd)
	if len(rows) == 0 {
		t.Fatal("no speed rows")
	}
}

func TestFacadeSectionAnalyses(t *testing.T) {
	yd, _ := facadeData(t)
	if r := PortCoverage(yd, 2); r.PrivilegedCoverage <= 0 {
		t.Fatalf("PortCoverage: %+v", r)
	}
	if r := VerticalScans(yd); r.LargestPortCount <= 0 {
		t.Fatalf("VerticalScans: %+v", r)
	}
	if r := ToolSpeeds(yd); len(r.MedianPPS) == 0 {
		t.Fatalf("ToolSpeeds: %+v", r)
	}
	if r := CoverageModes(yd, ToolMasscan); r.Tool != ToolMasscan {
		t.Fatalf("CoverageModes: %+v", r)
	}
	if pr, err := SpeedPortsCorrelation(yd); err != nil || pr.N == 0 {
		t.Fatalf("SpeedPortsCorrelation: %+v %v", pr, err)
	}
	if r := OriginStructure(yd); len(r.TopCountries) == 0 {
		t.Fatalf("OriginStructure: %+v", r)
	}
	if r := InstitutionalBias(yd, 5); r.InstPacketShare <= 0 {
		t.Fatalf("InstitutionalBias: %+v", r)
	}
	if r := BlockableShare(yd); r.Share <= 0 || r.Share > 1 {
		t.Fatalf("BlockableShare: %+v", r)
	}
}

func TestFacadeCollaboration(t *testing.T) {
	yd, _ := facadeData(t)
	groups := DetectCollaboration(yd.QualifiedScans(), CollabConfig{})
	st := SummarizeCollaboration(groups)
	if st.LogicalScans == 0 || st.RawScans < st.LogicalScans {
		t.Fatalf("collab stats: %+v", st)
	}
}

func TestFacadeBlocklistDecay(t *testing.T) {
	res, err := BlocklistDecay(Config{Year: 2022, Seed: 2, Scale: 0.0003, TelescopeSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate[0] != 1 || res.HitRate[1] >= 1 {
		t.Fatalf("hit rates: %v", res.HitRate)
	}
}

func TestFacadeInstitutionalCoverage(t *testing.T) {
	rows, err := InstitutionalCoverage(Config{Year: 2024, Seed: 2, Scale: 0.001, TelescopeSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d orgs", len(rows))
	}
	if rows[0].PortsCovered < rows[len(rows)-1].PortsCovered {
		t.Fatal("rows must be sorted by coverage")
	}
}

func TestFacadeCoverageDelta(t *testing.T) {
	rows, err := InstitutionalCoverageDelta(2, 0.001, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d orgs", len(rows))
	}
}

func TestFacadeVantage(t *testing.T) {
	res, err := CompareVantagePoints(2020, 2, 0.0003, 2048, 11, 22)
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketRatio <= 0 || res.TopPortOverlap < 0 {
		t.Fatalf("vantage: %+v", res)
	}
}

func TestFacadeDisclosure(t *testing.T) {
	res, err := DisclosureResponse(
		Config{Year: 2019, Seed: 2, Scale: 0.0005, TelescopeSize: 2048},
		Disclosure{Day: 10, Port: 7777, PeakPerDay: 50000, DecayDays: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakFactor < 2 {
		t.Fatalf("no surge: %+v", res.PeakFactor)
	}
}
