package synscan

// cli_test builds the three command binaries and drives them end to end:
// syntelescope produces a pcap, synalyze analyzes it, syneval regenerates a
// selected experiment. Run with -short to skip (it shells out to the Go
// toolchain).

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	dir := t.TempDir()
	syntelescope := buildTool(t, dir, "syntelescope")
	synalyze := buildTool(t, dir, "synalyze")
	syneval := buildTool(t, dir, "syneval")

	pcapPath := filepath.Join(dir, "capture.pcap")
	out, err := exec.Command(syntelescope,
		"-year", "2019", "-seed", "4", "-scale", "0.0003",
		"-telescope", "2048", "-out", pcapPath).CombinedOutput()
	if err != nil {
		t.Fatalf("syntelescope: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "accepted") {
		t.Fatalf("syntelescope output:\n%s", out)
	}
	if fi, err := os.Stat(pcapPath); err != nil || fi.Size() < 1000 {
		t.Fatalf("pcap not written: %v", err)
	}

	out, err = exec.Command(synalyze, "-telescope", "2048", pcapPath).CombinedOutput()
	if err != nil {
		t.Fatalf("synalyze: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"qualified campaigns", "campaigns by tool", "top ports by packets"} {
		if !strings.Contains(s, want) {
			t.Fatalf("synalyze output missing %q:\n%s", want, s)
		}
	}
	// The capture must contain detectable campaigns.
	if strings.Contains(s, "qualified campaigns 0\n") {
		t.Fatalf("no campaigns detected from pcap:\n%s", s)
	}

	// Spool format round trip: write a flowlog spool and analyze it with
	// the telescope size auto-read from the header.
	spoolPath := filepath.Join(dir, "capture.spool")
	out, err = exec.Command(syntelescope,
		"-year", "2019", "-seed", "4", "-scale", "0.0003",
		"-telescope", "2048", "-format", "spool", "-out", spoolPath).CombinedOutput()
	if err != nil {
		t.Fatalf("syntelescope spool: %v\n%s", err, out)
	}
	pcapInfo, _ := os.Stat(pcapPath)
	spoolInfo, err := os.Stat(spoolPath)
	if err != nil {
		t.Fatalf("spool not written: %v", err)
	}
	if spoolInfo.Size() >= pcapInfo.Size() {
		t.Fatalf("spool (%d B) not denser than pcap (%d B)", spoolInfo.Size(), pcapInfo.Size())
	}
	outSpool, err := exec.Command(synalyze, spoolPath).CombinedOutput()
	if err != nil {
		t.Fatalf("synalyze spool: %v\n%s", err, outSpool)
	}
	// Same capture, same analysis: the qualified-campaign line must match
	// the pcap run's.
	lineOf := func(s, prefix string) string {
		for _, l := range strings.Split(s, "\n") {
			if strings.Contains(l, prefix) {
				return l
			}
		}
		return ""
	}
	if a, b := lineOf(s, "qualified campaigns"), lineOf(string(outSpool), "qualified campaigns"); a != b || a == "" {
		t.Fatalf("pcap and spool analyses disagree:\n pcap:  %q\n spool: %q", a, b)
	}

	out, err = exec.Command(syneval,
		"-seed", "4", "-scale", "0.0002", "-telescope", "2048",
		"-only", "fig8").CombinedOutput()
	if err != nil {
		t.Fatalf("syneval: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Censys") {
		t.Fatalf("syneval fig8 output missing orgs:\n%s", out)
	}

	// pcapng round trip: write a pcapng capture and analyze it.
	ngPath := filepath.Join(dir, "capture.pcapng")
	out, err = exec.Command(syntelescope,
		"-year", "2019", "-seed", "4", "-scale", "0.0003",
		"-telescope", "2048", "-format", "pcapng", "-out", ngPath).CombinedOutput()
	if err != nil {
		t.Fatalf("syntelescope pcapng: %v\n%s", err, out)
	}
	outNG, err := exec.Command(synalyze, "-telescope", "2048", ngPath).CombinedOutput()
	if err != nil {
		t.Fatalf("synalyze pcapng: %v\n%s", err, outNG)
	}

	// Structured exports: JSON + CSV + Markdown in one invocation.
	jsonPath := filepath.Join(dir, "eval.json")
	csvDir := filepath.Join(dir, "csv")
	mdPath := filepath.Join(dir, "eval.md")
	out, err = exec.Command(syneval,
		"-seed", "4", "-scale", "0.0001", "-telescope", "2048",
		"-json", jsonPath, "-csv", csvDir, "-markdown", mdPath).CombinedOutput()
	if err != nil {
		t.Fatalf("syneval exports: %v\n%s", err, out)
	}
	j, err := os.ReadFile(jsonPath)
	if err != nil || !strings.Contains(string(j), "\"table1\"") {
		t.Fatalf("json export: %v", err)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "table1.csv")); err != nil {
		t.Fatalf("csv export: %v", err)
	}
	md, err := os.ReadFile(mdPath)
	if err != nil || !strings.Contains(string(md), "# synscan evaluation") {
		t.Fatalf("markdown export: %v", err)
	}
}

// TestCLIMetricsJSON: the -metrics sink must emit the stable JSON snapshot
// schema ({counters, gauges, histograms}) covering the telescope-style
// ingress counters, the detector lifecycle, and — with -workers — the shard
// queues, with values consistent with each other.
func TestCLIMetricsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	dir := t.TempDir()
	syntelescope := buildTool(t, dir, "syntelescope")
	synalyze := buildTool(t, dir, "synalyze")

	pcapPath := filepath.Join(dir, "capture.pcap")
	telMetrics := filepath.Join(dir, "tel-metrics.json")
	out, err := exec.Command(syntelescope,
		"-year", "2019", "-seed", "4", "-scale", "0.0003",
		"-telescope", "2048", "-out", pcapPath, "-metrics", telMetrics).CombinedOutput()
	if err != nil {
		t.Fatalf("syntelescope: %v\n%s", err, out)
	}

	type snapshot struct {
		Counters   map[string]uint64          `json:"counters"`
		Gauges     map[string]int64           `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	load := func(path string) snapshot {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var s snapshot
		if err := json.Unmarshal(raw, &s); err != nil {
			t.Fatalf("metrics JSON unparseable: %v\n%s", err, raw)
		}
		return s
	}

	tel := load(telMetrics)
	if tel.Counters["telescope.packets.accepted"] == 0 {
		t.Fatalf("syntelescope metrics missing accepted packets: %+v", tel.Counters)
	}
	if len(tel.Histograms) == 0 {
		t.Fatal("syntelescope metrics missing stage histograms")
	}

	anaMetrics := filepath.Join(dir, "ana-metrics.json")
	out, err = exec.Command(synalyze,
		"-telescope", "2048", "-workers", "2",
		"-metrics", anaMetrics, pcapPath).CombinedOutput()
	if err != nil {
		t.Fatalf("synalyze: %v\n%s", err, out)
	}
	ana := load(anaMetrics)
	accepted := ana.Counters["telescope.packets.accepted"]
	if accepted == 0 {
		t.Fatalf("no accepted packets counted: %+v", ana.Counters)
	}
	if got := ana.Counters["detector.packets"]; got != accepted {
		t.Fatalf("detector.packets = %d, accepted = %d", got, accepted)
	}
	for _, name := range []string{"detector.flows.opened", "detector.flows.closed", "detector.shard.batches"} {
		if ana.Counters[name] == 0 {
			t.Fatalf("counter %s missing/zero: %+v", name, ana.Counters)
		}
	}
	if ana.Counters["detector.flows.opened"] != ana.Counters["detector.flows.closed"] {
		t.Fatalf("opened %d != closed %d after final flush",
			ana.Counters["detector.flows.opened"], ana.Counters["detector.flows.closed"])
	}
	if _, ok := ana.Gauges["detector.shard.queue_depth"]; !ok {
		t.Fatalf("shard queue-depth gauge missing: %+v", ana.Gauges)
	}
	for _, name := range []string{"detector.shard.batch_fill", "replay.read_ns"} {
		if _, ok := ana.Histograms[name]; !ok {
			t.Fatalf("histogram %s missing", name)
		}
	}
}

func TestCLISynalyzeBadInput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	dir := t.TempDir()
	synalyze := buildTool(t, dir, "synalyze")
	bad := filepath.Join(dir, "not.pcap")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(synalyze, bad).CombinedOutput(); err == nil {
		t.Fatalf("garbage input accepted:\n%s", out)
	}
}
