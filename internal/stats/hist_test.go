package stats

import (
	"math"
	"testing"
)

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Fatalf("Under = %d", h.Under)
	}
	if h.Over != 2 {
		t.Fatalf("Over = %d", h.Over)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
	// 0,1.9 in bin0; 2 in bin1; 5 in bin2; 9.99 in bin4.
	want := []uint64{2, 1, 1, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if bc := h.BinCenter(0); !almost(bc, 1, 1e-12) {
		t.Fatalf("BinCenter(0) = %v", bc)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero bins")
		}
	}()
	NewHistogram(0, 1, 0)
}

func TestLogHistogram(t *testing.T) {
	l := NewLogHistogram(0, 3, 1) // [1,10), [10,100), [100,1000)
	for _, x := range []float64{0, -5, 0.5, 1, 9, 10, 99, 500, 1e9} {
		l.Add(x)
	}
	if l.Under != 3 { // 0, -5, 0.5
		t.Fatalf("Under = %d", l.Under)
	}
	if l.Counts[0] != 2 || l.Counts[1] != 2 || l.Counts[2] != 2 {
		t.Fatalf("Counts = %v", l.Counts)
	}
	if l.Total() != 9 {
		t.Fatalf("Total = %d", l.Total())
	}
	if lo := l.BinLower(1); !almost(lo, 10, 1e-9) {
		t.Fatalf("BinLower(1) = %v", lo)
	}
}

func TestLogHistogramPerDecade(t *testing.T) {
	l := NewLogHistogram(0, 1, 2) // [1, sqrt10), [sqrt10, 10)
	l.Add(2)
	l.Add(5)
	if l.Counts[0] != 1 || l.Counts[1] != 1 {
		t.Fatalf("Counts = %v", l.Counts)
	}
	if lo := l.BinLower(1); !almost(lo, math.Sqrt(10), 1e-9) {
		t.Fatalf("BinLower(1) = %v", lo)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter[uint16]()
	c.Inc(80)
	c.Inc(80)
	c.Add(443, 5)
	c.Inc(22)
	if c.Get(80) != 2 || c.Get(443) != 5 || c.Get(9999) != 0 {
		t.Fatal("Get mismatch")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Total() != 8 {
		t.Fatalf("Total = %d", c.Total())
	}
	top := c.TopK(2)
	if len(top) != 2 || top[0].Key != 443 || top[1].Key != 80 {
		t.Fatalf("TopK = %v", top)
	}
	if s := c.Share(443); !almost(s, 5.0/8.0, 1e-12) {
		t.Fatalf("Share = %v", s)
	}
	if got := len(c.Keys()); got != 3 {
		t.Fatalf("Keys len = %d", got)
	}
}

func TestCounterTopKDeterministicTies(t *testing.T) {
	// Ties are broken by formatted key, so repeated runs over the same data
	// must yield the identical ranking regardless of map iteration order.
	var first []KV[int]
	for trial := 0; trial < 10; trial++ {
		c := NewCounter[int]()
		for k := 0; k < 20; k++ {
			c.Add(k, 7) // all tied
		}
		top := c.TopK(5)
		if first == nil {
			first = top
			continue
		}
		for i := range top {
			if top[i] != first[i] {
				t.Fatalf("tie-break not deterministic: %v vs %v", top, first)
			}
		}
	}
}

func TestCounterTopKOverflow(t *testing.T) {
	c := NewCounter[string]()
	c.Inc("a")
	if got := c.TopK(10); len(got) != 1 {
		t.Fatalf("TopK beyond size = %v", got)
	}
	empty := NewCounter[string]()
	if s := empty.Share("x"); s != 0 {
		t.Fatalf("empty Share = %v", s)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if !almost(w.Mean(), Mean(xs), 1e-12) {
		t.Fatalf("Mean = %v", w.Mean())
	}
	if !almost(w.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("Variance = %v want %v", w.Variance(), Variance(xs))
	}
	if !almost(w.StdDev(), math.Sqrt(Variance(xs)), 1e-9) {
		t.Fatalf("StdDev = %v", w.StdDev())
	}
	var empty Welford
	if empty.Variance() != 0 || empty.Mean() != 0 {
		t.Fatal("empty Welford")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter[uint16]()
	for i := 0; i < b.N; i++ {
		c.Inc(uint16(i & 1023))
	}
}

func BenchmarkKS2Sample(b *testing.B) {
	a := make([]float64, 1000)
	c := make([]float64, 1000)
	for i := range a {
		a[i] = float64(i)
		c[i] = float64(i) + 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = KS2Sample(a, c)
	}
}
