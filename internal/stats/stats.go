// Package stats implements the statistical machinery the paper's analyses
// rely on: empirical CDFs, the two-sample Kolmogorov–Smirnov test (used in
// §4.3 to verify that post-disclosure scanning returns to the baseline
// distribution), Pearson correlation with significance (used throughout §5
// and §6), histograms and streaming moments.
//
// Everything is implemented from scratch on top of the standard library so
// the module stays dependency-free.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrTooFewSamples is returned when a test is given fewer observations than
// it can draw a conclusion from.
var ErrTooFewSamples = errors.New("stats: too few samples")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs (by sorting a copy).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics. It copies and sorts the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	return quantileSorted(c, q)
}

// QuantileSorted is Quantile over an already-sorted sample, skipping the
// copy-and-sort — for callers (the query engine's per-group quantile
// aggregates) that sort once and evaluate many quantiles.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// ECDF is an empirical cumulative distribution function over a fixed sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied.
func NewECDF(xs []float64) *ECDF {
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	return &ECDF{sorted: c}
}

// At returns P(X <= x) under the empirical distribution.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Number of samples <= x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile of the sample.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return quantileSorted(e.sorted, q)
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Points returns (x, F(x)) pairs suitable for plotting the CDF as a step
// function, deduplicated on x.
func (e *ECDF) Points() (xs, fs []float64) {
	n := len(e.sorted)
	for i := 0; i < n; {
		j := i
		for j < n && e.sorted[j] == e.sorted[i] {
			j++
		}
		xs = append(xs, e.sorted[i])
		fs = append(fs, float64(j)/float64(n))
		i = j
	}
	return xs, fs
}

// KSResult is the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the KS statistic: the supremum distance between the two ECDFs.
	D float64
	// P is the asymptotic p-value for the null hypothesis that both samples
	// come from the same distribution.
	P float64
	// N1, N2 are the sample sizes.
	N1, N2 int
}

// SameDistribution reports whether the null hypothesis survives at the given
// significance level alpha (commonly 0.05): true means "no evidence the
// distributions differ".
func (k KSResult) SameDistribution(alpha float64) bool { return k.P > alpha }

// KS2Sample performs the two-sample Kolmogorov–Smirnov test. This is the test
// the paper uses to verify that, weeks after a vulnerability disclosure, the
// port-activity distribution has returned to "normal" (§4.3).
func KS2Sample(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, ErrTooFewSamples
	}
	x := make([]float64, len(a))
	y := make([]float64, len(b))
	copy(x, a)
	copy(y, b)
	sort.Float64s(x)
	sort.Float64s(y)

	var d float64
	i, j := 0, 0
	n1, n2 := float64(len(x)), float64(len(y))
	for i < len(x) && j < len(y) {
		var v float64
		if x[i] <= y[j] {
			v = x[i]
		} else {
			v = y[j]
		}
		for i < len(x) && x[i] <= v {
			i++
		}
		for j < len(y) && y[j] <= v {
			j++
		}
		diff := math.Abs(float64(i)/n1 - float64(j)/n2)
		if diff > d {
			d = diff
		}
	}
	ne := n1 * n2 / (n1 + n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, P: ksProb(lambda), N1: len(a), N2: len(b)}, nil
}

// ksProb evaluates the Kolmogorov distribution tail
// Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	l2 := lambda * lambda
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*l2)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// PearsonResult is a correlation coefficient with its significance.
type PearsonResult struct {
	// R is the Pearson product-moment correlation coefficient.
	R float64
	// P is the two-sided p-value from the t distribution with n-2 degrees
	// of freedom under the null hypothesis of zero correlation.
	P float64
	// N is the number of paired observations.
	N int
}

// Pearson computes the Pearson correlation between paired samples x and y.
// The paper reports, e.g., R = 0.88 (p < 0.05) between scan speed and number
// of ports targeted (§5.3) and R = 0.047 between service population and
// scanning intensity (§5.1).
func Pearson(x, y []float64) (PearsonResult, error) {
	if len(x) != len(y) {
		return PearsonResult{}, errors.New("stats: Pearson requires equal-length samples")
	}
	n := len(x)
	if n < 3 {
		return PearsonResult{}, ErrTooFewSamples
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return PearsonResult{R: 0, P: 1, N: n}, nil
	}
	r := sxy / math.Sqrt(sxx*syy)
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	// t statistic with n-2 df.
	df := float64(n - 2)
	denom := 1 - r*r
	var p float64
	if denom <= 0 {
		p = 0
	} else {
		t := r * math.Sqrt(df/denom)
		p = 2 * studentTTail(math.Abs(t), df)
	}
	return PearsonResult{R: r, P: p, N: n}, nil
}

// studentTTail returns P(T > t) for Student's t with df degrees of freedom,
// via the regularized incomplete beta function.
func studentTTail(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func betacf(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 3e-14
	const fpmin = 1e-300

	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
