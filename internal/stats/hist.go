package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-bin linear histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []uint64
	// Under and Over count samples outside [Min, Max).
	Under, Over uint64
	total       uint64
}

// NewHistogram creates a histogram with bins equal-width bins over
// [min, max). It panics if bins <= 0 or max <= min.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if max <= min {
		panic("stats: histogram needs max > min")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]uint64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Min:
		h.Under++
	case x >= h.Max:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Min) / (h.Max - h.Min))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations, including out-of-range ones.
func (h *Histogram) Total() uint64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + w*(float64(i)+0.5)
}

// LogHistogram buckets positive values into logarithmically spaced bins,
// which is how the paper presents speed distributions that span six orders
// of magnitude.
type LogHistogram struct {
	// base-10 exponent of the first bin's lower edge.
	MinExp int
	// bins per decade.
	PerDecade int
	Counts    []uint64
	Under     uint64
	total     uint64
}

// NewLogHistogram buckets [10^minExp, 10^maxExp) with perDecade bins per
// factor of ten.
func NewLogHistogram(minExp, maxExp, perDecade int) *LogHistogram {
	if maxExp <= minExp || perDecade <= 0 {
		panic("stats: invalid log histogram shape")
	}
	return &LogHistogram{
		MinExp:    minExp,
		PerDecade: perDecade,
		Counts:    make([]uint64, (maxExp-minExp)*perDecade),
	}
}

// Add records one observation; non-positive and below-range values count as
// Under, above-range values clamp to the last bin.
func (l *LogHistogram) Add(x float64) {
	l.total++
	if x <= 0 {
		l.Under++
		return
	}
	pos := (math.Log10(x) - float64(l.MinExp)) * float64(l.PerDecade)
	if pos < 0 {
		l.Under++
		return
	}
	i := int(pos)
	if i >= len(l.Counts) {
		i = len(l.Counts) - 1
	}
	l.Counts[i]++
}

// Total returns the number of observations.
func (l *LogHistogram) Total() uint64 { return l.total }

// BinLower returns the lower edge of bin i.
func (l *LogHistogram) BinLower(i int) float64 {
	return math.Pow(10, float64(l.MinExp)+float64(i)/float64(l.PerDecade))
}

// Counter tallies occurrences of comparable keys and reports top-k rankings;
// the workhorse behind every "top ports by ..." table.
type Counter[K comparable] struct {
	m map[K]uint64
}

// NewCounter returns an empty counter.
func NewCounter[K comparable]() *Counter[K] {
	return &Counter[K]{m: make(map[K]uint64)}
}

// Add increments key by n.
func (c *Counter[K]) Add(key K, n uint64) { c.m[key] += n }

// Inc increments key by one.
func (c *Counter[K]) Inc(key K) { c.m[key]++ }

// Get returns the count for key.
func (c *Counter[K]) Get(key K) uint64 { return c.m[key] }

// Len returns the number of distinct keys.
func (c *Counter[K]) Len() int { return len(c.m) }

// Total returns the sum of all counts.
func (c *Counter[K]) Total() uint64 {
	var t uint64
	for _, v := range c.m {
		t += v
	}
	return t
}

// KV is a key with its count.
type KV[K comparable] struct {
	Key   K
	Count uint64
}

// TopK returns the k highest-count entries, ties broken by insertion-
// independent key order (formatted key string) so results are deterministic.
func (c *Counter[K]) TopK(k int) []KV[K] {
	all := make([]KV[K], 0, len(c.m))
	for key, v := range c.m {
		all = append(all, KV[K]{key, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return fmt.Sprint(all[i].Key) < fmt.Sprint(all[j].Key)
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// Share returns key's count as a fraction of the total (0 if empty).
func (c *Counter[K]) Share(key K) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.m[key]) / float64(t)
}

// Keys returns all keys in unspecified order.
func (c *Counter[K]) Keys() []K {
	ks := make([]K, 0, len(c.m))
	for k := range c.m {
		ks = append(ks, k)
	}
	return ks
}

// Welford tracks streaming mean and variance without storing samples.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running unbiased variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
