package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Fatalf("Mean = %v", m)
	}
	if v := Variance(xs); !almost(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/singleton edge cases")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	if Quantile([]float64{7}, 0.3) != 7 {
		t.Fatal("singleton quantile")
	}
	// Quantile must not mutate its input.
	in := []float64{3, 1, 2}
	Quantile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("Median = %v", m)
	}
	if m := Median([]float64{1, 2, 3, 4}); !almost(m, 2.5, 1e-12) {
		t.Fatalf("Median = %v", m)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almost(got, c.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Fatal("Len")
	}
	xs, fs := e.Points()
	if len(xs) != 3 || xs[1] != 2 || !almost(fs[1], 0.75, 1e-12) {
		t.Fatalf("Points = %v %v", xs, fs)
	}
	if q := e.Quantile(0.5); !almost(q, 2, 1e-12) {
		t.Fatalf("ECDF quantile = %v", q)
	}
}

func TestECDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewECDF(raw)
		prev := -1.0
		for _, x := range []float64{-1e9, -1, 0, 1, 1e9} {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKSSameDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
	}
	res, err := KS2Sample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SameDistribution(0.05) {
		t.Fatalf("identical distributions rejected: D=%v p=%v", res.D, res.P)
	}
}

func TestKSDifferentDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64() + 1.0 // shifted
	}
	res, err := KS2Sample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.SameDistribution(0.05) {
		t.Fatalf("shifted distribution not detected: D=%v p=%v", res.D, res.P)
	}
	if res.D < 0.3 {
		t.Fatalf("D = %v, expected large separation", res.D)
	}
}

func TestKSStatisticExact(t *testing.T) {
	// a entirely below b: D must be 1.
	res, err := KS2Sample([]float64{1, 2, 3}, []float64{10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.D, 1, 1e-12) {
		t.Fatalf("D = %v, want 1", res.D)
	}
	if res.P > 0.1 {
		t.Fatalf("P = %v, want small", res.P)
	}
}

func TestKSEmpty(t *testing.T) {
	if _, err := KS2Sample(nil, []float64{1}); err == nil {
		t.Fatal("expected error for empty sample")
	}
}

func TestKSProbBounds(t *testing.T) {
	if p := ksProb(0); p != 1 {
		t.Fatalf("ksProb(0) = %v", p)
	}
	if p := ksProb(10); p > 1e-10 {
		t.Fatalf("ksProb(10) = %v", p)
	}
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		p := ksProb(l)
		if p < 0 || p > 1 || p > prev+1e-9 {
			t.Fatalf("ksProb not monotone in [0,1]: l=%v p=%v prev=%v", l, p, prev)
		}
		prev = p
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2, 4, 6, 8, 10, 12}
	res, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.R, 1, 1e-9) {
		t.Fatalf("R = %v, want 1", res.R)
	}
	if res.P > 1e-6 {
		t.Fatalf("P = %v, want ~0", res.P)
	}
}

func TestPearsonNegative(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 8, 6, 4, 2}
	res, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.R, -1, 1e-9) {
		t.Fatalf("R = %v, want -1", res.R)
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 5000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
		y[i] = r.NormFloat64()
	}
	res, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.R) > 0.05 {
		t.Fatalf("R = %v for independent samples", res.R)
	}
	if res.P < 0.01 {
		t.Fatalf("P = %v, should not be significant", res.P)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	// Hand-computed example: r for these five pairs is 0.9058...
	x := []float64{43, 21, 25, 42, 57, 59}
	y := []float64{99, 65, 79, 75, 87, 81}
	res, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.R, 0.5298, 0.001) {
		t.Fatalf("R = %v, want ~0.5298", res.R)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1, 2}); err != ErrTooFewSamples {
		t.Fatal("n<3 should return ErrTooFewSamples")
	}
	// Constant input: R defined as 0.
	res, err := Pearson([]float64{1, 1, 1, 1}, []float64{1, 2, 3, 4})
	if err != nil || res.R != 0 || res.P != 1 {
		t.Fatalf("constant input: %+v, %v", res, err)
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := regIncBeta(1, 1, x); !almost(got, x, 1e-9) {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = 3x^2 - 2x^3.
	x := 0.3
	want := 3*x*x - 2*x*x*x
	if got := regIncBeta(2, 2, x); !almost(got, want, 1e-9) {
		t.Fatalf("I_0.3(2,2) = %v, want %v", got, want)
	}
}

func TestStudentTTail(t *testing.T) {
	// For df -> large, t=1.96 should give ~0.025.
	if got := studentTTail(1.96, 10000); !almost(got, 0.025, 0.001) {
		t.Fatalf("tail(1.96, 1e4) = %v", got)
	}
	if got := studentTTail(0, 5); !almost(got, 0.5, 1e-12) {
		t.Fatalf("tail(0) = %v", got)
	}
}
