package pcapng

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"github.com/synscan/synscan/internal/faultinject"
)

// FuzzReader hardens the pcapng block parser, in both fail-fast and resync
// modes: arbitrary bytes must never panic or loop, and resync mode must
// always terminate with io.EOF rather than an error.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1)
	if err != nil {
		f.Fatal(err)
	}
	w.WritePacket(1e9, []byte{1, 2, 3})
	w.WritePacket(2e9, bytes.Repeat([]byte{9}, 60))
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:12])
	f.Add(valid[:len(valid)-3])
	b := newBuilder(binary.LittleEndian)
	b.sectionHeader()
	b.interfaceDesc(1, nil)
	b.enhancedPacket(0, 1, []byte{1, 2, 3})
	handBuilt := b.buf.Bytes()
	f.Add(handBuilt)
	f.Add(handBuilt[:13])
	// Seeded fault-injection corpora: scattered flips past the magic, and a
	// corrupting-reader pass over the whole stream.
	for seed := uint64(1); seed <= 3; seed++ {
		flipped := append([]byte{}, valid...)
		faultinject.FlipBytes(flipped, seed, 4*int(seed), 4, 0)
		f.Add(flipped)
		noisy, err := io.ReadAll(faultinject.NewReader(bytes.NewReader(valid), faultinject.ReaderConfig{
			Seed: seed, CorruptRate: 0.01 * float64(seed), CorruptStart: 4,
		}))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(noisy)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, opts := range [][]ReaderOption{nil, {WithResync()}} {
			r, err := NewReader(bytes.NewReader(data), opts...)
			if err != nil {
				continue
			}
			for i := 0; i < 10000; i++ {
				_, _, _, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					if len(opts) > 0 {
						t.Fatalf("resync reader surfaced %v", err)
					}
					break
				}
			}
		}
	})
}
