// Package pcapng reads the pcapng capture format (the Wireshark default),
// so synalyze accepts modern captures alongside classic pcap and flowlog
// spools. Only reading is implemented — the repository's writers emit
// classic pcap (universally consumable) or flowlog (compact).
//
// Supported blocks: Section Header (endianness detection, per-section),
// Interface Description (link type, if_tsresol option), Enhanced Packet and
// Simple Packet. All other block types are skipped, as the spec prescribes
// for unknown blocks.
package pcapng

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/synscan/synscan/internal/obs"
)

// Block type codes.
const (
	blockSectionHeader uint32 = 0x0A0D0D0A
	blockInterfaceDesc uint32 = 0x00000001
	blockSimplePacket  uint32 = 0x00000003
	blockEnhancedPkt   uint32 = 0x00000006

	byteOrderMagic uint32 = 0x1A2B3C4D
)

// Magic is the first four bytes of any pcapng stream (the SHB type code,
// endianness-independent).
var Magic = [4]byte{0x0A, 0x0D, 0x0D, 0x0A}

// Errors.
var (
	ErrBadMagic  = errors.New("pcapng: not a pcapng stream")
	ErrCorrupted = errors.New("pcapng: corrupted block structure")
)

// iface is one Interface Description Block's decoded state.
type iface struct {
	linkType uint16
	// tsDivisor converts timestamp units to nanoseconds: ns = units * nsPerUnit.
	nsPerUnit uint64
}

// Reader reads packets from a pcapng stream.
type Reader struct {
	r      *bufio.Reader
	order  binary.ByteOrder
	ifaces []iface
	buf    []byte
	seen   bool // a section header has been read

	resync   bool
	resyncs  uint64
	skipped  uint64
	mResyncs *obs.Counter
	mSkipped *obs.Counter
}

// ReaderOption configures a Reader.
type ReaderOption func(*Reader)

// WithResync makes the reader recover from in-stream corruption instead of
// failing: a block that fails its structural checks (length bounds,
// trailer-length mismatch, malformed body) triggers a forward scan to the
// next 8-byte boundary that looks like a known block type with a sane total
// length, and a block cut off at end of stream is dropped with a clean
// io.EOF. Skipped spans are counted in Resyncs/SkippedBytes and the
// faults.pcapng.* metrics.
func WithResync() ReaderOption {
	return func(r *Reader) { r.resync = true }
}

// NewReader validates that r starts with a Section Header Block and returns
// a packet reader.
func NewReader(r io.Reader, opts ...ReaderOption) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(4)
	if err != nil {
		return nil, ErrBadMagic
	}
	if [4]byte(head) != Magic {
		return nil, ErrBadMagic
	}
	rd := &Reader{r: br}
	for _, o := range opts {
		o(rd)
	}
	rd.SetMetrics(nil)
	return rd, nil
}

// SetMetrics wires the reader's fault instrumentation (resyncs performed,
// bytes skipped while resyncing). A nil registry disables it.
func (r *Reader) SetMetrics(reg *obs.Registry) {
	r.mResyncs = reg.Counter("faults.pcapng.resyncs")
	r.mSkipped = reg.Counter("faults.pcapng.skipped_bytes")
}

// Resyncs returns how many corruption recoveries a WithResync reader has
// performed.
func (r *Reader) Resyncs() uint64 { return r.resyncs }

// SkippedBytes returns how many bytes a WithResync reader has discarded
// while scanning for block boundaries.
func (r *Reader) SkippedBytes() uint64 { return r.skipped }

// LinkType returns the link type of interface id, or 0 if unknown.
func (r *Reader) LinkType(id int) uint16 {
	if id < 0 || id >= len(r.ifaces) {
		return 0
	}
	return r.ifaces[id].linkType
}

// Next returns the next packet's timestamp (ns), its data, and the capture
// interface id. The data slice is reused across calls. io.EOF signals a
// clean end of stream.
func (r *Reader) Next() (tsNanos int64, data []byte, ifaceID int, err error) {
	for {
		ts, pkt, id, err := r.nextPacket()
		if err == nil || !r.resync {
			return ts, pkt, id, err
		}
		switch {
		case errors.Is(err, ErrCorrupted):
			if !r.resyncScan() {
				return 0, nil, 0, io.EOF
			}
		case errors.Is(err, io.ErrUnexpectedEOF):
			// A block cut off at end of stream: nothing left to scan.
			return 0, nil, 0, io.EOF
		default:
			return 0, nil, 0, err
		}
	}
}

// nextPacket returns the next packet, failing fast on structural damage;
// Next layers resync recovery on top when enabled.
func (r *Reader) nextPacket() (tsNanos int64, data []byte, ifaceID int, err error) {
	for {
		body, typ, err := r.nextBlock()
		if err != nil {
			return 0, nil, 0, err
		}
		switch typ {
		case blockSectionHeader:
			if err := r.parseSection(body); err != nil {
				return 0, nil, 0, err
			}
		case blockInterfaceDesc:
			if err := r.parseInterface(body); err != nil {
				return 0, nil, 0, err
			}
		case blockEnhancedPkt:
			ts, pkt, id, err := r.parseEnhanced(body)
			if err != nil {
				return 0, nil, 0, err
			}
			return ts, pkt, id, nil
		case blockSimplePacket:
			if len(body) < 4 {
				return 0, nil, 0, ErrCorrupted
			}
			n := int(r.order.Uint32(body[0:4]))
			if n > len(body)-4 {
				n = len(body) - 4
			}
			return 0, body[4 : 4+n], 0, nil
		default:
			// Skip unknown block types.
		}
	}
}

// plausibleBlock reports whether an 8-byte candidate looks like the start of
// a real block: a known type code and a total length within structural
// bounds. A Section Header is accepted in either byte order (it defines its
// own); other types require a section's established order.
func (r *Reader) plausibleBlock(hdr []byte) bool {
	okTotal := func(t uint32) bool { return t >= 12 && t%4 == 0 && t <= 1<<24 }
	if binary.LittleEndian.Uint32(hdr[0:4]) == blockSectionHeader {
		// Palindromic type code; either order may hold the length.
		return okTotal(binary.LittleEndian.Uint32(hdr[4:8])) ||
			okTotal(binary.BigEndian.Uint32(hdr[4:8]))
	}
	if !r.seen {
		return false
	}
	switch r.order.Uint32(hdr[0:4]) {
	case blockInterfaceDesc, blockSimplePacket, blockEnhancedPkt:
		return okTotal(r.order.Uint32(hdr[4:8]))
	}
	return false
}

// resyncScan advances the stream until a plausible block header starts,
// counting the span it skips. The current position is checked before any
// byte is dropped: a failure detected mid-block (a trailer mismatch, say)
// leaves the stream already at the next block's boundary. nextBlock always
// consumes at least its 8-byte header before reporting corruption, so
// accepting the current position cannot loop. resyncScan reports false when
// the stream ends first (the remaining tail is consumed and counted).
func (r *Reader) resyncScan() bool {
	r.resyncs++
	r.mResyncs.Inc()
	skipped := 0
	for {
		hdr, _ := r.r.Peek(8)
		if len(hdr) < 8 {
			n, _ := r.r.Discard(len(hdr))
			r.addSkipped(skipped + n)
			return false
		}
		if r.plausibleBlock(hdr) {
			r.addSkipped(skipped)
			return true
		}
		n, _ := r.r.Discard(1)
		skipped += n
		if n == 0 {
			r.addSkipped(skipped)
			return false
		}
	}
}

func (r *Reader) addSkipped(n int) {
	r.skipped += uint64(n)
	r.mSkipped.Add(uint64(n))
}

// nextBlock reads one block's body (without type/length framing).
func (r *Reader) nextBlock() ([]byte, uint32, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("pcapng: block header: %w", io.ErrUnexpectedEOF)
	}
	// The SHB's byte-order magic defines the section's endianness; the
	// block type code 0x0A0D0D0A is palindromic, so it reads correctly in
	// either order. Until a section is parsed, default to little endian
	// for the length and fix up inside parseSection.
	typeLE := binary.LittleEndian.Uint32(hdr[0:4])
	typeBE := binary.BigEndian.Uint32(hdr[0:4])
	var typ uint32
	order := r.order
	if typeLE == blockSectionHeader || typeBE == blockSectionHeader {
		typ = blockSectionHeader
		// Peek the byte-order magic to decide the section's endianness.
		bom, err := r.r.Peek(4)
		if err != nil {
			return nil, 0, ErrCorrupted
		}
		if binary.LittleEndian.Uint32(bom) == byteOrderMagic {
			order = binary.LittleEndian
		} else if binary.BigEndian.Uint32(bom) == byteOrderMagic {
			order = binary.BigEndian
		} else {
			return nil, 0, ErrCorrupted
		}
		r.order = order
		r.seen = true
	} else {
		if !r.seen {
			return nil, 0, ErrBadMagic
		}
		typ = order.Uint32(hdr[0:4])
	}

	total := order.Uint32(hdr[4:8])
	if total < 12 || total%4 != 0 || total > 1<<24 {
		return nil, 0, ErrCorrupted
	}
	bodyLen := int(total) - 12
	if cap(r.buf) < bodyLen {
		r.buf = make([]byte, bodyLen)
	}
	r.buf = r.buf[:bodyLen]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return nil, 0, fmt.Errorf("pcapng: block body: %w", io.ErrUnexpectedEOF)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r.r, trailer[:]); err != nil {
		return nil, 0, fmt.Errorf("pcapng: block trailer: %w", io.ErrUnexpectedEOF)
	}
	if order.Uint32(trailer[:]) != total {
		return nil, 0, ErrCorrupted
	}
	return r.buf, typ, nil
}

func (r *Reader) parseSection(body []byte) error {
	if len(body) < 12 {
		return ErrCorrupted
	}
	// A new section resets the interface list.
	r.ifaces = r.ifaces[:0]
	return nil
}

func (r *Reader) parseInterface(body []byte) error {
	if len(body) < 8 {
		return ErrCorrupted
	}
	ifc := iface{
		linkType:  r.order.Uint16(body[0:2]),
		nsPerUnit: 1000, // default resolution: microseconds
	}
	// Options start at offset 8 (after linktype, reserved, snaplen).
	opts := body[8:]
	for len(opts) >= 4 {
		code := r.order.Uint16(opts[0:2])
		olen := int(r.order.Uint16(opts[2:4]))
		padded := (olen + 3) &^ 3
		if len(opts) < 4+padded {
			break
		}
		val := opts[4 : 4+olen]
		if code == 0 { // opt_endofopt
			break
		}
		if code == 9 && olen >= 1 { // if_tsresol
			res := val[0]
			if res&0x80 == 0 {
				// Power of ten: units of 10^-res seconds.
				ns := uint64(1e9)
				for i := uint8(0); i < res && ns > 0; i++ {
					ns /= 10
				}
				if ns == 0 {
					ns = 1
				}
				ifc.nsPerUnit = ns
			} else {
				// Power of two: units of 2^-(res&0x7f) seconds.
				shift := res & 0x7f
				ns := uint64(1e9)
				for i := uint8(0); i < shift && ns > 1; i++ {
					ns /= 2
				}
				ifc.nsPerUnit = ns
			}
		}
		opts = opts[4+padded:]
	}
	r.ifaces = append(r.ifaces, ifc)
	return nil
}

func (r *Reader) parseEnhanced(body []byte) (int64, []byte, int, error) {
	if len(body) < 20 {
		return 0, nil, 0, ErrCorrupted
	}
	id := int(r.order.Uint32(body[0:4]))
	tsHigh := uint64(r.order.Uint32(body[4:8]))
	tsLow := uint64(r.order.Uint32(body[8:12]))
	capLen := int(r.order.Uint32(body[12:16]))
	if capLen < 0 || capLen > len(body)-20 {
		return 0, nil, 0, ErrCorrupted
	}
	nsPerUnit := uint64(1000)
	if id >= 0 && id < len(r.ifaces) {
		nsPerUnit = r.ifaces[id].nsPerUnit
	}
	ts := int64((tsHigh<<32 | tsLow) * nsPerUnit)
	return ts, body[20 : 20+capLen], id, nil
}
