package pcapng

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// builder assembles pcapng streams for the tests.
type builder struct {
	buf   bytes.Buffer
	order binary.ByteOrder
}

func newBuilder(order binary.ByteOrder) *builder {
	return &builder{order: order}
}

func (b *builder) block(typ uint32, body []byte) {
	for len(body)%4 != 0 {
		body = append(body, 0)
	}
	total := uint32(len(body) + 12)
	var w [4]byte
	b.order.PutUint32(w[:], typ)
	b.buf.Write(w[:])
	b.order.PutUint32(w[:], total)
	b.buf.Write(w[:])
	b.buf.Write(body)
	b.order.PutUint32(w[:], total)
	b.buf.Write(w[:])
}

func (b *builder) sectionHeader() {
	body := make([]byte, 16)
	b.order.PutUint32(body[0:4], byteOrderMagic)
	b.order.PutUint16(body[4:6], 1) // major
	b.order.PutUint16(body[6:8], 0) // minor
	// section length: -1 (unknown)
	b.order.PutUint64(body[8:16], ^uint64(0))
	b.block(blockSectionHeader, body)
}

func (b *builder) interfaceDesc(linkType uint16, opts []byte) {
	body := make([]byte, 8)
	b.order.PutUint16(body[0:2], linkType)
	b.order.PutUint32(body[4:8], 65535) // snaplen
	body = append(body, opts...)
	b.block(blockInterfaceDesc, body)
}

func (b *builder) enhancedPacket(ifaceID int, tsUnits uint64, data []byte) {
	body := make([]byte, 20)
	b.order.PutUint32(body[0:4], uint32(ifaceID))
	b.order.PutUint32(body[4:8], uint32(tsUnits>>32))
	b.order.PutUint32(body[8:12], uint32(tsUnits))
	b.order.PutUint32(body[12:16], uint32(len(data)))
	b.order.PutUint32(body[16:20], uint32(len(data)))
	body = append(body, data...)
	b.block(blockEnhancedPkt, body)
}

func (b *builder) tsresolOption(res byte) []byte {
	opt := make([]byte, 8)
	b.order.PutUint16(opt[0:2], 9) // if_tsresol
	b.order.PutUint16(opt[2:4], 1)
	opt[4] = res
	// opt_endofopt
	return opt
}

func TestReadEnhancedPackets(t *testing.T) {
	for _, order := range []binary.ByteOrder{binary.LittleEndian, binary.BigEndian} {
		b := newBuilder(order)
		b.sectionHeader()
		b.interfaceDesc(1, nil) // default microsecond resolution
		b.enhancedPacket(0, 5_000_000, []byte{1, 2, 3})
		b.enhancedPacket(0, 6_000_001, []byte{4, 5, 6, 7})

		r, err := NewReader(bytes.NewReader(b.buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		ts, data, id, err := r.Next()
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if ts != 5_000_000*1000 || id != 0 || !bytes.Equal(data, []byte{1, 2, 3}) {
			t.Fatalf("%v: first packet ts=%d id=%d data=%v", order, ts, id, data)
		}
		if r.LinkType(0) != 1 {
			t.Fatalf("LinkType = %d", r.LinkType(0))
		}
		ts, data, _, err = r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ts != 6_000_001*1000 || !bytes.Equal(data, []byte{4, 5, 6, 7}) {
			t.Fatalf("second packet ts=%d data=%v", ts, data)
		}
		if _, _, _, err := r.Next(); err != io.EOF {
			t.Fatalf("want EOF, got %v", err)
		}
	}
}

func TestNanosecondResolution(t *testing.T) {
	b := newBuilder(binary.LittleEndian)
	b.sectionHeader()
	b.interfaceDesc(1, b.tsresolOption(9)) // 10^-9: nanoseconds
	b.enhancedPacket(0, 123456789, []byte{0xaa})
	r, err := NewReader(bytes.NewReader(b.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ts, _, _, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ts != 123456789 {
		t.Fatalf("ts = %d, want raw nanoseconds", ts)
	}
}

func TestPowerOfTwoResolution(t *testing.T) {
	b := newBuilder(binary.LittleEndian)
	b.sectionHeader()
	b.interfaceDesc(1, b.tsresolOption(0x80|10)) // 2^-10 s ≈ 976562 ns
	b.enhancedPacket(0, 1024, []byte{0xaa})      // exactly 1 second
	r, err := NewReader(bytes.NewReader(b.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ts, _, _, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	// 1024 units * (1e9 >> 10) ns; integer division gives 976562*1024.
	if ts < 999_000_000 || ts > 1_000_100_000 {
		t.Fatalf("ts = %d, want ~1s", ts)
	}
}

func TestSkipsUnknownBlocks(t *testing.T) {
	b := newBuilder(binary.LittleEndian)
	b.sectionHeader()
	b.interfaceDesc(1, nil)
	b.block(0x00000BAD, make([]byte, 16)) // unknown block
	b.enhancedPacket(0, 1, []byte{7})
	r, err := NewReader(bytes.NewReader(b.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, data, _, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{7}) {
		t.Fatalf("data = %v", data)
	}
}

func TestSimplePacketBlock(t *testing.T) {
	b := newBuilder(binary.LittleEndian)
	b.sectionHeader()
	b.interfaceDesc(1, nil)
	body := make([]byte, 4)
	binary.LittleEndian.PutUint32(body, 3)
	body = append(body, 9, 9, 9)
	b.block(blockSimplePacket, body)
	r, err := NewReader(bytes.NewReader(b.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, data, _, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{9, 9, 9}) {
		t.Fatalf("data = %v", data)
	}
}

func TestErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("notapcapng"))); err != ErrBadMagic {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err != ErrBadMagic {
		t.Fatalf("empty: %v", err)
	}
	// Mismatched trailer length.
	b := newBuilder(binary.LittleEndian)
	b.sectionHeader()
	raw := b.buf.Bytes()
	raw[len(raw)-1] ^= 0xff
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := r.Next(); err != ErrCorrupted {
		t.Fatalf("trailer mismatch: %v", err)
	}
	// Truncated body.
	b = newBuilder(binary.LittleEndian)
	b.sectionHeader()
	b.enhancedPacket(0, 1, []byte{1, 2, 3})
	raw = b.buf.Bytes()
	r, _ = NewReader(bytes.NewReader(raw[:len(raw)-6]))
	if _, _, _, err := r.Next(); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestMultipleSections(t *testing.T) {
	// A stream may contain several sections; interfaces reset per section.
	b := newBuilder(binary.LittleEndian)
	b.sectionHeader()
	b.interfaceDesc(1, nil)
	b.enhancedPacket(0, 1, []byte{1})
	b.sectionHeader()
	b.interfaceDesc(101, nil) // raw link type in section 2
	b.enhancedPacket(0, 2, []byte{2})

	r, err := NewReader(bytes.NewReader(b.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, data, _, err := r.Next(); err != nil || data[0] != 1 {
		t.Fatalf("first: %v %v", data, err)
	}
	if _, data, _, err := r.Next(); err != nil || data[0] != 2 {
		t.Fatalf("second: %v %v", data, err)
	}
	if r.LinkType(0) != 101 {
		t.Fatalf("section-2 link type = %d", r.LinkType(0))
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	packets := [][]byte{{1, 2, 3}, {}, bytes.Repeat([]byte{0xcc}, 300)}
	times := []int64{0, 123456789, 1_700_000_000_123_456_789}
	for i := range packets {
		if err := w.WritePacket(times[i], packets[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range packets {
		ts, data, id, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if ts != times[i] || id != 0 || !bytes.Equal(data, packets[i]) {
			t.Fatalf("packet %d: ts=%d id=%d data=%v", i, ts, id, data)
		}
	}
	if _, _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if r.LinkType(0) != 1 {
		t.Fatalf("link type = %d", r.LinkType(0))
	}
}
