package pcapng

import (
	"bufio"
	"encoding/binary"
	"io"
)

// Writer emits a minimal single-section pcapng stream: one Section Header
// Block, one Interface Description Block (nanosecond resolution), then one
// Enhanced Packet Block per packet. Wireshark and tcpdump read the output
// directly.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter writes the section and interface headers and returns a writer.
func NewWriter(w io.Writer, linkType uint16) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	pw := &Writer{w: bw}

	// Section Header Block.
	shb := make([]byte, 16)
	binary.LittleEndian.PutUint32(shb[0:4], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[4:6], 1)
	binary.LittleEndian.PutUint64(shb[8:16], ^uint64(0)) // length unknown
	pw.block(blockSectionHeader, shb)

	// Interface Description Block with if_tsresol = 9 (nanoseconds).
	idb := make([]byte, 8)
	binary.LittleEndian.PutUint16(idb[0:2], linkType)
	binary.LittleEndian.PutUint32(idb[4:8], 65535)
	opt := make([]byte, 8)
	binary.LittleEndian.PutUint16(opt[0:2], 9) // if_tsresol
	binary.LittleEndian.PutUint16(opt[2:4], 1)
	opt[4] = 9 // 10^-9
	// trailing bytes stay zero: padding + opt_endofopt
	pw.block(blockInterfaceDesc, append(idb, opt...))
	if pw.err != nil {
		return nil, pw.err
	}
	return pw, nil
}

// block frames and writes one body.
func (pw *Writer) block(typ uint32, body []byte) {
	if pw.err != nil {
		return
	}
	for len(body)%4 != 0 {
		body = append(body, 0)
	}
	total := uint32(len(body) + 12)
	var b [4]byte
	le := binary.LittleEndian
	le.PutUint32(b[:], typ)
	if _, err := pw.w.Write(b[:]); err != nil {
		pw.err = err
		return
	}
	le.PutUint32(b[:], total)
	if _, err := pw.w.Write(b[:]); err != nil {
		pw.err = err
		return
	}
	if _, err := pw.w.Write(body); err != nil {
		pw.err = err
		return
	}
	le.PutUint32(b[:], total)
	if _, err := pw.w.Write(b[:]); err != nil {
		pw.err = err
	}
}

// WritePacket appends one Enhanced Packet Block with a nanosecond timestamp.
func (pw *Writer) WritePacket(tsNanos int64, data []byte) error {
	if pw.err != nil {
		return pw.err
	}
	body := make([]byte, 20+len(data))
	le := binary.LittleEndian
	le.PutUint32(body[0:4], 0) // interface 0
	le.PutUint32(body[4:8], uint32(uint64(tsNanos)>>32))
	le.PutUint32(body[8:12], uint32(uint64(tsNanos)))
	le.PutUint32(body[12:16], uint32(len(data)))
	le.PutUint32(body[16:20], uint32(len(data)))
	copy(body[20:], data)
	pw.block(blockEnhancedPkt, body)
	return pw.err
}

// Flush flushes buffered blocks.
func (pw *Writer) Flush() error {
	if pw.err != nil {
		return pw.err
	}
	return pw.w.Flush()
}
