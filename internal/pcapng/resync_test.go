package pcapng

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"github.com/synscan/synscan/internal/obs"
)

// resyncStream builds a stream of n Enhanced Packet Blocks and returns the
// bytes plus each EPB's file offset.
func resyncStream(t *testing.T, n int) ([]byte, []int) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	offsets := make([]int, n)
	for i := 0; i < n; i++ {
		offsets[i] = buf.Len()
		if err := w.WritePacket(int64(i+1)*1e9, []byte{0xaa, 0xbb, 0xcc}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), offsets
}

// TestResyncSkipsCorruptBlock: a block whose total-length field is smashed
// is skipped and every other packet still decodes; the default reader fails
// on the same bytes.
func TestResyncSkipsCorruptBlock(t *testing.T) {
	data, offsets := resyncStream(t, 5)
	bad := append([]byte{}, data...)
	binary.LittleEndian.PutUint32(bad[offsets[2]+4:offsets[2]+8], 0xffffffff)

	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for lastErr == nil {
		_, _, _, lastErr = r.Next()
	}
	if lastErr == io.EOF {
		t.Fatal("default reader hid the corrupt block")
	}

	reg := obs.NewRegistry()
	r2, err := NewReader(bytes.NewReader(bad), WithResync())
	if err != nil {
		t.Fatal(err)
	}
	r2.SetMetrics(reg)
	var got []int64
	for {
		ts, pkt, _, err := r2.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("resync reader errored: %v", err)
		}
		if !bytes.Equal(pkt, []byte{0xaa, 0xbb, 0xcc}) {
			t.Fatalf("resync reader produced garbage data %x", pkt)
		}
		got = append(got, ts)
	}
	want := []int64{1e9, 2e9, 4e9, 5e9}
	if len(got) != len(want) {
		t.Fatalf("recovered %d packets, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("packet %d: ts %d, want %d", i, got[i], want[i])
		}
	}
	if r2.Resyncs() != 1 || r2.SkippedBytes() == 0 {
		t.Fatalf("Resyncs = %d, SkippedBytes = %d", r2.Resyncs(), r2.SkippedBytes())
	}
	snap := reg.Snapshot()
	if snap.Counter("faults.pcapng.resyncs") != 1 ||
		snap.Counter("faults.pcapng.skipped_bytes") != r2.SkippedBytes() {
		t.Fatalf("metrics disagree: resyncs %d skipped %d",
			snap.Counter("faults.pcapng.resyncs"), snap.Counter("faults.pcapng.skipped_bytes"))
	}
}

// TestResyncTrailerMismatch: a block whose trailer length disagrees with its
// header is dropped without losing the blocks around it.
func TestResyncTrailerMismatch(t *testing.T) {
	data, offsets := resyncStream(t, 5)
	bad := append([]byte{}, data...)
	// The trailer is the last 4 bytes before the next block.
	binary.LittleEndian.PutUint32(bad[offsets[3]-4:offsets[3]], 0xdeadbeef)

	r, err := NewReader(bytes.NewReader(bad), WithResync())
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		ts, _, _, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("resync reader errored: %v", err)
		}
		got = append(got, ts)
	}
	// Block 2 (the one with the bad trailer) is lost; everything else reads.
	want := []int64{1e9, 2e9, 4e9, 5e9}
	if len(got) != len(want) {
		t.Fatalf("recovered %d packets, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("packet %d: ts %d, want %d", i, got[i], want[i])
		}
	}
}

// TestResyncTruncatedTail: a block cut off at end of stream ends a resync
// reader with clean io.EOF; the default reader surfaces an error.
func TestResyncTruncatedTail(t *testing.T) {
	data, offsets := resyncStream(t, 3)
	cut := data[:offsets[2]+10]

	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for lastErr == nil {
		_, _, _, lastErr = r.Next()
	}
	if lastErr == io.EOF {
		t.Fatal("default reader hid the truncation")
	}

	r2, err := NewReader(bytes.NewReader(cut), WithResync())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, _, _, err := r2.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("resync reader errored: %v", err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("read %d packets before the truncated tail, want 2", n)
	}
}
