package workload

import (
	"container/heap"
	"math"
	"sort"
	"time"

	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

// specKind separates scan traffic from background-radiation noise.
type specKind uint8

const (
	kindScan specKind = iota
	kindBackground
	kindBackscatter
	kindICMPSweep
	kindUDPProbe
	// kindFollowup carries prebuilt phase-two packets (handshake SYNs, ACKs,
	// payload pushes) scheduled by RunReactive in response to SYN-ACKs.
	kindFollowup
)

// spec is one probe-emitting entity: a scan campaign (or one shard of a
// collaborative scan), a background noise source, or a backscatter episode.
type spec struct {
	kind     specKind
	start    int64
	interval int64
	count    int
	ports    []uint16
	portOff  int
	// priority ports are probed first within the campaign, before the
	// cyclic walk over ports: institutional scanners revisit the key
	// service ports in every scan while the full-range walk progresses
	// (this is what makes HTTPS an institution-dominated port in Fig. 5).
	priority []uint16
	prober   tools.Prober
	perm     *rng.FeistelPerm
	jit      *rng.Rand
	jitSeed  uint64
	inst     bool
	// stride/strideOff partition a sharded scan's target space: shard k of
	// n visits permutation indices k, k+n, k+2n, ... — ZMap sharding.
	stride    int
	strideOff int

	// backscatter fields
	victim uint32

	// reactive-run state (see reactive.go): two-phase designation, the
	// simulated kernel stack, the follow-up timing stream, and — for
	// kindFollowup specs — the prebuilt packets to emit.
	twoPhase bool
	tp       *tools.TwoPhase
	fr       *rng.Rand
	pending  []packet.Probe

	// iteration state
	idx int
}

// hash64 is a stateless mixer for per-index jitter: peeking a probe's time
// must not consume generator state.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// timeAt returns the emission time of the spec's i-th probe. Jitter is
// bounded by a quarter interval, so times are strictly ordered within a
// spec.
func (sp *spec) timeAt(i int) int64 {
	if sp.kind == kindFollowup {
		return sp.pending[i].Time
	}
	t := sp.start + int64(i)*sp.interval
	if sp.interval > 4 {
		j := int64(hash64(sp.jitSeed+uint64(i))%uint64(sp.interval/2+1)) - sp.interval/4
		t += j
		if t < sp.start {
			t = sp.start
		}
	}
	return t
}

// probeAt materializes the spec's i-th probe. It must be called exactly once
// per index, in order: the payload fields consume per-spec generator state.
func (sp *spec) probeAt(tel telescopeIndex, i int) packet.Probe {
	var p packet.Probe
	switch sp.kind {
	case kindFollowup:
		return sp.pending[i]
	case kindICMPSweep:
		// Ping sweep: echo requests across the monitored space.
		p = packet.Probe{
			Src: sp.victim, Dst: tel.At(int(sp.perm.Apply(uint64(i) % sp.perm.Len()))),
			SrcPort: uint16(sp.jit.Uint32()), Seq: uint32(i),
			TTL: 60, Flags: packet.ICMPEchoRequest, Proto: packet.ProtoICMP,
		}
		p.Time = sp.timeAt(i)
		return p
	case kindUDPProbe:
		// UDP service probes (SSDP/DNS/NTP-style sweeps).
		p = packet.Probe{
			Src: sp.victim, Dst: tel.At(int(sp.perm.Apply(uint64(i) % sp.perm.Len()))),
			SrcPort: uint16(1024 + sp.jit.Intn(64512)), DstPort: sp.ports[i%len(sp.ports)],
			TTL: 55, Proto: packet.ProtoUDP,
		}
		p.Time = sp.timeAt(i)
		return p
	}
	if sp.kind == kindBackscatter {
		// SYN/ACK from a DDoS victim whose address was spoofed: arrives at
		// random monitored addresses and must be filtered by the telescope.
		dst := tel.At(int(sp.jit.Uint32()) % tel.Size())
		p = packet.Probe{
			Src: sp.victim, Dst: dst,
			SrcPort: 80, DstPort: uint16(1024 + sp.jit.Intn(64512)),
			Seq: sp.jit.Uint32(), Ack: sp.jit.Uint32(),
			IPID: uint16(sp.jit.Uint32()), TTL: 55,
			Flags: packet.FlagSYN | packet.FlagACK, Window: 65535,
		}
	} else {
		stride := sp.stride
		if stride < 1 {
			stride = 1
		}
		di := sp.perm.Apply(uint64(sp.strideOff+i*stride) % sp.perm.Len())
		dst := tel.At(int(di))
		var port uint16
		if i < len(sp.priority) {
			port = sp.priority[i]
		} else {
			port = sp.ports[(sp.portOff+i-len(sp.priority))%len(sp.ports)]
		}
		p = sp.prober.Probe(dst, port)
	}
	p.Time = sp.timeAt(i)
	return p
}

// telescopeIndex is the minimal telescope interface the generator needs.
type telescopeIndex interface {
	At(i int) uint32
	Size() int
}

// specHeap orders specs by next emission time.
type specHeap []*spec

func (h specHeap) Len() int            { return len(h) }
func (h specHeap) Less(i, j int) bool  { return h[i].timeAt(h[i].idx) < h[j].timeAt(h[j].idx) }
func (h specHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *specHeap) Push(x interface{}) { *h = append(*h, x.(*spec)) }
func (h *specHeap) Pop() interface{} {
	old := *h
	n := len(old)
	sp := old[n-1]
	*h = old[:n-1]
	return sp
}

// toolSpeed holds the per-tool Internet-wide rate distribution (log-normal,
// pps). Medians encode §6.3: ZMap fastest on average, NMap faster than
// Masscan, Mirai (embedded devices) slowest, the top end reserved for
// ZMap/Masscan.
type toolSpeed struct{ mu, sigma float64 }

var speedParams = map[tools.Tool]toolSpeed{
	tools.ToolZMap:    {math.Log(25000), 1.6},
	tools.ToolMasscan: {math.Log(8000), 1.4},
	tools.ToolNMap:    {math.Log(12000), 0.9},
	tools.ToolMirai:   {math.Log(160), 0.6},
	tools.ToolUnicorn: {math.Log(2000), 0.8},
	tools.ToolCustom:  {math.Log(3000), 1.3},
}

// toolSizeMul scales campaign sizes by tool: high-performance tools run the
// big campaigns, Mirai devices the small continuous ones (§4.1), and custom
// tooling is low-volume — in 2020 only 7.9% of probes came from outside the
// four tracked tools even though custom scans were ~46% of campaigns.
var toolSizeMul = map[tools.Tool]float64{
	tools.ToolZMap:    3.0,
	tools.ToolMasscan: 4.0,
	tools.ToolNMap:    0.6,
	tools.ToolMirai:   0.2,
	tools.ToolUnicorn: 0.4,
	tools.ToolCustom:  0.25,
}

// portAliases models the §5.1 alternative-port coverage: scans of the key
// port include the alias ports with the profile's PairRate probability.
var portAliases = map[uint16][]uint16{
	80:   {8080, 8000, 8888},
	443:  {8443, 1443},
	22:   {2222},
	23:   {2323},
	2375: {2376},
	3389: {3390},
}

// orgTools maps institutional organizations to the scanner stacks they run:
// the ZMap-derived research stacks carry the classic IPID marker, the
// commercial engines run their own (unfingerprintable) code, and a few use
// masscan. From 2023 the big ZMap users deploy patched builds without the
// static IP identification (§6: by 2024 under 40% of traffic is
// attributable to the four tracked tools).
var orgTools = map[string]tools.Tool{
	"Censys":                 tools.ToolZMap,
	"Rapid7":                 tools.ToolZMap,
	"University of Michigan": tools.ToolZMap,
	"Stanford University":    tools.ToolZMap,
	"TU Munich":              tools.ToolZMap,
	"RWTH Aachen":            tools.ToolZMap,
	"TU Delft":               tools.ToolZMap,
	"UCSD":                   tools.ToolZMap,
	"Onyphe":                 tools.ToolZMap,
	"Stretchoid":             tools.ToolMasscan,
	"Internet Census Group":  tools.ToolMasscan,
	"Driftnet":               tools.ToolMasscan,
	"Criminal IP":            tools.ToolMasscan,
	"Alpha Strike Labs":      tools.ToolMasscan,
	// Everyone else (Shodan, Palo Alto Networks, Shadowserver, ...) runs
	// bespoke stacks with no deliberate fingerprint.
}

// orgTool resolves an org's scanning stack for a year.
func orgTool(name string, year int) tools.Tool {
	tl, ok := orgTools[name]
	if !ok {
		return tools.ToolCustom
	}
	// The commercial scanners move to patched, unfingerprintable builds
	// from 2023 (§6.1: by 2024 only a minority of traffic is attributable
	// to the tracked tools); academic scanners keep stock ZMap.
	if year >= 2023 && tl != tools.ToolCustom {
		switch name {
		case "University of Michigan", "Stanford University", "TU Munich",
			"RWTH Aachen", "TU Delft", "UCSD":
			return tl
		}
		return tools.ToolCustom
	}
	return tl
}

// iotPorts drive Mirai-like background sources.
var iotPorts = map[uint16]bool{
	23: true, 2323: true, 5555: true, 7547: true, 37215: true,
	52869: true, 60023: true, 81: true, 23231: true, 9527: true, 34567: true,
}

// build materializes all specs for the scenario.
func (s *Scenario) build() error {
	prof := s.Profile
	r := rng.New(s.cfg.Seed).Derive("workload").DeriveN("year", uint64(prof.Year))
	ratio := float64(s.Telescope.Size()) / paperTelescopeSize

	// Observation noise: how many of a campaign's probes land in *this*
	// telescope is a sampling process — two vantage points of equal size
	// see Poisson-noised counts around the same expectation (§7's
	// vantage-comparison direction). The noise is keyed by the telescope
	// seed so vantages differ while the underlying ecosystem does not.
	telSeed := s.cfg.TelescopeSeed
	if telSeed == 0 {
		telSeed = s.cfg.Seed
	}
	vantage := rng.New(telSeed).Derive("workload/vantage")
	observe := func(n int) int {
		m := vantage.Poisson(float64(n))
		if m < 1 {
			m = 1
		}
		return m
	}

	// Total probe budget at simulation scale.
	totalBudget := prof.PacketsPerDayM * 1e6 * float64(prof.Days) * ratio * s.cfg.Scale
	instBudget := totalBudget * prof.InstPacketShare

	nCampaigns := int(prof.ScansPerMonthK*1e3*prof.months()*s.cfg.Scale + 0.5)
	if nCampaigns < 20 {
		nCampaigns = 20
	}

	// Samplers.
	scanW := make([]float64, len(prof.PortRows))
	pktBoost := make([]float64, len(prof.PortRows))
	for i, row := range prof.PortRows {
		scanW[i] = row.Scan
		pktBoost[i] = row.Pkt / row.Scan
	}
	tailBoost := prof.TailPkt / prof.TailScan
	portPick := rng.NewWeightedChoice(append(scanW, prof.TailScan))

	countryW := make([]float64, len(prof.Countries))
	for i, c := range prof.Countries {
		countryW[i] = c.W
	}
	countryPick := rng.NewWeightedChoice(countryW)

	toolOrder := []tools.Tool{tools.ToolMasscan, tools.ToolNMap, tools.ToolZMap,
		tools.ToolMirai, tools.ToolUnicorn, tools.ToolCustom}
	toolW := make([]float64, len(toolOrder))
	rest := 1.0
	for i, tl := range toolOrder[:len(toolOrder)-1] {
		toolW[i] = prof.ToolShares[tl]
		rest -= prof.ToolShares[tl]
	}
	if rest < 0 {
		rest = 0
	}
	toolW[len(toolW)-1] = rest
	toolPick := rng.NewWeightedChoice(toolW)

	// Scanner-type mix of campaigns (Table 2, scans row, institutional
	// handled separately).
	typeOrder := []inetmodel.ScannerType{
		inetmodel.TypeResidential, inetmodel.TypeUnknown,
		inetmodel.TypeEnterprise, inetmodel.TypeHosting,
	}
	typePick := rng.NewWeightedChoice([]float64{46.12, 25.07, 15.75, 5.61})
	miraiTypePick := rng.NewWeightedChoice([]float64{85, 10, 5, 0})

	minDsts := s.DetectorConfig.MinDistinctDsts
	minSize := 2 * minDsts

	// drawPorts assembles a campaign's port list around a primary port.
	drawPorts := func(cr *rng.Rand, primary uint16) []uint16 {
		ports := []uint16{primary}
		if cr.Bool(prof.CampaignSinglePort) {
			return ports
		}
		seen := map[uint16]bool{primary: true}
		add := func(p uint16) {
			if !seen[p] {
				seen[p] = true
				ports = append(ports, p)
			}
		}
		for _, alias := range portAliases[primary] {
			if cr.Bool(prof.PairRate) {
				add(alias)
			}
		}
		// Heavy-tailed extra-port count: P(k) ~ 1/k^1.5, with the base
		// probability growing as the ecosystem diversifies so the share of
		// 3+-port scans rises year over year (§5.1, R = 0.88).
		base := 0.35 + 0.8*(1-prof.CampaignSinglePort)
		if base > 0.95 {
			base = 0.95
		}
		extra := 0
		for k := 1; k < prof.MultiPortMax; k++ {
			if cr.Bool(math.Pow(float64(k), -1.5) * base) {
				extra++
			} else {
				break
			}
		}
		for i := 0; i < extra; i++ {
			if cr.Bool(prof.FullRangeNoise * 3) {
				add(uint16(cr.Uint32()))
			} else {
				j := portPick.Sample(cr)
				if j < len(prof.PortRows) {
					add(prof.PortRows[j].Port)
				} else {
					add(prof.TailPorts[cr.Intn(len(prof.TailPorts))])
				}
			}
		}
		return ports
	}

	// campaignCountry resolves the origin country honoring port biases:
	// a campaign covering a biased port (as primary or alias) originates
	// from the biased country with that bias's probability.
	campaignCountry := func(cr *rng.Rand, ports []uint16) string {
		for _, b := range prof.Biases {
			for _, p := range ports {
				if b.Port == p {
					if cr.Bool(b.Share) {
						return b.Country
					}
					break
				}
			}
		}
		return prof.Countries[countryPick.Sample(cr)].Code
	}

	// sourceIP draws a source address for (country, type), falling back to
	// type-anywhere when the combination has no space.
	sourceIP := func(cr *rng.Rand, country string, typ inetmodel.ScannerType) uint32 {
		if ip, ok := s.Registry.RandomIP(cr, country, typ); ok {
			return ip
		}
		ip, _ := s.Registry.RandomIPOfType(cr, typ)
		return ip
	}

	type draft struct {
		size    float64
		ports   []uint16
		tool    tools.Tool
		country string
		typ     inetmodel.ScannerType
		speed   float64
		shards  int
	}
	var drafts []draft
	meanSim := prof.MeanPacketsPerScan * ratio

	yearIdx := float64(prof.Year - 2015)
	addDraft := func(cr *rng.Rand, primary uint16, boost float64, tool tools.Tool, vertical bool) {
		d := draft{tool: tool}
		if vertical {
			// §5.2: vertical scans cover 10k–55k ports at ~0.3 Gbps.
			nPorts := 10000 + cr.Intn(45000)
			pp := rng.NewFeistelPerm(65536, cr)
			d.ports = make([]uint16, nPorts)
			for i := range d.ports {
				d.ports[i] = uint16(pp.Apply(uint64(i)))
			}
			d.size = meanSim * 25 * cr.LogNormal(0, 0.5)
			d.speed = 500000 * cr.LogNormal(0, 0.4)
			d.tool = tools.ToolMasscan
			if cr.Bool(0.4) {
				d.tool = tools.ToolZMap
			}
		} else {
			d.ports = drawPorts(cr, primary)
			sp := speedParams[tool]
			// Overall speeds drift slowly down over the years while NMap
			// alone trends up (§6.3); speed also rises with port count
			// (§5.3, R≈0.88).
			mu := sp.mu - 0.04*yearIdx
			if tool == tools.ToolNMap {
				mu = sp.mu + 0.03*yearIdx
			}
			d.speed = math.Exp(mu+sp.sigma*cr.NormFloat64()) * math.Sqrt(float64(len(d.ports)))
			mul := toolSizeMul[tool]
			if o := prof.SizeMul[tool]; o > 0 {
				mul = o
			}
			d.size = cr.LogNormal(math.Log(meanSim*mul*boost)-0.6, 1.1)
		}
		d.country = campaignCountry(cr, d.ports)
		switch {
		case tool == tools.ToolMirai:
			d.typ = typeOrder[miraiTypePick.Sample(cr)]
		case primary == 8545 && cr.Bool(0.75):
			// §6.7: the Ethereum JSON-RPC port is disproportionally
			// targeted from enterprise AS space.
			d.typ = inetmodel.TypeEnterprise
		default:
			d.typ = typeOrder[typePick.Sample(cr)]
		}
		d.shards = 1
		if !vertical && cr.Bool(prof.CollabShare) && d.speed > 3000 {
			max := prof.CollabHostsMax
			d.shards = 2 + cr.Intn(max-1)
		}
		drafts = append(drafts, d)
	}

	cr := r.Derive("campaigns")
	// Anchor campaigns: one per headline port, so the year's signature
	// ports are present even at small simulation scales where weighted
	// sampling alone would miss low-share rows.
	for i, row := range prof.PortRows {
		tool := toolOrder[toolPick.Sample(cr)]
		addDraft(cr, row.Port, pktBoost[i], tool, false)
	}
	plannedSpecs := len(drafts)
	// The paper's scans/month already counts each collaborating host as a
	// separate scan (§3.4 groups by source address), so drafts are added
	// until the *per-source* spec budget is reached, not the draft count.
	for plannedSpecs < nCampaigns {
		j := portPick.Sample(cr)
		var primary uint16
		boost := 1.0
		if j < len(prof.PortRows) {
			primary = prof.PortRows[j].Port
			boost = pktBoost[j]
		} else {
			// Tail campaign: as the ecosystem diversifies, the tail
			// spreads from a pool of known alternative ports over the
			// whole 65,536-port space (§5.1).
			randomShare := prof.FullRangeNoise * 5
			if randomShare > 0.95 {
				randomShare = 0.95
			}
			if cr.Bool(randomShare) {
				primary = uint16(cr.Uint32())
			} else {
				primary = prof.TailPorts[cr.Intn(len(prof.TailPorts))]
			}
			boost = tailBoost
		}
		tool := toolOrder[toolPick.Sample(cr)]
		addDraft(cr, primary, boost, tool, false)
		plannedSpecs += drafts[len(drafts)-1].shards
	}

	// Vertical scans (paper-scale count, scaled with Bernoulli rounding).
	nVert := prof.VerticalScans
	fv := float64(nVert) * s.cfg.Scale * 10 // keep visible at small scales
	nVertSim := int(fv)
	if cr.Bool(fv - float64(nVertSim)) {
		nVertSim++
	}
	if prof.VerticalScans > 0 && nVertSim == 0 {
		nVertSim = 1
	}
	for i := 0; i < nVertSim; i++ {
		addDraft(cr, 80, 1, tools.ToolMasscan, true)
	}

	// Disclosure-event campaigns (Fig. 1).
	for _, ev := range s.cfg.Disclosures {
		for day := ev.Day; day < prof.Days; day++ {
			lambda := ev.PeakPerDay * math.Exp(-float64(day-ev.Day)/ev.DecayDays) * s.cfg.Scale
			n := cr.Poisson(lambda)
			for i := 0; i < n; i++ {
				tool := tools.ToolZMap
				if cr.Bool(0.5) {
					tool = tools.ToolMasscan
				}
				addDraft(cr, ev.Port, 1.5, tool, false)
				// Pin the event campaign into the disclosure day.
				drafts[len(drafts)-1].shards = -(day + 1) // marker, resolved below
			}
		}
	}

	// Rescale sizes to the non-institutional budget, capping any single
	// campaign at 8% of it: even the paper's whales (0.28% of scans send
	// ~80% of traffic collectively) are individually bounded, and without
	// the cap a single lottery-winning draw can dominate a small-scale
	// year's per-country and per-port tables.
	var sum float64
	for i := range drafts {
		sum += drafts[i].size
	}
	nonInst := totalBudget - instBudget
	if sum > 0 && nonInst > 0 {
		f := nonInst / sum
		cap := 0.08 * nonInst
		for i := range drafts {
			drafts[i].size *= f
			if drafts[i].size > cap {
				drafts[i].size = cap
			}
		}
	}

	// Materialize drafts into specs.
	var summaryCampaigns int
	window := s.WindowNanos
	day := int64(24 * time.Hour)
	for di := range drafts {
		d := &drafts[di]
		pinnedDay := -1
		shards := d.shards
		if shards < 0 {
			pinnedDay = -shards - 1
			shards = 1
		}
		size := int(d.size + 0.5)
		if size < minSize {
			size = minSize
		}
		// Shrink shard counts that would drop shards below the detection
		// floor.
		for shards > 1 && size/shards < minSize {
			shards--
		}
		perShard := size / shards
		durNS := int64(float64(perShard*shards) * math.Exp2(32) /
			(float64(s.Telescope.Size()) * d.speed) * 1e9)
		if durNS < int64(time.Second) {
			durNS = int64(time.Second)
		}
		if durNS > window*6/10 {
			durNS = window * 6 / 10
		}
		var start int64
		if pinnedDay >= 0 {
			if durNS > day {
				durNS = day
			}
			start = s.Start + int64(pinnedDay)*day + cr.Int63n(day-durNS+1)
		} else {
			start = s.Start + cr.Int63n(window-durNS+1)
		}

		// Shard sources: half the time a /24 of collaborating hosts
		// (the academic pattern of §6.4), otherwise scattered in-country.
		// All shards share one target permutation and stride through it,
		// like ZMap's sharding (§4.1).
		base := sourceIP(cr, d.country, d.typ)
		sameSlash24 := shards > 1 && cr.Bool(0.5)
		sharedPerm := rng.NewFeistelPerm(uint64(s.Telescope.Size()),
			cr.DeriveN("draftperm", uint64(di)))
		for sh := 0; sh < shards; sh++ {
			src := base
			if sh > 0 {
				if sameSlash24 {
					src = base&0xffffff00 | uint32(sh)
				} else {
					src = sourceIP(cr, d.country, d.typ)
				}
			}
			sr := cr.DeriveN("spec", uint64(len(s.specs)))
			observed := observe(perShard)
			sp := &spec{
				kind:      kindScan,
				start:     start,
				interval:  durNS / int64(observed),
				count:     observed,
				ports:     d.ports,
				prober:    tools.NewProber(d.tool, src, sr.Derive("prober")),
				perm:      sharedPerm,
				jit:       sr.Derive("jitter"),
				jitSeed:   sr.Uint64(),
				stride:    shards,
				strideOff: sh,
			}
			s.specs = append(s.specs, sp)
			summaryCampaigns++
		}

		// §6.6: of the few non-institutional scanners that do come back,
		// most repeat within one day of the end of the last scan. Hosting
		// sources return most often, residential ones (churned away by
		// DHCP) almost never.
		var repeatP float64
		switch d.typ {
		case inetmodel.TypeHosting:
			repeatP = 0.25
		case inetmodel.TypeEnterprise:
			repeatP = 0.10
		case inetmodel.TypeUnknown:
			repeatP = 0.08
		case inetmodel.TypeResidential:
			repeatP = 0.04
		}
		if pinnedDay < 0 && cr.Bool(repeatP) {
			// §6.6: "most scanners repeat within one day of the end of the
			// last scan" — a broad log-normal downtime with a sub-day
			// median, unlike the sharp 24 h institutional mode.
			gap := int64(cr.LogNormal(math.Log(float64(10*time.Hour)), 1.3))
			rstart := start + durNS + gap
			if rstart+durNS < s.Start+window {
				rr := cr.DeriveN("repeat", uint64(di))
				size := observe(perShard)
				s.specs = append(s.specs, &spec{
					kind:     kindScan,
					start:    rstart,
					interval: durNS / int64(size),
					count:    size,
					ports:    d.ports,
					prober:   tools.NewProber(d.tool, base, rr.Derive("prober")),
					perm:     rng.NewFeistelPerm(uint64(s.Telescope.Size()), rr.Derive("perm")),
					jit:      rr.Derive("jitter"),
					jitSeed:  rr.Uint64(),
				})
				summaryCampaigns++
			}
		}
	}

	s.buildInstitutional(r.Derive("institutional"), instBudget, minSize, nCampaigns, observe)
	s.buildBackground(r.Derive("background"), summaryCampaigns)
	s.buildBackscatter(r.Derive("backscatter"), totalBudget)
	s.buildOtherProto(r.Derive("otherproto"), totalBudget)
	return nil
}

// buildOtherProto adds the non-TCP slice of Internet background radiation:
// ICMP echo sweeps and UDP service probes, together ~2% of arriving
// packets. The telescope's TCP/SYN filter must drop them (§3.1: TCP far
// dominates in practice, and the study keeps only SYNs).
func (s *Scenario) buildOtherProto(r *rng.Rand, totalBudget float64) {
	udpPorts := [][]uint16{{1900}, {53}, {123}, {161, 1604}}
	per := int(totalBudget * 0.01 / 4)
	if per < 10 {
		per = 10
	}
	mk := func(i int, kind specKind, ports []uint16) {
		br := r.DeriveN("op", uint64(i))
		src, _ := s.Registry.RandomIPOfType(br, inetmodel.TypeHosting)
		dur := int64(time.Hour) * int64(6+br.Intn(100))
		if dur >= s.WindowNanos {
			dur = s.WindowNanos / 2
		}
		s.specs = append(s.specs, &spec{
			kind:     kind,
			start:    s.Start + br.Int63n(s.WindowNanos-dur),
			interval: dur / int64(per),
			count:    per,
			ports:    ports,
			victim:   src,
			perm:     rng.NewFeistelPerm(uint64(s.Telescope.Size()), br.Derive("perm")),
			jit:      br.Derive("jitter"),
			jitSeed:  br.Uint64(),
		})
	}
	for i, ports := range udpPorts {
		mk(i, kindUDPProbe, ports)
	}
	for i := 0; i < 4; i++ {
		mk(100+i, kindICMPSweep, nil)
	}
}

// buildInstitutional spreads the institutional packet budget over the
// known-scanner roster proportionally to each org's real-world footprint
// (ports × sources), with daily recurrence for the orgs that rescan daily.
func (s *Scenario) buildInstitutional(r *rng.Rand, budget float64, minSize, nCampaigns int, observe func(int) int) {
	prof := s.Profile
	orgs := s.Registry.Orgs()
	day := int64(24 * time.Hour)

	var weights []float64
	var active []int
	var total float64
	for id, org := range orgs {
		p := org.PortsInYear(prof.Year)
		if p == 0 {
			continue
		}
		w := float64(p) * float64(org.Sources)
		weights = append(weights, w)
		active = append(active, id)
		total += w
	}
	if total == 0 || budget <= 0 {
		return
	}

	for k, id := range active {
		org := orgs[id]
		orgR := r.Derive(org.Name)
		orgBudget := budget * weights[k] / total

		// Paper-scale scan count of the org in this window, shrunk by the
		// simulation scale and by an activity factor so earlier years see
		// proportionally fewer institutional scans (the orgs grew their
		// operations alongside their port coverage, §6.8).
		cadence := 4
		if org.Daily {
			cadence = prof.Days
		}
		// Institutional scans are ~7.45% of all campaigns (Table 2); the
		// roster splits that share by footprint (PortsInYear × Sources, so
		// earlier years see proportionally fewer institutional scans).
		// The packet-budget need below can only raise the count.
		totalC := int(float64(nCampaigns)*0.085*(weights[k]/total) + 0.5)
		if totalC < 1 {
			totalC = 1
		}
		// A campaign must finish within ~9 hours so daily scans close well
		// before the next day's run (the detector expiry is capped at
		// 12 h); campaigns the budget would make longer are split into
		// more campaigns instead.
		maxPer := int(org.SpeedPPS * float64(s.Telescope.Size()) * 32400 / math.Exp2(32))
		if maxPer < minSize {
			maxPer = minSize
		}
		if need := int(orgBudget/float64(maxPer)) + 1; need > totalC {
			totalC = need
		}
		// No artificial fill beyond the anchored count: the big scanners'
		// anchored shares already give them a (near-)daily cadence, and
		// smaller orgs spread their fewer campaigns via strideDays below.
		// Source pool: sources scan on a strict daily cadence (the Fig. 6
		// institutional mode) via round-robin day assignment below; the
		// ceiling division guarantees no source is assigned two scans on
		// one day.
		nSrc := (totalC + cadence - 1) / cadence
		perCampaign := int(orgBudget / float64(totalC))
		if perCampaign < minSize {
			perCampaign = minSize
		}
		if perCampaign > maxPer {
			perCampaign = maxPer
		}

		// The org's port set: the first PortsInYear values of a stable
		// per-org permutation, so consecutive years nest (Figs. 9/10).
		nPorts := org.PortsInYear(prof.Year)
		pp := rng.NewFeistelPerm(65536, rng.New(s.cfg.Seed).Derive("orgports/"+org.Name))
		ports := make([]uint16, nPorts)
		for i := range ports {
			ports[i] = uint16(pp.Apply(uint64(i)))
		}

		srcPool := make([]uint32, nSrc)
		for i := range srcPool {
			srcPool[i] = s.Registry.OrgIP(orgR, id)
		}
		// Budget-limited orgs cannot scan every single day; they spread
		// their campaigns evenly over the window (every strideDays days)
		// instead of going dark after the first weeks. The big daily
		// scanners have totalC >= Days and keep a strict daily cadence.
		strideDays := 1
		if perSrc := (totalC + nSrc - 1) / nSrc; perSrc < prof.Days {
			strideDays = prof.Days / perSrc
			if strideDays < 1 {
				strideDays = 1
			}
		}
		portCursor := 0
		durNS := int64(float64(perCampaign) * math.Exp2(32) /
			(float64(s.Telescope.Size()) * org.SpeedPPS) * 1e9)
		if durNS < int64(time.Second) {
			durNS = int64(time.Second)
		}
		if durNS > day*8/10 {
			durNS = day * 8 / 10
		}
		for c := 0; c < totalC; c++ {
			sr := orgR.DeriveN("spec", uint64(c))
			src := srcPool[c%nSrc]
			var start int64
			if org.Daily {
				// Round-robin over sources; consecutive campaigns of one
				// source land strideDays apart, covering the full window.
				dayIdx := ((c / nSrc) * strideDays) % prof.Days
				start = s.Start + int64(dayIdx)*day + sr.Int63n(day/12)
			} else {
				start = s.Start + sr.Int63n(s.WindowNanos-durNS+1)
			}
			// Key service ports are revisited in every scan; the full
			// port walk continues from the cursor.
			var priority []uint16
			if sr.Bool(0.5) {
				priority = append(priority, 443)
			}
			if sr.Bool(0.3) {
				priority = append(priority, 3390)
			}
			if sr.Bool(0.15) {
				priority = append(priority, 80)
			}
			observed := observe(perCampaign)
			sp := &spec{
				kind:     kindScan,
				start:    start,
				interval: durNS / int64(observed),
				count:    observed,
				ports:    ports,
				portOff:  portCursor,
				priority: priority,
				prober:   tools.NewProber(orgTool(org.Name, prof.Year), src, sr.Derive("prober")),
				perm:     rng.NewFeistelPerm(uint64(s.Telescope.Size()), sr.Derive("perm")),
				jit:      sr.Derive("jitter"),
				jitSeed:  sr.Uint64(),
				inst:     true,
			}
			portCursor = (portCursor + perCampaign) % len(ports)
			s.specs = append(s.specs, sp)
		}
	}
}

// buildBackground adds the sub-threshold noise sources that dominate the
// distinct-source counts (and the single-port CDF of Fig. 3).
func (s *Scenario) buildBackground(r *rng.Rand, campaignSources int) {
	prof := s.Profile
	// The distinct-source totals of Table 1 are dominated by sub-threshold
	// senders; campaign sources are a rounding error at paper scale, so the
	// background population is sized directly from the profile.
	_ = campaignSources
	nBg := int(prof.SourcesK * 1e3 * s.cfg.Scale)
	if nBg <= 0 {
		return
	}
	srcW := make([]float64, len(prof.PortRows))
	for i, row := range prof.PortRows {
		srcW[i] = row.Src
	}
	pick := rng.NewWeightedChoice(append(srcW, prof.TailSrc))
	typePick := rng.NewWeightedChoice([]float64{54.92, 37.33, 6.71, 0.87})
	typeOrder := []inetmodel.ScannerType{
		inetmodel.TypeResidential, inetmodel.TypeUnknown,
		inetmodel.TypeEnterprise, inetmodel.TypeHosting,
	}
	window := s.WindowNanos
	for i := 0; i < nBg; i++ {
		br := r.DeriveN("bg", uint64(i))
		var primary uint16
		if br.Bool(prof.FullRangeNoise) {
			primary = uint16(br.Uint32())
		} else if j := pick.Sample(br); j < len(prof.PortRows) {
			primary = prof.PortRows[j].Port
		} else {
			primary = prof.TailPorts[br.Intn(len(prof.TailPorts))]
		}
		ports := []uint16{primary}
		if !br.Bool(prof.SinglePortFrac) {
			extra := 1 + br.Intn(3)
			for e := 0; e < extra; e++ {
				if as := portAliases[primary]; len(as) > 0 && br.Bool(prof.PairRate) {
					ports = append(ports, as[br.Intn(len(as))])
				} else if j := pick.Sample(br); j < len(prof.PortRows) {
					ports = append(ports, prof.PortRows[j].Port)
				} else {
					ports = append(ports, prof.TailPorts[br.Intn(len(prof.TailPorts))])
				}
			}
		}
		typ := typeOrder[typePick.Sample(br)]
		country := prof.Countries[int(br.Uint32())%len(prof.Countries)].Code
		src, ok := s.Registry.RandomIP(br, country, typ)
		if !ok {
			src, _ = s.Registry.RandomIPOfType(br, typ)
		}
		tool := tools.ToolCustom
		if iotPorts[primary] && prof.Year >= 2016 && br.Bool(0.7) {
			tool = tools.ToolMirai
		}
		count := 1 + br.Intn(7)
		iv := window / int64(count+1)
		sp := &spec{
			kind:     kindBackground,
			start:    s.Start + br.Int63n(window-iv*int64(count)+1),
			interval: iv,
			count:    count,
			ports:    ports,
			prober:   tools.NewProber(tool, src, br.Derive("prober")),
			perm:     rng.NewFeistelPerm(uint64(s.Telescope.Size()), br.Derive("perm")),
			jit:      br.Derive("jitter"),
			jitSeed:  br.Uint64(),
		}
		s.specs = append(s.specs, sp)
	}
}

// buildBackscatter adds SYN/ACK reflections of spoofed-source DDoS attacks
// (§3.2): the telescope must filter these out.
func (s *Scenario) buildBackscatter(r *rng.Rand, totalBudget float64) {
	n := 8
	per := int(totalBudget * 0.015 / float64(n))
	if per < 10 {
		per = 10
	}
	for i := 0; i < n; i++ {
		br := r.DeriveN("bs", uint64(i))
		victim, _ := s.Registry.RandomIPOfType(br, inetmodel.TypeHosting)
		dur := int64(time.Hour) * int64(1+br.Intn(20))
		sp := &spec{
			kind:     kindBackscatter,
			start:    s.Start + br.Int63n(s.WindowNanos-dur),
			interval: dur / int64(per),
			count:    per,
			victim:   victim,
			jit:      br.Derive("jitter"),
			jitSeed:  br.Uint64(),
		}
		s.specs = append(s.specs, sp)
	}
}

// Run emits every probe of the scenario in non-decreasing time order.
// The emitted probes are the traffic *arriving* at the telescope; callers
// pass them through Telescope.Observe to apply the capture policy.
func (s *Scenario) Run(emit func(*packet.Probe)) Summary {
	var sum Summary
	h := make(specHeap, 0, len(s.specs))
	for _, sp := range s.specs {
		if sp.count <= 0 {
			continue
		}
		sp.idx = 0
		h = append(h, sp)
		switch sp.kind {
		case kindScan:
			sum.Campaigns++
		case kindBackground:
			sum.BackgroundSources++
		}
	}
	heap.Init(&h)

	for h.Len() > 0 {
		sp := h[0]
		p := sp.probeAt(s.Telescope, sp.idx)
		emit(&p)
		sum.Probes++
		if sp.inst {
			sum.InstitutionalProbes++
		}
		sp.idx++
		if sp.idx >= sp.count {
			heap.Pop(&h)
			continue
		}
		heap.Fix(&h, 0)
	}
	return sum
}

// SortedPorts is a small helper for tests: the distinct ports of a spec list
// (exported for white-box assertions in the workload tests).
func sortedPorts(ports []uint16) []uint16 {
	c := append([]uint16{}, ports...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}
