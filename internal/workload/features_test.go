package workload

import (
	"testing"

	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/tools"
)

func TestOrgToolPatching(t *testing.T) {
	// Commercial scanners carry tool fingerprints until 2022, then patch.
	if got := orgTool("Censys", 2020); got != tools.ToolZMap {
		t.Fatalf("Censys 2020 = %v", got)
	}
	if got := orgTool("Censys", 2023); got != tools.ToolCustom {
		t.Fatalf("Censys 2023 = %v, want Custom", got)
	}
	if got := orgTool("Stretchoid", 2022); got != tools.ToolMasscan {
		t.Fatalf("Stretchoid 2022 = %v", got)
	}
	if got := orgTool("Stretchoid", 2024); got != tools.ToolCustom {
		t.Fatalf("Stretchoid 2024 = %v", got)
	}
	// Academic scanners keep stock ZMap throughout.
	for _, y := range []int{2016, 2020, 2024} {
		if got := orgTool("University of Michigan", y); got != tools.ToolZMap {
			t.Fatalf("UMich %d = %v", y, got)
		}
	}
	// Unlisted orgs run bespoke stacks.
	if got := orgTool("Shodan", 2018); got != tools.ToolCustom {
		t.Fatalf("Shodan = %v", got)
	}
}

// countObservedTools classifies every generated probe by its per-packet
// fingerprint.
func countObservedTools(t *testing.T, year int) map[tools.Tool]uint64 {
	t.Helper()
	s, err := NewScenario(Config{
		Year: year, Seed: 3, Scale: 0.0005, TelescopeSize: 2048,
		Registry: sharedRegistry,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[tools.Tool]uint64{}
	s.Run(func(p *packet.Probe) {
		switch {
		case p.IPID == tools.ZMapIPID:
			counts[tools.ToolZMap]++
		case p.Seq == p.Dst:
			counts[tools.ToolMirai]++
		case p.IPID == uint16(p.Dst^uint32(p.DstPort)^p.Seq):
			counts[tools.ToolMasscan]++
		default:
			counts[tools.ToolUnknown]++
		}
	})
	return counts
}

func TestFingerprintableTrafficCollapses(t *testing.T) {
	// §6.1/§7: identified traffic is the large majority in 2020 and a
	// minority by 2024 (SizeMul overrides + org patching).
	share := func(counts map[tools.Tool]uint64) float64 {
		var ident, total uint64
		for tl, n := range counts {
			total += n
			if tl != tools.ToolUnknown {
				ident += n
			}
		}
		return float64(ident) / float64(total)
	}
	s20 := share(countObservedTools(t, 2020))
	s24 := share(countObservedTools(t, 2024))
	if s20 < 0.55 {
		t.Fatalf("2020 identified share = %v, want high", s20)
	}
	if s24 >= s20 || s24 > 0.55 {
		t.Fatalf("2024 identified share = %v (2020 = %v), must collapse", s24, s20)
	}
}

func TestRepeatCampaignsExist(t *testing.T) {
	// §6.6: some non-institutional sources run a second campaign about a
	// day after the first. Count sources with two non-inst scan specs.
	s := testScenario(t, 2022, 0.001)
	bySrc := map[uint32]int{}
	for _, sp := range s.specs {
		if sp.kind == kindScan && !sp.inst {
			bySrc[probeSrc(sp)]++
		}
	}
	repeats := 0
	for _, n := range bySrc {
		if n > 1 {
			repeats++
		}
	}
	if repeats == 0 {
		t.Fatal("no repeating non-institutional sources generated")
	}
}

// probeSrc extracts a spec's source address via its first probe fields.
// Probers are deterministic in (dst, port), so peeking is safe on a fresh
// scenario that has not been Run.
func probeSrc(sp *spec) uint32 {
	p := sp.prober.Probe(0, 0)
	return p.Src
}

func TestInstitutionalSpreadOverWindow(t *testing.T) {
	// Daily orgs must not go dark after the first weeks: institutional
	// probes appear in the last quarter of the window.
	s := testScenario(t, 2022, 0.001)
	lastQuarter := s.Start + s.WindowNanos*3/4
	var late uint64
	reg := s.Registry
	s.Run(func(p *packet.Probe) {
		if p.Time >= lastQuarter &&
			reg.Lookup(p.Src).Type == inetmodel.TypeInstitutional {
			late++
		}
	})
	if late == 0 {
		t.Fatal("institutional scanning absent from the window's tail")
	}
}

func TestTelescopeSeedIndependence(t *testing.T) {
	// Changing only the telescope seed must keep the ecosystem structure:
	// same campaign spec count, similar probe volume.
	mk := func(telSeed uint64) (*Scenario, uint64) {
		s, err := NewScenario(Config{
			Year: 2020, Seed: 4, Scale: 0.0004, TelescopeSize: 2048,
			TelescopeSeed: telSeed, Registry: sharedRegistry,
		})
		if err != nil {
			t.Fatal(err)
		}
		var n uint64
		s.Run(func(*packet.Probe) { n++ })
		return s, n
	}
	sa, na := mk(111)
	sb, nb := mk(222)
	if len(sa.specs) != len(sb.specs) {
		t.Fatalf("spec counts differ: %d vs %d", len(sa.specs), len(sb.specs))
	}
	ratio := float64(na) / float64(nb)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("volumes diverge: %d vs %d", na, nb)
	}
	if na == nb {
		t.Fatal("observation noise missing: volumes identical")
	}
}

func TestSizeMulOverride(t *testing.T) {
	p23, _ := ProfileFor(2023)
	if p23.SizeMul[tools.ToolZMap] <= 0 || p23.SizeMul[tools.ToolZMap] >= 1 {
		t.Fatalf("2023 ZMap SizeMul = %v, want shrinking override", p23.SizeMul[tools.ToolZMap])
	}
	p20, _ := ProfileFor(2020)
	if len(p20.SizeMul) != 0 {
		t.Fatalf("2020 should use default multipliers")
	}
}

func TestOutagesDropTraffic(t *testing.T) {
	run := func(outages []Outage) (accepted, dropped uint64) {
		s, err := NewScenario(Config{
			Year: 2018, Seed: 6, Scale: 0.0003, TelescopeSize: 2048,
			Registry: sharedRegistry, Outages: outages,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(func(p *packet.Probe) {
			s.Telescope.Observe(p)
		})
		st := s.Telescope.Stats()
		return st.Accepted, st.Outage
	}
	accNone, dropNone := run(nil)
	if dropNone != 0 {
		t.Fatalf("baseline outage drops: %d", dropNone)
	}
	accOut, dropOut := run([]Outage{{StartDay: 10, Days: 6}})
	if dropOut == 0 {
		t.Fatal("outage dropped nothing")
	}
	if accOut >= accNone {
		t.Fatalf("outage did not reduce accepted traffic: %d vs %d", accOut, accNone)
	}
	// Roughly 6/61 of the window is dark.
	frac := float64(dropOut) / float64(accOut+dropOut)
	if frac < 0.03 || frac > 0.25 {
		t.Fatalf("outage fraction = %v, want ~0.1", frac)
	}
}

func TestNonTCPNoiseGeneratedAndDropped(t *testing.T) {
	s := testScenario(t, 2020, 0.0004)
	var udp, icmp uint64
	s.Run(func(p *packet.Probe) {
		switch p.Proto {
		case packet.ProtoUDP:
			udp++
		case packet.ProtoICMP:
			icmp++
		}
		s.Telescope.Observe(p)
	})
	if udp == 0 || icmp == 0 {
		t.Fatalf("non-TCP noise missing: udp=%d icmp=%d", udp, icmp)
	}
	st := s.Telescope.Stats()
	if st.NotTCP != udp+icmp {
		t.Fatalf("NotTCP = %d, want %d", st.NotTCP, udp+icmp)
	}
	// TCP must still dominate overwhelmingly (§3.1).
	if frac := float64(st.NotTCP) / float64(st.Total()); frac > 0.05 {
		t.Fatalf("non-TCP fraction = %v, want small", frac)
	}
}

func TestProfileInvariants(t *testing.T) {
	for _, y := range Years() {
		p, err := ProfileFor(y)
		if err != nil {
			t.Fatal(err)
		}
		if p.PacketsPerDayM <= 0 || p.ScansPerMonthK <= 0 || p.SourcesK <= 0 {
			t.Fatalf("%d: non-positive volumes", y)
		}
		if p.SinglePortFrac <= 0 || p.SinglePortFrac >= 1 ||
			p.CampaignSinglePort <= 0 || p.CampaignSinglePort >= 1 {
			t.Fatalf("%d: port fractions out of range", y)
		}
		if p.CampaignSinglePort > p.SinglePortFrac {
			t.Fatalf("%d: campaigns must go multi-port faster than sources", y)
		}
		if p.InstPacketShare <= 0 || p.InstPacketShare >= 0.6 {
			t.Fatalf("%d: InstPacketShare = %v", y, p.InstPacketShare)
		}
		if p.PairRate < 0.1 || p.PairRate > 0.9 {
			t.Fatalf("%d: PairRate = %v", y, p.PairRate)
		}
		if p.CollabShare < 0 || p.CollabShare > 0.5 || p.CollabHostsMax < 2 {
			t.Fatalf("%d: collab knobs", y)
		}
		if len(p.PortRows) < 8 || len(p.TailPorts) < 20 {
			t.Fatalf("%d: port tables too thin", y)
		}
		for _, row := range p.PortRows {
			if row.Scan <= 0 || row.Pkt <= 0 || row.Src <= 0 {
				t.Fatalf("%d: port %d has non-positive weights", y, row.Port)
			}
		}
		for _, b := range p.Biases {
			if b.Share <= 0 || b.Share > 1 || b.Country == "" {
				t.Fatalf("%d: bad bias %+v", y, b)
			}
		}
	}
	// Monotone knobs across the decade.
	prev, _ := ProfileFor(2015)
	for _, y := range Years()[1:] {
		p, _ := ProfileFor(y)
		if p.SinglePortFrac > prev.SinglePortFrac+1e-9 {
			t.Fatalf("SinglePortFrac must not rise: %d", y)
		}
		if p.FullRangeNoise < prev.FullRangeNoise {
			t.Fatalf("FullRangeNoise must not fall: %d", y)
		}
		prev = p
	}
}
