// Package workload synthesizes the scanning ecosystem of a given year
// (2015–2024) as observed through a network telescope. It is the stand-in
// for the paper's proprietary capture: per-year profiles encode the shape of
// Table 1 (volume, scan counts, tool mix, port mix, origin mix) and the
// section 4–6 scalars, and a deterministic event-driven generator turns a
// profile into a time-ordered stream of SYN probes hitting a telescope.
//
// Absolute magnitudes are scaled down by Config.Scale (campaigns) together
// with the telescope size; all analyses compare *shapes* (who wins, ratios,
// crossovers), which are preserved.
package workload

import (
	"fmt"

	"github.com/synscan/synscan/internal/tools"
)

// PortRow gives one port's relative weight in three rankings: how often
// campaigns pick it as primary target (Scan), how much traffic it attracts
// (Pkt, realized through campaign size multipliers), and how many background
// sources touch it (Src).
type PortRow struct {
	Port uint16
	Scan float64
	Pkt  float64
	Src  float64
}

// CountryW is a country's share of campaign origins.
type CountryW struct {
	Code string
	W    float64
}

// PortBias forces a share of campaigns on Port to originate from Country —
// the §5.4 geographic targeting biases (MySQL/RDP from China, HTTPS from the
// US, JSON-RPC from enterprise space in Vietnam, ...).
type PortBias struct {
	Port    uint16
	Country string
	Share   float64
}

// Profile is the calibrated shape of one measurement year.
type Profile struct {
	// Year is the calendar year (2015–2024).
	Year int
	// Days is the continuous capture window length (29–61 in the paper).
	Days int
	// PacketsPerDayM is the paper-scale scanning volume in millions/day.
	PacketsPerDayM float64
	// ScansPerMonthK is the paper-scale campaign count in thousands/month.
	ScansPerMonthK float64
	// SourcesK is the paper-scale distinct-source count in thousands.
	SourcesK float64
	// ToolShares is the tool mix of non-institutional campaigns, by scans
	// (Table 1, "Tools by scans"); the remainder is custom tooling.
	ToolShares map[tools.Tool]float64
	// Countries is the origin mix of campaigns.
	Countries []CountryW
	// PortRows are the headline ports with their three ranking weights.
	PortRows []PortRow
	// TailPorts receive the residual weight spread uniformly; together with
	// TailScan/TailPkt/TailSrc they model the growing long tail.
	TailPorts []uint16
	// TailScan, TailPkt, TailSrc are the total weights of the tail.
	TailScan, TailPkt, TailSrc float64
	// FullRangeNoise adds a per-port noise floor across all 65536 ports
	// (§5.1: every port receives >1000 probes/day by 2022). Fraction of
	// background sources that pick a uniformly random port.
	FullRangeNoise float64
	// SinglePortFrac is the fraction of sources targeting exactly one port
	// (Fig. 3: 83% in 2015 falling to ~65% in 2022). It is dominated by
	// the background-source population.
	SinglePortFrac float64
	// CampaignSinglePort is the fraction of qualified campaigns targeting
	// exactly one port. It falls much faster than SinglePortFrac: by 2020,
	// 87% of campaigns probing port 80 also probe 8080 (§5.1), so hardly
	// any serious port-80 campaign is single-port anymore.
	CampaignSinglePort float64
	// MultiPortMax bounds the ports of ordinary multi-port scans.
	MultiPortMax int
	// VerticalScans is the paper-scale count of campaigns targeting more
	// than 10,000 ports (§5.2: 1 in 2015, 2134 in 2020, 20 in 2022).
	VerticalScans int
	// InstPacketShare is institutional scanners' share of telescope
	// packets (≈51% in 2023/24 per Appendix A; far lower early on).
	InstPacketShare float64
	// PairRate is the probability that a scan on port 80 also covers 8080
	// (§5.1: 18% in 2015 → 87% in 2020, plateau after).
	PairRate float64
	// CollabShare is the fraction of logical scans split across multiple
	// coordinating hosts (rising sharply after 2021, §4.1/§6.4).
	CollabShare float64
	// CollabHostsMax is the maximum shard count of a collaborative scan.
	CollabHostsMax int
	// Biases are the port→country targeting biases of the year.
	Biases []PortBias
	// SizeMul overrides the default per-tool campaign-size multipliers.
	// Used for 2023/24, where ZMap scans are numerous but individually
	// small (sharded collaborations): scans grow while traffic does not,
	// and the fingerprintable traffic share drops under 40% (§6).
	SizeMul map[tools.Tool]float64
	// MeanPacketsPerScan is derived: paper-scale packets per campaign.
	MeanPacketsPerScan float64
	// TwoPhaseShare is the fraction of stateless (masscan-style) campaigns
	// that run a second, stateful phase — returning to responsive targets
	// with a kernel-stack handshake and an application payload (the Spoki
	// two-phase model). Only reactive-telescope runs observe it; derived in
	// ProfileFor when zero, growing as the scanning economy monetizes.
	TwoPhaseShare float64
}

// months converts the window length into months for scan-count math.
func (p *Profile) months() float64 { return float64(p.Days) / 30.44 }

// webTail and friends define the recurring tail pools.
var (
	tailCommon = []uint16{81, 88, 8000, 8081, 8443, 8888, 2222, 2323, 5555,
		5900, 5901, 7547, 8291, 37215, 52869, 60023, 1433, 3306, 6379, 5432,
		25, 110, 143, 21, 2375, 2376, 8545, 9200, 11211, 27017, 445, 139,
		3390, 5358, 7574, 7545, 6789, 6289, 10073, 20012, 22555, 23231, 9527,
		34567, 49152, 50050, 1023, 32764}
)

// profiles is the calibration table, one entry per measured year. The
// headline numbers come straight from Table 1; the behavioral knobs encode
// the findings of §4–§6.
var profiles = map[int]*Profile{
	2015: {
		Year: 2015, Days: 61, PacketsPerDayM: 11, ScansPerMonthK: 33, SourcesK: 1500,
		ToolShares: map[tools.Tool]float64{
			tools.ToolMasscan: 0.005, tools.ToolNMap: 0.317, tools.ToolZMap: 0.021,
			tools.ToolMirai: 0, tools.ToolUnicorn: 0.00001,
		},
		Countries: []CountryW{{"CN", 32}, {"US", 16}, {"KR", 6}, {"BR", 5}, {"RU", 5},
			{"TW", 4}, {"DE", 3}, {"IN", 3}, {"TR", 3}, {"VN", 2}, {"JP", 2}, {"NL", 1}},
		PortRows: []PortRow{
			{3389, 23.4, 7.1, 11.3}, {10073, 23.4, 3.0, 33.0}, {80, 4.1, 7.0, 5.8},
			{8080, 2.7, 8.7, 2.7}, {443, 1.9, 6.0, 1.5}, {22, 1.8, 15.0, 1.8},
			{22555, 1.0, 0.8, 2.0}, {23, 3.5, 5.5, 1.9}, {1433, 1.2, 2.0, 0.9},
			{21, 1.0, 1.5, 0.8},
		},
		TailPorts: tailCommon, TailScan: 36, TailPkt: 43, TailSrc: 38,
		FullRangeNoise: 0.02, SinglePortFrac: 0.83, CampaignSinglePort: 0.78, MultiPortMax: 8,
		VerticalScans: 1, InstPacketShare: 0.05, PairRate: 0.18,
		CollabShare: 0.005, CollabHostsMax: 4,
		// The 2014-era literature: RDP 77% Chinese, telnet/SSH/MSSQL
		// scanning similarly CN-centered, HTTPS research scans US-based.
		Biases: []PortBias{{3389, "CN", 0.77}, {3306, "CN", 0.7}, {1433, "CN", 0.8},
			{23, "CN", 0.5}, {22, "CN", 0.45}, {443, "US", 0.5}},
	},
	2016: {
		Year: 2016, Days: 59, PacketsPerDayM: 19, ScansPerMonthK: 38, SourcesK: 2500,
		ToolShares: map[tools.Tool]float64{
			tools.ToolMasscan: 0.015, tools.ToolNMap: 0.128, tools.ToolZMap: 0.091,
			tools.ToolMirai: 0.02, tools.ToolUnicorn: 0.00001,
		},
		Countries: []CountryW{{"CN", 30}, {"US", 20}, {"KR", 5}, {"BR", 5}, {"RU", 5},
			{"TW", 4}, {"VN", 3}, {"DE", 3}, {"IN", 3}, {"TR", 2}, {"NL", 2}},
		PortRows: []PortRow{
			{3389, 19.9, 4.5, 9.6}, {21, 6.8, 1.5, 10.2}, {20012, 5.4, 1.2, 5.2},
			{80, 3.8, 6.0, 3.3}, {22, 1.9, 8.2, 1.2}, {1433, 1.5, 3.5, 1.0},
			{8080, 1.3, 2.3, 1.4}, {23, 6.0, 7.0, 8.0}, {443, 1.2, 2.0, 0.9},
			{5900, 0.8, 0.9, 0.7},
		},
		TailPorts: tailCommon, TailScan: 51, TailPkt: 62, TailSrc: 58,
		FullRangeNoise: 0.03, SinglePortFrac: 0.82, CampaignSinglePort: 0.72, MultiPortMax: 8,
		VerticalScans: 3, InstPacketShare: 0.08, PairRate: 0.25,
		CollabShare: 0.008, CollabHostsMax: 4,
		Biases: []PortBias{{3389, "CN", 0.7}, {3306, "CN", 0.7}, {1433, "CN", 0.8},
			{23, "CN", 0.5}, {22, "CN", 0.45}, {443, "US", 0.5}, {80, "US", 0.35}},
	},
	2017: {
		Year: 2017, Days: 45, PacketsPerDayM: 45, ScansPerMonthK: 252, SourcesK: 6000,
		ToolShares: map[tools.Tool]float64{
			tools.ToolMasscan: 0.007, tools.ToolNMap: 0.026, tools.ToolZMap: 0.011,
			tools.ToolMirai: 0.465, tools.ToolUnicorn: 0,
		},
		Countries: []CountryW{{"CN", 22}, {"US", 12}, {"BR", 8}, {"VN", 7}, {"IN", 6},
			{"RU", 5}, {"TR", 5}, {"IR", 4}, {"KR", 4}, {"TW", 3}, {"ID", 3}, {"NL", 2}},
		PortRows: []PortRow{
			{7547, 29.5, 5.0, 4.0}, {2323, 25.1, 9.2, 25.3}, {5358, 9.1, 14.4, 11.5},
			{22, 5.7, 11.2, 8.0}, {6289, 5.4, 2.0, 3.0}, {7574, 3.0, 12.1, 3.5},
			{7545, 2.5, 3.0, 38.8 * 0.3}, {23231, 2.0, 2.5, 7.4}, {80, 2.0, 4.0, 3.0},
			{8080, 1.5, 2.0, 2.0},
		},
		TailPorts: tailCommon, TailScan: 14, TailPkt: 35, TailSrc: 20,
		FullRangeNoise: 0.03, SinglePortFrac: 0.80, CampaignSinglePort: 0.62, MultiPortMax: 10,
		VerticalScans: 8, InstPacketShare: 0.08, PairRate: 0.35,
		CollabShare: 0.01, CollabHostsMax: 6,
		Biases: []PortBias{{3389, "CN", 0.7}, {5555, "CN", 0.2}, {443, "US", 0.5}, {80, "US", 0.35}},
	},
	2018: {
		Year: 2018, Days: 61, PacketsPerDayM: 133, ScansPerMonthK: 137, SourcesK: 5500,
		ToolShares: map[tools.Tool]float64{
			tools.ToolMasscan: 0.209, tools.ToolNMap: 0.032, tools.ToolZMap: 0.047,
			tools.ToolMirai: 0.192, tools.ToolUnicorn: 0,
		},
		Countries: []CountryW{{"RU", 18}, {"CN", 16}, {"US", 11}, {"BR", 7}, {"VN", 6},
			{"IN", 5}, {"TR", 4}, {"IR", 4}, {"KR", 3}, {"ID", 3}, {"NL", 3}, {"EG", 2}},
		PortRows: []PortRow{
			{8291, 19.2, 38.8 * 0.2, 38.8}, {21, 6.7, 2.0, 9.8}, {2323, 6.3, 9.2, 10.4},
			{22, 4.3, 3.1, 7.3}, {3389, 4.1, 1.1, 3.5}, {8545, 3.0, 1.4, 2.0},
			{80, 3.0, 2.6, 4.0}, {8080, 2.0, 1.4, 3.0}, {5555, 2.0, 1.5, 2.5},
			{1433, 1.5, 1.2, 1.5},
		},
		TailPorts: tailCommon, TailScan: 48, TailPkt: 45, TailSrc: 18,
		FullRangeNoise: 0.05, SinglePortFrac: 0.78, CampaignSinglePort: 0.52, MultiPortMax: 12,
		VerticalScans: 40, InstPacketShare: 0.12, PairRate: 0.5,
		CollabShare: 0.015, CollabHostsMax: 8,
		// §6.5: Russia performed >80% of all Masscan scans in 2018.
		Biases: []PortBias{{3389, "CN", 0.7}, {3306, "CN", 0.75}, {443, "US", 0.5}, {80, "US", 0.35}},
	},
	2019: {
		Year: 2019, Days: 60, PacketsPerDayM: 117, ScansPerMonthK: 238, SourcesK: 5000,
		ToolShares: map[tools.Tool]float64{
			tools.ToolMasscan: 0.219, tools.ToolNMap: 0.036, tools.ToolZMap: 0.027,
			tools.ToolMirai: 0.162, tools.ToolUnicorn: 0,
		},
		Countries: []CountryW{{"CN", 15}, {"RU", 9}, {"US", 8}, {"BR", 8}, {"VN", 7},
			{"IN", 6}, {"IR", 5}, {"ID", 5}, {"TR", 4}, {"EG", 4}, {"NL", 3}, {"TW", 3}},
		PortRows: []PortRow{
			{80, 20.2, 2.0, 30.4}, {8080, 19.2, 1.8, 30.3}, {2323, 9.9, 1.5, 18.8},
			{5555, 5.5, 1.2, 11.7}, {5900, 3.9, 1.0, 8.2}, {22, 2.5, 2.9, 3.0},
			{3389, 2.0, 1.6, 2.5}, {81, 2.0, 1.7, 3.0}, {443, 1.5, 1.4, 1.5},
			{1433, 1.0, 1.0, 1.0},
		},
		TailPorts: tailCommon, TailScan: 32, TailPkt: 84, TailSrc: 10,
		FullRangeNoise: 0.07, SinglePortFrac: 0.76, CampaignSinglePort: 0.4, MultiPortMax: 16,
		VerticalScans: 400, InstPacketShare: 0.15, PairRate: 0.65,
		CollabShare: 0.02, CollabHostsMax: 8,
		// The US "almost completely abandons" HTTP scanning in 2019 (§5.4).
		Biases: []PortBias{{3389, "CN", 0.7}, {3306, "CN", 0.75}, {443, "US", 0.5}, {80, "US", 0.02}},
	},
	2020: {
		Year: 2020, Days: 61, PacketsPerDayM: 283, ScansPerMonthK: 222, SourcesK: 5000,
		ToolShares: map[tools.Tool]float64{
			tools.ToolMasscan: 0.205, tools.ToolNMap: 0.050, tools.ToolZMap: 0.131,
			tools.ToolMirai: 0.149, tools.ToolUnicorn: 0,
		},
		Countries: []CountryW{{"CN", 13}, {"US", 3.2}, {"RU", 8}, {"BR", 8}, {"VN", 7},
			{"IN", 7}, {"IR", 6}, {"ID", 6}, {"TR", 4}, {"EG", 4}, {"NL", 4}, {"TW", 3}},
		PortRows: []PortRow{
			{80, 16.0, 1.0, 35.9}, {8080, 13.8, 0.8, 30.4}, {81, 4.6, 26.0 * 0.05, 13.2},
			{5555, 4.1, 0.7, 11.0}, {2323, 2.8, 0.6, 9.1}, {3389, 2.5, 26.0, 2.5},
			{22, 2.0, 0.8, 2.0}, {443, 1.5, 0.7, 1.5}, {1433, 1.0, 0.5, 1.0},
			{5900, 1.0, 0.5, 1.5},
		},
		TailPorts: tailCommon, TailScan: 50, TailPkt: 68, TailSrc: 9,
		FullRangeNoise: 0.10, SinglePortFrac: 0.74, CampaignSinglePort: 0.25, MultiPortMax: 20,
		VerticalScans: 2134, InstPacketShare: 0.20, PairRate: 0.87,
		CollabShare: 0.03, CollabHostsMax: 12,
		Biases: []PortBias{{3389, "CN", 0.8}, {3306, "CN", 0.8}, {443, "US", 0.5}, {80, "US", 0.02}},
	},
	2021: {
		Year: 2021, Days: 59, PacketsPerDayM: 281, ScansPerMonthK: 290, SourcesK: 4500,
		ToolShares: map[tools.Tool]float64{
			tools.ToolMasscan: 0.251, tools.ToolNMap: 0.068, tools.ToolZMap: 0.092,
			tools.ToolMirai: 0.024, tools.ToolUnicorn: 0,
		},
		Countries: []CountryW{{"CN", 12}, {"US", 5}, {"RU", 8}, {"BR", 7}, {"VN", 7},
			{"IN", 7}, {"IR", 6}, {"ID", 5}, {"NL", 5}, {"TR", 4}, {"EG", 4}, {"DE", 3}},
		PortRows: []PortRow{
			{80, 13.6, 1.1, 46.0}, {8080, 12.4, 0.8, 42.0}, {5555, 3.0, 0.8, 13.5},
			{81, 1.8, 0.6, 9.8}, {8443, 1.6, 0.5, 8.3}, {6379, 1.5, 1.4, 1.5},
			{22, 1.4, 1.3, 1.4}, {3389, 1.2, 0.8, 1.2}, {443, 1.0, 0.7, 1.0},
			{2323, 0.8, 0.5, 3.0},
		},
		TailPorts: tailCommon, TailScan: 61, TailPkt: 91, TailSrc: 12,
		FullRangeNoise: 0.13, SinglePortFrac: 0.70, CampaignSinglePort: 0.2, MultiPortMax: 24,
		VerticalScans: 150, InstPacketShare: 0.25, PairRate: 0.87,
		CollabShare: 0.08, CollabHostsMax: 16,
		Biases: []PortBias{{3389, "CN", 0.8}, {3306, "CN", 0.8}, {443, "US", 0.5}},
	},
	2022: {
		Year: 2022, Days: 61, PacketsPerDayM: 285, ScansPerMonthK: 777, SourcesK: 4200,
		ToolShares: map[tools.Tool]float64{
			tools.ToolMasscan: 0.099, tools.ToolNMap: 0.023, tools.ToolZMap: 0.037,
			tools.ToolMirai: 0.010, tools.ToolUnicorn: 0,
		},
		Countries: []CountryW{{"CN", 11}, {"US", 7}, {"RU", 7}, {"BR", 7}, {"VN", 7},
			{"IN", 6}, {"IR", 6}, {"ID", 5}, {"NL", 6}, {"TR", 4}, {"TW", 3}, {"EG", 3}},
		PortRows: []PortRow{
			{80, 4.4, 1.4, 48.5}, {8080, 3.9, 1.2, 41.9}, {5555, 1.0, 0.9, 13.0},
			{81, 0.7, 0.6, 10.2}, {8443, 0.7, 0.5, 7.7}, {22, 0.6, 2.7, 1.0},
			{443, 0.5, 1.3, 1.2}, {2375, 0.5, 1.3, 0.8}, {2376, 0.5, 1.2, 0.8},
			{3389, 0.4, 0.9, 0.9},
		},
		TailPorts: tailCommon, TailScan: 87, TailPkt: 88, TailSrc: 9,
		FullRangeNoise: 0.16, SinglePortFrac: 0.65, CampaignSinglePort: 0.15, MultiPortMax: 32,
		VerticalScans: 20, InstPacketShare: 0.28, PairRate: 0.87,
		CollabShare: 0.25, CollabHostsMax: 24,
		Biases: []PortBias{{3389, "CN", 0.8}, {3306, "CN", 0.8}, {443, "US", 0.5}, {8545, "VN", 0.7}},
	},
	2023: {
		Year: 2023, Days: 60, PacketsPerDayM: 402, ScansPerMonthK: 727, SourcesK: 5500,
		ToolShares: map[tools.Tool]float64{
			tools.ToolMasscan: 0.002, tools.ToolNMap: 0.00004, tools.ToolZMap: 0.12,
			tools.ToolMirai: 0.39, tools.ToolUnicorn: 0,
		},
		Countries: []CountryW{{"CN", 10}, {"US", 8}, {"RU", 6}, {"BR", 7}, {"VN", 7},
			{"IN", 6}, {"IR", 5}, {"ID", 5}, {"NL", 7}, {"TR", 4}, {"TW", 3}, {"DE", 3}},
		PortRows: []PortRow{
			{2323, 1.3, 0.9, 11.5}, {80, 1.2, 1.5, 30.6}, {443, 1.1, 1.1, 8.0},
			{22, 1.0, 1.8, 6.0}, {8080, 1.0, 1.5, 27.1}, {52869, 0.8, 0.5, 17.7},
			{60023, 0.8, 0.4, 17.4}, {3389, 0.7, 1.3, 2.0}, {5555, 0.5, 0.5, 5.0},
			{81, 0.5, 0.4, 4.0},
		},
		TailPorts: tailCommon, TailScan: 99, TailPkt: 90, TailSrc: 12,
		FullRangeNoise: 0.18, SinglePortFrac: 0.62, CampaignSinglePort: 0.15, MultiPortMax: 40,
		VerticalScans: 60, InstPacketShare: 0.51, PairRate: 0.87,
		CollabShare: 0.30, CollabHostsMax: 32,
		SizeMul: map[tools.Tool]float64{tools.ToolZMap: 0.6, tools.ToolMirai: 0.1},
		Biases:  []PortBias{{3389, "CN", 0.8}, {3306, "CN", 0.8}, {443, "US", 0.5}, {8545, "VN", 0.7}},
	},
	2024: {
		Year: 2024, Days: 59, PacketsPerDayM: 345, ScansPerMonthK: 1300, SourcesK: 5000,
		ToolShares: map[tools.Tool]float64{
			tools.ToolMasscan: 0.002, tools.ToolNMap: 0.00006, tools.ToolZMap: 0.45,
			tools.ToolMirai: 0.053, tools.ToolUnicorn: 0,
		},
		Countries: []CountryW{{"CN", 10}, {"US", 9}, {"RU", 6}, {"BR", 6}, {"VN", 7},
			{"IN", 6}, {"IR", 5}, {"ID", 5}, {"NL", 8}, {"TR", 4}, {"TW", 3}, {"DE", 3}},
		PortRows: []PortRow{
			{3389, 1.5, 2.2, 3.0}, {22, 1.4, 1.8, 4.0}, {80, 1.5, 1.5, 37.4},
			{443, 1.3, 1.2, 16.2}, {8080, 1.3, 1.2, 29.0}, {2323, 0.6, 0.5, 12.1},
			{5900, 0.4, 0.4, 10.5}, {5555, 0.2, 0.3, 4.0}, {81, 0.2, 0.3, 3.0},
			{52869, 0.1, 0.2, 2.0},
		},
		TailPorts: tailCommon, TailScan: 96, TailPkt: 90, TailSrc: 14,
		FullRangeNoise: 0.20, SinglePortFrac: 0.60, CampaignSinglePort: 0.12, MultiPortMax: 48,
		VerticalScans: 200, InstPacketShare: 0.51, PairRate: 0.87,
		CollabShare: 0.40, CollabHostsMax: 48,
		SizeMul: map[tools.Tool]float64{tools.ToolZMap: 0.3, tools.ToolMirai: 0.1},
		Biases:  []PortBias{{3389, "CN", 0.8}, {3306, "CN", 0.8}, {443, "US", 0.5}, {8545, "VN", 0.7}},
	},
}

// Years lists the measured years in order.
func Years() []int {
	return []int{2015, 2016, 2017, 2018, 2019, 2020, 2021, 2022, 2023, 2024}
}

// ProfileFor returns the calibration profile of a year.
func ProfileFor(year int) (*Profile, error) {
	p, ok := profiles[year]
	if !ok {
		return nil, fmt.Errorf("workload: no profile for year %d (have 2015-2024)", year)
	}
	// Derive paper-scale packets per scan once.
	if p.MeanPacketsPerScan == 0 {
		totalPackets := p.PacketsPerDayM * 1e6 * float64(p.Days)
		totalScans := p.ScansPerMonthK * 1e3 * p.months()
		p.MeanPacketsPerScan = totalPackets / totalScans
	}
	// Two-phase behavior grows as stateless sweeps become front-ends for
	// application-level harvesting (Spoki measured roughly a third of
	// handshake-capable scanners in 2021); model a climb from 15% to 51%.
	if p.TwoPhaseShare == 0 {
		p.TwoPhaseShare = 0.15 + 0.04*float64(year-2015)
		if p.TwoPhaseShare > 0.55 {
			p.TwoPhaseShare = 0.55
		}
	}
	return p, nil
}
