package workload

import (
	"fmt"
	"time"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/telescope"
)

// paperTelescopeSize is the average monitored address count of §3.2.
const paperTelescopeSize = 71536

// Config parameterizes a simulated measurement year.
type Config struct {
	// Year selects the profile (2015–2024).
	Year int
	// Seed drives all randomness; equal seeds give equal packet streams.
	Seed uint64
	// Scale is the campaign down-scaling factor relative to the paper's
	// volumes (default 0.002 ≈ a few thousand campaigns per recent year).
	Scale float64
	// TelescopeSize is the simulated monitored-address count (default
	// 4096). The detector thresholds are rescaled consistently, so
	// qualification semantics match the paper's telescope.
	TelescopeSize int
	// TelescopeSeed selects which addresses the telescope monitors,
	// independent of the workload seed; zero means "use Seed". Two
	// scenarios differing only in TelescopeSeed model two vantage points
	// observing the same scanning ecosystem (§7).
	TelescopeSeed uint64
	// Disclosures injects vulnerability-disclosure events (Fig. 1).
	Disclosures []Disclosure
	// Outages marks capture gaps (§3.2: routing withdrawals and server
	// failures); traffic arriving inside them is dropped and counted.
	Outages []Outage
	// Registry may be shared across scenarios; built from Seed when nil.
	Registry *inetmodel.Registry
}

// Outage is one capture gap, in days from the window start.
type Outage struct {
	StartDay float64
	Days     float64
}

// Disclosure is a vulnerability-disclosure event: from Day onward, extra
// campaigns target Port, starting at PeakPerDay per day (paper scale) and
// decaying exponentially with the given e-folding time in days. §4.3 finds
// this interest dies down "in a matter of weeks".
type Disclosure struct {
	Day        int
	Port       uint16
	PeakPerDay float64
	DecayDays  float64
}

// Scenario is a fully materialized simulation of one measurement year.
type Scenario struct {
	// Profile is the year's calibration.
	Profile *Profile
	// Telescope is the simulated capture infrastructure.
	Telescope *telescope.Telescope
	// Registry is the synthetic Internet.
	Registry *inetmodel.Registry
	// DetectorConfig holds the §3.4 thresholds rescaled to the simulated
	// telescope size.
	DetectorConfig core.Config
	// Start is the capture window start (ns since epoch, virtual clock).
	Start int64
	// WindowNanos is the capture window length.
	WindowNanos int64

	cfg   Config
	specs []*spec
}

// WindowStart pins each year's capture window to February 1, matching the
// paper's "first half of the year" collection without any wall-clock use.
// Exported so archive-backed analyses can reconstruct a year's window
// without building a scenario.
func WindowStart(year int) int64 {
	return time.Date(year, time.February, 1, 0, 0, 0, 0, time.UTC).UnixNano()
}

// NewScenario builds the year's telescope, registry and campaign specs.
func NewScenario(cfg Config) (*Scenario, error) {
	prof, err := ProfileFor(cfg.Year)
	if err != nil {
		return nil, err
	}
	if cfg.Scale == 0 {
		cfg.Scale = 0.002
	}
	if cfg.Scale < 0 {
		return nil, fmt.Errorf("workload: negative scale %v", cfg.Scale)
	}
	if cfg.TelescopeSize == 0 {
		cfg.TelescopeSize = 4096
	}
	if cfg.TelescopeSize < 64 {
		return nil, fmt.Errorf("workload: telescope size %d too small", cfg.TelescopeSize)
	}

	telSeed := cfg.TelescopeSeed
	if telSeed == 0 {
		telSeed = cfg.Seed
	}
	// ScaledConfig carries the §3.2 operational policy: ports 23 and 445
	// blocked at ingress from telescope.PolicyEpoch on. The gate is the
	// deployment date, not the profile year — windows before the epoch see
	// the ports, later ones do not.
	telCfg := telescope.ScaledConfig(telSeed, cfg.TelescopeSize)
	tel, err := telescope.New(telCfg)
	if err != nil {
		return nil, err
	}

	reg := cfg.Registry
	if reg == nil {
		reg = inetmodel.BuildRegistry(cfg.Seed)
	}

	// Threshold rescaling: the paper's 100-distinct-destination floor is a
	// coverage threshold relative to its telescope; expiry stretches by the
	// inverse size ratio because per-flow inter-hit gaps do, but is capped
	// at 12 hours so daily-recurring scanners still close between days.
	ratio := float64(tel.Size()) / paperTelescopeSize
	minDsts := int(core.DefaultMinDistinctDsts*ratio + 0.5)
	if minDsts < 6 {
		minDsts = 6
	}
	expiry := int64(float64(core.DefaultExpiry) / ratio)
	if maxExpiry := int64(12 * time.Hour); expiry > maxExpiry {
		expiry = maxExpiry
	}
	s := &Scenario{
		Profile:   prof,
		Telescope: tel,
		Registry:  reg,
		DetectorConfig: core.Config{
			TelescopeSize:   tel.Size(),
			MinDistinctDsts: minDsts,
			MinRatePPS:      core.DefaultMinRatePPS,
			Expiry:          expiry,
		},
		Start:       WindowStart(cfg.Year),
		WindowNanos: int64(prof.Days) * 24 * int64(time.Hour),
		cfg:         cfg,
	}
	day := float64(24 * time.Hour)
	for _, o := range cfg.Outages {
		tel.AddOutage(s.Start+int64(o.StartDay*day), s.Start+int64((o.StartDay+o.Days)*day))
	}
	if err := s.build(); err != nil {
		return nil, err
	}
	return s, nil
}

// Summary reports what a scenario generated.
type Summary struct {
	// Campaigns is the number of scan specs (including shards and
	// institutional daily scans, excluding background noise sources).
	Campaigns int
	// BackgroundSources is the number of sub-threshold noise sources.
	BackgroundSources int
	// Probes is the total number of packets emitted.
	Probes uint64
	// InstitutionalProbes is the share generated by the known-scanner
	// roster.
	InstitutionalProbes uint64

	// TwoPhaseCampaigns is the number of scan specs designated two-phase
	// (only set by RunReactive; Run leaves it zero).
	TwoPhaseCampaigns int
	// Responses counts the SYN-ACKs the reactive telescope synthesized.
	Responses uint64
	// Phase2Probes counts accepted phase-two segments (handshake ACKs and
	// payload pushes admitted past the SYN filter).
	Phase2Probes uint64
}
