package workload

import (
	"reflect"
	"testing"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/telescope"
	"github.com/synscan/synscan/internal/tools"
)

// sharedRegistry avoids rebuilding the synthetic Internet per test.
var sharedRegistry = inetmodel.BuildRegistry(1)

func testScenario(t testing.TB, year int, scale float64) *Scenario {
	t.Helper()
	s, err := NewScenario(Config{
		Year: year, Seed: 1, Scale: scale, TelescopeSize: 2048,
		Registry: sharedRegistry,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestProfileFor(t *testing.T) {
	for _, y := range Years() {
		p, err := ProfileFor(y)
		if err != nil {
			t.Fatalf("year %d: %v", y, err)
		}
		if p.Year != y || p.Days < 29 || p.Days > 61 {
			t.Fatalf("year %d profile: %+v", y, p)
		}
		if p.MeanPacketsPerScan <= 0 {
			t.Fatalf("year %d: MeanPacketsPerScan not derived", y)
		}
		total := 0.0
		for _, share := range p.ToolShares {
			total += share
		}
		if total > 1 {
			t.Fatalf("year %d: tool shares sum to %v > 1", y, total)
		}
	}
	if _, err := ProfileFor(2014); err == nil {
		t.Fatal("2014 must not have a profile")
	}
}

func TestProfileShapeTable1(t *testing.T) {
	// The 30-fold growth and the scan-count explosion must be encoded.
	p15, _ := ProfileFor(2015)
	p24, _ := ProfileFor(2024)
	if ratio := p24.PacketsPerDayM / p15.PacketsPerDayM; ratio < 28 || ratio > 35 {
		t.Fatalf("packet growth = %v, want ~31x", ratio)
	}
	if ratio := p24.ScansPerMonthK / p15.ScansPerMonthK; ratio < 35 || ratio > 45 {
		t.Fatalf("scan growth = %v, want ~39x", ratio)
	}
	// Mirai dominates 2017 scans; ZMap dominates 2024.
	p17, _ := ProfileFor(2017)
	if p17.ToolShares[tools.ToolMirai] < 0.4 {
		t.Fatal("2017 must be Mirai-dominated")
	}
	if p24.ToolShares[tools.ToolZMap] < 0.4 {
		t.Fatal("2024 must be ZMap-dominated")
	}
	// NMap fades from 31.7% to ~0.
	if p15.ToolShares[tools.ToolNMap] < 0.3 || p24.ToolShares[tools.ToolNMap] > 0.001 {
		t.Fatal("NMap trajectory wrong")
	}
}

func TestNewScenarioValidation(t *testing.T) {
	if _, err := NewScenario(Config{Year: 1999}); err == nil {
		t.Fatal("unknown year must error")
	}
	if _, err := NewScenario(Config{Year: 2020, Scale: -1}); err == nil {
		t.Fatal("negative scale must error")
	}
	if _, err := NewScenario(Config{Year: 2020, TelescopeSize: 10}); err == nil {
		t.Fatal("tiny telescope must error")
	}
}

func TestScenarioDeterministic(t *testing.T) {
	collect := func() []packet.Probe {
		s := testScenario(t, 2016, 0.0004)
		var ps []packet.Probe
		s.Run(func(p *packet.Probe) { ps = append(ps, *p) })
		return ps
	}
	a := collect()
	b := collect()
	if len(a) != len(b) {
		t.Fatalf("probe counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("probe %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestRunTimeOrderedAndInWindow(t *testing.T) {
	s := testScenario(t, 2020, 0.0004)
	last := int64(0)
	n := 0
	s.Run(func(p *packet.Probe) {
		if p.Time < last {
			t.Fatalf("probe %d out of order: %d < %d", n, p.Time, last)
		}
		last = p.Time
		if p.Time < s.Start || p.Time > s.Start+s.WindowNanos+int64(1e9) {
			t.Fatalf("probe outside window: %d", p.Time)
		}
		n++
	})
	if n < 1000 {
		t.Fatalf("only %d probes generated", n)
	}
}

func TestRunSummary(t *testing.T) {
	s := testScenario(t, 2022, 0.0004)
	var n uint64
	sum := s.Run(func(*packet.Probe) { n++ })
	if sum.Probes != n {
		t.Fatalf("summary probes %d != emitted %d", sum.Probes, n)
	}
	if sum.Campaigns == 0 || sum.BackgroundSources == 0 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.InstitutionalProbes == 0 {
		t.Fatal("no institutional traffic generated")
	}
	// Institutional share should be near the profile's target (28% 2022).
	share := float64(sum.InstitutionalProbes) / float64(sum.Probes)
	if share < 0.1 || share > 0.5 {
		t.Fatalf("institutional share = %v, want ~0.28", share)
	}
}

func TestDetectorIntegration(t *testing.T) {
	s := testScenario(t, 2020, 0.0004)
	var scans []*core.Scan
	det := core.NewDetector(s.DetectorConfig, func(sc *core.Scan) { scans = append(scans, sc) })
	var accepted, dropped uint64
	s.Run(func(p *packet.Probe) {
		if s.Telescope.Observe(p) == telescope.Accepted {
			accepted++
			det.Ingest(p)
		} else {
			dropped++
		}
	})
	det.FlushAll()
	if accepted == 0 {
		t.Fatal("telescope accepted nothing")
	}
	if dropped == 0 {
		t.Fatal("backscatter/policy traffic must exist and be dropped")
	}
	qualified := 0
	toolSeen := map[tools.Tool]int{}
	for _, sc := range scans {
		if sc.Qualified {
			qualified++
			toolSeen[sc.Tool]++
		}
	}
	if qualified < 50 {
		t.Fatalf("only %d qualified campaigns", qualified)
	}
	// 2020: Masscan, ZMap, Mirai and custom all present.
	for _, tl := range []tools.Tool{tools.ToolMasscan, tools.ToolZMap, tools.ToolMirai, tools.ToolCustom} {
		if toolSeen[tl] == 0 {
			t.Errorf("no qualified %v campaigns (saw %v)", tl, toolSeen)
		}
	}
}

func TestBlockedPortsPolicy(t *testing.T) {
	// The ports are always in the policy set, but the drop is gated on the
	// deployment date: a 2017 window falls after telescope.PolicyEpoch,
	// a 2015 window before it.
	s := testScenario(t, 2017, 0.0004)
	if !s.Telescope.PortBlocked(23) || !s.Telescope.PortBlocked(445) {
		t.Fatal("telescope must carry 23/445 in the policy set")
	}
	probe := func(sc *Scenario, port uint16) packet.Probe {
		return packet.Probe{Time: sc.Start, Dst: sc.Telescope.At(0),
			DstPort: port, Flags: packet.FlagSYN}
	}
	p := probe(s, 23)
	if got := s.Telescope.Check(&p); got != telescope.DropPolicy {
		t.Fatalf("2017 port-23 probe: %v, want policy drop", got)
	}
	// 2015: policy not yet deployed, telnet probes pass.
	s15 := testScenario(t, 2015, 0.0004)
	p = probe(s15, 23)
	if got := s15.Telescope.Check(&p); got != telescope.Accepted {
		t.Fatalf("2015 port-23 probe: %v, want accepted", got)
	}
}

func TestDisclosureInjection(t *testing.T) {
	mk := func(disc []Disclosure) map[int]int {
		s, err := NewScenario(Config{
			Year: 2019, Seed: 2, Scale: 0.0004, TelescopeSize: 2048,
			Registry: sharedRegistry, Disclosures: disc,
		})
		if err != nil {
			t.Fatal(err)
		}
		perDay := map[int]int{}
		s.Run(func(p *packet.Probe) {
			if p.DstPort == 9999 {
				day := int((p.Time - s.Start) / int64(24*3600*1e9))
				perDay[day]++
			}
		})
		return perDay
	}
	baseline := mk(nil)
	event := mk([]Disclosure{{Day: 10, Port: 9999, PeakPerDay: 40000, DecayDays: 4}})
	if len(baseline) > 5 {
		t.Fatalf("port 9999 should be quiet at baseline: %v", baseline)
	}
	// Surge around day 10, decayed by day 40.
	surge := event[10] + event[11] + event[12]
	late := event[38] + event[39] + event[40]
	if surge == 0 {
		t.Fatal("no disclosure surge generated")
	}
	if late*5 > surge {
		t.Fatalf("disclosure interest did not decay: surge=%d late=%d", surge, late)
	}
}

func TestInstitutionalPortCoverage(t *testing.T) {
	// In 2024 the full-range orgs must cover (nearly) the whole port space.
	s := testScenario(t, 2024, 0.0008)
	censys, _ := s.Registry.OrgByName("Censys")
	var seen inetmodel.PortSet
	s.Run(func(p *packet.Probe) {
		if p.Src>>16 == uint32(censys.Block) {
			seen.Add(p.DstPort)
		}
	})
	if seen.Len() == 0 {
		t.Fatal("no Censys probes")
	}
	// Probes cycle the permuted port list without replacement, so coverage
	// equals min(probes, 65536); the budget should be big enough for a
	// large share even at test scale.
	if seen.Len() < 10000 {
		t.Fatalf("Censys covered only %d ports", seen.Len())
	}
}

func TestShardsSplitTargets(t *testing.T) {
	// Find a collaborative scan in 2022 (high CollabShare) and verify its
	// shards do not overlap destinations.
	s := testScenario(t, 2022, 0.0004)
	var collab []*spec
	for _, sp := range s.specs {
		if sp.kind == kindScan && sp.stride > 1 {
			collab = append(collab, sp)
		}
	}
	if len(collab) == 0 {
		t.Fatal("2022 scenario generated no collaborative shards")
	}
	// Group shards by shared permutation.
	byPerm := map[interface{}][]*spec{}
	for _, sp := range collab {
		byPerm[sp.perm] = append(byPerm[sp.perm], sp)
	}
	for _, group := range byPerm {
		if len(group) < 2 {
			continue
		}
		seen := map[uint32]bool{}
		for _, sp := range group {
			for i := 0; i < sp.count; i++ {
				// After a full cycle of the shared permutation the scan
				// revisits addresses by design; only the first cycle must
				// partition cleanly.
				if uint64(sp.strideOff+i*sp.stride) >= sp.perm.Len() {
					break
				}
				di := sp.perm.Apply(uint64(sp.strideOff + i*sp.stride))
				dst := s.Telescope.At(int(di))
				if seen[dst] {
					t.Fatal("shards overlap destinations")
				}
				seen[dst] = true
			}
		}
		return // one verified group is enough
	}
}

func TestYearsCoverAllProfiles(t *testing.T) {
	if len(Years()) != len(profiles) {
		t.Fatal("Years() out of sync with profiles map")
	}
}

func BenchmarkScenarioRun2020(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := NewScenario(Config{
			Year: 2020, Seed: 1, Scale: 0.0004, TelescopeSize: 2048,
			Registry: sharedRegistry,
		})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		s.Run(func(*packet.Probe) { n++ })
		b.ReportMetric(float64(n), "probes/run")
	}
}
