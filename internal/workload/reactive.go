package workload

import (
	"container/heap"

	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/reactive"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

// twoPhaseSalt separates the two-phase designation hash from the jitter
// stream that shares jitSeed.
const twoPhaseSalt = 0x74776f7068617365 // "twophase"

// isTwoPhase designates which scan campaigns run a second, stateful phase:
// stateless masscan-style sweeps, a per-year share of them (TwoPhaseShare),
// chosen by a stateless hash of the spec's jitter seed so that designation
// consumes no generator randomness — Run's passive packet stream is
// bit-identical whether or not a reactive run ever happens.
func (s *Scenario) isTwoPhase(sp *spec) bool {
	if sp.kind != kindScan || sp.inst || sp.prober.Tool() != tools.ToolMasscan {
		return false
	}
	share := s.Profile.TwoPhaseShare
	return float64(hash64(sp.jitSeed^twoPhaseSalt)%(1<<20))/(1<<20) < share
}

// RunReactive replays the scenario through a reactive telescope: every
// arriving packet is classified by rt, and for campaigns designated
// two-phase, a synthesized SYN-ACK triggers the scanner's second phase — a
// kernel-stack handshake SYN seconds later, then the completing ACK and a
// payload push at round-trip cadence, exactly the masscan→stateful-stack
// chain Spoki characterizes.
//
// emit is called once per arriving packet with the responder's disposition
// (emit sees drops too, so callers can keep full pcap traces; gate ingest on
// d.Reason == telescope.Accepted). Synthesized SYN-ACKs are delivered inside
// the Disposition; they leave the telescope rather than arrive at it.
//
// The run is deterministic: follow-up timing and handshake state derive from
// per-spec seeds, and the single-threaded heap loop orders packets by
// virtual time.
func (s *Scenario) RunReactive(rt *reactive.Telescope, emit func(*packet.Probe, reactive.Disposition)) Summary {
	var sum Summary
	h := make(specHeap, 0, len(s.specs))
	for _, sp := range s.specs {
		if sp.count <= 0 {
			continue
		}
		sp.idx = 0
		sp.twoPhase = s.isTwoPhase(sp)
		sp.tp, sp.fr, sp.pending = nil, nil, nil
		h = append(h, sp)
		switch sp.kind {
		case kindScan:
			sum.Campaigns++
			if sp.twoPhase {
				sum.TwoPhaseCampaigns++
			}
		case kindBackground:
			sum.BackgroundSources++
		}
	}
	heap.Init(&h)

	for h.Len() > 0 {
		sp := h[0]
		p := sp.probeAt(s.Telescope, sp.idx)
		d := rt.Observe(&p)
		emit(&p, d)
		sum.Probes++
		if sp.inst {
			sum.InstitutionalProbes++
		}
		if d.Phase == 2 {
			sum.Phase2Probes++
		}

		var follow *spec
		if d.Responded {
			sum.Responses++
			switch {
			case sp.twoPhase:
				// A scout probe was answered: the scanning host's kernel
				// stack opens a real connection after a think-time delay.
				if sp.tp == nil {
					fseed := rng.New(sp.jitSeed).Derive("reactive/followup")
					sp.tp = tools.NewTwoPhase(sp.prober, p.Src, fseed.Derive("stack"))
					sp.fr = fseed.Derive("timing")
				}
				hs := sp.tp.HandshakeSYN(p.Dst, p.DstPort)
				// Spoki: the second phase arrives seconds after the scout.
				hs.Time = p.Time + int64(1e9) + sp.fr.Int63n(2e9)
				follow = &spec{kind: kindFollowup, count: 1, tp: sp.tp,
					fr: sp.fr, pending: []packet.Probe{hs}}
			case sp.kind == kindFollowup:
				// Our handshake SYN was answered: complete the handshake and
				// push the application payload one round trip later.
				rtt := int64(30e6) + sp.fr.Int63n(int64(170e6))
				ack := sp.tp.HandshakeACK(&p, d.Resp.Seq)
				ack.Time = p.Time + rtt
				push := sp.tp.PayloadPush(&p, d.Resp.Seq)
				push.Time = p.Time + 2*rtt
				follow = &spec{kind: kindFollowup, count: 2, tp: sp.tp,
					fr: sp.fr, pending: []packet.Probe{ack, push}}
			}
		}

		sp.idx++
		if sp.idx >= sp.count {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
		if follow != nil {
			heap.Push(&h, follow)
		}
	}
	return sum
}
