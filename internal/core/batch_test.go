package core

import (
	"reflect"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/faultinject"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

// makeRunStream builds a same-source-run-heavy stream: the shape the sharded
// router's per-source batches have, and the shape IngestBatch's fast path is
// built for. Occasional multi-hour gaps force mid-stream expiries so the
// slow-path fallback is exercised too, and a slice of handshake segments
// exercises the non-phase-1 absorb loop.
func makeRunStream(runs, runLen int, seed uint64) []packet.Probe {
	r := rng.New(seed)
	var stream []packet.Probe
	tm := int64(0)
	for run := 0; run < runs; run++ {
		src := uint32(1 + run%97)
		pr := tools.NewProber(tools.Tools[run%len(tools.Tools)], src,
			r.DeriveN("run", uint64(run)))
		if run > 0 && run%31 == 0 {
			tm += 3 * int64(time.Hour) // expire everything resident
		}
		for i := 0; i < runLen; i++ {
			p := pr.Probe(uint32(0xc0a80000+run*runLen+i), uint16(20+i%5*1000))
			tm += int64(r.Intn(4)) * int64(time.Millisecond)
			p.Time = tm
			if i%11 == 10 {
				// A phase-two handshake segment in the middle of the run.
				p.Flags = packet.FlagPSH | packet.FlagACK
				p.Payload = []byte("SSH-2.0-probe")
			}
			stream = append(stream, p)
		}
	}
	return stream
}

// mutateStream runs a stream through a seeded faultinject.Stream so the
// differential corpus includes drops, duplicates, reordering and clock skew.
func mutateStream(stream []packet.Probe, cfg faultinject.StreamConfig) []packet.Probe {
	fs := faultinject.NewStream(cfg)
	var out []packet.Probe
	emit := func(p *packet.Probe) { out = append(out, *p) }
	for i := range stream {
		fs.Apply(&stream[i], emit)
	}
	fs.Flush(emit)
	return out
}

// batchCorpora is the stream set the IngestBatch differential tests run over.
func batchCorpora() map[string][]packet.Probe {
	mixed := makeMixedStream(12000, 400, 7)
	return map[string][]packet.Probe{
		"mixed":     mixed,
		"runs":      makeRunStream(300, 40, 3),
		"reordered": mutateStream(mixed, faultinject.StreamConfig{Seed: 5, ReorderRate: 0.1, SkewRate: 0.1, MaxSkew: int64(time.Second)}),
		"damaged":   mutateStream(makeRunStream(200, 30, 9), faultinject.StreamConfig{Seed: 8, DropRate: 0.05, DupRate: 0.05, ReorderRate: 0.05}),
	}
}

// TestIngestBatchMatchesSequential is the detector half of the differential
// suite: feeding any chunking of a stream through IngestBatch must leave the
// detector in the same state as the per-probe loop — same scans in the same
// emit order, same counters — because the fast path is only taken when it is
// provably equivalent.
func TestIngestBatchMatchesSequential(t *testing.T) {
	cfg := Config{TelescopeSize: testTelescopeSize}
	for name, stream := range batchCorpora() {
		seq, seqCounts := runSequential(t, cfg, stream)
		for _, chunk := range []int{1, 7, 64, 512, len(stream)} {
			var scans []*Scan
			d := NewDetector(cfg, func(s *Scan) { scans = append(scans, s) })
			for off := 0; off < len(stream); off += chunk {
				end := off + chunk
				if end > len(stream) {
					end = len(stream)
				}
				d.IngestBatch(stream[off:end])
			}
			d.FlushAll()
			if len(scans) != len(seq) {
				t.Fatalf("%s chunk=%d: %d scans, sequential %d", name, chunk, len(scans), len(seq))
			}
			for i := range seq {
				if !reflect.DeepEqual(*seq[i], *scans[i]) {
					t.Fatalf("%s chunk=%d: scan %d differs:\n seq:   %+v\n batch: %+v",
						name, chunk, i, *seq[i], *scans[i])
				}
			}
			var c [3]uint64
			c[0], c[1], c[2] = d.Counts()
			if c != seqCounts {
				t.Fatalf("%s chunk=%d: counts %v, sequential %v", name, chunk, c, seqCounts)
			}
		}
	}
}

// TestShardedBatchDifferential drives the sharded detector through
// IngestBatch (the zero-copy router entry) and holds it to the per-probe
// Ingest entry on every corpus — batching must not change routing, watermark
// timing or results — and to the sequential detector's multiset on the
// time-ordered corpora (the only ones the sharded equivalence is defined
// for; see the ShardedDetector contract).
func TestShardedBatchDifferential(t *testing.T) {
	cfg := Config{TelescopeSize: testTelescopeSize}
	scfg := ShardedConfig{
		Config:            cfg,
		Workers:           4,
		BatchSize:         64,
		WatermarkInterval: int64(10 * time.Minute),
	}
	timeOrdered := map[string]bool{"mixed": true, "runs": true}
	for name, stream := range batchCorpora() {
		_, perProbe := runSharded(t, scfg, stream)
		refSorted := canonicalScans(perProbe)

		var scans []*Scan
		sd := NewShardedDetector(scfg, func(s *Scan) { scans = append(scans, s) })
		for off := 0; off < len(stream); off += 100 {
			end := off + 100
			if end > len(stream) {
				end = len(stream)
			}
			sd.IngestBatch(stream[off:end])
		}
		sd.FlushAll()
		gotSorted := canonicalScans(scans)
		if len(gotSorted) != len(refSorted) {
			t.Fatalf("%s: %d scans, per-probe %d", name, len(gotSorted), len(refSorted))
		}
		for i := range refSorted {
			if !reflect.DeepEqual(*refSorted[i], *gotSorted[i]) {
				t.Fatalf("%s: scan %d differs:\n per-probe: %+v\n batch:     %+v",
					name, i, *refSorted[i], *gotSorted[i])
			}
		}
		if !timeOrdered[name] {
			continue
		}
		seq, seqCounts := runSequential(t, cfg, stream)
		seqSorted := canonicalScans(seq)
		if len(gotSorted) != len(seqSorted) {
			t.Fatalf("%s: %d scans, sequential %d", name, len(gotSorted), len(seqSorted))
		}
		for i := range seqSorted {
			if !reflect.DeepEqual(*seqSorted[i], *gotSorted[i]) {
				t.Fatalf("%s: scan %d differs:\n seq:     %+v\n sharded: %+v",
					name, i, *seqSorted[i], *gotSorted[i])
			}
		}
		opened, closed, qualified := sd.Counts()
		if [3]uint64{opened, closed, qualified} != seqCounts {
			t.Fatalf("%s: counts (%d,%d,%d), sequential %v", name, opened, closed, qualified, seqCounts)
		}
	}
}

// TestShardedIngestCopiesPayload pins the deep-copy contract of the router:
// the caller may reuse its probe's Payload backing immediately after Ingest
// (the packet.Decoder hands every decode the same buffer), and the campaign's
// payload-derived fields must still come out right.
func TestShardedIngestCopiesPayload(t *testing.T) {
	const n = 400
	cfg := ShardedConfig{
		Config:    Config{TelescopeSize: testTelescopeSize, MinDistinctDsts: 6},
		Workers:   2,
		BatchSize: 16,
	}
	want := []byte("GET / HT")

	// Reference run: stable payload buffers.
	var ref []*Scan
	rd := NewShardedDetector(cfg, func(s *Scan) { ref = append(ref, s) })
	for i := 0; i < n; i++ {
		p := packet.Probe{Time: int64(i) * int64(time.Millisecond), Src: 1,
			Dst: uint32(0x0a000000 + i), DstPort: 80}
		if i%2 == 0 {
			p.Flags = packet.FlagSYN
		} else {
			p.Flags = packet.FlagPSH | packet.FlagACK
			p.Payload = []byte("GET / HTTP/1.1\r\n")
		}
		rd.Ingest(&p)
	}
	rd.FlushAll()

	// Decoder-shaped run: one probe, one payload buffer, scribbled after
	// every Ingest the way the next Decode would overwrite it.
	var got []*Scan
	sd := NewShardedDetector(cfg, func(s *Scan) { got = append(got, s) })
	var p packet.Probe
	buf := make([]byte, 0, 64)
	for i := 0; i < n; i++ {
		p = packet.Probe{Time: int64(i) * int64(time.Millisecond), Src: 1,
			Dst: uint32(0x0a000000 + i), DstPort: 80, Payload: buf[:0]}
		if i%2 == 0 {
			p.Flags = packet.FlagSYN
		} else {
			p.Flags = packet.FlagPSH | packet.FlagACK
			p.Payload = append(p.Payload, "GET / HTTP/1.1\r\n"...)
		}
		sd.Ingest(&p)
		buf = p.Payload[:cap(p.Payload)]
		for j := range buf {
			buf[j] = 0xdb // poison: next decode would overwrite these bytes
		}
	}
	sd.FlushAll()

	if len(got) != len(ref) {
		t.Fatalf("%d scans, reference %d", len(got), len(ref))
	}
	for i := range ref {
		if !reflect.DeepEqual(*ref[i], *got[i]) {
			t.Fatalf("scan %d differs:\n ref: %+v\n got: %+v", i, *ref[i], *got[i])
		}
	}
	if len(got) != 1 || string(got[0].Payload) != string(want) {
		t.Fatalf("payload prefix corrupted: %q, want %q", got[0].Payload, want)
	}
}
