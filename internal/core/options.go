package core

import "github.com/synscan/synscan/internal/obs"

// Option configures NewDetector. The options surface replaces the previous
// pattern of every call site switching between NewDetector and
// NewShardedDetector on a worker count: construction is one call and the
// sharding/observability choices are orthogonal options.
type Option func(*options)

type options struct {
	workers int
	metrics *obs.Registry
}

// WithWorkers shards campaign detection across n goroutines (n <= 1 keeps
// the sequential detector). The detected campaign multiset is identical
// either way; see ShardedDetector for ordering guarantees.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithMetrics attaches an observability registry: the detector reports
// flow lifecycle counters (detector.flows.*), reorder clamps
// (detector.end_clamp), and — when sharded — queue depths, batch fill,
// watermark lag and merge duration. A nil registry disables metrics at a
// cost of one branch per probe.
func WithMetrics(reg *obs.Registry) Option {
	return func(o *options) { o.metrics = reg }
}

// NewDetector builds a campaign detector that calls emit for every closed
// flow. Zero Config fields are filled with the paper's defaults. By default
// the detector is the sequential single-goroutine implementation; pass
// WithWorkers(n > 1) for the sharded parallel variant and WithMetrics for
// pipeline observability. The returned Ingester is a *Detector or a
// *ShardedDetector accordingly.
func NewDetector(cfg Config, emit func(*Scan), opts ...Option) Ingester {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers > 1 {
		return newShardedDetector(ShardedConfig{Config: cfg, Workers: o.workers}, emit, o.metrics)
	}
	return newSequentialDetector(cfg, emit, newDetMetrics(o.metrics))
}

// detMetrics is the detector's nil-safe metric set. A nil *detMetrics is
// the disabled mode: hot paths guard with one pointer check.
type detMetrics struct {
	packets   *obs.Counter
	opened    *obs.Counter
	closed    *obs.Counter
	expired   *obs.Counter
	qualified *obs.Counter
	endClamp  *obs.Counter
	active    *obs.Gauge
}

func newDetMetrics(reg *obs.Registry) *detMetrics {
	if reg == nil {
		return nil
	}
	return &detMetrics{
		packets:   reg.Counter("detector.packets"),
		opened:    reg.Counter("detector.flows.opened"),
		closed:    reg.Counter("detector.flows.closed"),
		expired:   reg.Counter("detector.flows.expired"),
		qualified: reg.Counter("detector.flows.qualified"),
		endClamp:  reg.Counter("detector.end_clamp"),
		active:    reg.Gauge("detector.flows.active"),
	}
}
