package core

import (
	"testing"
	"time"

	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

const testTelescopeSize = 65536

func collector() (*[]*Scan, func(*Scan)) {
	var scans []*Scan
	return &scans, func(s *Scan) { scans = append(scans, s) }
}

// feedCampaign ingests n probes from one tool-driven source, spread evenly
// over the given duration, hitting n distinct destinations.
func feedCampaign(d Ingester, tool tools.Tool, src uint32, n int, start, dur int64, seed uint64) {
	r := rng.New(seed)
	pr := tools.NewProber(tool, src, r)
	for i := 0; i < n; i++ {
		p := pr.Probe(0xCB0A0000|uint32(i), 80)
		p.Time = start + dur*int64(i)/int64(n)
		d.Ingest(&p)
	}
}

func TestQualifyingCampaign(t *testing.T) {
	scans, emit := collector()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, emit)
	// 200 distinct destinations in 10 seconds.
	feedCampaign(d, tools.ToolMasscan, 0x0A000001, 200, 0, 10e9, 1)
	d.FlushAll()
	if len(*scans) != 1 {
		t.Fatalf("%d scans, want 1", len(*scans))
	}
	s := (*scans)[0]
	if !s.Qualified {
		t.Fatalf("scan not qualified: %+v", s)
	}
	if s.Tool != tools.ToolMasscan {
		t.Fatalf("tool = %v", s.Tool)
	}
	if s.DistinctDsts != 200 || s.Packets != 200 {
		t.Fatalf("dsts=%d packets=%d", s.DistinctDsts, s.Packets)
	}
	if len(s.Ports) != 1 || s.Ports[0] != 80 {
		t.Fatalf("ports = %v", s.Ports)
	}
	// Observed ~20 pps over a 1/65536 telescope -> ~1.3M pps extrapolated.
	if s.RatePPS < 1e6 || s.RatePPS > 2e6 {
		t.Fatalf("RatePPS = %v", s.RatePPS)
	}
	if s.Coverage <= 0 || s.Coverage > 1 {
		t.Fatalf("Coverage = %v", s.Coverage)
	}
	if s.SpeedMbps() <= 0 {
		t.Fatal("SpeedMbps must be positive")
	}
}

func TestTooFewDestinations(t *testing.T) {
	scans, emit := collector()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, emit)
	feedCampaign(d, tools.ToolZMap, 0x0A000002, 99, 0, 1e9, 2)
	d.FlushAll()
	if len(*scans) != 1 {
		t.Fatalf("%d scans", len(*scans))
	}
	if (*scans)[0].Qualified {
		t.Fatal("99 destinations must not qualify")
	}
	// Tool is classified regardless.
	if (*scans)[0].Tool != tools.ToolZMap {
		t.Fatalf("tool = %v", (*scans)[0].Tool)
	}
}

func TestTooSlowRate(t *testing.T) {
	scans, emit := collector()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, emit)
	// 150 probes over 40 minutes: observed 0.0625 pps -> ~4096 pps
	// extrapolated, above default. Stretch further: use a tiny telescope.
	d2 := NewDetector(Config{TelescopeSize: testTelescopeSize, MinRatePPS: 1e7}, emit)
	feedCampaign(d2, tools.ToolZMap, 0x0A000003, 150, 0, int64(40*time.Minute), 3)
	d2.FlushAll()
	_ = d
	if len(*scans) != 1 || (*scans)[0].Qualified {
		t.Fatal("slow scan must not qualify")
	}
}

func TestExpirySplitsScans(t *testing.T) {
	scans, emit := collector()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, emit)
	src := uint32(0x0A000004)
	feedCampaign(d, tools.ToolMirai, src, 150, 0, 5e9, 4)
	// Second burst two hours later.
	feedCampaign(d, tools.ToolMirai, src, 150, int64(2*time.Hour), 5e9, 5)
	d.FlushAll()
	if len(*scans) != 2 {
		t.Fatalf("%d scans, want 2 (gap > expiry must split)", len(*scans))
	}
	for _, s := range *scans {
		if s.Src != src || !s.Qualified || s.Tool != tools.ToolMirai {
			t.Fatalf("split scan wrong: %+v", s)
		}
	}
}

func TestNoSplitWithinExpiry(t *testing.T) {
	scans, emit := collector()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, emit)
	src := uint32(0x0A000005)
	feedCampaign(d, tools.ToolZMap, src, 100, 0, 5e9, 6)
	// 30-minute gap: same campaign.
	feedCampaign(d, tools.ToolZMap, src, 100, int64(30*time.Minute), 5e9, 7)
	d.FlushAll()
	if len(*scans) != 1 {
		t.Fatalf("%d scans, want 1", len(*scans))
	}
	if (*scans)[0].Packets != 200 {
		t.Fatalf("packets = %d", (*scans)[0].Packets)
	}
}

func TestMultipleSourcesIndependent(t *testing.T) {
	scans, emit := collector()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, emit)
	feedCampaign(d, tools.ToolZMap, 1, 120, 0, 5e9, 8)
	feedCampaign(d, tools.ToolMirai, 2, 120, 0, 5e9, 9)
	feedCampaign(d, tools.ToolNMap, 3, 120, 0, 5e9, 10)
	if d.ActiveFlows() != 3 {
		t.Fatalf("ActiveFlows = %d", d.ActiveFlows())
	}
	d.FlushAll()
	if d.ActiveFlows() != 0 {
		t.Fatal("flush must drain all flows")
	}
	got := map[uint32]tools.Tool{}
	for _, s := range *scans {
		got[s.Src] = s.Tool
	}
	want := map[uint32]tools.Tool{1: tools.ToolZMap, 2: tools.ToolMirai, 3: tools.ToolNMap}
	for src, tool := range want {
		if got[src] != tool {
			t.Fatalf("src %d classified %v, want %v", src, got[src], tool)
		}
	}
}

func TestLazyExpiryViaLRU(t *testing.T) {
	scans, emit := collector()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, emit)
	// Open three flows at t=0.
	for src := uint32(1); src <= 3; src++ {
		p := packet.Probe{Time: 0, Src: src, Dst: 100, DstPort: 80, Flags: packet.FlagSYN}
		d.Ingest(&p)
	}
	// Keep src 2 alive at t=50min.
	p := packet.Probe{Time: int64(50 * time.Minute), Src: 2, Dst: 101, DstPort: 80, Flags: packet.FlagSYN}
	d.Ingest(&p)
	// A probe at t=90min expires src 1 and 3 (idle since 0) but not 2.
	p = packet.Probe{Time: int64(90 * time.Minute), Src: 4, Dst: 102, DstPort: 80, Flags: packet.FlagSYN}
	d.Ingest(&p)
	if d.ActiveFlows() != 2 { // src 2 and 4
		t.Fatalf("ActiveFlows = %d, want 2", d.ActiveFlows())
	}
	if len(*scans) != 2 {
		t.Fatalf("emitted %d, want 2", len(*scans))
	}
	d.FlushAll()
	opened, closed, qualified := d.Counts()
	if opened != 4 || closed != 4 {
		t.Fatalf("opened=%d closed=%d", opened, closed)
	}
	if qualified != 0 {
		t.Fatalf("qualified=%d, single-probe flows cannot qualify", qualified)
	}
}

func TestPortsSortedDistinct(t *testing.T) {
	scans, emit := collector()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, emit)
	r := rng.New(11)
	pr := tools.NewMasscan(7, r)
	ports := []uint16{443, 80, 8080, 80, 443, 22}
	for i, port := range ports {
		p := pr.Probe(uint32(1000+i), port)
		p.Time = int64(i) * 1e8
		d.Ingest(&p)
	}
	d.FlushAll()
	got := (*scans)[0].Ports
	want := []uint16{22, 80, 443, 8080}
	if len(got) != len(want) {
		t.Fatalf("ports = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ports = %v, want %v", got, want)
		}
	}
}

func TestSingleBurstRateFloor(t *testing.T) {
	// All probes at the same instant: duration floor of 1s avoids Inf.
	scans, emit := collector()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, emit)
	r := rng.New(12)
	pr := tools.NewZMap(9, r)
	for i := 0; i < 150; i++ {
		p := pr.Probe(uint32(i), 80)
		p.Time = 1000
		d.Ingest(&p)
	}
	d.FlushAll()
	s := (*scans)[0]
	if s.RatePPS <= 0 || s.RatePPS > 150*float64(1<<32)/testTelescopeSize {
		t.Fatalf("RatePPS = %v", s.RatePPS)
	}
	if s.Duration() != 0 {
		t.Fatalf("Duration = %v", s.Duration())
	}
}

// TestReorderedProbeKeepsEndMonotonic: a slightly reordered probe must not
// move a flow's End backwards (pre-fix, Ingest assigned f.end = p.Time
// unconditionally, corrupting Duration/RatePPS).
func TestReorderedProbeKeepsEndMonotonic(t *testing.T) {
	scans, emit := collector()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, emit)
	times := []int64{10e9, 12e9, 11e9} // third probe arrives out of order
	for i, tm := range times {
		p := packet.Probe{Time: tm, Src: 1, Dst: uint32(i + 1), DstPort: 80, Flags: packet.FlagSYN}
		d.Ingest(&p)
	}
	d.FlushAll()
	if len(*scans) != 1 {
		t.Fatalf("%d scans, want 1", len(*scans))
	}
	s := (*scans)[0]
	if s.Start != 10e9 || s.End != 12e9 {
		t.Fatalf("Start=%d End=%d, want 10e9/12e9", s.Start, s.End)
	}
	if s.Duration() != 2 {
		t.Fatalf("Duration = %v, want 2s", s.Duration())
	}
}

// TestReorderedProbeDoesNotBreakExpiry: pre-fix, a stale reordered probe
// dragged a live flow's end backwards, so the next expiry pass closed a
// flow that was in fact recently active.
func TestReorderedProbeDoesNotBreakExpiry(t *testing.T) {
	scans, emit := collector()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, emit)
	ingest := func(tm int64, src uint32, dst uint32) {
		p := packet.Probe{Time: tm, Src: src, Dst: dst, DstPort: 80, Flags: packet.FlagSYN}
		d.Ingest(&p)
	}
	ingest(0, 0xA, 1)                     // flow A opens at t=0
	ingest(int64(50*time.Minute), 0xB, 2) // flow B active at t=50m
	ingest(int64(1*time.Minute), 0xB, 3)  // stale duplicate for B (reordered)
	ingest(int64(65*time.Minute), 0xC, 4) // cutoff t=5m: expires A only
	if d.ActiveFlows() != 2 {
		t.Fatalf("ActiveFlows = %d, want 2 (B recently active must survive)", d.ActiveFlows())
	}
	if len(*scans) != 1 || (*scans)[0].Src != 0xA {
		t.Fatalf("scans = %+v, want only flow A closed", *scans)
	}
}

// TestAdvanceTime: the clock can move without a probe, expiring idle flows.
func TestAdvanceTime(t *testing.T) {
	scans, emit := collector()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, emit).(*Detector)
	p := packet.Probe{Time: 0, Src: 1, Dst: 1, DstPort: 80, Flags: packet.FlagSYN}
	d.Ingest(&p)
	d.AdvanceTime(int64(30 * time.Minute))
	if len(*scans) != 0 {
		t.Fatal("flow expired before the idle window elapsed")
	}
	d.AdvanceTime(int64(2 * time.Hour))
	if len(*scans) != 1 {
		t.Fatalf("%d scans after clock passed expiry, want 1", len(*scans))
	}
	// Clock never moves backwards.
	d.AdvanceTime(0)
	if d.now != int64(2*time.Hour) {
		t.Fatalf("now = %d moved backwards", d.now)
	}
}

func TestConfigDefaults(t *testing.T) {
	d := NewDetector(Config{TelescopeSize: 10}, nil).(*Detector)
	if d.cfg.MinDistinctDsts != DefaultMinDistinctDsts ||
		d.cfg.MinRatePPS != DefaultMinRatePPS ||
		d.cfg.Expiry != DefaultExpiry {
		t.Fatalf("defaults not applied: %+v", d.cfg)
	}
	// nil emit must not crash.
	p := packet.Probe{Time: 1, Src: 1, Dst: 2, DstPort: 80, Flags: packet.FlagSYN}
	d.Ingest(&p)
	d.FlushAll()
}

func TestNewDetectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero TelescopeSize must panic")
		}
	}()
	NewDetector(Config{}, nil)
}

func BenchmarkIngest(b *testing.B) {
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, func(*Scan) {})
	r := rng.New(1)
	const sources = 4096
	probers := make([]tools.Prober, sources)
	for i := range probers {
		probers[i] = tools.NewMasscan(uint32(i+1), r.DeriveN("src", uint64(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := probers[i%sources]
		p := pr.Probe(uint32(i), 80)
		p.Time = int64(i) * 1e6
		d.Ingest(&p)
	}
}
