// Package core implements the paper's primary methodological contribution:
// grouping the individual SYN probes arriving at a telescope into scan
// campaigns (§3.4) and attributing each campaign to a scanning tool (§3.3,
// via internal/fingerprint).
//
// A scan campaign is a sequence of probes from one source address that hits
// at least MinDistinctDsts distinct telescope addresses at an extrapolated
// Internet-wide rate of at least MinRatePPS packets per second; a flow that
// stays silent for the Expiry window is closed. The detector is a streaming,
// single-pass structure: per-source state lives in a hash table threaded
// onto an intrusive LRU list ordered by last activity, so expiry is O(1)
// amortized per packet regardless of how many sources are live.
package core

import (
	"sort"
	"time"

	"github.com/synscan/synscan/internal/fingerprint"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/tools"
)

// Default thresholds from §3.4.
const (
	// DefaultMinDistinctDsts is the minimum number of distinct telescope
	// addresses a campaign must hit.
	DefaultMinDistinctDsts = 100
	// DefaultMinRatePPS is the minimum extrapolated Internet-wide probe
	// rate in packets per second.
	DefaultMinRatePPS = 100.0
	// DefaultExpiry closes flows after one hour of silence.
	DefaultExpiry = int64(time.Hour)
	// probeWireBits is the on-the-wire cost of one minimal SYN probe
	// (54-byte frame + 20 bytes Ethernet preamble/IFG/FCS overhead), used
	// to convert probe rates into link speeds as the paper reports them.
	probeWireBits = (packet.FrameLen + 20) * 8
)

// Config parameterizes the detector. The zero value is completed with the
// paper's defaults by NewDetector; TelescopeSize is mandatory.
type Config struct {
	// TelescopeSize is the number of monitored addresses, used to
	// extrapolate telescope-local observations to Internet-wide rates.
	TelescopeSize int
	// MinDistinctDsts is the campaign qualification threshold on distinct
	// destinations (default 100).
	MinDistinctDsts int
	// MinRatePPS is the qualification threshold on the extrapolated
	// Internet-wide rate (default 100 pps).
	MinRatePPS float64
	// Expiry is the idle time after which a flow closes, in nanoseconds
	// (default 1 hour).
	Expiry int64
	// MinLinkedDsts is the number of destinations that must see both a scout
	// probe and a returning handshake segment from the same source before the
	// flow is flagged TwoPhase (default 1). Only reactive-telescope pipelines
	// deliver handshake segments, so passive runs never set the flag.
	MinLinkedDsts int
}

// ReferenceTelescopeSize is the monitored-address count the paper's §3.4
// thresholds were calibrated against (the /18 + /22 + /24 telescope).
const ReferenceTelescopeSize = 71536

// ScaledConfig returns a Config with the paper's thresholds rescaled to a
// telescope of the given size: a smaller telescope sees proportionally fewer
// hits from the same Internet-wide campaign, spaced further apart, so
// MinDistinctDsts shrinks linearly (floor 6 — below that, qualification is
// noise) and the idle expiry stretches inversely (capped at 12 hours so state
// still ages out). At ReferenceTelescopeSize and above this is the paper's
// default Config. Shared by the replay tools (synalyze, syningest) so both
// derive identical campaigns from the same capture.
func ScaledConfig(telescopeSize int) Config {
	cfg := Config{TelescopeSize: telescopeSize}
	if scaled := DefaultMinDistinctDsts * telescopeSize / ReferenceTelescopeSize; scaled >= 6 {
		cfg.MinDistinctDsts = scaled
	} else {
		cfg.MinDistinctDsts = 6
	}
	if telescopeSize < ReferenceTelescopeSize && telescopeSize > 0 {
		expiry := int64(float64(DefaultExpiry) * ReferenceTelescopeSize / float64(telescopeSize))
		if max := int64(12 * time.Hour); expiry > max {
			expiry = max
		}
		cfg.Expiry = expiry
	}
	return cfg
}

// Scan is one closed flow: a campaign if Qualified, otherwise background
// noise that did not meet the §3.4 thresholds (analyses still need those
// sources for the "top ports by sources" style tallies).
type Scan struct {
	// Src is the scanning source address.
	Src uint32
	// Start and End are the first and last probe times (ns).
	Start, End int64
	// Packets is the number of probes observed.
	Packets uint64
	// DistinctDsts is the number of distinct telescope addresses hit.
	DistinctDsts int
	// Ports are the distinct destination ports probed, ascending.
	Ports []uint16
	// Tool is the fingerprint classification.
	Tool tools.Tool
	// Qualified reports whether the flow met the campaign thresholds.
	Qualified bool
	// RatePPS is the extrapolated Internet-wide probe rate.
	RatePPS float64
	// Coverage is the estimated fraction of the IPv4 space targeted.
	Coverage float64

	// TwoPhase reports that at least MinLinkedDsts destinations saw both a
	// scout probe and a returning handshake segment — the Spoki two-phase
	// scanner signature, observable only behind a reactive telescope.
	TwoPhase bool
	// LinkedDsts is the number of destinations with a scout→handshake link.
	LinkedDsts int
	// ScoutPackets and HandshakePackets split Packets into phase-one SYNs
	// and phase-two (ACK/PSH-ACK) segments.
	ScoutPackets, HandshakePackets uint64
	// PayloadBytes sums the phase-two payload lengths.
	PayloadBytes uint64
	// Payload is the first payload's leading bytes (at most 8), nil when the
	// campaign never pushed data.
	Payload []byte
	// ISN is the campaign's sequence-number regime.
	ISN fingerprint.ISNClass
}

// Duration returns the scan's observed duration in seconds (at least zero).
func (s *Scan) Duration() float64 {
	return float64(s.End-s.Start) / float64(time.Second)
}

// SpeedMbps converts the extrapolated rate into megabits per second the way
// the paper reports scanning speeds (§5.2, §6.3).
func (s *Scan) SpeedMbps() float64 {
	return s.RatePPS * probeWireBits / 1e6
}

// Per-destination phase bits: which phases a destination has seen from the
// flow's source. A destination holding both bits is a scout→handshake link.
const (
	dstScout     = 1 << 0
	dstHandshake = 1 << 1
	dstLinked    = dstScout | dstHandshake
)

// flow is live per-source state, threaded on the LRU list.
type flow struct {
	src        uint32
	start, end int64
	packets    uint64
	dsts       map[uint32]uint8 // phase bits per destination
	linked     int              // destinations holding both phase bits
	ports      map[uint16]struct{}
	votes      fingerprint.Votes

	prev, next *flow
}

// absorb folds one probe into the flow: phase routing, per-destination link
// bits, port set and fingerprint votes. Shared by every detector variant so
// their per-packet semantics cannot drift apart.
func (f *flow) absorb(p *packet.Probe) {
	f.packets++
	var bit uint8 = dstScout
	if p.IsTCP() && p.Flags&packet.FlagSYN == 0 {
		// A phase-two segment: only a reactive telescope admits these.
		bit = dstHandshake
		f.votes.AddPhase2(p)
	} else {
		f.votes.Add(p)
	}
	old := f.dsts[p.Dst]
	if now := old | bit; now != old {
		f.dsts[p.Dst] = now
		if now == dstLinked {
			f.linked++
		}
	}
	f.ports[p.DstPort] = struct{}{}
}

// finalize turns a closed flow into a Scan under cfg's thresholds. Shared by
// the sequential and naive detectors so their results stay identical.
func finalize(cfg *Config, f *flow) *Scan {
	s := &Scan{
		Src:              f.src,
		Start:            f.start,
		End:              f.end,
		Packets:          f.packets,
		DistinctDsts:     len(f.dsts),
		Tool:             f.votes.Classify(),
		LinkedDsts:       f.linked,
		HandshakePackets: uint64(f.votes.Handshakes),
		PayloadBytes:     f.votes.PayloadBytes,
		ISN:              f.votes.ISN(),
	}
	s.ScoutPackets = s.Packets - s.HandshakePackets
	minLinked := cfg.MinLinkedDsts
	if minLinked <= 0 {
		minLinked = 1
	}
	s.TwoPhase = f.linked >= minLinked
	if n := int(f.votes.PayloadPrefixLen); n > 0 {
		s.Payload = append([]byte(nil), f.votes.PayloadPrefix[:n]...)
	}
	s.Ports = make([]uint16, 0, len(f.ports))
	for p := range f.ports {
		s.Ports = append(s.Ports, p)
	}
	sort.Slice(s.Ports, func(i, j int) bool { return s.Ports[i] < s.Ports[j] })

	// Rate estimation: observed packets over observed duration, floored at
	// one second so single-burst flows do not produce infinite rates, then
	// extrapolated from the telescope to the full IPv4 space.
	durSec := s.Duration()
	if durSec < 1 {
		durSec = 1
	}
	observedPPS := float64(s.Packets) / durSec
	s.RatePPS = inetmodel.ExtrapolateRate(observedPPS, cfg.TelescopeSize)
	s.Coverage = inetmodel.ExtrapolateCoverage(s.DistinctDsts, cfg.TelescopeSize)
	s.Qualified = s.DistinctDsts >= cfg.MinDistinctDsts && s.RatePPS >= cfg.MinRatePPS
	return s
}

// Ingester is the streaming surface shared by the detector variants:
// the sequential Detector, the sweep-based NaiveDetector, and the parallel
// ShardedDetector, so pipelines can switch implementations by configuration
// (NewDetector with WithWorkers selects among them).
type Ingester interface {
	// Ingest processes one accepted probe.
	Ingest(*packet.Probe)
	// IngestBatch processes a time-ordered slice of accepted probes,
	// equivalent to calling Ingest on each in order. The slice and its
	// probes belong to the caller again when IngestBatch returns; nothing
	// in the detector retains a reference into it.
	IngestBatch([]packet.Probe)
	// FlushAll closes all remaining flows at end of capture.
	FlushAll()
	// ActiveFlows returns the number of currently open flows.
	ActiveFlows() int
	// Counts returns (flows opened, flows closed, campaigns qualified).
	Counts() (opened, closed, qualified uint64)
}

var (
	_ Ingester = (*Detector)(nil)
	_ Ingester = (*NaiveDetector)(nil)
	_ Ingester = (*ShardedDetector)(nil)
)

// Detector is the streaming campaign detector. Not safe for concurrent use.
type Detector struct {
	cfg   Config
	flows map[uint32]*flow
	// LRU list: head is the least recently active flow.
	head, tail *flow
	emit       func(*Scan)
	now        int64
	met        *detMetrics // nil when metrics are disabled

	// Free list of closed flows for reuse (threaded on next). Recycling
	// keeps the open/close churn of a long-running telescope from
	// allocating: a reused flow keeps its map buckets, so re-opening a
	// source costs no allocations at all. Bounded (maxFreeFlows, and flows
	// whose destination map grew past maxRecycledDsts are dropped) so a
	// burst cannot pin memory forever.
	free  *flow
	nfree int

	opened, closed, qualified uint64
}

// Flow recycling bounds: at most maxFreeFlows closed flows are retained for
// reuse, and a flow whose destination map exceeded maxRecycledDsts entries
// is released to the GC instead (clearing keeps map buckets, so one huge
// campaign would otherwise leave an oversized map parked on the free list).
const (
	maxFreeFlows    = 1 << 14
	maxRecycledDsts = 1 << 12
)

// newFlow returns a flow for src starting at start, reusing a recycled flow
// when one is available. Every field is reset here; the free list is the
// only place a flow outlives its close.
func (d *Detector) newFlow(src uint32, start int64) *flow {
	f := d.free
	if f == nil {
		return &flow{
			src:   src,
			start: start,
			dsts:  make(map[uint32]uint8),
			ports: make(map[uint16]struct{}),
		}
	}
	d.free = f.next
	d.nfree--
	f.src, f.start = src, start
	f.end, f.packets, f.linked = 0, 0, 0
	f.votes = fingerprint.Votes{}
	clear(f.dsts)
	clear(f.ports)
	f.prev, f.next = nil, nil
	return f
}

// recycle parks a closed flow on the free list for reuse. finalize copied
// everything the emitted Scan keeps, so nothing aliases the flow here.
func (d *Detector) recycle(f *flow) {
	if d.nfree >= maxFreeFlows || len(f.dsts) > maxRecycledDsts {
		return
	}
	f.prev = nil
	f.next = d.free
	d.free = f
	d.nfree++
}

// newSequentialDetector is the concrete sequential constructor behind
// NewDetector; met may be nil (metrics disabled).
func newSequentialDetector(cfg Config, emit func(*Scan), met *detMetrics) *Detector {
	if cfg.TelescopeSize <= 0 {
		panic("core: Config.TelescopeSize must be positive")
	}
	if cfg.MinDistinctDsts == 0 {
		cfg.MinDistinctDsts = DefaultMinDistinctDsts
	}
	if cfg.MinRatePPS == 0 {
		cfg.MinRatePPS = DefaultMinRatePPS
	}
	if cfg.Expiry == 0 {
		cfg.Expiry = DefaultExpiry
	}
	return &Detector{
		cfg:   cfg,
		flows: make(map[uint32]*flow),
		emit:  emit,
		met:   met,
	}
}

// Ingest processes one accepted telescope probe. Probes must arrive in
// non-decreasing time order (the capture layer guarantees this); small
// reordering is tolerated by expiring against the maximum time seen.
func (d *Detector) Ingest(p *packet.Probe) {
	if p.Time > d.now {
		d.now = p.Time
	}
	d.expireBefore(d.now - d.cfg.Expiry)

	f := d.flows[p.Src]
	if f == nil {
		f = d.newFlow(p.Src, p.Time)
		d.flows[p.Src] = f
		d.opened++
		if d.met != nil {
			d.met.opened.Inc()
			d.met.active.Add(1)
		}
	} else {
		d.lruUnlink(f)
	}
	// Clamp: a slightly reordered probe must not move the flow's end
	// backwards — Duration()/RatePPS would corrupt and the LRU's
	// monotonic-end ordering that expireBefore's early exit relies on
	// would break.
	if p.Time > f.end {
		f.end = p.Time
	} else if d.met != nil && p.Time < f.end {
		d.met.endClamp.Inc()
	}
	if d.met != nil {
		d.met.packets.Inc()
	}
	f.absorb(p)
	d.lruAppend(f)
}

// IngestBatch processes a time-ordered slice of probes, equivalent to calling
// Ingest on each in order. Runs of consecutive probes from one source — the
// shape the sharded router's per-source batching produces — take a fast path
// that performs the expiry sweep, flow lookup and LRU relink once per run
// instead of once per probe and folds the run's fingerprints in through
// fingerprint.Votes.AddBatch, so the steady-state absorb allocates nothing.
// The slice and its probes belong to the caller again when IngestBatch
// returns; nothing in the detector retains a reference into it (the pair
// cache drops payload headers, see Votes.setPrev).
func (d *Detector) IngestBatch(ps []packet.Probe) {
	for len(ps) > 0 {
		src := ps[0].Src
		n := 1
		for n < len(ps) && ps[n].Src == src {
			n++
		}
		d.ingestRun(ps[:n])
		ps = ps[n:]
	}
}

// ingestRun absorbs one same-source run. The fast path is taken only when it
// is provably equivalent to the per-probe loop: with now' the clock after the
// whole run and cutoff' = now' − Expiry, no resident flow may expire during
// the run (d.head.end ≥ cutoff', since per-probe cutoffs only approach
// cutoff' from below and ends only grow) and a freshly created flow must not
// expire between its own probes (first probe time ≥ cutoff' — otherwise the
// sequential detector would split the run into several flows). Anything else
// replays per probe.
func (d *Detector) ingestRun(run []packet.Probe) {
	now := d.now
	for i := range run {
		if run[i].Time > now {
			now = run[i].Time
		}
	}
	cutoff := now - d.cfg.Expiry
	f := d.flows[run[0].Src]
	if (d.head != nil && d.head.end < cutoff) || (f == nil && run[0].Time < cutoff) {
		for i := range run {
			d.Ingest(&run[i])
		}
		return
	}
	d.now = now
	if f == nil {
		f = d.newFlow(run[0].Src, run[0].Time)
		d.flows[f.src] = f
		d.opened++
		if d.met != nil {
			d.met.opened.Inc()
			d.met.active.Add(1)
		}
	} else {
		d.lruUnlink(f)
	}
	phase1 := true
	for i := range run {
		p := &run[i]
		if p.Time > f.end {
			f.end = p.Time
		} else if d.met != nil && p.Time < f.end {
			d.met.endClamp.Inc()
		}
		if p.IsTCP() && p.Flags&packet.FlagSYN == 0 {
			phase1 = false
		}
	}
	if d.met != nil {
		d.met.packets.Add(uint64(len(run)))
	}
	if phase1 {
		// All probes route to the scout phase: do the per-destination and
		// port bookkeeping here and hand the fingerprinting to the batched
		// tally (equivalent to per-probe Votes.Add, proven by the
		// differential tests).
		f.packets += uint64(len(run))
		for i := range run {
			p := &run[i]
			if old := f.dsts[p.Dst]; old&dstScout == 0 {
				set := old | dstScout
				f.dsts[p.Dst] = set
				if set == dstLinked {
					f.linked++
				}
			}
			f.ports[p.DstPort] = struct{}{}
		}
		f.votes.AddBatch(run)
	} else {
		for i := range run {
			f.absorb(&run[i])
		}
	}
	d.lruAppend(f)
}

// AdvanceTime advances the detector's clock to t (if later than any time
// seen) without ingesting a probe, closing flows that have been idle past
// the expiry window. The sharded detector broadcasts time watermarks through
// this entry point so that a shard whose own sources went quiet still
// retires its flows while the rest of the stream progresses.
func (d *Detector) AdvanceTime(t int64) {
	if t > d.now {
		d.now = t
	}
	d.expireBefore(d.now - d.cfg.Expiry)
}

// expireBefore closes every flow whose last activity predates cutoff.
func (d *Detector) expireBefore(cutoff int64) {
	for d.head != nil && d.head.end < cutoff {
		f := d.head
		d.lruUnlink(f)
		delete(d.flows, f.src)
		if d.met != nil {
			d.met.expired.Inc()
		}
		d.close(f)
	}
}

// FlushAll closes all remaining flows (end of capture).
func (d *Detector) FlushAll() {
	for d.head != nil {
		f := d.head
		d.lruUnlink(f)
		delete(d.flows, f.src)
		d.close(f)
	}
}

// close finalizes a flow into a Scan and emits it.
func (d *Detector) close(f *flow) {
	d.closed++
	if d.met != nil {
		d.met.closed.Inc()
		d.met.active.Add(-1)
	}
	s := finalize(&d.cfg, f)
	if s.Qualified {
		d.qualified++
		if d.met != nil {
			d.met.qualified.Inc()
		}
	}
	if d.emit != nil {
		d.emit(s)
	}
	d.recycle(f)
}

// ActiveFlows returns the number of currently open flows.
func (d *Detector) ActiveFlows() int { return len(d.flows) }

// Counts returns (flows opened, flows closed, campaigns qualified).
func (d *Detector) Counts() (opened, closed, qualified uint64) {
	return d.opened, d.closed, d.qualified
}

func (d *Detector) lruAppend(f *flow) {
	f.prev = d.tail
	f.next = nil
	if d.tail != nil {
		d.tail.next = f
	} else {
		d.head = f
	}
	d.tail = f
}

func (d *Detector) lruUnlink(f *flow) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		d.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		d.tail = f.prev
	}
	f.prev, f.next = nil, nil
}
