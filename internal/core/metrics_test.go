package core

import (
	"sync"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
)

// TestDetectorMetricsMatchCounts: the registry's detector counters must
// agree with the detector's own Counts after a run with expiries, and the
// active-flow gauge must return to zero.
func TestDetectorMetricsMatchCounts(t *testing.T) {
	stream := makeMixedStream(20000, 512, 7)
	reg := obs.NewRegistry()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, func(*Scan) {},
		WithMetrics(reg))
	for i := range stream {
		d.Ingest(&stream[i])
	}
	d.FlushAll()

	opened, closed, qualified := d.Counts()
	s := reg.Snapshot()
	if got := s.Counter("detector.flows.opened"); got != opened {
		t.Fatalf("opened counter = %d, Counts = %d", got, opened)
	}
	if got := s.Counter("detector.flows.closed"); got != closed {
		t.Fatalf("closed counter = %d, Counts = %d", got, closed)
	}
	if got := s.Counter("detector.flows.qualified"); got != qualified {
		t.Fatalf("qualified counter = %d, Counts = %d", got, qualified)
	}
	if got := s.Counter("detector.packets"); got != uint64(len(stream)) {
		t.Fatalf("packets counter = %d, want %d", got, len(stream))
	}
	if exp := s.Counter("detector.flows.expired"); exp == 0 || exp > closed {
		t.Fatalf("expired counter = %d (closed %d): stream has mid-run gaps", exp, closed)
	}
	if act := s.Gauge("detector.flows.active"); act != 0 {
		t.Fatalf("active gauge = %d after FlushAll", act)
	}
}

// TestDetectorEndClampMetric: a reordered probe whose time is behind the
// flow's end must bump detector.end_clamp.
func TestDetectorEndClampMetric(t *testing.T) {
	reg := obs.NewRegistry()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, nil, WithMetrics(reg))
	mk := func(ts int64) packet.Probe {
		return packet.Probe{Time: ts, Src: 1, Dst: 2, DstPort: 80, Flags: packet.FlagSYN}
	}
	for _, ts := range []int64{100, 200, 150} { // 150 arrives late
		p := mk(ts)
		d.Ingest(&p)
	}
	if got := reg.Snapshot().Counter("detector.end_clamp"); got != 1 {
		t.Fatalf("end_clamp = %d, want 1", got)
	}
}

// TestShardedMetricsRollUp: with workers > 1, lifecycle counters roll up
// losslessly across shards and the router-level metrics appear.
func TestShardedMetricsRollUp(t *testing.T) {
	stream := makeMixedStream(30000, 1024, 9)
	cfg := Config{TelescopeSize: testTelescopeSize}
	reg := obs.NewRegistry()
	d := NewDetector(cfg, func(*Scan) {}, WithWorkers(4), WithMetrics(reg))
	if _, ok := d.(*ShardedDetector); !ok {
		t.Fatalf("WithWorkers(4) built %T, want *ShardedDetector", d)
	}
	for i := range stream {
		d.Ingest(&stream[i])
	}
	d.FlushAll()

	opened, closed, qualified := d.Counts()
	s := reg.Snapshot()
	if got := s.Counter("detector.flows.opened"); got != opened {
		t.Fatalf("opened counter = %d, Counts = %d", got, opened)
	}
	if got := s.Counter("detector.flows.closed"); got != closed {
		t.Fatalf("closed counter = %d, Counts = %d", got, closed)
	}
	if got := s.Counter("detector.flows.qualified"); got != qualified {
		t.Fatalf("qualified counter = %d, Counts = %d", got, qualified)
	}
	if got := s.Counter("detector.packets"); got != uint64(len(stream)) {
		t.Fatalf("packets counter = %d, want %d", got, len(stream))
	}
	if s.Counter("detector.shard.batches") == 0 {
		t.Fatal("no batches recorded")
	}
	if h := s.Histograms["detector.shard.batch_fill"]; h.Count == 0 || h.Max > DefaultBatchSize {
		t.Fatalf("batch_fill histogram wrong: %+v", h)
	}
	if h := s.Histograms["detector.shard.merge_ns"]; h.Count != 1 {
		t.Fatalf("merge_ns recorded %d times, want 1", h.Count)
	}
	if _, ok := s.Gauges["detector.shard.queue_depth"]; !ok {
		t.Fatal("aggregate queue-depth gauge missing")
	}
	if _, ok := s.Gauges["detector.shard.00.queue_depth"]; !ok {
		t.Fatal("per-shard queue-depth gauge missing")
	}
	if got := s.Gauge("detector.shard.queue_depth"); got != 0 {
		t.Fatalf("queue depth = %d after FlushAll", got)
	}
}

// TestSnapshotDuringShardedIngest scrapes Registry.Snapshot from a separate
// goroutine while the sharded detector ingests at full rate — the
// acceptance gate for race-safe observability (run with -race).
func TestSnapshotDuringShardedIngest(t *testing.T) {
	stream := makeMixedStream(60000, 2048, 11)
	reg := obs.NewRegistry()
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, func(*Scan) {},
		WithWorkers(4), WithMetrics(reg))

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			s := reg.Snapshot()
			if s.Counter("detector.flows.closed") > s.Counter("detector.flows.opened") {
				panic("closed overtook opened")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for i := range stream {
		d.Ingest(&stream[i])
	}
	d.FlushAll()
	close(done)
	wg.Wait()

	if got := reg.Snapshot().Counter("detector.packets"); got != uint64(len(stream)) {
		t.Fatalf("packets counter = %d, want %d", got, len(stream))
	}
}

// TestNewDetectorOptionEquivalence: the options constructor and the
// deprecated explicit constructors produce identical campaign multisets.
func TestNewDetectorOptionEquivalence(t *testing.T) {
	stream := makeMixedStream(20000, 512, 13)
	cfg := Config{TelescopeSize: testTelescopeSize}
	run := func(mk func(emit func(*Scan)) Ingester) []*Scan {
		var scans []*Scan
		d := mk(func(s *Scan) { scans = append(scans, s) })
		for i := range stream {
			d.Ingest(&stream[i])
		}
		d.FlushAll()
		return canonicalScans(scans)
	}
	viaOptions := run(func(emit func(*Scan)) Ingester {
		return NewDetector(cfg, emit, WithWorkers(3))
	})
	viaWrapper := run(func(emit func(*Scan)) Ingester {
		return NewShardedDetector(ShardedConfig{Config: cfg, Workers: 3}, emit)
	})
	sequential := run(func(emit func(*Scan)) Ingester {
		return NewDetector(cfg, emit)
	})
	if len(viaOptions) != len(viaWrapper) || len(viaOptions) != len(sequential) {
		t.Fatalf("scan counts diverge: options=%d wrapper=%d sequential=%d",
			len(viaOptions), len(viaWrapper), len(sequential))
	}
	for i := range viaOptions {
		if scanKey(viaOptions[i]) != scanKey(viaWrapper[i]) ||
			scanKey(viaOptions[i]) != scanKey(sequential[i]) {
			t.Fatalf("scan %d diverges across constructors", i)
		}
	}
}
