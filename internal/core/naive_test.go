package core

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

// scanKey canonicalizes a Scan for cross-detector comparison.
func scanKey(s *Scan) string {
	return fmt.Sprintf("%d/%d/%d/%d/%d/%v/%v/%v",
		s.Src, s.Start, s.End, s.Packets, s.DistinctDsts, s.Ports, s.Tool, s.Qualified)
}

// TestNaiveDetectorEquivalence drives both detector implementations with an
// identical multi-source stream (including expiry-inducing gaps) and
// requires identical closed-flow sets.
func TestNaiveDetectorEquivalence(t *testing.T) {
	cfg := Config{TelescopeSize: 65536}
	var a, b []*Scan
	lru := NewDetector(cfg, func(s *Scan) { a = append(a, s) })
	naive := NewNaiveDetector(cfg, func(s *Scan) { b = append(b, s) })

	r := rng.New(5)
	probers := make([]tools.Prober, 16)
	for i := range probers {
		tool := tools.Tools[i%len(tools.Tools)]
		probers[i] = tools.NewProber(tool, uint32(i+1), r.DeriveN("p", uint64(i)))
	}
	var stream []packet.Probe
	tm := int64(0)
	for i := 0; i < 5000; i++ {
		src := i % len(probers)
		p := probers[src].Probe(uint32(0xC0000000|i), uint16(80+i%3))
		tm += int64(r.Intn(50)) * int64(time.Millisecond)
		// Occasionally jump past the expiry window to force closures.
		if i%977 == 0 && i > 0 {
			tm += 2 * int64(time.Hour)
		}
		p.Time = tm
		stream = append(stream, p)
	}
	for i := range stream {
		lru.Ingest(&stream[i])
		naive.Ingest(&stream[i])
	}
	lru.FlushAll()
	naive.FlushAll()

	if len(a) != len(b) {
		t.Fatalf("closed-flow counts differ: lru=%d naive=%d", len(a), len(b))
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = scanKey(a[i])
		kb[i] = scanKey(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("scan %d differs:\n lru:   %s\n naive: %s", i, ka[i], kb[i])
		}
	}
}

func TestNaiveDetectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero TelescopeSize must panic")
		}
	}()
	NewNaiveDetector(Config{}, nil)
}

func TestNaiveDetectorActiveFlows(t *testing.T) {
	d := NewNaiveDetector(Config{TelescopeSize: 1000}, nil)
	p := packet.Probe{Time: 1, Src: 7, Dst: 9, DstPort: 80, Flags: packet.FlagSYN}
	d.Ingest(&p)
	if d.ActiveFlows() != 1 {
		t.Fatal("flow not opened")
	}
	d.FlushAll()
	if d.ActiveFlows() != 0 {
		t.Fatal("flush incomplete")
	}
}
