package core

import (
	"testing"
	"time"

	"github.com/synscan/synscan/internal/alloctest"
	"github.com/synscan/synscan/internal/packet"
)

// TestAllocBudgetAbsorb is the enforced budget for the detector's
// steady-state absorb: once flows, destination sets and port sets exist,
// IngestBatch over a warm stream — same sources, resident keys, clock inside
// the expiry window — must not allocate at all. This is the regime a
// long-running telescope spends almost all its time in; the budget is
// reported under "detector-absorb".
func TestAllocBudgetAbsorb(t *testing.T) {
	d := NewDetector(Config{TelescopeSize: testTelescopeSize}, nil)
	const sources, perSource = 32, 64
	stream := make([]packet.Probe, 0, sources*perSource)
	for s := 0; s < sources; s++ {
		for i := 0; i < perSource; i++ {
			stream = append(stream, packet.Probe{
				Time:    int64(s*perSource+i) * int64(time.Millisecond),
				Src:     uint32(s + 1),
				Dst:     uint32(0x0a000000 + i%48),
				DstPort: uint16(20 + i%8),
				Seq:     uint32(i) * 977,
				Flags:   packet.FlagSYN,
			})
		}
	}
	alloctest.Check(t, "detector-absorb", 0, func() {
		d.IngestBatch(stream)
	})
}
