package core

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

// makeMixedStream builds a deterministic time-ordered stream over many
// sources with expiry-inducing gaps, mixing tools so classification paths
// are exercised.
func makeMixedStream(n, sources int, seed uint64) []packet.Probe {
	r := rng.New(seed)
	probers := make([]tools.Prober, sources)
	for i := range probers {
		probers[i] = tools.NewProber(tools.Tools[i%len(tools.Tools)],
			uint32(i+1), r.DeriveN("src", uint64(i)))
	}
	stream := make([]packet.Probe, n)
	tm := int64(0)
	for i := 0; i < n; i++ {
		p := probers[i%sources].Probe(uint32(i), uint16(20+i%7*1000))
		tm += int64(r.Intn(8)) * int64(time.Millisecond)
		if i > 0 && i%(n/4) == 0 {
			tm += 2 * int64(time.Hour) // force mid-stream expiries
		}
		p.Time = tm
		stream[i] = p
	}
	return stream
}

// canonicalScans sorts a scan list by the sharded detector's merge order so
// that sequential and sharded outputs are comparable.
func canonicalScans(scans []*Scan) []*Scan {
	out := append([]*Scan(nil), scans...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Src < b.Src
	})
	return out
}

func runSequential(t *testing.T, cfg Config, stream []packet.Probe) ([]*Scan, [3]uint64) {
	t.Helper()
	var scans []*Scan
	d := NewDetector(cfg, func(s *Scan) { scans = append(scans, s) })
	for i := range stream {
		d.Ingest(&stream[i])
	}
	d.FlushAll()
	var c [3]uint64
	c[0], c[1], c[2] = d.Counts()
	return scans, c
}

func runSharded(t *testing.T, cfg ShardedConfig, stream []packet.Probe) (*ShardedDetector, []*Scan) {
	t.Helper()
	var scans []*Scan
	sd := NewShardedDetector(cfg, func(s *Scan) { scans = append(scans, s) })
	for i := range stream {
		p := stream[i] // copy: Ingest may retain batches past the call
		sd.Ingest(&p)
	}
	sd.FlushAll()
	return sd, scans
}

// TestShardedDifferential: for every worker count the sharded detector must
// emit the same multiset of Scans — same qualified set, ports, counts — as
// the sequential detector on an identical stream, and identical roll-up
// counters.
func TestShardedDifferential(t *testing.T) {
	stream := makeMixedStream(20000, 600, 7)
	cfg := Config{TelescopeSize: testTelescopeSize}
	seq, seqCounts := runSequential(t, cfg, stream)
	seqSorted := canonicalScans(seq)

	for workers := 1; workers <= 8; workers++ {
		scfg := ShardedConfig{
			Config:  cfg,
			Workers: workers,
			// Small batches and frequent watermarks stress the routing and
			// broadcast paths, not just the happy case.
			BatchSize:         64,
			WatermarkInterval: int64(10 * time.Minute),
		}
		sd, got := runSharded(t, scfg, stream)
		if len(got) != len(seq) {
			t.Fatalf("workers=%d: %d scans, sequential %d", workers, len(got), len(seq))
		}
		gotSorted := canonicalScans(got)
		for i := range seqSorted {
			if !reflect.DeepEqual(*seqSorted[i], *gotSorted[i]) {
				t.Fatalf("workers=%d: scan %d differs:\n seq:     %+v\n sharded: %+v",
					workers, i, *seqSorted[i], *gotSorted[i])
			}
		}
		opened, closed, qualified := sd.Counts()
		if [3]uint64{opened, closed, qualified} != seqCounts {
			t.Fatalf("workers=%d: counts (%d,%d,%d), sequential %v",
				workers, opened, closed, qualified, seqCounts)
		}
		if sd.ActiveFlows() != 0 {
			t.Fatalf("workers=%d: %d active after FlushAll", workers, sd.ActiveFlows())
		}
		// Per-shard counters roll up losslessly.
		var sum ShardStats
		for _, st := range sd.ShardStats() {
			sum.Opened += st.Opened
			sum.Closed += st.Closed
			sum.Qualified += st.Qualified
		}
		if sum.Opened != opened || sum.Closed != closed || sum.Qualified != qualified {
			t.Fatalf("workers=%d: shard stats %+v do not sum to %d/%d/%d",
				workers, sum, opened, closed, qualified)
		}
	}
}

// TestShardedSingleWorkerBitIdentical: with one shard, output must be
// byte-identical to the sequential detector including emit order.
func TestShardedSingleWorkerBitIdentical(t *testing.T) {
	stream := makeMixedStream(12000, 400, 11)
	cfg := Config{TelescopeSize: testTelescopeSize}
	seq, _ := runSequential(t, cfg, stream)
	_, got := runSharded(t, ShardedConfig{Config: cfg, Workers: 1, BatchSize: 128}, stream)
	if len(got) != len(seq) {
		t.Fatalf("%d scans, sequential %d", len(got), len(seq))
	}
	for i := range seq {
		a, b := fmt.Sprintf("%+v", *seq[i]), fmt.Sprintf("%+v", *got[i])
		if a != b {
			t.Fatalf("scan %d differs in content or order:\n seq:     %s\n sharded: %s", i, a, b)
		}
	}
}

// TestShardedWatermarkExpiresIdleShard: a shard whose own sources went
// silent must still close its flows as the rest of the stream advances —
// without waiting for FlushAll.
func TestShardedWatermarkExpiresIdleShard(t *testing.T) {
	sd := NewShardedDetector(ShardedConfig{
		Config:            Config{TelescopeSize: testTelescopeSize},
		Workers:           4,
		BatchSize:         1, // every probe ships immediately
		WatermarkInterval: int64(5 * time.Minute),
	}, nil)
	// One probe from the idle source, then a long stream of probes from a
	// source on a different shard marching time past the expiry window.
	idle := uint32(1)
	busy := uint32(2)
	for busy == idle || sd.shardOf(busy) == sd.shardOf(idle) {
		busy++
	}
	p := packet.Probe{Time: 0, Src: idle, Dst: 1, DstPort: 80, Flags: packet.FlagSYN}
	sd.Ingest(&p)
	deadline := time.Now().Add(10 * time.Second)
	tm := int64(0)
	for {
		tm += int64(10 * time.Minute)
		q := packet.Probe{Time: tm, Src: busy, Dst: 2, DstPort: 80, Flags: packet.FlagSYN}
		sd.Ingest(&q)
		if tm > int64(2*time.Hour) {
			// The watermark has passed idle's end plus expiry; once the
			// idle shard drains its queue the flow must close.
			time.Sleep(time.Millisecond)
			if _, closed, _ := sd.Counts(); closed >= 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("idle shard never expired its flow via watermarks")
			}
		}
	}
	sd.FlushAll()
	if opened, closed, _ := sd.Counts(); opened != 2 || closed != 2 {
		t.Fatalf("opened=%d closed=%d, want 2/2", opened, closed)
	}
}

// TestShardedConcurrentIngest drives the detector from several producer
// goroutines over disjoint source sets while another goroutine reads the
// counters — the -race exercise for the routing and roll-up paths.
func TestShardedConcurrentIngest(t *testing.T) {
	const producers = 4
	const perProducer = 4000
	var scans []*Scan
	sd := NewShardedDetector(ShardedConfig{
		Config:    Config{TelescopeSize: testTelescopeSize},
		Workers:   4,
		BatchSize: 32,
	}, func(s *Scan) { scans = append(scans, s) })

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sd.ActiveFlows()
				sd.Counts()
				sd.ShardStats()
			}
		}
	}()

	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			r := rng.New(uint64(pr) + 1)
			for i := 0; i < perProducer; i++ {
				src := uint32(pr)<<24 | uint32(i%50+1) // disjoint per producer
				p := packet.Probe{
					Time:    int64(i) * int64(time.Millisecond),
					Src:     src,
					Dst:     r.Uint32(),
					DstPort: 443,
					Flags:   packet.FlagSYN,
				}
				sd.Ingest(&p)
			}
		}(pr)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	sd.FlushAll()

	var total uint64
	for _, s := range scans {
		total += s.Packets
	}
	if total != producers*perProducer {
		t.Fatalf("packets accounted %d, want %d", total, producers*perProducer)
	}
	opened, closed, _ := sd.Counts()
	if opened != closed || int(closed) != len(scans) {
		t.Fatalf("opened=%d closed=%d scans=%d", opened, closed, len(scans))
	}
	if len(scans) != producers*50 {
		t.Fatalf("%d flows, want %d", len(scans), producers*50)
	}
}

// TestShardedIngestAfterFlushPanics pins the terminal contract of FlushAll.
func TestShardedIngestAfterFlushPanics(t *testing.T) {
	sd := NewShardedDetector(ShardedConfig{Config: Config{TelescopeSize: 10}, Workers: 2}, nil)
	sd.FlushAll()
	sd.FlushAll() // second flush is a no-op, not a panic
	defer func() {
		if recover() == nil {
			t.Fatal("Ingest after FlushAll must panic")
		}
	}()
	p := packet.Probe{Time: 1, Src: 1, Dst: 1, DstPort: 80, Flags: packet.FlagSYN}
	sd.Ingest(&p)
}

// TestShardedDefaults checks the zero-config completion.
func TestShardedDefaults(t *testing.T) {
	sd := NewShardedDetector(ShardedConfig{Config: Config{TelescopeSize: 10}}, nil)
	if sd.Workers() < 1 {
		t.Fatalf("Workers = %d", sd.Workers())
	}
	if sd.cfg.BatchSize != DefaultBatchSize || sd.cfg.QueueDepth != DefaultQueueDepth {
		t.Fatalf("defaults not applied: %+v", sd.cfg)
	}
	if sd.cfg.WatermarkInterval != DefaultExpiry/4 {
		t.Fatalf("WatermarkInterval = %d", sd.cfg.WatermarkInterval)
	}
	sd.FlushAll()
}
