package core

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/faultinject"
)

// TestShardedStallHookDeterminism: a seeded ShardStaller wired into
// StallHook delays random shards, which exercises backpressure (stalled
// queues fill and block Ingest) — yet the emitted scans and counters must be
// identical to an unstalled run on the same stream.
func TestShardedStallHookDeterminism(t *testing.T) {
	stream := makeMixedStream(8000, 300, 11)
	cfg := ShardedConfig{
		Config:  Config{TelescopeSize: testTelescopeSize},
		Workers: 4,
		// Small batches + shallow queues so stalls actually push back on
		// the router instead of hiding in buffering.
		BatchSize:         32,
		QueueDepth:        2,
		WatermarkInterval: int64(10 * time.Minute),
	}
	_, clean := runSharded(t, cfg, stream)

	staller := faultinject.NewShardStaller(3, 0.2, 200*time.Microsecond)
	cfg.StallHook = staller.Stall
	_, stalled := runSharded(t, cfg, stream)

	if staller.Stalls() == 0 {
		t.Fatal("staller never fired; the test exercised nothing")
	}
	a, b := canonicalScans(clean), canonicalScans(stalled)
	if len(a) != len(b) {
		t.Fatalf("stalled run emitted %d scans, clean run %d", len(b), len(a))
	}
	for i := range a {
		if !reflect.DeepEqual(*a[i], *b[i]) {
			t.Fatalf("scan %d differs under stall:\n clean:   %+v\n stalled: %+v", i, *a[i], *b[i])
		}
	}
}

// TestStallHookShardIndexes: the hook sees only valid shard indexes and is
// called from every shard that received work.
func TestStallHookShardIndexes(t *testing.T) {
	const workers = 4
	var calls [workers]atomic.Uint64
	cfg := ShardedConfig{
		Config:    Config{TelescopeSize: testTelescopeSize},
		Workers:   workers,
		BatchSize: 16,
		StallHook: func(shard int) {
			if shard < 0 || shard >= workers {
				panic("stall hook saw out-of-range shard index")
			}
			calls[shard].Add(1)
		},
	}
	stream := makeMixedStream(4000, 200, 5)
	_, _ = runSharded(t, cfg, stream)
	for i := range calls {
		if calls[i].Load() == 0 {
			t.Fatalf("shard %d never invoked the stall hook", i)
		}
	}
}
