package core

import (
	"sort"

	"github.com/synscan/synscan/internal/packet"
)

// NaiveDetector is the ablation baseline for the streaming Detector: the
// same campaign semantics, but expiry is implemented as a periodic full
// sweep over the flow table instead of the intrusive LRU list. With many
// live flows the sweep cost dominates; BenchmarkAblationExpiry quantifies
// the difference. Results are identical to Detector's given the same input
// (both close a flow the first time the stream's high-water mark passes the
// flow's last activity plus the expiry window, and the sweep runs on every
// packet).
type NaiveDetector struct {
	cfg   Config
	flows map[uint32]*flow
	emit  func(*Scan)
	now   int64

	opened, closed, qualified uint64
}

// NewNaiveDetector mirrors NewDetector for the sweep-based variant.
func NewNaiveDetector(cfg Config, emit func(*Scan)) *NaiveDetector {
	if cfg.TelescopeSize <= 0 {
		panic("core: Config.TelescopeSize must be positive")
	}
	if cfg.MinDistinctDsts == 0 {
		cfg.MinDistinctDsts = DefaultMinDistinctDsts
	}
	if cfg.MinRatePPS == 0 {
		cfg.MinRatePPS = DefaultMinRatePPS
	}
	if cfg.Expiry == 0 {
		cfg.Expiry = DefaultExpiry
	}
	return &NaiveDetector{cfg: cfg, flows: make(map[uint32]*flow), emit: emit}
}

// Ingest processes one probe, sweeping the whole table for expired flows.
func (d *NaiveDetector) Ingest(p *packet.Probe) {
	if p.Time > d.now {
		d.now = p.Time
	}
	cutoff := d.now - d.cfg.Expiry
	// Full sweep: the O(flows) cost the LRU design avoids. Expired flows
	// are closed in deterministic (source) order.
	var expired []uint32
	for src, f := range d.flows {
		if f.end < cutoff {
			expired = append(expired, src)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, src := range expired {
		f := d.flows[src]
		delete(d.flows, src)
		d.close(f)
	}

	f := d.flows[p.Src]
	if f == nil {
		f = &flow{
			src:   p.Src,
			start: p.Time,
			dsts:  make(map[uint32]uint8),
			ports: make(map[uint16]struct{}),
		}
		d.flows[p.Src] = f
		d.opened++
	}
	// Same reordering clamp as Detector.Ingest: end never moves backwards.
	if p.Time > f.end {
		f.end = p.Time
	}
	f.absorb(p)
}

// IngestBatch processes a slice of probes one by one; the naive baseline has
// no batched fast path (the sweep dominates regardless).
func (d *NaiveDetector) IngestBatch(ps []packet.Probe) {
	for i := range ps {
		d.Ingest(&ps[i])
	}
}

// FlushAll closes all remaining flows in source order.
func (d *NaiveDetector) FlushAll() {
	var srcs []uint32
	for src := range d.flows {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, src := range srcs {
		f := d.flows[src]
		delete(d.flows, src)
		d.close(f)
	}
}

// close shares Detector.close's qualification math via finalize.
func (d *NaiveDetector) close(f *flow) {
	d.closed++
	s := finalize(&d.cfg, f)
	if s.Qualified {
		d.qualified++
	}
	if d.emit != nil {
		d.emit(s)
	}
}

// ActiveFlows returns the number of currently open flows.
func (d *NaiveDetector) ActiveFlows() int { return len(d.flows) }

// Counts returns (flows opened, flows closed, campaigns qualified).
func (d *NaiveDetector) Counts() (opened, closed, qualified uint64) {
	return d.opened, d.closed, d.qualified
}
