package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
)

// Sharded-detector defaults.
const (
	// DefaultBatchSize is the number of probes handed to a shard per
	// channel message. Batching amortizes the channel synchronization over
	// many packets; 512 probes is ~18 KiB per batch.
	DefaultBatchSize = 512
	// DefaultQueueDepth is the number of batches buffered per shard before
	// Ingest blocks — the backpressure bound. Total buffering per shard is
	// BatchSize*QueueDepth probes.
	DefaultQueueDepth = 4
)

// ShardedConfig parameterizes a ShardedDetector. The embedded Config is the
// per-shard detector configuration; the zero value of every sharding knob is
// completed with a sensible default by NewShardedDetector.
type ShardedConfig struct {
	Config

	// Workers is the number of detector shards, each served by its own
	// goroutine (default GOMAXPROCS).
	Workers int
	// BatchSize is the number of probes per batch routed to a shard
	// (default DefaultBatchSize).
	BatchSize int
	// QueueDepth is the number of batches buffered per shard before Ingest
	// blocks (default DefaultQueueDepth).
	QueueDepth int
	// WatermarkInterval is the stream-time interval, in nanoseconds,
	// between time-watermark broadcasts (default Expiry/4). Watermarks
	// advance every shard's expiry clock even when the shard's own sources
	// are idle, bounding how long expired flows stay resident.
	WatermarkInterval int64
	// StallHook, when non-nil, is called by each worker goroutine with its
	// shard index before it processes a message. It exists so tests can
	// inject scheduling skew — e.g. a faultinject.ShardStaller that delays
	// one shard — and assert that results stay deterministic under
	// backpressure. It must not call back into the detector.
	StallHook func(shard int)
}

// ShardStats is one shard's view of the rolled-up detector counters.
type ShardStats struct {
	// Opened, Closed and Qualified mirror Detector.Counts for the shard.
	Opened, Closed, Qualified uint64
	// Active is the shard's open-flow count.
	Active int
}

// shard is one worker: a private sequential Detector fed by a bounded
// channel of probe batches. Only the worker goroutine touches det and scans;
// the atomic counters are the cross-goroutine observation window.
type shard struct {
	ch    chan shardMsg
	det   *Detector
	scans []*Scan

	opened, closed, qualified atomic.Uint64
	active                    atomic.Int64
}

// shardMsg is one unit of work: a batch of probes, optionally followed by a
// clock watermark. Watermarks ride behind any probes already routed so that
// per-source stream order is preserved. The batch is a pointer into the
// router's sync.Pool so the worker can return it (and its per-slot payload
// backings) without allocating a fresh slice header per recycle.
type shardMsg struct {
	batch     *[]packet.Probe
	watermark int64 // advance the shard clock to this time if > 0
}

// ShardedDetector runs N private Detectors in parallel, routing each probe
// to the shard that owns its source address (a hash of the source), so every
// source's probes are processed by one detector in arrival order and the
// campaign semantics of §3.4 are unchanged.
//
// Ingest batches probes per shard and hands them over bounded channels:
// when a shard falls behind, Ingest blocks (backpressure) instead of growing
// queues without bound. A time watermark derived from the maximum probe time
// is periodically broadcast to all shards so that idle shards keep expiring
// flows. Closed flows are buffered per shard and merged into a single
// deterministic emit stream when FlushAll is called.
//
// With Workers=1 the output — Scan values, emit order, and counters — is
// identical to feeding the sequential Detector directly, because the single
// shard processes the entire stream in order. With Workers>1 the emitted
// multiset of Scans is identical for time-ordered streams, and the emit
// order is canonical: ascending (End, Start, Src).
//
// Ingest is safe for concurrent producers (probes of one source must come
// from one producer for their order to be defined). ActiveFlows, Counts and
// ShardStats may be called concurrently with ingest.
type ShardedDetector struct {
	cfg    ShardedConfig
	shards []*shard
	emit   func(*Scan)
	wg     sync.WaitGroup
	pool   sync.Pool // batch buffers: *[]packet.Probe
	met    *shardedMetrics

	mu            sync.Mutex
	pending       []*[]packet.Probe // per-shard partial batch (pool-owned)
	maxTime       int64
	lastWatermark int64
	done          bool
}

// shardedMetrics is the router-level metric set (the per-flow lifecycle
// counters live in the shards' inner Detectors, shared through one
// detMetrics). A nil *shardedMetrics disables the instrumentation.
type shardedMetrics struct {
	batches      *obs.Counter
	batchFill    *obs.Histogram // probes per dispatched batch
	watermarkLag *obs.Histogram // stream-time ns a shard clock trailed a watermark
	mergeNS      *obs.Histogram // wall time of the FlushAll merge
}

// NewShardedDetector starts cfg.Workers shard goroutines and returns the
// router. emit is called for every closed flow, from the goroutine that
// calls FlushAll. Zero sharding knobs get defaults; the embedded Config is
// defaulted exactly like NewDetector.
//
// Deprecated: use NewDetector with WithWorkers (and WithMetrics for
// observability); this wrapper remains for callers that need the
// non-default sharding knobs of ShardedConfig.
func NewShardedDetector(cfg ShardedConfig, emit func(*Scan)) *ShardedDetector {
	return newShardedDetector(cfg, emit, nil)
}

func newShardedDetector(cfg ShardedConfig, emit func(*Scan), reg *obs.Registry) *ShardedDetector {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Expiry == 0 {
		cfg.Expiry = DefaultExpiry
	}
	if cfg.WatermarkInterval <= 0 {
		cfg.WatermarkInterval = cfg.Expiry / 4
	}
	sd := &ShardedDetector{
		cfg:     cfg,
		shards:  make([]*shard, cfg.Workers),
		emit:    emit,
		pending: make([]*[]packet.Probe, cfg.Workers),
	}
	if reg != nil {
		sd.met = &shardedMetrics{
			batches:      reg.Counter("detector.shard.batches"),
			batchFill:    reg.Histogram("detector.shard.batch_fill"),
			watermarkLag: reg.Histogram("detector.shard.watermark_lag_ns"),
			mergeNS:      reg.Histogram("detector.shard.merge_ns"),
		}
	}
	// All shards share one detMetrics: the counters are concurrency-safe
	// and the active-flow gauge moves by deltas, so the registry sees the
	// lossless roll-up across shards.
	dm := newDetMetrics(reg)
	sd.pool.New = func() any {
		b := make([]packet.Probe, 0, cfg.BatchSize)
		return &b
	}
	for i := range sd.shards {
		sh := &shard{ch: make(chan shardMsg, cfg.QueueDepth)}
		sh.det = newSequentialDetector(cfg.Config, func(s *Scan) { sh.scans = append(sh.scans, s) }, dm)
		sd.shards[i] = sh
		sd.wg.Add(1)
		go sd.run(i, sh)
	}
	if reg != nil {
		for i, sh := range sd.shards {
			ch := sh.ch
			// len(chan) is safe from any goroutine; the gauge reads lazily
			// at snapshot time so idle registries cost nothing.
			reg.GaugeFunc(fmt.Sprintf("detector.shard.%02d.queue_depth", i),
				func() int64 { return int64(len(ch)) })
		}
		reg.GaugeFunc("detector.shard.queue_depth", func() int64 {
			var n int64
			for _, sh := range sd.shards {
				n += int64(len(sh.ch))
			}
			return n
		})
	}
	return sd
}

// run is the shard worker loop.
func (sd *ShardedDetector) run(idx int, sh *shard) {
	defer sd.wg.Done()
	for msg := range sh.ch {
		if sd.cfg.StallHook != nil {
			sd.cfg.StallHook(idx)
		}
		if msg.batch != nil {
			sh.det.IngestBatch(*msg.batch)
		}
		if msg.watermark > 0 {
			if sd.met != nil {
				// How far this shard's clock trailed the stream's
				// high-water mark when the watermark arrived.
				if lag := msg.watermark - sh.det.now; lag > 0 {
					sd.met.watermarkLag.Observe(lag)
				}
			}
			sh.det.AdvanceTime(msg.watermark)
		}
		if msg.batch != nil {
			// Truncate in place and return the same pointer: the slots (and
			// their payload backings) are reused by the router's next fill,
			// with no per-recycle header allocation.
			*msg.batch = (*msg.batch)[:0]
			sd.pool.Put(msg.batch)
		}
		sh.publish()
	}
}

// publish refreshes the shard's externally visible counters.
func (sh *shard) publish() {
	opened, closed, qualified := sh.det.Counts()
	sh.opened.Store(opened)
	sh.closed.Store(closed)
	sh.qualified.Store(qualified)
	sh.active.Store(int64(sh.det.ActiveFlows()))
}

// observeBatch records one dispatched batch's fill level.
func (sd *ShardedDetector) observeBatch(batch *[]packet.Probe) {
	if sd.met != nil && batch != nil {
		sd.met.batches.Inc()
		sd.met.batchFill.Observe(int64(len(*batch)))
	}
}

// shardOf routes a source address to its shard: a multiplicative hash so
// that adjacent sources (one scanned /24, say) spread across workers.
func (sd *ShardedDetector) shardOf(src uint32) int {
	h := uint64(src) * 0x9e3779b97f4a7c15
	return int((h >> 33) % uint64(len(sd.shards)))
}

// Ingest routes one probe to its source's shard. The probe is deep-copied
// into the current batch — payload bytes included — so callers may reuse p
// and its Payload backing immediately (the packet.Decoder contract). Blocks
// when the target shard's queue is full. Must not be called after FlushAll.
func (sd *ShardedDetector) Ingest(p *packet.Probe) {
	sd.mu.Lock()
	if sd.done {
		sd.mu.Unlock()
		panic("core: ShardedDetector.Ingest after FlushAll")
	}
	sd.ingestLocked(p)
	sd.mu.Unlock()
}

// IngestBatch routes a slice of probes under one lock acquisition. Same
// copying and blocking semantics as Ingest.
func (sd *ShardedDetector) IngestBatch(ps []packet.Probe) {
	if len(ps) == 0 {
		return
	}
	sd.mu.Lock()
	if sd.done {
		sd.mu.Unlock()
		panic("core: ShardedDetector.Ingest after FlushAll")
	}
	for i := range ps {
		sd.ingestLocked(&ps[i])
	}
	sd.mu.Unlock()
}

// ingestLocked appends one probe to its shard's pending batch and dispatches
// full batches and watermark broadcasts. Caller holds sd.mu.
func (sd *ShardedDetector) ingestLocked(p *packet.Probe) {
	i := sd.shardOf(p.Src)
	pb := sd.pending[i]
	if pb == nil {
		pb = sd.pool.Get().(*[]packet.Probe)
		sd.pending[i] = pb
	}
	// Copy the probe into the next slot, reusing the slot's payload backing
	// from a previous cycle of this pool buffer: the caller's Payload may be
	// a decoder-owned buffer that is overwritten before the worker runs.
	b := *pb
	var keep []byte
	if n := len(b); n < cap(b) {
		b = b[:n+1]
		keep = b[n].Payload
	} else {
		b = append(b, packet.Probe{})
	}
	slot := &b[len(b)-1]
	*slot = *p
	slot.Payload = append(keep[:0], p.Payload...)
	*pb = b
	full := len(b) >= sd.cfg.BatchSize
	if p.Time > sd.maxTime {
		sd.maxTime = p.Time
	}
	if sd.maxTime-sd.lastWatermark >= sd.cfg.WatermarkInterval {
		// Broadcast the high-water mark to every shard, behind whatever is
		// already pending for it so stream order holds per shard.
		wm := sd.maxTime
		sd.lastWatermark = wm
		for j := range sd.shards {
			batch := sd.pending[j]
			sd.pending[j] = nil
			sd.observeBatch(batch)
			sd.shards[j].ch <- shardMsg{batch: batch, watermark: wm}
		}
		return
	}
	if full {
		batch := sd.pending[i]
		sd.pending[i] = nil
		sd.observeBatch(batch)
		sd.shards[i].ch <- shardMsg{batch: batch}
	}
}

// FlushAll drains the queues, flushes every shard's detector, merges the
// per-shard results and emits them in deterministic order: the single
// shard's native close order when Workers=1 (identical to the sequential
// Detector), ascending (End, Start, Src) otherwise. FlushAll is terminal:
// the workers exit and further Ingest calls panic.
func (sd *ShardedDetector) FlushAll() {
	sd.mu.Lock()
	if sd.done {
		sd.mu.Unlock()
		return
	}
	sd.done = true
	for i, sh := range sd.shards {
		if batch := sd.pending[i]; batch != nil {
			sd.pending[i] = nil
			sd.observeBatch(batch)
			sh.ch <- shardMsg{batch: batch}
		}
	}
	sd.mu.Unlock()
	for _, sh := range sd.shards {
		close(sh.ch)
	}
	sd.wg.Wait()
	var mergeSpan obs.Span
	if sd.met != nil {
		mergeSpan = obs.StartSpan(sd.met.mergeNS)
	}
	var scans []*Scan
	for _, sh := range sd.shards {
		sh.det.FlushAll()
		sh.publish()
		scans = append(scans, sh.scans...)
	}
	if len(sd.shards) > 1 {
		sort.Slice(scans, func(i, j int) bool {
			a, b := scans[i], scans[j]
			if a.End != b.End {
				return a.End < b.End
			}
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			return a.Src < b.Src
		})
	}
	if sd.emit != nil {
		for _, s := range scans {
			sd.emit(s)
		}
	}
	mergeSpan.End()
}

// Workers returns the number of shards.
func (sd *ShardedDetector) Workers() int { return len(sd.shards) }

// ActiveFlows returns the open-flow count summed over shards. During ingest
// the value trails the stream by up to one in-flight batch per shard.
func (sd *ShardedDetector) ActiveFlows() int {
	n := int64(0)
	for _, sh := range sd.shards {
		n += sh.active.Load()
	}
	return int(n)
}

// Counts returns (flows opened, flows closed, campaigns qualified) summed
// over shards — the lossless roll-up of the per-shard counters.
func (sd *ShardedDetector) Counts() (opened, closed, qualified uint64) {
	for _, sh := range sd.shards {
		opened += sh.opened.Load()
		closed += sh.closed.Load()
		qualified += sh.qualified.Load()
	}
	return
}

// ShardStats returns each shard's counters, indexed by shard.
func (sd *ShardedDetector) ShardStats() []ShardStats {
	out := make([]ShardStats, len(sd.shards))
	for i, sh := range sd.shards {
		out[i] = ShardStats{
			Opened:    sh.opened.Load(),
			Closed:    sh.closed.Load(),
			Qualified: sh.qualified.Load(),
			Active:    int(sh.active.Load()),
		}
	}
	return out
}
