package analysis

import (
	"sort"

	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/telescope"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

// This file reproduces two narrower claims of the paper that the main
// tables do not cover directly: the multi-event version of Figure 1 (the
// paper overlays ten disclosure events) and the §4.1 per-day ZMap scan
// counts (the 2024 minimum exceeding the 2023 maximum is the paper's
// evidence that the ZMap surge is a landscape shift, not one campaign).

// Figure1MultiResult aggregates several disclosure events.
type Figure1MultiResult struct {
	Events []*Figure1Result
	// AllDecayed reports whether every event's final two weeks returned to
	// the pre-event distribution (KS at alpha).
	AllDecayed bool
	// MeanPeakFactor averages the per-event surge heights.
	MeanPeakFactor float64
}

// Figure1Multi injects several disclosure events into one simulated year —
// each on its own port so the decays are separable — and verifies that
// every one of them dies down (§4.3's "the Internet forgets fast" across
// ten major events).
func Figure1Multi(seed uint64, scale float64, telescopeSize, year int, events []workload.Disclosure) (*Figure1MultiResult, error) {
	s, err := workload.NewScenario(workload.Config{
		Year: year, Seed: seed, Scale: scale, TelescopeSize: telescopeSize,
		Disclosures: events,
	})
	if err != nil {
		return nil, err
	}
	// One pass, tallying each event port's daily volume.
	perPort := map[uint16][]uint64{}
	for _, ev := range events {
		perPort[ev.Port] = make([]uint64, s.Profile.Days+1)
	}
	day := int64(24 * 3600 * 1e9)
	s.Run(func(p *packet.Probe) {
		days, ok := perPort[p.DstPort]
		if !ok {
			return
		}
		if s.Telescope.Observe(p) != telescope.Accepted {
			return
		}
		d := int((p.Time - s.Start) / day)
		if d >= 0 && d < len(days) {
			days[d]++
		}
	})

	res := &Figure1MultiResult{AllDecayed: true}
	var peaks float64
	for _, ev := range events {
		r := traceEvent(ev, perPort[ev.Port])
		res.Events = append(res.Events, r)
		peaks += r.PeakFactor
		if !r.KS.SameDistribution(0.05) {
			res.AllDecayed = false
		}
	}
	if len(events) > 0 {
		res.MeanPeakFactor = peaks / float64(len(events))
	}
	return res, nil
}

// ZMapDailyResult carries the §4.1 per-day ZMap campaign counts.
type ZMapDailyResult struct {
	Year int
	// PerDay is the number of qualified ZMap-fingerprinted campaigns
	// starting on each window day.
	PerDay []int
	// Min and Max are over full days; Mean is the daily average. At paper
	// scale the 2024 minimum exceeds the 2023 maximum; at simulation scale
	// daily counts are Poisson-noisy (sharded campaigns start in bursts),
	// so the robust comparison is on the means.
	Min, Max int
	Mean     float64
}

// ZMapDaily counts ZMap campaigns per day. The paper verifies the 2024
// surge by noting the minimum daily ZMap scan count in 2024 (17,122)
// exceeds the 2023 maximum (9,051).
func ZMapDaily(yd *YearData) *ZMapDailyResult {
	res := &ZMapDailyResult{Year: yd.Year, PerDay: make([]int, yd.Days)}
	day := int64(24 * 3600 * 1e9)
	for _, sc := range yd.Scans {
		if !sc.Qualified || sc.Tool != tools.ToolZMap {
			continue
		}
		d := int((sc.Start - yd.Start) / day)
		if d >= 0 && d < len(res.PerDay) {
			res.PerDay[d]++
		}
	}
	counts := append([]int{}, res.PerDay...)
	sort.Ints(counts)
	res.Min = counts[0]
	res.Max = counts[len(counts)-1]
	total := 0
	for _, c := range counts {
		total += c
	}
	res.Mean = float64(total) / float64(len(counts))
	return res
}
