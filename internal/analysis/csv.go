package analysis

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"

	"github.com/synscan/synscan/internal/tools"
)

// WriteCSVDir exports the evaluation's per-year series as CSV files —
// gnuplot/pandas-ready data for replotting the paper's figures. One file
// per experiment family is written into dir (created if missing).
func (ev *Evaluation) WriteCSVDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, header []string, rows [][]string) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			return err
		}
		if err := w.WriteAll(rows); err != nil {
			return err
		}
		w.Flush()
		return w.Error()
	}
	ff := func(v float64) string { return fmt.Sprintf("%g", v) }

	var t1 [][]string
	for _, r := range ev.Table1 {
		t1 = append(t1, []string{
			fmt.Sprint(r.Year), ff(r.PacketsPerDay), ff(r.ScansPerMonth),
			fmt.Sprint(r.DistinctSources),
			ff(r.ToolShares[tools.ToolMasscan]), ff(r.ToolShares[tools.ToolNMap]),
			ff(r.ToolShares[tools.ToolMirai]), ff(r.ToolShares[tools.ToolZMap]),
		})
	}
	if err := write("table1.csv",
		[]string{"year", "packets_per_day", "scans_per_month", "sources",
			"masscan", "nmap", "mirai", "zmap"}, t1); err != nil {
		return err
	}

	var t2 [][]string
	for _, r := range ev.Table2 {
		t2 = append(t2, []string{r.Type.String(), ff(r.Sources), ff(r.Scans), ff(r.Packets)})
	}
	if err := write("table2.csv", []string{"type", "sources", "scans", "packets"}, t2); err != nil {
		return err
	}

	var f1 [][]string
	for d, v := range ev.Figure1.RelativeActivity {
		f1 = append(f1, []string{fmt.Sprint(d), ff(v)})
	}
	if err := write("figure1.csv", []string{"day", "relative_activity"}, f1); err != nil {
		return err
	}

	var f2 [][]string
	for _, v := range ev.Figure2.PacketRatios {
		f2 = append(f2, []string{ff(v)})
	}
	if err := write("figure2_packet_ratios.csv", []string{"weekly_change_factor"}, f2); err != nil {
		return err
	}

	var f3 [][]string
	for _, r := range ev.Figure3 {
		f3 = append(f3, []string{fmt.Sprint(r.Year), ff(r.SinglePortShare),
			ff(r.ThreePlusShare), ff(r.FivePlusShare)})
	}
	if err := write("figure3.csv",
		[]string{"year", "single_port", "three_plus", "five_plus"}, f3); err != nil {
		return err
	}

	var f8 [][]string
	for _, r := range ev.Figure8 {
		f8 = append(f8, []string{r.Org, fmt.Sprint(r.PortsCovered), fmt.Sprint(r.Packets)})
	}
	if err := write("figure8.csv", []string{"org", "ports", "packets"}, f8); err != nil {
		return err
	}

	var s51 [][]string
	for _, r := range ev.Sec51 {
		s51 = append(s51, []string{fmt.Sprint(r.Year), ff(r.PrivilegedCoverage),
			ff(r.CoScan80_8080), ff(r.ThreePlusShare), ff(r.ServicesScansR.R)})
	}
	if err := write("sec51.csv",
		[]string{"year", "privileged_coverage", "coscan_80_8080", "three_plus", "services_scans_r"}, s51); err != nil {
		return err
	}

	var s63 [][]string
	for _, r := range ev.Sec63 {
		s63 = append(s63, []string{fmt.Sprint(r.Year),
			ff(r.MedianPPS[tools.ToolZMap]), ff(r.MedianPPS[tools.ToolMasscan]),
			ff(r.MedianPPS[tools.ToolNMap]), ff(r.MedianPPS[tools.ToolMirai]),
			ff(r.Top100MeanPPS)})
	}
	if err := write("sec63.csv",
		[]string{"year", "zmap_median", "masscan_median", "nmap_median", "mirai_median", "top100_mean"}, s63); err != nil {
		return err
	}

	var bl [][]string
	for k := range ev.Blocklist.HitRate {
		bl = append(bl, []string{fmt.Sprint(k), ff(ev.Blocklist.HitRate[k]), ff(ev.Blocklist.InstHitRate[k])})
	}
	if err := write("blocklist.csv", []string{"weeks_old", "hit_rate", "inst_hit_rate"}, bl); err != nil {
		return err
	}

	var cb [][]string
	for i, st := range ev.Collab {
		cb = append(cb, []string{fmt.Sprint(ev.Table1[i].Year), fmt.Sprint(st.RawScans),
			fmt.Sprint(st.LogicalScans), ff(st.InflationFactor)})
	}
	return write("collab.csv", []string{"year", "raw_scans", "logical_scans", "inflation"}, cb)
}
