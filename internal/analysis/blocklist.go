package analysis

import (
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/telescope"
	"github.com/synscan/synscan/internal/workload"
)

// BlocklistResult quantifies the paper's operational implication (§4.4,
// §6.6): a blocklist of observed scanner addresses goes stale almost
// immediately, because non-institutional sources are burned after one scan —
// "by the time a list is distributed a scanning IP address would have
// already vanished for good".
type BlocklistResult struct {
	Year int
	// HitRate[k] is the fraction of week-w traffic whose source address
	// was already seen in week w-k, averaged over all weeks w >= k.
	// HitRate[0] is 1 by construction and included for reference.
	HitRate []float64
	// InstHitRate is the same restricted to institutional sources, which
	// recur daily and keep a week-old list effective.
	InstHitRate []float64
	// Weeks is the number of capture weeks.
	Weeks int
}

// BlocklistDecay simulates the year and measures how quickly a weekly
// source blocklist loses coverage.
func BlocklistDecay(s *workload.Scenario) *BlocklistResult {
	weeks := s.Profile.Days / 7
	if weeks < 2 {
		weeks = 2
	}
	res := &BlocklistResult{
		Year:        s.Profile.Year,
		HitRate:     make([]float64, weeks),
		InstHitRate: make([]float64, weeks),
		Weeks:       weeks,
	}

	weekSrcs := make([]map[uint32]struct{}, weeks)
	for i := range weekSrcs {
		weekSrcs[i] = make(map[uint32]struct{})
	}
	hits := make([]uint64, weeks)
	totals := make([]uint64, weeks)
	instHits := make([]uint64, weeks)
	instTotals := make([]uint64, weeks)

	week := int64(7 * 24 * 3600 * 1e9)
	reg := s.Registry
	s.Run(func(p *packet.Probe) {
		if s.Telescope.Observe(p) != telescope.Accepted {
			return
		}
		w := int((p.Time - s.Start) / week)
		if w < 0 || w >= weeks {
			return
		}
		inst := reg.Lookup(p.Src).Type == inetmodel.TypeInstitutional
		for k := 0; k <= w; k++ {
			totals[k]++
			if inst {
				instTotals[k]++
			}
			_, listed := weekSrcs[w-k][p.Src]
			if k == 0 || listed {
				// k == 0 counts the packet as covered by the live feed
				// (its own week's list, which it joins below).
				if k == 0 {
					hits[0]++
					if inst {
						instHits[0]++
					}
				} else {
					hits[k]++
					if inst {
						instHits[k]++
					}
				}
			}
		}
		weekSrcs[w][p.Src] = struct{}{}
	})

	for k := 0; k < weeks; k++ {
		if totals[k] > 0 {
			res.HitRate[k] = float64(hits[k]) / float64(totals[k])
		}
		if instTotals[k] > 0 {
			res.InstHitRate[k] = float64(instHits[k]) / float64(instTotals[k])
		}
	}
	return res
}
