package analysis

import (
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/sketch"
	"github.com/synscan/synscan/internal/telescope"
	"github.com/synscan/synscan/internal/workload"
)

// SketchedResult is the memory-bounded counterpart of the exact YearData
// headline quantities: at the paper's real scale (45 B packets, 45 M
// sources) exact per-port and per-source tables do not fit on one machine,
// so a production telescope computes them with sketches. The simulator uses
// it to validate that the sketched pipeline reproduces the exact tables.
type SketchedResult struct {
	Year int
	// AcceptedPackets is exact (a single counter).
	AcceptedPackets uint64
	// DistinctSources is the HyperLogLog estimate (±~1%).
	DistinctSources uint64
	// TopPortsByPackets comes from a Space-Saving tracker: shares are
	// upper-bound estimates.
	TopPortsByPackets []PortShare
}

// Sketched runs the scenario once, summarizing with O(KB) state instead of
// the exact collector's O(sources + ports) maps.
func Sketched(s *workload.Scenario, topN int) *SketchedResult {
	res := &SketchedResult{Year: s.Profile.Year}
	hll := sketch.NewHyperLogLog()
	// 4k counters comfortably exceeds the heavy-hitter bound for a top-10
	// table over 65536 ports.
	ports := sketch.NewTopK(4096)
	s.Run(func(p *packet.Probe) {
		if s.Telescope.Observe(p) != telescope.Accepted {
			return
		}
		res.AcceptedPackets++
		hll.AddUint32(p.Src)
		ports.Add(uint64(p.DstPort))
	})
	res.DistinctSources = hll.Estimate()
	for _, it := range ports.Top(topN) {
		res.TopPortsByPackets = append(res.TopPortsByPackets, PortShare{
			Port:  uint16(it.Key),
			Share: float64(it.Count) / float64(res.AcceptedPackets),
		})
	}
	return res
}
