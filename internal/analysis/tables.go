package analysis

import (
	"sync"

	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

// PortShare is one row of a top-ports ranking.
type PortShare struct {
	Port  uint16
	Share float64
}

// Table1Row reproduces one year-column of Table 1.
type Table1Row struct {
	Year              int
	PacketsPerDay     float64
	TopPortsByPackets []PortShare
	TopPortsBySources []PortShare
	TopPortsByScans   []PortShare
	ScansPerMonth     float64
	ToolShares        map[tools.Tool]float64
	DistinctSources   int
}

// Table1 computes the paper's headline table from collected years.
func Table1(years []*YearData, topN int) []Table1Row {
	rows := make([]Table1Row, 0, len(years))
	for _, yd := range years {
		row := Table1Row{
			Year:            yd.Year,
			PacketsPerDay:   float64(yd.AcceptedPackets) / float64(yd.Days),
			ToolShares:      yd.ToolScanShares(),
			DistinctSources: yd.DistinctSources,
		}
		row.TopPortsByPackets = topShares(yd.PacketsPerPort, topN)
		row.TopPortsBySources = topShares(yd.SourcesPerPort, topN)
		scanPorts := yd.ScansPerPort()
		row.TopPortsByScans = topShares(scanPorts, topN)
		row.ScansPerMonth = float64(len(yd.QualifiedScans())) / (float64(yd.Days) / 30.44)
		rows = append(rows, row)
	}
	return rows
}

func topShares(c *stats.Counter[uint16], n int) []PortShare {
	total := float64(c.Total())
	if total == 0 {
		return nil
	}
	top := c.TopK(n)
	out := make([]PortShare, len(top))
	for i, kv := range top {
		out[i] = PortShare{kv.Key, float64(kv.Count) / total}
	}
	return out
}

// Table2Row is one scanner-type row of Table 2.
type Table2Row struct {
	Type     inetmodel.ScannerType
	Sources  float64 // share of distinct source IPs
	Scans    float64 // share of qualified campaigns
	Packets  float64 // share of accepted probes
	NSources int
	NScans   int
	NPackets uint64
}

// Table2 reproduces the scanner-type breakdown. The paper reports it over
// the whole dataset; pass one or more collected years.
func Table2(years []*YearData) []Table2Row {
	srcN := map[inetmodel.ScannerType]int{}
	scanN := map[inetmodel.ScannerType]int{}
	pktN := map[inetmodel.ScannerType]uint64{}
	var totSrc, totScan int
	var totPkt uint64

	for _, yd := range years {
		reg := yd.Registry()
		for src := range yd.PortsPerSource {
			t := classifyType(reg, src)
			srcN[t]++
			totSrc++
		}
		for i, sc := range yd.Scans {
			if !sc.Qualified {
				continue
			}
			t := yd.ScanOrigins[i].Type
			if t == inetmodel.TypeReserved {
				t = inetmodel.TypeUnknown
			}
			scanN[t]++
			totScan++
			pktN[t] += sc.Packets
			totPkt += sc.Packets
		}
	}

	rows := make([]Table2Row, 0, len(inetmodel.ScannerTypes))
	for _, t := range inetmodel.ScannerTypes {
		row := Table2Row{
			Type: t, NSources: srcN[t], NScans: scanN[t], NPackets: pktN[t],
		}
		if totSrc > 0 {
			row.Sources = float64(srcN[t]) / float64(totSrc)
		}
		if totScan > 0 {
			row.Scans = float64(scanN[t]) / float64(totScan)
		}
		if totPkt > 0 {
			row.Packets = float64(pktN[t]) / float64(totPkt)
		}
		rows = append(rows, row)
	}
	return rows
}

func classifyType(reg *inetmodel.Registry, src uint32) inetmodel.ScannerType {
	t := reg.Lookup(src).Type
	if t == inetmodel.TypeReserved {
		return inetmodel.TypeUnknown
	}
	return t
}

// Decade collects every measured year with a shared registry and returns
// them in order. It is the standard entry point for the multi-year
// experiments. Years are simulated concurrently: each scenario owns its
// telescope and detector, and the shared registry is read-only after
// construction, so the result is identical to a serial run.
func Decade(seed uint64, scale float64, telescopeSize int) ([]*YearData, error) {
	return DecadeWorkers(seed, scale, telescopeSize, 1)
}

// DecadeWorkers is Decade with each year's campaign detection sharded across
// the given number of goroutines (see CollectWorkers). The per-year
// concurrency multiplies the year-level concurrency, so the total goroutine
// count is roughly years x workers.
func DecadeWorkers(seed uint64, scale float64, telescopeSize, workers int) ([]*YearData, error) {
	return DecadeWith(seed, scale, telescopeSize, CollectConfig{Workers: workers})
}

// DecadeWith is Decade with each year collected under cc. A non-nil
// cc.Metrics registry is shared by all years: its counters and histograms
// aggregate across the whole decade (the registry is safe for concurrent
// use), while each YearData.PipelineStats holds the snapshot taken as that
// year finished.
func DecadeWith(seed uint64, scale float64, telescopeSize int, cc CollectConfig) ([]*YearData, error) {
	reg := inetmodel.BuildRegistry(seed)
	years := workload.Years()
	out := make([]*YearData, len(years))
	errs := make([]error, len(years))
	var wg sync.WaitGroup
	for i, y := range years {
		wg.Add(1)
		go func(i, y int) {
			defer wg.Done()
			s, err := workload.NewScenario(workload.Config{
				Year: y, Seed: seed, Scale: scale,
				TelescopeSize: telescopeSize, Registry: reg,
			})
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = CollectWith(s, cc)
		}(i, y)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
