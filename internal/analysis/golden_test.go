package analysis

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"
	"sort"
	"testing"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/tools"
)

// goldenDecadeHash pins the complete analytical output of the fixed-seed
// decade workload: the qualified-campaign table plus the per-year port and
// tool tables. Any change to the workload generators, telescope filtering,
// campaign detection or table computation that alters results shows up as a
// mismatch here. If a change is *intended* to alter results, rerun with
// -run TestGoldenDecade -v and copy the printed hash into this constant —
// the diff then documents that the pipeline's output changed.
const goldenDecadeHash = "c843b371461234e0fb43339e5bb66f00082a55a728321c4fbfeab4c8659272b1"

// hashU64 writes one little-endian uint64 into h.
func hashU64(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}

// hashF64 writes a float's exact bit pattern — golden comparison must be
// bit-exact, not tolerance-based, or it cannot catch small regressions.
func hashF64(h hash.Hash, v float64) { hashU64(h, math.Float64bits(v)) }

// hashScan folds every externally meaningful field of a campaign.
func hashScan(h hash.Hash, sc *core.Scan) {
	hashU64(h, uint64(sc.Src))
	hashU64(h, uint64(sc.Start))
	hashU64(h, uint64(sc.End))
	hashU64(h, sc.Packets)
	hashU64(h, uint64(sc.DistinctDsts))
	hashU64(h, uint64(len(sc.Ports)))
	for _, p := range sc.Ports {
		hashU64(h, uint64(p))
	}
	hashU64(h, uint64(sc.Tool))
	hashF64(h, sc.RatePPS)
	hashF64(h, sc.Coverage)
}

// decadeHash canonicalizes and hashes a collected decade. Qualified scans
// are sorted by (End, Start, Src) — the sharded detector's merge order —
// so sequential and sharded runs hash identically; table maps are walked in
// sorted key order.
func decadeHash(years []*YearData) string {
	h := sha256.New()
	for _, yd := range years {
		hashU64(h, uint64(yd.Year))
		hashU64(h, uint64(yd.Days))
		hashU64(h, uint64(yd.TelescopeSize))
		hashU64(h, yd.AcceptedPackets)
		hashU64(h, uint64(yd.DistinctSources))

		scans := yd.QualifiedScans()
		sorted := append([]*core.Scan(nil), scans...)
		sort.Slice(sorted, func(i, j int) bool {
			a, b := sorted[i], sorted[j]
			if a.End != b.End {
				return a.End < b.End
			}
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			return a.Src < b.Src
		})
		hashU64(h, uint64(len(sorted)))
		for _, sc := range sorted {
			hashScan(h, sc)
		}
	}
	// The per-year port and tool tables, exactly as Table1 reports them.
	for _, row := range Table1(years, 10) {
		hashU64(h, uint64(row.Year))
		hashF64(h, row.PacketsPerDay)
		hashF64(h, row.ScansPerMonth)
		hashU64(h, uint64(row.DistinctSources))
		for _, shares := range [][]PortShare{
			row.TopPortsByPackets, row.TopPortsBySources, row.TopPortsByScans,
		} {
			hashU64(h, uint64(len(shares)))
			for _, ps := range shares {
				hashU64(h, uint64(ps.Port))
				hashF64(h, ps.Share)
			}
		}
		ts := make([]tools.Tool, 0, len(row.ToolShares))
		for tl := range row.ToolShares {
			ts = append(ts, tl)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		hashU64(h, uint64(len(ts)))
		for _, tl := range ts {
			hashU64(h, uint64(tl))
			hashF64(h, row.ToolShares[tl])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestGoldenDecade: the fixed-seed decade's full analytical output must
// match the pinned hash, and the sharded pipeline must produce the exact
// same output as the sequential one.
func TestGoldenDecade(t *testing.T) {
	seq := decadeHash(decade(t))
	t.Logf("sequential decade hash: %s", seq)
	if seq != goldenDecadeHash {
		t.Errorf("sequential decade hash %s != golden %s\n"+
			"if this change is intended, update goldenDecadeHash", seq, goldenDecadeHash)
	}

	sharded, err := DecadeWorkers(testSeed, testScale, testTelSize, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := decadeHash(sharded); got != seq {
		t.Errorf("workers=4 decade hash %s != sequential %s", got, seq)
	}
}
