package analysis

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/tools"
)

// refScansPerPort is the hand-rolled tally ScansPerPort computed before it
// was rewired through the query engine. Kept here as the parity reference.
func refScansPerPort(y *YearData) *stats.Counter[uint16] {
	c := stats.NewCounter[uint16]()
	for _, sc := range y.Scans {
		if !sc.Qualified {
			continue
		}
		for _, p := range sc.Ports {
			c.Inc(p)
		}
	}
	return c
}

// refToolScanShares is the pre-engine ToolScanShares.
func refToolScanShares(y *YearData) map[tools.Tool]float64 {
	counts := map[tools.Tool]int{}
	total := 0
	for _, sc := range y.Scans {
		if !sc.Qualified {
			continue
		}
		counts[sc.Tool]++
		total++
	}
	out := map[tools.Tool]float64{}
	if total == 0 {
		return out
	}
	for tl, n := range counts {
		out[tl] = float64(n) / float64(total)
	}
	return out
}

// TestEngineTableParity proves the engine-backed analysis tables are
// byte-identical to the hand-rolled tallies they replaced, on every
// simulated year. Counts are exact integers and shares divide the same
// integers, so even the float results must match bit for bit.
func TestEngineTableParity(t *testing.T) {
	for _, yd := range decade(t) {
		gotPorts, wantPorts := yd.ScansPerPort(), refScansPerPort(yd)
		if !reflect.DeepEqual(gotPorts, wantPorts) {
			t.Fatalf("year %d: ScansPerPort differs from hand-rolled tally", yd.Year)
		}
		gotTools, wantTools := yd.ToolScanShares(), refToolScanShares(yd)
		if !reflect.DeepEqual(gotTools, wantTools) {
			t.Fatalf("year %d: ToolScanShares differs from hand-rolled tally", yd.Year)
		}

		// The rendered table rows must serialize identically too.
		gotJSON, err := json.Marshal(topShares(gotPorts, 10))
		if err != nil {
			t.Fatal(err)
		}
		wantJSON, err := json.Marshal(topShares(wantPorts, 10))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("year %d: top-ports table bytes differ:\n%s\n%s",
				yd.Year, gotJSON, wantJSON)
		}
	}
}
