// Package analysis turns simulated telescope captures into the tables and
// figures of the paper. Collect runs one scenario through the telescope and
// campaign detector in a single streaming pass, retaining exactly the
// aggregates the per-experiment functions (Table1, Figure2, ...) consume.
package analysis

import (
	"context"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/query"
	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/telescope"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

// YearData is everything one simulated measurement year yields.
type YearData struct {
	// Year is the profile year.
	Year int
	// Days is the capture window length.
	Days int
	// TelescopeSize is the simulated monitored-address count.
	TelescopeSize int
	// Start is the window start (ns).
	Start int64

	// Scans are all closed flows, qualified or not, in close order.
	Scans []*core.Scan
	// ScanOrigins are the enriched origins, parallel to Scans.
	ScanOrigins []enrich.Origin

	// AcceptedPackets counts probes that entered the dataset.
	AcceptedPackets uint64
	// TelescopeStats are the capture drop counters.
	TelescopeStats telescope.Stats
	// PacketsPerDay is the accepted volume per window day.
	PacketsPerDay []uint64

	// PacketsPerPort tallies accepted probes per destination port.
	PacketsPerPort *stats.Counter[uint16]
	// SourcesPerPort tallies distinct sources per destination port.
	SourcesPerPort *stats.Counter[uint16]
	// DistinctSources is the number of distinct source addresses.
	DistinctSources int
	// PortsPerSource maps each source to its distinct-port count (Fig. 3).
	PortsPerSource map[uint32]int

	// PacketsPerToolPort tallies accepted probes per (tool, port) using the
	// per-packet fingerprints plus campaign attribution (Fig. 4).
	PacketsPerToolPort *stats.Counter[ToolPort]

	// Weekly volatility (Fig. 2): per (source /16, week) aggregates.
	WeeklySources *stats.Counter[BlockWeek]
	WeeklyPackets *stats.Counter[BlockWeek]
	WeeklyScans   *stats.Counter[BlockWeek]
	Weeks         int

	// CountryPackets tallies accepted probes per (port, country) for the
	// §5.4 origin biases.
	CountryPackets *stats.Counter[PortCountry]
	// InstPacketsPerPort tallies accepted probes from institutional space
	// per port, for the benign-scanner bias analysis (§7).
	InstPacketsPerPort *stats.Counter[uint16]

	// PipelineStats is the observability snapshot taken when collection
	// finished — telescope drop mix, detector flow lifecycle, shard queue
	// behaviour, enrichment cache hits, per-stage wall time. Zero when the
	// year was collected without a metrics registry.
	PipelineStats obs.Snapshot

	reg *inetmodel.Registry
}

// ToolPort keys the per-tool-per-port packet tally.
type ToolPort struct {
	Tool tools.Tool
	Port uint16
}

// BlockWeek keys weekly per-/16 aggregates.
type BlockWeek struct {
	Block uint16
	Week  uint8
}

// PortCountry keys the geographic targeting tally.
type PortCountry struct {
	Port    uint16
	Country string
}

// Registry returns the synthetic Internet behind the year.
func (y *YearData) Registry() *inetmodel.Registry { return y.reg }

// CollectConfig parameterizes CollectWith. The zero value is the default
// collection: sequential detection, no metrics.
type CollectConfig struct {
	// Workers shards campaign detection across this many goroutines
	// (<= 1 keeps the sequential detector). The emitted campaign multiset
	// is identical either way; with Workers > 1 the Scans order is the
	// sharded detector's canonical (End, Start, Src) order rather than
	// close order.
	Workers int
	// Metrics, when non-nil, instruments the whole collection pass —
	// telescope ingress, detector, shard queues, enrichment cache, and
	// per-stage wall time — and stores a final snapshot in
	// YearData.PipelineStats.
	Metrics *obs.Registry
}

// Collect simulates the scenario and gathers all aggregates in one pass
// with the sequential detector. Equivalent to CollectWith(s, CollectConfig{}).
func Collect(s *workload.Scenario) *YearData {
	return CollectWith(s, CollectConfig{})
}

// CollectWorkers is Collect with campaign detection sharded across the given
// number of goroutines; see CollectConfig.Workers.
func CollectWorkers(s *workload.Scenario, workers int) *YearData {
	return CollectWith(s, CollectConfig{Workers: workers})
}

// CollectWith simulates the scenario and gathers all aggregates in one
// streaming pass, with sharding and observability per cc.
func CollectWith(s *workload.Scenario, cc CollectConfig) *YearData {
	yd := &YearData{
		Year:               s.Profile.Year,
		Days:               s.Profile.Days,
		TelescopeSize:      s.Telescope.Size(),
		Start:              s.Start,
		PacketsPerDay:      make([]uint64, s.Profile.Days+1),
		PacketsPerPort:     stats.NewCounter[uint16](),
		SourcesPerPort:     stats.NewCounter[uint16](),
		PortsPerSource:     make(map[uint32]int),
		PacketsPerToolPort: stats.NewCounter[ToolPort](),
		WeeklySources:      stats.NewCounter[BlockWeek](),
		WeeklyPackets:      stats.NewCounter[BlockWeek](),
		WeeklyScans:        stats.NewCounter[BlockWeek](),
		CountryPackets:     stats.NewCounter[PortCountry](),
		InstPacketsPerPort: stats.NewCounter[uint16](),
		Weeks:              s.Profile.Days / 7,
		reg:                s.Registry,
	}
	reg := cc.Metrics // nil disables every obs call below
	en := enrich.New(s.Registry)
	en.SetMetrics(reg)
	s.Telescope.SetMetrics(reg)

	// Both detector variants emit on this goroutine: the sequential one
	// inline from Ingest, the sharded one during its merging FlushAll.
	collect := func(sc *core.Scan) {
		yd.Scans = append(yd.Scans, sc)
		yd.ScanOrigins = append(yd.ScanOrigins, en.Origin(sc.Src))
	}
	det := core.NewDetector(s.DetectorConfig, collect,
		core.WithWorkers(cc.Workers), core.WithMetrics(reg))

	// Dedup sets, keyed compactly.
	srcPort := make(map[uint64]struct{}) // src<<16|port seen
	weekSrc := make(map[uint64]struct{}) // block<<40|week<<32|srcLow seen
	day := int64(24 * 3600 * 1e9)

	runSpan := obs.StartSpan(reg.Histogram("collect.run_ns"))
	s.Run(func(p *packet.Probe) {
		if s.Telescope.Observe(p) != telescope.Accepted {
			return
		}
		yd.accept(s, p, srcPort, weekSrc)
		det.Ingest(p)
	})
	runSpan.End()

	flushSpan := obs.StartSpan(reg.Histogram("collect.flush_ns"))
	det.FlushAll()
	flushSpan.End()

	finalizeSpan := obs.StartSpan(reg.Histogram("collect.finalize_ns"))
	yd.DistinctSources = len(yd.PortsPerSource)
	yd.TelescopeStats = s.Telescope.Stats()

	for _, sc := range yd.Scans {
		if !sc.Qualified {
			continue
		}
		week := uint8(int((sc.Start - s.Start) / (7 * day)))
		yd.WeeklyScans.Inc(BlockWeek{inetmodel.Block16(sc.Src), week})
	}
	finalizeSpan.End()

	if reg != nil {
		yd.PipelineStats = reg.Snapshot()
	}
	return yd
}

// accept folds one telescope-accepted probe into every per-packet aggregate
// (detector ingest is the caller's job, since the reactive path gates it
// differently). srcPort and weekSrc are the caller-owned dedup sets.
func (yd *YearData) accept(s *workload.Scenario, p *packet.Probe, srcPort, weekSrc map[uint64]struct{}) {
	day := int64(24 * 3600 * 1e9)
	yd.AcceptedPackets++
	d := int((p.Time - s.Start) / day)
	if d >= 0 && d < len(yd.PacketsPerDay) {
		yd.PacketsPerDay[d]++
	}
	yd.PacketsPerPort.Inc(p.DstPort)

	spKey := uint64(p.Src)<<16 | uint64(p.DstPort)
	if _, dup := srcPort[spKey]; !dup {
		srcPort[spKey] = struct{}{}
		yd.SourcesPerPort.Inc(p.DstPort)
		yd.PortsPerSource[p.Src]++
	}

	// Per-packet tool attribution for the traffic mix: the per-packet
	// fingerprints identify ZMap/Masscan/Mirai directly; everything
	// else lands in Unknown here (campaign-level attribution refines
	// NMap/Unicorn, but per-packet traffic shares are what Fig. 4
	// plots).
	tl := tools.ToolUnknown
	switch {
	case p.IPID == tools.ZMapIPID:
		tl = tools.ToolZMap
	case p.Seq == p.Dst:
		tl = tools.ToolMirai
	case p.IPID == uint16(p.Dst^uint32(p.DstPort)^p.Seq):
		tl = tools.ToolMasscan
	}
	yd.PacketsPerToolPort.Inc(ToolPort{tl, p.DstPort})

	week := uint8(int((p.Time - s.Start) / (7 * day)))
	block := inetmodel.Block16(p.Src)
	bw := BlockWeek{block, week}
	yd.WeeklyPackets.Inc(bw)
	wsKey := uint64(block)<<40 | uint64(week)<<32 | uint64(p.Src&0xffff)<<8 | uint64(p.Src>>24)
	if _, dup := weekSrc[wsKey]; !dup {
		weekSrc[wsKey] = struct{}{}
		yd.WeeklySources.Inc(bw)
	}

	entry := s.Registry.Lookup(p.Src)
	if entry.Country != "" {
		yd.CountryPackets.Inc(PortCountry{p.DstPort, entry.Country})
	}
	if entry.Type == inetmodel.TypeInstitutional {
		yd.InstPacketsPerPort.Inc(p.DstPort)
	}
}

// QualifiedScans filters the campaign list.
func (y *YearData) QualifiedScans() []*core.Scan {
	out := make([]*core.Scan, 0, len(y.Scans))
	for _, sc := range y.Scans {
		if sc.Qualified {
			out = append(out, sc)
		}
	}
	return out
}

// engineTable runs an aggregate query over the year's in-memory campaigns
// through the query engine — the same streaming executors behind the archive
// service's /v1/query — so the simulator's tables and the served tables
// share one execution path and cannot drift. The queries are static and
// valid and a SliceSource cannot fail under a background context, so an
// error here is an engine invariant violation, not a caller mistake.
func (y *YearData) engineTable(b *query.Builder) []query.Row {
	q, err := b.Build()
	if err == nil {
		var res *query.Result
		res, err = query.Run(context.Background(), q,
			query.SliceSource{Scans: y.Scans, Origins: y.ScanOrigins})
		if err == nil {
			return res.Rows
		}
	}
	panic("analysis: engine table query failed: " + err.Error())
}

// ScansPerPort tallies qualified campaigns per targeted port (a multi-port
// campaign counts once per port) — the "top ports by scans" ranking.
func (y *YearData) ScansPerPort() *stats.Counter[uint16] {
	c := stats.NewCounter[uint16]()
	rows := y.engineTable(query.NewBuilder().
		Qualified(true).GroupBy(query.FieldPort).Count())
	for _, row := range rows {
		c.Add(uint16(row.Key[0].Num), row.Aggs[0].Count)
	}
	return c
}

// ToolScanShares returns each tool's share of qualified campaigns.
func (y *YearData) ToolScanShares() map[tools.Tool]float64 {
	rows := y.engineTable(query.NewBuilder().
		Qualified(true).GroupBy(query.FieldTool).Count())
	var total uint64
	for _, row := range rows {
		total += row.Aggs[0].Count
	}
	out := map[tools.Tool]float64{}
	if total == 0 {
		return out
	}
	for _, row := range rows {
		out[tools.Tool(row.Key[0].Num)] = float64(row.Aggs[0].Count) / float64(total)
	}
	return out
}
