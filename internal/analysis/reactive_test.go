package analysis

import (
	"reflect"
	"sort"
	"testing"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/fingerprint"
	"github.com/synscan/synscan/internal/reactive"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

func reactiveScenario(t *testing.T) *workload.Scenario {
	t.Helper()
	s, err := workload.NewScenario(workload.Config{
		Year: 2021, Seed: 42, Scale: 0.0005, TelescopeSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCollectReactiveLinksTwoPhase: the reactive pass produces campaigns the
// detector links across both phases, with the expected attribution — only
// designated masscan-style campaigns carry the flag, they show mixed or
// irregular ISNs plus handshake traffic, and payload bytes arrive.
func TestCollectReactiveLinksTwoPhase(t *testing.T) {
	rd := CollectReactive(reactiveScenario(t), reactive.DefaultPolicy(1), CollectConfig{})

	if rd.Workload.TwoPhaseCampaigns == 0 {
		t.Fatal("workload designated no two-phase campaigns")
	}
	if rd.Responder.Responded == 0 || rd.Responder.Phase2 == 0 {
		t.Fatalf("responder inactive: %+v", rd.Responder)
	}
	if rd.Responder.Payloads == 0 {
		t.Fatal("no payload segments accepted")
	}

	var linked, withPayload int
	for _, sc := range rd.Scans {
		if !sc.TwoPhase {
			continue
		}
		linked++
		if sc.Tool != tools.ToolMasscan {
			t.Fatalf("two-phase campaign attributed to %v, want masscan", sc.Tool)
		}
		if sc.LinkedDsts == 0 {
			t.Fatal("two-phase campaign with zero linked destinations")
		}
		if sc.HandshakePackets == 0 {
			t.Fatal("two-phase campaign with no handshake packets")
		}
		if sc.ScoutPackets+sc.HandshakePackets != sc.Packets {
			t.Fatalf("phase split %d+%d != %d packets",
				sc.ScoutPackets, sc.HandshakePackets, sc.Packets)
		}
		if sc.ISN == fingerprint.ISNRegular {
			t.Fatal("two-phase campaign classified fully regular")
		}
		if len(sc.Payload) > 0 {
			withPayload++
			if sc.PayloadBytes == 0 {
				t.Fatal("payload prefix without payload bytes")
			}
		}
	}
	if linked == 0 {
		t.Fatal("no campaign was linked two-phase")
	}
	if withPayload == 0 {
		t.Fatal("no linked campaign retained a payload prefix")
	}

	// The share table must agree with a direct tally over the scans.
	var wantMasscan TwoPhaseRow
	for _, sc := range rd.Scans {
		if !sc.Qualified || sc.Tool != tools.ToolMasscan {
			continue
		}
		wantMasscan.Scans++
		if sc.TwoPhase {
			wantMasscan.TwoPhase++
		}
		wantMasscan.LinkedDsts += uint64(sc.LinkedDsts)
		wantMasscan.HandshakePackets += sc.HandshakePackets
		wantMasscan.PayloadBytes += sc.PayloadBytes
	}
	var got *TwoPhaseRow
	for _, row := range rd.TwoPhaseTable() {
		if row.Tool == tools.ToolMasscan {
			r := row
			got = &r
		} else if row.TwoPhase != 0 {
			t.Fatalf("tool %v reports two-phase campaigns", row.Tool)
		}
	}
	if got == nil || got.TwoPhase == 0 {
		t.Fatal("two-phase table has no masscan row")
	}
	if got.Scans != wantMasscan.Scans || got.TwoPhase != wantMasscan.TwoPhase ||
		got.LinkedDsts != wantMasscan.LinkedDsts ||
		got.HandshakePackets != wantMasscan.HandshakePackets ||
		got.PayloadBytes != wantMasscan.PayloadBytes {
		t.Fatalf("table row %+v disagrees with direct tally %+v", *got, wantMasscan)
	}
}

// TestCollectReactiveDeterministic: equal configurations give deep-equal
// campaign lists across independent runs.
func TestCollectReactiveDeterministic(t *testing.T) {
	a := CollectReactive(reactiveScenario(t), reactive.DefaultPolicy(1), CollectConfig{})
	b := CollectReactive(reactiveScenario(t), reactive.DefaultPolicy(1), CollectConfig{})
	if !reflect.DeepEqual(a.Scans, b.Scans) {
		t.Fatalf("reactive runs differ: %d vs %d campaigns", len(a.Scans), len(b.Scans))
	}
	if a.Responder != b.Responder {
		t.Fatalf("responder stats differ: %+v vs %+v", a.Responder, b.Responder)
	}
	if a.Workload != b.Workload {
		t.Fatalf("workload summaries differ: %+v vs %+v", a.Workload, b.Workload)
	}
}

// TestCollectReactiveShardedEquivalent: the sharded detector emits the same
// campaign multiset as the sequential one on a reactive run — per-source
// shard routing keeps both phases of a flow on one shard, so linking needs
// no cross-shard state.
func TestCollectReactiveShardedEquivalent(t *testing.T) {
	seq := CollectReactive(reactiveScenario(t), reactive.DefaultPolicy(1), CollectConfig{})
	shd := CollectReactive(reactiveScenario(t), reactive.DefaultPolicy(1), CollectConfig{Workers: 4})

	canon := func(scans []*core.Scan) []*core.Scan {
		out := append([]*core.Scan(nil), scans...)
		sort.Slice(out, func(i, j int) bool {
			if out[i].Start != out[j].Start {
				return out[i].Start < out[j].Start
			}
			return out[i].Src < out[j].Src
		})
		return out
	}
	if !reflect.DeepEqual(canon(seq.Scans), canon(shd.Scans)) {
		t.Fatalf("sequential and sharded reactive runs differ: %d vs %d campaigns",
			len(seq.Scans), len(shd.Scans))
	}
}
