package analysis

import (
	"sort"

	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/tools"
)

// ---------------------------------------------------------------------------
// §5.1: port-space coverage, alias co-scanning, services vs scans

// Sec51Result carries the §5.1 scalars for one year (plus the cross-year
// correlations where noted).
type Sec51Result struct {
	Year int
	// PrivilegedCoverage is the fraction of ports 1–1023 that received
	// probes above the noise floor (31% in 2015 → ~all by 2024).
	PrivilegedCoverage float64
	// CoScan80_8080 is P(campaign targeting 80 also targets 8080)
	// (18% in 2015 → 87% in 2020).
	CoScan80_8080 float64
	// ThreePlusShare is the share of campaigns targeting >= 3 ports.
	ThreePlusShare float64
	// ServicesScansR is the Pearson correlation between per-port service
	// population (from a vertical scan of the service model) and per-port
	// scan counts — the paper finds essentially none (R = 0.047).
	ServicesScansR stats.PearsonResult
}

// Sec51 computes the §5.1 quantities for one collected year.
func Sec51(yd *YearData, svc *inetmodel.ServiceModel, seed uint64) *Sec51Result {
	res := &Sec51Result{Year: yd.Year}

	// Privileged-port coverage above a 1% noise floor: a privileged port
	// counts as probed when its volume exceeds 1% of the mean per-port
	// volume over probed privileged ports.
	var privTotal uint64
	probed := 0
	for p := 1; p < 1024; p++ {
		privTotal += yd.PacketsPerPort.Get(uint16(p))
	}
	floor := float64(privTotal) / 1023 * 0.01
	for p := 1; p < 1024; p++ {
		if float64(yd.PacketsPerPort.Get(uint16(p))) > floor {
			probed++
		}
	}
	res.PrivilegedCoverage = float64(probed) / 1023

	// Alias co-scanning over qualified campaigns. Institutional full-range
	// scans are excluded from the co-scan metric: at paper scale their
	// complete port walk trivially covers both ports, and at simulation
	// scale the truncated walk would just add noise — the §5.1 claim is
	// about targeted scans picking up alias ports.
	with80, both := 0, 0
	three := 0
	total := 0
	for i, sc := range yd.Scans {
		if !sc.Qualified {
			continue
		}
		total++
		if len(sc.Ports) >= 3 {
			three++
		}
		if yd.ScanOrigins[i].Type == inetmodel.TypeInstitutional {
			continue
		}
		has80, has8080 := false, false
		for _, p := range sc.Ports {
			if p == 80 {
				has80 = true
			}
			if p == 8080 {
				has8080 = true
			}
		}
		if has80 {
			with80++
			if has8080 {
				both++
			}
		}
	}
	if with80 > 0 {
		res.CoScan80_8080 = float64(both) / float64(with80)
	}
	if total > 0 {
		res.ThreePlusShare = float64(three) / float64(total)
	}

	// Services vs scans: vertical scan of 100k hosts against per-port scan
	// counts over a sample of ports.
	r := rng.New(seed).Derive("analysis/sec51")
	services := svc.VerticalScan(r, 100000)
	scanCounts := yd.ScansPerPort()
	var xs, ys []float64
	for p := 0; p < 65536; p += 13 { // systematic sample, ~5k ports
		xs = append(xs, float64(services[p]))
		ys = append(ys, float64(scanCounts.Get(uint16(p))))
	}
	if pr, err := stats.Pearson(xs, ys); err == nil {
		res.ServicesScansR = pr
	}
	return res
}

// ThreePlusTrend computes the cross-year Pearson correlation of the
// >=3-port campaign share against the year index (paper: R = 0.88,
// p < 0.05).
func ThreePlusTrend(results []*Sec51Result) (stats.PearsonResult, error) {
	var xs, ys []float64
	for _, r := range results {
		xs = append(xs, float64(r.Year))
		ys = append(ys, r.ThreePlusShare)
	}
	return stats.Pearson(xs, ys)
}

// ---------------------------------------------------------------------------
// §5.2: vertical scans

// Sec52Result summarizes vertical-scan prevalence and speed.
type Sec52Result struct {
	Year int
	// Over100, Over1000, Over10000 count campaigns whose port sets exceed
	// those sizes.
	Over100, Over1000, Over10000 int
	// Share1000 is Over1000 / qualified campaigns.
	Share1000 float64
	// MeanSpeedOver1000Mbps vs MeanSpeedAllMbps: the paper reports
	// 0.3 Gbps vs 14 Mbps in 2022.
	MeanSpeedOver1000Mbps, MeanSpeedAllMbps float64
	// LargestPortCount is the maximum ports in one campaign.
	LargestPortCount int
}

// Sec52 computes vertical-scan statistics for one collected year.
func Sec52(yd *YearData) *Sec52Result {
	res := &Sec52Result{Year: yd.Year}
	var speedsAll, speedsBig []float64
	total := 0
	for _, sc := range yd.Scans {
		if !sc.Qualified {
			continue
		}
		total++
		n := len(sc.Ports)
		if n > res.LargestPortCount {
			res.LargestPortCount = n
		}
		if n > 100 {
			res.Over100++
		}
		if n > 1000 {
			res.Over1000++
			speedsBig = append(speedsBig, sc.SpeedMbps())
		}
		if n > 10000 {
			res.Over10000++
		}
		speedsAll = append(speedsAll, sc.SpeedMbps())
	}
	if total > 0 {
		res.Share1000 = float64(res.Over1000) / float64(total)
	}
	res.MeanSpeedAllMbps = stats.Mean(speedsAll)
	res.MeanSpeedOver1000Mbps = stats.Mean(speedsBig)
	return res
}

// ---------------------------------------------------------------------------
// §6.3: per-tool speeds

// Sec63Result holds per-tool speed summaries for one year.
type Sec63Result struct {
	Year int
	// MedianPPS and MeanPPS per tool over qualified campaigns.
	MedianPPS, MeanPPS map[tools.Tool]float64
	// Top100MeanPPS is the mean of the 100 fastest scans.
	Top100MeanPPS float64
	// OverallMedianPPS summarizes the whole year.
	OverallMedianPPS float64
}

// Sec63 computes per-tool speed distributions for one collected year.
func Sec63(yd *YearData) *Sec63Result {
	byTool := map[tools.Tool][]float64{}
	var all []float64
	for _, sc := range yd.Scans {
		if !sc.Qualified {
			continue
		}
		byTool[sc.Tool] = append(byTool[sc.Tool], sc.RatePPS)
		all = append(all, sc.RatePPS)
	}
	res := &Sec63Result{
		Year:      yd.Year,
		MedianPPS: map[tools.Tool]float64{},
		MeanPPS:   map[tools.Tool]float64{},
	}
	for tl, ss := range byTool {
		res.MedianPPS[tl] = stats.Median(ss)
		res.MeanPPS[tl] = stats.Mean(ss)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	top := all
	if len(top) > 100 {
		top = top[:100]
	}
	res.Top100MeanPPS = stats.Mean(top)
	res.OverallMedianPPS = stats.Median(all)
	return res
}

// Top100Trend correlates the top-100 mean speed against years (paper:
// R = 0.356, p < 0.001 — rising top end).
func Top100Trend(results []*Sec63Result) (stats.PearsonResult, error) {
	var xs, ys []float64
	for _, r := range results {
		xs = append(xs, float64(r.Year))
		ys = append(ys, r.Top100MeanPPS)
	}
	return stats.Pearson(xs, ys)
}

// SpeedPortsCorrelation computes the §5.3 correlation between scan speed
// and ports targeted over a year's qualified campaigns (paper: R = 0.88 on
// aggregated data; per-scan data yields a clearly positive coefficient).
func SpeedPortsCorrelation(yd *YearData) (stats.PearsonResult, error) {
	var xs, ys []float64
	for _, sc := range yd.Scans {
		if !sc.Qualified {
			continue
		}
		xs = append(xs, float64(len(sc.Ports)))
		ys = append(ys, sc.RatePPS)
	}
	return stats.Pearson(xs, ys)
}

// ---------------------------------------------------------------------------
// §6.4: coverage modes from sharding

// Sec64Result describes the coverage distribution of one tool's campaigns.
type Sec64Result struct {
	Tool tools.Tool
	// Coverages are the per-campaign IPv4 coverage estimates, ascending.
	Coverages []float64
	// ModeCoverage and ModeCount locate the strongest cluster: sharded
	// scans of n collaborators produce a mode at 1/n of the shared scan's
	// coverage.
	ModeCoverage float64
	ModeCount    int
	// FullIPv4Share is the fraction of campaigns covering >= 95% of the
	// space.
	FullIPv4Share float64
}

// Sec64 extracts the coverage distribution (and its dominant mode) of a
// tool's qualified campaigns.
func Sec64(yd *YearData, tool tools.Tool) *Sec64Result {
	res := &Sec64Result{Tool: tool}
	for _, sc := range yd.Scans {
		if !sc.Qualified || sc.Tool != tool {
			continue
		}
		res.Coverages = append(res.Coverages, sc.Coverage)
	}
	sort.Float64s(res.Coverages)
	if len(res.Coverages) == 0 {
		return res
	}
	// Mode detection over 2%-wide log-ish buckets.
	buckets := map[int]int{}
	for _, c := range res.Coverages {
		buckets[int(c*50)]++
	}
	for b, n := range buckets {
		if n > res.ModeCount {
			res.ModeCount = n
			res.ModeCoverage = (float64(b) + 0.5) / 50
		}
	}
	res.FullIPv4Share = shareAtLeast(res.Coverages, 0.95)
	return res
}
