package analysis

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/workload"
)

// TestArchiveEquivalence: the scan-level results computed from an archive
// are identical to the in-memory pipeline's on the same seeded workload —
// same Scans (deep-equal, same order), same origins, and identical derived
// aggregations.
func TestArchiveEquivalence(t *testing.T) {
	s, err := workload.NewScenario(workload.Config{
		Year: 2020, Seed: 7, Scale: 0.0005, TelescopeSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Collect(s)

	var buf bytes.Buffer
	w, err := archive.NewWriter(&buf, archive.WriterConfig{
		TelescopeSize: 1024, Origins: true, BlockBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ArchiveYear(w, want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rd, err := archive.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectArchive(rd, 2020)
	if err != nil {
		t.Fatal(err)
	}

	if got.Year != want.Year || got.Days != want.Days ||
		got.TelescopeSize != want.TelescopeSize || got.Start != want.Start {
		t.Fatalf("metadata mismatch: got %d/%d/%d/%d want %d/%d/%d/%d",
			got.Year, got.Days, got.TelescopeSize, got.Start,
			want.Year, want.Days, want.TelescopeSize, want.Start)
	}
	if len(got.Scans) == 0 {
		t.Fatal("archive produced no scans")
	}
	if !reflect.DeepEqual(got.Scans, want.Scans) {
		t.Fatalf("Scans differ: %d vs %d campaigns", len(got.Scans), len(want.Scans))
	}
	if !reflect.DeepEqual(got.ScanOrigins, want.ScanOrigins) {
		t.Fatal("ScanOrigins differ")
	}
	if !reflect.DeepEqual(got.QualifiedScans(), want.QualifiedScans()) {
		t.Fatal("QualifiedScans differ")
	}
	if !reflect.DeepEqual(got.ScansPerPort(), want.ScansPerPort()) {
		t.Fatal("ScansPerPort differs")
	}
	if !reflect.DeepEqual(got.ToolScanShares(), want.ToolScanShares()) {
		t.Fatal("ToolScanShares differ")
	}
	if !reflect.DeepEqual(got.WeeklyScans, want.WeeklyScans) {
		t.Fatal("WeeklyScans differ")
	}
}

// TestArchiveEquivalenceSharded: the sharded detector's canonical emit
// order survives the archive round trip too.
func TestArchiveEquivalenceSharded(t *testing.T) {
	s, err := workload.NewScenario(workload.Config{
		Year: 2019, Seed: 11, Scale: 0.0003, TelescopeSize: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := CollectWorkers(s, 4)

	var buf bytes.Buffer
	w, err := archive.NewWriter(&buf, archive.WriterConfig{
		TelescopeSize: 1024, Origins: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ArchiveYear(w, want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := archive.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectArchive(rd, 2019)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Scans, want.Scans) {
		t.Fatal("Scans differ after sharded collection")
	}
}

// TestCollectArchiveYears: a two-year archive splits back into its years.
func TestCollectArchiveYears(t *testing.T) {
	var buf bytes.Buffer
	w, err := archive.NewWriter(&buf, archive.WriterConfig{
		TelescopeSize: 1024, Origins: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantByYear := map[int]int{}
	for _, year := range []int{2016, 2022} {
		s, err := workload.NewScenario(workload.Config{
			Year: year, Seed: 3, Scale: 0.0003, TelescopeSize: 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		yd := Collect(s)
		wantByYear[year] = len(yd.Scans)
		if err := ArchiveYear(w, yd); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := archive.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	years, err := CollectArchiveYears(rd)
	if err != nil {
		t.Fatal(err)
	}
	if len(years) != 2 {
		t.Fatalf("got %d years, want 2", len(years))
	}
	for _, yd := range years {
		if wantByYear[yd.Year] != len(yd.Scans) {
			t.Fatalf("year %d: %d scans, want %d", yd.Year, len(yd.Scans), wantByYear[yd.Year])
		}
	}
}
