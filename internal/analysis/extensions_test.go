package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/synscan/synscan/internal/collab"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

func TestSec54CountryStructure(t *testing.T) {
	r16 := Sec54(yearData(t, 2016))
	r22 := Sec54(yearData(t, 2022))
	if len(r16.TopCountries) < 5 {
		t.Fatalf("too few countries: %d", len(r16.TopCountries))
	}
	// 2016: China leads the origin ranking (paper: >30% early on).
	if r16.TopCountries[0].Country != "CN" {
		t.Fatalf("2016 top origin = %s, want CN", r16.TopCountries[0].Country)
	}
	// Diversification: China's share shrinks by 2022.
	cnShare := func(r *Sec54Result) float64 {
		for _, cs := range r.TopCountries {
			if cs.Country == "CN" {
				return cs.Share
			}
		}
		return 0
	}
	if cnShare(r22) >= cnShare(r16) {
		t.Fatalf("CN share must decline: 2016=%v 2022=%v", cnShare(r16), cnShare(r22))
	}
	// Headline biases: 3389 predominantly Chinese, 443 US-heavy.
	leads := func(r *Sec54Result, port uint16) string {
		origins := r.PortOrigins[port]
		if len(origins) == 0 {
			return ""
		}
		return origins[0].Country
	}
	// RDP checked in 2020 where it is a headline port with real volume
	// (Table 1: 3389 draws 26% of 2020 traffic).
	if got := leads(Sec54(yearData(t, 2020)), 3389); got != "CN" {
		t.Fatalf("2020 RDP origin lead = %q, want CN", got)
	}
	if got := leads(r22, 443); got != "US" {
		t.Fatalf("2022 HTTPS origin lead = %q, want US", got)
	}
	// Shares are normalized.
	sum := 0.0
	for _, cs := range r22.TopCountries {
		sum += cs.Share
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("country shares sum to %v", sum)
	}
	// Dominated-port counts exist and CN leads them.
	if len(r22.DominatedPorts) == 0 {
		t.Fatal("no dominated ports found")
	}
}

func TestInstitutionalBias(t *testing.T) {
	res := InstitutionalBias(yearData(t, 2023), 5)
	// Appendix A: institutional/known scanners are ~half the 2023 traffic.
	if res.InstPacketShare < 0.25 {
		t.Fatalf("2023 institutional share = %v, want large", res.InstPacketShare)
	}
	if len(res.TopPortsRaw) != 5 || len(res.TopPortsFiltered) != 5 {
		t.Fatal("rankings missing")
	}
	// Early years: much smaller bias.
	early := InstitutionalBias(yearData(t, 2015), 5)
	if early.InstPacketShare >= res.InstPacketShare {
		t.Fatalf("institutional bias must grow: 2015=%v 2023=%v",
			early.InstPacketShare, res.InstPacketShare)
	}
}

func TestBlockableShareTrajectory(t *testing.T) {
	b17 := Blockable(yearData(t, 2017))
	b20 := Blockable(yearData(t, 2020))
	b24 := Blockable(yearData(t, 2024))
	// §7: 92.1% of 2020 traffic from 4 known tools; by 2024 under 40%.
	if b20.Share < 0.55 {
		t.Fatalf("2020 blockable share = %v, want high", b20.Share)
	}
	if b24.Share >= b20.Share {
		t.Fatalf("blockable share must collapse by 2024: 2020=%v 2024=%v",
			b20.Share, b24.Share)
	}
	if b24.Share > 0.55 {
		t.Fatalf("2024 blockable share = %v, want < 0.55", b24.Share)
	}
	// Mirai visible in 2017's identifiable traffic.
	if b17.PerTool[tools.ToolMirai] <= 0 {
		t.Fatal("2017 must have Mirai-identifiable traffic")
	}
	// Shares are consistent.
	sum := 0.0
	for _, s := range b20.PerTool {
		sum += s
	}
	if diff := sum - b20.Share; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("per-tool sum %v != share %v", sum, b20.Share)
	}
}

func TestBlocklistDecay(t *testing.T) {
	s, err := workload.NewScenario(workload.Config{
		Year: 2022, Seed: testSeed, Scale: testScale, TelescopeSize: testTelSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := BlocklistDecay(s)
	if res.Weeks < 4 {
		t.Fatalf("weeks = %d", res.Weeks)
	}
	if res.HitRate[0] != 1 {
		t.Fatalf("live feed hit rate = %v, want 1", res.HitRate[0])
	}
	// Coverage must decay substantially within the first weeks.
	if res.HitRate[1] >= 0.95 {
		t.Fatalf("1-week-old list still covers %v", res.HitRate[1])
	}
	if res.HitRate[3] >= res.HitRate[1] {
		t.Fatalf("no decay: week1=%v week3=%v", res.HitRate[1], res.HitRate[3])
	}
	// Institutional sources remain covered (they rescan from stable IPs).
	if res.InstHitRate[2] < 0.7 {
		t.Fatalf("institutional hit rate at 2 weeks = %v, want high", res.InstHitRate[2])
	}
	if res.InstHitRate[2] <= res.HitRate[2] {
		t.Fatal("institutional coverage must exceed overall coverage")
	}
}

func TestCollabOnSimulatedYear(t *testing.T) {
	// 2022: CollabShare 0.25 — sharded scans must be reconstructable.
	yd := yearData(t, 2022)
	groups := collab.Detect(yd.QualifiedScans(), collab.Config{})
	st := collab.Summarize(groups)
	if st.RawScans == 0 || st.LogicalScans == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Collaborative == 0 {
		t.Fatal("2022 must contain detectable collaborative scans")
	}
	if st.InflationFactor <= 1 {
		t.Fatalf("inflation factor = %v, want > 1", st.InflationFactor)
	}
	// 2015: collaboration nearly absent — inflation close to 1.
	st15 := collab.Summarize(collab.Detect(yearData(t, 2015).QualifiedScans(), collab.Config{}))
	if st15.InflationFactor >= st.InflationFactor {
		t.Fatalf("collaboration must grow: 2015=%v 2022=%v",
			st15.InflationFactor, st.InflationFactor)
	}
}

func TestCompareVantage(t *testing.T) {
	res, err := CompareVantage(2020, testSeed, testScale, testTelSize, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Two same-sized vantages see comparable volumes and campaign counts.
	if res.PacketRatio < 0.8 || res.PacketRatio > 1.25 {
		t.Fatalf("packet ratio = %v", res.PacketRatio)
	}
	if res.ScanRatio < 0.8 || res.ScanRatio > 1.25 {
		t.Fatalf("scan ratio = %v", res.ScanRatio)
	}
	// The big targets agree across vantages.
	if res.TopPortOverlap < 0.4 {
		t.Fatalf("top-port overlap = %v", res.TopPortOverlap)
	}
	// Speed distributions are statistically indistinguishable.
	if !res.SpeedKS.SameDistribution(0.01) {
		t.Fatalf("speed distributions diverge: %+v", res.SpeedKS)
	}
}

func TestSketchedMatchesExact(t *testing.T) {
	mk := func() (*workload.Scenario, error) {
		return workload.NewScenario(workload.Config{
			Year: 2020, Seed: testSeed, Scale: testScale, TelescopeSize: testTelSize,
		})
	}
	sa, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	exact := Collect(sa)
	sb, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	sk := Sketched(sb, 10)

	if sk.AcceptedPackets != exact.AcceptedPackets {
		t.Fatalf("accepted: sketched %d != exact %d", sk.AcceptedPackets, exact.AcceptedPackets)
	}
	// HLL within 3% of the exact distinct-source count.
	rel := float64(sk.DistinctSources)/float64(exact.DistinctSources) - 1
	if rel > 0.03 || rel < -0.03 {
		t.Fatalf("distinct sources: sketched %d vs exact %d (%.2f%%)",
			sk.DistinctSources, exact.DistinctSources, rel*100)
	}
	// Top-10 by packets: at least 8 of 10 ports agree (Space-Saving gives
	// upper bounds; near-ties may swap).
	exactTop := map[uint16]bool{}
	for _, ps := range topShares(exact.PacketsPerPort, 10) {
		exactTop[ps.Port] = true
	}
	match := 0
	for _, ps := range sk.TopPortsByPackets {
		if exactTop[ps.Port] {
			match++
		}
	}
	if match < 8 {
		t.Fatalf("top-10 overlap = %d/10 (sketched %+v)", match, sk.TopPortsByPackets)
	}
}

func TestFullEvaluationJSON(t *testing.T) {
	ev, err := FullEvaluation(testSeed, 0.0002, testTelSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Table1) != 10 || len(ev.Table2) != 5 || len(ev.Sec51) != 10 {
		t.Fatalf("evaluation incomplete: %d/%d/%d", len(ev.Table1), len(ev.Table2), len(ev.Sec51))
	}
	if ev.Figure1 == nil || ev.Blocklist == nil || len(ev.Figure8) == 0 {
		t.Fatal("missing figure results")
	}
	var buf bytes.Buffer
	if err := ev.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The JSON must be parseable and carry readable enum keys.
	var round map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"table1", "Institutional", "ZMap", "blocklist_2022"} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %q", want)
		}
	}
}

func TestFigure1MultiEvents(t *testing.T) {
	// Five disclosures on distinct quiet ports, staggered through the
	// window — the paper's Figure 1 overlays ten such events.
	var events []workload.Disclosure
	for i := 0; i < 5; i++ {
		events = append(events, workload.Disclosure{
			Day:        6 + 5*i,
			Port:       uint16(40000 + i),
			PeakPerDay: 50000,
			DecayDays:  4,
		})
	}
	res, err := Figure1Multi(testSeed, testScale, testTelSize, 2019, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 5 {
		t.Fatalf("%d events traced", len(res.Events))
	}
	for i, ev := range res.Events {
		if ev.PeakFactor < 3 {
			t.Fatalf("event %d: no surge (peak %v)", i, ev.PeakFactor)
		}
		if ev.PeakDay < events[i].Day || ev.PeakDay > events[i].Day+7 {
			t.Fatalf("event %d: peak day %d, want near %d", i, ev.PeakDay, events[i].Day)
		}
	}
	if !res.AllDecayed {
		t.Fatal("some event did not decay back to baseline")
	}
	if res.MeanPeakFactor < 3 {
		t.Fatalf("mean peak %v", res.MeanPeakFactor)
	}
}

func TestZMapDailySurge(t *testing.T) {
	// §4.1: the minimum daily ZMap scan count in 2024 exceeds the 2023
	// maximum — the surge is a landscape shift, not one campaign.
	d23 := ZMapDaily(yearData(t, 2023))
	d24 := ZMapDaily(yearData(t, 2024))
	if len(d24.PerDay) != 59 {
		t.Fatalf("2024 days = %d", len(d24.PerDay))
	}
	if d24.Max == 0 {
		t.Fatal("no ZMap campaigns in 2024")
	}
	// Paper scale: min(2024) = 17,122 > max(2023) = 9,051, i.e. the daily
	// averages differ by well over 2x. Daily minima/maxima are Poisson-
	// noisy at simulation scale, so assert the mean ratio.
	if d24.Mean < 2*d23.Mean {
		t.Fatalf("2024 daily mean (%.1f) must be >= 2x 2023's (%.1f)",
			d24.Mean, d23.Mean)
	}
}

func TestSec42Normalized(t *testing.T) {
	rows := Sec42Normalized(yearData(t, 2024))
	if len(rows) < 10 {
		t.Fatalf("too few countries: %d", len(rows))
	}
	byC := map[string]NormalizedOrigin{}
	for _, r := range rows {
		byC[r.Country] = r
		if r.Intensity <= 0 || r.AddressShare <= 0 {
			t.Fatalf("bad row: %+v", r)
		}
	}
	nl, ok := byC["NL"]
	if !ok {
		t.Fatal("NL missing")
	}
	// §4.2: normalized by address space, the Netherlands stands out while
	// the historically dominant origins do not.
	if nl.Intensity < 1.5 {
		t.Fatalf("NL intensity = %v, want outlier", nl.Intensity)
	}
	if us := byC["US"]; us.Intensity > nl.Intensity {
		t.Fatalf("US intensity %v should not exceed NL %v once normalized",
			us.Intensity, nl.Intensity)
	}
	// Sorted by intensity descending.
	for i := 1; i < len(rows); i++ {
		if rows[i].Intensity > rows[i-1].Intensity {
			t.Fatal("rows not sorted")
		}
	}
}

func TestEvaluationCSVExport(t *testing.T) {
	ev, err := FullEvaluation(testSeed, 0.0002, testTelSize)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ev.WriteCSVDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.csv", "table2.csv", "figure1.csv",
		"figure3.csv", "figure8.csv", "sec51.csv", "sec63.csv", "blocklist.csv", "collab.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(string(b), "\n")
		if lines < 2 {
			t.Fatalf("%s has only %d lines", name, lines)
		}
	}
	// table1.csv carries the decade: header + 10 rows.
	b, _ := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if got := strings.Count(string(b), "\n"); got != 11 {
		t.Fatalf("table1.csv rows = %d, want 11", got)
	}
}
