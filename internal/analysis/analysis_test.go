package analysis

import (
	"sync"
	"testing"

	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

const (
	testScale   = 0.001
	testTelSize = 2048
	testSeed    = 7
)

var (
	decadeOnce sync.Once
	decadeData []*YearData
)

// decade lazily collects all ten years once for the whole test binary.
func decade(t testing.TB) []*YearData {
	t.Helper()
	decadeOnce.Do(func() {
		var err error
		decadeData, err = Decade(testSeed, testScale, testTelSize)
		if err != nil {
			panic(err)
		}
	})
	return decadeData
}

func yearData(t testing.TB, year int) *YearData {
	for _, yd := range decade(t) {
		if yd.Year == year {
			return yd
		}
	}
	t.Fatalf("year %d not collected", year)
	return nil
}

func TestCollectBasics(t *testing.T) {
	yd := yearData(t, 2020)
	if yd.AcceptedPackets == 0 {
		t.Fatal("no packets accepted")
	}
	if yd.DistinctSources == 0 {
		t.Fatal("no sources")
	}
	if len(yd.Scans) == 0 || len(yd.Scans) != len(yd.ScanOrigins) {
		t.Fatalf("scans/origins mismatch: %d vs %d", len(yd.Scans), len(yd.ScanOrigins))
	}
	if yd.TelescopeStats.NotSYN == 0 {
		t.Fatal("backscatter should have been dropped")
	}
	var sum uint64
	for _, v := range yd.PacketsPerDay {
		sum += v
	}
	if sum != yd.AcceptedPackets {
		t.Fatalf("per-day sum %d != accepted %d", sum, yd.AcceptedPackets)
	}
	if got := yd.PacketsPerPort.Total(); got != yd.AcceptedPackets {
		t.Fatalf("per-port sum %d != accepted %d", got, yd.AcceptedPackets)
	}
}

func TestTable1GrowthShape(t *testing.T) {
	rows := Table1(decade(t), 5)
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	// ~30-fold packet growth (wide tolerance at test scale).
	growth := last.PacketsPerDay / first.PacketsPerDay
	if growth < 10 || growth > 60 {
		t.Fatalf("packet growth = %.1f, want ~30x", growth)
	}
	// Scan count grows even faster than packets (§4.1).
	scanGrowth := last.ScansPerMonth / first.ScansPerMonth
	if scanGrowth < 15 {
		t.Fatalf("scan growth = %.1f, want >> 10x", scanGrowth)
	}
	// Monotone-ish rise in the 2015→2020 era.
	if rows[5].PacketsPerDay < rows[0].PacketsPerDay*5 {
		t.Fatal("2020 must dwarf 2015")
	}
}

func TestTable1ToolShares(t *testing.T) {
	rows := Table1(decade(t), 5)
	byYear := map[int]Table1Row{}
	for _, r := range rows {
		byYear[r.Year] = r
	}
	// 2015: NMap is the leading identified tool, ZMap small.
	r15 := byYear[2015]
	if r15.ToolShares[tools.ToolNMap] < 0.1 {
		t.Fatalf("2015 NMap share = %v, want > 0.1", r15.ToolShares[tools.ToolNMap])
	}
	// 2017: Mirai dominates scans.
	r17 := byYear[2017]
	if r17.ToolShares[tools.ToolMirai] < 0.25 {
		t.Fatalf("2017 Mirai share = %v", r17.ToolShares[tools.ToolMirai])
	}
	// 2018-2021: Masscan prominent.
	if byYear[2019].ToolShares[tools.ToolMasscan] < 0.10 {
		t.Fatalf("2019 Masscan share = %v", byYear[2019].ToolShares[tools.ToolMasscan])
	}
	// 2024: ZMap dominates scans; NMap and Masscan near zero.
	r24 := byYear[2024]
	if r24.ToolShares[tools.ToolZMap] < 0.3 {
		t.Fatalf("2024 ZMap share = %v", r24.ToolShares[tools.ToolZMap])
	}
	if r24.ToolShares[tools.ToolNMap] > 0.02 || r24.ToolShares[tools.ToolMasscan] > 0.05 {
		t.Fatalf("2024 legacy tools too present: %+v", r24.ToolShares)
	}
}

func TestTable1TopPorts(t *testing.T) {
	rows := Table1(decade(t), 5)
	for _, r := range rows {
		if len(r.TopPortsByPackets) == 0 || len(r.TopPortsBySources) == 0 || len(r.TopPortsByScans) == 0 {
			t.Fatalf("year %d: empty rankings", r.Year)
		}
		for _, ps := range r.TopPortsByPackets {
			if ps.Share <= 0 || ps.Share > 1 {
				t.Fatalf("year %d: bad share %v", r.Year, ps.Share)
			}
		}
	}
	// 2017 must be IoT-flavored: 7547 or 2323 among top scan ports.
	var r17 Table1Row
	for _, r := range rows {
		if r.Year == 2017 {
			r17 = r
		}
	}
	found := false
	for _, ps := range r17.TopPortsByScans {
		if ps.Port == 7547 || ps.Port == 2323 || ps.Port == 5358 {
			found = true
		}
	}
	if !found {
		t.Fatalf("2017 top scan ports lack IoT targets: %+v", r17.TopPortsByScans)
	}
	// 80/8080 lead the by-sources ranking in 2019-2022 (Table 1).
	for _, r := range rows {
		if r.Year < 2019 || r.Year > 2022 {
			continue
		}
		top2 := map[uint16]bool{r.TopPortsBySources[0].Port: true, r.TopPortsBySources[1].Port: true}
		if !top2[80] && !top2[8080] {
			t.Fatalf("year %d: by-sources top2 = %+v, want web ports", r.Year, r.TopPortsBySources[:2])
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows := Table2([]*YearData{yearData(t, 2022)})
	byType := map[inetmodel.ScannerType]Table2Row{}
	var srcSum, scanSum, pktSum float64
	for _, r := range rows {
		byType[r.Type] = r
		srcSum += r.Sources
		scanSum += r.Scans
		pktSum += r.Packets
	}
	if srcSum < 0.999 || srcSum > 1.001 || scanSum < 0.999 || scanSum > 1.001 || pktSum < 0.999 || pktSum > 1.001 {
		t.Fatalf("shares must each sum to 1: %v %v %v", srcSum, scanSum, pktSum)
	}
	inst := byType[inetmodel.TypeInstitutional]
	res := byType[inetmodel.TypeResidential]
	// Institutional: tiny source share, outsized packet share (Table 2:
	// 0.16% of sources, 32.63% of packets).
	if inst.Sources > 0.05 {
		t.Fatalf("institutional source share = %v, want tiny", inst.Sources)
	}
	if inst.Packets < 0.15 {
		t.Fatalf("institutional packet share = %v, want large", inst.Packets)
	}
	if inst.Packets < inst.Sources*10 {
		t.Fatal("institutional packets/sources asymmetry missing")
	}
	// Residential: majority of sources.
	if res.Sources < 0.35 {
		t.Fatalf("residential source share = %v", res.Sources)
	}
}

func TestFigure1DisclosureDecay(t *testing.T) {
	ev := workload.Disclosure{Day: 12, Port: 9898, PeakPerDay: 60000, DecayDays: 4}
	res, err := Figure1(testSeed, testScale, testTelSize, 2019, ev)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakDay < ev.Day || res.PeakDay > ev.Day+6 {
		t.Fatalf("peak at day %d, want near %d", res.PeakDay, ev.Day)
	}
	if res.PeakFactor < 3 {
		t.Fatalf("peak factor %v, want a clear surge", res.PeakFactor)
	}
	// Activity at the end of the window back near baseline.
	tail := res.RelativeActivity[len(res.RelativeActivity)-7:]
	for _, v := range tail {
		if v > res.PeakFactor/3 {
			t.Fatalf("activity did not decay: tail %v vs peak %v", v, res.PeakFactor)
		}
	}
	// KS confirms the return to the pre-event distribution.
	if !res.KS.SameDistribution(0.01) {
		t.Fatalf("KS rejects return to baseline: %+v", res.KS)
	}
}

func TestFigure2Volatility(t *testing.T) {
	res := Figure2(yearData(t, 2020))
	if len(res.PacketRatios) == 0 || len(res.SourceRatios) == 0 {
		t.Fatal("no weekly ratios")
	}
	// The ecosystem is volatile: a large share of blocks changes >= 2x
	// week-over-week (paper: > 50%).
	if res.PacketsTwofold < 0.25 {
		t.Fatalf("packets twofold share = %v, want substantial volatility", res.PacketsTwofold)
	}
	// But a stable core exists too.
	if res.Stable <= 0 {
		t.Fatal("no stable blocks at all")
	}
	for _, r := range res.PacketRatios {
		if r < 1 {
			t.Fatalf("ratios must be >= 1: %v", r)
		}
	}
}

func TestFigure3SinglePortDecline(t *testing.T) {
	f15 := Figure3(yearData(t, 2015))
	f22 := Figure3(yearData(t, 2022))
	if f15.SinglePortShare < 0.6 {
		t.Fatalf("2015 single-port share = %v, want ~0.83", f15.SinglePortShare)
	}
	if f22.SinglePortShare >= f15.SinglePortShare {
		t.Fatalf("single-port share must decline: 2015=%v 2022=%v",
			f15.SinglePortShare, f22.SinglePortShare)
	}
	if f22.FivePlusShare <= f15.FivePlusShare {
		t.Fatalf("5+-port share must rise: 2015=%v 2022=%v",
			f15.FivePlusShare, f22.FivePlusShare)
	}
	if f15.ECDF.Len() == 0 {
		t.Fatal("empty CDF")
	}
}

func TestFigure4ToolMix(t *testing.T) {
	ports := Figure4(yearData(t, 2020), 10)
	if len(ports) != 10 {
		t.Fatalf("%d ports", len(ports))
	}
	for _, fp := range ports {
		sum := 0.0
		for _, s := range fp.ToolShare {
			if s < 0 || s > 1 {
				t.Fatalf("port %d: share %v", fp.Port, s)
			}
			sum += s
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("port %d: shares sum to %v", fp.Port, sum)
		}
	}
	// 2017: Mirai heavy on its IoT ports.
	ports17 := Figure4(yearData(t, 2017), 10)
	miraiSeen := false
	for _, fp := range ports17 {
		if fp.ToolShare[tools.ToolMirai] > 0.3 {
			miraiSeen = true
		}
	}
	if !miraiSeen {
		t.Fatal("2017 top ports show no Mirai-dominated traffic")
	}
}

func TestFigure5TypeShares(t *testing.T) {
	rows := Figure5(yearData(t, 2022), 15)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	instSomewhere := false
	for _, fp := range rows {
		sum := 0.0
		for _, s := range fp.TypeShare {
			sum += s
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("port %d: type shares sum to %v", fp.Port, sum)
		}
		if fp.TypeShare[inetmodel.TypeInstitutional] > 0.2 {
			instSomewhere = true
		}
	}
	if !instSomewhere {
		t.Fatal("institutional scanners should dominate some ports")
	}
}

func TestFigure6Recurrence(t *testing.T) {
	res := Figure6([]*YearData{yearData(t, 2022)})
	inst := res.ScansPerSource[inetmodel.TypeInstitutional]
	resi := res.ScansPerSource[inetmodel.TypeResidential]
	if len(inst) == 0 || len(resi) == 0 {
		t.Fatal("missing recurrence samples")
	}
	meanOf := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if meanOf(inst) < meanOf(resi)*3 {
		t.Fatalf("institutional sources must recur far more: inst=%v resi=%v",
			meanOf(inst), meanOf(resi))
	}
	// Institutional downtime concentrates at ~1 day (§6.6). The per-type
	// *mode share* comparison is unstable at test scale (non-institutional
	// returnees are a handful of sources, and sub-12h gaps are censored by
	// the detector expiry), so the distinguishing §6.6 assertion is the
	// recurrence-count asymmetry above plus the institutional mode here.
	if instMode := res.DailyModeShare[inetmodel.TypeInstitutional]; instMode < 0.3 {
		t.Fatalf("institutional daily mode = %v", instMode)
	}
	// Non-institutional sources must rarely recur at all.
	recurShare := func(t2 inetmodel.ScannerType) float64 {
		multi := 0
		for _, n := range res.ScansPerSource[t2] {
			if n > 1 {
				multi++
			}
		}
		if len(res.ScansPerSource[t2]) == 0 {
			return 0
		}
		return float64(multi) / float64(len(res.ScansPerSource[t2]))
	}
	if rs, is := recurShare(inetmodel.TypeResidential), recurShare(inetmodel.TypeInstitutional); rs >= is {
		t.Fatalf("residential recurrence %v >= institutional %v", rs, is)
	}
}

func TestFigure7SpeedByType(t *testing.T) {
	rows := Figure7(yearData(t, 2022))
	byType := map[inetmodel.ScannerType]Figure7Row{}
	for _, r := range rows {
		byType[r.Type] = r
	}
	inst, okI := byType[inetmodel.TypeInstitutional]
	res, okR := byType[inetmodel.TypeResidential]
	if !okI || !okR {
		t.Fatal("missing type rows")
	}
	// §6.8: institutional scanning is orders of magnitude faster.
	if inst.MeanSpeedPPS < res.MeanSpeedPPS*5 {
		t.Fatalf("institutional speed %v vs residential %v", inst.MeanSpeedPPS, res.MeanSpeedPPS)
	}
	if inst.Above1000PPS < res.Above1000PPS {
		t.Fatal("institutional >1000pps share must exceed residential")
	}
}

func TestFigure8InstitutionalCoverage(t *testing.T) {
	s, err := workload.NewScenario(workload.Config{
		Year: 2024, Seed: testSeed, Scale: 0.003, TelescopeSize: testTelSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := Figure8(s)
	if len(rows) < 15 {
		t.Fatalf("only %d orgs observed", len(rows))
	}
	cov := map[string]Figure8Row{}
	for _, r := range rows {
		cov[r.Org] = r
	}
	// Full-range scanners in 2024.
	for _, name := range []string{"Censys", "Palo Alto Networks"} {
		if c := cov[name]; c.PortsCovered < 60000 {
			t.Errorf("%s covered %d ports, want near-full range", name, c.PortsCovered)
		}
	}
	// Partial scanners stay partial.
	if c := cov["Rapid7"]; c.PortsCovered == 0 || c.PortsCovered > 10000 {
		t.Errorf("Rapid7 covered %d ports, want partial", c.PortsCovered)
	}
	// Universities scan only a handful of ports.
	if c := cov["TU Munich"]; c.Packets > 0 && c.PortsCovered > 64 {
		t.Errorf("TU Munich covered %d ports, want few", c.PortsCovered)
	}
	// Ranking: first row must be a full-range org.
	if !rows[0].FullRange {
		t.Errorf("top org %s not full range (%d)", rows[0].Org, rows[0].PortsCovered)
	}
}

func TestFigure910OnypheGrowth(t *testing.T) {
	reg := inetmodel.BuildRegistry(testSeed)
	rows, err := Figure910(testSeed, 0.003, testTelSize, reg)
	if err != nil {
		t.Fatal(err)
	}
	var onyphe Figure910Row
	for _, r := range rows {
		if r.Org == "Onyphe" {
			onyphe = r
		}
	}
	if onyphe.Org == "" {
		t.Fatal("Onyphe missing")
	}
	// §6.8: Onyphe scaled from under half the range to the full range.
	if onyphe.Ports2023 >= 40000 {
		t.Fatalf("Onyphe 2023 = %d ports, want < 40000", onyphe.Ports2023)
	}
	if onyphe.Ports2024 < 55000 {
		t.Fatalf("Onyphe 2024 = %d ports, want near-full", onyphe.Ports2024)
	}
	if onyphe.Ports2024 <= onyphe.Ports2023 {
		t.Fatal("Onyphe must grow")
	}
}

func TestSec51(t *testing.T) {
	svc := inetmodel.NewServiceModel(testSeed)
	r15 := Sec51(yearData(t, 2015), svc, testSeed)
	r22 := Sec51(yearData(t, 2022), svc, testSeed)
	if r22.PrivilegedCoverage <= r15.PrivilegedCoverage {
		t.Fatalf("privileged coverage must rise: 2015=%v 2022=%v",
			r15.PrivilegedCoverage, r22.PrivilegedCoverage)
	}
	if r22.CoScan80_8080 <= r15.CoScan80_8080 {
		t.Fatalf("80/8080 co-scanning must rise: 2015=%v 2022=%v",
			r15.CoScan80_8080, r22.CoScan80_8080)
	}
	// No correlation between services and scan intensity.
	if r22.ServicesScansR.R > 0.2 || r22.ServicesScansR.R < -0.2 {
		t.Fatalf("services/scans correlation = %v, want ~0", r22.ServicesScansR.R)
	}
	// Cross-year 3+-port trend is positive and strong.
	var all []*Sec51Result
	for _, yd := range decade(t) {
		all = append(all, Sec51(yd, svc, testSeed))
	}
	trend, err := ThreePlusTrend(all)
	if err != nil {
		t.Fatal(err)
	}
	if trend.R < 0.5 {
		t.Fatalf("3+-port trend R = %v, want strongly positive", trend.R)
	}
}

func TestSec52Verticals(t *testing.T) {
	r15 := Sec52(yearData(t, 2015))
	r20 := Sec52(yearData(t, 2020))
	if r20.Over10000 <= r15.Over10000 {
		t.Fatalf("vertical scans must rise 2015→2020: %d vs %d",
			r15.Over10000, r20.Over10000)
	}
	if r20.LargestPortCount < 10000 {
		t.Fatalf("2020 largest scan covers %d ports", r20.LargestPortCount)
	}
	// Big-port scans are much faster than the average (§5.2).
	if r20.Over1000 > 0 && r20.MeanSpeedOver1000Mbps < r20.MeanSpeedAllMbps {
		t.Fatalf("vertical scans should be faster: %v vs %v",
			r20.MeanSpeedOver1000Mbps, r20.MeanSpeedAllMbps)
	}
}

func TestSec63Speeds(t *testing.T) {
	r20 := Sec63(yearData(t, 2020))
	mirai := r20.MedianPPS[tools.ToolMirai]
	zmap := r20.MedianPPS[tools.ToolZMap]
	if mirai == 0 || zmap == 0 {
		t.Fatalf("missing tool speeds: %+v", r20.MedianPPS)
	}
	// Mirai (embedded devices) slowest; ZMap fastest (§6.3).
	if mirai > zmap {
		t.Fatalf("Mirai %v faster than ZMap %v", mirai, zmap)
	}
	if r20.Top100MeanPPS < r20.OverallMedianPPS {
		t.Fatal("top-100 mean must exceed the overall median")
	}
	// NMap is comparable to Masscan on average (§6.3's curious finding);
	// at test scale NMap has only a handful of campaigns, so allow wide
	// sampling noise around the configured medians (12k vs 8k pps).
	nmap, masscan := r20.MedianPPS[tools.ToolNMap], r20.MedianPPS[tools.ToolMasscan]
	if nmap > 0 && masscan > 0 && nmap < masscan*0.35 {
		t.Fatalf("NMap %v should be comparable or faster than Masscan %v", nmap, masscan)
	}
	// Top-end speeds rise across the decade.
	var all []*Sec63Result
	for _, yd := range decade(t) {
		all = append(all, Sec63(yd))
	}
	trend, err := Top100Trend(all)
	if err != nil {
		t.Fatal(err)
	}
	if trend.R < 0 {
		t.Fatalf("top-100 speed trend R = %v, want positive", trend.R)
	}
}

func TestSpeedPortsCorrelation(t *testing.T) {
	res, err := SpeedPortsCorrelation(yearData(t, 2020))
	if err != nil {
		t.Fatal(err)
	}
	if res.R <= 0 {
		t.Fatalf("speed/ports correlation = %v, want positive (§5.3)", res.R)
	}
}

func TestSec64CoverageModes(t *testing.T) {
	res := Sec64(yearData(t, 2024), tools.ToolZMap)
	if len(res.Coverages) == 0 {
		t.Fatal("no ZMap campaigns in 2024")
	}
	if res.ModeCount == 0 {
		t.Fatal("no coverage mode found")
	}
	for _, c := range res.Coverages {
		if c < 0 || c > 1 {
			t.Fatalf("coverage %v out of range", c)
		}
	}
}
