package analysis

import (
	"sort"

	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

// This file implements the §5.4 origin-country analysis and the paper's §7
// future-work directions: quantifying the bias institutional ("benign")
// scanners introduce, the share of traffic blockable by tool fingerprints,
// and a two-vantage-point comparison.

// ---------------------------------------------------------------------------
// §5.4: origin-country structure

// CountryShare is one country's share of something.
type CountryShare struct {
	Country string
	Share   float64
}

// Sec54Result describes where scanning comes from in one year.
type Sec54Result struct {
	Year int
	// TopCountries ranks countries by share of accepted packets.
	TopCountries []CountryShare
	// DominatedPorts counts, per country, the ports where more than 80%
	// of the traffic originates from that single country (the paper: CN
	// dominates 14,444 ports in 2022, US 666, BR 221, ...).
	DominatedPorts map[string]int
	// PortOrigins gives the per-country split for the headline biased
	// ports (443 → US, 3389/3306 → CN, 8545 → VN).
	PortOrigins map[uint16][]CountryShare
}

// sec54MinVolume is the per-port volume floor below which domination is
// not counted (single-packet ports are trivially "dominated").
const sec54MinVolume = 25

// Sec54 computes the origin-country structure of a collected year.
func Sec54(yd *YearData) *Sec54Result {
	res := &Sec54Result{
		Year:           yd.Year,
		DominatedPorts: map[string]int{},
		PortOrigins:    map[uint16][]CountryShare{},
	}

	// Aggregate per country and per port.
	countryTotal := map[string]uint64{}
	portTotal := map[uint16]uint64{}
	portBest := map[uint16]struct {
		country string
		n       uint64
	}{}
	var grand uint64
	for _, key := range yd.CountryPackets.Keys() {
		n := yd.CountryPackets.Get(key)
		countryTotal[key.Country] += n
		portTotal[key.Port] += n
		grand += n
		if b := portBest[key.Port]; n > b.n {
			portBest[key.Port] = struct {
				country string
				n       uint64
			}{key.Country, n}
		}
	}

	for c, n := range countryTotal {
		res.TopCountries = append(res.TopCountries, CountryShare{c, float64(n) / float64(grand)})
	}
	sort.Slice(res.TopCountries, func(i, j int) bool {
		if res.TopCountries[i].Share != res.TopCountries[j].Share {
			return res.TopCountries[i].Share > res.TopCountries[j].Share
		}
		return res.TopCountries[i].Country < res.TopCountries[j].Country
	})

	for port, total := range portTotal {
		if total < sec54MinVolume {
			continue
		}
		if b := portBest[port]; float64(b.n) > 0.8*float64(total) {
			res.DominatedPorts[b.country]++
		}
	}

	for _, port := range []uint16{443, 3389, 3306, 8545, 80} {
		total := portTotal[port]
		if total == 0 {
			continue
		}
		var shares []CountryShare
		for _, key := range yd.CountryPackets.Keys() {
			if key.Port != port {
				continue
			}
			shares = append(shares, CountryShare{
				key.Country, float64(yd.CountryPackets.Get(key)) / float64(total),
			})
		}
		sort.Slice(shares, func(i, j int) bool {
			if shares[i].Share != shares[j].Share {
				return shares[i].Share > shares[j].Share
			}
			return shares[i].Country < shares[j].Country
		})
		if len(shares) > 5 {
			shares = shares[:5]
		}
		res.PortOrigins[port] = shares
	}
	return res
}

// NormalizedOrigin is one country's raw vs address-space-normalized
// scanning intensity.
type NormalizedOrigin struct {
	Country string
	// RawShare is the country's share of accepted packets.
	RawShare float64
	// AddressShare is its share of the registry's routable /16 blocks.
	AddressShare float64
	// Intensity is RawShare/AddressShare: >1 means the country scans more
	// than its address space predicts.
	Intensity float64
}

// Sec42Normalized reproduces the §4.2 normalization: when traffic is
// normalized by address space, the historically loud countries no longer
// stand out and the Netherlands becomes the outlier (cheap hosting,
// high-speed connectivity, bulletproof hosters).
func Sec42Normalized(yd *YearData) []NormalizedOrigin {
	reg := yd.Registry()
	blocks := map[string]int{}
	totalBlocks := 0
	for b := 0; b < 65536; b++ {
		e := reg.Lookup(uint32(b) << 16)
		if e.Country == "" {
			continue
		}
		blocks[e.Country]++
		totalBlocks++
	}
	countryPackets := map[string]uint64{}
	var grand uint64
	for _, key := range yd.CountryPackets.Keys() {
		n := yd.CountryPackets.Get(key)
		countryPackets[key.Country] += n
		grand += n
	}
	var out []NormalizedOrigin
	for c, n := range countryPackets {
		if blocks[c] == 0 || grand == 0 {
			continue
		}
		raw := float64(n) / float64(grand)
		addr := float64(blocks[c]) / float64(totalBlocks)
		out = append(out, NormalizedOrigin{
			Country: c, RawShare: raw, AddressShare: addr, Intensity: raw / addr,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Intensity != out[j].Intensity {
			return out[i].Intensity > out[j].Intensity
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// ---------------------------------------------------------------------------
// §7: benign-scanner bias

// BiasResult quantifies how much institutional scanning distorts a naive
// quantification of the threat landscape (§7: "measurements could be off by
// over 30%").
type BiasResult struct {
	Year int
	// InstPacketShare is institutional traffic's share of all packets.
	InstPacketShare float64
	// TopPortsRaw and TopPortsFiltered are the top-port rankings with and
	// without institutional traffic.
	TopPortsRaw, TopPortsFiltered []PortShare
	// RankingChanged reports whether filtering changes the top-N set.
	RankingChanged bool
}

// InstitutionalBias compares the top-port table with and without
// institutional traffic.
func InstitutionalBias(yd *YearData, topN int) *BiasResult {
	res := &BiasResult{Year: yd.Year}
	var instTotal uint64
	filtered := stats.NewCounter[uint16]()
	for _, port := range yd.PacketsPerPort.Keys() {
		all := yd.PacketsPerPort.Get(port)
		inst := yd.InstPacketsPerPort.Get(port)
		instTotal += inst
		if all > inst {
			filtered.Add(port, all-inst)
		}
	}
	if t := yd.PacketsPerPort.Total(); t > 0 {
		res.InstPacketShare = float64(instTotal) / float64(t)
	}
	res.TopPortsRaw = topShares(yd.PacketsPerPort, topN)
	res.TopPortsFiltered = topShares(filtered, topN)

	rawSet := map[uint16]bool{}
	for _, ps := range res.TopPortsRaw {
		rawSet[ps.Port] = true
	}
	for _, ps := range res.TopPortsFiltered {
		if !rawSet[ps.Port] {
			res.RankingChanged = true
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// §7: alert-fatigue / fingerprint blockability

// BlockableResult is the share of traffic identifiable (and hence
// blockable) via the §3.3 per-packet tool fingerprints.
type BlockableResult struct {
	Year int
	// Share is the fraction of accepted probes carrying a known per-packet
	// fingerprint (paper: 92.1% in 2020, under 40% by 2024).
	Share float64
	// PerTool decomposes the identifiable traffic.
	PerTool map[tools.Tool]float64
}

// Blockable computes the fingerprint-identifiable traffic share.
func Blockable(yd *YearData) *BlockableResult {
	res := &BlockableResult{Year: yd.Year, PerTool: map[tools.Tool]float64{}}
	total := float64(yd.AcceptedPackets)
	if total == 0 {
		return res
	}
	var ident uint64
	for _, key := range yd.PacketsPerToolPort.Keys() {
		if key.Tool == tools.ToolUnknown {
			continue
		}
		n := yd.PacketsPerToolPort.Get(key)
		ident += n
		res.PerTool[key.Tool] += float64(n) / total
	}
	res.Share = float64(ident) / total
	return res
}

// ---------------------------------------------------------------------------
// §7: vantage-point comparison

// VantageResult compares the view of two telescopes observing the same
// scanning ecosystem.
type VantageResult struct {
	Year int
	// PacketRatio and ScanRatio are B's totals over A's.
	PacketRatio, ScanRatio float64
	// TopPortOverlap is |top-10(A) ∩ top-10(B)| / 10 on the by-packets
	// ranking.
	TopPortOverlap float64
	// SpeedKS compares the two campaign-speed distributions.
	SpeedKS stats.KSResult
}

// CompareVantage runs the same year twice with different telescope address
// sets and compares the results. Note the simulation targets probes at
// monitored addresses directly (DESIGN.md), so this comparison isolates the
// address-sampling effect, not geographic targeting: agreement here is an
// upper bound on real-world vantage agreement.
func CompareVantage(year int, seed uint64, scale float64, telescopeSize int, telSeedA, telSeedB uint64) (*VantageResult, error) {
	run := func(telSeed uint64) (*YearData, error) {
		s, err := workload.NewScenario(workload.Config{
			Year: year, Seed: seed, Scale: scale,
			TelescopeSize: telescopeSize, TelescopeSeed: telSeed,
		})
		if err != nil {
			return nil, err
		}
		return Collect(s), nil
	}
	a, err := run(telSeedA)
	if err != nil {
		return nil, err
	}
	b, err := run(telSeedB)
	if err != nil {
		return nil, err
	}

	res := &VantageResult{Year: year}
	if a.AcceptedPackets > 0 {
		res.PacketRatio = float64(b.AcceptedPackets) / float64(a.AcceptedPackets)
	}
	qa, qb := len(a.QualifiedScans()), len(b.QualifiedScans())
	if qa > 0 {
		res.ScanRatio = float64(qb) / float64(qa)
	}

	topA := a.PacketsPerPort.TopK(10)
	topB := b.PacketsPerPort.TopK(10)
	inA := map[uint16]bool{}
	for _, kv := range topA {
		inA[kv.Key] = true
	}
	overlap := 0
	for _, kv := range topB {
		if inA[kv.Key] {
			overlap++
		}
	}
	if len(topA) > 0 {
		res.TopPortOverlap = float64(overlap) / float64(len(topA))
	}

	speeds := func(yd *YearData) []float64 {
		var out []float64
		for _, sc := range yd.QualifiedScans() {
			out = append(out, sc.RatePPS)
		}
		return out
	}
	if ks, err := stats.KS2Sample(speeds(a), speeds(b)); err == nil {
		res.SpeedKS = ks
	}
	return res, nil
}
