package analysis

import (
	"encoding/json"
	"io"

	"github.com/synscan/synscan/internal/collab"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

// Evaluation is the complete machine-readable result set of the paper's
// reproduction: every table, figure and section scalar in one structure.
// It backs `syneval -json` so downstream plotting does not have to scrape
// the text tables.
type Evaluation struct {
	Seed          uint64  `json:"seed"`
	Scale         float64 `json:"scale"`
	TelescopeSize int     `json:"telescopeSize"`

	Table1 []Table1Row `json:"table1"`
	Table2 []Table2Row `json:"table2"`

	Figure1 *Figure1Result `json:"figure1"`
	Figure2 *Figure2Result `json:"figure2_2020"`
	Figure3 []*Figure3Result
	Figure4 map[int][]Figure4Port `json:"figure4"`
	Figure5 []Figure5Port         `json:"figure5_2022"`
	Figure6 *Figure6Result        `json:"figure6_2022"`
	Figure7 []Figure7Row          `json:"figure7_2022"`
	Figure8 []Figure8Row          `json:"figure8_2024"`
	Fig910  []Figure910Row        `json:"figure9_10"`

	Sec51          []*Sec51Result      `json:"sec51"`
	ThreePlusTrend stats.PearsonResult `json:"threePlusTrend"`
	Sec52          []*Sec52Result      `json:"sec52"`
	Sec54          []*Sec54Result      `json:"sec54"`
	Sec63          []*Sec63Result      `json:"sec63"`
	Top100Trend    stats.PearsonResult `json:"top100Trend"`
	Sec64          *Sec64Result        `json:"sec64_zmap_2024"`

	Bias      []*BiasResult      `json:"institutionalBias"`
	Blockable []*BlockableResult `json:"blockable"`
	Blocklist *BlocklistResult   `json:"blocklist_2022"`
	Collab    []collab.Stats     `json:"collab"`

	Sec42     []NormalizedOrigin `json:"sec42_normalized_2024"`
	ZMapDaily []*ZMapDailyResult `json:"zmapDaily"`
}

// FullEvaluation simulates the decade and computes every experiment.
func FullEvaluation(seed uint64, scale float64, telescopeSize int) (*Evaluation, error) {
	return FullEvaluationWith(seed, scale, telescopeSize, CollectConfig{})
}

// FullEvaluationWith is FullEvaluation with the decade collected under cc
// (sharded detection, pipeline metrics).
func FullEvaluationWith(seed uint64, scale float64, telescopeSize int, cc CollectConfig) (*Evaluation, error) {
	years, err := DecadeWith(seed, scale, telescopeSize, cc)
	if err != nil {
		return nil, err
	}
	byYear := map[int]*YearData{}
	for _, yd := range years {
		byYear[yd.Year] = yd
	}
	ev := &Evaluation{
		Seed: seed, Scale: scale, TelescopeSize: telescopeSize,
		Table1:  Table1(years, 5),
		Table2:  Table2(years),
		Figure2: Figure2(byYear[2020]),
		Figure4: map[int][]Figure4Port{},
		Figure5: Figure5(byYear[2022], 15),
		Figure6: Figure6([]*YearData{byYear[2022]}),
		Figure7: Figure7(byYear[2022]),
		Sec64:   Sec64(byYear[2024], tools.ToolZMap),
	}

	ev.Figure1, err = Figure1(seed, scale, telescopeSize, 2019,
		workload.Disclosure{Day: 12, Port: 9898, PeakPerDay: 60000, DecayDays: 4})
	if err != nil {
		return nil, err
	}
	for _, yd := range years {
		ev.Figure3 = append(ev.Figure3, Figure3(yd))
	}
	for _, y := range []int{2017, 2020, 2022} {
		ev.Figure4[y] = Figure4(byYear[y], 10)
	}

	s24, err := workload.NewScenario(workload.Config{
		Year: 2024, Seed: seed, Scale: scale, TelescopeSize: telescopeSize,
	})
	if err != nil {
		return nil, err
	}
	ev.Figure8 = Figure8(s24)
	ev.Fig910, err = Figure910(seed, scale, telescopeSize, inetmodel.BuildRegistry(seed))
	if err != nil {
		return nil, err
	}

	svc := inetmodel.NewServiceModel(seed)
	for _, yd := range years {
		ev.Sec51 = append(ev.Sec51, Sec51(yd, svc, seed))
		ev.Sec52 = append(ev.Sec52, Sec52(yd))
		ev.Sec54 = append(ev.Sec54, Sec54(yd))
		ev.Sec63 = append(ev.Sec63, Sec63(yd))
		ev.Bias = append(ev.Bias, InstitutionalBias(yd, 5))
		ev.Blockable = append(ev.Blockable, Blockable(yd))
		ev.Collab = append(ev.Collab, collab.Summarize(collab.Detect(yd.QualifiedScans(), collab.Config{})))
	}
	if trend, err := ThreePlusTrend(ev.Sec51); err == nil {
		ev.ThreePlusTrend = trend
	}
	if trend, err := Top100Trend(ev.Sec63); err == nil {
		ev.Top100Trend = trend
	}

	sb, err := workload.NewScenario(workload.Config{
		Year: 2022, Seed: seed, Scale: scale, TelescopeSize: telescopeSize,
	})
	if err != nil {
		return nil, err
	}
	ev.Blocklist = BlocklistDecay(sb)

	ev.Sec42 = Sec42Normalized(byYear[2024])
	for _, y := range []int{2023, 2024} {
		ev.ZMapDaily = append(ev.ZMapDaily, ZMapDaily(byYear[y]))
	}
	return ev, nil
}

// WriteJSON marshals the evaluation, indented, to w.
func (ev *Evaluation) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ev)
}
