package analysis

import (
	"sort"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/telescope"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

// ---------------------------------------------------------------------------
// Figure 1: vulnerability disclosures spike and decay (§4.3)

// Figure1Result captures one disclosure event's activity trace.
type Figure1Result struct {
	Port uint16
	// RelativeActivity[d] is the port's packet volume on day d divided by
	// its pre-event daily average.
	RelativeActivity []float64
	// PeakDay and PeakFactor locate the surge.
	PeakDay    int
	PeakFactor float64
	// KS compares the port-volume distribution of the last two window
	// weeks against the pre-event weeks: SameDistribution(0.05) confirms
	// the return to baseline.
	KS stats.KSResult
}

// Figure1 injects a disclosure event into a scenario year and traces how
// fast interest decays.
func Figure1(seed uint64, scale float64, telescopeSize int, year int, ev workload.Disclosure) (*Figure1Result, error) {
	s, err := workload.NewScenario(workload.Config{
		Year: year, Seed: seed, Scale: scale, TelescopeSize: telescopeSize,
		Disclosures: []workload.Disclosure{ev},
	})
	if err != nil {
		return nil, err
	}
	return traceEvent(ev, collectPortDaily(s, ev.Port)), nil
}

// traceEvent turns a per-day volume series for an event port into the
// Figure-1 surge/decay trace.
func traceEvent(ev workload.Disclosure, days []uint64) *Figure1Result {
	res := &Figure1Result{Port: ev.Port, RelativeActivity: make([]float64, len(days))}
	// Pre-event baseline: days before the disclosure.
	var pre float64
	n := 0
	for d := 0; d < ev.Day && d < len(days); d++ {
		pre += float64(days[d])
		n++
	}
	if n > 0 {
		pre /= float64(n)
	}
	if pre < 1 {
		pre = 1
	}
	for d, v := range days {
		rel := float64(v) / pre
		res.RelativeActivity[d] = rel
		if rel > res.PeakFactor {
			res.PeakFactor = rel
			res.PeakDay = d
		}
	}
	// KS: daily volumes before the event vs the final two weeks.
	var before, after []float64
	for d := 0; d < ev.Day && d < len(days); d++ {
		before = append(before, float64(days[d]))
	}
	for d := len(days) - 14; d < len(days); d++ {
		if d >= 0 {
			after = append(after, float64(days[d]))
		}
	}
	if ks, err := stats.KS2Sample(before, after); err == nil {
		res.KS = ks
	}
	return res
}

// collectPortDaily runs a scenario tallying one port's accepted volume/day.
func collectPortDaily(s *workload.Scenario, port uint16) []uint64 {
	days := make([]uint64, s.Profile.Days+1)
	day := int64(24 * 3600 * 1e9)
	s.Run(func(p *packet.Probe) {
		if p.DstPort != port {
			return
		}
		if s.Telescope.Observe(p) != telescope.Accepted {
			return
		}
		d := int((p.Time - s.Start) / day)
		if d >= 0 && d < len(days) {
			days[d]++
		}
	})
	return days
}

// ---------------------------------------------------------------------------
// Figure 2: weekly volatility per /16 netblock (§4.4)

// Figure2Result holds the weekly change-factor distributions.
type Figure2Result struct {
	// SourceRatios, ScanRatios, PacketRatios are week-over-week change
	// factors per /16, expressed as max(new,old)/min(new,old) >= 1.
	SourceRatios, ScanRatios, PacketRatios []float64
	// ShareChangedTwofold is the fraction of ratios >= 2 per metric.
	SourcesTwofold, ScansTwofold, PacketsTwofold float64
	// Stable is the share of packet ratios below 1.25 ("do more or less
	// the same week after week").
	Stable float64
}

// Figure2 computes the weekly volatility CDF inputs from a collected year.
func Figure2(yd *YearData) *Figure2Result {
	res := &Figure2Result{}
	res.SourceRatios = weeklyRatios(yd.WeeklySources, yd.Weeks)
	res.ScanRatios = weeklyRatios(yd.WeeklyScans, yd.Weeks)
	res.PacketRatios = weeklyRatios(yd.WeeklyPackets, yd.Weeks)
	res.SourcesTwofold = shareAtLeast(res.SourceRatios, 2)
	res.ScansTwofold = shareAtLeast(res.ScanRatios, 2)
	res.PacketsTwofold = shareAtLeast(res.PacketRatios, 2)
	res.Stable = 1 - shareAtLeast(res.PacketRatios, 1.25)
	return res
}

func weeklyRatios(c *stats.Counter[BlockWeek], weeks int) []float64 {
	if weeks < 2 {
		return nil
	}
	// Gather blocks.
	blocks := map[uint16]bool{}
	for _, k := range c.Keys() {
		blocks[k.Block] = true
	}
	var ratios []float64
	for b := range blocks {
		for w := 1; w < weeks; w++ {
			prev := float64(c.Get(BlockWeek{b, uint8(w - 1)}))
			cur := float64(c.Get(BlockWeek{b, uint8(w)}))
			if prev == 0 && cur == 0 {
				continue
			}
			if prev == 0 || cur == 0 {
				// Appeared or vanished: maximal volatility; cap for CDFs.
				ratios = append(ratios, 100)
				continue
			}
			r := cur / prev
			if r < 1 {
				r = 1 / r
			}
			ratios = append(ratios, r)
		}
	}
	sort.Float64s(ratios)
	return ratios
}

func shareAtLeast(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// ---------------------------------------------------------------------------
// Figure 3: distinct ports per source (§5.1)

// Figure3Result is the per-year ports-per-source distribution.
type Figure3Result struct {
	Year int
	// CDF over distinct-port counts (not serialized; use the shares).
	ECDF *stats.ECDF `json:"-"`
	// SinglePortShare is P(source targets exactly one port).
	SinglePortShare float64
	// FivePlusShare is P(source targets >= 5 ports).
	FivePlusShare float64
	// ThreePlusShare is P(source targets >= 3 ports).
	ThreePlusShare float64
}

// Figure3 computes the ports-per-source CDF of a collected year.
func Figure3(yd *YearData) *Figure3Result {
	xs := make([]float64, 0, len(yd.PortsPerSource))
	single, five, three := 0, 0, 0
	for _, n := range yd.PortsPerSource {
		xs = append(xs, float64(n))
		if n == 1 {
			single++
		}
		if n >= 5 {
			five++
		}
		if n >= 3 {
			three++
		}
	}
	total := float64(len(xs))
	res := &Figure3Result{Year: yd.Year, ECDF: stats.NewECDF(xs)}
	if total > 0 {
		res.SinglePortShare = float64(single) / total
		res.FivePlusShare = float64(five) / total
		res.ThreePlusShare = float64(three) / total
	}
	return res
}

// ---------------------------------------------------------------------------
// Figure 4: top ports × tool mix (§6.1)

// Figure4Port is one port's traffic with its tool decomposition.
type Figure4Port struct {
	Port    uint16
	Packets uint64
	// ToolShare maps per-packet-identifiable tools (ZMap, Masscan, Mirai)
	// plus Unknown to their share of the port's traffic.
	ToolShare map[tools.Tool]float64
}

// Figure4 returns the top-N ports by traffic with per-tool shares.
func Figure4(yd *YearData, topN int) []Figure4Port {
	top := yd.PacketsPerPort.TopK(topN)
	out := make([]Figure4Port, 0, len(top))
	for _, kv := range top {
		fp := Figure4Port{Port: kv.Key, Packets: kv.Count, ToolShare: map[tools.Tool]float64{}}
		for _, tl := range []tools.Tool{tools.ToolZMap, tools.ToolMasscan, tools.ToolMirai, tools.ToolUnknown} {
			n := yd.PacketsPerToolPort.Get(ToolPort{tl, kv.Key})
			if kv.Count > 0 {
				fp.ToolShare[tl] = float64(n) / float64(kv.Count)
			}
		}
		out = append(out, fp)
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 5: scanner types per port (§6.7)

// Figure5Port is one port's qualified-scan decomposition by scanner type.
type Figure5Port struct {
	Port      uint16
	Scans     int
	TypeShare map[inetmodel.ScannerType]float64
}

// Figure5 returns the top-N ports by scans with scanner-type shares.
func Figure5(yd *YearData, topN int) []Figure5Port {
	perPortType := stats.NewCounter[portType]()
	perPort := stats.NewCounter[uint16]()
	for i, sc := range yd.Scans {
		if !sc.Qualified {
			continue
		}
		t := yd.ScanOrigins[i].Type
		if t == inetmodel.TypeReserved {
			t = inetmodel.TypeUnknown
		}
		for _, p := range sc.Ports {
			perPort.Inc(p)
			perPortType.Inc(portType{p, t})
		}
	}
	top := perPort.TopK(topN)
	out := make([]Figure5Port, 0, len(top))
	for _, kv := range top {
		fp := Figure5Port{Port: kv.Key, Scans: int(kv.Count), TypeShare: map[inetmodel.ScannerType]float64{}}
		for _, t := range inetmodel.ScannerTypes {
			fp.TypeShare[t] = float64(perPortType.Get(portType{kv.Key, t})) / float64(kv.Count)
		}
		out = append(out, fp)
	}
	return out
}

type portType struct {
	Port uint16
	Type inetmodel.ScannerType
}

// ---------------------------------------------------------------------------
// Figure 6: scanner recurrence and downtime (§6.6)

// Figure6Result holds recurrence distributions per scanner type.
type Figure6Result struct {
	// ScansPerSource maps type -> sample of per-source campaign counts.
	ScansPerSource map[inetmodel.ScannerType][]float64
	// DowntimeHours maps type -> sample of gaps between consecutive scans
	// of one source, in hours.
	DowntimeHours map[inetmodel.ScannerType][]float64
	// DailyModeShare is, per type, the share of downtimes consistent with
	// a daily rescan cadence (12–30 h idle between multi-hour daily
	// scans) — the institutional "every day" mode.
	DailyModeShare map[inetmodel.ScannerType]float64
}

// Figure6 computes recurrence statistics over one or more collected years.
func Figure6(years []*YearData) *Figure6Result {
	type srcKey struct {
		src uint32
	}
	res := &Figure6Result{
		ScansPerSource: map[inetmodel.ScannerType][]float64{},
		DowntimeHours:  map[inetmodel.ScannerType][]float64{},
		DailyModeShare: map[inetmodel.ScannerType]float64{},
	}
	for _, yd := range years {
		// Per-source qualified scans in time order (Scans close in order).
		perSrc := map[srcKey][]*core.Scan{}
		typeOf := map[srcKey]inetmodel.ScannerType{}
		for i, sc := range yd.Scans {
			if !sc.Qualified {
				continue
			}
			k := srcKey{sc.Src}
			perSrc[k] = append(perSrc[k], sc)
			t := yd.ScanOrigins[i].Type
			if t == inetmodel.TypeReserved {
				t = inetmodel.TypeUnknown
			}
			typeOf[k] = t
		}
		for k, scans := range perSrc {
			t := typeOf[k]
			res.ScansPerSource[t] = append(res.ScansPerSource[t], float64(len(scans)))
			sort.Slice(scans, func(i, j int) bool { return scans[i].Start < scans[j].Start })
			for i := 1; i < len(scans); i++ {
				gap := float64(scans[i].Start-scans[i-1].End) / 3600e9
				if gap > 0 {
					res.DowntimeHours[t] = append(res.DowntimeHours[t], gap)
				}
			}
		}
	}
	for t, gaps := range res.DowntimeHours {
		daily := 0
		for _, g := range gaps {
			if g >= 12 && g <= 30 {
				daily++
			}
		}
		if len(gaps) > 0 {
			res.DailyModeShare[t] = float64(daily) / float64(len(gaps))
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// Figure 7: speed and coverage per scanner type (§6.8)

// Figure7Row is one scanner type's speed/coverage summary.
type Figure7Row struct {
	Type inetmodel.ScannerType
	// MeanSpeedPPS and MedianSpeedPPS summarize per-scan extrapolated
	// Internet-wide rates.
	MeanSpeedPPS, MedianSpeedPPS float64
	// Above1000PPS is the share of scans exceeding 1,000 pps (the paper:
	// 84% of institutional vs 12% of residential scanning).
	Above1000PPS float64
	// MeanCoverage is the average estimated IPv4 coverage fraction.
	MeanCoverage float64
	Scans        int
}

// Figure7 summarizes scan speed and coverage per scanner type.
func Figure7(yd *YearData) []Figure7Row {
	speeds := map[inetmodel.ScannerType][]float64{}
	covs := map[inetmodel.ScannerType][]float64{}
	for i, sc := range yd.Scans {
		if !sc.Qualified {
			continue
		}
		t := yd.ScanOrigins[i].Type
		if t == inetmodel.TypeReserved {
			t = inetmodel.TypeUnknown
		}
		speeds[t] = append(speeds[t], sc.RatePPS)
		covs[t] = append(covs[t], sc.Coverage)
	}
	var rows []Figure7Row
	for _, t := range inetmodel.ScannerTypes {
		ss := speeds[t]
		if len(ss) == 0 {
			continue
		}
		rows = append(rows, Figure7Row{
			Type:           t,
			MeanSpeedPPS:   stats.Mean(ss),
			MedianSpeedPPS: stats.Median(ss),
			Above1000PPS:   shareAtLeast(ss, 1000),
			MeanCoverage:   stats.Mean(covs[t]),
			Scans:          len(ss),
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Figures 8, 9, 10: institutional port coverage (§6.8, Appendix A)

// Figure8Row is one organization's observed port coverage in a year.
type Figure8Row struct {
	Org          string
	Kind         inetmodel.OrgKind
	PortsCovered int
	FullRange    bool
	Packets      uint64
	// Density holds the covered fraction of each 1024-port bucket — the
	// data behind the appendix port-map figures.
	Density [64]float64
}

// Figure8 measures per-organization port coverage from the raw capture.
// It runs the scenario itself because the per-org port bitmaps are too
// large to retain in YearData for every analysis. Port-coverage accounting
// intentionally bypasses the ingress port policy: the question is what the
// org scans, not what the telescope keeps.
func Figure8(s *workload.Scenario) []Figure8Row {
	reg := s.Registry
	orgs := reg.Orgs()
	sets := make([]inetmodel.PortSet, len(orgs))
	packets := make([]uint64, len(orgs))
	s.Run(func(p *packet.Probe) {
		e := reg.Lookup(p.Src)
		if e.OrgID < 0 {
			return
		}
		sets[e.OrgID].Add(p.DstPort)
		packets[e.OrgID]++
	})
	var rows []Figure8Row
	for i, org := range orgs {
		if packets[i] == 0 {
			continue
		}
		row := Figure8Row{
			Org:          org.Name,
			Kind:         org.Kind,
			PortsCovered: sets[i].Len(),
			FullRange:    sets[i].Len() >= 65000,
			Packets:      packets[i],
		}
		for _, port := range sets[i].Ports() {
			row.Density[port>>10] += 1.0 / 1024
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].PortsCovered != rows[j].PortsCovered {
			return rows[i].PortsCovered > rows[j].PortsCovered
		}
		return rows[i].Org < rows[j].Org
	})
	return rows
}

// Figure910 produces the appendix comparison: per-org coverage in 2023 vs
// 2024, keyed by organization name.
type Figure910Row struct {
	Org                  string
	Ports2023, Ports2024 int
}

// Figure910 builds both years' scenarios with the same seed/registry and
// joins their coverage maps.
func Figure910(seed uint64, scale float64, telescopeSize int, reg *inetmodel.Registry) ([]Figure910Row, error) {
	cover := func(year int) (map[string]int, error) {
		s, err := workload.NewScenario(workload.Config{
			Year: year, Seed: seed, Scale: scale,
			TelescopeSize: telescopeSize, Registry: reg,
		})
		if err != nil {
			return nil, err
		}
		m := map[string]int{}
		for _, row := range Figure8(s) {
			m[row.Org] = row.PortsCovered
		}
		return m, nil
	}
	c23, err := cover(2023)
	if err != nil {
		return nil, err
	}
	c24, err := cover(2024)
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	for n := range c23 {
		names[n] = true
	}
	for n := range c24 {
		names[n] = true
	}
	var rows []Figure910Row
	for n := range names {
		rows = append(rows, Figure910Row{Org: n, Ports2023: c23[n], Ports2024: c24[n]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Ports2024 > rows[j].Ports2024 })
	return rows, nil
}
