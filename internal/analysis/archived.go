package analysis

import (
	"fmt"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/workload"
)

// ArchiveYear appends one collected year's campaigns, with their enrichment
// origins, to an archive writer (which must have been created with
// WriterConfig.Origins). Scans are written in the YearData's order, so an
// archive-backed CollectArchive reproduces the in-memory Scans slice
// exactly.
func ArchiveYear(w *archive.Writer, yd *YearData) error {
	for i, sc := range yd.Scans {
		if err := w.AddWithOrigin(sc, yd.ScanOrigins[i]); err != nil {
			return fmt.Errorf("archiving year %d scan %d: %w", yd.Year, i, err)
		}
	}
	return nil
}

// CollectArchive rebuilds a measurement year's scan-level YearData from an
// archive instead of re-simulating: campaign detection ran once at archive
// time, so this is a pure indexed read — zone maps prune the blocks whose
// year range excludes the request, and only surviving blocks are
// decompressed.
//
// The scan-level view is complete: Scans, ScanOrigins (when the archive
// carries origins), WeeklyScans and every method deriving from them
// (QualifiedScans, ScansPerPort, ToolScanShares) are identical to the
// in-memory pipeline's on the same workload. Packet-level aggregates
// (PacketsPerPort, PacketsPerDay, weekly packet/source churn, country
// tallies) require the raw probe stream and stay empty — analyses that
// need them must re-simulate or replay a capture.
func CollectArchive(rd *archive.Reader, year int) (*YearData, error) {
	prof, err := workload.ProfileFor(year)
	if err != nil {
		return nil, err
	}
	yd := &YearData{
		Year:               year,
		Days:               prof.Days,
		TelescopeSize:      rd.TelescopeSize(),
		Start:              workload.WindowStart(year),
		PacketsPerDay:      make([]uint64, prof.Days+1),
		PacketsPerPort:     stats.NewCounter[uint16](),
		SourcesPerPort:     stats.NewCounter[uint16](),
		PortsPerSource:     make(map[uint32]int),
		PacketsPerToolPort: stats.NewCounter[ToolPort](),
		WeeklySources:      stats.NewCounter[BlockWeek](),
		WeeklyPackets:      stats.NewCounter[BlockWeek](),
		WeeklyScans:        stats.NewCounter[BlockWeek](),
		CountryPackets:     stats.NewCounter[PortCountry](),
		InstPacketsPerPort: stats.NewCounter[uint16](),
		Weeks:              prof.Days / 7,
	}
	err = rd.Scans(archive.Filter{Years: []int{year}}, func(sc *core.Scan, o enrich.Origin) {
		yd.Scans = append(yd.Scans, sc)
		yd.ScanOrigins = append(yd.ScanOrigins, o)
	})
	if err != nil {
		return nil, err
	}

	day := int64(24 * 3600 * 1e9)
	for _, sc := range yd.Scans {
		if !sc.Qualified {
			continue
		}
		week := uint8(int((sc.Start - yd.Start) / (7 * day)))
		yd.WeeklyScans.Inc(BlockWeek{inetmodel.Block16(sc.Src), week})
	}
	return yd, nil
}

// CollectArchiveYears loads every year present in the archive's zone maps,
// ascending. Years outside the workload's 2015–2024 calibration are
// skipped (the archive may hold replayed real captures from other periods;
// those are queryable via Reader.Scans but have no YearData profile).
func CollectArchiveYears(rd *archive.Reader) ([]*YearData, error) {
	present := map[int]bool{}
	for _, z := range rd.Blocks() {
		for y := int(z.MinYear); y <= int(z.MaxYear); y++ {
			present[y] = true
		}
	}
	var out []*YearData
	for _, y := range workload.Years() {
		if !present[y] {
			continue
		}
		yd, err := CollectArchive(rd, y)
		if err != nil {
			return nil, err
		}
		if len(yd.Scans) > 0 {
			out = append(out, yd)
		}
	}
	return out, nil
}
