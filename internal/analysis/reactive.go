package analysis

import (
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/query"
	"github.com/synscan/synscan/internal/reactive"
	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/telescope"
	"github.com/synscan/synscan/internal/tools"
	"github.com/synscan/synscan/internal/workload"
)

// ReactiveData is a reactive collection pass: the year's aggregates plus the
// responder's accounting and the generator's two-phase summary.
type ReactiveData struct {
	*YearData
	// Responder is the reactive telescope's counter snapshot.
	Responder reactive.Stats
	// Workload is the generator's summary (two-phase designations, responses
	// seen by the scanners, accepted phase-two segments).
	Workload workload.Summary
}

// CollectReactive is Collect through a reactive telescope: the scenario
// replays with SYN-ACK synthesis per pol, two-phase scanners come back with
// handshakes and payloads, and the detector links both phases into single
// campaigns carrying the reactive attributes (TwoPhase, ISN class, payload).
// Aggregates gate on the responder's effective ingress decision, so drop
// accounting stays truthful and phase-two segments count exactly once.
func CollectReactive(s *workload.Scenario, pol reactive.Policy, cc CollectConfig) *ReactiveData {
	yd := &YearData{
		Year:               s.Profile.Year,
		Days:               s.Profile.Days,
		TelescopeSize:      s.Telescope.Size(),
		Start:              s.Start,
		PacketsPerDay:      make([]uint64, s.Profile.Days+1),
		PacketsPerPort:     stats.NewCounter[uint16](),
		SourcesPerPort:     stats.NewCounter[uint16](),
		PortsPerSource:     make(map[uint32]int),
		PacketsPerToolPort: stats.NewCounter[ToolPort](),
		WeeklySources:      stats.NewCounter[BlockWeek](),
		WeeklyPackets:      stats.NewCounter[BlockWeek](),
		WeeklyScans:        stats.NewCounter[BlockWeek](),
		CountryPackets:     stats.NewCounter[PortCountry](),
		InstPacketsPerPort: stats.NewCounter[uint16](),
		Weeks:              s.Profile.Days / 7,
		reg:                s.Registry,
	}
	reg := cc.Metrics
	en := enrich.New(s.Registry)
	en.SetMetrics(reg)
	s.Telescope.SetMetrics(reg)
	rt := reactive.New(s.Telescope, pol)
	rt.SetMetrics(reg)

	collect := func(sc *core.Scan) {
		yd.Scans = append(yd.Scans, sc)
		yd.ScanOrigins = append(yd.ScanOrigins, en.Origin(sc.Src))
	}
	det := core.NewDetector(s.DetectorConfig, collect,
		core.WithWorkers(cc.Workers), core.WithMetrics(reg))

	srcPort := make(map[uint64]struct{})
	weekSrc := make(map[uint64]struct{})
	day := int64(24 * 3600 * 1e9)

	runSpan := obs.StartSpan(reg.Histogram("collect.run_ns"))
	sum := s.RunReactive(rt, func(p *packet.Probe, d reactive.Disposition) {
		if d.Reason != telescope.Accepted {
			return
		}
		yd.accept(s, p, srcPort, weekSrc)
		det.Ingest(p)
	})
	runSpan.End()

	flushSpan := obs.StartSpan(reg.Histogram("collect.flush_ns"))
	det.FlushAll()
	flushSpan.End()

	yd.DistinctSources = len(yd.PortsPerSource)
	yd.TelescopeStats = s.Telescope.Stats()
	for _, sc := range yd.Scans {
		if !sc.Qualified {
			continue
		}
		week := uint8(int((sc.Start - s.Start) / (7 * day)))
		yd.WeeklyScans.Inc(BlockWeek{inetmodel.Block16(sc.Src), week})
	}
	if reg != nil {
		yd.PipelineStats = reg.Snapshot()
	}
	return &ReactiveData{YearData: yd, Responder: rt.Stats(), Workload: sum}
}

// TwoPhaseRow is one tool's row of the two-phase share table.
type TwoPhaseRow struct {
	Tool             tools.Tool
	Scans            uint64  // qualified campaigns attributed to the tool
	TwoPhase         uint64  // of those, linked two-phase campaigns
	Share            float64 // TwoPhase / Scans
	LinkedDsts       uint64  // linked destinations across the tool's campaigns
	HandshakePackets uint64  // phase-two segments across the tool's campaigns
	PayloadBytes     uint64  // application payload bytes received
}

// TwoPhaseTable reports, per tool, how many qualified campaigns the reactive
// telescope linked into two phases and how much second-phase traffic they
// carried — the Spoki headline measurement ("what share of scanners comes
// back when you answer"). Computed through the query engine over the new
// reactive fields, so the table and POST /v1/query cannot drift.
func (y *YearData) TwoPhaseTable() []TwoPhaseRow {
	rows := y.engineTable(query.NewBuilder().
		Qualified(true).GroupBy(query.FieldTool).Count().
		Sum(query.FieldTwoPhase).Sum(query.FieldLinkedDsts).
		Sum(query.FieldHandshakePackets).Sum(query.FieldPayloadBytes).
		OrderByKey())
	out := make([]TwoPhaseRow, 0, len(rows))
	for _, r := range rows {
		row := TwoPhaseRow{
			Tool:             tools.Tool(r.Key[0].Num),
			Scans:            r.Aggs[0].Count,
			TwoPhase:         r.Aggs[1].Int,
			LinkedDsts:       r.Aggs[2].Int,
			HandshakePackets: r.Aggs[3].Int,
			PayloadBytes:     r.Aggs[4].Int,
		}
		if row.Scans > 0 {
			row.Share = float64(row.TwoPhase) / float64(row.Scans)
		}
		out = append(out, row)
	}
	return out
}
