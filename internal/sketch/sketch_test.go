package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/synscan/synscan/internal/rng"
)

func TestHLLAccuracy(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{100, 1000, 10000, 100000, 1000000} {
		h := NewHyperLogLog()
		seen := make(map[uint64]bool, n)
		for len(seen) < n {
			k := r.Uint64()
			seen[k] = true
			h.Add(k)
		}
		est := float64(h.Estimate())
		rel := math.Abs(est-float64(n)) / float64(n)
		// 2^14 registers: standard error 0.81%; allow 4 sigma.
		if rel > 0.04 {
			t.Fatalf("n=%d: estimate %v off by %.2f%%", n, est, rel*100)
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h := NewHyperLogLog()
	for i := 0; i < 100000; i++ {
		h.AddUint32(uint32(i % 50))
	}
	est := h.Estimate()
	if est < 45 || est > 55 {
		t.Fatalf("estimate %d, want ~50", est)
	}
}

func TestHLLEmpty(t *testing.T) {
	if got := NewHyperLogLog().Estimate(); got != 0 {
		t.Fatalf("empty estimate = %d", got)
	}
}

func TestHLLMerge(t *testing.T) {
	a, b := NewHyperLogLog(), NewHyperLogLog()
	for i := uint64(0); i < 50000; i++ {
		a.Add(i)
	}
	for i := uint64(25000); i < 75000; i++ {
		b.Add(i)
	}
	a.Merge(b)
	est := float64(a.Estimate())
	if math.Abs(est-75000)/75000 > 0.04 {
		t.Fatalf("merged estimate %v, want ~75000", est)
	}
}

func TestHLLDeterministic(t *testing.T) {
	f := func(keys []uint64) bool {
		a, b := NewHyperLogLog(), NewHyperLogLog()
		for _, k := range keys {
			a.Add(k)
			b.Add(k)
		}
		return a.Estimate() == b.Estimate()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopKExactWhenUnderCapacity(t *testing.T) {
	tk := NewTopK(16)
	for i := 0; i < 10; i++ {
		for j := 0; j <= i; j++ {
			tk.Add(uint64(i))
		}
	}
	top := tk.Top(3)
	if len(top) != 3 || top[0].Key != 9 || top[0].Count != 10 || top[0].Err != 0 {
		t.Fatalf("top = %+v", top)
	}
	if top[1].Key != 8 || top[2].Key != 7 {
		t.Fatalf("ordering: %+v", top)
	}
	if tk.Total() != 55 {
		t.Fatalf("total = %d", tk.Total())
	}
}

func TestTopKHeavyHitterGuarantee(t *testing.T) {
	// Space-Saving guarantees: any key with true frequency > N/k is
	// tracked. Stream: 4 heavy keys at ~20% each, plus uniform noise.
	r := rng.New(2)
	tk := NewTopK(64)
	trueCounts := map[uint64]uint64{}
	const n = 200000
	for i := 0; i < n; i++ {
		var key uint64
		if r.Bool(0.8) {
			key = uint64(r.Intn(4)) // heavy
		} else {
			key = 1000 + r.Uint64()%100000 // noise
		}
		tk.Add(key)
		trueCounts[key]++
	}
	top := tk.Top(4)
	seen := map[uint64]bool{}
	for _, it := range top {
		seen[it.Key] = true
		// Count is an upper bound; Count-Err a lower bound.
		if it.Count < trueCounts[it.Key] {
			t.Fatalf("key %d: estimate %d below true %d", it.Key, it.Count, trueCounts[it.Key])
		}
		if it.Count-it.Err > trueCounts[it.Key] {
			t.Fatalf("key %d: lower bound %d above true %d", it.Key, it.Count-it.Err, trueCounts[it.Key])
		}
	}
	for k := uint64(0); k < 4; k++ {
		if !seen[k] {
			t.Fatalf("heavy hitter %d lost (top: %+v)", k, top)
		}
	}
}

func TestTopKCapacityClamp(t *testing.T) {
	tk := NewTopK(0)
	tk.Add(1)
	tk.Add(2)
	if got := tk.Top(10); len(got) != 1 {
		t.Fatalf("capacity clamp: %+v", got)
	}
}

func TestTopKTopBounds(t *testing.T) {
	tk := NewTopK(4)
	tk.Add(7)
	if got := tk.Top(100); len(got) != 1 || got[0].Key != 7 {
		t.Fatalf("Top beyond size: %+v", got)
	}
	if got := tk.Top(0); len(got) != 0 {
		t.Fatalf("Top(0): %+v", got)
	}
}

func TestTopKMergeExactWhenUnsaturated(t *testing.T) {
	// Neither side ever evicts, so merging disjoint substreams must equal
	// feeding one tracker sequentially — the invariant the query engine's
	// per-segment partial aggregation relies on.
	r := rng.New(3)
	const n = 20000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.Uint64() % 500 // 500 distinct keys << capacity 4096
	}
	seq := NewTopK(4096)
	parts := make([]*TopK, 4)
	for i := range parts {
		parts[i] = NewTopK(4096)
	}
	for i, k := range keys {
		seq.Add(k)
		parts[i%len(parts)].Add(k)
	}
	merged := parts[0]
	for _, p := range parts[1:] {
		merged.Merge(p)
	}
	if merged.Total() != seq.Total() {
		t.Fatalf("total: merged %d, sequential %d", merged.Total(), seq.Total())
	}
	mt, st := merged.Top(500), seq.Top(500)
	if len(mt) != len(st) {
		t.Fatalf("sizes: merged %d, sequential %d", len(mt), len(st))
	}
	for i := range mt {
		if mt[i] != st[i] {
			t.Fatalf("item %d: merged %+v, sequential %+v", i, mt[i], st[i])
		}
	}
}

func TestTopKMergeBoundsWhenSaturated(t *testing.T) {
	// With eviction on both sides, merged counts must remain upper bounds
	// and Count-Err lower bounds of true frequencies, and true heavy
	// hitters must survive the merge.
	r := rng.New(4)
	trueCounts := map[uint64]uint64{}
	parts := []*TopK{NewTopK(64), NewTopK(64)}
	const n = 100000
	for i := 0; i < n; i++ {
		var key uint64
		if r.Bool(0.7) {
			key = uint64(r.Intn(4)) // heavy, ~17.5% each
		} else {
			key = 1000 + r.Uint64()%50000 // noise
		}
		parts[i%2].Add(key)
		trueCounts[key]++
	}
	m := parts[0]
	m.Merge(parts[1])
	if m.Total() != n {
		t.Fatalf("total = %d, want %d", m.Total(), n)
	}
	if got := len(m.Top(1000)); got > 64 {
		t.Fatalf("merge exceeded capacity: %d items", got)
	}
	seen := map[uint64]bool{}
	for _, it := range m.Top(64) {
		seen[it.Key] = true
		if it.Count < trueCounts[it.Key] {
			t.Fatalf("key %d: estimate %d below true %d", it.Key, it.Count, trueCounts[it.Key])
		}
		if it.Count-it.Err > trueCounts[it.Key] {
			t.Fatalf("key %d: lower bound %d above true %d", it.Key, it.Count-it.Err, trueCounts[it.Key])
		}
	}
	for k := uint64(0); k < 4; k++ {
		if !seen[k] {
			t.Fatalf("heavy hitter %d lost in merge", k)
		}
	}
}

func TestTopKMergeEmptyAndNil(t *testing.T) {
	tk := NewTopK(4)
	tk.Add(1)
	tk.Merge(nil)
	tk.Merge(NewTopK(4))
	if tk.Total() != 1 || len(tk.Top(4)) != 1 {
		t.Fatalf("merge with empty changed state: total=%d", tk.Total())
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h := NewHyperLogLog()
	for i := 0; i < b.N; i++ {
		h.Add(uint64(i))
	}
}

func BenchmarkTopKAdd(b *testing.B) {
	tk := NewTopK(1024)
	r := rng.New(1)
	keys := make([]uint64, 65536)
	for i := range keys {
		keys[i] = r.Uint64() % 5000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Add(keys[i&65535])
	}
}
