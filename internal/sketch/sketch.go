// Package sketch provides memory-bounded streaming summaries for telescope-
// scale analysis: a HyperLogLog cardinality estimator and a Space-Saving
// top-k heavy-hitter tracker.
//
// The paper's dataset is 45 billion packets from 45 million sources; exact
// per-port source sets at that scale do not fit in memory. The simulator's
// exact counters (internal/stats) remain the default — the analyses are
// validated against them — but SketchedSummary in internal/analysis shows
// the same tables computed in O(KB) of state, and the ablation benchmarks
// quantify the trade.
package sketch

import "math"

// hll precision: 2^14 registers = 16 KiB, standard error ~0.81%.
const (
	hllP = 14
	hllM = 1 << hllP
)

// HyperLogLog estimates the number of distinct uint64 values added.
// The zero value is NOT ready; use NewHyperLogLog.
type HyperLogLog struct {
	reg [hllM]uint8
}

// NewHyperLogLog returns an empty estimator.
func NewHyperLogLog() *HyperLogLog { return &HyperLogLog{} }

// mix64 scrambles raw keys; HLL needs uniformly distributed hashes.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// Add inserts a key.
func (h *HyperLogLog) Add(key uint64) {
	x := mix64(key)
	idx := x >> (64 - hllP)
	rest := x<<hllP | 1<<(hllP-1) // ensure termination
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > h.reg[idx] {
		h.reg[idx] = rank
	}
}

// AddUint32 inserts a 32-bit key (e.g. a source address).
func (h *HyperLogLog) AddUint32(key uint32) { h.Add(uint64(key)) }

// Estimate returns the approximate cardinality.
func (h *HyperLogLog) Estimate() uint64 {
	// alpha for m >= 128.
	alpha := 0.7213 / (1 + 1.079/float64(hllM))
	var sum float64
	zeros := 0
	for _, r := range h.reg {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := alpha * hllM * hllM / sum
	// Small-range correction: linear counting.
	if est <= 2.5*hllM && zeros > 0 {
		est = hllM * math.Log(float64(hllM)/float64(zeros))
	}
	return uint64(est + 0.5)
}

// Merge folds another estimator into h (union semantics).
func (h *HyperLogLog) Merge(other *HyperLogLog) {
	for i := range h.reg {
		if other.reg[i] > h.reg[i] {
			h.reg[i] = other.reg[i]
		}
	}
}

// TopK tracks approximate heavy hitters with the Space-Saving algorithm:
// at most K counters; when a new key arrives at capacity, the minimum
// counter is reassigned to it and its old count becomes the new key's error
// bound. Every true heavy hitter with frequency > N/K is guaranteed to be
// tracked.
type TopK struct {
	k      int
	counts map[uint64]*tkEntry
	total  uint64
}

type tkEntry struct {
	key   uint64
	count uint64
	err   uint64
}

// NewTopK creates a tracker with capacity k (clamped to >= 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, counts: make(map[uint64]*tkEntry, k)}
}

// Add records one occurrence of key.
func (t *TopK) Add(key uint64) {
	t.total++
	if e, ok := t.counts[key]; ok {
		e.count++
		return
	}
	if len(t.counts) < t.k {
		t.counts[key] = &tkEntry{key: key, count: 1}
		return
	}
	// Evict the minimum counter.
	var min *tkEntry
	for _, e := range t.counts {
		if min == nil || e.count < min.count ||
			(e.count == min.count && e.key < min.key) {
			min = e
		}
	}
	delete(t.counts, min.key)
	t.counts[key] = &tkEntry{key: key, count: min.count + 1, err: min.count}
}

// Merge folds another tracker into t, combining partial summaries computed
// over disjoint substreams (e.g. one per archive segment). Counts for keys
// both sides track add exactly; a key only one side tracks is charged the
// other side's eviction floor (its minimum count when at capacity, zero
// below it), which keeps Count an upper bound and Err a valid overestimate
// bound. When neither side has ever evicted, the merge is exact — identical
// to having fed one tracker sequentially. Capacities must match.
func (t *TopK) Merge(o *TopK) {
	if o == nil || o.total == 0 {
		return
	}
	t.total += o.total
	tFloor := t.evictFloor()
	oFloor := o.evictFloor()
	merged := make(map[uint64]*tkEntry, len(t.counts)+len(o.counts))
	for k, e := range t.counts {
		m := &tkEntry{key: k, count: e.count, err: e.err}
		if oe, ok := o.counts[k]; ok {
			m.count += oe.count
			m.err += oe.err
		} else {
			m.count += oFloor
			m.err += oFloor
		}
		merged[k] = m
	}
	for k, oe := range o.counts {
		if _, ok := merged[k]; ok {
			continue
		}
		merged[k] = &tkEntry{key: k, count: oe.count + tFloor, err: oe.err + tFloor}
	}
	if len(merged) > t.k {
		// Keep the k largest (ties broken by key ascending, matching Top).
		items := make([]Item, 0, len(merged))
		for _, e := range merged {
			items = append(items, Item{e.key, e.count, e.err})
		}
		sortItems(items)
		for _, it := range items[t.k:] {
			delete(merged, it.Key)
		}
	}
	t.counts = merged
}

// evictFloor is the count any untracked key could have accumulated: the
// minimum tracked count once the tracker has reached capacity, zero before.
func (t *TopK) evictFloor() uint64 {
	if len(t.counts) < t.k {
		return 0
	}
	var min uint64 = math.MaxUint64
	for _, e := range t.counts {
		if e.count < min {
			min = e.count
		}
	}
	return min
}

// Item is one tracked heavy hitter.
type Item struct {
	Key uint64
	// Count is the estimated frequency (an upper bound).
	Count uint64
	// Err bounds the overestimate: true count >= Count - Err.
	Err uint64
}

// Top returns up to n tracked items, by estimated count descending
// (ties broken by key for determinism).
func (t *TopK) Top(n int) []Item {
	items := make([]Item, 0, len(t.counts))
	for _, e := range t.counts {
		items = append(items, Item{e.key, e.count, e.err})
	}
	sortItems(items)
	if n > len(items) {
		n = len(items)
	}
	return items[:n]
}

// Total returns the number of Add calls.
func (t *TopK) Total() uint64 { return t.total }

func sortItems(items []Item) {
	// Insertion-friendly sizes; simple sort keeps the package stdlib-lean.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0; j-- {
			a, b := items[j-1], items[j]
			if a.Count > b.Count || (a.Count == b.Count && a.Key <= b.Key) {
				break
			}
			items[j-1], items[j] = b, a
		}
	}
}
