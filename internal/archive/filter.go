package archive

import (
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/tools"
)

// Predicate is the reader's pushdown contract: anything that can (a) prove
// from a zone map alone that no scan in a block matches, and (b) decide a
// decoded scan. Reader.Query evaluates MatchBlock once per block — false
// skips the block without decompressing it — and Match once per decoded
// record. MatchBlock must be conservative: it may return true for a block
// with no matching scans (the decode filters them), but must never return
// false for a block containing one. Match receives the record's origin when
// the archive carries origins (see Reader.HasOrigins), nil otherwise.
//
// Filter is the fixed-form conjunction implementation; internal/query
// compiles arbitrary filter ASTs into Predicates.
type Predicate interface {
	MatchBlock(z *ZoneMap) bool
	Match(sc *core.Scan, o *enrich.Origin) bool
}

// Filter is a conjunction of predicates over archived scans. The zero value
// matches everything. Each populated field both narrows the per-scan match
// and, where the zone maps carry enough information, lets the reader skip
// whole blocks without decompressing them (MatchBlock).
type Filter struct {
	// Years restricts to scans whose start time falls in one of the given
	// UTC calendar years. Empty means all years.
	Years []int
	// Tools restricts to the given tool attributions. Empty means all.
	Tools []tools.Tool
	// Ports restricts to scans targeting at least one of the given ports.
	// Empty means all.
	Ports []uint16
	// SrcPrefix, when non-nil, restricts to sources inside the prefix.
	SrcPrefix *inetmodel.Prefix
	// MinRate and MaxRate bound the extrapolated rate (pps). Zero means
	// unbounded on that side.
	MinRate, MaxRate float64
	// QualifiedOnly drops sub-threshold flows.
	QualifiedOnly bool
}

// Match implements Predicate; a Filter never inspects origins.
func (f *Filter) Match(sc *core.Scan, _ *enrich.Origin) bool { return f.MatchScan(sc) }

// MatchScan reports whether one decoded scan satisfies every predicate.
func (f *Filter) MatchScan(sc *core.Scan) bool {
	if f.QualifiedOnly && !sc.Qualified {
		return false
	}
	if f.MinRate > 0 && sc.RatePPS < f.MinRate {
		return false
	}
	if f.MaxRate > 0 && sc.RatePPS > f.MaxRate {
		return false
	}
	if f.SrcPrefix != nil && !f.SrcPrefix.Contains(sc.Src) {
		return false
	}
	if len(f.Years) > 0 {
		y := yearOf(sc.Start)
		ok := false
		for _, want := range f.Years {
			if y == want {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Tools) > 0 {
		ok := false
		for _, t := range f.Tools {
			if sc.Tool == t {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Ports) > 0 {
		ok := false
		for _, want := range f.Ports {
			if scanHasPort(sc, want) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// scanHasPort binary-searches the scan's ascending port list.
func scanHasPort(sc *core.Scan, p uint16) bool {
	lo, hi := 0, len(sc.Ports)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case sc.Ports[mid] == p:
			return true
		case sc.Ports[mid] < p:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// MatchBlock reports whether the block behind z could contain a matching
// scan. False proves no scan in the block matches; true only means the
// block must be decoded (zone maps and the port fingerprint are
// conservative).
func (f *Filter) MatchBlock(z *ZoneMap) bool {
	if f.QualifiedOnly && z.Qualified == 0 {
		return false
	}
	if len(f.Years) > 0 {
		ok := false
		for _, y := range f.Years {
			if y >= int(z.MinYear) && y <= int(z.MaxYear) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(f.Tools) > 0 {
		var want uint16
		for _, t := range f.Tools {
			want |= 1 << uint(t)
		}
		if z.ToolBits&want == 0 {
			return false
		}
	}
	if len(f.Ports) > 0 {
		ok := false
		for _, p := range f.Ports {
			if z.PortsFP&portBit(p) != 0 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if f.SrcPrefix != nil {
		if f.SrcPrefix.Last() < z.MinSrc || f.SrcPrefix.First() > z.MaxSrc {
			return false
		}
	}
	return true
}
