package archive

import (
	"bytes"
	"testing"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
)

// FuzzReader hardens the whole read path — header, trailer, index, block
// decompression and record decode: arbitrary bytes must never panic or
// allocate absurdly, and a valid archive must keep round-tripping.
func FuzzReader(f *testing.F) {
	scans, origins := testScans(64, 7)
	valid := writeArchive(f, scans, origins, WriterConfig{
		TelescopeSize: 4096, Origins: true, BlockBytes: 1 << 10,
	})
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:headerLen])
	f.Add(valid[:len(valid)-3])
	corrupt := append([]byte{}, valid...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)
	noOrigins := writeArchive(f, scans, nil, WriterConfig{BlockBytes: 1 << 10})
	f.Add(noOrigins)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		n := 0
		_ = r.Scans(Filter{}, func(sc *core.Scan, _ enrich.Origin) {
			n++
			if n > 1<<20 {
				t.Fatal("unbounded emit")
			}
			_ = sc.Duration()
		})
	})
}
