package archive

import (
	"bytes"
	"io"
	"testing"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/faultinject"
)

// FuzzReader hardens the whole read path — header, trailer, index, block
// decompression and record decode: arbitrary bytes must never panic or
// allocate absurdly, and a valid archive must keep round-tripping.
func FuzzReader(f *testing.F) {
	scans, origins := testScans(64, 7)
	valid := writeArchive(f, scans, origins, WriterConfig{
		TelescopeSize: 4096, Origins: true, BlockBytes: 1 << 10,
	})
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:headerLen])
	f.Add(valid[:len(valid)-3])
	corrupt := append([]byte{}, valid...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)
	noOrigins := writeArchive(f, scans, nil, WriterConfig{BlockBytes: 1 << 10})
	f.Add(noOrigins)
	// Seeded fault-injection corpora: scattered byte flips across the whole
	// file, and a stream passed through the corrupting reader wrapper — the
	// damage patterns real storage produces, at several densities.
	for seed := uint64(1); seed <= 3; seed++ {
		flipped := append([]byte{}, valid...)
		faultinject.FlipBytes(flipped, seed, 8*int(seed), 0, 0)
		f.Add(flipped)
		noisy, err := io.ReadAll(faultinject.NewReader(bytes.NewReader(valid), faultinject.ReaderConfig{
			Seed: seed, CorruptRate: 0.002 * float64(seed),
		}))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(noisy)
		truncated, err := io.ReadAll(faultinject.NewReader(bytes.NewReader(valid), faultinject.ReaderConfig{
			Seed: seed, TruncateAt: int64(len(valid)) / (1 + int64(seed)),
		}))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(truncated)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, opts := range [][]ReaderOption{nil, {WithSkipCorrupt()}} {
			r, err := NewReader(bytes.NewReader(data), int64(len(data)), opts...)
			if err != nil {
				continue
			}
			n := 0
			_ = r.Scans(Filter{}, func(sc *core.Scan, _ enrich.Origin) {
				n++
				if n > 1<<20 {
					t.Fatal("unbounded emit")
				}
				_ = sc.Duration()
			})
		}
	})
}
