package archive

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/obs"
)

// WriterConfig parameterizes NewWriter. The zero value is a valid
// origin-less archive with the default block bound.
type WriterConfig struct {
	// TelescopeSize is recorded in the header so readers can extrapolate
	// without out-of-band knowledge (mirrors the flowlog spool header).
	TelescopeSize int
	// Origins records each scan's enrichment Origin alongside it. Use on
	// the simulation path (which owns the registry); the replay path has no
	// origins to store.
	Origins bool
	// BlockBytes bounds a block's uncompressed payload (default
	// DefaultBlockBytes). Smaller blocks sharpen zone-map pruning, larger
	// ones compress better.
	BlockBytes int
	// Metrics, when non-nil, counts blocks/bytes/scans written and times
	// block compression.
	Metrics *obs.Registry
}

// Writer spools scans into an archive. It works on any io.Writer — blocks
// are appended and the index is written at Close, so no seeking is needed.
// Not safe for concurrent use; both detector variants emit scans from a
// single goroutine.
type Writer struct {
	w        *bufio.Writer
	cfg      WriterConfig
	off      uint64 // bytes written so far (= next block offset)
	buf      []byte // current block's uncompressed payload
	zone     ZoneMap
	years    yearCache
	prev     int64 // previous record's start time within the block
	index    []ZoneMap
	scratch  bytes.Buffer
	fw       *flate.Writer
	closer   io.Closer // set by Create; closed by Close
	closed   bool
	closeErr error // Close's result, replayed by every later Close
	err      error

	nScans             uint64
	minStart, maxStart int64

	mScans, mBlocks, mRaw, mCompressed *obs.Counter
	mCompressNS                        *obs.Histogram
}

// NewWriter writes the header and returns an archive writer.
func NewWriter(w io.Writer, cfg WriterConfig) (*Writer, error) {
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = DefaultBlockBytes
	}
	hdr, err := header(cfg.TelescopeSize, cfg.Origins)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	fw, err := flate.NewWriter(io.Discard, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	aw := &Writer{
		w:   bw,
		cfg: cfg,
		off: headerLen,
		buf: make([]byte, 0, cfg.BlockBytes+4096),
		fw:  fw,

		mScans:      cfg.Metrics.Counter("archive.scans.written"),
		mBlocks:     cfg.Metrics.Counter("archive.blocks.written"),
		mRaw:        cfg.Metrics.Counter("archive.bytes.raw"),
		mCompressed: cfg.Metrics.Counter("archive.bytes.compressed"),
		mCompressNS: cfg.Metrics.Histogram("archive.compress_ns"),
	}
	aw.zone.reset()
	return aw, nil
}

// Create opens path for writing and returns an archive writer over it.
// Close closes the file.
func Create(path string, cfg WriterConfig) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := NewWriter(f, cfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	w.closer = f
	return w, nil
}

// Add appends one scan. With WriterConfig.Origins the scan's origin must be
// supplied via AddWithOrigin instead.
func (w *Writer) Add(sc *core.Scan) error {
	if w.cfg.Origins {
		return fmt.Errorf("archive: Add on an origins archive (use AddWithOrigin)")
	}
	return w.add(sc, nil)
}

// AddWithOrigin appends one scan with its enrichment origin. Valid only on
// an archive created with WriterConfig.Origins.
func (w *Writer) AddWithOrigin(sc *core.Scan, o enrich.Origin) error {
	if !w.cfg.Origins {
		return ErrNoOrigins
	}
	return w.add(sc, &o)
}

func (w *Writer) add(sc *core.Scan, o *enrich.Origin) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("archive: Add after Close")
	}
	w.buf = appendRecord(w.buf, sc, o, w.prev)
	w.prev = sc.Start
	w.zone.observe(sc, w.years.year(sc.Start))
	if w.nScans == 0 || sc.Start < w.minStart {
		w.minStart = sc.Start
	}
	if w.nScans == 0 || sc.Start > w.maxStart {
		w.maxStart = sc.Start
	}
	w.nScans++
	w.mScans.Inc()
	if len(w.buf) >= w.cfg.BlockBytes {
		return w.flushBlock()
	}
	return nil
}

// flushBlock compresses and writes the current block and opens a new one.
func (w *Writer) flushBlock() error {
	if w.zone.Scans == 0 {
		return nil
	}
	sp := obs.StartSpan(w.mCompressNS)
	w.scratch.Reset()
	w.fw.Reset(&w.scratch)
	if _, err := w.fw.Write(w.buf); err != nil {
		w.err = err
		return err
	}
	if err := w.fw.Close(); err != nil {
		w.err = err
		return err
	}
	sp.End()

	// The zone map's Offset points at the block's CRC word; CompressedLen
	// covers the DEFLATE stream only.
	w.zone.Offset = w.off
	w.zone.CompressedLen = uint32(w.scratch.Len())
	w.zone.RawLen = uint32(len(w.buf))
	var crc [blockCRCLen]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.scratch.Bytes()))
	if _, err := w.w.Write(crc[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(w.scratch.Bytes()); err != nil {
		w.err = err
		return err
	}
	w.off += blockCRCLen + uint64(w.scratch.Len())
	w.index = append(w.index, w.zone)

	w.mBlocks.Inc()
	w.mRaw.Add(uint64(len(w.buf)))
	w.mCompressed.Add(uint64(w.scratch.Len()))

	w.buf = w.buf[:0]
	w.prev = 0
	w.zone.reset()
	return nil
}

// NumScans returns the number of scans added so far.
func (w *Writer) NumScans() uint64 { return w.nScans }

// Offset returns the bytes emitted so far (header plus flushed blocks); the
// open block's buffered records are not included. Segment rotation uses it
// as the on-disk size signal.
func (w *Writer) Offset() uint64 { return w.off }

// StartBounds returns the min and max start times (ns) over every scan added
// so far, or (0, 0) when none were.
func (w *Writer) StartBounds() (min, max int64) {
	if w.nScans == 0 {
		return 0, 0
	}
	return w.minStart, w.maxStart
}

// Close flushes the open block, writes the index and trailer, and closes
// the underlying file when the writer was opened with Create. Close is
// idempotent: the first call decides the outcome and every later call
// returns that same result without touching the stream again (a second
// trailer on the file would corrupt it for readers).
func (w *Writer) Close() error {
	if w.closed {
		return w.closeErr
	}
	w.closed = true
	w.closeErr = w.close()
	return w.closeErr
}

// close runs the single real close. Whatever happens, the underlying file
// (when the writer owns one) is released exactly once.
func (w *Writer) close() error {
	if err := w.finish(); err != nil {
		if w.closer != nil {
			w.closer.Close()
		}
		return err
	}
	if w.closer != nil {
		return w.closer.Close()
	}
	return nil
}

// finish writes the remaining block, index and trailer onto the stream.
func (w *Writer) finish() error {
	if w.err != nil {
		return w.err
	}
	if err := w.flushBlock(); err != nil {
		return err
	}

	idx := make([]byte, 0, 4+len(w.index)*zoneMapLen)
	idx = binary.BigEndian.AppendUint32(idx, uint32(len(w.index)))
	for i := range w.index {
		idx = w.index[i].marshal(idx)
	}
	var tr [trailerLen]byte
	binary.BigEndian.PutUint64(tr[0:8], w.off)
	binary.BigEndian.PutUint32(tr[8:12], uint32(len(idx)))
	binary.BigEndian.PutUint32(tr[12:16], crc32.ChecksumIEEE(idx))
	copy(tr[16:20], TrailerMagic[:])

	if _, err := w.w.Write(idx); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(tr[:]); err != nil {
		w.err = err
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}
