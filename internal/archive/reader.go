package archive

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/inflate"
	"github.com/synscan/synscan/internal/obs"
)

// Reader queries an archive file. It parses the footer index once at open;
// Scans then decompresses only the blocks a Filter cannot prune, on a
// worker pool, and streams decoded scans to the caller in file order.
// A Reader is safe for concurrent Scans calls (each call owns its pool).
type Reader struct {
	ra          io.ReaderAt
	size        int64
	ver         uint8
	telSize     int
	origins     bool
	phases      bool
	skipCorrupt bool
	index       []ZoneMap
	total       uint64
	workers     int
	closer      io.Closer
	corrupt     atomic.Uint64

	met         *obs.Registry
	mScanned    *obs.Counter
	mSkipped    *obs.Counter
	mBytes      *obs.Counter
	mDecoded    *obs.Counter
	mMatched    *obs.Counter
	mCorrupt    *obs.Counter
	mDecompress *obs.Histogram
}

// ReaderOption customizes Open and NewReader.
type ReaderOption func(*Reader)

// WithSkipCorrupt puts the reader in degraded mode: a block that fails its
// checksum (or any other block-local read/decode check) is skipped instead
// of failing the whole query. Skipped blocks are counted in CorruptBlocks
// and the faults.archive.corrupt_blocks metric; every intact block still
// streams, in order. The default (without this option) is fail-fast: any
// damaged block aborts Scans with an error.
func WithSkipCorrupt() ReaderOption {
	return func(r *Reader) { r.skipCorrupt = true }
}

// Open opens an archive file for querying; Close releases it.
func Open(path string, opts ...ReaderOption) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, st.Size(), opts...)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReader opens an archive over any random-access byte source.
func NewReader(ra io.ReaderAt, size int64, opts ...ReaderOption) (*Reader, error) {
	if size < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: file too short (%d bytes)", ErrCorrupt, size)
	}
	var hdr [headerLen]byte
	if _, err := ra.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	if [4]byte(hdr[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if hdr[4] < version1 || hdr[4] > version {
		return nil, ErrBadVersion
	}

	var tr [trailerLen]byte
	if _, err := ra.ReadAt(tr[:], size-trailerLen); err != nil {
		return nil, err
	}
	if [4]byte(tr[16:20]) != TrailerMagic {
		return nil, fmt.Errorf("%w: bad trailer magic", ErrCorrupt)
	}
	idxOff := binary.BigEndian.Uint64(tr[0:8])
	idxLen := binary.BigEndian.Uint32(tr[8:12])
	wantCRC := binary.BigEndian.Uint32(tr[12:16])
	if idxOff < headerLen || int64(idxOff)+int64(idxLen) != size-trailerLen {
		return nil, fmt.Errorf("%w: index bounds", ErrCorrupt)
	}
	idx := make([]byte, idxLen)
	if _, err := ra.ReadAt(idx, int64(idxOff)); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(idx) != wantCRC {
		return nil, fmt.Errorf("%w: index checksum mismatch", ErrCorrupt)
	}
	if len(idx) < 4 {
		return nil, fmt.Errorf("%w: index too short", ErrCorrupt)
	}
	n := binary.BigEndian.Uint32(idx[:4])
	if uint64(n)*zoneMapLen != uint64(len(idx)-4) {
		return nil, fmt.Errorf("%w: index entry count", ErrCorrupt)
	}

	r := &Reader{
		ra:      ra,
		size:    size,
		ver:     hdr[4],
		telSize: int(binary.BigEndian.Uint32(hdr[6:10])),
		origins: hdr[5]&flagOrigins != 0,
		phases:  hdr[5]&flagPhases != 0,
		index:   make([]ZoneMap, n),
		workers: runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		opt(r)
	}
	for i := range r.index {
		z := unmarshalZoneMap(idx[4+i*zoneMapLen:])
		end := uint64(z.Offset) + uint64(z.CompressedLen)
		if r.ver >= version2 {
			end += blockCRCLen
		}
		if end > idxOff {
			return nil, fmt.Errorf("%w: block %d out of bounds", ErrCorrupt, i)
		}
		r.index[i] = z
		r.total += uint64(z.Scans)
	}
	r.SetMetrics(nil)
	return r, nil
}

// Close releases the underlying file when the reader came from Open.
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// TelescopeSize returns the monitored-address count recorded at write time.
func (r *Reader) TelescopeSize() int { return r.telSize }

// HasOrigins reports whether scans carry their enrichment Origin.
func (r *Reader) HasOrigins() bool { return r.origins }

// NumBlocks returns the block count.
func (r *Reader) NumBlocks() int { return len(r.index) }

// NumScans returns the total archived scan count.
func (r *Reader) NumScans() uint64 { return r.total }

// Blocks returns a copy of the zone-map index, in file order.
func (r *Reader) Blocks() []ZoneMap {
	out := make([]ZoneMap, len(r.index))
	copy(out, r.index)
	return out
}

// SetWorkers bounds the decode pool for subsequent Scans calls (minimum 1;
// the default is GOMAXPROCS). Not safe concurrently with Scans.
func (r *Reader) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	r.workers = n
}

// SetMetrics wires the reader's instrumentation: blocks scanned vs skipped
// by pruning, bytes decompressed, scans decoded vs matched, per-block
// decompression time. A nil registry disables it.
func (r *Reader) SetMetrics(reg *obs.Registry) {
	r.met = reg
	r.mScanned = reg.Counter("archive.blocks.scanned")
	r.mSkipped = reg.Counter("archive.blocks.skipped")
	r.mBytes = reg.Counter("archive.bytes.decompressed")
	r.mDecoded = reg.Counter("archive.scans.decoded")
	r.mMatched = reg.Counter("archive.scans.matched")
	r.mCorrupt = reg.Counter("faults.archive.corrupt_blocks")
	r.mDecompress = reg.Histogram("archive.decompress_ns")
}

// CorruptBlocks returns the number of damaged blocks skipped so far by a
// WithSkipCorrupt reader, cumulative across Scans calls (a block damaged on
// disk is counted once per query that decodes it).
func (r *Reader) CorruptBlocks() uint64 { return r.corrupt.Load() }

// blockScans is one decoded block: scans and (when the file has them)
// parallel origins. corrupt marks a damaged block a WithSkipCorrupt reader
// converted into a counted skip.
type blockScans struct {
	scans   []*core.Scan
	origins []enrich.Origin
	corrupt bool
	err     error
}

// Scans streams every scan matching f to emit, in file order (block order,
// record order within a block — i.e. the order scans were archived in).
// Blocks whose zone map excludes f are skipped without decompression; the
// surviving blocks are decoded on a worker pool while emit runs on the
// calling goroutine. The origin is the zero Origin when the archive carries
// none (see HasOrigins). Damaged blocks abort with an error unless the
// reader was opened WithSkipCorrupt (see CorruptBlocks).
func (r *Reader) Scans(f Filter, emit func(sc *core.Scan, o enrich.Origin)) error {
	return r.ScansContext(context.Background(), f, emit)
}

// ScansContext is Scans with cancellation: the query stops decoding and
// returns ctx.Err() as soon as the context is done, between blocks. Emitted
// scans up to that point are valid.
func (r *Reader) ScansContext(ctx context.Context, f Filter, emit func(sc *core.Scan, o enrich.Origin)) error {
	return r.Query(ctx, &f, emit)
}

// Query streams every scan matching p to emit, in file order, under full
// predicate pushdown: blocks whose zone map p.MatchBlock excludes are
// skipped without decompression, surviving blocks are decoded on a worker
// pool, and p.Match drops non-matching records before they reach emit (with
// the record's origin when the archive carries origins, nil otherwise; the
// emit callback still receives the zero Origin value in that case). This is
// the generalized form of Scans/ScansContext — a Filter is one Predicate —
// and the execution surface internal/query compiles its ASTs onto.
func (r *Reader) Query(ctx context.Context, p Predicate, emit func(sc *core.Scan, o enrich.Origin)) error {
	// Predicate pushdown over the zone maps.
	var live []int
	for i := range r.index {
		if p.MatchBlock(&r.index[i]) {
			live = append(live, i)
		} else {
			r.mSkipped.Inc()
		}
	}
	r.mScanned.Add(uint64(len(live)))
	if len(live) == 0 {
		return nil
	}

	workers := r.workers
	if workers > len(live) {
		workers = len(live)
	}

	// Ordered fan-out: workers decode any block, the caller drains results
	// strictly in block order so archived order is preserved end to end.
	results := make([]chan blockScans, len(live))
	for i := range results {
		results[i] = make(chan blockScans, 1)
	}
	jobs := make(chan int, len(live))
	for i := range live {
		jobs <- i
	}
	close(jobs)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := ctx.Err(); err != nil {
					results[j] <- blockScans{err: err}
					continue
				}
				results[j] <- r.decodeBlock(&r.index[live[j]], p)
			}
		}()
	}
	defer wg.Wait()

	for j := range results {
		res := <-results[j]
		if res.err != nil {
			// Result channels are buffered, so the remaining workers finish
			// without a drain; the deferred Wait joins them.
			return res.err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		for i, sc := range res.scans {
			var o enrich.Origin
			if res.origins != nil {
				o = res.origins[i]
			}
			emit(sc, o)
		}
	}
	return nil
}

// fail converts a block-local failure into either a query-aborting error
// (the default) or, under WithSkipCorrupt, a counted skip.
func (r *Reader) fail(err error) blockScans {
	if r.skipCorrupt {
		r.corrupt.Add(1)
		r.mCorrupt.Inc()
		return blockScans{corrupt: true}
	}
	return blockScans{err: err}
}

// blockScratch bundles the per-block scratch a decode cycles through: the
// compressed read buffer, the decompressed raw buffer, and a reusable-state
// DEFLATE decoder (internal/inflate keeps its Huffman tables across blocks,
// so a warmed scratch decompresses without allocating — compress/flate
// rebuilds its link tables per stream even when Reset). The unit lives in
// scratchPool; decodeRecord copies every byte it keeps (ports, payload,
// strings), so nothing decoded from a scratch — including the scans a
// CatalogView query hands out — aliases it after release. That invariant is
// pinned by TestPoolPoisoning.
type blockScratch struct {
	comp []byte
	raw  []byte
	inf  inflate.Decoder
}

var scratchPool = sync.Pool{New: func() any { return new(blockScratch) }}

// poisonScratch, when set (by tests only), scribbles every scratch buffer as
// it returns to the pool so any decoded state still aliasing pooled memory
// fails loudly instead of silently going stale.
var poisonScratch atomic.Bool

// release returns the scratch to the pool.
func (s *blockScratch) release() {
	if poisonScratch.Load() {
		comp := s.comp[:cap(s.comp)]
		for i := range comp {
			comp[i] = 0xdb
		}
		raw := s.raw[:cap(s.raw)]
		for i := range raw {
			raw[i] = 0xdb
		}
	}
	scratchPool.Put(s)
}

// readBlock fills s with block z: the compressed bytes (checksum verified for
// version ≥ 2) in s.comp and the decompressed record bytes in s.raw. The
// buffers are valid until s.release.
func (r *Reader) readBlock(z *ZoneMap, s *blockScratch) error {
	n := int(z.CompressedLen)
	if r.ver >= version2 {
		n += blockCRCLen
	}
	if cap(s.comp) < n {
		s.comp = make([]byte, n)
	}
	blk := s.comp[:n]
	if _, err := r.ra.ReadAt(blk, int64(z.Offset)); err != nil {
		return fmt.Errorf("archive: block at %d: %w", z.Offset, err)
	}
	comp := blk
	if r.ver >= version2 {
		want := binary.BigEndian.Uint32(blk[:blockCRCLen])
		comp = blk[blockCRCLen:]
		if crc32.ChecksumIEEE(comp) != want {
			return fmt.Errorf("%w: block at %d: checksum mismatch", ErrCorrupt, z.Offset)
		}
	}
	// Capacity hints come from the (checksummed but still untrusted) index;
	// clamp them so a crafted file cannot force absurd allocations before
	// the decode fails.
	rawCap := int(z.RawLen)
	if rawCap > 4*DefaultBlockBytes {
		rawCap = 4 * DefaultBlockBytes
	}
	sp := obs.StartSpan(r.mDecompress)
	raw := s.raw[:0]
	if cap(raw) < rawCap {
		raw = make([]byte, 0, rawCap)
	}
	// Decompress with the output capped at RawLen+1 bytes (like the io.Copy
	// + LimitReader regime this replaces): one extra byte proves an overlong
	// block without letting a crafted stream balloon past the clamp.
	raw, err := s.inf.AppendDecode(raw, comp, int(z.RawLen)+1)
	s.raw = raw
	if err != nil {
		return fmt.Errorf("%w: block at %d: %v", ErrCorrupt, z.Offset, err)
	}
	sp.End()
	if uint32(len(raw)) != z.RawLen {
		return fmt.Errorf("%w: block at %d: raw length %d != %d",
			ErrCorrupt, z.Offset, len(raw), z.RawLen)
	}
	r.mBytes.Add(uint64(len(raw)))
	return nil
}

// RawBlock reads, checksums and decompresses block i, handing the raw record
// bytes to visit. The slice is pool-owned scratch, valid only for the
// duration of the call — visit must copy anything it keeps. It exposes the
// pooled read path without the per-record decode allocations on top, for the
// allocation harness (cmd/synbench, the alloctest budgets).
func (r *Reader) RawBlock(i int, visit func(raw []byte) error) error {
	if i < 0 || i >= len(r.index) {
		return fmt.Errorf("archive: block %d out of range [0,%d)", i, len(r.index))
	}
	s := scratchPool.Get().(*blockScratch)
	defer s.release()
	if err := r.readBlock(&r.index[i], s); err != nil {
		return err
	}
	return visit(s.raw)
}

// decodeBlock reads, checksums, decompresses and decodes one block, keeping
// only scans matching p. All scratch comes from (and returns to) the block
// pool; the decoded scans copy every byte they keep, so they outlive it.
func (r *Reader) decodeBlock(z *ZoneMap, p Predicate) blockScans {
	s := scratchPool.Get().(*blockScratch)
	defer s.release()
	if err := r.readBlock(z, s); err != nil {
		return r.fail(err)
	}
	raw := s.raw

	// A record is at least 26 bytes, so the block bounds the scan count.
	if uint64(z.Scans) > uint64(len(raw))/26+1 {
		return r.fail(fmt.Errorf("%w: block at %d: %d scans in %d bytes",
			ErrCorrupt, z.Offset, z.Scans, len(raw)))
	}
	out := blockScans{scans: make([]*core.Scan, 0, z.Scans)}
	if r.origins {
		out.origins = make([]enrich.Origin, 0, z.Scans)
	}
	var prev int64
	b := raw
	for i := uint32(0); i < z.Scans; i++ {
		sc := new(core.Scan)
		var o enrich.Origin
		var err error
		b, prev, err = decodeRecord(b, sc, &o, r.origins, r.phases, prev)
		if err != nil {
			return r.fail(fmt.Errorf("archive: block at %d, record %d: %w", z.Offset, i, err))
		}
		r.mDecoded.Inc()
		var op *enrich.Origin
		if r.origins {
			op = &o
		}
		if !p.Match(sc, op) {
			continue
		}
		r.mMatched.Inc()
		out.scans = append(out.scans, sc)
		if r.origins {
			out.origins = append(out.origins, o)
		}
	}
	if len(b) != 0 {
		return r.fail(fmt.Errorf("%w: block at %d: %d trailing bytes", ErrCorrupt, z.Offset, len(b)))
	}
	return out
}
