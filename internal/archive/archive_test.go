package archive

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/fingerprint"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

// testScans builds n deterministic scans spread over years 2015-2024, all
// six tools, varied port sets and the full source space.
func testScans(n int, seed uint64) ([]*core.Scan, []enrich.Origin) {
	r := rng.New(seed)
	scans := make([]*core.Scan, 0, n)
	origins := make([]enrich.Origin, 0, n)
	for i := 0; i < n; i++ {
		year := 2015 + i%10
		start := time.Date(year, time.February, 1, 0, 0, 0, 0, time.UTC).UnixNano() +
			r.Int63n(int64(100*24)*int64(time.Hour))
		nPorts := 1 + int(r.Uint32()%5)
		ports := make([]uint16, 0, nPorts)
		p := uint16(r.Uint32() % 1000)
		for j := 0; j < nPorts; j++ {
			p += uint16(1 + r.Uint32()%500)
			ports = append(ports, p)
		}
		sc := &core.Scan{
			Src:          r.Uint32(),
			Start:        start,
			End:          start + r.Int63n(int64(time.Hour)),
			Packets:      uint64(1 + r.Uint32()%100000),
			DistinctDsts: 1 + int(r.Uint32()%4096),
			Ports:        ports,
			Tool:         tools.Tool(i % 7),
			Qualified:    i%3 != 0,
			RatePPS:      math.Abs(r.NormFloat64()) * 5000,
			Coverage:     float64(r.Uint32()%1000) / 1000,
			ISN:          fingerprint.ISNClass(i % 4),
		}
		if i%4 == 0 {
			sc.TwoPhase = true
			sc.ISN = fingerprint.ISNMixed
			sc.LinkedDsts = 1 + int(r.Uint32()%64)
			sc.HandshakePackets = uint64(r.Uint32()) % sc.Packets
			sc.PayloadBytes = uint64(r.Uint32() % 4096)
			sc.Payload = []byte{0x16, 0x03, 0x01, byte(i)}
		}
		sc.ScoutPackets = sc.Packets - sc.HandshakePackets
		scans = append(scans, sc)
		origins = append(origins, enrich.Origin{
			Country: fmt.Sprintf("C%d", i%13),
			ASN:     r.Uint32() % 70000,
			Type:    inetmodel.ScannerType(i % 5),
			OrgID:   int16(i%20 - 1),
			OrgName: fmt.Sprintf("org-%d", i%20),
		})
	}
	return scans, origins
}

func writeArchive(t testing.TB, scans []*core.Scan, origins []enrich.Origin, cfg WriterConfig) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range scans {
		if cfg.Origins {
			err = w.AddWithOrigin(sc, origins[i])
		} else {
			err = w.Add(sc)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openArchive(t testing.TB, data []byte) *Reader {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRoundTrip: every archived scan (and origin) comes back bit-identical,
// in archived order, through the worker-pool reader.
func TestRoundTrip(t *testing.T) {
	for _, withOrigins := range []bool{false, true} {
		t.Run(fmt.Sprintf("origins=%v", withOrigins), func(t *testing.T) {
			scans, origins := testScans(5000, 1)
			data := writeArchive(t, scans, origins, WriterConfig{
				TelescopeSize: 4096, Origins: withOrigins, BlockBytes: 8 << 10,
			})
			r := openArchive(t, data)
			if r.TelescopeSize() != 4096 {
				t.Fatalf("telescope size %d", r.TelescopeSize())
			}
			if r.HasOrigins() != withOrigins {
				t.Fatalf("HasOrigins = %v", r.HasOrigins())
			}
			if r.NumScans() != 5000 {
				t.Fatalf("NumScans = %d", r.NumScans())
			}
			if r.NumBlocks() < 4 {
				t.Fatalf("expected multiple blocks, got %d", r.NumBlocks())
			}
			var gotScans []*core.Scan
			var gotOrigins []enrich.Origin
			if err := r.Scans(Filter{}, func(sc *core.Scan, o enrich.Origin) {
				gotScans = append(gotScans, sc)
				gotOrigins = append(gotOrigins, o)
			}); err != nil {
				t.Fatal(err)
			}
			if len(gotScans) != len(scans) {
				t.Fatalf("got %d scans, want %d", len(gotScans), len(scans))
			}
			for i := range scans {
				if !reflect.DeepEqual(scans[i], gotScans[i]) {
					t.Fatalf("scan %d mismatch:\n got %+v\nwant %+v", i, gotScans[i], scans[i])
				}
				if withOrigins && origins[i] != gotOrigins[i] {
					t.Fatalf("origin %d mismatch: got %+v want %+v", i, gotOrigins[i], origins[i])
				}
			}
		})
	}
}

// TestFilterMatchesLinearScan: for a spread of filters, the pruned
// worker-pool read returns exactly what a full read plus per-scan filter
// returns, in the same order.
func TestFilterMatchesLinearScan(t *testing.T) {
	scans, origins := testScans(4000, 2)
	data := writeArchive(t, scans, origins, WriterConfig{
		TelescopeSize: 4096, Origins: true, BlockBytes: 4 << 10,
	})
	r := openArchive(t, data)

	pfx := inetmodel.Prefix{Base: 0x40000000, Bits: 4} // 64.0.0.0/4
	filters := []Filter{
		{},
		{Years: []int{2020}},
		{Years: []int{2016, 2021}},
		{Tools: []tools.Tool{tools.ToolZMap}},
		{Years: []int{2019}, Tools: []tools.Tool{tools.ToolMirai, tools.ToolNMap}},
		{Ports: []uint16{scans[17].Ports[0]}},
		{QualifiedOnly: true},
		{MinRate: 1000},
		{MaxRate: 500},
		{MinRate: 100, MaxRate: 4000, QualifiedOnly: true},
		{SrcPrefix: &pfx},
		{Years: []int{2023}, QualifiedOnly: true, SrcPrefix: &pfx},
	}
	for fi, f := range filters {
		var want []*core.Scan
		for _, sc := range scans {
			if f.MatchScan(sc) {
				want = append(want, sc)
			}
		}
		var got []*core.Scan
		if err := r.Scans(f, func(sc *core.Scan, _ enrich.Origin) {
			got = append(got, sc)
		}); err != nil {
			t.Fatalf("filter %d: %v", fi, err)
		}
		if len(got) != len(want) {
			t.Fatalf("filter %d: got %d scans, want %d", fi, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Fatalf("filter %d: scan %d mismatch", fi, i)
			}
		}
	}
}

// TestZoneMapPruning: a selective filter must scan strictly fewer blocks
// than a full read, and skipped+scanned must cover the file.
func TestZoneMapPruning(t *testing.T) {
	scans, origins := testScans(6000, 3)
	// Archive in start-time order, the order a detector run produces: blocks
	// then cover narrow time ranges and the year/tool zone maps have
	// resolution to prune on.
	sortScansByStart(scans)
	data := writeArchive(t, scans, origins, WriterConfig{
		TelescopeSize: 4096, BlockBytes: 4 << 10,
	})
	r := openArchive(t, data)
	reg := obs.NewRegistry()
	r.SetMetrics(reg)

	n := 0
	if err := r.Scans(Filter{Years: []int{2020}, Tools: []tools.Tool{tools.ToolZMap}},
		func(sc *core.Scan, _ enrich.Origin) { n++ }); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	scanned := snap.Counter("archive.blocks.scanned")
	skipped := snap.Counter("archive.blocks.skipped")
	if scanned+skipped < uint64(r.NumBlocks()) {
		t.Fatalf("scanned %d + skipped %d < blocks %d", scanned, skipped, r.NumBlocks())
	}
	if skipped == 0 {
		t.Fatalf("zone maps pruned nothing (scanned %d, skipped %d, blocks %d)",
			scanned, skipped, r.NumBlocks())
	}
	if scanned >= uint64(r.NumBlocks()) {
		t.Fatalf("filtered query scanned every block (%d of %d)", scanned, r.NumBlocks())
	}
	if n == 0 {
		t.Fatal("filtered query matched nothing")
	}
}

func sortScansByStart(scans []*core.Scan) {
	sort.Slice(scans, func(i, j int) bool { return scans[i].Start < scans[j].Start })
}

// TestOriginsMismatchedAdd: Add/AddWithOrigin enforce the file mode.
func TestOriginsMismatchedAdd(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterConfig{Origins: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(&core.Scan{}); err == nil {
		t.Fatal("Add on an origins archive should fail")
	}
	w2, err := NewWriter(&buf, WriterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AddWithOrigin(&core.Scan{}, enrich.Origin{}); err == nil {
		t.Fatal("AddWithOrigin on an origin-less archive should fail")
	}
}

// TestCorruption: trailer, index and block damage surface errors, never
// panics or silent truncation.
func TestCorruption(t *testing.T) {
	scans, origins := testScans(500, 4)
	data := writeArchive(t, scans, origins, WriterConfig{BlockBytes: 4 << 10})

	t.Run("short", func(t *testing.T) {
		if _, err := NewReader(bytes.NewReader(data[:8]), 8); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("magic", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[0] = 'X'
		if _, err := NewReader(bytes.NewReader(bad), int64(len(bad))); err != ErrBadMagic {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[4] = 99
		if _, err := NewReader(bytes.NewReader(bad), int64(len(bad))); err != ErrBadVersion {
			t.Fatalf("got %v, want ErrBadVersion", err)
		}
	})
	t.Run("index-crc", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[len(bad)-trailerLen-3] ^= 0xff // inside the index
		if _, err := NewReader(bytes.NewReader(bad), int64(len(bad))); err == nil {
			t.Fatal("want checksum error")
		}
	})
	t.Run("block-body", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[headerLen+10] ^= 0xff // inside the first block
		r, err := NewReader(bytes.NewReader(bad), int64(len(bad)))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Scans(Filter{}, func(*core.Scan, enrich.Origin) {}); err == nil {
			t.Fatal("want block decode error")
		}
	})
}

// TestEmptyArchive: zero scans is a valid file.
func TestEmptyArchive(t *testing.T) {
	data := writeArchive(t, nil, nil, WriterConfig{TelescopeSize: 128})
	r := openArchive(t, data)
	if r.NumBlocks() != 0 || r.NumScans() != 0 {
		t.Fatalf("blocks %d scans %d", r.NumBlocks(), r.NumScans())
	}
	if err := r.Scans(Filter{}, func(*core.Scan, enrich.Origin) {
		t.Fatal("emit on empty archive")
	}); err != nil {
		t.Fatal(err)
	}
}

// TestWriterMetrics: the writer reports blocks/bytes/scans.
func TestWriterMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	scans, origins := testScans(1000, 5)
	writeArchive(t, scans, origins, WriterConfig{BlockBytes: 4 << 10, Metrics: reg})
	snap := reg.Snapshot()
	if got := snap.Counter("archive.scans.written"); got != 1000 {
		t.Fatalf("scans.written = %d", got)
	}
	if snap.Counter("archive.blocks.written") == 0 {
		t.Fatal("no blocks reported")
	}
	if snap.Counter("archive.bytes.compressed") == 0 ||
		snap.Counter("archive.bytes.raw") == 0 {
		t.Fatal("no bytes reported")
	}
	if snap.Counter("archive.bytes.compressed") >= snap.Counter("archive.bytes.raw") {
		t.Fatal("compression made the blocks bigger on redundant input")
	}
}

// BenchmarkArchiveQuery measures a pruned single-year single-tool query
// against a full scan of the same archive.
func BenchmarkArchiveQuery(b *testing.B) {
	scans, origins := testScans(20000, 6)
	sortScansByStart(scans)
	data := writeArchive(b, scans, origins, WriterConfig{BlockBytes: 32 << 10})
	r := openArchive(b, data)

	b.Run("full", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			n := 0
			if err := r.Scans(Filter{}, func(*core.Scan, enrich.Origin) { n++ }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("year-tool", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		f := Filter{Years: []int{2020}, Tools: []tools.Tool{tools.ToolZMap}}
		for i := 0; i < b.N; i++ {
			n := 0
			if err := r.Scans(f, func(*core.Scan, enrich.Origin) { n++ }); err != nil {
				b.Fatal(err)
			}
		}
	})
}
