package archive

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/faultinject"
	"github.com/synscan/synscan/internal/obs"
)

// segStore opens a segment store in a fresh temp dir with small rotation
// bounds so tests produce several segments from modest inputs.
func segStore(t testing.TB, cfg SegmentConfig) *SegmentWriter {
	t.Helper()
	sw, err := OpenSegmentDir(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// addAll appends scans to the store, failing the test on any error.
func addAll(t testing.TB, sw *SegmentWriter, scans []*core.Scan) {
	t.Helper()
	for _, sc := range scans {
		if err := sw.Add(sc); err != nil {
			t.Fatal(err)
		}
	}
}

// viewScans streams every scan in the view, in manifest (= emit) order.
func viewScans(t testing.TB, v *CatalogView) []*core.Scan {
	t.Helper()
	var out []*core.Scan
	for i := 0; i < v.Len(); i++ {
		if err := v.Reader(i).Scans(Filter{}, func(sc *core.Scan, _ enrich.Origin) {
			out = append(out, sc)
		}); err != nil {
			t.Fatalf("segment %s: %v", v.Name(i), err)
		}
	}
	return out
}

// catalogScans opens a throwaway catalog over dir and reads everything.
func catalogScans(t testing.TB, dir string, cfg CatalogConfig) []*core.Scan {
	t.Helper()
	c, err := OpenCatalog(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v := c.View()
	defer v.Release()
	return viewScans(t, v)
}

// TestSegmentRotationScans: the scan-count bound seals segments at exactly
// MaxSegmentScans records, and the store round-trips the input in order.
func TestSegmentRotationScans(t *testing.T) {
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096, MaxSegmentScans: 100, BlockBytes: 2 << 10})
	scans, _ := testScans(350, 7)
	addAll(t, sw, scans)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	segs := sw.SealedSegments()
	if len(segs) != 4 {
		t.Fatalf("got %d segments, want 4", len(segs))
	}
	for i, s := range segs[:3] {
		if s.Scans != 100 {
			t.Fatalf("segment %d holds %d scans, want 100", i, s.Scans)
		}
	}
	if segs[3].Scans != 50 {
		t.Fatalf("last segment holds %d scans, want 50", segs[3].Scans)
	}
	got := catalogScans(t, sw.Dir(), CatalogConfig{})
	if !reflect.DeepEqual(got, scans) {
		t.Fatal("segment store round-trip mismatch")
	}
}

// TestSegmentRotationBytes: the on-disk size bound rotates without any help
// from the count bound.
func TestSegmentRotationBytes(t *testing.T) {
	sw := segStore(t, SegmentConfig{
		TelescopeSize: 4096, MaxSegmentBytes: 4 << 10, BlockBytes: 1 << 10,
	})
	scans, _ := testScans(2000, 11)
	addAll(t, sw, scans)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	segs := sw.SealedSegments()
	if len(segs) < 3 {
		t.Fatalf("size bound produced only %d segments", len(segs))
	}
	var total uint64
	for _, s := range segs {
		total += s.Scans
	}
	if total != 2000 {
		t.Fatalf("segments hold %d scans, want 2000", total)
	}
}

// TestSegmentRotationAge: the record-time span bound seals once scans drift
// more than MaxSegmentAge apart. testScans spreads records over ten years, so
// a one-year bound must yield multiple segments.
func TestSegmentRotationAge(t *testing.T) {
	sw := segStore(t, SegmentConfig{
		TelescopeSize: 4096, MaxSegmentAge: int64(365 * 24 * time.Hour),
	})
	scans, _ := testScans(200, 13)
	addAll(t, sw, scans)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(sw.SealedSegments()); n < 2 {
		t.Fatalf("age bound produced only %d segments", n)
	}
	got := catalogScans(t, sw.Dir(), CatalogConfig{})
	if !reflect.DeepEqual(got, scans) {
		t.Fatal("round-trip mismatch under age rotation")
	}
}

// TestSegmentStoreEquivalence: reading a segmented store in manifest order
// yields the identical scan sequence a single sealed archive of the same
// input does — the invariant synserve and the compactor both lean on.
func TestSegmentStoreEquivalence(t *testing.T) {
	scans, origins := testScans(3000, 3)
	single := writeArchive(t, scans, origins, WriterConfig{TelescopeSize: 4096, BlockBytes: 4 << 10})
	var want []*core.Scan
	if err := openArchive(t, single).Scans(Filter{}, func(sc *core.Scan, _ enrich.Origin) {
		want = append(want, sc)
	}); err != nil {
		t.Fatal(err)
	}

	sw := segStore(t, SegmentConfig{TelescopeSize: 4096, MaxSegmentScans: 250, BlockBytes: 4 << 10})
	addAll(t, sw, scans)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	got := catalogScans(t, sw.Dir(), CatalogConfig{})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("segment store diverges from single sealed archive")
	}
}

// TestCatalogDiscovery: a catalog picks up newly sealed segments on Refresh
// without reopening, generations advance only on real changes, and views
// taken before a refresh keep serving their frozen segment set.
func TestCatalogDiscovery(t *testing.T) {
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096})
	scans, _ := testScans(300, 5)

	cat, err := OpenCatalog(sw.Dir(), CatalogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if v := cat.View(); v.Len() != 0 {
		t.Fatalf("empty store has %d segments", v.Len())
	} else {
		v.Release()
	}
	gen0 := cat.Generation()

	if changed, err := cat.Refresh(); err != nil || changed {
		t.Fatalf("no-op refresh: changed=%v err=%v", changed, err)
	}
	if cat.Generation() != gen0 {
		t.Fatal("generation moved without a segment-set change")
	}

	addAll(t, sw, scans[:100])
	if err := sw.Seal(); err != nil {
		t.Fatal(err)
	}
	old := cat.View()
	defer old.Release()

	if changed, err := cat.Refresh(); err != nil || !changed {
		t.Fatalf("refresh after seal: changed=%v err=%v", changed, err)
	}
	if cat.Generation() == gen0 {
		t.Fatal("generation did not advance on discovery")
	}
	v := cat.View()
	if v.Len() != 1 || v.NumScans() != 100 {
		t.Fatalf("view: %d segments / %d scans, want 1/100", v.Len(), v.NumScans())
	}
	v.Release()
	if old.Len() != 0 {
		t.Fatal("pre-refresh view mutated by Refresh")
	}

	addAll(t, sw, scans[100:])
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Refresh(); err != nil {
		t.Fatal(err)
	}
	v = cat.View()
	got := viewScans(t, v)
	v.Release()
	if !reflect.DeepEqual(got, scans) {
		t.Fatal("catalog does not serve the full appended sequence")
	}
}

// TestCompaction: small segments merge into one, the store's scan sequence is
// untouched, input files are deleted, and the catalog follows the swap.
func TestCompaction(t *testing.T) {
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096, MaxSegmentScans: 100, BlockBytes: 1 << 10})
	scans, _ := testScans(600, 17)
	addAll(t, sw, scans)
	if err := sw.Seal(); err != nil {
		t.Fatal(err)
	}
	before := sw.SealedSegments()
	if len(before) != 6 {
		t.Fatalf("setup sealed %d segments, want 6", len(before))
	}

	cat, err := OpenCatalog(sw.Dir(), CatalogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	// A view held across the compaction keeps reading the retired inputs.
	held := cat.View()
	defer held.Release()

	reg := obs.NewRegistry()
	comp := NewCompactor(sw, CompactorConfig{MinRun: 2, MaxInputBytes: 1 << 30, Metrics: reg})
	n, err := comp.CompactOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("merged %d inputs, want 6", n)
	}
	after := sw.SealedSegments()
	if len(after) != 1 || !after[0].Compacted || after[0].Scans != 600 {
		t.Fatalf("post-compaction manifest: %+v", after)
	}
	for _, s := range before {
		if _, err := os.Stat(filepath.Join(sw.Dir(), s.Name)); !os.IsNotExist(err) {
			t.Fatalf("input %s not deleted", s.Name)
		}
	}
	if _, err := os.Stat(filepath.Join(sw.Dir(), IntentName)); !os.IsNotExist(err) {
		t.Fatal("intent journal left behind")
	}

	if got := viewScans(t, held); !reflect.DeepEqual(got, scans) {
		t.Fatal("held view lost data across compaction")
	}
	if changed, err := cat.Refresh(); err != nil || !changed {
		t.Fatalf("catalog refresh after compaction: changed=%v err=%v", changed, err)
	}
	v := cat.View()
	got := viewScans(t, v)
	v.Release()
	if !reflect.DeepEqual(got, scans) {
		t.Fatal("compacted store diverges from input sequence")
	}

	snap := reg.Snapshot()
	if snap.Counters["archive.compaction.runs"] != 1 ||
		snap.Counters["archive.segments.compacted"] != 6 {
		t.Fatalf("compaction metrics: %+v", snap.Counters)
	}
	if snap.Counters["archive.compaction.bytes_written"] == 0 {
		t.Fatal("bytes_written not counted")
	}

	// Nothing left small enough in a long-enough run: idle compactor.
	if n, err := comp.CompactOnce(); err != nil || n != 0 {
		t.Fatalf("second compaction: n=%d err=%v", n, err)
	}
}

// TestCompactionSkipsLargeSegments: segments at or above MaxInputBytes break
// runs; only contiguous runs of small segments merge.
func TestCompactionSkipsLargeSegments(t *testing.T) {
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096, MaxSegmentScans: 50, BlockBytes: 1 << 10})
	scans, _ := testScans(300, 19)
	addAll(t, sw, scans)
	if err := sw.Seal(); err != nil {
		t.Fatal(err)
	}
	segs := sw.SealedSegments()
	if len(segs) != 6 {
		t.Fatalf("setup sealed %d segments, want 6", len(segs))
	}
	// Cut eligibility at the third segment's size: any segment at least that
	// large is a run breaker.
	cut := segs[2].Bytes
	comp := NewCompactor(sw, CompactorConfig{MinRun: 2, MaxInputBytes: cut})
	for {
		n, err := comp.CompactOnce()
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	for _, s := range sw.SealedSegments() {
		if s.Compacted && s.Bytes == 0 {
			t.Fatalf("degenerate merged segment %+v", s)
		}
	}
	got := catalogScans(t, sw.Dir(), CatalogConfig{})
	if !reflect.DeepEqual(got, scans) {
		t.Fatal("selective compaction corrupted the sequence")
	}
}

// TestCrashMidSegmentRecovery: a crash leaves a truncated .open segment and a
// sealed-but-unlisted one. Reopening removes the torn file, adopts the sealed
// stray, and the catalog serves everything that was durably sealed.
func TestCrashMidSegmentRecovery(t *testing.T) {
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096, MaxSegmentScans: 100})
	dir := sw.Dir()
	scans, _ := testScans(250, 23)
	addAll(t, sw, scans) // seals seg 1 and 2; 50 scans buffered in seg 3

	// Simulate the crash: the open segment file exists, truncated mid-write
	// (no trailer), and is never sealed.
	openFiles, _ := filepath.Glob(filepath.Join(dir, "*"+openSuffix))
	if len(openFiles) != 1 {
		t.Fatalf("expected one open segment, found %v", openFiles)
	}

	// Also simulate a crash between seal-rename and manifest write: a valid
	// sealed file the manifest does not list.
	manBefore, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	strayScans, _ := testScans(40, 29)
	strayName := SegmentName(manBefore.NextSeq + 1)
	strayW, err := Create(filepath.Join(dir, strayName), WriterConfig{TelescopeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range strayScans {
		if err := strayW.Add(sc); err != nil {
			t.Fatal(err)
		}
	}
	if err := strayW.Close(); err != nil {
		t.Fatal(err)
	}
	// Abandon sw without Close — the crash. (Its buffered scans are lost by
	// design; they re-ingest from the capture.)

	sw2, err := OpenSegmentDir(dir, SegmentConfig{TelescopeSize: 4096, MaxSegmentScans: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer sw2.Close()
	if _, err := os.Stat(openFiles[0]); !os.IsNotExist(err) {
		t.Fatal("torn .open segment survived recovery")
	}
	segs := sw2.SealedSegments()
	if len(segs) != 3 {
		t.Fatalf("recovered %d segments, want 3 (2 sealed + 1 adopted)", len(segs))
	}
	if segs[2].Name != strayName || segs[2].Scans != 40 {
		t.Fatalf("adopted segment: %+v", segs[2])
	}
	want := append(append([]*core.Scan{}, scans[:200]...), strayScans...)
	got := catalogScans(t, dir, CatalogConfig{})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovered store serves the wrong sequence")
	}
}

// TestCatalogSkipsUnreadableSegment: a segment truncated below its trailer is
// unreadable; the catalog skips it, flags the store degraded, serves the
// intact segments, and heals (with a generation bump) once the file is whole
// again.
func TestCatalogSkipsUnreadableSegment(t *testing.T) {
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096, MaxSegmentScans: 100})
	scans, _ := testScans(300, 31)
	addAll(t, sw, scans)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	segs := sw.SealedSegments()
	victim := filepath.Join(sw.Dir(), segs[1].Name)
	whole, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	cat, err := OpenCatalog(sw.Dir(), CatalogConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	v := cat.View()
	if v.Len() != 2 || v.Missing() != 1 || !v.Degraded() {
		t.Fatalf("view over damaged store: len=%d missing=%d degraded=%v",
			v.Len(), v.Missing(), v.Degraded())
	}
	want := append(append([]*core.Scan{}, scans[:100]...), scans[200:]...)
	got := viewScans(t, v)
	v.Release()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("intact segments did not serve around the unreadable one")
	}
	if reg.Snapshot().Counters["archive.segments.unreadable"] != 1 {
		t.Fatal("unreadable segment not counted")
	}
	if errs := cat.Unreadable(); len(errs) != 1 || errs[segs[1].Name] == nil {
		t.Fatalf("Unreadable() = %v", errs)
	}

	// Heal the file; the next refresh must pick it up and bump the
	// generation so caches keyed on it invalidate.
	gen := cat.Generation()
	if err := os.WriteFile(victim, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	if changed, err := cat.Refresh(); err != nil || !changed {
		t.Fatalf("healing refresh: changed=%v err=%v", changed, err)
	}
	if cat.Generation() == gen {
		t.Fatal("generation did not advance on heal")
	}
	v = cat.View()
	got = viewScans(t, v)
	degraded := v.Degraded()
	v.Release()
	if degraded || !reflect.DeepEqual(got, scans) {
		t.Fatal("healed store does not serve the full sequence")
	}
}

// TestCatalogSkipCorruptBlocks: flipped bytes inside one block degrade that
// segment (skipped block) without taking out the store, when the catalog opens
// readers in skip-corrupt mode.
func TestCatalogSkipCorruptBlocks(t *testing.T) {
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096, MaxSegmentScans: 150, BlockBytes: 1 << 10})
	scans, _ := testScans(300, 37)
	addAll(t, sw, scans)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	segs := sw.SealedSegments()
	victim := filepath.Join(sw.Dir(), segs[0].Name)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	// Flip bytes inside block payloads only — headerLen past the header,
	// clear of the index and trailer at the tail.
	faultinject.FlipBytes(data, 41, 8, headerLen+8, len(data)/2)
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	cat, err := OpenCatalog(sw.Dir(), CatalogConfig{SkipCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	v := cat.View()
	defer v.Release()
	if v.Len() != 2 || v.Missing() != 0 {
		t.Fatalf("view: len=%d missing=%d", v.Len(), v.Missing())
	}
	got := viewScans(t, v)
	if !v.Degraded() {
		t.Fatal("corrupt blocks did not degrade the view")
	}
	if len(got) >= 300 || len(got) < 150 {
		t.Fatalf("got %d scans; want the intact segment plus partial victim", len(got))
	}
}

// TestCompactionRecoveryRollForward: crash after the merge output sealed but
// before the manifest swap. Recovery must complete the swap — adopting the
// output alongside its inputs would double every merged scan.
func TestCompactionRecoveryRollForward(t *testing.T) {
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096, MaxSegmentScans: 100})
	scans, _ := testScans(400, 43)
	addAll(t, sw, scans)
	if err := sw.Seal(); err != nil {
		t.Fatal(err)
	}
	comp := NewCompactor(sw, CompactorConfig{MinRun: 2, MaxInputBytes: 1 << 30})

	// Drive the compaction by hand up to the crash point: intent journaled,
	// output sealed under its final name, manifest swap never issued.
	sw.mu.Lock()
	_, n, inputs, outSeq := comp.pickRun()
	sw.mu.Unlock()
	if n != 4 {
		t.Fatalf("picked run of %d, want 4", n)
	}
	names := make([]string, n)
	for i, in := range inputs {
		names[i] = in.Name
	}
	if err := writeIntent(sw.Dir(), &compactIntent{
		Output: SegmentMeta{Name: SegmentName(outSeq)}, Inputs: names,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := comp.merge(inputs, outSeq); err != nil {
		t.Fatal(err)
	}
	// Crash here: no replaceRun, manifest still lists the four inputs.

	sw2, err := OpenSegmentDir(sw.Dir(), SegmentConfig{TelescopeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer sw2.Close()
	segs := sw2.SealedSegments()
	if len(segs) != 1 || !segs[0].Compacted || segs[0].Scans != 400 {
		t.Fatalf("roll-forward manifest: %+v", segs)
	}
	for _, name := range names {
		if _, err := os.Stat(filepath.Join(sw.Dir(), name)); !os.IsNotExist(err) {
			t.Fatalf("input %s survived roll-forward", name)
		}
	}
	got := catalogScans(t, sw.Dir(), CatalogConfig{})
	if !reflect.DeepEqual(got, scans) {
		t.Fatal("roll-forward lost or duplicated scans")
	}
}

// TestCompactionRecoveryRollBack: crash mid-merge — the intent exists but the
// output is incomplete. Recovery keeps the inputs and discards the partial
// output; nothing is lost.
func TestCompactionRecoveryRollBack(t *testing.T) {
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096, MaxSegmentScans: 100})
	scans, _ := testScans(400, 47)
	addAll(t, sw, scans)
	if err := sw.Seal(); err != nil {
		t.Fatal(err)
	}
	outName := SegmentName(99)
	if err := writeIntent(sw.Dir(), &compactIntent{
		Output: SegmentMeta{Name: outName},
		Inputs: []string{SegmentName(1), SegmentName(2)},
	}); err != nil {
		t.Fatal(err)
	}
	// A torn output under its sealed name: trailer missing.
	if err := os.WriteFile(filepath.Join(sw.Dir(), outName), []byte("SYNApartial"), 0o644); err != nil {
		t.Fatal(err)
	}

	sw2, err := OpenSegmentDir(sw.Dir(), SegmentConfig{TelescopeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer sw2.Close()
	if _, err := os.Stat(filepath.Join(sw.Dir(), outName)); !os.IsNotExist(err) {
		t.Fatal("partial output survived rollback")
	}
	if _, err := os.Stat(filepath.Join(sw.Dir(), IntentName)); !os.IsNotExist(err) {
		t.Fatal("intent journal survived rollback")
	}
	if len(sw2.SealedSegments()) != 4 {
		t.Fatalf("rollback manifest: %+v", sw2.SealedSegments())
	}
	got := catalogScans(t, sw.Dir(), CatalogConfig{})
	if !reflect.DeepEqual(got, scans) {
		t.Fatal("rollback lost scans")
	}
}

// TestCompactionRecoveryAlreadyLanded: crash after the manifest swap but
// before input-file deletion. Recovery just finishes the cleanup.
func TestCompactionRecoveryAlreadyLanded(t *testing.T) {
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096, MaxSegmentScans: 100})
	scans, _ := testScans(400, 53)
	addAll(t, sw, scans)
	if err := sw.Seal(); err != nil {
		t.Fatal(err)
	}
	comp := NewCompactor(sw, CompactorConfig{MinRun: 2, MaxInputBytes: 1 << 30})
	sw.mu.Lock()
	at, n, inputs, outSeq := comp.pickRun()
	sw.mu.Unlock()
	names := make([]string, n)
	for i, in := range inputs {
		names[i] = in.Name
	}
	if err := writeIntent(sw.Dir(), &compactIntent{
		Output: SegmentMeta{Name: SegmentName(outSeq)}, Inputs: names,
	}); err != nil {
		t.Fatal(err)
	}
	meta, err := comp.merge(inputs, outSeq)
	if err != nil {
		t.Fatal(err)
	}
	sw.mu.Lock()
	err = sw.replaceRun(at, n, meta)
	sw.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	// Crash here: swap landed, inputs still on disk, intent still present.

	sw2, err := OpenSegmentDir(sw.Dir(), SegmentConfig{TelescopeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer sw2.Close()
	for _, name := range names {
		if _, err := os.Stat(filepath.Join(sw.Dir(), name)); !os.IsNotExist(err) {
			t.Fatalf("input %s not cleaned up", name)
		}
	}
	got := catalogScans(t, sw.Dir(), CatalogConfig{})
	if !reflect.DeepEqual(got, scans) {
		t.Fatal("post-swap recovery corrupted the store")
	}
}

// TestSegmentWriterCloseIdempotent: double Close on a segment store returns
// the first result and seals nothing twice.
func TestSegmentWriterCloseIdempotent(t *testing.T) {
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096})
	scans, _ := testScans(10, 59)
	addAll(t, sw, scans)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	gen := sw.Generation()
	if err := sw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if sw.Generation() != gen || len(sw.SealedSegments()) != 1 {
		t.Fatal("second Close mutated the store")
	}
	if err := sw.Add(scans[0]); err == nil {
		t.Fatal("Add after Close succeeded")
	}
	if err := sw.Seal(); err == nil {
		t.Fatal("Seal after Close succeeded")
	}
}

// TestConcurrentDiscoveryDuringQueries exercises the full live loop under the
// race detector: one goroutine appends and seals, one compacts, one refreshes
// the catalog, and several run queries against views the whole time.
func TestConcurrentDiscoveryDuringQueries(t *testing.T) {
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096, MaxSegmentScans: 50, BlockBytes: 1 << 10})
	scans, _ := testScans(1000, 61)
	cat, err := OpenCatalog(sw.Dir(), CatalogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	comp := NewCompactor(sw, CompactorConfig{MinRun: 2, MaxInputBytes: 1 << 30})

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // ingest
		defer wg.Done()
		defer cancel()
		for _, sc := range scans {
			if err := sw.Add(sc); err != nil {
				t.Error(err)
				return
			}
		}
		if err := sw.Seal(); err != nil {
			t.Error(err)
		}
	}()

	wg.Add(1)
	go func() { // compact
		defer wg.Done()
		for ctx.Err() == nil {
			if _, err := comp.CompactOnce(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // discover
		defer wg.Done()
		for ctx.Err() == nil {
			if _, err := cat.Refresh(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() { // query
			defer wg.Done()
			for ctx.Err() == nil {
				v := cat.View()
				n := 0
				for i := 0; i < v.Len(); i++ {
					if err := v.Reader(i).Scans(Filter{}, func(*core.Scan, enrich.Origin) { n++ }); err != nil {
						t.Errorf("query over %s: %v", v.Name(i), err)
					}
				}
				if uint64(n) != v.NumScans() {
					t.Errorf("view served %d scans, manifest says %d", n, v.NumScans())
				}
				v.Release()
			}
		}()
	}

	wg.Wait()
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	// Drain any final compaction and refresh, then verify the end state.
	if _, err := cat.Refresh(); err != nil {
		t.Fatal(err)
	}
	v := cat.View()
	got := viewScans(t, v)
	v.Release()
	if !reflect.DeepEqual(got, scans) {
		t.Fatalf("store serves %d scans after concurrent run, want %d", len(got), len(scans))
	}
}

// TestManifestAtomicity: a torn manifest tmp file never shadows the real one.
func TestManifestAtomicity(t *testing.T) {
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096})
	scans, _ := testScans(20, 67)
	addAll(t, sw, scans)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(sw.Dir(), ManifestName+".tmp")
	if err := os.WriteFile(tmp, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	sw2, err := OpenSegmentDir(sw.Dir(), SegmentConfig{TelescopeSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer sw2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("torn manifest tmp survived recovery")
	}
	if len(sw2.SealedSegments()) != 1 {
		t.Fatalf("manifest lost: %+v", sw2.SealedSegments())
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, seq := range []uint64{1, 7, 99999999, 123456789} {
		name := SegmentName(seq)
		got, ok := segmentSeq(name)
		if !ok || got != seq {
			t.Fatalf("segmentSeq(%q) = %d,%v", name, got, ok)
		}
	}
	for _, bad := range []string{"seg-.syna", "seg-12ab.syna", "MANIFEST.json", "seg-00000001.syna.open"} {
		if _, ok := segmentSeq(bad); ok {
			t.Fatalf("segmentSeq(%q) accepted", bad)
		}
	}
}

// BenchmarkYearLookup quantifies the yearCache win on the ingest hot path:
// the cached range check versus the time.Unix breakdown it replaced.
func BenchmarkYearLookup(b *testing.B) {
	scans, _ := testScans(4096, 71)
	starts := make([]int64, len(scans))
	for i, sc := range scans {
		starts[i] = sc.Start
	}
	// Emit order is near-chronological in practice; sorted starts model the
	// year locality the cache exploits (testScans interleaves ten years).
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			sink += yearOf(starts[i%len(starts)])
		}
		_ = sink
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		var c yearCache
		var sink uint16
		for i := 0; i < b.N; i++ {
			sink += c.year(starts[i%len(starts)])
		}
		_ = sink
	})
}
