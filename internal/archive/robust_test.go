package archive

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/faultinject"
	"github.com/synscan/synscan/internal/obs"
)

// asVersion1 rewrites a version-2 archive into the legacy CRC-less block
// layout, for exercising the reader's back-compat path without keeping a
// binary fixture around.
func asVersion1(t *testing.T, data []byte) []byte {
	t.Helper()
	r := openArchive(t, data)
	out := append([]byte{}, data[:headerLen]...)
	out[4] = version1
	index := r.Blocks()
	for i := range index {
		z := &index[i]
		comp := data[z.Offset+blockCRCLen : z.Offset+blockCRCLen+uint64(z.CompressedLen)]
		z.Offset = uint64(len(out))
		out = append(out, comp...)
	}
	idx := binary.BigEndian.AppendUint32(nil, uint32(len(index)))
	for i := range index {
		idx = index[i].marshal(idx)
	}
	idxOff := uint64(len(out))
	out = append(out, idx...)
	var tr [trailerLen]byte
	binary.BigEndian.PutUint64(tr[0:8], idxOff)
	binary.BigEndian.PutUint32(tr[8:12], uint32(len(idx)))
	binary.BigEndian.PutUint32(tr[12:16], crc32.ChecksumIEEE(idx))
	copy(tr[16:20], TrailerMagic[:])
	return append(out, tr[:]...)
}

// TestVersion1Compat: a legacy CRC-less file round-trips through the
// current reader bit-identically.
func TestVersion1Compat(t *testing.T) {
	scans, origins := testScans(2000, 11)
	data := writeArchive(t, scans, origins, WriterConfig{
		TelescopeSize: 4096, Origins: true, BlockBytes: 4 << 10,
	})
	v1 := asVersion1(t, data)
	if len(v1) >= len(data) {
		t.Fatalf("v1 rewrite did not shrink the file (%d vs %d bytes)", len(v1), len(data))
	}
	r := openArchive(t, v1)
	var got []*core.Scan
	if err := r.Scans(Filter{}, func(sc *core.Scan, _ enrich.Origin) {
		got = append(got, sc)
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(scans) {
		t.Fatalf("got %d scans, want %d", len(got), len(scans))
	}
	for i := range scans {
		if !reflect.DeepEqual(scans[i], got[i]) {
			t.Fatalf("scan %d mismatch", i)
		}
	}
}

// TestSkipCorrupt is the degraded-mode contract: with a third of the blocks
// damaged, a WithSkipCorrupt reader still streams every intact block in
// order, counts exactly the damaged blocks, and the default reader still
// fails fast on the same bytes.
func TestSkipCorrupt(t *testing.T) {
	scans, origins := testScans(3000, 12)
	data := writeArchive(t, scans, origins, WriterConfig{
		TelescopeSize: 4096, Origins: true, BlockBytes: 4 << 10,
	})
	blocks := openArchive(t, data).Blocks()
	if len(blocks) < 6 {
		t.Fatalf("only %d blocks; test needs several", len(blocks))
	}

	bad := append([]byte{}, data...)
	damaged := map[int]bool{}
	for i := 0; i < len(blocks); i += 3 {
		z := blocks[i]
		lo := int(z.Offset) + blockCRCLen
		faultinject.FlipBytes(bad, uint64(100+i), 3, lo, lo+int(z.CompressedLen))
		damaged[i] = true
	}

	if err := openArchive(t, bad).Scans(Filter{}, func(*core.Scan, enrich.Origin) {}); err == nil {
		t.Fatal("default reader must fail fast on damaged blocks")
	}

	reg := obs.NewRegistry()
	r, err := NewReader(bytes.NewReader(bad), int64(len(bad)), WithSkipCorrupt())
	if err != nil {
		t.Fatal(err)
	}
	r.SetMetrics(reg)
	var got []*core.Scan
	if err := r.Scans(Filter{}, func(sc *core.Scan, _ enrich.Origin) {
		got = append(got, sc)
	}); err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}

	var want []*core.Scan
	off := 0
	for i, z := range blocks {
		if !damaged[i] {
			want = append(want, scans[off:off+int(z.Scans)]...)
		}
		off += int(z.Scans)
	}
	if len(got) != len(want) {
		t.Fatalf("degraded read emitted %d scans, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("scan %d mismatch after skipping corrupt blocks", i)
		}
	}
	if n := r.CorruptBlocks(); n != uint64(len(damaged)) {
		t.Fatalf("CorruptBlocks = %d, want %d", n, len(damaged))
	}
	if n := reg.Snapshot().Counter("faults.archive.corrupt_blocks"); n != uint64(len(damaged)) {
		t.Fatalf("faults.archive.corrupt_blocks = %d, want %d", n, len(damaged))
	}
}

// TestSkipCorruptIndexStillFatal: degraded mode covers block damage only —
// a broken index means no zone maps to navigate by, so open must still fail.
func TestSkipCorruptIndexStillFatal(t *testing.T) {
	scans, origins := testScans(300, 13)
	data := writeArchive(t, scans, origins, WriterConfig{BlockBytes: 4 << 10})
	bad := append([]byte{}, data...)
	bad[len(bad)-trailerLen-3] ^= 0xff
	if _, err := NewReader(bytes.NewReader(bad), int64(len(bad)), WithSkipCorrupt()); err == nil {
		t.Fatal("index damage must fail open even with WithSkipCorrupt")
	}
}

// TestScansContext: a done context aborts the query with its error.
func TestScansContext(t *testing.T) {
	scans, origins := testScans(2000, 14)
	data := writeArchive(t, scans, origins, WriterConfig{BlockBytes: 4 << 10})
	r := openArchive(t, data)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.ScansContext(ctx, Filter{}, func(*core.Scan, enrich.Origin) {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel2()
	if err := r.ScansContext(expired, Filter{}, func(*core.Scan, enrich.Origin) {}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}

	n := 0
	if err := r.ScansContext(context.Background(), Filter{}, func(*core.Scan, enrich.Origin) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != len(scans) {
		t.Fatalf("background context read %d scans, want %d", n, len(scans))
	}
}

// TestEmptyArchiveFile: the zero-block case through the file-based
// Create/Open path — a working reader whose queries emit nothing and
// return nil, with and without degraded mode.
func TestEmptyArchiveFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.syna")
	w, err := Create(path, WriterConfig{TelescopeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, WithSkipCorrupt())
	if err != nil {
		t.Fatalf("Open on zero-block archive: %v", err)
	}
	defer r.Close()
	if r.NumBlocks() != 0 || r.NumScans() != 0 || r.TelescopeSize() != 64 {
		t.Fatalf("blocks %d scans %d telescope %d", r.NumBlocks(), r.NumScans(), r.TelescopeSize())
	}
	if err := r.ScansContext(context.Background(), Filter{}, func(*core.Scan, enrich.Origin) {
		t.Fatal("emit on empty archive")
	}); err != nil {
		t.Fatal(err)
	}
	if r.CorruptBlocks() != 0 {
		t.Fatalf("CorruptBlocks = %d on pristine empty file", r.CorruptBlocks())
	}
}

// TestWriterCloseIdempotent: Close decides its result once; later calls
// replay it without emitting a second index/trailer (which would corrupt the
// file for readers) and Add keeps failing. Regression test for the double-
// Close path, companion to the Add-after-Close check below.
func TestWriterCloseIdempotent(t *testing.T) {
	scans, _ := testScans(500, 21)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterConfig{TelescopeSize: 4096, BlockBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scans {
		if err := w.Add(sc); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	size := buf.Len()
	for i := 0; i < 3; i++ {
		if err := w.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+2, err)
		}
	}
	if buf.Len() != size {
		t.Fatalf("repeated Close grew the stream by %d bytes", buf.Len()-size)
	}
	if err := w.Add(scans[0]); err == nil {
		t.Fatal("Add after Close succeeded")
	}
	r := openArchive(t, buf.Bytes())
	n := 0
	if err := r.Scans(Filter{}, func(*core.Scan, enrich.Origin) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != len(scans) {
		t.Fatalf("read %d scans, want %d", n, len(scans))
	}
}

// TestWriterCloseErrorStable: a Close that fails keeps returning that same
// error, and the underlying file is released exactly once.
func TestWriterCloseErrorStable(t *testing.T) {
	w, err := NewWriter(failWriter{}, WriterConfig{TelescopeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	scans, _ := testScans(1, 22)
	if err := w.Add(scans[0]); err != nil {
		t.Fatal(err)
	}
	first := w.Close()
	if first == nil {
		t.Fatal("Close over a failing writer returned nil")
	}
	if again := w.Close(); again != first {
		t.Fatalf("second Close returned %v, first returned %v", again, first)
	}
}

// failWriter fails every write once the bufio buffer flushes.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }
