package archive

import (
	"testing"

	"github.com/synscan/synscan/internal/alloctest"
)

// TestAllocBudgetBlockRead is the enforced budget for the pooled archive
// read path: reading, checksumming and decompressing one block through the
// scratch pool may allocate at most 2 times per block in steady state. The
// headroom covers sync.Pool misses under GC pressure (one Get-side
// allocation each); everything else is pooled — the read and raw buffers in
// blockScratch, the DEFLATE state in internal/inflate (compress/flate would
// cost ~17 allocations/block rebuilding Huffman link tables per stream, the
// reason the archive carries its own inflater). Reported under
// "archive-block-read".
func TestAllocBudgetBlockRead(t *testing.T) {
	scans, origins := testScans(4000, 23)
	data := writeArchive(t, scans, origins, WriterConfig{TelescopeSize: 4096, BlockBytes: 16 << 10})
	r := openArchive(t, data)
	blocks := r.NumBlocks()
	if blocks < 2 {
		t.Fatalf("want multiple blocks, got %d", blocks)
	}
	visit := func([]byte) error { return nil }
	i := 0
	alloctest.Check(t, "archive-block-read", 2, func() {
		if err := r.RawBlock(i%blocks, visit); err != nil {
			t.Fatal(err)
		}
		i++
	})
}
