package archive

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
)

// TestPoolPoisoning pins the aliasing contract of the block-scratch pool:
// every byte a decoded scan keeps is a copy, so scans handed out by one
// CatalogView generation survive the pool recycling (and here: poisoning)
// that later generations' queries cause. With poisoning on, any record field
// still aliasing pooled scratch turns into 0xdb garbage and fails the
// comparison; under -race, any cross-goroutine scratch sharing is caught by
// the concurrent query storm.
func TestPoolPoisoning(t *testing.T) {
	poisonScratch.Store(true)
	defer poisonScratch.Store(false)

	scans, _ := testScans(3000, 21)
	sw := segStore(t, SegmentConfig{TelescopeSize: 4096, MaxSegmentScans: 400})
	addAll(t, sw, scans[:2000])
	if err := sw.Seal(); err != nil {
		t.Fatal(err)
	}
	cat, err := OpenCatalog(sw.Dir(), CatalogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	v1 := cat.View()
	gen1 := viewScans(t, v1) // decoded through pooled (poisoned-on-release) scratch

	// Churn: a second generation plus a concurrent query storm recycles —
	// and scribbles — every scratch the first read used.
	addAll(t, sw, scans[2000:])
	if err := sw.Seal(); err != nil {
		t.Fatal(err)
	}
	if changed, err := cat.Refresh(); err != nil || !changed {
		t.Fatalf("Refresh: changed=%v err=%v", changed, err)
	}
	v2 := cat.View()
	defer v2.Release()
	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := 0; i < v2.Len(); i++ {
					if err := v2.Reader(i).Scans(Filter{}, func(*core.Scan, enrich.Origin) {}); err != nil {
						errc <- fmt.Errorf("segment %s: %w", v2.Name(i), err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	v1.Release()

	// The generation-1 scans must be byte-identical to a fresh decode (and
	// to what was archived) — no 0xdb poison anywhere.
	fresh := catalogScans(t, sw.Dir(), CatalogConfig{})
	if len(fresh) < len(gen1) {
		t.Fatalf("fresh read returned %d scans, generation 1 had %d", len(fresh), len(gen1))
	}
	for i := range gen1 {
		if !reflect.DeepEqual(gen1[i], fresh[i]) {
			t.Fatalf("scan %d mutated by pool recycling:\n held:  %+v\n fresh: %+v",
				i, gen1[i], fresh[i])
		}
		if !reflect.DeepEqual(gen1[i], scans[i]) {
			t.Fatalf("scan %d drifted from archived value:\n held:     %+v\n archived: %+v",
				i, gen1[i], scans[i])
		}
	}
}

// TestRawBlockPooledRead exercises the exported raw-block surface: every
// block's raw bytes are handed out exactly once with the indexed RawLen, the
// scratch is pool-owned (bytes are only valid inside visit — enforced by the
// poisoning above), and out-of-range indexes fail cleanly.
func TestRawBlockPooledRead(t *testing.T) {
	scans, origins := testScans(2000, 22)
	data := writeArchive(t, scans, origins, WriterConfig{TelescopeSize: 4096, BlockBytes: 8 << 10})
	r := openArchive(t, data)
	if r.NumBlocks() < 2 {
		t.Fatalf("want multiple blocks, got %d", r.NumBlocks())
	}
	var total uint64
	for i, z := range r.Blocks() {
		if err := r.RawBlock(i, func(raw []byte) error {
			if uint32(len(raw)) != z.RawLen {
				return fmt.Errorf("block %d: %d raw bytes, index says %d", i, len(raw), z.RawLen)
			}
			total += uint64(len(raw))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if total == 0 {
		t.Fatal("no raw bytes visited")
	}
	if err := r.RawBlock(-1, func([]byte) error { return nil }); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := r.RawBlock(r.NumBlocks(), func([]byte) error { return nil }); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}
