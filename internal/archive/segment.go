package archive

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/obs"
)

// A segment store turns the sealed single-file SYNA format into a
// continuously-growing directory of archives. The unit of growth is the
// segment: an ordinary SYNA file, bounded in size, scan count and record-time
// span, sealed as detection emits campaigns. Writers never mutate a sealed
// segment — the store only ever appends new segments and (via the Compactor)
// replaces a contiguous run of sealed segments with their merge — so readers
// need no locks: they re-read the manifest and open whatever it names.
//
// On-disk layout of a store directory:
//
//	MANIFEST.json        the catalog of sealed segments, replaced atomically
//	seg-00000001.syna    sealed segment (ordinary SYNA file)
//	seg-00000002.syna
//	seg-00000003.syna.open   the writer's in-progress segment (not yet
//	                         readable; never listed in the manifest)
//
// The manifest is the single source of truth: a segment exists once (and
// only once) its entry is in the manifest. Updates write MANIFEST.json.tmp,
// fsync it, and rename over MANIFEST.json, so a crash leaves either the old
// or the new catalog, never a torn one. The generation counter increments on
// every manifest change; pollers (Catalog, synserve's result cache) use it
// as a cheap "did the segment set move" token.
//
// Crash recovery at open: stray *.open files are deleted (their records are
// re-ingestable from the capture; an unsealed segment has no trailer and is
// unreadable anyway), and sealed seg-*.syna files missing from the manifest
// (a crash between rename and manifest write) are validated and adopted.

// ManifestName is the catalog file inside a segment store directory.
const ManifestName = "MANIFEST.json"

// segPrefix/segSuffix/openSuffix shape segment file names: seg-%08d.syna,
// with .open appended while the segment is still being written.
const (
	segPrefix  = "seg-"
	segSuffix  = ".syna"
	openSuffix = ".open"
)

// SegmentName returns the file name of the sealed segment with the given
// sequence number.
func SegmentName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)
}

// segmentSeq parses a sealed segment file name back to its sequence number.
func segmentSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := name[len(segPrefix) : len(name)-len(segSuffix)]
	if mid == "" {
		return 0, false
	}
	var seq uint64
	for _, c := range mid {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// SegmentMeta is one sealed segment's manifest entry: enough for a poller to
// prune or size-order segments without opening them.
type SegmentMeta struct {
	// Name is the segment's file name within the store directory.
	Name string `json:"name"`
	// Scans and Blocks count the segment's records and SYNA blocks.
	Scans  uint64 `json:"scans"`
	Blocks int    `json:"blocks"`
	// Bytes is the sealed file's size.
	Bytes int64 `json:"bytes"`
	// MinStart and MaxStart bound the records' start times (ns); both zero
	// for an empty segment.
	MinStart int64 `json:"min_start"`
	MaxStart int64 `json:"max_start"`
	// Compacted marks a segment produced by the compactor rather than
	// sealed directly off the detector. Informational: eligibility for
	// further merging is decided by size, so compactor outputs re-merge
	// only while they stay small.
	Compacted bool `json:"compacted,omitempty"`
}

// Manifest is the store catalog. Segments are listed in emit order: every
// scan in Segments[i] was emitted by detection before every scan in
// Segments[i+1], and compaction preserves that order, so a reader that
// streams segments in manifest order reproduces the exact sequence a single
// sealed archive of the same input would.
type Manifest struct {
	// Generation increments on every manifest change.
	Generation uint64 `json:"generation"`
	// NextSeq is the next unused segment sequence number.
	NextSeq uint64 `json:"next_seq"`
	// Segments lists the sealed segments in emit order.
	Segments []SegmentMeta `json:"segments"`
}

// readManifest loads dir's manifest; a missing file is an empty store.
func readManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return &Manifest{NextSeq: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("archive: manifest %s: %w", dir, err)
	}
	if m.NextSeq == 0 {
		m.NextSeq = 1
	}
	return &m, nil
}

// writeManifest atomically replaces dir's manifest: write to a temp file,
// fsync, rename over ManifestName, fsync the directory. A crash at any point
// leaves a complete old or new manifest.
func writeManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, ManifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir best-effort fsyncs a directory so renames inside it are durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// SegmentConfig parameterizes OpenSegmentDir. Zero rotation bounds fall back
// to the defaults below; a segment seals as soon as any bound is exceeded.
type SegmentConfig struct {
	// TelescopeSize, Origins, BlockBytes and Metrics apply to every
	// segment's Writer (see WriterConfig).
	TelescopeSize int
	Origins       bool
	BlockBytes    int
	Metrics       *obs.Registry
	// MaxSegmentBytes seals the open segment once its flushed on-disk size
	// reaches this many bytes (default DefaultMaxSegmentBytes).
	MaxSegmentBytes int64
	// MaxSegmentScans seals the open segment once it holds this many scans
	// (default DefaultMaxSegmentScans).
	MaxSegmentScans uint64
	// MaxSegmentAge seals the open segment once its records span more than
	// this much record time (ns, measured over scan start times; 0 means no
	// age bound). Record time, not wall time, keeps rotation deterministic
	// for replays; live daemons add wall-clock sealing on top via Seal.
	MaxSegmentAge int64
}

// Default rotation bounds.
const (
	// DefaultMaxSegmentBytes keeps segments small enough that compaction
	// and catalog refresh stay incremental.
	DefaultMaxSegmentBytes = 64 << 20
	// DefaultMaxSegmentScans bounds a segment's record count.
	DefaultMaxSegmentScans = 1 << 20
)

// SegmentWriter appends scans to a segment store, sealing bounded segments
// as they fill and publishing each through the manifest. Add/AddWithOrigin/
// Seal/Close are safe for concurrent use with a Catalog polling the same
// directory from other processes; within a process, the SegmentWriter
// serializes itself with an internal mutex (detection emits from one
// goroutine, a wall-clock sealer may call Seal from another).
type SegmentWriter struct {
	dir string
	cfg SegmentConfig

	mu       sync.Mutex
	man      *Manifest
	cur      *Writer // open segment's writer, nil when none
	curPath  string  // open segment's .open file path
	curSeq   uint64
	closed   bool
	closeErr error

	gOpen   *obs.Gauge
	mSealed *obs.Counter
}

// OpenSegmentDir opens (creating if needed) a segment store directory for
// appending. Recovery runs first: leftover *.open files from a crashed
// writer are removed, and sealed segments missing from the manifest (a crash
// between seal-rename and manifest write) are validated and adopted.
func OpenSegmentDir(dir string, cfg SegmentConfig) (*SegmentWriter, error) {
	if cfg.MaxSegmentBytes <= 0 {
		cfg.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if cfg.MaxSegmentScans == 0 {
		cfg.MaxSegmentScans = DefaultMaxSegmentScans
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	sw := &SegmentWriter{
		dir:     dir,
		cfg:     cfg,
		man:     man,
		gOpen:   cfg.Metrics.Gauge("archive.segments.open"),
		mSealed: cfg.Metrics.Counter("archive.segments.sealed"),
	}
	if err := sw.recover(); err != nil {
		return nil, err
	}
	return sw, nil
}

// recover reconciles the directory with the manifest after a crash: any
// interrupted compaction is replayed or rolled back first (see
// recoverCompaction), then stray .open files are dropped and sealed-but-
// unlisted segments adopted.
func (sw *SegmentWriter) recover() error {
	if err := sw.recoverCompaction(); err != nil {
		return err
	}
	entries, err := os.ReadDir(sw.dir)
	if err != nil {
		return err
	}
	inManifest := make(map[string]bool, len(sw.man.Segments))
	for _, s := range sw.man.Segments {
		inManifest[s.Name] = true
	}
	changed := false
	var adopt []SegmentMeta
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, openSuffix) || strings.HasSuffix(name, ".tmp") {
			// A crashed writer's unsealed segment (no trailer, unreadable;
			// its records replay from the capture) or a torn temp file from
			// an atomic-replace sequence. Remove either.
			os.Remove(filepath.Join(sw.dir, name))
			continue
		}
		seq, ok := segmentSeq(name)
		if !ok || inManifest[name] {
			continue
		}
		// Sealed but unlisted: the crash hit between rename and manifest
		// write. Adopt it if it parses as a complete archive.
		meta, err := statSegment(sw.dir, name)
		if err != nil {
			continue
		}
		adopt = append(adopt, meta)
		if seq >= sw.man.NextSeq {
			sw.man.NextSeq = seq + 1
		}
		changed = true
	}
	// Adopted segments sort by sequence number: seal order is emit order.
	sort.Slice(adopt, func(i, j int) bool {
		si, _ := segmentSeq(adopt[i].Name)
		sj, _ := segmentSeq(adopt[j].Name)
		return si < sj
	})
	sw.man.Segments = append(sw.man.Segments, adopt...)

	// Drop manifest entries whose files vanished (they can never serve).
	kept := sw.man.Segments[:0]
	for _, s := range sw.man.Segments {
		if _, err := os.Stat(filepath.Join(sw.dir, s.Name)); err == nil {
			kept = append(kept, s)
		} else {
			changed = true
		}
	}
	sw.man.Segments = kept
	if changed {
		sw.man.Generation++
		return writeManifest(sw.dir, sw.man)
	}
	return nil
}

// statSegment opens one sealed segment just long enough to build its
// manifest entry.
func statSegment(dir, name string) (SegmentMeta, error) {
	path := filepath.Join(dir, name)
	rd, err := Open(path)
	if err != nil {
		return SegmentMeta{}, err
	}
	defer rd.Close()
	fi, err := os.Stat(path)
	if err != nil {
		return SegmentMeta{}, err
	}
	meta := SegmentMeta{
		Name:   name,
		Scans:  rd.NumScans(),
		Blocks: rd.NumBlocks(),
		Bytes:  fi.Size(),
	}
	for i, z := range rd.Blocks() {
		if i == 0 || z.MinStart < meta.MinStart {
			meta.MinStart = z.MinStart
		}
		if z.MaxStart > meta.MaxStart {
			meta.MaxStart = z.MaxStart
		}
	}
	return meta, nil
}

// Dir returns the store directory.
func (sw *SegmentWriter) Dir() string { return sw.dir }

// Generation returns the manifest generation (the count of manifest changes
// since the store was created).
func (sw *SegmentWriter) Generation() uint64 {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.man.Generation
}

// SealedSegments returns a copy of the current manifest's segment list.
func (sw *SegmentWriter) SealedSegments() []SegmentMeta {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	out := make([]SegmentMeta, len(sw.man.Segments))
	copy(out, sw.man.Segments)
	return out
}

// Add appends one scan, sealing the open segment first if a rotation bound
// tripped. See Writer.Add for the origins restriction.
func (sw *SegmentWriter) Add(sc *core.Scan) error {
	if sw.cfg.Origins {
		return fmt.Errorf("archive: Add on an origins segment store (use AddWithOrigin)")
	}
	return sw.add(sc, nil)
}

// AddWithOrigin appends one scan with its enrichment origin. Valid only on a
// store opened with SegmentConfig.Origins.
func (sw *SegmentWriter) AddWithOrigin(sc *core.Scan, o enrich.Origin) error {
	if !sw.cfg.Origins {
		return ErrNoOrigins
	}
	return sw.add(sc, &o)
}

func (sw *SegmentWriter) add(sc *core.Scan, o *enrich.Origin) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.closed {
		return fmt.Errorf("archive: Add after Close on segment store %s", sw.dir)
	}
	if sw.cur != nil && sw.shouldSeal(sc) {
		if err := sw.sealLocked(); err != nil {
			return err
		}
	}
	if sw.cur == nil {
		if err := sw.openSegment(); err != nil {
			return err
		}
	}
	var err error
	if o != nil {
		err = sw.cur.AddWithOrigin(sc, *o)
	} else {
		err = sw.cur.Add(sc)
	}
	return err
}

// shouldSeal reports whether adding sc to the open segment would exceed a
// rotation bound. Called with the lock held and sw.cur non-nil.
func (sw *SegmentWriter) shouldSeal(sc *core.Scan) bool {
	if sw.cur.NumScans() >= sw.cfg.MaxSegmentScans {
		return true
	}
	if int64(sw.cur.Offset()) >= sw.cfg.MaxSegmentBytes {
		return true
	}
	if sw.cfg.MaxSegmentAge > 0 && sw.cur.NumScans() > 0 {
		min, max := sw.cur.StartBounds()
		if sc.Start > max {
			max = sc.Start
		}
		if sc.Start < min {
			min = sc.Start
		}
		if max-min > sw.cfg.MaxSegmentAge {
			return true
		}
	}
	return false
}

// openSegment starts a new .open segment file. Lock held.
func (sw *SegmentWriter) openSegment() error {
	seq := sw.man.NextSeq
	path := filepath.Join(sw.dir, SegmentName(seq)+openSuffix)
	w, err := Create(path, WriterConfig{
		TelescopeSize: sw.cfg.TelescopeSize,
		Origins:       sw.cfg.Origins,
		BlockBytes:    sw.cfg.BlockBytes,
		Metrics:       sw.cfg.Metrics,
	})
	if err != nil {
		return err
	}
	sw.cur, sw.curPath, sw.curSeq = w, path, seq
	sw.man.NextSeq = seq + 1
	sw.gOpen.Set(1)
	return nil
}

// Seal closes the open segment (if it holds any scans) and publishes it in
// the manifest. A live daemon calls it on a wall-clock timer so quiet
// periods still bound segment latency; Add calls it internally on rotation
// bounds. Sealing an empty or absent open segment is a no-op.
func (sw *SegmentWriter) Seal() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.closed {
		return fmt.Errorf("archive: Seal after Close on segment store %s", sw.dir)
	}
	if sw.cur == nil {
		return nil
	}
	return sw.sealLocked()
}

// sealLocked finishes the open segment: Writer.Close writes index+trailer,
// the .open file renames to its sealed name, the directory syncs, and the
// manifest gains the entry. Lock held; sw.cur non-nil.
func (sw *SegmentWriter) sealLocked() error {
	w, path, seq := sw.cur, sw.curPath, sw.curSeq
	sw.cur, sw.curPath, sw.curSeq = nil, "", 0
	sw.gOpen.Set(0)
	if w.NumScans() == 0 {
		// Nothing archived: discard the empty file, and recycle the number
		// if no one (e.g. the compactor) claimed a later one meanwhile.
		w.Close()
		os.Remove(path)
		if sw.man.NextSeq == seq+1 {
			sw.man.NextSeq = seq
		}
		return nil
	}
	nScans := w.NumScans()
	minStart, maxStart := w.StartBounds()
	if err := w.Close(); err != nil {
		os.Remove(path)
		return err
	}
	nBlocks := len(w.index) // complete: Close flushed the last partial block
	name := SegmentName(seq)
	final := filepath.Join(sw.dir, name)
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if err := os.Rename(path, final); err != nil {
		return err
	}
	syncDir(sw.dir)
	sw.man.Segments = append(sw.man.Segments, SegmentMeta{
		Name:     name,
		Scans:    nScans,
		Blocks:   nBlocks,
		Bytes:    fi.Size(),
		MinStart: minStart,
		MaxStart: maxStart,
	})
	sw.man.Generation++
	if err := writeManifest(sw.dir, sw.man); err != nil {
		return err
	}
	sw.mSealed.Inc()
	return nil
}

// Close seals any open segment and shuts the writer down. Idempotent: later
// calls return the first call's result.
func (sw *SegmentWriter) Close() error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.closed {
		return sw.closeErr
	}
	sw.closed = true
	if sw.cur != nil {
		sw.closeErr = sw.sealLocked()
	}
	return sw.closeErr
}

// replaceRun swaps manifest entries [at, at+n) for the single merged entry,
// bumps the generation, and persists — the compactor's publish step. Lock
// held by the caller via lockedManifestUpdate.
func (sw *SegmentWriter) replaceRun(at, n int, merged SegmentMeta) error {
	segs := make([]SegmentMeta, 0, len(sw.man.Segments)-n+1)
	segs = append(segs, sw.man.Segments[:at]...)
	segs = append(segs, merged)
	segs = append(segs, sw.man.Segments[at+n:]...)
	sw.man.Segments = segs
	sw.man.Generation++
	return writeManifest(sw.dir, sw.man)
}

// nextSeqLocked hands out a fresh segment sequence number (the compactor
// names its output with one). Lock held by the caller.
func (sw *SegmentWriter) nextSeqLocked() uint64 {
	seq := sw.man.NextSeq
	sw.man.NextSeq = seq + 1
	return seq
}
