package archive

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/obs"
)

// CompactorConfig parameterizes NewCompactor. The zero value gets the
// defaults below.
type CompactorConfig struct {
	// MinRun is the minimum length of a contiguous run of small segments
	// worth merging (default DefaultCompactMinRun).
	MinRun int
	// MaxInputBytes excludes segments at or above this size from being
	// merge inputs (default DefaultCompactMaxInputBytes): once a segment has
	// grown past it, re-copying it buys little pruning and costs a full
	// rewrite — the classic LSM size-tiering cutoff.
	MaxInputBytes int64
	// Metrics, when non-nil, counts runs/inputs/bytes and times merges:
	// archive.compaction.runs, archive.segments.compacted,
	// archive.compaction.bytes_read, archive.compaction.bytes_written,
	// archive.compaction.errors, archive.compaction.merge_ns.
	Metrics *obs.Registry
}

// Default compaction policy bounds.
const (
	DefaultCompactMinRun        = 4
	DefaultCompactMaxInputBytes = 8 << 20
)

// Compactor merges runs of small sealed segments into single larger ones,
// LSM-style, inside a live segment store. A merge rewrites the inputs'
// records — in manifest order, so the store's global emit order is preserved
// byte for byte — into one new segment with freshly built, full-size blocks
// and recomputed zone maps (many tiny segments have tiny blocks with wide,
// overlapping zone maps; the merge re-sorts that index into tight ones).
// The manifest swap is atomic: readers either see the inputs or the merged
// output, never both, and in-flight queries on retired inputs finish over
// their still-open descriptors.
//
// A Compactor shares its SegmentWriter's manifest lock, so sealing and
// compacting interleave safely. Not safe for concurrent use by multiple
// goroutines.
type Compactor struct {
	sw  *SegmentWriter
	cfg CompactorConfig

	mRuns, mInputs, mBytesIn, mBytesOut, mErrors *obs.Counter
	mMergeNS                                     *obs.Histogram
}

// NewCompactor creates a compactor over sw's store.
func NewCompactor(sw *SegmentWriter, cfg CompactorConfig) *Compactor {
	if cfg.MinRun <= 1 {
		cfg.MinRun = DefaultCompactMinRun
	}
	if cfg.MaxInputBytes <= 0 {
		cfg.MaxInputBytes = DefaultCompactMaxInputBytes
	}
	return &Compactor{
		sw:  sw,
		cfg: cfg,

		mRuns:     cfg.Metrics.Counter("archive.compaction.runs"),
		mInputs:   cfg.Metrics.Counter("archive.segments.compacted"),
		mBytesIn:  cfg.Metrics.Counter("archive.compaction.bytes_read"),
		mBytesOut: cfg.Metrics.Counter("archive.compaction.bytes_written"),
		mErrors:   cfg.Metrics.Counter("archive.compaction.errors"),
		mMergeNS:  cfg.Metrics.Histogram("archive.compaction.merge_ns"),
	}
}

// pickRun finds the first contiguous run of at least MinRun eligible
// segments, claims an output sequence number, and returns the run's position
// and metas. Called with the manifest lock held; n == 0 means nothing to do.
func (c *Compactor) pickRun() (at, n int, inputs []SegmentMeta, outSeq uint64) {
	segs := c.sw.man.Segments
	runStart, runLen := -1, 0
	for i := 0; i <= len(segs); i++ {
		eligible := i < len(segs) && segs[i].Bytes < c.cfg.MaxInputBytes
		if eligible {
			if runStart < 0 {
				runStart = i
			}
			runLen++
			continue
		}
		if runLen >= c.cfg.MinRun {
			break
		}
		runStart, runLen = -1, 0
	}
	if runLen < c.cfg.MinRun {
		return 0, 0, nil, 0
	}
	inputs = make([]SegmentMeta, runLen)
	copy(inputs, segs[runStart:runStart+runLen])
	return runStart, runLen, inputs, c.sw.nextSeqLocked()
}

// IntentName is the compaction intent journal inside a store directory. It
// exists only while a merge's publish sequence is in flight; recovery
// replays or rolls back whatever it describes, so a crash at any point of a
// compaction can neither duplicate scans (merged output adopted while its
// inputs are still listed) nor lose them.
const IntentName = "COMPACT.json"

// compactIntent is the journal's content: what the in-flight merge writes
// and which manifest entries it replaces.
type compactIntent struct {
	Output SegmentMeta `json:"output"`
	Inputs []string    `json:"inputs"`
}

// CompactOnce merges the first eligible run of small segments, returning how
// many inputs were merged (0 when the store needs no compaction). The heavy
// read-merge-write runs without the manifest lock; only run selection and
// the final swap hold it, so sealing and queries proceed during the merge.
func (c *Compactor) CompactOnce() (merged int, err error) {
	c.sw.mu.Lock()
	if c.sw.closed {
		c.sw.mu.Unlock()
		return 0, fmt.Errorf("archive: compaction on closed segment store %s", c.sw.dir)
	}
	at, n, inputs, outSeq := c.pickRun()
	c.sw.mu.Unlock()
	if n == 0 {
		return 0, nil
	}

	names := make([]string, len(inputs))
	var bytesIn int64
	for i, in := range inputs {
		names[i] = in.Name
		bytesIn += in.Bytes
	}

	// Journal the intent before the output becomes a sealed seg-*.syna
	// file: if we crash after the rename but before the manifest swap,
	// recovery must know the output replaces these inputs rather than
	// adopting it alongside them.
	intent := compactIntent{Output: SegmentMeta{Name: SegmentName(outSeq)}, Inputs: names}
	if err := writeIntent(c.sw.dir, &intent); err != nil {
		c.mErrors.Inc()
		return 0, err
	}

	meta, err := c.merge(inputs, outSeq)
	if err != nil {
		c.mErrors.Inc()
		os.Remove(filepath.Join(c.sw.dir, IntentName))
		return 0, err
	}

	// Publish: swap the inputs for the merged segment in one manifest write.
	// Only the compactor removes or reorders entries and seals only append,
	// so the run is still at the same position.
	c.sw.mu.Lock()
	err = c.sw.replaceRun(at, n, meta)
	c.sw.mu.Unlock()
	if err != nil {
		c.mErrors.Inc()
		os.Remove(filepath.Join(c.sw.dir, meta.Name))
		os.Remove(filepath.Join(c.sw.dir, IntentName))
		return 0, err
	}

	removeSegmentFiles(c.sw.dir, names)
	os.Remove(filepath.Join(c.sw.dir, IntentName))

	c.mRuns.Inc()
	c.mInputs.Add(uint64(n))
	c.mBytesIn.Add(uint64(bytesIn))
	c.mBytesOut.Add(uint64(meta.Bytes))
	return n, nil
}

// recoverCompaction replays or rolls back an interrupted compaction at store
// open, before the ordinary directory reconciliation runs. Outcomes:
//
//   - output incomplete (missing, or not a valid sealed archive): roll back —
//     delete leftovers, keep the inputs; the merge never happened.
//   - output complete, inputs still listed: roll forward — perform the
//     manifest swap the crash preempted, then delete the input files.
//   - output complete, inputs already delisted: the swap landed; just delete
//     any input files the crash left behind.
func (sw *SegmentWriter) recoverCompaction() error {
	intentPath := filepath.Join(sw.dir, IntentName)
	data, err := os.ReadFile(intentPath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var in compactIntent
	if err := json.Unmarshal(data, &in); err != nil || in.Output.Name == "" {
		// The intent is written atomically, so garbage here means something
		// other than a crashed compactor; don't guess, just drop it.
		os.Remove(intentPath)
		return nil
	}

	meta, statErr := statSegment(sw.dir, in.Output.Name)
	if statErr != nil {
		// Roll back: the merge never produced a complete output. A partial
		// sealed-named file must not be adopted later.
		os.Remove(filepath.Join(sw.dir, in.Output.Name))
		return os.Remove(intentPath)
	}
	meta.Compacted = true
	if seq, ok := segmentSeq(meta.Name); ok && seq >= sw.man.NextSeq {
		sw.man.NextSeq = seq + 1
	}

	pos := make(map[string]int, len(sw.man.Segments))
	for i, s := range sw.man.Segments {
		pos[s.Name] = i
	}
	contiguous := true
	first := -1
	for i, name := range in.Inputs {
		idx, ok := pos[name]
		if !ok {
			contiguous = false
			break
		}
		if i == 0 {
			first = idx
		} else if idx != first+i {
			contiguous = false
			break
		}
	}
	switch {
	case contiguous && first >= 0:
		// Roll forward: the swap the crash preempted.
		if err := sw.replaceRun(first, len(in.Inputs), meta); err != nil {
			return err
		}
		removeSegmentFiles(sw.dir, in.Inputs)
	case !listedAny(pos, in.Inputs):
		// Swap already landed; finish the input cleanup.
		removeSegmentFiles(sw.dir, in.Inputs)
	default:
		// Inputs half-listed: cannot have come from a single crashed
		// compaction against this manifest. Abort the merge; inputs win.
		if _, listed := pos[meta.Name]; !listed {
			os.Remove(filepath.Join(sw.dir, meta.Name))
		}
	}
	return os.Remove(intentPath)
}

// listedAny reports whether any of names appears in pos.
func listedAny(pos map[string]int, names []string) bool {
	for _, n := range names {
		if _, ok := pos[n]; ok {
			return true
		}
	}
	return false
}

// writeIntent persists the compaction journal durably (same temp+rename+sync
// dance as the manifest).
func writeIntent(dir string, in *compactIntent) error {
	data, err := json.Marshal(in)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, IntentName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if f, err := os.Open(tmp); err == nil {
		f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, filepath.Join(dir, IntentName)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// merge streams every input's records, in order, into one new sealed
// segment file and returns its manifest entry.
func (c *Compactor) merge(inputs []SegmentMeta, outSeq uint64) (SegmentMeta, error) {
	sp := obs.StartSpan(c.mMergeNS)
	defer sp.End()

	name := SegmentName(outSeq)
	openPath := filepath.Join(c.sw.dir, name+openSuffix)
	w, err := Create(openPath, WriterConfig{
		TelescopeSize: c.sw.cfg.TelescopeSize,
		Origins:       c.sw.cfg.Origins,
		BlockBytes:    c.sw.cfg.BlockBytes,
		Metrics:       c.sw.cfg.Metrics,
	})
	if err != nil {
		return SegmentMeta{}, err
	}
	abort := func(err error) (SegmentMeta, error) {
		w.Close()
		os.Remove(openPath)
		return SegmentMeta{}, err
	}

	for _, in := range inputs {
		rd, err := Open(filepath.Join(c.sw.dir, in.Name))
		if err != nil {
			// An unreadable input would make the merge lossy; leave the
			// store alone and surface the problem instead.
			return abort(fmt.Errorf("archive: compaction input %s: %w", in.Name, err))
		}
		ctx, cancel := context.WithCancel(context.Background())
		var addErr error
		err = rd.ScansContext(ctx, Filter{}, func(sc *core.Scan, o enrich.Origin) {
			if addErr != nil {
				return
			}
			if c.sw.cfg.Origins {
				addErr = w.AddWithOrigin(sc, o)
			} else {
				addErr = w.Add(sc)
			}
			if addErr != nil {
				cancel()
			}
		})
		cancel()
		rd.Close()
		if addErr != nil {
			return abort(addErr)
		}
		if err != nil && addErr == nil && ctx.Err() == nil {
			return abort(fmt.Errorf("archive: compaction input %s: %w", in.Name, err))
		}
	}

	nScans := w.NumScans()
	minStart, maxStart := w.StartBounds()
	if err := w.Close(); err != nil {
		os.Remove(openPath)
		return SegmentMeta{}, err
	}
	nBlocks := len(w.index)
	final := filepath.Join(c.sw.dir, name)
	fi, err := os.Stat(openPath)
	if err != nil {
		return SegmentMeta{}, err
	}
	if err := os.Rename(openPath, final); err != nil {
		os.Remove(openPath)
		return SegmentMeta{}, err
	}
	syncDir(c.sw.dir)
	return SegmentMeta{
		Name:      name,
		Scans:     nScans,
		Blocks:    nBlocks,
		Bytes:     fi.Size(),
		MinStart:  minStart,
		MaxStart:  maxStart,
		Compacted: true,
	}, nil
}

// Run compacts on a timer until ctx is done, draining every eligible run at
// each tick. Errors are counted (archive.compaction.errors) and retried next
// tick rather than stopping the loop — a compactor that dies silently turns
// a live store into an ever-growing pile of tiny segments.
func (c *Compactor) Run(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 30 * time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			for {
				n, err := c.CompactOnce()
				if n == 0 || err != nil {
					break
				}
			}
		}
	}
}
