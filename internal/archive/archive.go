// Package archive is the pipeline's persistent campaign store. Every
// analysis in the paper (§4–§6) is a query over the set of detected
// campaigns — by year, tool, port set, rate, origin — yet detection is three
// orders of magnitude more expensive than any one query. The archive splits
// the two: the detector runs once and spools its campaigns into an on-disk
// file; queries then run forever against the file without touching raw
// packets.
//
// Format ("SYNA", version 2):
//
//	header:   magic "SYNA" | version u8 | flags u8 | telescopeSize u32 |
//	          reserved u16                                  (12 bytes, BE)
//	blocks:   back-to-back checksummed DEFLATE streams of scan records
//	          (offsets live in the index, not the stream): each block is a
//	          CRC-32 (IEEE) of the compressed payload (u32 BE) followed by
//	          the DEFLATE stream, bounded to ~BlockBytes of uncompressed
//	          payload
//	index:    u32 block count, then one fixed 64-byte zone-map entry per
//	          block (see ZoneMap)
//	trailer:  index offset u64 | index length u32 | CRC-32 (IEEE) of the
//	          index | magic "SYNX"                          (20 bytes, BE)
//
// Version 1 files — identical except that blocks carry no CRC prefix — are
// still readable. The per-block checksum is what makes degraded-mode reads
// possible: a reader opened WithSkipCorrupt verifies each block before
// decompressing it and skips damaged blocks (counting them in the
// faults.archive.corrupt_blocks metric and Reader.CorruptBlocks) instead of
// failing the whole query, so one flipped bit in a decade-long archive
// costs one block of results, not the file.
//
// Records are delta/varint encoded within a block (start-time deltas between
// consecutive records, ascending port-list deltas, varint counters), so the
// DEFLATE layer mostly squeezes structural redundancy rather than numeric
// width. Each block's zone map carries min/max start time, min/max year,
// a tool bitmap, a 64-bit port-set fingerprint and the source-address range,
// letting a Reader prove "no scan in this block can match" and skip the
// block without decompressing it (predicate pushdown; see Filter).
//
// The flags bit 0 records whether scans carry their enrichment Origin: the
// simulation path archives origins (it owns the registry), the replay path
// does not.
package archive

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/fingerprint"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/tools"
)

// Magic identifies an archive file; TrailerMagic closes it.
var (
	Magic        = [4]byte{'S', 'Y', 'N', 'A'}
	TrailerMagic = [4]byte{'S', 'Y', 'N', 'X'}
)

const (
	version1    = 1 // legacy: blocks carry no CRC prefix
	version2    = 2 // adds a CRC-32 of the compressed payload before each block
	version     = 3 // current: records carry two-phase attributes (flagPhases)
	headerLen   = 12
	trailerLen  = 20
	zoneMapLen  = 64
	blockCRCLen = 4

	flagOrigins = 1 << 0
	// flagPhases records that each record carries the reactive-telescope
	// phase suffix (TwoPhase flag, ISN class, linked-destination and
	// handshake-packet counters, payload bytes and prefix). Files without
	// the flag decode with zero-valued phase attributes.
	flagPhases = 1 << 1

	// DefaultBlockBytes bounds a block's uncompressed payload. 256 KiB keeps
	// blocks large enough for DEFLATE to find structure and small enough
	// that zone-map pruning has real resolution (a decade at default scale
	// spans dozens of blocks).
	DefaultBlockBytes = 256 << 10
)

// Errors surfaced by the codec.
var (
	ErrBadMagic   = errors.New("archive: bad magic")
	ErrBadVersion = errors.New("archive: unsupported version")
	ErrCorrupt    = errors.New("archive: corrupt file")
	ErrNoOrigins  = errors.New("archive: file carries no origins")
)

// ZoneMap summarizes one block for predicate pushdown: a query whose
// predicate provably excludes every value range below can skip the block
// without decompressing it.
type ZoneMap struct {
	// Offset and CompressedLen locate the DEFLATE stream in the file.
	Offset        uint64
	CompressedLen uint32
	// RawLen is the uncompressed payload length.
	RawLen uint32
	// Scans counts records in the block; Qualified counts those over the
	// campaign thresholds.
	Scans     uint32
	Qualified uint32
	// MinStart and MaxStart bound the records' start times (ns).
	MinStart, MaxStart int64
	// MinSrc and MaxSrc bound the records' source addresses.
	MinSrc, MaxSrc uint32
	// ToolBits has bit t set when some record is attributed to Tool(t).
	ToolBits uint16
	// MinYear and MaxYear bound the records' start-time years (UTC).
	MinYear, MaxYear uint16
	// PortsFP is a 64-bit Bloom fingerprint of every port targeted in the
	// block (see portBit): a port whose bit is clear is provably absent.
	PortsFP uint64
	// TwoPhase counts records with the two-phase flag set, saturating at
	// 65535 (a block never holds that many records in practice). It lives in
	// bytes the pre-phase format left zero, so old files read back as
	// "no two-phase records" — which is exactly what they contain.
	TwoPhase uint16
}

// portBit maps a port to its fingerprint bit: the top six bits of a
// Knuth-multiplicative hash, so dense low port ranges spread over the word.
func portBit(p uint16) uint64 {
	return 1 << (uint32(p) * 2654435761 >> 26)
}

// MayContainPort reports whether the block's port fingerprint admits p.
// False proves no record in the block targets p; true is conservative
// (Bloom collisions). External predicate implementations use this to build
// port pushdown without access to the fingerprint hash.
func (z *ZoneMap) MayContainPort(p uint16) bool {
	return z.PortsFP&portBit(p) != 0
}

// yearOf returns the UTC calendar year of a nanosecond timestamp.
func yearOf(ns int64) int {
	return time.Unix(0, ns).UTC().Year()
}

// yearCache memoizes one calendar year's nanosecond boundaries so the write
// path's per-record year lookup is a two-comparison range check instead of a
// time.Unix breakdown. Consecutive records overwhelmingly share a year (a
// block spans minutes of record time; years change once per ~31.5M seconds),
// so the slow path runs a handful of times per archive. Not safe for
// concurrent use — each Writer owns one.
type yearCache struct {
	lo, hi int64 // [lo, hi) bounds the cached year; hi == 0 means empty
	y      uint16
}

// year returns uint16(yearOf(ns)), consulting the cached boundaries first.
func (c *yearCache) year(ns int64) uint16 {
	if c.hi != 0 && ns >= c.lo && ns < c.hi {
		return c.y
	}
	y := yearOf(ns)
	// Years whose full [Jan 1, next Jan 1) span fits in int64 nanoseconds
	// are cacheable; the extremes (outside 1678–2261) fall back to the
	// direct computation every time, which only synthetic inputs hit.
	if y > 1678 && y < 2261 {
		c.lo = time.Date(y, time.January, 1, 0, 0, 0, 0, time.UTC).UnixNano()
		c.hi = time.Date(y+1, time.January, 1, 0, 0, 0, 0, time.UTC).UnixNano()
		c.y = uint16(y)
	} else {
		c.hi = 0
	}
	return uint16(y)
}

// reset clears z to the open state for a new block.
func (z *ZoneMap) reset() {
	*z = ZoneMap{
		MinStart: math.MaxInt64, MaxStart: math.MinInt64,
		MinSrc: math.MaxUint32, MaxSrc: 0,
		MinYear: math.MaxUint16, MaxYear: 0,
	}
}

// observe folds one record into the zone map. y must be the record's UTC
// start year (the caller's yearCache supplies it without a per-record
// time.Unix breakdown — this is the ingest hot path).
func (z *ZoneMap) observe(sc *core.Scan, y uint16) {
	z.Scans++
	if sc.Qualified {
		z.Qualified++
	}
	if sc.Start < z.MinStart {
		z.MinStart = sc.Start
	}
	if sc.Start > z.MaxStart {
		z.MaxStart = sc.Start
	}
	if sc.Src < z.MinSrc {
		z.MinSrc = sc.Src
	}
	if sc.Src > z.MaxSrc {
		z.MaxSrc = sc.Src
	}
	if y < z.MinYear {
		z.MinYear = y
	}
	if y > z.MaxYear {
		z.MaxYear = y
	}
	z.ToolBits |= 1 << uint(sc.Tool)
	if sc.TwoPhase && z.TwoPhase < math.MaxUint16 {
		z.TwoPhase++
	}
	for _, p := range sc.Ports {
		z.PortsFP |= portBit(p)
	}
}

// marshal appends the fixed-width index entry.
func (z *ZoneMap) marshal(b []byte) []byte {
	var e [zoneMapLen]byte
	binary.BigEndian.PutUint64(e[0:8], z.Offset)
	binary.BigEndian.PutUint32(e[8:12], z.CompressedLen)
	binary.BigEndian.PutUint32(e[12:16], z.RawLen)
	binary.BigEndian.PutUint32(e[16:20], z.Scans)
	binary.BigEndian.PutUint32(e[20:24], z.Qualified)
	binary.BigEndian.PutUint64(e[24:32], uint64(z.MinStart))
	binary.BigEndian.PutUint64(e[32:40], uint64(z.MaxStart))
	binary.BigEndian.PutUint32(e[40:44], z.MinSrc)
	binary.BigEndian.PutUint32(e[44:48], z.MaxSrc)
	binary.BigEndian.PutUint16(e[48:50], z.ToolBits)
	binary.BigEndian.PutUint16(e[50:52], z.MinYear)
	binary.BigEndian.PutUint16(e[52:54], z.MaxYear)
	binary.BigEndian.PutUint64(e[54:62], z.PortsFP)
	binary.BigEndian.PutUint16(e[62:64], z.TwoPhase)
	return append(b, e[:]...)
}

// unmarshalZoneMap decodes one fixed-width index entry.
func unmarshalZoneMap(e []byte) ZoneMap {
	return ZoneMap{
		Offset:        binary.BigEndian.Uint64(e[0:8]),
		CompressedLen: binary.BigEndian.Uint32(e[8:12]),
		RawLen:        binary.BigEndian.Uint32(e[12:16]),
		Scans:         binary.BigEndian.Uint32(e[16:20]),
		Qualified:     binary.BigEndian.Uint32(e[20:24]),
		MinStart:      int64(binary.BigEndian.Uint64(e[24:32])),
		MaxStart:      int64(binary.BigEndian.Uint64(e[32:40])),
		MinSrc:        binary.BigEndian.Uint32(e[40:44]),
		MaxSrc:        binary.BigEndian.Uint32(e[44:48]),
		ToolBits:      binary.BigEndian.Uint16(e[48:50]),
		MinYear:       binary.BigEndian.Uint16(e[50:52]),
		MaxYear:       binary.BigEndian.Uint16(e[52:54]),
		PortsFP:       binary.BigEndian.Uint64(e[54:62]),
		TwoPhase:      binary.BigEndian.Uint16(e[62:64]),
	}
}

// appendRecord delta/varint encodes one scan (and optionally its origin)
// onto b. prevStart is the previous record's start time within the block
// (zero for the first record).
func appendRecord(b []byte, sc *core.Scan, o *enrich.Origin, prevStart int64) []byte {
	b = binary.AppendUvarint(b, zigzag(sc.Start-prevStart))
	b = binary.AppendUvarint(b, uint64(sc.End-sc.Start))
	b = binary.BigEndian.AppendUint32(b, sc.Src)
	b = binary.AppendUvarint(b, sc.Packets)
	b = binary.AppendUvarint(b, uint64(sc.DistinctDsts))
	b = binary.AppendUvarint(b, uint64(len(sc.Ports)))
	prev := uint16(0)
	for i, p := range sc.Ports {
		if i == 0 {
			b = binary.AppendUvarint(b, uint64(p))
		} else {
			b = binary.AppendUvarint(b, uint64(p-prev))
		}
		prev = p
	}
	tq := byte(sc.Tool) & 0x3f
	if sc.Qualified {
		tq |= 0x80
	}
	b = append(b, tq)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(sc.RatePPS))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(sc.Coverage))
	// Phase suffix (flagPhases): flag byte, then the counters that are
	// usually zero for passive captures — a varint-friendly layout.
	ph := byte(sc.ISN) << 1 & 0x06
	if sc.TwoPhase {
		ph |= 0x01
	}
	if len(sc.Payload) > 0 {
		ph |= 0x08
	}
	b = append(b, ph)
	b = binary.AppendUvarint(b, uint64(sc.LinkedDsts))
	b = binary.AppendUvarint(b, sc.HandshakePackets)
	b = binary.AppendUvarint(b, sc.PayloadBytes)
	if len(sc.Payload) > 0 {
		b = append(b, byte(len(sc.Payload)))
		b = append(b, sc.Payload...)
	}
	if o != nil {
		b = appendString(b, o.Country)
		b = binary.AppendUvarint(b, uint64(o.ASN))
		b = append(b, byte(o.Type))
		b = binary.AppendUvarint(b, zigzag(int64(o.OrgID)))
		b = appendString(b, o.OrgName)
	}
	return b
}

// decodeRecord is the inverse of appendRecord. It decodes one record from
// b into sc (and o when withOrigin), returning the remaining bytes and the
// record's start time for the next delta.
func decodeRecord(b []byte, sc *core.Scan, o *enrich.Origin, withOrigin, withPhases bool, prevStart int64) ([]byte, int64, error) {
	delta, b, err := readUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	sc.Start = prevStart + unzigzag(delta)
	durU, b, err := readUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	sc.End = sc.Start + int64(durU)
	if len(b) < 4 {
		return nil, 0, ErrCorrupt
	}
	sc.Src = binary.BigEndian.Uint32(b)
	b = b[4:]
	if sc.Packets, b, err = readUvarint(b); err != nil {
		return nil, 0, err
	}
	dsts, b, err := readUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	if dsts > math.MaxInt32 {
		return nil, 0, ErrCorrupt
	}
	sc.DistinctDsts = int(dsts)
	nPorts, b, err := readUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	if nPorts > 65536 {
		return nil, 0, ErrCorrupt
	}
	sc.Ports = make([]uint16, nPorts)
	var prev uint64
	for i := range sc.Ports {
		d, rest, err := readUvarint(b)
		if err != nil {
			return nil, 0, err
		}
		b = rest
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		if prev > math.MaxUint16 {
			return nil, 0, ErrCorrupt
		}
		sc.Ports[i] = uint16(prev)
	}
	if len(b) < 1+8+8 {
		return nil, 0, ErrCorrupt
	}
	sc.Tool = tools.Tool(b[0] & 0x3f)
	sc.Qualified = b[0]&0x80 != 0
	sc.RatePPS = math.Float64frombits(binary.BigEndian.Uint64(b[1:9]))
	sc.Coverage = math.Float64frombits(binary.BigEndian.Uint64(b[9:17]))
	b = b[17:]
	sc.TwoPhase, sc.ISN, sc.LinkedDsts = false, fingerprint.ISNUnknown, 0
	sc.HandshakePackets, sc.PayloadBytes, sc.Payload = 0, 0, nil
	sc.ScoutPackets = sc.Packets
	if withPhases {
		if len(b) < 1 {
			return nil, 0, ErrCorrupt
		}
		ph := b[0]
		b = b[1:]
		sc.TwoPhase = ph&0x01 != 0
		sc.ISN = fingerprint.ISNClass(ph >> 1 & 0x03)
		linked, rest, err := readUvarint(b)
		if err != nil {
			return nil, 0, err
		}
		b = rest
		if linked > math.MaxInt32 {
			return nil, 0, ErrCorrupt
		}
		sc.LinkedDsts = int(linked)
		if sc.HandshakePackets, b, err = readUvarint(b); err != nil {
			return nil, 0, err
		}
		if sc.HandshakePackets > sc.Packets {
			return nil, 0, ErrCorrupt
		}
		sc.ScoutPackets = sc.Packets - sc.HandshakePackets
		if sc.PayloadBytes, b, err = readUvarint(b); err != nil {
			return nil, 0, err
		}
		if ph&0x08 != 0 {
			if len(b) < 1 {
				return nil, 0, ErrCorrupt
			}
			n := int(b[0])
			b = b[1:]
			if n == 0 || n > len(b) {
				return nil, 0, ErrCorrupt
			}
			sc.Payload = append([]byte(nil), b[:n]...)
			b = b[n:]
		}
	}
	if withOrigin {
		var s string
		if s, b, err = readString(b); err != nil {
			return nil, 0, err
		}
		o.Country = s
		asn, rest, err := readUvarint(b)
		if err != nil {
			return nil, 0, err
		}
		b = rest
		if asn > math.MaxUint32 {
			return nil, 0, ErrCorrupt
		}
		o.ASN = uint32(asn)
		if len(b) < 1 {
			return nil, 0, ErrCorrupt
		}
		o.Type = inetmodel.ScannerType(b[0])
		b = b[1:]
		org, rest, err := readUvarint(b)
		if err != nil {
			return nil, 0, err
		}
		b = rest
		id := unzigzag(org)
		if id < math.MinInt16 || id > math.MaxInt16 {
			return nil, 0, ErrCorrupt
		}
		o.OrgID = int16(id)
		if s, b, err = readString(b); err != nil {
			return nil, 0, err
		}
		o.OrgName = s
	}
	return b, sc.Start, nil
}

// zigzag maps signed values to unsigned varint-friendly ones.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// readUvarint consumes one uvarint from b.
func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrCorrupt
	}
	return v, b[n:], nil
}

// appendString appends a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// readString consumes one length-prefixed string from b.
func readString(b []byte) (string, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(b)) {
		return "", nil, ErrCorrupt
	}
	return string(b[:n]), b[n:], nil
}

// header builds the 12-byte file header.
func header(telescopeSize int, origins bool) ([]byte, error) {
	if telescopeSize < 0 || telescopeSize > math.MaxUint32 {
		return nil, fmt.Errorf("archive: telescope size %d out of range", telescopeSize)
	}
	h := make([]byte, headerLen)
	copy(h[:4], Magic[:])
	h[4] = version
	h[5] = flagPhases
	if origins {
		h[5] |= flagOrigins
	}
	binary.BigEndian.PutUint32(h[6:10], uint32(telescopeSize))
	return h, nil
}
