package archive

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/synscan/synscan/internal/obs"
)

// CatalogConfig parameterizes OpenCatalog.
type CatalogConfig struct {
	// SkipCorrupt opens every segment reader in degraded mode (see
	// WithSkipCorrupt); an unreadable segment (truncated file, bad trailer)
	// is additionally skipped at the catalog level and counted, so one
	// damaged segment costs its own scans, never the store.
	SkipCorrupt bool
	// Workers bounds each segment reader's block-decode pool (see
	// Reader.SetWorkers); 0 keeps the reader default.
	Workers int
	// Metrics, when non-nil, instruments refreshes: archive.catalog.refreshes,
	// archive.catalog.refresh_ns, archive.catalog.segments,
	// archive.catalog.generation, archive.segments.unreadable.
	Metrics *obs.Registry
}

// Catalog is the read side of a segment store: it mirrors the directory's
// manifest into a set of open Readers, picking up newly sealed segments and
// dropping compacted-away ones on every Refresh without ever restarting the
// process. Queries run against a View — an immutable, reference-counted
// snapshot of the segment set — so a Refresh (or the compaction behind it)
// never yanks a reader out from under an in-flight query: a retired
// segment's reader stays open until the last view using it is released, and
// the deleted file's data stays readable through the held descriptor.
type Catalog struct {
	dir string
	cfg CatalogConfig

	mu         sync.Mutex
	gen        uint64 // bumps whenever the visible segment set changes
	segs       map[string]*catSegment
	order      []string // visible segments, manifest order
	unreadable map[string]error
	closed     bool

	mRefreshes  *obs.Counter
	mUnreadable *obs.Counter
	mRefreshNS  *obs.Histogram
	gSegments   *obs.Gauge
	gGeneration *obs.Gauge
}

// catSegment is one open segment reader plus its view refcount.
type catSegment struct {
	name    string
	meta    SegmentMeta
	rd      *Reader
	refs    int
	retired bool
}

// OpenCatalog opens a segment store directory for querying and performs the
// initial Refresh. An empty or not-yet-existing store is valid (it serves
// zero scans until segments appear).
func OpenCatalog(dir string, cfg CatalogConfig) (*Catalog, error) {
	c := &Catalog{
		dir:        dir,
		cfg:        cfg,
		segs:       map[string]*catSegment{},
		unreadable: map[string]error{},

		mRefreshes:  cfg.Metrics.Counter("archive.catalog.refreshes"),
		mUnreadable: cfg.Metrics.Counter("archive.segments.unreadable"),
		mRefreshNS:  cfg.Metrics.Histogram("archive.catalog.refresh_ns"),
		gSegments:   cfg.Metrics.Gauge("archive.catalog.segments"),
		gGeneration: cfg.Metrics.Gauge("archive.catalog.generation"),
	}
	if _, err := c.Refresh(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Dir returns the store directory.
func (c *Catalog) Dir() string { return c.dir }

// Generation returns the catalog's change counter: it increments whenever
// the visible segment set changes (a new segment discovered, a segment
// compacted away, an unreadable segment healing on retry). synserve folds it
// into cache keys so cached bodies die with the segment set they were
// computed from.
func (c *Catalog) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Refresh re-reads the manifest and reconciles the open reader set with it,
// reporting whether the visible segment set changed. Safe to call
// concurrently with View/Release; in-flight queries keep the segment set
// they acquired.
func (c *Catalog) Refresh() (changed bool, err error) {
	sp := obs.StartSpan(c.mRefreshNS)
	defer sp.End()
	c.mRefreshes.Inc()
	man, err := readManifest(c.dir)
	if err != nil {
		return false, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false, fmt.Errorf("archive: Refresh on closed catalog %s", c.dir)
	}

	want := make(map[string]bool, len(man.Segments))
	var order []string
	for _, meta := range man.Segments {
		want[meta.Name] = true
		if seg, ok := c.segs[meta.Name]; ok && !seg.retired {
			order = append(order, meta.Name)
			continue
		}
		var opts []ReaderOption
		if c.cfg.SkipCorrupt {
			opts = append(opts, WithSkipCorrupt())
		}
		rd, oerr := Open(filepath.Join(c.dir, meta.Name), opts...)
		if oerr != nil {
			if _, known := c.unreadable[meta.Name]; !known {
				c.mUnreadable.Inc()
				changed = true
			}
			c.unreadable[meta.Name] = oerr
			continue
		}
		if c.cfg.Workers > 0 {
			rd.SetWorkers(c.cfg.Workers)
		}
		rd.SetMetrics(c.cfg.Metrics)
		if _, wasBad := c.unreadable[meta.Name]; wasBad {
			delete(c.unreadable, meta.Name)
		}
		c.segs[meta.Name] = &catSegment{name: meta.Name, meta: meta, rd: rd}
		order = append(order, meta.Name)
		changed = true
	}

	// Retire segments the manifest no longer lists (compacted away). Their
	// readers close when the last holding view releases.
	for name, seg := range c.segs {
		if want[name] || seg.retired {
			continue
		}
		seg.retired = true
		changed = true
		if seg.refs == 0 {
			seg.rd.Close()
			delete(c.segs, name)
		}
	}
	for name := range c.unreadable {
		if !want[name] {
			delete(c.unreadable, name)
			changed = true
		}
	}

	c.order = order
	if changed {
		c.gen++
	}
	c.gSegments.Set(int64(len(order)))
	c.gGeneration.Set(int64(c.gen))
	return changed, nil
}

// View snapshots the current segment set for one query. The snapshot is
// immutable: refreshes and compactions happening while the query runs do
// not affect it. Release it when done — readers retired meanwhile close on
// the last release.
func (c *Catalog) View() *CatalogView {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := &CatalogView{c: c, gen: c.gen, missing: len(c.unreadable)}
	for _, name := range c.order {
		seg := c.segs[name]
		seg.refs++
		v.segs = append(v.segs, seg)
	}
	return v
}

// Unreadable returns the currently skipped segments and their open errors.
func (c *Catalog) Unreadable() map[string]error {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]error, len(c.unreadable))
	for k, v := range c.unreadable {
		out[k] = v
	}
	return out
}

// Close releases every reader. Views already acquired stay valid; their
// readers close as they release.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for name, seg := range c.segs {
		seg.retired = true
		if seg.refs == 0 {
			seg.rd.Close()
			delete(c.segs, name)
		}
	}
	c.order = nil
	return nil
}

// CatalogView is one query's frozen segment set, in manifest (= emit) order.
type CatalogView struct {
	c        *Catalog
	gen      uint64
	segs     []*catSegment
	missing  int
	released bool
}

// Generation returns the catalog generation the view was taken at.
func (v *CatalogView) Generation() uint64 { return v.gen }

// Len returns the number of segments in the view.
func (v *CatalogView) Len() int { return len(v.segs) }

// Reader returns the i-th segment's reader.
func (v *CatalogView) Reader(i int) *Reader { return v.segs[i].rd }

// Name returns the i-th segment's file name.
func (v *CatalogView) Name(i int) string { return v.segs[i].name }

// Meta returns the i-th segment's manifest entry.
func (v *CatalogView) Meta(i int) SegmentMeta { return v.segs[i].meta }

// Missing returns how many manifest-listed segments were unreadable when the
// view was taken — served queries are missing their scans (degraded).
func (v *CatalogView) Missing() int { return v.missing }

// Degraded reports whether results served from this view may be incomplete:
// a segment was unreadable, or some reader skipped corrupt blocks.
func (v *CatalogView) Degraded() bool {
	if v.missing > 0 {
		return true
	}
	for _, seg := range v.segs {
		if seg.rd.CorruptBlocks() > 0 {
			return true
		}
	}
	return false
}

// Release returns the view's references; retired readers close on their
// last release. Idempotent.
func (v *CatalogView) Release() {
	if v.released {
		return
	}
	v.released = true
	v.c.mu.Lock()
	defer v.c.mu.Unlock()
	for _, seg := range v.segs {
		seg.refs--
		if seg.retired && seg.refs == 0 {
			seg.rd.Close()
			delete(v.c.segs, seg.name)
		}
	}
}

// NumScans sums the view's per-segment scan counts (from the manifest).
func (v *CatalogView) NumScans() uint64 {
	var n uint64
	for _, seg := range v.segs {
		n += seg.meta.Scans
	}
	return n
}

// removeSegmentFiles deletes sealed segment files after compaction has
// published a manifest without them. Open descriptors (retired readers still
// held by views) keep the data readable until released.
func removeSegmentFiles(dir string, names []string) {
	for _, name := range names {
		os.Remove(filepath.Join(dir, name))
	}
	syncDir(dir)
}
