package fingerprint

import (
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/tools"
)

// HistoryVotes is the ablation baseline for Votes: instead of comparing each
// probe against only the previous one (the O(1)-memory pair cache), it keeps
// the full probe history per flow and evaluates the pairwise relations
// against every earlier probe. Classification quality is essentially the
// same — the relations hold for *all* pairs of a session, so one pair per
// packet is sufficient evidence — while memory and time grow linearly and
// quadratically with flow length. BenchmarkAblationPairCache measures the
// gap.
type HistoryVotes struct {
	Packets              uint32
	Pairs                uint32
	ZMap, Masscan, Mirai uint32
	NMap, Unicorn        uint32

	history []packet.Probe
	// MaxHistory bounds the retained probes (0 = unbounded).
	MaxHistory int
}

// Add folds one probe into the tally, comparing it against the full history.
func (v *HistoryVotes) Add(p *packet.Probe) {
	v.Packets++
	if IsZMap(p) {
		v.ZMap++
	}
	if IsMasscan(p) {
		v.Masscan++
	}
	if IsMirai(p) {
		v.Mirai++
	}
	for i := range v.history {
		prev := &v.history[i]
		v.Pairs++
		if x := prev.Seq ^ p.Seq; x != 0 && PairNMap(prev, p) {
			v.NMap++
		}
		if PairUnicorn(prev, p) && p.Seq != prev.Seq {
			v.Unicorn++
		}
	}
	if v.MaxHistory == 0 || len(v.history) < v.MaxHistory {
		v.history = append(v.history, *p)
	}
}

// Classify mirrors Votes.Classify with pair counts normalized by the number
// of comparisons.
func (v *HistoryVotes) Classify() tools.Tool {
	if v.Packets == 0 {
		return tools.ToolUnknown
	}
	pk := float64(v.Packets)
	switch {
	case float64(v.ZMap) >= classifyThreshold*pk:
		return tools.ToolZMap
	case float64(v.Mirai) >= classifyThreshold*pk:
		return tools.ToolMirai
	case float64(v.Masscan) >= classifyThreshold*pk:
		return tools.ToolMasscan
	}
	if v.Pairs > 0 {
		pr := float64(v.Pairs)
		switch {
		case float64(v.Unicorn) >= classifyThreshold*pr:
			return tools.ToolUnicorn
		case float64(v.NMap) >= classifyThreshold*pr:
			return tools.ToolNMap
		}
	}
	return tools.ToolCustom
}
