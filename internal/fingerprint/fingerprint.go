// Package fingerprint implements the scanning-tool identification of §3.3.
//
// Two kinds of tests exist. Per-packet tests check a relation between header
// fields of a single probe (ZMap's constant IP identification, Masscan's
// IPID = dstIP ^ dstPort ^ seq relation, Mirai's seq = dstIP). Pairwise
// tests need two probes from the same source (NMap's session-secret
// structure, Unicornscan's source/destination encoding) because the per-
// session secret cancels out under XOR.
//
// Single-packet relations have false-positive rates around 2^-16 against
// random traffic, so classification is done per campaign by majority voting
// over all of its packets (Votes), never from one packet.
package fingerprint

import (
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/tools"
)

// IsZMap reports the ZMap per-packet fingerprint: IP identification 54321.
func IsZMap(p *packet.Probe) bool {
	return p.IPID == tools.ZMapIPID
}

// IsMasscan reports the Masscan per-packet fingerprint:
// IPid = destIP ^ destPort ^ SeqNum (folded to 16 bits).
func IsMasscan(p *packet.Probe) bool {
	return p.IPID == uint16(p.Dst^uint32(p.DstPort)^p.Seq)
}

// IsMirai reports the Mirai per-packet fingerprint: the TCP sequence number
// equals the destination address.
func IsMirai(p *packet.Probe) bool {
	return p.Seq == p.Dst
}

// PairNMap reports the NMap pairwise fingerprint for two probes of one
// source: (Seq1 ^ Seq2) & 0xFFFF == ((Seq1 ^ Seq2) >> 16) & 0xFFFF, which
// holds because NMap's sequence numbers are (nfo‖nfo) XOR a reused session
// secret.
func PairNMap(a, b *packet.Probe) bool {
	x := a.Seq ^ b.Seq
	return x&0xffff == x>>16&0xffff
}

// PairUnicorn reports the Unicornscan pairwise fingerprint:
// Seq1^Seq2 = dstIP1^dstIP2 ^ srcPort1^srcPort2 ^ ((dstPort1^dstPort2)<<16).
func PairUnicorn(a, b *packet.Probe) bool {
	want := (a.Dst ^ b.Dst) ^ uint32(a.SrcPort) ^ uint32(b.SrcPort) ^
		uint32(a.DstPort^b.DstPort)<<16
	return a.Seq^b.Seq == want
}

// ISNClass summarizes how a campaign chooses initial sequence numbers.
// Stateless scouts (masscan-style) derive the ISN from the target, so
// consecutive probes jump wildly; kernel TCP stacks hand out monotonically
// advancing ISNs, so a stateful scanner's consecutive SYNs sit close
// together. A two-phase campaign mixes both regimes.
type ISNClass uint8

const (
	// ISNUnknown means too few SYNs to judge (fewer than two).
	ISNUnknown ISNClass = iota
	// ISNIrregular is the stateless regime: ISNs jump randomly.
	ISNIrregular
	// ISNRegular is the stateful regime: ISNs advance in small steps.
	ISNRegular
	// ISNMixed holds a meaningful share of both — the two-phase signature.
	ISNMixed
)

var isnNames = [...]string{"unknown", "irregular", "regular", "mixed"}

// String returns the lower-case class name used by the query layer.
func (c ISNClass) String() string {
	if int(c) < len(isnNames) {
		return isnNames[c]
	}
	return "invalid"
}

// ISNClassByName inverts String for query parsing.
func ISNClassByName(s string) (ISNClass, bool) {
	for i, n := range isnNames {
		if n == s {
			return ISNClass(i), true
		}
	}
	return 0, false
}

// isnRegularWindow bounds the forward step between consecutive SYN ISNs that
// still counts as "regular". Kernel stacks advance the ISN clock plus a small
// per-connection offset; 2^24 covers seconds of wall time while a random
// cookie lands inside it only ~1/256 of the time.
const isnRegularWindow = 1 << 24

// Votes accumulates fingerprint evidence over the packets of one campaign.
// The pairwise tests compare each packet against the previous one from the
// same source — O(1) memory per flow (the pair-cache design; see the
// ablation benchmarks for the alternative).
type Votes struct {
	// Packets is the number of probes examined.
	Packets uint32
	// Pairs is the number of consecutive-probe comparisons performed.
	Pairs uint32
	// ZMap, Masscan, Mirai count per-packet matches.
	ZMap, Masscan, Mirai uint32
	// NMap, Unicorn count pairwise matches.
	NMap, Unicorn uint32
	// RegularISN and IrregularISN count consecutive-SYN sequence deltas that
	// fall inside / outside the stateful stack's window (see ISNClass).
	RegularISN, IrregularISN uint32
	// Handshakes counts phase-two segments (ACK/PSH-ACK of an invited
	// handshake) folded in via AddPhase2.
	Handshakes uint32
	// Payloads counts phase-two segments that carried data.
	Payloads uint32
	// PayloadBytes sums phase-two payload lengths.
	PayloadBytes uint64

	// PayloadPrefix keeps the first PayloadPrefixLen bytes of the first
	// payload seen — enough to tell HTTP from TLS from SSH banners.
	PayloadPrefix    [8]byte
	PayloadPrefixLen uint8

	prev    packet.Probe
	hasPrev bool
}

// Add folds one probe into the vote tally.
func (v *Votes) Add(p *packet.Probe) {
	v.addSingles(p)
	if v.hasPrev {
		v.addPair(&v.prev, p)
	}
	v.setPrev(p)
}

// AddBatch folds a slice of probes into the tally, equivalent to calling Add
// on each in order but amortized for the batched ingest path: pairwise tests
// compare neighboring slice elements in place, so the pair cache is copied
// once per batch instead of once per packet.
func (v *Votes) AddBatch(ps []packet.Probe) {
	if len(ps) == 0 {
		return
	}
	prev := &v.prev
	if !v.hasPrev {
		v.addSingles(&ps[0])
		prev = &ps[0]
		ps = ps[1:]
	}
	for i := range ps {
		p := &ps[i]
		v.addSingles(p)
		v.addPair(prev, p)
		prev = p
	}
	v.setPrev(prev)
}

// addSingles applies the per-packet fingerprints to one probe.
func (v *Votes) addSingles(p *packet.Probe) {
	v.Packets++
	if IsZMap(p) {
		v.ZMap++
	}
	if IsMasscan(p) {
		v.Masscan++
	}
	if IsMirai(p) {
		v.Mirai++
	}
}

// addPair applies the pairwise fingerprints and the ISN-delta classifier to
// one consecutive probe pair.
func (v *Votes) addPair(prev, p *packet.Probe) {
	v.Pairs++
	if d := p.Seq - prev.Seq; d != 0 && d < isnRegularWindow {
		v.RegularISN++
	} else {
		v.IrregularISN++
	}
	// Identical sequence numbers satisfy both pairwise relations
	// trivially (x == 0); only count them when the sequence actually
	// varies, otherwise a constant-seq custom scanner would be
	// misclassified as NMap.
	if x := prev.Seq ^ p.Seq; x != 0 {
		if PairNMap(prev, p) {
			v.NMap++
		}
	}
	if PairUnicorn(prev, p) && p.Seq != prev.Seq {
		v.Unicorn++
	}
}

// setPrev installs the pair cache. The payload header is dropped: the
// pairwise tests never read it, and retaining it would pin (or, for pooled
// batches, alias) buffers owned by the decode layer.
func (v *Votes) setPrev(p *packet.Probe) {
	v.prev = *p
	v.prev.Payload = nil
	v.hasPrev = true
}

// AddPhase2 folds one phase-two segment (handshake ACK or payload push of a
// reactive telescope's invited connection) into the tally. Phase-two packets
// never enter the SYN pair cache: their sequence numbers continue an
// established connection and would poison the ISN-regularity signal.
func (v *Votes) AddPhase2(p *packet.Probe) {
	v.Packets++
	v.Handshakes++
	if n := len(p.Payload); n > 0 {
		v.Payloads++
		v.PayloadBytes += uint64(n)
		if v.PayloadPrefixLen == 0 {
			c := copy(v.PayloadPrefix[:], p.Payload)
			v.PayloadPrefixLen = uint8(c)
		}
	}
}

// Merge folds another tally into v (used when two flow fragments of the
// same source are joined). The pair cache of other is discarded.
func (v *Votes) Merge(other *Votes) {
	v.Packets += other.Packets
	v.Pairs += other.Pairs
	v.ZMap += other.ZMap
	v.Masscan += other.Masscan
	v.Mirai += other.Mirai
	v.NMap += other.NMap
	v.Unicorn += other.Unicorn
	v.RegularISN += other.RegularISN
	v.IrregularISN += other.IrregularISN
	v.Handshakes += other.Handshakes
	v.Payloads += other.Payloads
	v.PayloadBytes += other.PayloadBytes
	if v.PayloadPrefixLen == 0 && other.PayloadPrefixLen > 0 {
		v.PayloadPrefix = other.PayloadPrefix
		v.PayloadPrefixLen = other.PayloadPrefixLen
	}
}

// ISN classifies the campaign's sequence-number regime from the accumulated
// delta counts. At least 10% regular deltas alongside irregular ones reads as
// mixed — the share a phase-two handshake train contributes next to a scout
// sweep; a 3:1 regular majority reads as a purely stateful scanner.
func (v *Votes) ISN() ISNClass {
	total := v.RegularISN + v.IrregularISN
	switch {
	case total == 0:
		return ISNUnknown
	case v.RegularISN*4 >= total*3:
		return ISNRegular
	case v.RegularISN*10 >= total:
		return ISNMixed
	default:
		return ISNIrregular
	}
}

// classifyThreshold is the fraction of packets (or pairs) that must match a
// tool's relation for the campaign to be attributed to that tool.
const classifyThreshold = 0.5

// Classify attributes the campaign to a tool, or ToolCustom when no
// fingerprint reaches the majority threshold. Per-packet fingerprints take
// precedence over pairwise ones: they are the stronger signal (the paper's
// method relies on ZMap/Masscan/Mirai markers first, and the pairwise
// relations require at least two probes).
func (v *Votes) Classify() tools.Tool {
	if v.Packets == 0 {
		return tools.ToolUnknown
	}
	// Per-packet fingerprints are defined on probe (SYN) headers; phase-two
	// handshake segments carry connection-bound sequence numbers and must not
	// dilute the tool shares.
	syns := v.Packets - v.Handshakes
	if syns == 0 {
		return tools.ToolCustom
	}
	pk := float64(syns)
	switch {
	case float64(v.ZMap) >= classifyThreshold*pk:
		return tools.ToolZMap
	case float64(v.Mirai) >= classifyThreshold*pk:
		return tools.ToolMirai
	case float64(v.Masscan) >= classifyThreshold*pk:
		return tools.ToolMasscan
	}
	if v.Pairs > 0 {
		pr := float64(v.Pairs)
		switch {
		case float64(v.Unicorn) >= classifyThreshold*pr:
			return tools.ToolUnicorn
		case float64(v.NMap) >= classifyThreshold*pr:
			return tools.ToolNMap
		}
	}
	return tools.ToolCustom
}
