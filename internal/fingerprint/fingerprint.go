// Package fingerprint implements the scanning-tool identification of §3.3.
//
// Two kinds of tests exist. Per-packet tests check a relation between header
// fields of a single probe (ZMap's constant IP identification, Masscan's
// IPID = dstIP ^ dstPort ^ seq relation, Mirai's seq = dstIP). Pairwise
// tests need two probes from the same source (NMap's session-secret
// structure, Unicornscan's source/destination encoding) because the per-
// session secret cancels out under XOR.
//
// Single-packet relations have false-positive rates around 2^-16 against
// random traffic, so classification is done per campaign by majority voting
// over all of its packets (Votes), never from one packet.
package fingerprint

import (
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/tools"
)

// IsZMap reports the ZMap per-packet fingerprint: IP identification 54321.
func IsZMap(p *packet.Probe) bool {
	return p.IPID == tools.ZMapIPID
}

// IsMasscan reports the Masscan per-packet fingerprint:
// IPid = destIP ^ destPort ^ SeqNum (folded to 16 bits).
func IsMasscan(p *packet.Probe) bool {
	return p.IPID == uint16(p.Dst^uint32(p.DstPort)^p.Seq)
}

// IsMirai reports the Mirai per-packet fingerprint: the TCP sequence number
// equals the destination address.
func IsMirai(p *packet.Probe) bool {
	return p.Seq == p.Dst
}

// PairNMap reports the NMap pairwise fingerprint for two probes of one
// source: (Seq1 ^ Seq2) & 0xFFFF == ((Seq1 ^ Seq2) >> 16) & 0xFFFF, which
// holds because NMap's sequence numbers are (nfo‖nfo) XOR a reused session
// secret.
func PairNMap(a, b *packet.Probe) bool {
	x := a.Seq ^ b.Seq
	return x&0xffff == x>>16&0xffff
}

// PairUnicorn reports the Unicornscan pairwise fingerprint:
// Seq1^Seq2 = dstIP1^dstIP2 ^ srcPort1^srcPort2 ^ ((dstPort1^dstPort2)<<16).
func PairUnicorn(a, b *packet.Probe) bool {
	want := (a.Dst ^ b.Dst) ^ uint32(a.SrcPort) ^ uint32(b.SrcPort) ^
		uint32(a.DstPort^b.DstPort)<<16
	return a.Seq^b.Seq == want
}

// Votes accumulates fingerprint evidence over the packets of one campaign.
// The pairwise tests compare each packet against the previous one from the
// same source — O(1) memory per flow (the pair-cache design; see the
// ablation benchmarks for the alternative).
type Votes struct {
	// Packets is the number of probes examined.
	Packets uint32
	// Pairs is the number of consecutive-probe comparisons performed.
	Pairs uint32
	// ZMap, Masscan, Mirai count per-packet matches.
	ZMap, Masscan, Mirai uint32
	// NMap, Unicorn count pairwise matches.
	NMap, Unicorn uint32

	prev    packet.Probe
	hasPrev bool
}

// Add folds one probe into the vote tally.
func (v *Votes) Add(p *packet.Probe) {
	v.Packets++
	if IsZMap(p) {
		v.ZMap++
	}
	if IsMasscan(p) {
		v.Masscan++
	}
	if IsMirai(p) {
		v.Mirai++
	}
	if v.hasPrev {
		v.Pairs++
		// Identical sequence numbers satisfy both pairwise relations
		// trivially (x == 0); only count them when the sequence actually
		// varies, otherwise a constant-seq custom scanner would be
		// misclassified as NMap.
		if x := v.prev.Seq ^ p.Seq; x != 0 {
			if PairNMap(&v.prev, p) {
				v.NMap++
			}
		}
		if PairUnicorn(&v.prev, p) && p.Seq != v.prev.Seq {
			v.Unicorn++
		}
	}
	v.prev = *p
	v.hasPrev = true
}

// Merge folds another tally into v (used when two flow fragments of the
// same source are joined). The pair cache of other is discarded.
func (v *Votes) Merge(other *Votes) {
	v.Packets += other.Packets
	v.Pairs += other.Pairs
	v.ZMap += other.ZMap
	v.Masscan += other.Masscan
	v.Mirai += other.Mirai
	v.NMap += other.NMap
	v.Unicorn += other.Unicorn
}

// classifyThreshold is the fraction of packets (or pairs) that must match a
// tool's relation for the campaign to be attributed to that tool.
const classifyThreshold = 0.5

// Classify attributes the campaign to a tool, or ToolCustom when no
// fingerprint reaches the majority threshold. Per-packet fingerprints take
// precedence over pairwise ones: they are the stronger signal (the paper's
// method relies on ZMap/Masscan/Mirai markers first, and the pairwise
// relations require at least two probes).
func (v *Votes) Classify() tools.Tool {
	if v.Packets == 0 {
		return tools.ToolUnknown
	}
	pk := float64(v.Packets)
	switch {
	case float64(v.ZMap) >= classifyThreshold*pk:
		return tools.ToolZMap
	case float64(v.Mirai) >= classifyThreshold*pk:
		return tools.ToolMirai
	case float64(v.Masscan) >= classifyThreshold*pk:
		return tools.ToolMasscan
	}
	if v.Pairs > 0 {
		pr := float64(v.Pairs)
		switch {
		case float64(v.Unicorn) >= classifyThreshold*pr:
			return tools.ToolUnicorn
		case float64(v.NMap) >= classifyThreshold*pr:
			return tools.ToolNMap
		}
	}
	return tools.ToolCustom
}
