package fingerprint

import (
	"testing"

	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

func TestHistoryVotesClassifiesLikeVotes(t *testing.T) {
	for _, tool := range []tools.Tool{
		tools.ToolZMap, tools.ToolMasscan, tools.ToolNMap,
		tools.ToolMirai, tools.ToolUnicorn, tools.ToolCustom,
	} {
		r := rng.New(21).Derive(tool.String())
		pr := tools.NewProber(tool, 1, r.Derive("p"))
		tr := r.Derive("t")
		var v Votes
		var h HistoryVotes
		for i := 0; i < 150; i++ {
			p := pr.Probe(tr.Uint32(), uint16(80+tr.Intn(5)))
			v.Add(&p)
			h.Add(&p)
		}
		if got, want := h.Classify(), v.Classify(); got != want {
			t.Errorf("%v: history=%v paircache=%v", tool, got, want)
		}
		if h.Packets != v.Packets {
			t.Errorf("%v: packet counts differ", tool)
		}
		// The full history compares O(n^2) pairs.
		if h.Pairs != 150*149/2 {
			t.Errorf("%v: pairs = %d, want %d", tool, h.Pairs, 150*149/2)
		}
	}
}

func TestHistoryVotesBounded(t *testing.T) {
	r := rng.New(22)
	pr := tools.NewNMap(1, r)
	h := HistoryVotes{MaxHistory: 10}
	for i := 0; i < 100; i++ {
		p := pr.Probe(uint32(i), 80)
		h.Add(&p)
	}
	if len(h.history) != 10 {
		t.Fatalf("history grew to %d", len(h.history))
	}
	if got := h.Classify(); got != tools.ToolNMap {
		t.Fatalf("bounded history classified %v", got)
	}
}

func TestHistoryVotesEmpty(t *testing.T) {
	var h HistoryVotes
	if h.Classify() != tools.ToolUnknown {
		t.Fatal("empty history must be Unknown")
	}
}

func BenchmarkPairCacheVotes(b *testing.B) {
	r := rng.New(1)
	pr := tools.NewNMap(1, r)
	var v Votes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pr.Probe(uint32(i), 80)
		v.Add(&p)
	}
}

func BenchmarkHistoryVotes(b *testing.B) {
	r := rng.New(1)
	pr := tools.NewNMap(1, r)
	h := HistoryVotes{MaxHistory: 256}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pr.Probe(uint32(i), 80)
		h.Add(&p)
	}
}
