package fingerprint

import (
	"testing"

	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

// batchStreams builds per-tool probe slices (every fingerprint relation plus
// a mixed stream) for the batch/sequential differential tests.
func batchStreams(n int) map[string][]packet.Probe {
	r := rng.New(42)
	probers := map[string]tools.Prober{
		"zmap":    tools.NewZMap(0x0a000001, r.Derive("z")),
		"masscan": tools.NewMasscan(0x0a000002, r.Derive("m")),
		"nmap":    tools.NewNMap(0x0a000003, r.Derive("n")),
		"mirai":   tools.NewMirai(0x0a000004, r.Derive("mi")),
		"unicorn": tools.NewUnicorn(0x0a000005, r.Derive("u")),
	}
	out := make(map[string][]packet.Probe, len(probers)+1)
	var mixed []packet.Probe
	for name, pr := range probers {
		ps := make([]packet.Probe, n)
		for i := range ps {
			ps[i] = pr.Probe(uint32(0xc0a80000+i), uint16(80+i%3))
			ps[i].Time = int64(i)
		}
		out[name] = ps
		mixed = append(mixed, ps[:n/2]...)
	}
	out["mixed"] = mixed
	return out
}

// votesEqual compares two tallies field by field, pair cache included
// (Votes holds a Probe, whose Payload slice makes it non-comparable by ==).
func votesEqual(a, b *Votes) bool {
	if a.Packets != b.Packets || a.Pairs != b.Pairs || a.ZMap != b.ZMap ||
		a.Masscan != b.Masscan || a.Mirai != b.Mirai || a.NMap != b.NMap ||
		a.Unicorn != b.Unicorn || a.RegularISN != b.RegularISN ||
		a.IrregularISN != b.IrregularISN || a.Handshakes != b.Handshakes ||
		a.Payloads != b.Payloads || a.PayloadBytes != b.PayloadBytes ||
		a.PayloadPrefix != b.PayloadPrefix || a.PayloadPrefixLen != b.PayloadPrefixLen ||
		a.hasPrev != b.hasPrev {
		return false
	}
	pa, pb := &a.prev, &b.prev
	return pa.Time == pb.Time && pa.Src == pb.Src && pa.Dst == pb.Dst &&
		pa.SrcPort == pb.SrcPort && pa.DstPort == pb.DstPort &&
		pa.Seq == pb.Seq && pa.Ack == pb.Ack && pa.IPID == pb.IPID &&
		pa.TTL == pb.TTL && pa.Flags == pb.Flags && pa.Window == pb.Window &&
		pa.Proto == pb.Proto && len(pa.Payload) == len(pb.Payload)
}

// TestAddBatchMatchesSequential is the fingerprint half of the differential
// suite: AddBatch over any split of a stream must produce the exact Votes
// value (pair cache included) that per-probe Add produces.
func TestAddBatchMatchesSequential(t *testing.T) {
	for name, ps := range batchStreams(257) {
		var seq Votes
		for i := range ps {
			seq.Add(&ps[i])
		}
		// Whole-slice, singletons, and ragged chunks — including empty ones.
		splits := [][]int{{len(ps)}, {1, 1, 1, len(ps) - 3}, {0, 7, 0, 64, len(ps) - 71}, {3, len(ps) - 3}}
		for si, split := range splits {
			var bat Votes
			rest := ps
			for _, k := range split {
				bat.AddBatch(rest[:k])
				rest = rest[k:]
			}
			bat.AddBatch(rest)
			if !votesEqual(&bat, &seq) {
				t.Fatalf("%s split %d: AddBatch %+v != Add %+v", name, si, bat, seq)
			}
			if bat.Classify() != seq.Classify() || bat.ISN() != seq.ISN() {
				t.Fatalf("%s split %d: classification drifted", name, si)
			}
		}
	}
}

// TestAddBatchDropsPayloadHeader pins the aliasing rule: the pair cache must
// not retain payload bytes (they may belong to a pooled batch buffer that is
// recycled after the call).
func TestAddBatchDropsPayloadHeader(t *testing.T) {
	ps := []packet.Probe{{Src: 1, Seq: 9, Payload: []byte("secret")}}
	var v Votes
	v.AddBatch(ps)
	if v.prev.Payload != nil {
		t.Fatal("pair cache retained a payload header")
	}
	var w Votes
	w.Add(&ps[0])
	if w.prev.Payload != nil {
		t.Fatal("Add retained a payload header")
	}
}

// BenchmarkVotesAddBatch quantifies the batch amortization on the pure
// fingerprint path against per-probe Add.
func BenchmarkVotesAddBatch(b *testing.B) {
	ps := batchStreams(512)["masscan"]
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		var v Votes
		for i := 0; i < b.N; i++ {
			v.Add(&ps[i&511])
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		var v Votes
		for i := 0; i < b.N; i += len(ps) {
			v.AddBatch(ps)
		}
	})
}
