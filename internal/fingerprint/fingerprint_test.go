package fingerprint

import (
	"testing"

	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

// runCampaign feeds n probes from the given tool through a Votes tally.
func runCampaign(tool tools.Tool, n int, seed uint64) *Votes {
	r := rng.New(seed)
	pr := tools.NewProber(tool, 0x0A000001, r.Derive("prober"))
	tr := r.Derive("targets")
	var v Votes
	for i := 0; i < n; i++ {
		p := pr.Probe(tr.Uint32(), uint16(80+tr.Intn(3)))
		v.Add(&p)
	}
	return &v
}

func TestClassifyEachTool(t *testing.T) {
	cases := []struct {
		tool tools.Tool
		want tools.Tool
	}{
		{tools.ToolZMap, tools.ToolZMap},
		{tools.ToolMasscan, tools.ToolMasscan},
		{tools.ToolNMap, tools.ToolNMap},
		{tools.ToolMirai, tools.ToolMirai},
		{tools.ToolUnicorn, tools.ToolUnicorn},
		{tools.ToolCustom, tools.ToolCustom},
	}
	for _, c := range cases {
		for seed := uint64(1); seed <= 5; seed++ {
			v := runCampaign(c.tool, 200, seed)
			if got := v.Classify(); got != c.want {
				t.Errorf("seed %d: campaign from %v classified as %v (votes %+v)",
					seed, c.tool, got, v)
			}
		}
	}
}

func TestClassifySmallCampaigns(t *testing.T) {
	// Even two-probe campaigns from pairwise-fingerprinted tools classify.
	for _, tool := range []tools.Tool{tools.ToolNMap, tools.ToolUnicorn} {
		v := runCampaign(tool, 2, 3)
		if got := v.Classify(); got != tool {
			t.Errorf("2-probe %v campaign classified as %v", tool, got)
		}
	}
	// A single probe from a per-packet tool still classifies.
	v := runCampaign(tools.ToolZMap, 1, 3)
	if got := v.Classify(); got != tools.ToolZMap {
		t.Errorf("1-probe ZMap classified as %v", got)
	}
	// No packets at all.
	var empty Votes
	if got := empty.Classify(); got != tools.ToolUnknown {
		t.Errorf("empty votes classified as %v", got)
	}
}

func TestPerPacketTests(t *testing.T) {
	p := packet.Probe{Dst: 0x01020304, DstPort: 80, Seq: 0x01020304, IPID: tools.ZMapIPID}
	if !IsZMap(&p) || !IsMirai(&p) {
		t.Fatal("constructed probe must match ZMap and Mirai tests")
	}
	p.IPID = uint16(p.Dst ^ uint32(p.DstPort) ^ p.Seq)
	if !IsMasscan(&p) {
		t.Fatal("constructed probe must match Masscan test")
	}
	p.Seq = 0xdeadbeef
	if IsMirai(&p) {
		t.Fatal("Mirai test false positive")
	}
}

func TestPairTestsSymmetric(t *testing.T) {
	r := rng.New(9)
	n := tools.NewNMap(1, r.Derive("n"))
	a := n.Probe(100, 80)
	b := n.Probe(200, 443)
	if !PairNMap(&a, &b) || !PairNMap(&b, &a) {
		t.Fatal("PairNMap must be symmetric")
	}
	u := tools.NewUnicorn(1, r.Derive("u"))
	c := u.Probe(100, 80)
	d := u.Probe(200, 443)
	if !PairUnicorn(&c, &d) || !PairUnicorn(&d, &c) {
		t.Fatal("PairUnicorn must be symmetric")
	}
}

func TestConstantSeqNotNMap(t *testing.T) {
	// A degenerate scanner that reuses one sequence number forever must not
	// be classified as NMap (x == 0 satisfies the relation trivially).
	var v Votes
	r := rng.New(10)
	for i := 0; i < 100; i++ {
		p := packet.Probe{
			Dst: r.Uint32(), DstPort: 80, Seq: 0x12345678,
			IPID: uint16(r.Uint32()), SrcPort: 1000,
		}
		v.Add(&p)
	}
	if got := v.Classify(); got == tools.ToolNMap || got == tools.ToolUnicorn {
		t.Fatalf("constant-seq scanner classified as %v", got)
	}
}

func TestMixedTrafficMajority(t *testing.T) {
	// 80% masscan + 20% random: still classified masscan.
	r := rng.New(11)
	m := tools.NewMasscan(1, r.Derive("m"))
	c := tools.NewCustom(1, r.Derive("c"))
	var v Votes
	for i := 0; i < 500; i++ {
		var p packet.Probe
		if i%5 == 0 {
			p = c.Probe(r.Uint32(), 80)
		} else {
			p = m.Probe(r.Uint32(), 80)
		}
		v.Add(&p)
	}
	if got := v.Classify(); got != tools.ToolMasscan {
		t.Fatalf("80%% masscan stream classified as %v", got)
	}
}

func TestMerge(t *testing.T) {
	a := runCampaign(tools.ToolZMap, 100, 1)
	b := runCampaign(tools.ToolZMap, 50, 2)
	pk := a.Packets + b.Packets
	a.Merge(b)
	if a.Packets != pk {
		t.Fatalf("merged packets %d", a.Packets)
	}
	if got := a.Classify(); got != tools.ToolZMap {
		t.Fatalf("merged classification %v", got)
	}
}

func TestVotesCounts(t *testing.T) {
	v := runCampaign(tools.ToolMirai, 100, 4)
	if v.Packets != 100 {
		t.Fatalf("Packets = %d", v.Packets)
	}
	if v.Pairs != 99 {
		t.Fatalf("Pairs = %d", v.Pairs)
	}
	if v.Mirai != 100 {
		t.Fatalf("Mirai = %d, every probe should match", v.Mirai)
	}
}

func TestFalsePositiveRateOnRandomTraffic(t *testing.T) {
	// 50k random probes: per-packet 16-bit relations fire at ~2^-16.
	r := rng.New(12)
	zmap, masscan, mirai, nmap := 0, 0, 0, 0
	var prev packet.Probe
	for i := 0; i < 50000; i++ {
		p := packet.Probe{
			Dst: r.Uint32(), DstPort: uint16(r.Uint32()), Seq: r.Uint32(),
			IPID: uint16(r.Uint32()), SrcPort: uint16(r.Uint32()),
		}
		if IsZMap(&p) {
			zmap++
		}
		if IsMasscan(&p) {
			masscan++
		}
		if IsMirai(&p) {
			mirai++
		}
		if i > 0 && p.Seq != prev.Seq && PairNMap(&prev, &p) {
			nmap++
		}
		prev = p
	}
	if zmap > 10 || masscan > 10 || nmap > 10 {
		t.Fatalf("16-bit relations fire too often: zmap=%d masscan=%d nmap=%d", zmap, masscan, nmap)
	}
	if mirai > 1 {
		t.Fatalf("32-bit Mirai relation fired %d times", mirai)
	}
}

func BenchmarkVotesAdd(b *testing.B) {
	r := rng.New(1)
	pr := tools.NewMasscan(1, r)
	probes := make([]packet.Probe, 1024)
	for i := range probes {
		probes[i] = pr.Probe(uint32(i), 80)
	}
	var v Votes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Add(&probes[i&1023])
	}
}
