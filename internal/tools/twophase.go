package tools

import (
	"fmt"

	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
)

// PayloadFor returns the application payload a two-phase scanner pushes after
// completing a handshake on the given port, the way Spoki's payload corpus
// looks: HTTP request lines on web ports, a TLS ClientHello prefix on TLS
// ports, protocol banners elsewhere, and an opaque seed-derived blob for
// ports without a well-known first message. Deterministic in (port, seed).
func PayloadFor(port uint16, seed uint32) []byte {
	switch port {
	case 80, 8080, 81, 8000, 8888:
		return []byte(fmt.Sprintf("GET / HTTP/1.1\r\nHost: %d.probe\r\n\r\n", seed&0xffff))
	case 443, 8443:
		// TLS record header + handshake type: enough for prefix matching.
		return []byte{0x16, 0x03, 0x01, 0x02, 0x00, 0x01, 0x00, 0x01,
			0xfc, 0x03, 0x03, byte(seed >> 24), byte(seed >> 16), byte(seed >> 8), byte(seed)}
	case 22:
		return []byte(fmt.Sprintf("SSH-2.0-probe_%d\r\n", seed&0xffff))
	case 23:
		// Telnet IAC negotiation: WILL/DO option bytes.
		return []byte{0xff, 0xfb, 0x1f, 0xff, 0xfb, 0x20, 0xff, 0xfd, 0x01, 0xff, 0xfd, 0x03}
	case 25, 587:
		return []byte(fmt.Sprintf("EHLO host%d\r\n", seed&0xffff))
	case 6379:
		return []byte("*1\r\n$4\r\nPING\r\n")
	default:
		// Opaque probe blob: 8–24 deterministic bytes.
		n := 8 + int(seed%17)
		b := make([]byte, n)
		x := seed | 1
		for i := range b {
			x = x*0x01000193 + 0x811c9dc5
			b[i] = byte(x >> 13)
		}
		return b
	}
}

// TwoPhase couples a stateless scout with the kernel TCP stack it falls back
// to for phase two, modeling the masscan→libcurl style chains Spoki
// characterizes: the scout sweeps with target-derived ISNs, and for
// destinations that answer, the host's own stack opens a real connection —
// monotonically advancing ISNs, sequential IPIDs, an incrementing ephemeral
// source port — and pushes an application payload.
//
// Not safe for concurrent use; each simulated host owns its own TwoPhase.
type TwoPhase struct {
	scout Prober
	src   uint32
	r     *rng.Rand

	isn   uint32 // kernel ISN clock, advances a small step per connection
	ipid  uint16 // kernel IP identification counter
	eport uint16 // next ephemeral source port
	pseed uint32 // payload seed
}

// NewTwoPhase wraps a scout Prober with a simulated kernel stack for the
// phase-two handshakes. The stack's clocks derive from r.
func NewTwoPhase(scout Prober, src uint32, r *rng.Rand) *TwoPhase {
	return &TwoPhase{
		scout: scout,
		src:   src,
		r:     r,
		isn:   r.Uint32(),
		ipid:  uint16(r.Uint32()),
		eport: uint16(32768 + r.Intn(16384)),
		pseed: r.Uint32(),
	}
}

// Tool identifies the scout's tool family — the phase-one packets are what
// the per-packet fingerprints see.
func (t *TwoPhase) Tool() Tool { return t.scout.Tool() }

// Probe emits a phase-one scout probe (delegates to the wrapped Prober).
func (t *TwoPhase) Probe(dst uint32, dport uint16) packet.Probe {
	return t.scout.Probe(dst, dport)
}

// HandshakeSYN opens the phase-two connection to dst:dport: a kernel-stack
// SYN whose ISN advances in small steps connection to connection (the
// regular-ISN regime the fingerprint layer keys on).
func (t *TwoPhase) HandshakeSYN(dst uint32, dport uint16) packet.Probe {
	// ~64k ISN advance per connection: a busy host's ISN clock plus the
	// per-connection offset, always inside the regular window.
	t.isn += uint32(64000 + t.r.Intn(4096))
	t.ipid++
	t.eport++
	if t.eport < 32768 {
		t.eport = 32768
	}
	return packet.Probe{
		Src:     t.src,
		Dst:     dst,
		SrcPort: t.eport,
		DstPort: dport,
		Seq:     t.isn,
		IPID:    t.ipid,
		TTL:     hopTTL(t.r, 64),
		Flags:   packet.FlagSYN,
		Window:  64240,
	}
}

// HandshakeACK completes the handshake opened by syn, acknowledging the
// responder's SYN-ACK sequence number.
func (t *TwoPhase) HandshakeACK(syn *packet.Probe, synackSeq uint32) packet.Probe {
	t.ipid++
	return packet.Probe{
		Src:     syn.Src,
		Dst:     syn.Dst,
		SrcPort: syn.SrcPort,
		DstPort: syn.DstPort,
		Seq:     syn.Seq + 1,
		Ack:     synackSeq + 1,
		IPID:    t.ipid,
		TTL:     syn.TTL,
		Flags:   packet.FlagACK,
		Window:  64240,
	}
}

// PayloadPush sends the application payload on the established connection:
// a PSH-ACK carrying PayloadFor(dport, seed).
func (t *TwoPhase) PayloadPush(syn *packet.Probe, synackSeq uint32) packet.Probe {
	p := t.HandshakeACK(syn, synackSeq)
	p.Flags = packet.FlagPSH | packet.FlagACK
	p.Payload = PayloadFor(syn.DstPort, t.pseed^syn.Dst)
	return p
}
