package tools

import (
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
)

// This file drives exhaustive scans of a target prefix the way each tool
// family walks its target space:
//
//   - ZMap and Masscan permute the (address, port) space with O(1) state —
//     modeled with the package rng permutations they actually use.
//   - NMap walks addresses sequentially, probing all ports per host; Lee et
//     al. found 91% of port scanners probe addresses sequentially, and the
//     custom scanner follows that behavior too.
//   - Mirai picks targets at random with replacement (its PRNG does not
//     deduplicate), so coverage is probabilistic.
//
// Exhaustive iteration is used by the examples, the small-space tests, and
// cmd/syntelescope; the year-scale workload generator short-circuits to
// telescope-hitting probes only (see internal/workload).

// ScanPrefix emits one probe per target of an exhaustive scan of
// prefix × ports, in the tool's characteristic order. The emit callback
// receives probes with Time zero; pacing is the caller's concern. For Mirai
// the number of emitted probes equals the target count but targets repeat.
func ScanPrefix(pr Prober, prefix inetmodel.Prefix, ports []uint16, r *rng.Rand, emit func(packet.Probe)) {
	if len(ports) == 0 {
		return
	}
	size := prefix.Size()
	total := size * uint64(len(ports))
	switch pr.Tool() {
	case ToolZMap, ToolMasscan, ToolUnicorn:
		perm := rng.NewFeistelPerm(total, r)
		for i := uint64(0); i < total; i++ {
			x := perm.Apply(i)
			addr := prefix.Nth(x / uint64(len(ports)))
			port := ports[x%uint64(len(ports))]
			emit(pr.Probe(addr, port))
		}
	case ToolMirai:
		state := r.Uint32() | 1
		for i := uint64(0); i < total; i++ {
			// xorshift32, as in the Mirai source's rand_next.
			state ^= state << 13
			state ^= state >> 17
			state ^= state << 5
			addr := prefix.Nth(uint64(state) % size)
			port := ports[int(state)%len(ports)]
			emit(pr.Probe(addr, port))
		}
	default: // NMap, Custom: sequential sweep, all ports per host.
		for i := uint64(0); i < size; i++ {
			addr := prefix.Nth(i)
			for _, port := range ports {
				emit(pr.Probe(addr, port))
			}
		}
	}
}

// ScanIPv4Sharded walks the full IPv4 space with ZMap's cyclic-group
// permutation, restricted to one shard of a distributed scan, emitting at
// most limit probes for the given port. This is the faithful Internet-wide
// iteration (used by the sharding example and ablation bench); address
// filtering is the caller's concern.
func ScanIPv4Sharded(pr Prober, port uint16, shard, shards int, limit int, r *rng.Rand, emit func(packet.Probe)) {
	perm := rng.NewCyclicPerm(r).Shard(shard, shards)
	for i := 0; i < limit; i++ {
		addr, done := perm.Next()
		if done {
			return
		}
		emit(pr.Probe(addr, port))
	}
}
