package tools

import (
	"testing"

	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
)

func TestScanPrefixExhaustiveRandomized(t *testing.T) {
	// ZMap/Masscan/Unicorn must cover every (addr, port) pair exactly once.
	prefix := inetmodel.MustPrefix("10.1.0.0/24")
	ports := []uint16{80, 443, 22}
	for _, tool := range []Tool{ToolZMap, ToolMasscan, ToolUnicorn} {
		r := rng.New(1).Derive(tool.String())
		pr := NewProber(tool, 42, r.Derive("prober"))
		seen := make(map[uint64]bool)
		n := 0
		ScanPrefix(pr, prefix, ports, r.Derive("iter"), func(p packet.Probe) {
			key := uint64(p.Dst)<<16 | uint64(p.DstPort)
			if seen[key] {
				t.Fatalf("%v: duplicate target %s:%d", tool, packet.FormatIPv4(p.Dst), p.DstPort)
			}
			if !prefix.Contains(p.Dst) {
				t.Fatalf("%v: probe outside prefix", tool)
			}
			seen[key] = true
			n++
		})
		if want := 256 * len(ports); n != want {
			t.Fatalf("%v: %d probes, want %d", tool, n, want)
		}
	}
}

func TestScanPrefixSequential(t *testing.T) {
	prefix := inetmodel.MustPrefix("10.2.0.0/28")
	ports := []uint16{22, 80}
	for _, tool := range []Tool{ToolNMap, ToolCustom} {
		r := rng.New(2).Derive(tool.String())
		pr := NewProber(tool, 42, r.Derive("prober"))
		var order []uint32
		ScanPrefix(pr, prefix, ports, r.Derive("iter"), func(p packet.Probe) {
			order = append(order, p.Dst)
		})
		if len(order) != 32 {
			t.Fatalf("%v: %d probes", tool, len(order))
		}
		// Addresses must be non-decreasing (sequential sweep).
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				t.Fatalf("%v: sweep not sequential at %d", tool, i)
			}
		}
	}
}

func TestScanPrefixMirai(t *testing.T) {
	prefix := inetmodel.MustPrefix("10.3.0.0/26") // 64 addresses
	ports := []uint16{23, 2323}
	r := rng.New(3)
	pr := NewMirai(42, r.Derive("prober"))
	hits := make(map[uint32]int)
	n := 0
	ScanPrefix(pr, prefix, ports, r.Derive("iter"), func(p packet.Probe) {
		if !prefix.Contains(p.Dst) {
			t.Fatal("probe outside prefix")
		}
		if p.DstPort != 23 && p.DstPort != 2323 {
			t.Fatalf("unexpected port %d", p.DstPort)
		}
		hits[p.Dst]++
		n++
	})
	if n != 128 {
		t.Fatalf("%d probes, want 128 (with replacement)", n)
	}
	// Random-with-replacement: most addresses touched, some repeated.
	if len(hits) < 40 {
		t.Fatalf("only %d/64 addresses hit", len(hits))
	}
	repeats := 0
	for _, c := range hits {
		if c > 1 {
			repeats++
		}
	}
	if repeats == 0 {
		t.Fatal("with-replacement sampling should repeat some targets")
	}
}

func TestScanPrefixEmptyPorts(t *testing.T) {
	called := false
	ScanPrefix(NewZMap(1, rng.New(1)), inetmodel.MustPrefix("10.0.0.0/30"), nil,
		rng.New(1), func(packet.Probe) { called = true })
	if called {
		t.Fatal("no ports means no probes")
	}
}

func TestScanIPv4Sharded(t *testing.T) {
	r := rng.New(4)
	pr := NewZMap(1, r.Derive("prober"))
	const shards = 4
	const limit = 2000
	seen := make(map[uint32]int)
	for s := 0; s < shards; s++ {
		// All shards derive their permutation from the same seed, like
		// zmap --seed across shard instances.
		ScanIPv4Sharded(pr, 443, s, shards, limit, rng.New(55), func(p packet.Probe) {
			if p.DstPort != 443 {
				t.Fatal("port mismatch")
			}
			if prev, dup := seen[p.Dst]; dup {
				t.Fatalf("address scanned by shards %d and %d", prev, s)
			}
			seen[p.Dst] = s
		})
	}
	if len(seen) != shards*limit {
		t.Fatalf("%d distinct targets, want %d", len(seen), shards*limit)
	}
}

func BenchmarkScanPrefixZMap(b *testing.B) {
	prefix := inetmodel.MustPrefix("10.0.0.0/24")
	ports := []uint16{80}
	r := rng.New(1)
	pr := NewZMap(1, r.Derive("p"))
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		ScanPrefix(pr, prefix, ports, rng.New(uint64(i)), func(packet.Probe) { count++ })
	}
	_ = count
}
