// Package tools simulates the packet-generation behavior of the scanning
// tools the paper fingerprints (§3.3): ZMap, Masscan, NMap, Mirai and
// Unicornscan, plus an unfingerprintable "custom" scanner as a negative
// control.
//
// Each simulator reproduces exactly the header-field construction that the
// fingerprint equations key on:
//
//	ZMap     IPID = 54321 (constant)
//	Masscan  IPID = (dstIP ^ dstPort ^ SeqNum) & 0xffff
//	NMap     Seq  = secret ^ (nfo << 16 | nfo)   — per-session secret
//	Mirai    Seq  = dstIP
//	Unicorn  Seq  = key ^ dstIP ^ srcPort ^ (dstPort << 16)
//
// so the fingerprint engine downstream is exercised against true positives
// and — via the custom scanner — true negatives.
package tools

import (
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
)

// Tool identifies a scanning tool family.
type Tool uint8

// The fingerprintable tools tracked throughout the paper.
const (
	ToolUnknown Tool = iota
	ToolZMap
	ToolMasscan
	ToolNMap
	ToolMirai
	ToolUnicorn
	ToolCustom
	numTools
)

// Tools lists the concrete tools in display order (Table 1 order).
var Tools = []Tool{ToolMasscan, ToolNMap, ToolMirai, ToolZMap, ToolUnicorn, ToolCustom}

// MarshalText renders the display name in JSON map keys and values.
func (t Tool) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// String returns the tool's display name.
func (t Tool) String() string {
	switch t {
	case ToolZMap:
		return "ZMap"
	case ToolMasscan:
		return "Masscan"
	case ToolNMap:
		return "NMap"
	case ToolMirai:
		return "Mirai-like"
	case ToolUnicorn:
		return "Unicorn"
	case ToolCustom:
		return "Custom"
	case ToolUnknown:
		return "Unknown"
	default:
		return "Invalid"
	}
}

// NumTools returns the number of Tool values (including Unknown), for
// fixed-size tally arrays.
func NumTools() int { return int(numTools) }

// Prober crafts the header fields of one SYN probe the way a specific tool
// would. Implementations are NOT safe for concurrent use; each simulated
// scanning host owns its own Prober.
type Prober interface {
	// Tool identifies the implementation.
	Tool() Tool
	// Probe returns a SYN probe from this scanner to dst:dport. The Time
	// field is left zero; the caller assigns the send time.
	Probe(dst uint32, dport uint16) packet.Probe
}

// mix32 is a cheap 32-bit mixer used to derive per-destination values
// (validation cookies and the like) deterministically from a secret.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// hopTTL returns a plausible received TTL given the initial TTL a tool
// sends with: the probe loses 8-24 hops on its way to the telescope.
func hopTTL(r *rng.Rand, initial uint8) uint8 {
	hops := uint8(8 + r.Intn(17))
	if hops >= initial {
		return 1
	}
	return initial - hops
}

// ZMap simulates the ZMap scanner: constant IP identification 54321 and a
// per-destination validation cookie in the sequence number.
type ZMap struct {
	src     uint32
	secret  uint32
	r       *rng.Rand
	srcPort uint16
}

// ZMapIPID is the constant IP identification value ZMap stamps on probes.
const ZMapIPID uint16 = 54321

// NewZMap creates a ZMap instance scanning from src.
func NewZMap(src uint32, r *rng.Rand) *ZMap {
	return &ZMap{
		src:    src,
		secret: r.Uint32(),
		r:      r,
		// ZMap uses a fixed source port range; model one port per instance
		// out of the ephemeral range.
		srcPort: uint16(32768 + r.Intn(28232)),
	}
}

// Tool implements Prober.
func (z *ZMap) Tool() Tool { return ToolZMap }

// Probe implements Prober.
func (z *ZMap) Probe(dst uint32, dport uint16) packet.Probe {
	return packet.Probe{
		Src:     z.src,
		Dst:     dst,
		SrcPort: z.srcPort,
		DstPort: dport,
		// Validation: ZMap recognizes responses by a MAC over the
		// destination, folded into the sequence number.
		Seq:    mix32(dst ^ z.secret ^ uint32(dport)<<8),
		IPID:   ZMapIPID,
		TTL:    hopTTL(z.r, 255),
		Flags:  packet.FlagSYN,
		Window: 65535,
	}
}

// Masscan simulates Robert Graham's masscan: stateless SYN cookies in the
// sequence number and the characteristic IPID = dstIP ^ dstPort ^ seq
// relation.
type Masscan struct {
	src    uint32
	secret uint32
	r      *rng.Rand
}

// NewMasscan creates a Masscan instance scanning from src.
func NewMasscan(src uint32, r *rng.Rand) *Masscan {
	return &Masscan{src: src, secret: r.Uint32(), r: r}
}

// Tool implements Prober.
func (m *Masscan) Tool() Tool { return ToolMasscan }

// Probe implements Prober.
func (m *Masscan) Probe(dst uint32, dport uint16) packet.Probe {
	// masscan's syn-cookie: a hash of the 4-tuple and a run secret.
	seq := mix32(dst ^ m.secret ^ uint32(dport)*0x9e3779b1)
	return packet.Probe{
		Src:     m.src,
		Dst:     dst,
		SrcPort: uint16(40000 + m.r.Intn(20000)),
		DstPort: dport,
		Seq:     seq,
		IPID:    MasscanIPID(dst, dport, seq),
		TTL:     hopTTL(m.r, 255),
		Flags:   packet.FlagSYN,
		Window:  1024,
	}
}

// MasscanIPID computes the IP identification masscan derives from the
// destination and sequence number, matching the masscan source
// (templ-pkt.c: px->ip_id = ip_them ^ port_them ^ seqno):
// IPid = (dstIP ^ dstPort ^ SeqNum) truncated to 16 bits.
func MasscanIPID(dst uint32, dport uint16, seq uint32) uint16 {
	return uint16(dst ^ uint32(dport) ^ seq)
}

// NMap simulates stock NMap SYN scans: the sequence number carries a 16-bit
// tag duplicated into both halves and XOR-obfuscated with a per-session
// secret. Because the secret is reused across probes of one session, the
// XOR of two sequence numbers from the same host has equal 16-bit halves —
// the §3.3 pairwise fingerprint.
type NMap struct {
	src    uint32
	secret uint32
	r      *rng.Rand
}

// NewNMap creates an NMap instance scanning from src.
func NewNMap(src uint32, r *rng.Rand) *NMap {
	return &NMap{src: src, secret: r.Uint32(), r: r}
}

// Tool implements Prober.
func (n *NMap) Tool() Tool { return ToolNMap }

// Probe implements Prober.
func (n *NMap) Probe(dst uint32, dport uint16) packet.Probe {
	nfo := uint32(uint16(mix32(dst^uint32(dport)*31) & 0xffff))
	return packet.Probe{
		Src:     n.src,
		Dst:     dst,
		SrcPort: uint16(32768 + n.r.Intn(28232)),
		DstPort: dport,
		Seq:     n.secret ^ (nfo<<16 | nfo),
		IPID:    uint16(n.r.Uint32()),
		TTL:     hopTTL(n.r, 64),
		Flags:   packet.FlagSYN,
		Window:  1024,
	}
}

// Mirai simulates the Mirai botnet scanning routine: the raw destination
// address is used as the TCP sequence number, the tell-tale fingerprint the
// paper (and Mirai trackers generally) key on.
type Mirai struct {
	src uint32
	r   *rng.Rand
}

// NewMirai creates a Mirai-infected device scanning from src.
func NewMirai(src uint32, r *rng.Rand) *Mirai {
	return &Mirai{src: src, r: r}
}

// Tool implements Prober.
func (m *Mirai) Tool() Tool { return ToolMirai }

// Probe implements Prober.
func (m *Mirai) Probe(dst uint32, dport uint16) packet.Probe {
	return packet.Probe{
		Src:     m.src,
		Dst:     dst,
		SrcPort: uint16(1024 + m.r.Intn(64512)),
		DstPort: dport,
		Seq:     dst, // the Mirai fingerprint
		IPID:    uint16(m.r.Uint32()),
		TTL:     hopTTL(m.r, 64),
		Flags:   packet.FlagSYN,
		Window:  uint16(5840 + 1460*m.r.Intn(4)),
	}
}

// Unicorn simulates unicornscan, which encodes source and destination
// information into the sequence number under a per-run key:
// Seq = key ^ dstIP ^ srcPort ^ (dstPort << 16).
type Unicorn struct {
	src uint32
	key uint32
	r   *rng.Rand
}

// NewUnicorn creates a unicornscan instance scanning from src.
func NewUnicorn(src uint32, r *rng.Rand) *Unicorn {
	return &Unicorn{src: src, key: r.Uint32(), r: r}
}

// Tool implements Prober.
func (u *Unicorn) Tool() Tool { return ToolUnicorn }

// Probe implements Prober.
func (u *Unicorn) Probe(dst uint32, dport uint16) packet.Probe {
	sport := uint16(1024 + u.r.Intn(64512))
	return packet.Probe{
		Src:     u.src,
		Dst:     dst,
		SrcPort: sport,
		DstPort: dport,
		Seq:     u.key ^ dst ^ uint32(sport) ^ uint32(dport)<<16,
		IPID:    uint16(u.r.Uint32()),
		TTL:     hopTTL(u.r, 64),
		Flags:   packet.FlagSYN,
		Window:  4096,
	}
}

// Custom simulates home-grown scanning tooling with no deliberate
// fingerprint: every variable header field is random. It is the negative
// control for the fingerprint engine and stands in for the long tail of
// bespoke scanners that dominated 2015 and re-emerged after 2022 (§6.1).
type Custom struct {
	src uint32
	r   *rng.Rand
}

// NewCustom creates a custom scanner instance scanning from src.
func NewCustom(src uint32, r *rng.Rand) *Custom {
	return &Custom{src: src, r: r}
}

// Tool implements Prober.
func (c *Custom) Tool() Tool { return ToolCustom }

// Probe implements Prober.
func (c *Custom) Probe(dst uint32, dport uint16) packet.Probe {
	return packet.Probe{
		Src:     c.src,
		Dst:     dst,
		SrcPort: uint16(1024 + c.r.Intn(64512)),
		DstPort: dport,
		Seq:     c.r.Uint32(),
		IPID:    uint16(c.r.Uint32()),
		TTL:     hopTTL(c.r, 128),
		Flags:   packet.FlagSYN,
		Window:  uint16(8192 + c.r.Intn(57344)),
	}
}

// NewProber constructs a Prober of the given tool family for a source.
func NewProber(tool Tool, src uint32, r *rng.Rand) Prober {
	switch tool {
	case ToolZMap:
		return NewZMap(src, r)
	case ToolMasscan:
		return NewMasscan(src, r)
	case ToolNMap:
		return NewNMap(src, r)
	case ToolMirai:
		return NewMirai(src, r)
	case ToolUnicorn:
		return NewUnicorn(src, r)
	default:
		return NewCustom(src, r)
	}
}
