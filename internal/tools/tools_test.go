package tools

import (
	"reflect"
	"testing"
	"testing/quick"

	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
)

func TestToolString(t *testing.T) {
	want := map[Tool]string{
		ToolZMap: "ZMap", ToolMasscan: "Masscan", ToolNMap: "NMap",
		ToolMirai: "Mirai-like", ToolUnicorn: "Unicorn", ToolCustom: "Custom",
		ToolUnknown: "Unknown", Tool(99): "Invalid",
	}
	for tool, s := range want {
		if tool.String() != s {
			t.Errorf("%d.String() = %q, want %q", tool, tool.String(), s)
		}
	}
	if NumTools() != int(numTools) {
		t.Fatal("NumTools mismatch")
	}
}

func TestAllProbersEmitPureSYN(t *testing.T) {
	r := rng.New(1)
	for _, tool := range Tools {
		pr := NewProber(tool, 0x01020304, r.Derive(tool.String()))
		for i := 0; i < 100; i++ {
			p := pr.Probe(uint32(i*7919), uint16(i))
			if !p.IsSYN() {
				t.Fatalf("%v probe %d is not a pure SYN: flags=%#x", tool, i, p.Flags)
			}
			if p.Src != 0x01020304 {
				t.Fatalf("%v: wrong source", tool)
			}
			if p.Dst != uint32(i*7919) || p.DstPort != uint16(i) {
				t.Fatalf("%v: wrong destination", tool)
			}
			if p.TTL == 0 {
				t.Fatalf("%v: zero TTL", tool)
			}
		}
	}
}

func TestZMapFingerprint(t *testing.T) {
	z := NewZMap(1, rng.New(2))
	f := func(dst uint32, dport uint16) bool {
		return z.Probe(dst, dport).IPID == ZMapIPID
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if z.Tool() != ToolZMap {
		t.Fatal("Tool()")
	}
}

func TestMasscanFingerprint(t *testing.T) {
	m := NewMasscan(1, rng.New(3))
	f := func(dst uint32, dport uint16) bool {
		p := m.Probe(dst, dport)
		return p.IPID == uint16(p.Dst^uint32(p.DstPort)^p.Seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if m.Tool() != ToolMasscan {
		t.Fatal("Tool()")
	}
}

func TestNMapPairwiseFingerprint(t *testing.T) {
	n := NewNMap(1, rng.New(4))
	// Any two probes from the same session satisfy
	// (s1^s2)&0xffff == ((s1^s2)>>16)&0xffff.
	f := func(d1, d2 uint32, p1, p2 uint16) bool {
		s1 := n.Probe(d1, p1).Seq
		s2 := n.Probe(d2, p2).Seq
		x := s1 ^ s2
		return x&0xffff == x>>16&0xffff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Two *different* sessions do not (in general) satisfy the relation.
	n2 := NewNMap(2, rng.New(5))
	match := 0
	for i := 0; i < 1000; i++ {
		s1 := n.Probe(uint32(i), 80).Seq
		s2 := n2.Probe(uint32(i), 80).Seq
		x := s1 ^ s2
		if x&0xffff == x>>16&0xffff {
			match++
		}
	}
	if match > 10 {
		t.Fatalf("cross-session NMap relation matched %d/1000", match)
	}
}

func TestMiraiFingerprint(t *testing.T) {
	m := NewMirai(1, rng.New(6))
	f := func(dst uint32, dport uint16) bool {
		return m.Probe(dst, dport).Seq == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnicornPairwiseFingerprint(t *testing.T) {
	u := NewUnicorn(1, rng.New(7))
	f := func(d1, d2 uint32, p1, p2 uint16) bool {
		a := u.Probe(d1, p1)
		b := u.Probe(d2, p2)
		want := (a.Dst ^ b.Dst) ^ uint32(a.SrcPort) ^ uint32(b.SrcPort) ^
			uint32(a.DstPort^b.DstPort)<<16
		return a.Seq^b.Seq == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCustomHasNoFingerprint(t *testing.T) {
	c := NewCustom(1, rng.New(8))
	zmapHits, masscanHits, miraiHits := 0, 0, 0
	n := 20000
	for i := 0; i < n; i++ {
		p := c.Probe(uint32(i*2654435761), 80)
		if p.IPID == ZMapIPID {
			zmapHits++
		}
		if p.IPID == uint16(p.Dst^uint32(p.DstPort)^p.Seq) {
			masscanHits++
		}
		if p.Seq == p.Dst {
			miraiHits++
		}
	}
	// Random collisions happen at ~n/65536 for the 16-bit relations.
	if zmapHits > 5 || masscanHits > 5 || miraiHits > 1 {
		t.Fatalf("custom scanner matches fingerprints: zmap=%d masscan=%d mirai=%d",
			zmapHits, masscanHits, miraiHits)
	}
}

func TestProberDeterminism(t *testing.T) {
	for _, tool := range Tools {
		a := NewProber(tool, 42, rng.New(99).Derive(tool.String()))
		b := NewProber(tool, 42, rng.New(99).Derive(tool.String()))
		for i := 0; i < 50; i++ {
			pa := a.Probe(uint32(i), uint16(i))
			pb := b.Probe(uint32(i), uint16(i))
			if !reflect.DeepEqual(pa, pb) {
				t.Fatalf("%v: not deterministic at probe %d", tool, i)
			}
		}
	}
}

func TestTTLPlausible(t *testing.T) {
	r := rng.New(10)
	// ZMap/Masscan send TTL 255; received TTL must stay above 200.
	z := NewZMap(1, r.Derive("z"))
	for i := 0; i < 200; i++ {
		if ttl := z.Probe(uint32(i), 80).TTL; ttl < 231-24 || ttl > 247 {
			t.Fatalf("zmap TTL %d out of band", ttl)
		}
	}
	// Mirai devices send TTL 64.
	m := NewMirai(1, r.Derive("m"))
	for i := 0; i < 200; i++ {
		if ttl := m.Probe(uint32(i), 23).TTL; ttl < 40 || ttl > 56 {
			t.Fatalf("mirai TTL %d out of band", ttl)
		}
	}
}

func TestNewProberFallback(t *testing.T) {
	p := NewProber(ToolUnknown, 1, rng.New(1))
	if p.Tool() != ToolCustom {
		t.Fatal("unknown tool should fall back to custom")
	}
}

func TestHopTTLFloor(t *testing.T) {
	r := rng.New(11)
	for i := 0; i < 1000; i++ {
		if got := hopTTL(r, 8); got < 1 {
			t.Fatal("TTL must never reach zero")
		}
	}
}

func BenchmarkProbe(b *testing.B) {
	for _, tool := range Tools {
		b.Run(tool.String(), func(b *testing.B) {
			pr := NewProber(tool, 1, rng.New(1))
			var sink packet.Probe
			for i := 0; i < b.N; i++ {
				sink = pr.Probe(uint32(i), 80)
			}
			_ = sink
		})
	}
}
