package enrich

import (
	"testing"

	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/rng"
)

func TestOriginLookup(t *testing.T) {
	reg := inetmodel.BuildRegistry(1)
	e := New(reg)
	r := rng.New(2)

	ip, ok := reg.RandomIP(r, "CN", inetmodel.TypeResidential)
	if !ok {
		t.Fatal("no CN residential space")
	}
	o := e.Origin(ip)
	if o.Country != "CN" || o.Type != inetmodel.TypeResidential || o.OrgID != -1 || o.OrgName != "" {
		t.Fatalf("origin = %+v", o)
	}
	if o.ASN == 0 {
		t.Fatal("ASN missing")
	}

	// Institutional source resolves to the org.
	censys, _ := reg.OrgByName("Censys")
	instIP := uint32(censys.Block)<<16 | 0x1234
	o = e.Origin(instIP)
	if o.Type != inetmodel.TypeInstitutional || o.OrgName != "Censys" {
		t.Fatalf("institutional origin = %+v", o)
	}
	if e.Registry() != reg {
		t.Fatal("Registry accessor")
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"Palo Alto Networks":           "paloaltonetworks",
		"scanner-1.censys-scanner.com": "scanner1censysscannercom",
		"TU_Delft":                     "tudelft",
		"":                             "",
	}
	for in, want := range cases {
		if got := normalize(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestETLRecoversInstitutionalSources(t *testing.T) {
	reg := inetmodel.BuildRegistry(1)
	r := rng.New(3)
	orgs := reg.Orgs()

	// 40 sources from each of five orgs plus 200 background sources.
	var sources []uint32
	wantOrg := make(map[uint32]int16)
	for id := 0; id < 5; id++ {
		for i := 0; i < 40; i++ {
			ip := reg.OrgIP(r, id)
			sources = append(sources, ip)
			wantOrg[ip] = int16(id)
		}
	}
	for i := 0; i < 200; i++ {
		ip, _ := reg.RandomIP(r, "US", inetmodel.TypeResidential)
		sources = append(sources, ip)
	}

	feed := SyntheticFeed(reg, sources, 7)
	res := RunETL(feed, orgs, sources)

	if res.Phase1 == 0 {
		t.Fatal("Phase 1 matched nothing")
	}
	if res.Phase2 == 0 {
		t.Fatal("Phase 2 matched nothing: keyword path dead")
	}
	correct, wrong := 0, 0
	for ip, id := range res.IPOrg {
		want, isInst := wantOrg[ip]
		if !isInst {
			wrong++
		} else if id == want {
			correct++
		} else {
			wrong++
		}
	}
	if wrong > 0 {
		t.Fatalf("%d misattributions", wrong)
	}
	// The WHOIS per-/16 records make recovery essentially complete.
	if correct < len(wantOrg)*9/10 {
		t.Fatalf("recovered only %d/%d institutional sources", correct, len(wantOrg))
	}
	if len(res.Orgs) != 5 {
		t.Fatalf("identified %d orgs, want 5", len(res.Orgs))
	}
	if len(res.Keywords) == 0 {
		t.Fatal("keyword list empty")
	}
}

func TestETLPhase1BeforePhase2(t *testing.T) {
	reg := inetmodel.BuildRegistry(1)
	orgs := reg.Orgs()
	ip := reg.OrgIP(rng.New(1), 0)
	feed := &Feed{
		KnownIPs: map[uint32]string{ip: orgs[0].Name},
		RDNS:     map[uint32]string{ip: "scanner." + orgs[1].Keywords[0] + ".net"},
		WHOIS:    map[uint16]string{},
	}
	res := RunETL(feed, orgs, []uint32{ip})
	if res.Phase1 != 1 || res.Phase2 != 0 {
		t.Fatalf("phase counts: %d/%d", res.Phase1, res.Phase2)
	}
	if res.IPOrg[ip] != 0 {
		t.Fatal("Phase 1 attribution must win")
	}
}

func TestETLUnknownActorIgnored(t *testing.T) {
	reg := inetmodel.BuildRegistry(1)
	orgs := reg.Orgs()
	feed := &Feed{
		KnownIPs: map[uint32]string{42: "Mystery Actor"},
		RDNS:     map[uint32]string{},
		WHOIS:    map[uint16]string{},
	}
	res := RunETL(feed, orgs, []uint32{42})
	if len(res.IPOrg) != 0 {
		t.Fatal("unknown actor must not be attributed")
	}
}

func TestETLNoFeeds(t *testing.T) {
	reg := inetmodel.BuildRegistry(1)
	feed := &Feed{KnownIPs: map[uint32]string{}, RDNS: map[uint32]string{}, WHOIS: map[uint16]string{}}
	res := RunETL(feed, reg.Orgs(), []uint32{1, 2, 3})
	if len(res.IPOrg) != 0 || res.Phase1 != 0 || res.Phase2 != 0 {
		t.Fatal("empty feeds must match nothing")
	}
}

func BenchmarkOrigin(b *testing.B) {
	reg := inetmodel.BuildRegistry(1)
	e := New(reg)
	for i := 0; i < b.N; i++ {
		_ = e.Origin(uint32(i * 2654435761))
	}
}

// TestOriginCache: repeated lookups of one source hit the memoization and
// report through the metrics, and cached results match fresh ones.
func TestOriginCache(t *testing.T) {
	reg := inetmodel.BuildRegistry(1)
	e := New(reg)
	m := obs.NewRegistry()
	e.SetMetrics(m)

	ip := uint32(0x08080808)
	first := e.Origin(ip)
	for i := 0; i < 9; i++ {
		if got := e.Origin(ip); got != first {
			t.Fatalf("cached origin %+v != first %+v", got, first)
		}
	}
	s := m.Snapshot()
	if s.Counter("enrich.cache.misses") != 1 {
		t.Fatalf("misses = %d, want 1", s.Counter("enrich.cache.misses"))
	}
	if s.Counter("enrich.cache.hits") != 9 {
		t.Fatalf("hits = %d, want 9", s.Counter("enrich.cache.hits"))
	}
	if s.Gauge("enrich.cache.size") != 1 {
		t.Fatalf("size = %d, want 1", s.Gauge("enrich.cache.size"))
	}

	// A fresh uncached enricher agrees with the cached one.
	if got := New(reg).Origin(ip); got != first {
		t.Fatalf("uncached origin %+v != cached %+v", got, first)
	}
}
