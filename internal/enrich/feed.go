package enrich

import (
	"fmt"

	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
)

// SyntheticFeed fabricates the raw enrichment feeds for a set of observed
// source addresses, with realistic incompleteness:
//
//   - the known-IP list covers only part of each org's sources (commercial
//     lists lag behind infrastructure churn), so Phase 1 alone is not enough;
//   - reverse DNS names embed org keywords for most institutional sources
//     ("scanner-12.censys-scanner.com" style), recovering the rest in
//     Phase 2;
//   - non-institutional sources get generic rDNS (or none), exercising the
//     negative path.
func SyntheticFeed(reg *inetmodel.Registry, sources []uint32, seed uint64) *Feed {
	r := rng.New(seed).Derive("enrich/feed")
	f := &Feed{
		KnownIPs: make(map[uint32]string),
		RDNS:     make(map[uint32]string),
		WHOIS:    make(map[uint16]string),
	}
	orgs := reg.Orgs()
	for _, ip := range sources {
		e := reg.Lookup(ip)
		if e.OrgID >= 0 {
			org := orgs[e.OrgID]
			// 40% directly on the known-scanner list.
			if r.Bool(0.40) {
				f.KnownIPs[ip] = org.Name
			}
			// 85% have a keyword-bearing rDNS name.
			if r.Bool(0.85) {
				f.RDNS[ip] = fmt.Sprintf("scanner-%d.%s-research.net",
					ip&0xff, org.Keywords[0])
			}
			f.WHOIS[uint16(ip>>16)] = fmt.Sprintf(
				"netname: %s-NET\ndescr: %s scanning infrastructure\nabuse: abuse@%s.example",
				org.Keywords[0], org.Name, org.Keywords[0])
			continue
		}
		// Background sources: generic or missing rDNS.
		if r.Bool(0.5) {
			f.RDNS[ip] = fmt.Sprintf("host-%s.isp.example", packet.FormatIPv4(ip))
		}
	}
	return f
}
