// Package enrich attributes scan sources to countries, autonomous systems,
// scanner types and — for known institutional scanners — organizations.
//
// Two layers exist. Enricher is the straightforward lookup used by all
// analyses (the stand-in for the paper's Greynoise/IPinfo joins). ETL
// reproduces the Appendix-A data-warehousing pipeline that *derives* those
// labels from raw feeds: Phase 1 matches source addresses directly against
// known-scanner IP lists, Phase 2 falls back to keyword matching over
// reverse-DNS and WHOIS text using a keyword list harvested from Phase-1
// actors plus manual additions.
package enrich

import (
	"strings"

	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/obs"
)

// Origin is everything the enrichment knows about a source address.
type Origin struct {
	// Country is the ISO code, or "" for reserved space.
	Country string
	// ASN is the announcing autonomous system.
	ASN uint32
	// Type is the scanner-type classification of Table 2.
	Type inetmodel.ScannerType
	// OrgID indexes the institutional roster, or -1.
	OrgID int16
	// OrgName is the organization name, or "".
	OrgName string
}

// cacheLimit bounds the Origin cache. Scan sources recur heavily (the same
// scanners return day after day), so a modest cache absorbs most lookups;
// when it fills, it is dropped wholesale rather than tracked per-entry —
// the rebuild cost is one registry lookup per entry, and the counters make
// any thrash visible.
const cacheLimit = 1 << 16

// Enricher answers Origin lookups against a registry, memoizing results
// per source address. Not safe for concurrent use (matching the per-year
// collection pipeline, which enriches from a single goroutine).
type Enricher struct {
	reg   *inetmodel.Registry
	cache map[uint32]Origin

	hits, misses *obs.Counter
	size         *obs.Gauge
}

// New creates an Enricher over the registry.
func New(reg *inetmodel.Registry) *Enricher {
	return &Enricher{reg: reg, cache: make(map[uint32]Origin)}
}

// SetMetrics attaches an observability registry: lookups report
// enrich.cache.hits / enrich.cache.misses and the enrich.cache.size gauge.
// A nil registry detaches.
func (e *Enricher) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		e.hits, e.misses, e.size = nil, nil, nil
		return
	}
	e.hits = reg.Counter("enrich.cache.hits")
	e.misses = reg.Counter("enrich.cache.misses")
	e.size = reg.Gauge("enrich.cache.size")
}

// Origin classifies one source address.
func (e *Enricher) Origin(ip uint32) Origin {
	if o, ok := e.cache[ip]; ok {
		e.hits.Inc()
		return o
	}
	e.misses.Inc()
	entry := e.reg.Lookup(ip)
	o := Origin{
		Country: entry.Country,
		ASN:     entry.ASN,
		Type:    entry.Type,
		OrgID:   entry.OrgID,
	}
	if entry.OrgID >= 0 {
		o.OrgName = e.reg.Orgs()[entry.OrgID].Name
	}
	if len(e.cache) >= cacheLimit {
		e.cache = make(map[uint32]Origin)
	}
	e.cache[ip] = o
	e.size.Set(int64(len(e.cache)))
	return o
}

// Registry exposes the underlying registry (analyses need the roster).
func (e *Enricher) Registry() *inetmodel.Registry { return e.reg }

// Feed is the raw data the ETL consumes: a known-scanner IP list (the
// Greynoise-like source), reverse DNS names, and WHOIS-ish text per /16.
type Feed struct {
	// KnownIPs maps source addresses to actor names, as a commercial
	// known-scanner list would.
	KnownIPs map[uint32]string
	// RDNS maps source addresses to their reverse DNS names.
	RDNS map[uint32]string
	// WHOIS maps /16 block numbers to registration text.
	WHOIS map[uint16]string
}

// ETLResult is the outcome of the Appendix-A pipeline.
type ETLResult struct {
	// IPOrg maps matched source addresses to roster org IDs.
	IPOrg map[uint32]int16
	// Phase1 and Phase2 count how many addresses each phase attributed.
	Phase1, Phase2 int
	// Orgs is the set of distinct organizations identified.
	Orgs map[int16]bool
	// Keywords is the final keyword list (harvested + manual).
	Keywords []string
}

// RunETL executes the three-phase pipeline over the observed source
// addresses: extract (the feed), transform (Phase-1 IP matching, then
// Phase-2 keyword matching over rDNS and WHOIS), load (the result maps).
func RunETL(feed *Feed, roster []inetmodel.Org, sources []uint32) *ETLResult {
	res := &ETLResult{
		IPOrg: make(map[uint32]int16),
		Orgs:  make(map[int16]bool),
	}

	// Actor-name → org resolution for Phase 1: normalize and match against
	// roster names and keywords.
	orgByToken := make(map[string]int16)
	for i, org := range roster {
		orgByToken[normalize(org.Name)] = int16(i)
		for _, kw := range org.Keywords {
			orgByToken[normalize(kw)] = int16(i)
		}
	}

	// Phase 1: direct IP matching. Also harvests the keyword list from the
	// actors seen, which seeds Phase 2.
	harvested := make(map[string]bool)
	for _, ip := range sources {
		actor, ok := feed.KnownIPs[ip]
		if !ok {
			continue
		}
		tok := normalize(actor)
		id, known := orgByToken[tok]
		if !known {
			continue
		}
		res.IPOrg[ip] = id
		res.Orgs[id] = true
		res.Phase1++
		harvested[tok] = true
		for _, kw := range roster[id].Keywords {
			harvested[normalize(kw)] = true
		}
	}

	// Manual additions: every roster keyword is fair game, as the appendix
	// enriches the harvested list by hand.
	for _, org := range roster {
		for _, kw := range org.Keywords {
			harvested[normalize(kw)] = true
		}
	}
	for kw := range harvested {
		res.Keywords = append(res.Keywords, kw)
	}

	// Phase 2: keyword matching over rDNS and WHOIS for sources Phase 1
	// did not attribute.
	for _, ip := range sources {
		if _, done := res.IPOrg[ip]; done {
			continue
		}
		var texts []string
		if name, ok := feed.RDNS[ip]; ok {
			texts = append(texts, name)
		}
		if rec, ok := feed.WHOIS[uint16(ip>>16)]; ok {
			texts = append(texts, rec)
		}
		id, ok := matchKeywords(texts, orgByToken)
		if !ok {
			continue
		}
		res.IPOrg[ip] = id
		res.Orgs[id] = true
		res.Phase2++
	}
	return res
}

// matchKeywords scans the texts for any known token.
func matchKeywords(texts []string, orgByToken map[string]int16) (int16, bool) {
	for _, txt := range texts {
		n := normalize(txt)
		for tok, id := range orgByToken {
			if tok != "" && strings.Contains(n, tok) {
				return id, true
			}
		}
	}
	return -1, false
}

// normalize lowercases and strips separators so "Palo Alto Networks"
// matches "paloaltonetworks.com".
func normalize(s string) string {
	var b strings.Builder
	for _, ch := range strings.ToLower(s) {
		switch ch {
		case ' ', '-', '_', '.':
		default:
			b.WriteRune(ch)
		}
	}
	return b.String()
}
