package inetmodel

import "math"

// This file implements the network-telescope sensitivity model of Moore et
// al. (CAIDA TR CS2004-0795) that §3.4 of the paper uses to justify its
// campaign definition: a scanner probing random IPv4 addresses at 100 pps
// appears in a telescope of ~71,536 addresses within one hour with
// probability 99.9%.

// IPv4SpaceSize is the number of possible IPv4 addresses.
const IPv4SpaceSize = 1 << 32

// HitProbability returns the probability that a single uniformly random
// probe lands inside a telescope of the given size.
func HitProbability(telescopeSize int) float64 {
	return float64(telescopeSize) / float64(IPv4SpaceSize)
}

// DetectionProbability returns the probability that a scanner probing
// uniformly random addresses at ratePPS for the given number of seconds hits
// the telescope at least once. The number of probes until the first hit is
// geometric with parameter p = telescopeSize/2^32, so
// P(detect) = 1 - (1-p)^(rate*seconds).
func DetectionProbability(ratePPS float64, telescopeSize int, seconds float64) float64 {
	if ratePPS <= 0 || seconds <= 0 || telescopeSize <= 0 {
		return 0
	}
	p := HitProbability(telescopeSize)
	n := ratePPS * seconds
	return 1 - math.Pow(1-p, n)
}

// TimeToDetection returns the number of seconds after which a scanner at
// ratePPS is seen with the given confidence (e.g. 0.999).
func TimeToDetection(ratePPS float64, telescopeSize int, confidence float64) float64 {
	if ratePPS <= 0 || telescopeSize <= 0 || confidence <= 0 || confidence >= 1 {
		return math.Inf(1)
	}
	p := HitProbability(telescopeSize)
	// Solve 1-(1-p)^(r*t) = c for t.
	return math.Log(1-confidence) / math.Log(1-p) / ratePPS
}

// ExpectedObservations returns how many probes of a scan covering the given
// fraction of the IPv4 space (with one probe per covered address and port)
// are expected to land in the telescope.
func ExpectedObservations(coverage float64, telescopeSize int, ports int) float64 {
	if coverage < 0 {
		coverage = 0
	}
	if coverage > 1 {
		coverage = 1
	}
	return coverage * float64(telescopeSize) * float64(ports)
}

// ExtrapolateRate converts a rate observed at the telescope into the
// scanner's Internet-wide probing rate — the quantity the §3.4 campaign
// threshold (100 pps Internet-wide) is expressed in.
func ExtrapolateRate(observedPPS float64, telescopeSize int) float64 {
	if telescopeSize <= 0 {
		return 0
	}
	return observedPPS * float64(IPv4SpaceSize) / float64(telescopeSize)
}

// ExtrapolateCoverage estimates the fraction of the IPv4 space a scan
// covered from the number of distinct telescope addresses it hit.
func ExtrapolateCoverage(distinctDsts, telescopeSize int) float64 {
	if telescopeSize <= 0 {
		return 0
	}
	c := float64(distinctDsts) / float64(telescopeSize)
	if c > 1 {
		c = 1
	}
	return c
}
