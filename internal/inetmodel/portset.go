package inetmodel

import "math/bits"

// PortSet is a bitmap over the 65,536 TCP ports. The zero value is the empty
// set. At 8 KiB per value it is cheap enough to keep one per campaign, which
// is what the vertical-scan analyses (§5.1, §5.2, Fig. 8) need.
type PortSet struct {
	words [1024]uint64
	count int
}

// Add inserts port into the set.
func (s *PortSet) Add(port uint16) {
	w, b := port>>6, uint(port&63)
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.count++
	}
}

// Has reports whether port is in the set.
func (s *PortSet) Has(port uint16) bool {
	return s.words[port>>6]&(1<<uint(port&63)) != 0
}

// Len returns the number of ports in the set.
func (s *PortSet) Len() int { return s.count }

// Clear empties the set.
func (s *PortSet) Clear() {
	s.words = [1024]uint64{}
	s.count = 0
}

// Ports returns the members in ascending order.
func (s *PortSet) Ports() []uint16 {
	out := make([]uint16, 0, s.count)
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, uint16(wi<<6|b))
			w &= w - 1
		}
	}
	return out
}

// AddRange inserts every port in [lo, hi] (inclusive).
func (s *PortSet) AddRange(lo, hi uint16) {
	for p := uint32(lo); p <= uint32(hi); p++ {
		s.Add(uint16(p))
	}
}

// Union merges other into s.
func (s *PortSet) Union(other *PortSet) {
	for i, w := range other.words {
		added := w &^ s.words[i]
		s.words[i] |= w
		s.count += bits.OnesCount64(added)
	}
}

// CoverageOfRange returns the fraction of the full port range present.
func (s *PortSet) CoverageOfRange() float64 {
	return float64(s.count) / 65536.0
}
