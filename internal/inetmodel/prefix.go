// Package inetmodel models the IPv4 Internet as the measurement needs it:
// address prefixes, a synthetic-but-realistic registry mapping address space
// to countries, autonomous systems and scanner types, the roster of known
// institutional scanning organizations, a service-population model for
// vertical-scan comparisons, and the geometric network-telescope sensitivity
// model of Moore et al. that the paper uses to justify its campaign
// thresholds (§3.4).
//
// The registry substitutes for the commercial enrichment feeds (Greynoise,
// IPinfo, Censys metadata) the paper consumed: the classification *logic*
// downstream is identical, only the lookup table is synthetic.
package inetmodel

import (
	"fmt"

	"github.com/synscan/synscan/internal/packet"
)

// Prefix is an IPv4 CIDR block.
type Prefix struct {
	// Base is the network address; bits below Bits are zero.
	Base uint32
	// Bits is the prefix length, 0..32.
	Bits uint8
}

// MustPrefix parses "a.b.c.d/n" and panics on malformed input; intended for
// static tables.
func MustPrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses "a.b.c.d/n" CIDR notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := -1
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			slash = i
			break
		}
	}
	if slash < 0 {
		return Prefix{}, fmt.Errorf("inetmodel: missing / in prefix %q", s)
	}
	base, err := packet.ParseIPv4(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits := 0
	for _, ch := range s[slash+1:] {
		if ch < '0' || ch > '9' {
			return Prefix{}, fmt.Errorf("inetmodel: invalid prefix length in %q", s)
		}
		bits = bits*10 + int(ch-'0')
		if bits > 32 {
			return Prefix{}, fmt.Errorf("inetmodel: prefix length out of range in %q", s)
		}
	}
	if len(s[slash+1:]) == 0 {
		return Prefix{}, fmt.Errorf("inetmodel: empty prefix length in %q", s)
	}
	p := Prefix{Base: base & mask(uint8(bits)), Bits: uint8(bits)}
	if p.Base != base {
		return Prefix{}, fmt.Errorf("inetmodel: %q has host bits set", s)
	}
	return p, nil
}

func mask(bits uint8) uint32 {
	if bits == 0 {
		return 0
	}
	return ^uint32(0) << (32 - bits)
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip uint32) bool {
	return ip&mask(p.Bits) == p.Base
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 { return 1 << (32 - p.Bits) }

// First returns the lowest address in the prefix.
func (p Prefix) First() uint32 { return p.Base }

// Last returns the highest address in the prefix.
func (p Prefix) Last() uint32 { return p.Base | ^mask(p.Bits) }

// Nth returns the n-th address of the prefix (0-based). It panics if n is
// out of range.
func (p Prefix) Nth(n uint64) uint32 {
	if n >= p.Size() {
		panic("inetmodel: Prefix.Nth out of range")
	}
	return p.Base + uint32(n)
}

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.Base) || q.Contains(p.Base)
}

// String renders CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", packet.FormatIPv4(p.Base), p.Bits)
}

// Block16 returns the /16 block index (upper 16 address bits) of ip. The
// volatility analysis of §4.4 aggregates activity per /16 netblock.
func Block16(ip uint32) uint16 { return uint16(ip >> 16) }

// reservedPrefixes is the bogon space scanners skip and telescopes never see
// as sources.
var reservedPrefixes = []Prefix{
	MustPrefix("0.0.0.0/8"),
	MustPrefix("10.0.0.0/8"),
	MustPrefix("100.64.0.0/10"),
	MustPrefix("127.0.0.0/8"),
	MustPrefix("169.254.0.0/16"),
	MustPrefix("172.16.0.0/12"),
	MustPrefix("192.168.0.0/16"),
	MustPrefix("224.0.0.0/4"),
	MustPrefix("240.0.0.0/4"),
}

// IsReserved reports whether ip lies in non-routable or multicast space.
func IsReserved(ip uint32) bool {
	for _, p := range reservedPrefixes {
		if p.Contains(ip) {
			return true
		}
	}
	return false
}
