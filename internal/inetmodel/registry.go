package inetmodel

import (
	"github.com/synscan/synscan/internal/rng"
)

// ScannerType classifies the origin of a scan source, following §6.6 of the
// paper: institutional scanners publicize their activity (Censys, Shodan,
// universities, ...), hosting means cloud/VPS space, enterprise is corporate
// AS space, residential is consumer access networks, unknown is everything
// the enrichment could not attribute.
type ScannerType uint8

// Scanner types in the order used by Table 2.
const (
	TypeUnknown ScannerType = iota
	TypeResidential
	TypeHosting
	TypeEnterprise
	TypeInstitutional
	TypeReserved
	numTypes
)

// ScannerTypes lists the classifiable types (excluding Reserved) in display
// order.
var ScannerTypes = []ScannerType{
	TypeHosting, TypeEnterprise, TypeInstitutional, TypeResidential, TypeUnknown,
}

// MarshalText renders the label in JSON map keys and values.
func (t ScannerType) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// String returns the label used in tables.
func (t ScannerType) String() string {
	switch t {
	case TypeUnknown:
		return "Unknown"
	case TypeResidential:
		return "Residential"
	case TypeHosting:
		return "Hosting"
	case TypeEnterprise:
		return "Enterprise"
	case TypeInstitutional:
		return "Institutional"
	case TypeReserved:
		return "Reserved"
	default:
		return "Invalid"
	}
}

// Entry describes one /16 block of the synthetic registry.
type Entry struct {
	// Country is the ISO-3166 alpha-2 code of the block's operator.
	Country string
	// ASN is the autonomous system the block is announced from.
	ASN uint32
	// Type is the scanner-type classification of the block.
	Type ScannerType
	// OrgID indexes into the institutional roster, or -1.
	OrgID int16
}

// countryShare approximates the relative amount of active address space per
// country. The exact values do not matter; what matters is that a handful of
// countries dominate (as in the real registry data the paper enriches with)
// and that the set is stable across the simulated decade.
var countryShare = []struct {
	code   string
	weight float64
}{
	{"US", 28}, {"CN", 12}, {"JP", 5}, {"DE", 4.5}, {"GB", 4}, {"KR", 3.8},
	{"BR", 3.5}, {"FR", 3.3}, {"IN", 3}, {"RU", 3}, {"NL", 2.5}, {"CA", 2.4},
	{"IT", 2.2}, {"AU", 2}, {"TW", 1.9}, {"ID", 1.7}, {"VN", 1.6}, {"MX", 1.5},
	{"IR", 1.4}, {"TR", 1.3}, {"PL", 1.2}, {"ES", 1.2}, {"AR", 1.1}, {"TH", 1},
	{"UA", 0.9}, {"EG", 0.8}, {"ZA", 0.8}, {"CO", 0.7}, {"MY", 0.7}, {"RO", 0.6},
	{"SE", 0.6}, {"CH", 0.6}, {"SG", 0.5}, {"HK", 0.5}, {"BE", 0.5},
}

// typeShare is the scanner-type mix within a country's address space.
var typeShare = []struct {
	typ    ScannerType
	weight float64
}{
	{TypeResidential, 0.52},
	{TypeEnterprise, 0.21},
	{TypeHosting, 0.15},
	{TypeUnknown, 0.12},
}

// Registry maps every /16 of the IPv4 space to an Entry and provides
// weighted random source selection for the workload generator.
type Registry struct {
	blocks [65536]Entry
	orgs   []Org
	// groupBlocks indexes the /16 block numbers per (country, type).
	groupBlocks map[groupKey][]uint16
	// typeBlocks indexes block numbers per type across countries.
	typeBlocks map[ScannerType][]uint16
	countries  []string
}

type groupKey struct {
	country string
	typ     ScannerType
}

// BuildRegistry constructs the deterministic synthetic registry for the
// given seed. The same seed always yields the same Internet.
func BuildRegistry(seed uint64) *Registry {
	r := rng.New(seed).Derive("inetmodel/registry")
	reg := &Registry{
		groupBlocks: make(map[groupKey][]uint16),
		typeBlocks:  make(map[ScannerType][]uint16),
	}

	countryChoice := make([]float64, len(countryShare))
	for i, c := range countryShare {
		countryChoice[i] = c.weight
	}
	countryPick := rng.NewWeightedChoice(countryChoice)

	typeChoice := make([]float64, len(typeShare))
	for i, tshare := range typeShare {
		typeChoice[i] = tshare.weight
	}
	typePick := rng.NewWeightedChoice(typeChoice)

	// Each country gets a pool of ASNs proportional to its share.
	asnPools := make(map[string][]uint32)
	nextASN := uint32(100)
	for _, c := range countryShare {
		n := int(c.weight*40) + 4
		pool := make([]uint32, n)
		for i := range pool {
			pool[i] = nextASN
			nextASN++
		}
		asnPools[c.code] = pool
		reg.countries = append(reg.countries, c.code)
	}

	for b := 0; b < 65536; b++ {
		base := uint32(b) << 16
		if IsReserved(base) {
			reg.blocks[b] = Entry{Country: "", ASN: 0, Type: TypeReserved, OrgID: -1}
			continue
		}
		c := countryShare[countryPick.Sample(r)].code
		tshare := typeShare[typePick.Sample(r)].typ
		pool := asnPools[c]
		e := Entry{
			Country: c,
			ASN:     pool[int(r.Uint32())%len(pool)],
			Type:    tshare,
			OrgID:   -1,
		}
		reg.blocks[b] = e
	}

	reg.placeOrgs(r)

	// Build the group indexes after org placement so institutional blocks
	// land in the right buckets.
	for b := 0; b < 65536; b++ {
		e := reg.blocks[b]
		if e.Type == TypeReserved {
			continue
		}
		k := groupKey{e.Country, e.Type}
		reg.groupBlocks[k] = append(reg.groupBlocks[k], uint16(b))
		reg.typeBlocks[e.Type] = append(reg.typeBlocks[e.Type], uint16(b))
	}
	return reg
}

// placeOrgs assigns each institutional organization a dedicated /16 in its
// home country. Real institutional scanners use smaller blocks; a /16 keeps
// lookup O(1) and the per-source behavior identical.
func (reg *Registry) placeOrgs(r *rng.Rand) {
	reg.orgs = buildRoster()
	// Collect candidate blocks by country.
	byCountry := make(map[string][]int)
	for b := 0; b < 65536; b++ {
		e := &reg.blocks[b]
		if e.Type == TypeReserved || e.Type == TypeInstitutional {
			continue
		}
		byCountry[e.Country] = append(byCountry[e.Country], b)
	}
	used := make(map[int]bool)
	for i := range reg.orgs {
		org := &reg.orgs[i]
		cands := byCountry[org.Country]
		if len(cands) == 0 {
			cands = byCountry["US"]
		}
		// Deterministic pick: walk from a seeded offset to an unused block.
		start := int(r.Uint32()) % len(cands)
		for j := 0; ; j++ {
			b := cands[(start+j)%len(cands)]
			if !used[b] {
				used[b] = true
				org.Block = uint16(b)
				reg.blocks[b].Type = TypeInstitutional
				reg.blocks[b].OrgID = int16(i)
				break
			}
		}
	}
}

// Lookup returns the registry entry for ip.
func (reg *Registry) Lookup(ip uint32) Entry { return reg.blocks[ip>>16] }

// Countries returns the country codes in registry order.
func (reg *Registry) Countries() []string { return reg.countries }

// Orgs returns the institutional roster.
func (reg *Registry) Orgs() []Org { return reg.orgs }

// OrgByName returns the roster entry with the given name.
func (reg *Registry) OrgByName(name string) (Org, bool) {
	for _, o := range reg.orgs {
		if o.Name == name {
			return o, true
		}
	}
	return Org{}, false
}

// RandomIP draws a uniform host address from the blocks of (country, typ).
// ok is false when that combination has no address space.
func (reg *Registry) RandomIP(r *rng.Rand, country string, typ ScannerType) (uint32, bool) {
	blocks := reg.groupBlocks[groupKey{country, typ}]
	if len(blocks) == 0 {
		return 0, false
	}
	b := blocks[int(r.Uint32())%len(blocks)]
	return uint32(b)<<16 | r.Uint32()&0xffff, true
}

// RandomIPOfType draws a uniform host address of the given type from any
// country.
func (reg *Registry) RandomIPOfType(r *rng.Rand, typ ScannerType) (uint32, bool) {
	blocks := reg.typeBlocks[typ]
	if len(blocks) == 0 {
		return 0, false
	}
	b := blocks[int(r.Uint32())%len(blocks)]
	return uint32(b)<<16 | r.Uint32()&0xffff, true
}

// OrgIP draws a source address from an institutional organization's block.
func (reg *Registry) OrgIP(r *rng.Rand, orgID int) uint32 {
	b := reg.orgs[orgID].Block
	return uint32(b)<<16 | r.Uint32()&0xffff
}

// ChurnIP models DHCP churn: the same physical device reappears under a
// different address within its /16 (§4.2 attributes inflated source counts
// on Mirai-heavy ports to exactly this effect).
func ChurnIP(r *rng.Rand, ip uint32) uint32 {
	return ip&0xffff0000 | r.Uint32()&0xffff
}
