package inetmodel

// OrgKind distinguishes the flavors of institutional scanners named in the
// paper's appendix.
type OrgKind uint8

// Kinds of known scanning organizations.
const (
	KindCompany OrgKind = iota
	KindNonprofit
	KindUniversity
)

// String returns a human-readable kind label.
func (k OrgKind) String() string {
	switch k {
	case KindCompany:
		return "company"
	case KindNonprofit:
		return "nonprofit"
	case KindUniversity:
		return "university"
	default:
		return "invalid"
	}
}

// Org is one known institutional scanning organization (Appendix A of the
// paper). The synthetic roster mirrors the named organizations, their
// relative port coverage in 2023 vs 2024 (Figures 8–10) and their qualitative
// behavior: daily recurrence, high speed, and — for companies like Censys or
// Palo Alto Networks — full 65,536-port coverage by 2024.
type Org struct {
	// Name as used in the paper's figures.
	Name string
	// Country of the org's scanning infrastructure.
	Country string
	// Kind of organization.
	Kind OrgKind
	// Block is the /16 the registry assigned to this org (set at build).
	Block uint16
	// Ports2023 and Ports2024 are the numbers of distinct TCP ports the
	// org's scans covered in the 2023 and 2024 measurement windows.
	Ports2023, Ports2024 int
	// StartYear is the first simulated year the org scans.
	StartYear int
	// Daily marks sources that re-scan every day (§6.6: a large mode of
	// institutional IPs scans the Internet every single day).
	Daily bool
	// SpeedPPS is the typical per-source probe rate in packets/second.
	SpeedPPS float64
	// Sources is the approximate number of distinct source IPs in use.
	Sources int
	// Keywords are the rDNS/WHOIS tokens the Appendix-A ETL matches on.
	Keywords []string
}

// PortsInYear returns the number of distinct ports the org targets in the
// given year. 2023/2024 use the figures from the paper's appendix; earlier
// years decay geometrically toward a small floor, matching the paper's
// observation that institutions "are rapidly expanding the number of ports
// targeted". Universities do not grow (§6.8).
func (o Org) PortsInYear(year int) int {
	if year < o.StartYear {
		return 0
	}
	switch {
	case year >= 2024:
		return o.Ports2024
	case year == 2023:
		return o.Ports2023
	}
	if o.Kind == KindUniversity {
		return o.Ports2023
	}
	p := float64(o.Ports2023)
	for y := 2023; y > year; y-- {
		p *= 0.60
	}
	if p < 4 {
		p = 4
	}
	return int(p)
}

// buildRoster returns the static institutional roster. Port counts encode
// the relative coverage visible in Figures 8, 9 and 10: full-range scanners
// (Censys, Palo Alto Networks, Criminal IP, and by 2024 Onyphe and Shodan),
// partial-range scanners (Shadowserver, Rapid7, ...), and narrow university
// scanners.
func buildRoster() []Org {
	return []Org{
		{Name: "Censys", Country: "US", Kind: KindCompany, Ports2023: 65536, Ports2024: 65536, StartYear: 2016, Daily: true, SpeedPPS: 200000, Sources: 600, Keywords: []string{"censys"}},
		{Name: "Palo Alto Networks", Country: "US", Kind: KindCompany, Ports2023: 65536, Ports2024: 65536, StartYear: 2020, Daily: true, SpeedPPS: 150000, Sources: 400, Keywords: []string{"paloalto", "cortex", "xpanse"}},
		{Name: "Criminal IP", Country: "KR", Kind: KindCompany, Ports2023: 65536, Ports2024: 65536, StartYear: 2021, Daily: true, SpeedPPS: 100000, Sources: 250, Keywords: []string{"criminalip"}},
		{Name: "Shodan", Country: "US", Kind: KindCompany, Ports2023: 58000, Ports2024: 62000, StartYear: 2015, Daily: true, SpeedPPS: 75000, Sources: 300, Keywords: []string{"shodan"}},
		{Name: "Onyphe", Country: "FR", Kind: KindCompany, Ports2023: 29000, Ports2024: 65536, StartYear: 2018, Daily: true, SpeedPPS: 87500, Sources: 150, Keywords: []string{"onyphe"}},
		{Name: "Driftnet", Country: "GB", Kind: KindCompany, Ports2023: 21000, Ports2024: 26000, StartYear: 2021, Daily: true, SpeedPPS: 62500, Sources: 120, Keywords: []string{"driftnet"}},
		{Name: "Internet Census Group", Country: "DE", Kind: KindCompany, Ports2023: 11000, Ports2024: 13000, StartYear: 2018, Daily: true, SpeedPPS: 50000, Sources: 200, Keywords: []string{"internet-census", "internetcensus"}},
		{Name: "Shadowserver", Country: "US", Kind: KindNonprofit, Ports2023: 6200, Ports2024: 8100, StartYear: 2015, Daily: true, SpeedPPS: 37500, Sources: 500, Keywords: []string{"shadowserver"}},
		{Name: "Alpha Strike Labs", Country: "DE", Kind: KindCompany, Ports2023: 4100, Ports2024: 5200, StartYear: 2020, Daily: true, SpeedPPS: 45000, Sources: 90, Keywords: []string{"alphastrike"}},
		{Name: "LeakIX", Country: "BE", Kind: KindCompany, Ports2023: 3100, Ports2024: 3600, StartYear: 2020, Daily: true, SpeedPPS: 30000, Sources: 60, Keywords: []string{"leakix"}},
		{Name: "Rapid7", Country: "US", Kind: KindCompany, Ports2023: 2100, Ports2024: 2600, StartYear: 2015, Daily: true, SpeedPPS: 55000, Sources: 180, Keywords: []string{"rapid7", "sonar"}},
		{Name: "Bit Discovery", Country: "US", Kind: KindCompany, Ports2023: 2000, Ports2024: 2300, StartYear: 2019, Daily: true, SpeedPPS: 25000, Sources: 70, Keywords: []string{"bitdiscovery", "tenable"}},
		{Name: "CyberResilience", Country: "GB", Kind: KindCompany, Ports2023: 1500, Ports2024: 1650, StartYear: 2021, Daily: true, SpeedPPS: 22500, Sources: 40, Keywords: []string{"cyberresilience"}},
		{Name: "Stretchoid", Country: "US", Kind: KindCompany, Ports2023: 1100, Ports2024: 1250, StartYear: 2016, Daily: true, SpeedPPS: 20000, Sources: 350, Keywords: []string{"stretchoid"}},
		{Name: "Hadrian", Country: "NL", Kind: KindCompany, Ports2023: 1000, Ports2024: 1150, StartYear: 2022, Daily: true, SpeedPPS: 27500, Sources: 35, Keywords: []string{"hadrian"}},
		{Name: "Intrinsec", Country: "FR", Kind: KindCompany, Ports2023: 850, Ports2024: 950, StartYear: 2020, Daily: true, SpeedPPS: 17500, Sources: 30, Keywords: []string{"intrinsec"}},
		{Name: "DataGrid Surface", Country: "US", Kind: KindCompany, Ports2023: 700, Ports2024: 780, StartYear: 2022, Daily: true, SpeedPPS: 15000, Sources: 25, Keywords: []string{"datagrid"}},
		{Name: "SecurityTrails", Country: "US", Kind: KindCompany, Ports2023: 520, Ports2024: 570, StartYear: 2019, Daily: true, SpeedPPS: 22500, Sources: 45, Keywords: []string{"securitytrails"}},
		{Name: "Leitwert", Country: "CH", Kind: KindCompany, Ports2023: 310, Ports2024: 330, StartYear: 2022, Daily: true, SpeedPPS: 12500, Sources: 20, Keywords: []string{"leitwert"}},
		{Name: "Adscore", Country: "PL", Kind: KindCompany, Ports2023: 210, Ports2024: 230, StartYear: 2020, Daily: true, SpeedPPS: 10000, Sources: 30, Keywords: []string{"adscore"}},
		{Name: "bufferover.run", Country: "US", Kind: KindCompany, Ports2023: 110, Ports2024: 130, StartYear: 2019, Daily: true, SpeedPPS: 7500, Sources: 15, Keywords: []string{"bufferover"}},
		{Name: "University of Michigan", Country: "US", Kind: KindUniversity, Ports2023: 48, Ports2024: 48, StartYear: 2015, Daily: true, SpeedPPS: 125000, Sources: 40, Keywords: []string{"umich", "merit"}},
		{Name: "UCSD", Country: "US", Kind: KindUniversity, Ports2023: 30, Ports2024: 30, StartYear: 2015, Daily: false, SpeedPPS: 50000, Sources: 25, Keywords: []string{"ucsd", "caida"}},
		{Name: "TU Delft", Country: "NL", Kind: KindUniversity, Ports2023: 12, Ports2024: 12, StartYear: 2016, Daily: false, SpeedPPS: 37500, Sources: 12, Keywords: []string{"tudelft"}},
		{Name: "TU Munich", Country: "DE", Kind: KindUniversity, Ports2023: 10, Ports2024: 10, StartYear: 2016, Daily: false, SpeedPPS: 45000, Sources: 10, Keywords: []string{"tum", "net.in.tum"}},
		{Name: "RWTH Aachen", Country: "DE", Kind: KindUniversity, Ports2023: 8, Ports2024: 8, StartYear: 2017, Daily: false, SpeedPPS: 30000, Sources: 8, Keywords: []string{"rwth", "comsys"}},
		{Name: "Stanford University", Country: "US", Kind: KindUniversity, Ports2023: 6, Ports2024: 6, StartYear: 2019, Daily: false, SpeedPPS: 62500, Sources: 8, Keywords: []string{"stanford", "esrg"}},
	}
}
