package inetmodel

import (
	"testing"
	"testing/quick"
)

func TestPortSetBasics(t *testing.T) {
	var s PortSet
	if s.Len() != 0 || s.Has(80) {
		t.Fatal("zero value must be empty")
	}
	s.Add(80)
	s.Add(443)
	s.Add(80) // duplicate
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has(80) || !s.Has(443) || s.Has(22) {
		t.Fatal("membership wrong")
	}
	got := s.Ports()
	if len(got) != 2 || got[0] != 80 || got[1] != 443 {
		t.Fatalf("Ports = %v", got)
	}
	s.Clear()
	if s.Len() != 0 || s.Has(80) {
		t.Fatal("Clear failed")
	}
}

func TestPortSetBoundaries(t *testing.T) {
	var s PortSet
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(65535)
	for _, p := range []uint16{0, 63, 64, 65535} {
		if !s.Has(p) {
			t.Fatalf("port %d missing", p)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestPortSetAddRange(t *testing.T) {
	var s PortSet
	s.AddRange(100, 199)
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Has(100) || !s.Has(199) || s.Has(99) || s.Has(200) {
		t.Fatal("range bounds wrong")
	}
	// Full range must not overflow the uint16 loop.
	var full PortSet
	full.AddRange(0, 65535)
	if full.Len() != 65536 {
		t.Fatalf("full Len = %d", full.Len())
	}
	if full.CoverageOfRange() != 1 {
		t.Fatalf("coverage = %v", full.CoverageOfRange())
	}
}

func TestPortSetUnion(t *testing.T) {
	var a, b PortSet
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(3)
	a.Union(&b)
	if a.Len() != 3 || !a.Has(1) || !a.Has(2) || !a.Has(3) {
		t.Fatalf("union wrong: %v", a.Ports())
	}
	// b untouched.
	if b.Len() != 2 {
		t.Fatal("Union modified operand")
	}
}

func TestPortSetQuick(t *testing.T) {
	f := func(ports []uint16) bool {
		var s PortSet
		uniq := make(map[uint16]bool)
		for _, p := range ports {
			s.Add(p)
			uniq[p] = true
		}
		if s.Len() != len(uniq) {
			return false
		}
		for p := range uniq {
			if !s.Has(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPortSetAdd(b *testing.B) {
	var s PortSet
	for i := 0; i < b.N; i++ {
		s.Add(uint16(i))
	}
}
