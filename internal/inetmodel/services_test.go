package inetmodel

import (
	"testing"

	"github.com/synscan/synscan/internal/rng"
)

func TestServiceModelWellKnownPortsDominate(t *testing.T) {
	m := NewServiceModel(1)
	if m.OpenProbability(80) < 0.05 {
		t.Fatalf("P(80 open) = %v", m.OpenProbability(80))
	}
	if m.OpenProbability(80) <= m.OpenProbability(47321) {
		t.Fatal("port 80 must dominate a random high port")
	}
	// Every port has strictly positive probability (services live anywhere,
	// per Izhikevich et al.).
	for _, p := range []uint16{1, 1024, 33333, 65535} {
		if m.OpenProbability(p) <= 0 {
			t.Fatalf("P(%d) must be positive", p)
		}
	}
}

func TestServiceModelDeterministic(t *testing.T) {
	a := NewServiceModel(5)
	b := NewServiceModel(5)
	for p := 0; p < 65536; p += 1009 {
		if a.OpenProbability(uint16(p)) != b.OpenProbability(uint16(p)) {
			t.Fatal("same seed should give same model")
		}
	}
}

func TestServiceModelExpectedServices(t *testing.T) {
	m := NewServiceModel(1)
	exp := m.ExpectedServices()
	// ~0.15 tail mass + ~0.27 well-known mass: must be in a sane band.
	if exp < 0.2 || exp > 1.0 {
		t.Fatalf("ExpectedServices = %v, outside plausible band", exp)
	}
}

func TestVerticalScan(t *testing.T) {
	m := NewServiceModel(1)
	r := rng.New(2)
	n := 100000
	counts := m.VerticalScan(r, n)
	if len(counts) != 65536 {
		t.Fatalf("counts length %d", len(counts))
	}
	// Port 80 expectation: n * P(80).
	want := float64(n) * m.OpenProbability(80)
	got := float64(counts[80])
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("port 80 count %v, want ~%v", got, want)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	wantTotal := float64(n) * m.ExpectedServices()
	if float64(total) < wantTotal*0.9 || float64(total) > wantTotal*1.1 {
		t.Fatalf("total services %d, want ~%v", total, wantTotal)
	}
}

func TestOrgPortsInYear(t *testing.T) {
	roster := buildRoster()
	var censys, onyphe, tum Org
	for _, o := range roster {
		switch o.Name {
		case "Censys":
			censys = o
		case "Onyphe":
			onyphe = o
		case "TU Munich":
			tum = o
		}
	}
	if censys.PortsInYear(2024) != 65536 || censys.PortsInYear(2023) != 65536 {
		t.Fatal("Censys covers the full range in 2023-2024")
	}
	if censys.PortsInYear(2015) != 0 {
		t.Fatal("Censys starts in 2016")
	}
	if got := censys.PortsInYear(2018); got <= 0 || got >= 65536 {
		t.Fatalf("Censys 2018 = %d, want partial coverage", got)
	}
	// Onyphe scales up from below half to the full range (§6.8).
	if onyphe.PortsInYear(2023) >= 32768 {
		t.Fatal("Onyphe 2023 must be below half the range")
	}
	if onyphe.PortsInYear(2024) != 65536 {
		t.Fatal("Onyphe 2024 must be the full range")
	}
	// Universities do not grow.
	if tum.PortsInYear(2018) != tum.PortsInYear(2023) {
		t.Fatal("university port coverage must be flat")
	}
	if tum.PortsInYear(2025) != tum.PortsInYear(2024) {
		t.Fatal("beyond-2024 years clamp to 2024")
	}
}

func TestOrgKindString(t *testing.T) {
	if KindCompany.String() != "company" || KindNonprofit.String() != "nonprofit" ||
		KindUniversity.String() != "university" || OrgKind(9).String() != "invalid" {
		t.Fatal("OrgKind.String broken")
	}
}

func TestRosterSane(t *testing.T) {
	roster := buildRoster()
	names := make(map[string]bool)
	for _, o := range roster {
		if names[o.Name] {
			t.Fatalf("duplicate org %q", o.Name)
		}
		names[o.Name] = true
		if o.Ports2024 <= 0 || o.Ports2024 > 65536 {
			t.Fatalf("%s Ports2024 = %d", o.Name, o.Ports2024)
		}
		if o.SpeedPPS <= 0 || o.Sources <= 0 {
			t.Fatalf("%s has no speed/sources", o.Name)
		}
		if o.StartYear < 2015 || o.StartYear > 2024 {
			t.Fatalf("%s StartYear = %d", o.Name, o.StartYear)
		}
		if len(o.Keywords) == 0 {
			t.Fatalf("%s has no ETL keywords", o.Name)
		}
	}
	// The paper's full-range scanners must all be present.
	for _, name := range []string{"Censys", "Palo Alto Networks", "Shodan", "Rapid7", "Shadowserver", "Onyphe"} {
		if !names[name] {
			t.Fatalf("roster missing %s", name)
		}
	}
}
