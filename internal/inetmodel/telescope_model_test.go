package inetmodel

import (
	"math"
	"testing"
)

func TestHitProbability(t *testing.T) {
	if got := HitProbability(1 << 16); math.Abs(got-1.0/65536.0) > 1e-12 {
		t.Fatalf("HitProbability(/16) = %v", got)
	}
}

func TestDetectionProbabilityPaperClaim(t *testing.T) {
	// §3.4 claims a scanner at 100 pps appears in the 71,536-address
	// telescope within 1 hour with probability "99.9%". The exact geometric
	// computation gives 1 - (1 - 71536/2^32)^360000 = 0.99751 — the paper's
	// figure is rounded. Assert the exact value.
	p := DetectionProbability(100, 71536, 3600)
	if p < 0.997 || p > 0.998 {
		t.Fatalf("P = %v, want ~0.9975", p)
	}
	// And the claim is tight-ish: a much slower scanner is not detected
	// with the same confidence.
	if q := DetectionProbability(1, 71536, 3600); q >= 0.999 {
		t.Fatalf("1 pps should not reach 0.999 in an hour: %v", q)
	}
}

func TestDetectionProbabilityEdges(t *testing.T) {
	if DetectionProbability(0, 71536, 10) != 0 {
		t.Fatal("zero rate")
	}
	if DetectionProbability(10, 0, 10) != 0 {
		t.Fatal("zero telescope")
	}
	if DetectionProbability(10, 71536, 0) != 0 {
		t.Fatal("zero window")
	}
	// Monotone in each argument.
	if DetectionProbability(10, 71536, 100) >= DetectionProbability(100, 71536, 100) {
		t.Fatal("not monotone in rate")
	}
	if DetectionProbability(10, 1000, 100) >= DetectionProbability(10, 100000, 100) {
		t.Fatal("not monotone in telescope size")
	}
}

func TestTimeToDetection(t *testing.T) {
	// Round trip with DetectionProbability.
	secs := TimeToDetection(100, 71536, 0.999)
	if secs <= 0 || math.IsInf(secs, 1) {
		t.Fatalf("TimeToDetection = %v", secs)
	}
	p := DetectionProbability(100, 71536, secs)
	if math.Abs(p-0.999) > 1e-6 {
		t.Fatalf("round trip: P(t*) = %v", p)
	}
	// 99.9% detection takes ~4147 s — the same order as the paper's 1-hour
	// expiry window (which corresponds to ~99.75% confidence).
	if secs < 3600 || secs > 5000 {
		t.Fatalf("99.9%% detection time = %v s, want ~4147", secs)
	}
	if !math.IsInf(TimeToDetection(0, 71536, 0.999), 1) {
		t.Fatal("zero rate must be infinite")
	}
	if !math.IsInf(TimeToDetection(100, 71536, 1), 1) {
		t.Fatal("confidence 1 must be infinite")
	}
}

func TestExpectedObservations(t *testing.T) {
	// A full Internet-wide single-port scan against a /16-sized telescope.
	if got := ExpectedObservations(1.0, 65536, 1); got != 65536 {
		t.Fatalf("full scan = %v", got)
	}
	if got := ExpectedObservations(0.5, 65536, 2); got != 65536 {
		t.Fatalf("half scan, two ports = %v", got)
	}
	if got := ExpectedObservations(-1, 65536, 1); got != 0 {
		t.Fatalf("negative coverage = %v", got)
	}
	if got := ExpectedObservations(2, 65536, 1); got != 65536 {
		t.Fatalf("coverage clamped = %v", got)
	}
}

func TestExtrapolateRate(t *testing.T) {
	// Observing 1 probe/s at a 1/65536 telescope means ~65536 pps global.
	got := ExtrapolateRate(1, 65536)
	if math.Abs(got-65536) > 1e-6 {
		t.Fatalf("ExtrapolateRate = %v", got)
	}
	if ExtrapolateRate(1, 0) != 0 {
		t.Fatal("zero telescope")
	}
}

func TestExtrapolateCoverage(t *testing.T) {
	if got := ExtrapolateCoverage(50, 100); got != 0.5 {
		t.Fatalf("coverage = %v", got)
	}
	if got := ExtrapolateCoverage(200, 100); got != 1 {
		t.Fatalf("coverage must clamp: %v", got)
	}
	if ExtrapolateCoverage(1, 0) != 0 {
		t.Fatal("zero telescope")
	}
}

func TestConsistencyRateCoverage(t *testing.T) {
	// A scan covering fraction c at Internet-wide rate R observed through a
	// telescope of size m: observed rate = R*m/2^32; extrapolating back
	// must recover R.
	R := 5000.0
	m := 71536
	observed := R * float64(m) / float64(IPv4SpaceSize)
	if got := ExtrapolateRate(observed, m); math.Abs(got-R) > 1e-6 {
		t.Fatalf("rate round trip: %v != %v", got, R)
	}
}
