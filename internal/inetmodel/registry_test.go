package inetmodel

import (
	"testing"

	"github.com/synscan/synscan/internal/rng"
)

func testRegistry(t testing.TB) *Registry {
	t.Helper()
	return BuildRegistry(1)
}

func TestRegistryDeterministic(t *testing.T) {
	a := BuildRegistry(7)
	b := BuildRegistry(7)
	for blk := 0; blk < 65536; blk += 97 {
		ea, eb := a.blocks[blk], b.blocks[blk]
		if ea != eb {
			t.Fatalf("block %d differs: %+v vs %+v", blk, ea, eb)
		}
	}
}

func TestRegistryReservedBlocks(t *testing.T) {
	reg := testRegistry(t)
	for _, s := range []string{"10.0.0.1", "127.0.0.1", "224.0.0.1", "240.0.0.1"} {
		ip := MustPrefix(s + "/32").Base
		if e := reg.Lookup(ip); e.Type != TypeReserved {
			t.Errorf("%s classified %v, want Reserved", s, e.Type)
		}
	}
}

func TestRegistryPublicBlocksClassified(t *testing.T) {
	reg := testRegistry(t)
	counts := make(map[ScannerType]int)
	for b := 0; b < 65536; b++ {
		e := reg.blocks[b]
		if e.Type == TypeReserved {
			continue
		}
		if e.Country == "" {
			t.Fatalf("block %d has no country", b)
		}
		if e.ASN == 0 {
			t.Fatalf("block %d has no ASN", b)
		}
		counts[e.Type]++
	}
	// Residential must dominate, all types present.
	if counts[TypeResidential] < counts[TypeHosting] ||
		counts[TypeResidential] < counts[TypeEnterprise] {
		t.Fatalf("type mix implausible: %v", counts)
	}
	for _, typ := range []ScannerType{TypeResidential, TypeHosting, TypeEnterprise, TypeUnknown, TypeInstitutional} {
		if counts[typ] == 0 {
			t.Fatalf("no blocks of type %v", typ)
		}
	}
}

func TestRegistryCountryDistribution(t *testing.T) {
	reg := testRegistry(t)
	us, cn, ro := 0, 0, 0
	total := 0
	for b := 0; b < 65536; b++ {
		e := reg.blocks[b]
		if e.Type == TypeReserved {
			continue
		}
		total++
		switch e.Country {
		case "US":
			us++
		case "CN":
			cn++
		case "RO":
			ro++
		}
	}
	if us < cn || cn < ro {
		t.Fatalf("country weighting not respected: US=%d CN=%d RO=%d", us, cn, ro)
	}
	if float64(us)/float64(total) < 0.15 {
		t.Fatalf("US share too small: %d/%d", us, total)
	}
}

func TestRegistryOrgPlacement(t *testing.T) {
	reg := testRegistry(t)
	orgs := reg.Orgs()
	if len(orgs) < 20 {
		t.Fatalf("roster too small: %d", len(orgs))
	}
	seen := make(map[uint16]bool)
	for i, o := range orgs {
		if seen[o.Block] {
			t.Fatalf("org %s shares a block", o.Name)
		}
		seen[o.Block] = true
		e := reg.blocks[o.Block]
		if e.Type != TypeInstitutional {
			t.Fatalf("org %s block not institutional: %v", o.Name, e.Type)
		}
		if int(e.OrgID) != i {
			t.Fatalf("org %s OrgID mismatch: %d != %d", o.Name, e.OrgID, i)
		}
	}
}

func TestOrgByName(t *testing.T) {
	reg := testRegistry(t)
	o, ok := reg.OrgByName("Censys")
	if !ok || o.Ports2024 != 65536 {
		t.Fatalf("Censys lookup: %+v ok=%v", o, ok)
	}
	if _, ok := reg.OrgByName("No Such Org"); ok {
		t.Fatal("nonexistent org found")
	}
}

func TestRandomIP(t *testing.T) {
	reg := testRegistry(t)
	r := rng.New(3)
	for i := 0; i < 200; i++ {
		ip, ok := reg.RandomIP(r, "CN", TypeResidential)
		if !ok {
			t.Fatal("CN residential space must exist")
		}
		e := reg.Lookup(ip)
		if e.Country != "CN" || e.Type != TypeResidential {
			t.Fatalf("RandomIP returned %s -> %+v", "CN", e)
		}
	}
	if _, ok := reg.RandomIP(r, "XX", TypeResidential); ok {
		t.Fatal("unknown country should fail")
	}
}

func TestRandomIPOfType(t *testing.T) {
	reg := testRegistry(t)
	r := rng.New(4)
	for _, typ := range []ScannerType{TypeHosting, TypeEnterprise, TypeResidential, TypeUnknown, TypeInstitutional} {
		ip, ok := reg.RandomIPOfType(r, typ)
		if !ok {
			t.Fatalf("no space of type %v", typ)
		}
		if got := reg.Lookup(ip).Type; got != typ {
			t.Fatalf("type %v got %v", typ, got)
		}
	}
	if _, ok := reg.RandomIPOfType(r, TypeReserved); ok {
		t.Fatal("reserved space should not be sampled")
	}
}

func TestOrgIP(t *testing.T) {
	reg := testRegistry(t)
	r := rng.New(5)
	for id := range reg.Orgs() {
		ip := reg.OrgIP(r, id)
		e := reg.Lookup(ip)
		if int(e.OrgID) != id {
			t.Fatalf("OrgIP(%d) landed in org %d", id, e.OrgID)
		}
	}
}

func TestChurnIP(t *testing.T) {
	r := rng.New(6)
	ip := uint32(0xC0A81234)
	for i := 0; i < 100; i++ {
		n := ChurnIP(r, ip)
		if n>>16 != ip>>16 {
			t.Fatalf("churned address left the /16: %#x -> %#x", ip, n)
		}
	}
}

func TestScannerTypeString(t *testing.T) {
	want := map[ScannerType]string{
		TypeUnknown: "Unknown", TypeResidential: "Residential",
		TypeHosting: "Hosting", TypeEnterprise: "Enterprise",
		TypeInstitutional: "Institutional", TypeReserved: "Reserved",
		ScannerType(200): "Invalid",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), s)
		}
	}
}

func TestCountries(t *testing.T) {
	reg := testRegistry(t)
	cs := reg.Countries()
	if len(cs) != len(countryShare) {
		t.Fatalf("Countries() length %d", len(cs))
	}
	if cs[0] != "US" {
		t.Fatalf("first country %q", cs[0])
	}
}

func BenchmarkBuildRegistry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BuildRegistry(uint64(i))
	}
}

func BenchmarkLookup(b *testing.B) {
	reg := BuildRegistry(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = reg.Lookup(uint32(i * 2654435761))
	}
}
