package inetmodel

import (
	"testing"
	"testing/quick"
)

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("192.168.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 0xC0A80000 || p.Bits != 16 {
		t.Fatalf("got %+v", p)
	}
	if p.String() != "192.168.0.0/16" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestParsePrefixErrors(t *testing.T) {
	bad := []string{
		"",             // empty
		"1.2.3.4",      // no slash
		"1.2.3.4/",     // empty length
		"1.2.3.4/33",   // out of range
		"1.2.3.4/ab",   // not a number
		"1.2.3.4/24",   // host bits set
		"300.2.3.4/24", // bad address
	}
	for _, s := range bad {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", s)
		}
	}
}

func TestMustPrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPrefix should panic on bad input")
		}
	}()
	MustPrefix("nope")
}

func TestPrefixContains(t *testing.T) {
	p := MustPrefix("10.0.0.0/8")
	in, _ := ParsePrefix("10.255.255.255/32")
	if !p.Contains(in.Base) {
		t.Fatal("10.255.255.255 should be inside 10/8")
	}
	if p.Contains(0x0B000000) { // 11.0.0.0
		t.Fatal("11.0.0.0 should be outside 10/8")
	}
	all := MustPrefix("0.0.0.0/0")
	if !all.Contains(0) || !all.Contains(0xffffffff) {
		t.Fatal("/0 must contain everything")
	}
}

func TestPrefixSizeFirstLast(t *testing.T) {
	p := MustPrefix("192.168.4.0/22")
	if p.Size() != 1024 {
		t.Fatalf("Size = %d", p.Size())
	}
	if p.First() != 0xC0A80400 {
		t.Fatalf("First = %#x", p.First())
	}
	if p.Last() != 0xC0A807FF {
		t.Fatalf("Last = %#x", p.Last())
	}
	if p.Nth(0) != p.First() || p.Nth(1023) != p.Last() {
		t.Fatal("Nth endpoints")
	}
	host := MustPrefix("1.2.3.4/32")
	if host.Size() != 1 || host.First() != host.Last() {
		t.Fatal("/32 size")
	}
}

func TestPrefixNthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Nth out of range should panic")
		}
	}()
	MustPrefix("1.2.3.0/24").Nth(256)
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustPrefix("10.0.0.0/8")
	b := MustPrefix("10.1.0.0/16")
	c := MustPrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("nested prefixes overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint prefixes must not overlap")
	}
}

func TestPrefixContainsQuick(t *testing.T) {
	p := MustPrefix("172.16.0.0/12")
	f := func(ip uint32) bool {
		want := ip >= 0xAC100000 && ip <= 0xAC1FFFFF
		return p.Contains(ip) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlock16(t *testing.T) {
	if Block16(0xC0A80102) != 0xC0A8 {
		t.Fatal("Block16")
	}
	if Block16(0) != 0 {
		t.Fatal("Block16 zero")
	}
}

func TestIsReserved(t *testing.T) {
	reserved := []string{"0.0.0.1", "10.1.2.3", "127.0.0.1", "169.254.1.1",
		"172.16.0.1", "192.168.1.1", "224.0.0.1", "255.255.255.255", "100.64.0.1"}
	for _, s := range reserved {
		ip := MustPrefix(s + "/32").Base
		if !IsReserved(ip) {
			t.Errorf("%s should be reserved", s)
		}
	}
	public := []string{"8.8.8.8", "1.1.1.1", "185.0.0.1", "100.128.0.1", "172.32.0.1"}
	for _, s := range public {
		ip := MustPrefix(s + "/32").Base
		if IsReserved(ip) {
			t.Errorf("%s should be public", s)
		}
	}
}
