package inetmodel

import (
	"math"

	"github.com/synscan/synscan/internal/rng"
)

// ServiceModel assigns every TCP port a probability that a random Internet
// host has a service listening there. It backs the §5.1 control experiment:
// the paper performs a complete vertical scan of 100,000 random addresses
// and finds *no* correlation (R = 0.047) between how many services live on a
// port and how heavily the port is scanned.
//
// To make that non-correlation emerge rather than be hard-coded, the open-
// port probabilities follow a Zipf law over a ranking that is independent of
// the scan-targeting ranking used by the workload model: the handful of
// genuinely popular service ports (80, 443, 22, ...) are the exception, and
// the long tail is shuffled by a seeded permutation.
type ServiceModel struct {
	openProb [65536]float64
}

// wellKnownServices are the ports where services really do concentrate,
// with approximate per-host open probabilities on the public Internet.
var wellKnownServices = []struct {
	port uint16
	prob float64
}{
	{80, 0.065}, {443, 0.060}, {22, 0.030}, {21, 0.012}, {25, 0.010},
	{3306, 0.006}, {8080, 0.016}, {53, 0.012}, {110, 0.005}, {143, 0.005},
	{993, 0.005}, {995, 0.004}, {587, 0.006}, {8443, 0.008}, {3389, 0.009},
	{445, 0.007}, {139, 0.005}, {23, 0.004}, {5900, 0.003}, {1723, 0.002},
}

// NewServiceModel builds the per-port service population for a seed.
func NewServiceModel(seed uint64) *ServiceModel {
	m := &ServiceModel{}
	r := rng.New(seed).Derive("inetmodel/services")
	// Long tail: Zipf over a seeded permutation of the port space, scaled
	// so the tail sums to roughly 0.15 services per host.
	perm := rng.NewFeistelPerm(65536, r)
	const tailMass = 0.15
	var norm float64
	for rank := 1; rank <= 65536; rank++ {
		norm += 1 / math.Pow(float64(rank), 1.1)
	}
	for p := 0; p < 65536; p++ {
		rank := perm.Apply(uint64(p)) + 1
		m.openProb[p] = tailMass / norm / math.Pow(float64(rank), 1.1)
	}
	for _, w := range wellKnownServices {
		m.openProb[w.port] = w.prob
	}
	return m
}

// OpenProbability returns the probability that a random host listens on port.
func (m *ServiceModel) OpenProbability(port uint16) float64 {
	return m.openProb[port]
}

// VerticalScan simulates a complete 65,536-port scan of n random hosts and
// returns the number of hosts found listening per port.
func (m *ServiceModel) VerticalScan(r *rng.Rand, n int) []int {
	counts := make([]int, 65536)
	// Sampling 65536*n Bernoulli trials directly is wasteful; per port the
	// count is Binomial(n, p), well approximated by Poisson(n*p) at these
	// probabilities.
	for p := 0; p < 65536; p++ {
		counts[p] = r.Poisson(float64(n) * m.openProb[p])
	}
	return counts
}

// ExpectedServices returns the expected number of open ports per host,
// i.e. the sum of all per-port probabilities.
func (m *ServiceModel) ExpectedServices() float64 {
	s := 0.0
	for _, p := range m.openProb {
		s += p
	}
	return s
}
