// Package pcap reads and writes the classic libpcap capture file format,
// which is how telescope operators archive raw traffic. Both the microsecond
// (magic 0xa1b2c3d4) and nanosecond (0xa1b23c4d) variants are supported, in
// either byte order on the read side; the writer emits the nanosecond
// little-endian variant.
//
// Only the standard library is used. For the modern pcapng container (the
// Wireshark default) see the sibling internal/pcapng package, which provides
// a read-only decoder.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/synscan/synscan/internal/obs"
)

// Link types (a small subset of the registry).
const (
	LinkTypeNull     uint32 = 0
	LinkTypeEthernet uint32 = 1
	LinkTypeRaw      uint32 = 101
)

const (
	magicMicro        uint32 = 0xa1b2c3d4
	magicNano         uint32 = 0xa1b23c4d
	magicMicroSwapped uint32 = 0xd4c3b2a1
	magicNanoSwapped  uint32 = 0x4d3cb2a1

	versionMajor = 2
	versionMinor = 4

	fileHeaderLen   = 24
	recordHeaderLen = 16
)

// Errors specific to the format.
var (
	ErrBadMagic   = errors.New("pcap: bad magic number")
	ErrBadVersion = errors.New("pcap: unsupported version")
)

// Writer writes packets to a pcap stream.
type Writer struct {
	w       *bufio.Writer
	snaplen uint32
	hdr     [recordHeaderLen]byte
	err     error
}

// WriterOption configures a Writer.
type WriterOption func(*writerConfig)

type writerConfig struct {
	snaplen  uint32
	linkType uint32
}

// WithSnaplen sets the snap length recorded in the file header (default 65535).
func WithSnaplen(n uint32) WriterOption {
	return func(c *writerConfig) { c.snaplen = n }
}

// WithLinkType sets the link type (default LinkTypeEthernet).
func WithLinkType(lt uint32) WriterOption {
	return func(c *writerConfig) { c.linkType = lt }
}

// NewWriter writes a pcap file header to w and returns a packet writer.
// Timestamps are stored with nanosecond resolution.
func NewWriter(w io.Writer, opts ...WriterOption) (*Writer, error) {
	cfg := writerConfig{snaplen: 65535, linkType: LinkTypeEthernet}
	for _, o := range opts {
		o(&cfg)
	}
	var hdr [fileHeaderLen]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], magicNano)
	le.PutUint16(hdr[4:6], versionMajor)
	le.PutUint16(hdr[6:8], versionMinor)
	// thiszone and sigfigs stay zero.
	le.PutUint32(hdr[16:20], cfg.snaplen)
	le.PutUint32(hdr[20:24], cfg.linkType)
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, snaplen: cfg.snaplen}, nil
}

// WritePacket appends one record with the given capture timestamp in
// nanoseconds since the Unix epoch. Records longer than the snap length are
// truncated to it — the standard pcap capture semantics — with the full
// original length recorded in the record header's orig_len field, so
// readers can tell a truncated record from a complete one.
func (w *Writer) WritePacket(tsNanos int64, data []byte) error {
	if w.err != nil {
		return w.err
	}
	incl := data
	if uint32(len(incl)) > w.snaplen {
		incl = incl[:w.snaplen]
	}
	le := binary.LittleEndian
	sec := tsNanos / 1e9
	nsec := tsNanos % 1e9
	if nsec < 0 {
		sec--
		nsec += 1e9
	}
	le.PutUint32(w.hdr[0:4], uint32(sec))
	le.PutUint32(w.hdr[4:8], uint32(nsec))
	le.PutUint32(w.hdr[8:12], uint32(len(incl)))
	le.PutUint32(w.hdr[12:16], uint32(len(data)))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(incl); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader reads packets from a pcap stream.
type Reader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	nano     bool
	snaplen  uint32
	linkType uint32
	buf      []byte

	resync   bool
	lastSec  int64 // last good record's sec field; 0 = none yet
	resyncs  uint64
	skipped  uint64
	mResyncs *obs.Counter
	mSkipped *obs.Counter
}

// ReaderOption configures a Reader.
type ReaderOption func(*Reader)

// WithResync makes the reader recover from in-stream corruption instead of
// failing: a record header that fails validation triggers a forward scan to
// the next plausible 16-byte record boundary (sane sub-second field, length
// within the snap length, capture time near the last good record), and a
// record cut off at end of stream is dropped with a clean io.EOF. Skipped
// spans are counted in Resyncs/SkippedBytes and the faults.pcap.* metrics.
// pcap records carry no checksum, so corruption that still parses plausibly
// is not detectable — resync bounds the damage, it cannot prove integrity.
func WithResync() ReaderOption {
	return func(r *Reader) { r.resync = true }
}

// NewReader parses the file header from r and returns a packet reader.
func NewReader(r io.Reader, opts ...ReaderOption) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("pcap: file header: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	var order binary.ByteOrder
	var nano bool
	switch magic {
	case magicMicro:
		order, nano = binary.LittleEndian, false
	case magicNano:
		order, nano = binary.LittleEndian, true
	case magicMicroSwapped:
		order, nano = binary.BigEndian, false
	case magicNanoSwapped:
		order, nano = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	if order.Uint16(hdr[4:6]) != versionMajor {
		return nil, ErrBadVersion
	}
	rd := &Reader{
		r:        br,
		order:    order,
		nano:     nano,
		snaplen:  order.Uint32(hdr[16:20]),
		linkType: order.Uint32(hdr[20:24]),
	}
	for _, o := range opts {
		o(rd)
	}
	rd.SetMetrics(nil)
	return rd, nil
}

// SetMetrics wires the reader's fault instrumentation (resyncs performed,
// bytes skipped while resyncing). A nil registry disables it.
func (r *Reader) SetMetrics(reg *obs.Registry) {
	r.mResyncs = reg.Counter("faults.pcap.resyncs")
	r.mSkipped = reg.Counter("faults.pcap.skipped_bytes")
}

// Resyncs returns how many corruption recoveries a WithResync reader has
// performed.
func (r *Reader) Resyncs() uint64 { return r.resyncs }

// SkippedBytes returns how many bytes a WithResync reader has discarded
// while scanning for record boundaries.
func (r *Reader) SkippedBytes() uint64 { return r.skipped }

// LinkType returns the capture's link type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// Snaplen returns the capture's snap length.
func (r *Reader) Snaplen() uint32 { return r.snaplen }

// Nanosecond reports whether timestamps carry nanosecond resolution.
func (r *Reader) Nanosecond() bool { return r.nano }

// Record is one captured packet as stored in the file.
type Record struct {
	// Time is the capture timestamp in nanoseconds since the Unix epoch.
	Time int64
	// Data is the captured bytes. The slice is reused by subsequent Next
	// calls; callers that keep it must copy.
	Data []byte
	// OrigLen is the packet's original on-the-wire length, which exceeds
	// len(Data) when the capture truncated the packet to its snap length.
	OrigLen uint32
}

// Truncated reports whether the capture stored fewer bytes than were on the
// wire (len(Data) < OrigLen).
func (rec Record) Truncated() bool { return uint32(len(rec.Data)) < rec.OrigLen }

// Next returns the next record. Record.Data is reused by subsequent calls;
// callers that keep it must copy. At end of stream Next returns io.EOF.
// A reader built WithResync skips corrupt spans instead of erroring; see
// WithResync.
func (r *Reader) Next() (Record, error) {
	for {
		hdr, err := r.r.Peek(recordHeaderLen)
		if len(hdr) == 0 {
			if err == nil {
				err = io.EOF
			}
			return Record{}, err
		}
		if len(hdr) < recordHeaderLen {
			if r.resync {
				// Trailing bytes too short for any record: drop them.
				n, _ := r.r.Discard(len(hdr))
				r.addSkipped(n)
				return Record{}, io.EOF
			}
			return Record{}, fmt.Errorf("pcap: truncated record header: %w", io.ErrUnexpectedEOF)
		}
		sec := r.order.Uint32(hdr[0:4])
		sub := r.order.Uint32(hdr[4:8])
		incl := r.order.Uint32(hdr[8:12])
		orig := r.order.Uint32(hdr[12:16])
		if incl > r.snaplen && r.snaplen > 0 {
			if r.resync {
				if !r.resyncScan() {
					return Record{}, io.EOF
				}
				continue
			}
			return Record{}, fmt.Errorf("pcap: record length %d exceeds snaplen %d", incl, r.snaplen)
		}
		if r.resync && !r.plausibleHeader(hdr) {
			if !r.resyncScan() {
				return Record{}, io.EOF
			}
			continue
		}
		if _, err := r.r.Discard(recordHeaderLen); err != nil {
			return Record{}, err
		}
		if cap(r.buf) < int(incl) {
			r.buf = make([]byte, incl)
		}
		r.buf = r.buf[:incl]
		if n, err := io.ReadFull(r.r, r.buf); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				if r.resync {
					// A record cut off at end of stream: drop what remains.
					r.addSkipped(recordHeaderLen + n)
					return Record{}, io.EOF
				}
				return Record{}, fmt.Errorf("pcap: truncated record body: %w", io.ErrUnexpectedEOF)
			}
			return Record{}, err
		}
		r.lastSec = int64(sec)
		ts := int64(sec) * 1e9
		if r.nano {
			ts += int64(sub)
		} else {
			ts += int64(sub) * 1e3
		}
		return Record{Time: ts, Data: r.buf, OrigLen: orig}, nil
	}
}

// plausibleHeader reports whether a 16-byte candidate looks like a real
// record header: sub-second field within the timestamp resolution, length
// within the snap length, original length no smaller than the captured
// length, and — once a record has been read — a capture time within a year
// of the last good record.
func (r *Reader) plausibleHeader(hdr []byte) bool {
	sec := int64(r.order.Uint32(hdr[0:4]))
	sub := r.order.Uint32(hdr[4:8])
	incl := r.order.Uint32(hdr[8:12])
	orig := r.order.Uint32(hdr[12:16])
	subBound := uint32(1e6)
	if r.nano {
		subBound = 1e9
	}
	if sub >= subBound {
		return false
	}
	if r.snaplen > 0 && incl > r.snaplen {
		return false
	}
	if orig < incl {
		return false
	}
	if r.lastSec != 0 {
		const yearSec = 366 * 24 * 3600
		if sec < r.lastSec-yearSec || sec > r.lastSec+yearSec {
			return false
		}
	}
	return true
}

// resyncScan advances the stream one byte at a time until a plausible record
// header starts, counting the span it skips. It reports false when the
// stream ends first (the remaining tail is consumed and counted).
func (r *Reader) resyncScan() bool {
	r.resyncs++
	r.mResyncs.Inc()
	skipped := 0
	for {
		n, _ := r.r.Discard(1)
		skipped += n
		if n == 0 {
			r.addSkipped(skipped)
			return false
		}
		hdr, _ := r.r.Peek(recordHeaderLen)
		if len(hdr) < recordHeaderLen {
			n, _ := r.r.Discard(len(hdr))
			r.addSkipped(skipped + n)
			return false
		}
		if r.plausibleHeader(hdr) {
			r.addSkipped(skipped)
			return true
		}
	}
}

func (r *Reader) addSkipped(n int) {
	r.skipped += uint64(n)
	r.mSkipped.Add(uint64(n))
}

// NextRaw is the positional form of Next, retained for callers of the
// pre-Record API.
//
// Deprecated: use Next, whose Record return makes truncation detection
// (Record.Truncated) explicit instead of an origLen-vs-len comparison.
func (r *Reader) NextRaw() (tsNanos int64, data []byte, origLen uint32, err error) {
	rec, err := r.Next()
	return rec.Time, rec.Data, rec.OrigLen, err
}
