// Package pcap reads and writes the classic libpcap capture file format,
// which is how telescope operators archive raw traffic. Both the microsecond
// (magic 0xa1b2c3d4) and nanosecond (0xa1b23c4d) variants are supported, in
// either byte order on the read side; the writer emits the nanosecond
// little-endian variant.
//
// Only the standard library is used. For the modern pcapng container (the
// Wireshark default) see the sibling internal/pcapng package, which provides
// a read-only decoder.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Link types (a small subset of the registry).
const (
	LinkTypeNull     uint32 = 0
	LinkTypeEthernet uint32 = 1
	LinkTypeRaw      uint32 = 101
)

const (
	magicMicro        uint32 = 0xa1b2c3d4
	magicNano         uint32 = 0xa1b23c4d
	magicMicroSwapped uint32 = 0xd4c3b2a1
	magicNanoSwapped  uint32 = 0x4d3cb2a1

	versionMajor = 2
	versionMinor = 4

	fileHeaderLen   = 24
	recordHeaderLen = 16
)

// Errors specific to the format.
var (
	ErrBadMagic   = errors.New("pcap: bad magic number")
	ErrBadVersion = errors.New("pcap: unsupported version")
)

// Writer writes packets to a pcap stream.
type Writer struct {
	w       *bufio.Writer
	snaplen uint32
	hdr     [recordHeaderLen]byte
	err     error
}

// WriterOption configures a Writer.
type WriterOption func(*writerConfig)

type writerConfig struct {
	snaplen  uint32
	linkType uint32
}

// WithSnaplen sets the snap length recorded in the file header (default 65535).
func WithSnaplen(n uint32) WriterOption {
	return func(c *writerConfig) { c.snaplen = n }
}

// WithLinkType sets the link type (default LinkTypeEthernet).
func WithLinkType(lt uint32) WriterOption {
	return func(c *writerConfig) { c.linkType = lt }
}

// NewWriter writes a pcap file header to w and returns a packet writer.
// Timestamps are stored with nanosecond resolution.
func NewWriter(w io.Writer, opts ...WriterOption) (*Writer, error) {
	cfg := writerConfig{snaplen: 65535, linkType: LinkTypeEthernet}
	for _, o := range opts {
		o(&cfg)
	}
	var hdr [fileHeaderLen]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], magicNano)
	le.PutUint16(hdr[4:6], versionMajor)
	le.PutUint16(hdr[6:8], versionMinor)
	// thiszone and sigfigs stay zero.
	le.PutUint32(hdr[16:20], cfg.snaplen)
	le.PutUint32(hdr[20:24], cfg.linkType)
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, snaplen: cfg.snaplen}, nil
}

// WritePacket appends one record with the given capture timestamp in
// nanoseconds since the Unix epoch. Records longer than the snap length are
// truncated to it — the standard pcap capture semantics — with the full
// original length recorded in the record header's orig_len field, so
// readers can tell a truncated record from a complete one.
func (w *Writer) WritePacket(tsNanos int64, data []byte) error {
	if w.err != nil {
		return w.err
	}
	incl := data
	if uint32(len(incl)) > w.snaplen {
		incl = incl[:w.snaplen]
	}
	le := binary.LittleEndian
	sec := tsNanos / 1e9
	nsec := tsNanos % 1e9
	if nsec < 0 {
		sec--
		nsec += 1e9
	}
	le.PutUint32(w.hdr[0:4], uint32(sec))
	le.PutUint32(w.hdr[4:8], uint32(nsec))
	le.PutUint32(w.hdr[8:12], uint32(len(incl)))
	le.PutUint32(w.hdr[12:16], uint32(len(data)))
	if _, err := w.w.Write(w.hdr[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(incl); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader reads packets from a pcap stream.
type Reader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	nano     bool
	snaplen  uint32
	linkType uint32
	buf      []byte
}

// NewReader parses the file header from r and returns a packet reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("pcap: file header: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	var order binary.ByteOrder
	var nano bool
	switch magic {
	case magicMicro:
		order, nano = binary.LittleEndian, false
	case magicNano:
		order, nano = binary.LittleEndian, true
	case magicMicroSwapped:
		order, nano = binary.BigEndian, false
	case magicNanoSwapped:
		order, nano = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	if order.Uint16(hdr[4:6]) != versionMajor {
		return nil, ErrBadVersion
	}
	return &Reader{
		r:        br,
		order:    order,
		nano:     nano,
		snaplen:  order.Uint32(hdr[16:20]),
		linkType: order.Uint32(hdr[20:24]),
	}, nil
}

// LinkType returns the capture's link type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// Snaplen returns the capture's snap length.
func (r *Reader) Snaplen() uint32 { return r.snaplen }

// Nanosecond reports whether timestamps carry nanosecond resolution.
func (r *Reader) Nanosecond() bool { return r.nano }

// Record is one captured packet as stored in the file.
type Record struct {
	// Time is the capture timestamp in nanoseconds since the Unix epoch.
	Time int64
	// Data is the captured bytes. The slice is reused by subsequent Next
	// calls; callers that keep it must copy.
	Data []byte
	// OrigLen is the packet's original on-the-wire length, which exceeds
	// len(Data) when the capture truncated the packet to its snap length.
	OrigLen uint32
}

// Truncated reports whether the capture stored fewer bytes than were on the
// wire (len(Data) < OrigLen).
func (rec Record) Truncated() bool { return uint32(len(rec.Data)) < rec.OrigLen }

// Next returns the next record. Record.Data is reused by subsequent calls;
// callers that keep it must copy. At end of stream Next returns io.EOF.
func (r *Reader) Next() (Record, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("pcap: truncated record header: %w", err)
		}
		return Record{}, err
	}
	sec := r.order.Uint32(hdr[0:4])
	sub := r.order.Uint32(hdr[4:8])
	incl := r.order.Uint32(hdr[8:12])
	orig := r.order.Uint32(hdr[12:16])
	if incl > r.snaplen && r.snaplen > 0 {
		return Record{}, fmt.Errorf("pcap: record length %d exceeds snaplen %d", incl, r.snaplen)
	}
	if cap(r.buf) < int(incl) {
		r.buf = make([]byte, incl)
	}
	r.buf = r.buf[:incl]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("pcap: truncated record body: %w", io.ErrUnexpectedEOF)
		}
		return Record{}, err
	}
	ts := int64(sec) * 1e9
	if r.nano {
		ts += int64(sub)
	} else {
		ts += int64(sub) * 1e3
	}
	return Record{Time: ts, Data: r.buf, OrigLen: orig}, nil
}

// NextRaw is the positional form of Next, retained for callers of the
// pre-Record API.
//
// Deprecated: use Next, whose Record return makes truncation detection
// (Record.Truncated) explicit instead of an origLen-vs-len comparison.
func (r *Reader) NextRaw() (tsNanos int64, data []byte, origLen uint32, err error) {
	rec, err := r.Next()
	return rec.Time, rec.Data, rec.OrigLen, err
}
