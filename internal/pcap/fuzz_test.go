package pcap

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader hardens the pcap parser against malformed capture files.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WritePacket(1e9, []byte{1, 2, 3})
	w.WritePacket(2e9, bytes.Repeat([]byte{9}, 100))
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:fileHeaderLen])
	f.Add(valid[:len(valid)-1])
	swapped := append([]byte{}, valid...)
	swapped[0], swapped[3] = swapped[3], swapped[0] // endianness flip
	f.Add(swapped)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 10000; i++ {
			if _, err := r.Next(); err != nil {
				if err == io.EOF {
					return
				}
				return
			}
		}
	})
}
