package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	packets := [][]byte{
		{1, 2, 3},
		{},
		bytes.Repeat([]byte{0xab}, 1500),
	}
	times := []int64{0, 1_000_000_001, 1700000000_123456789}
	for i, p := range packets {
		if err := w.WritePacket(times[i], p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Fatalf("LinkType = %d", r.LinkType())
	}
	if !r.Nanosecond() {
		t.Fatal("writer should emit nanosecond format")
	}
	for i := range packets {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Time != times[i] {
			t.Fatalf("record %d: ts = %d, want %d", i, rec.Time, times[i])
		}
		if !bytes.Equal(rec.Data, packets[i]) {
			t.Fatalf("record %d: data mismatch", i)
		}
		if rec.OrigLen != uint32(len(packets[i])) {
			t.Fatalf("record %d: origLen = %d, want %d", i, rec.OrigLen, len(packets[i]))
		}
		if rec.Truncated() {
			t.Fatalf("record %d: spuriously truncated", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(tsRaw int64, payload []byte) bool {
		// The classic pcap format stores seconds in 32 bits; constrain the
		// generated timestamp to the representable range.
		const maxTS = int64(1)<<32*1e9 - 1
		ts := tsRaw % maxTS
		if ts < 0 {
			ts = -ts
		}
		if len(payload) > 65535 {
			payload = payload[:65535]
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if err := w.WritePacket(ts, payload); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		rec, err := r.Next()
		if err != nil {
			return false
		}
		return rec.Time == ts && bytes.Equal(rec.Data, payload) && rec.OrigLen == uint32(len(payload))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWriterOptions(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithSnaplen(100), WithLinkType(LinkTypeRaw))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Snaplen() != 100 || r.LinkType() != LinkTypeRaw {
		t.Fatalf("snaplen=%d linktype=%d", r.Snaplen(), r.LinkType())
	}
}

// TestWriterTruncatesToSnaplen: a record longer than the snap length is
// truncated to it (standard pcap capture semantics), with the true original
// length recorded in the header — not rejected (pre-fix, WritePacket
// errored and no record was written).
func TestWriterTruncatesToSnaplen(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WithSnaplen(64))
	if err != nil {
		t.Fatal(err)
	}
	full := make([]byte, 200)
	for i := range full {
		full[i] = byte(i)
	}
	if err := w.WritePacket(3e9, full); err != nil {
		t.Fatalf("oversized record must truncate, not error: %v", err)
	}
	// A short record after a truncated one must still round-trip.
	if err := w.WritePacket(4e9, []byte{7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Time != 3e9 {
		t.Fatalf("ts = %d", rec.Time)
	}
	if len(rec.Data) != 64 || !bytes.Equal(rec.Data, full[:64]) {
		t.Fatalf("captured %d bytes, want the first 64", len(rec.Data))
	}
	if rec.OrigLen != 200 || !rec.Truncated() {
		t.Fatalf("origLen = %d truncated = %v, want 200/true", rec.OrigLen, rec.Truncated())
	}
	rec, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Time != 4e9 || rec.OrigLen != 2 || rec.Truncated() || !bytes.Equal(rec.Data, []byte{7, 8}) {
		t.Fatalf("second record corrupted: %+v", rec)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestReaderSurfacesTruncatedRecords: a hand-built file with incl < orig
// (written by a capturing tool with a short snaplen) surfaces both lengths.
func TestReaderSurfacesTruncatedRecords(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], magicNano)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint32(hdr[16:20], 4) // snaplen 4
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[8:12], 4)    // incl_len
	binary.LittleEndian.PutUint32(rec[12:16], 999) // orig_len
	buf.Write(rec)
	buf.Write([]byte{1, 2, 3, 4})
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 4 || got.OrigLen != 999 || !got.Truncated() {
		t.Fatalf("incl=%d orig=%d, want truncated 4/999", len(got.Data), got.OrigLen)
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err != ErrBadMagic {
		t.Fatalf("got %v", err)
	}
}

func TestReaderShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 10))); err == nil {
		t.Fatal("short header should error")
	}
}

func TestReaderBadVersion(t *testing.T) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], magicNano)
	binary.LittleEndian.PutUint16(hdr[4:6], 3)
	if _, err := NewReader(bytes.NewReader(hdr)); err != ErrBadVersion {
		t.Fatalf("got %v", err)
	}
}

// buildFile writes a capture in the specified endianness/precision by hand.
func buildFile(order binary.ByteOrder, nano bool, tsSec, tsSub uint32, payload []byte) []byte {
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	magic := magicMicro
	if nano {
		magic = magicNano
	}
	// Write the magic in the target order: a reader using LittleEndian
	// sees the swapped constant when the file is big-endian.
	order.PutUint32(hdr[0:4], magic)
	order.PutUint16(hdr[4:6], versionMajor)
	order.PutUint16(hdr[6:8], versionMinor)
	order.PutUint32(hdr[16:20], 65535)
	order.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	order.PutUint32(rec[0:4], tsSec)
	order.PutUint32(rec[4:8], tsSub)
	order.PutUint32(rec[8:12], uint32(len(payload)))
	order.PutUint32(rec[12:16], uint32(len(payload)))
	buf.Write(rec)
	buf.Write(payload)
	return buf.Bytes()
}

func TestReaderBigEndianMicro(t *testing.T) {
	file := buildFile(binary.BigEndian, false, 10, 500, []byte{9, 9})
	r, err := NewReader(bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	if r.Nanosecond() {
		t.Fatal("micro variant misdetected")
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(10)*1e9 + 500*1e3; rec.Time != want {
		t.Fatalf("ts = %d, want %d", rec.Time, want)
	}
	if !bytes.Equal(rec.Data, []byte{9, 9}) {
		t.Fatal("payload mismatch")
	}
	if rec.OrigLen != 2 {
		t.Fatalf("origLen = %d, want 2", rec.OrigLen)
	}
}

func TestReaderLittleEndianMicro(t *testing.T) {
	file := buildFile(binary.LittleEndian, false, 7, 123, nil)
	r, err := NewReader(bytes.NewReader(file))
	if err != nil {
		t.Fatal(err)
	}
	ts, _, _, err := r.NextRaw()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(7)*1e9 + 123*1e3; ts != want {
		t.Fatalf("ts = %d, want %d", ts, want)
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	file := buildFile(binary.LittleEndian, true, 0, 0, []byte{1, 2, 3, 4})
	// Chop mid-payload.
	r, err := NewReader(bytes.NewReader(file[:len(file)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated body should error")
	}
	// Chop mid-header.
	r, err = NewReader(bytes.NewReader(file[:24+8]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record header should error")
	}
}

func TestReaderRecordExceedsSnaplen(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], magicNano)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint32(hdr[16:20], 10) // snaplen 10
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr)
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[8:12], 100) // incl_len 100 > snaplen
	buf.Write(rec)
	buf.Write(make([]byte, 100))
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("record exceeding snaplen should error")
	}
}

func TestReaderBufferReuse(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WritePacket(1, []byte{1, 1, 1})
	w.WritePacket(2, []byte{2, 2, 2})
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, first, _, _ := r.NextRaw()
	saved := make([]byte, len(first))
	copy(saved, first)
	_, second, _, _ := r.NextRaw()
	if bytes.Equal(first, saved) && &first[0] != &second[0] {
		// Buffer may or may not alias depending on capacity growth; the
		// documented contract is only that callers must copy. Just verify
		// the second read is correct.
	}
	if !bytes.Equal(second, []byte{2, 2, 2}) {
		t.Fatal("second record corrupted")
	}
}

func BenchmarkWritePacket(b *testing.B) {
	w, _ := NewWriter(io.Discard)
	data := make([]byte, 54)
	b.SetBytes(54 + 16)
	for i := 0; i < b.N; i++ {
		if err := w.WritePacket(int64(i), data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadPacket(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	data := make([]byte, 54)
	for i := 0; i < 10000; i++ {
		w.WritePacket(int64(i), data)
	}
	w.Flush()
	raw := buf.Bytes()
	b.SetBytes(54 + 16)
	b.ResetTimer()
	var r *Reader
	for i := 0; i < b.N; i++ {
		if i%10000 == 0 {
			var err error
			r, err = NewReader(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
		}
		if _, err := r.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// failWriter fails after n bytes to exercise error propagation.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errFail
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, errFail
	}
	return n, nil
}

var errFail = &failError{}

type failError struct{}

func (*failError) Error() string { return "synthetic write failure" }

func TestWriterErrorSticky(t *testing.T) {
	// Enough room for the header; fail during record flush.
	fw := &failWriter{left: fileHeaderLen}
	w, err := NewWriter(fw)
	if err != nil {
		t.Fatal(err)
	}
	// Writes land in the bufio buffer; Flush must surface the failure.
	big := make([]byte, 60000)
	if err := w.WritePacket(0, big); err != nil {
		// Buffered writers may fail during WritePacket once the buffer
		// spills — that is fine too.
		return
	}
	if err := w.WritePacket(1, big); err == nil {
		if err := w.Flush(); err == nil {
			t.Fatal("write failure never surfaced")
		}
	}
	// After a failure the writer stays failed.
	if err := w.Flush(); err == nil {
		t.Fatal("error must be sticky via Flush")
	}
}

func TestWriterHeaderError(t *testing.T) {
	if _, err := NewWriter(&failWriter{left: 0}); err != nil {
		// bufio may buffer the header; acceptable either way — force
		// the flush path if construction succeeded.
		return
	}
}

func TestReaderEOFCleanAfterRecords(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WritePacket(5, []byte{1})
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("repeated Next after EOF: %v", err)
		}
	}
}
