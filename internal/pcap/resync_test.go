package pcap

import (
	"bytes"
	"io"
	"testing"

	"github.com/synscan/synscan/internal/obs"
)

// resyncCapture writes n records of 20 bytes each with second-spaced
// timestamps starting in 2020, and returns the stream plus each record's
// file offset.
func resyncCapture(t *testing.T, n int) ([]byte, []int) {
	t.Helper()
	const base = int64(1577836800) // 2020-01-01 UTC, seconds
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	offsets := make([]int, n)
	for i := 0; i < n; i++ {
		offsets[i] = fileHeaderLen + i*(recordHeaderLen+20)
		if err := w.WritePacket((base+int64(i))*1e9, bytes.Repeat([]byte{0xff}, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), offsets
}

// TestResyncSkipsCorruptRecord: a record whose header is smashed is skipped
// and every other record still decodes; the default reader fails on the
// same bytes.
func TestResyncSkipsCorruptRecord(t *testing.T) {
	data, offsets := resyncCapture(t, 50)
	bad := append([]byte{}, data...)
	for i := 0; i < recordHeaderLen; i++ {
		bad[offsets[10]+i] = 0xff // incl = 0xffffffff > snaplen
	}

	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			fails++
			break
		}
	}
	if fails == 0 {
		t.Fatal("default reader must error on the smashed header")
	}

	reg := obs.NewRegistry()
	r2, err := NewReader(bytes.NewReader(bad), WithResync())
	if err != nil {
		t.Fatal(err)
	}
	r2.SetMetrics(reg)
	var got []int64
	for {
		rec, err := r2.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("resync reader errored: %v", err)
		}
		if len(rec.Data) != 20 || rec.OrigLen != 20 {
			t.Fatalf("resync reader produced a garbage record: %d bytes, orig %d", len(rec.Data), rec.OrigLen)
		}
		got = append(got, rec.Time)
	}
	const base = int64(1577836800)
	var want []int64
	for i := 0; i < 50; i++ {
		if i == 10 {
			continue
		}
		want = append(want, (base+int64(i))*1e9)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: time %d, want %d", i, got[i], want[i])
		}
	}
	if r2.Resyncs() != 1 {
		t.Fatalf("Resyncs = %d, want 1", r2.Resyncs())
	}
	if r2.SkippedBytes() == 0 {
		t.Fatal("SkippedBytes = 0 after a resync")
	}
	snap := reg.Snapshot()
	if snap.Counter("faults.pcap.resyncs") != 1 {
		t.Fatalf("faults.pcap.resyncs = %d", snap.Counter("faults.pcap.resyncs"))
	}
	if snap.Counter("faults.pcap.skipped_bytes") != r2.SkippedBytes() {
		t.Fatal("skipped-bytes metric disagrees with the accessor")
	}
}

// TestResyncTruncatedTail: a record cut off at end of stream ends a resync
// reader with clean io.EOF (tail counted as skipped); the default reader
// surfaces io.ErrUnexpectedEOF.
func TestResyncTruncatedTail(t *testing.T) {
	data, offsets := resyncCapture(t, 5)
	cut := data[:offsets[4]+recordHeaderLen+7] // mid-body of the last record

	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for lastErr == nil {
		_, lastErr = r.Next()
	}
	if lastErr == io.EOF {
		t.Fatal("default reader hid the truncation")
	}

	r2, err := NewReader(bytes.NewReader(cut), WithResync())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := r2.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("resync reader errored: %v", err)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("read %d records before the truncated tail, want 4", n)
	}
	if r2.SkippedBytes() != recordHeaderLen+7 {
		t.Fatalf("SkippedBytes = %d, want %d", r2.SkippedBytes(), recordHeaderLen+7)
	}
}
