package query

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/fingerprint"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/tools"
)

// Field names a queryable campaign attribute. Which operations a field
// supports (filtering, grouping, numeric aggregation, distinct/top-k keying)
// is capability-checked at validation time, so an unsupported combination is
// a parse-time client error, never a silent zero.
type Field uint8

const (
	fInvalid Field = iota
	// Discrete fields: filterable by set membership, groupable.
	FieldYear      // UTC calendar year of the scan's start time
	FieldTool      // fingerprinted tool attribution
	FieldPort      // targeted destination port; multi-port scans explode
	FieldQualified // over-threshold campaign flag
	// Filter-only fields.
	FieldSrc  // source address, filtered by CIDR prefix
	FieldTime // start time (ns), filtered by range
	// Numeric fields: filterable by range, usable as aggregation operands.
	FieldRate     // extrapolated rate (pps)
	FieldPackets  // observed probe count
	FieldDsts     // distinct telescope addresses hit
	FieldNPorts   // number of distinct ports targeted
	FieldDuration // observed duration (seconds)
	FieldCoverage // estimated IPv4 coverage fraction
	// Origin fields (need an archive written with origins; scans without an
	// origin never match origin filters and are skipped by origin group-bys).
	FieldCountry // ISO country code
	FieldASN     // announcing autonomous system
	FieldType    // scanner-type classification
	FieldOrg     // institutional organization name
	// Reactive (two-phase) fields, populated by archives written with the
	// phase extension; older archives decode them as zero values, so filters
	// on them simply match nothing there.
	FieldTwoPhase         // two-phase (scout + handshake) campaign flag
	FieldISN              // ISN regularity class (unknown/irregular/regular/mixed)
	FieldLinkedDsts       // destinations probed in both phases
	FieldHandshakePackets // phase-two segment count
	FieldPayloadBytes     // application payload bytes received
)

var fieldNames = map[Field]string{
	FieldYear: "year", FieldTool: "tool", FieldPort: "port",
	FieldQualified: "qualified", FieldSrc: "src", FieldTime: "time",
	FieldRate: "rate_pps", FieldPackets: "packets", FieldDsts: "dsts",
	FieldNPorts: "nports", FieldDuration: "duration_s", FieldCoverage: "coverage",
	FieldCountry: "country", FieldASN: "asn", FieldType: "type", FieldOrg: "org",
	FieldTwoPhase: "two_phase", FieldISN: "isn", FieldLinkedDsts: "linked_dsts",
	FieldHandshakePackets: "handshake_packets", FieldPayloadBytes: "payload_bytes",
}

var fieldsByName = func() map[string]Field {
	m := make(map[string]Field, len(fieldNames))
	for f, n := range fieldNames {
		m[n] = f
	}
	return m
}()

// String returns the field's wire name.
func (f Field) String() string {
	if n, ok := fieldNames[f]; ok {
		return n
	}
	return fmt.Sprintf("field(%d)", uint8(f))
}

// FieldByName resolves a wire name ("year", "rate_pps", ...).
func FieldByName(s string) (Field, bool) {
	f, ok := fieldsByName[s]
	return f, ok
}

// MarshalJSON renders the wire name, so result rows read
// {"field": "tool"} rather than an internal enum value.
func (f Field) MarshalJSON() ([]byte, error) {
	return json.Marshal(f.String())
}

// UnmarshalJSON resolves a wire name back to the enum, so result rows
// decoded from a /v1/query response (the facade's remote client does this)
// round-trip.
func (f *Field) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, ok := fieldsByName[s]
	if !ok {
		return errf("unknown field %q", s)
	}
	*f = v
	return nil
}

// groupable reports whether rows may be grouped by f.
func (f Field) groupable() bool {
	switch f {
	case FieldYear, FieldTool, FieldPort, FieldQualified,
		FieldCountry, FieldASN, FieldType, FieldOrg,
		FieldTwoPhase, FieldISN:
		return true
	}
	return false
}

// numeric reports whether f can be a sum/quantile operand or range-filtered.
func (f Field) numeric() bool {
	switch f {
	case FieldRate, FieldPackets, FieldDsts, FieldNPorts, FieldDuration,
		FieldCoverage, FieldQualified, FieldTwoPhase, FieldLinkedDsts,
		FieldHandshakePackets, FieldPayloadBytes:
		return true
	}
	return false
}

// integerValued reports whether sums over f are exact integer accumulations
// (rendered as integers, matching the exact-counter analyses).
func (f Field) integerValued() bool {
	switch f {
	case FieldPackets, FieldDsts, FieldNPorts, FieldQualified,
		FieldTwoPhase, FieldLinkedDsts, FieldHandshakePackets,
		FieldPayloadBytes:
		return true
	}
	return false
}

// distinctable reports whether count_distinct/approx_distinct accept f.
func (f Field) distinctable() bool {
	switch f {
	case FieldSrc, FieldPort, FieldYear, FieldTool, FieldASN,
		FieldCountry, FieldType, FieldOrg, FieldISN:
		return true
	}
	return false
}

// topKable reports whether top_k accepts f. Restricted to integer-keyed
// fields so partial trackers merge by key across segments.
func (f Field) topKable() bool {
	switch f {
	case FieldSrc, FieldPort, FieldYear, FieldTool, FieldASN, FieldType,
		FieldISN:
		return true
	}
	return false
}

// needsOrigin reports whether evaluating f requires the enrichment origin.
func (f Field) needsOrigin() bool {
	switch f {
	case FieldCountry, FieldASN, FieldType, FieldOrg:
		return true
	}
	return false
}

// yearOf returns the UTC calendar year of a nanosecond timestamp.
func yearOf(ns int64) int { return time.Unix(0, ns).UTC().Year() }

// numValue extracts f's numeric value from one scan. portSplit is the
// scan's port-row divisor under port grouping: packets are split evenly
// (integer division) across the scan's port rows, matching the exact
// per-port packet tables; it is 1 outside port-grouped execution.
func numValue(f Field, sc *core.Scan, portSplit int) float64 {
	switch f {
	case FieldRate:
		return sc.RatePPS
	case FieldPackets:
		if portSplit > 1 {
			return float64(sc.Packets / uint64(portSplit))
		}
		return float64(sc.Packets)
	case FieldDsts:
		return float64(sc.DistinctDsts)
	case FieldNPorts:
		return float64(len(sc.Ports))
	case FieldDuration:
		return sc.Duration()
	case FieldCoverage:
		return sc.Coverage
	case FieldQualified:
		if sc.Qualified {
			return 1
		}
		return 0
	case FieldTwoPhase:
		if sc.TwoPhase {
			return 1
		}
		return 0
	case FieldLinkedDsts:
		return float64(sc.LinkedDsts)
	case FieldHandshakePackets:
		return float64(sc.HandshakePackets)
	case FieldPayloadBytes:
		return float64(sc.PayloadBytes)
	}
	return 0
}

// intValue is numValue for integer-valued fields, without the float round
// trip (exact for counters beyond 2^53).
func intValue(f Field, sc *core.Scan, portSplit int) uint64 {
	switch f {
	case FieldPackets:
		if portSplit > 1 {
			return sc.Packets / uint64(portSplit)
		}
		return sc.Packets
	case FieldDsts:
		return uint64(sc.DistinctDsts)
	case FieldNPorts:
		return uint64(len(sc.Ports))
	case FieldQualified:
		if sc.Qualified {
			return 1
		}
		return 0
	case FieldTwoPhase:
		if sc.TwoPhase {
			return 1
		}
		return 0
	case FieldLinkedDsts:
		return uint64(sc.LinkedDsts)
	case FieldHandshakePackets:
		return sc.HandshakePackets
	case FieldPayloadBytes:
		return sc.PayloadBytes
	}
	return 0
}

// keyValues appends f's distinct/top-k key(s) for one scan to dst. Port
// contributes one key per targeted port; string-valued fields hash through
// FNV-1a (stable across processes) for sketch keying.
func keyValues(f Field, sc *core.Scan, o *enrich.Origin, dst []uint64) []uint64 {
	switch f {
	case FieldSrc:
		return append(dst, uint64(sc.Src))
	case FieldPort:
		for _, p := range sc.Ports {
			dst = append(dst, uint64(p))
		}
		return dst
	case FieldYear:
		return append(dst, uint64(yearOf(sc.Start)))
	case FieldTool:
		return append(dst, uint64(sc.Tool))
	case FieldISN:
		return append(dst, uint64(sc.ISN))
	case FieldASN:
		if o == nil {
			return dst
		}
		return append(dst, uint64(o.ASN))
	case FieldType:
		if o == nil {
			return dst
		}
		return append(dst, uint64(o.Type))
	case FieldCountry:
		if o == nil {
			return dst
		}
		return append(dst, hashString(o.Country))
	case FieldOrg:
		if o == nil {
			return dst
		}
		return append(dst, hashString(o.OrgName))
	}
	return dst
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// renderKey formats an integer-keyed field value for display (top-k items,
// group keys).
func renderKey(f Field, v uint64) string {
	switch f {
	case FieldSrc:
		return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	case FieldTool:
		return tools.Tool(v).String()
	case FieldType:
		return inetmodel.ScannerType(v).String()
	case FieldISN:
		return fingerprint.ISNClass(v).String()
	default:
		return fmt.Sprintf("%d", v)
	}
}
