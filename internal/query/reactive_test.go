package query

import (
	"context"
	"testing"

	"github.com/synscan/synscan/internal/fingerprint"
)

// TestReactiveFieldRegistry: the reactive field names are first-class wire
// names — they resolve through FieldByName, round-trip String(), and carry
// the capabilities the two-phase analyses lean on. A rename or a dropped
// capability breaks /v1/query clients, so this pins the contract.
func TestReactiveFieldRegistry(t *testing.T) {
	cases := []struct {
		name                       string
		field                      Field
		groupable, numeric, intSum bool
	}{
		{"two_phase", FieldTwoPhase, true, true, true},
		{"isn", FieldISN, true, false, false},
		{"linked_dsts", FieldLinkedDsts, false, true, true},
		{"handshake_packets", FieldHandshakePackets, false, true, true},
		{"payload_bytes", FieldPayloadBytes, false, true, true},
	}
	for _, c := range cases {
		f, ok := FieldByName(c.name)
		if !ok {
			t.Fatalf("FieldByName(%q) not found", c.name)
		}
		if f != c.field {
			t.Fatalf("FieldByName(%q) = %v, want %v", c.name, f, c.field)
		}
		if f.String() != c.name {
			t.Fatalf("%v.String() = %q, want %q", c.field, f.String(), c.name)
		}
		if f.groupable() != c.groupable || f.numeric() != c.numeric ||
			f.integerValued() != c.intSum {
			t.Fatalf("%q capabilities: groupable=%v numeric=%v integer=%v, want %v/%v/%v",
				c.name, f.groupable(), f.numeric(), f.integerValued(),
				c.groupable, c.numeric, c.intSum)
		}
	}
	if !FieldISN.distinctable() || !FieldISN.topKable() {
		t.Fatal("isn must be distinctable and top-k-able")
	}
}

// TestReactiveQueryParity: a JSON request over the reactive fields — exactly
// what POST /v1/query receives — parses, executes over an archive carrying
// the phase extension, and agrees with a direct tally over the same scans.
func TestReactiveQueryParity(t *testing.T) {
	scans, origins := genScans(1200, 99)
	rd := openArc(t, writeArc(t, scans, origins, false))

	q, err := Parse([]byte(`{
		"where": {"and": [
			{"field": "two_phase", "eq": true},
			{"field": "isn", "in": ["mixed", "irregular"]},
			{"field": "qualified", "eq": true}
		]},
		"group_by": ["tool"],
		"aggs": [
			{"op": "count"},
			{"op": "sum", "field": "linked_dsts"},
			{"op": "sum", "field": "handshake_packets"},
			{"op": "sum", "field": "payload_bytes"}
		],
		"order_by": "key"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), q, ReaderSource{R: rd})
	if err != nil {
		t.Fatal(err)
	}

	type tally struct{ count, linked, handshake, payload uint64 }
	want := map[uint64]tally{}
	for _, sc := range scans {
		if !sc.TwoPhase || !sc.Qualified ||
			(sc.ISN != fingerprint.ISNMixed && sc.ISN != fingerprint.ISNIrregular) {
			continue
		}
		tl := want[uint64(sc.Tool)]
		tl.count++
		tl.linked += uint64(sc.LinkedDsts)
		tl.handshake += sc.HandshakePackets
		tl.payload += sc.PayloadBytes
		want[uint64(sc.Tool)] = tl
	}
	if len(want) == 0 {
		t.Fatal("generator produced no matching scans; test is vacuous")
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		tl, ok := want[row.Key[0].Num]
		if !ok {
			t.Fatalf("unexpected group %v", row.Key)
		}
		if row.Aggs[0].Count != tl.count || row.Aggs[1].Int != tl.linked ||
			row.Aggs[2].Int != tl.handshake || row.Aggs[3].Int != tl.payload {
			t.Fatalf("row %v = %+v, want %+v", row.Key, row.Aggs, tl)
		}
	}
}
