package query

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/fingerprint"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/tools"
)

// genScans builds n deterministic scans spread over years 2015-2024, all
// tools, varied port sets and the full source space, with parallel origins.
// Every fifth scan carries the reactive two-phase attributes, so archives and
// queries over the generated set exercise the phase extension end to end.
func genScans(n int, seed uint64) ([]*core.Scan, []enrich.Origin) {
	r := rng.New(seed)
	scans := make([]*core.Scan, 0, n)
	origins := make([]enrich.Origin, 0, n)
	for i := 0; i < n; i++ {
		year := 2015 + i%10
		start := time.Date(year, time.March, 1, 0, 0, 0, 0, time.UTC).UnixNano() +
			r.Int63n(int64(90*24)*int64(time.Hour))
		nPorts := 1 + int(r.Uint32()%4)
		ports := make([]uint16, 0, nPorts)
		p := uint16(r.Uint32() % 2000)
		for j := 0; j < nPorts; j++ {
			p += uint16(1 + r.Uint32()%300)
			ports = append(ports, p)
		}
		sc := &core.Scan{
			Src:          r.Uint32(),
			Start:        start,
			End:          start + r.Int63n(int64(2*time.Hour)),
			Packets:      uint64(1 + r.Uint32()%50000),
			DistinctDsts: 1 + int(r.Uint32()%2048),
			Ports:        ports,
			Tool:         tools.Tool(i % 7),
			Qualified:    i%3 != 0,
			RatePPS:      math.Abs(r.NormFloat64()) * 3000,
			Coverage:     float64(r.Uint32()%1000) / 1000,
			ISN:          fingerprint.ISNClass(i % 3),
		}
		if i%5 == 0 {
			sc.TwoPhase = true
			sc.ISN = fingerprint.ISNMixed
			sc.LinkedDsts = 1 + int(r.Uint32()%64)
			sc.HandshakePackets = uint64(r.Uint32()) % sc.Packets
			sc.PayloadBytes = uint64(r.Uint32() % 4096)
			sc.Payload = []byte{0x16, 0x03, 0x01, byte(i)}
		}
		sc.ScoutPackets = sc.Packets - sc.HandshakePackets
		scans = append(scans, sc)
		origins = append(origins, enrich.Origin{
			Country: fmt.Sprintf("C%d", i%11),
			ASN:     r.Uint32() % 50000,
			Type:    inetmodel.ScannerType(i % 5),
			OrgID:   int16(i%16 - 1),
			OrgName: fmt.Sprintf("org-%d", i%16),
		})
	}
	return scans, origins
}

// writeArc archives scans into a buffer (small blocks, so pushdown has
// something to prune).
func writeArc(t testing.TB, scans []*core.Scan, origins []enrich.Origin, withOrigins bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := archive.NewWriter(&buf, archive.WriterConfig{
		TelescopeSize: 4096, Origins: withOrigins, BlockBytes: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range scans {
		if withOrigins {
			err = w.AddWithOrigin(sc, origins[i])
		} else {
			err = w.Add(sc)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openArc(t testing.TB, data []byte, opts ...archive.ReaderOption) *archive.Reader {
	t.Helper()
	r, err := archive.NewReader(bytes.NewReader(data), int64(len(data)), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParseFullRequest(t *testing.T) {
	q, err := Parse([]byte(`{
		"where": {"and": [
			{"field": "year", "in": [2020, 2021]},
			{"field": "port", "in": [22, 2323]},
			{"not": {"field": "tool", "eq": "Mirai-like"}},
			{"field": "rate_pps", "min": 10},
			{"field": "src", "prefix": "10.0.0.0/8"},
			{"field": "qualified", "eq": true}
		]},
		"group_by": ["tool"],
		"aggs": [
			{"op": "count"},
			{"op": "sum", "field": "packets"},
			{"op": "count_distinct", "field": "src"},
			{"op": "approx_distinct", "field": "src"},
			{"op": "top_k", "field": "port", "k": 10},
			{"op": "quantile", "field": "rate_pps", "qs": [0.5, 0.9, 0.99]}
		],
		"order_by": "agg",
		"limit": 100
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != FieldTool {
		t.Fatalf("group_by = %v", q.GroupBy)
	}
	if len(q.Aggs) != 6 || q.Aggs[4].K != 10 || len(q.Aggs[5].Qs) != 3 {
		t.Fatalf("aggs = %+v", q.Aggs)
	}
	if q.Limit != 100 || q.Order != OrderDefault {
		t.Fatalf("limit=%d order=%v", q.Limit, q.Order)
	}
	if q.SelectMode() {
		t.Fatal("aggregate query classified as select")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,                                       // empty
		`{`,                                      // truncated
		`[1,2]`,                                  // wrong top-level type
		`{"bogus": 1}`,                           // unknown key
		`{} trailing`,                            // trailing garbage
		`{"where": {"field": "nope", "eq": 1}}`,  // unknown field
		`{"where": {"field": "year"}}`,           // missing operator
		`{"where": {"field": "year", "in": []}}`, // empty set
		`{"where": {"field": "year", "in": ["x"]}}`,                               // wrong value type
		`{"where": {"field": "year", "min": 3}}`,                                  // wrong operator
		`{"where": {"field": "port", "in": [70000]}}`,                             // port out of range
		`{"where": {"field": "tool", "eq": "notatool"}}`,                          // unknown tool
		`{"where": {"field": "src", "prefix": "bogus"}}`,                          // bad prefix
		`{"where": {"field": "qualified", "eq": 3}}`,                              // non-bool
		`{"where": {"field": "rate_pps", "min": 9, "max": 1}}`,                    // inverted range
		`{"where": {"and": []}}`,                                                  // empty and
		`{"where": {"and": [{"field":"year","eq":1}], "field": "year", "eq": 1}}`, // mixed node
		`{"group_by": ["rate_pps"], "aggs": [{"op":"count"}]}`,                    // ungroupable
		`{"group_by": ["tool","tool"], "aggs": [{"op":"count"}]}`,                 // duplicate
		`{"group_by": ["tool"]}`,                                                  // grouping without aggs
		`{"aggs": [{"op": "bogus"}]}`,                                             // unknown op
		`{"aggs": [{"op": "sum"}]}`,                                               // sum without field
		`{"aggs": [{"op": "count", "field": "year"}]}`,                            // count with field
		`{"aggs": [{"op": "top_k", "field": "port"}]}`,                            // k missing
		`{"aggs": [{"op": "top_k", "field": "port", "k": 1000000}]}`,              // absurd k
		`{"aggs": [{"op": "top_k", "field": "country", "k": 5}]}`,                 // unrankable field
		`{"aggs": [{"op": "quantile", "field": "rate_pps"}]}`,                     // qs missing
		`{"aggs": [{"op": "quantile", "field": "rate_pps", "qs": [1.5]}]}`,        // q out of range
		`{"aggs": [{"op": "quantile", "field": "tool", "qs": [0.5]}]}`,            // non-numeric
		`{"order_by": "sideways"}`,                                                // unknown order
		`{"limit": -1}`,                                                           // negative limit
	}
	for _, c := range cases {
		q, err := Parse([]byte(c))
		if err == nil {
			t.Errorf("Parse(%q) accepted: %+v", c, q)
			continue
		}
		if !IsClientError(err) {
			t.Errorf("Parse(%q): non-client error %v", c, err)
		}
	}
}

func TestParseDepthAndSizeCaps(t *testing.T) {
	deep := strings.Repeat(`{"not":`, maxDepth+1) +
		`{"field":"year","eq":2020}` + strings.Repeat(`}`, maxDepth+1)
	if _, err := Parse([]byte(`{"where":` + deep + `}`)); err == nil || !IsClientError(err) {
		t.Fatalf("deep nesting: err = %v", err)
	}
	var sb strings.Builder
	sb.WriteString(`{"where": {"or": [`)
	for i := 0; i <= maxNodes; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"field":"year","eq":%d}`, 2000+i%30)
	}
	sb.WriteString(`]}}`)
	if _, err := Parse([]byte(sb.String())); err == nil || !IsClientError(err) {
		t.Fatalf("node cap: err = %v", err)
	}
}

// TestCanonicalKey: semantically identical requests canonicalize to one key;
// different requests don't collide.
func TestCanonicalKey(t *testing.T) {
	parseKey := func(s string) string {
		t.Helper()
		q, err := Parse([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		return q.Canonicalize().Key()
	}
	same := [][2]string{
		{
			`{"where": {"field": "year", "in": [2021, 2020, 2021]}}`,
			`{"where": {"field": "year", "in": [2020, 2021]}}`,
		},
		{
			`{"where": {"and": [{"field":"year","eq":2020},{"field":"qualified","eq":true}]}}`,
			`{"where": {"and": [{"field":"qualified","eq":true},{"field":"year","eq":2020}]}}`,
		},
		{
			`{"where": {"and": [{"and": [{"field":"year","eq":2020}]},{"field":"port","eq":22}]}}`,
			`{"where": {"and": [{"field":"year","eq":2020},{"field":"port","eq":22}]}}`,
		},
		{
			`{"where": {"not": {"not": {"field":"year","eq":2020}}}}`,
			`{"where": {"field": "year", "eq": 2020}}`,
		},
		{
			`{"aggs": [{"op":"quantile","field":"rate_pps","qs":[0.9,0.5,0.9]}]}`,
			`{"aggs": [{"op":"quantile","field":"rate_pps","qs":[0.5,0.9]}]}`,
		},
	}
	for _, pair := range same {
		if k0, k1 := parseKey(pair[0]), parseKey(pair[1]); k0 != k1 {
			t.Errorf("keys differ:\n  %s -> %s\n  %s -> %s", pair[0], k0, pair[1], k1)
		}
	}
	distinct := []string{
		`{}`,
		`{"where": {"field": "year", "eq": 2020}}`,
		`{"where": {"field": "year", "eq": 2021}}`,
		`{"where": {"not": {"field": "year", "eq": 2020}}}`,
		`{"where": {"or": [{"field":"year","eq":2020},{"field":"year","eq":2021}]}}`,
		`{"group_by": ["tool"], "aggs": [{"op":"count"}]}`,
		`{"group_by": ["tool"], "aggs": [{"op":"count"}], "order_by": "key"}`,
		`{"group_by": ["tool"], "aggs": [{"op":"count"}], "limit": 5}`,
	}
	seen := map[string]string{}
	for _, c := range distinct {
		k := parseKey(c)
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision: %s and %s -> %s", prev, c, k)
		}
		seen[k] = c
	}
}

func TestSelectMode(t *testing.T) {
	scans, origins := genScans(500, 7)
	q, err := NewBuilder().Years(2020).Limit(10).Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), q, SliceSource{Scans: scans, Origins: origins})
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, sc := range scans {
		if yearOf(sc.Start) == 2020 {
			want++
		}
	}
	if res.Matched != want {
		t.Fatalf("Matched = %d, want %d", res.Matched, want)
	}
	if len(res.Scans) != 10 || !res.Truncated {
		t.Fatalf("returned %d truncated=%v", len(res.Scans), res.Truncated)
	}
	for _, rec := range res.Scans {
		if yearOf(rec.Scan.Start) != 2020 {
			t.Fatalf("filter leaked year %d", yearOf(rec.Scan.Start))
		}
		if rec.Origin == nil {
			t.Fatal("origin lost in select mode")
		}
	}
}

// TestAggregatesAgainstHandRolled pins executor semantics against plain
// loops: count, exact sums, exact distinct, quantiles, per-port packet
// splitting.
func TestAggregatesAgainstHandRolled(t *testing.T) {
	scans, origins := genScans(800, 11)
	q, err := NewBuilder().
		Qualified(true).
		GroupBy(FieldPort).
		Count().
		Sum(FieldPackets).
		CountDistinct(FieldSrc).
		Quantiles(FieldRate, 0.5, 0.9).
		OrderByKey().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), q, SliceSource{Scans: scans, Origins: origins})
	if err != nil {
		t.Fatal(err)
	}

	type ref struct {
		count   uint64
		packets uint64
		srcs    map[uint32]struct{}
		rates   []float64
	}
	byPort := map[uint16]*ref{}
	var matched uint64
	for _, sc := range scans {
		if !sc.Qualified {
			continue
		}
		matched++
		for _, p := range sc.Ports {
			r := byPort[p]
			if r == nil {
				r = &ref{srcs: map[uint32]struct{}{}}
				byPort[p] = r
			}
			r.count++
			r.packets += sc.Packets / uint64(len(sc.Ports))
			r.srcs[sc.Src] = struct{}{}
			r.rates = append(r.rates, sc.RatePPS)
		}
	}
	if res.Matched != matched {
		t.Fatalf("Matched = %d, want %d", res.Matched, matched)
	}
	if len(res.Rows) != len(byPort) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(byPort))
	}
	for _, row := range res.Rows {
		p := uint16(row.Key[0].Num)
		r := byPort[p]
		if r == nil {
			t.Fatalf("unexpected port %d", p)
		}
		if row.Aggs[0].Count != r.count {
			t.Fatalf("port %d count %d want %d", p, row.Aggs[0].Count, r.count)
		}
		if !row.Aggs[1].IsInt || row.Aggs[1].Int != r.packets {
			t.Fatalf("port %d packets %d want %d", p, row.Aggs[1].Int, r.packets)
		}
		if row.Aggs[2].Count != uint64(len(r.srcs)) {
			t.Fatalf("port %d distinct %d want %d", p, row.Aggs[2].Count, len(r.srcs))
		}
		for i, qv := range []float64{0.5, 0.9} {
			if want := stats.Quantile(r.rates, qv); row.Aggs[3].Vals[i] != want {
				t.Fatalf("port %d q%.1f = %v want %v", p, qv, row.Aggs[3].Vals[i], want)
			}
		}
	}
	// OrderByKey: ports ascending.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1].Key[0].Num >= res.Rows[i].Key[0].Num {
			t.Fatal("rows not key-sorted")
		}
	}
}

// TestMergeEqualsSequential: splitting a stream into partials and merging
// yields the same result as one sequential executor, for every aggregate.
func TestMergeEqualsSequential(t *testing.T) {
	scans, origins := genScans(900, 13)
	q, err := NewBuilder().
		GroupBy(FieldTool).
		Count().
		Sum(FieldPackets).
		Sum(FieldRate).
		CountDistinct(FieldSrc).
		ApproxDistinct(FieldSrc).
		TopK(FieldPort, 8).
		Quantiles(FieldRate, 0.5, 0.99).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	feed := func(e *Executor, from, to int) {
		for i := from; i < to; i++ {
			e.Observe(scans[i], &origins[i])
		}
	}
	seq := NewExecutor(q)
	feed(seq, 0, len(scans))
	want, err := seq.Finish()
	if err != nil {
		t.Fatal(err)
	}

	parts := []int{0, 137, 400, 640, len(scans)}
	var total *Executor
	for i := 1; i < len(parts); i++ {
		part := NewExecutor(q)
		feed(part, parts[i-1], parts[i])
		if total == nil {
			total = part
		} else {
			total.Merge(part)
		}
	}
	got, err := total.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want)
}

// floatsClose compares within a relative ulp-scale tolerance: float sums are
// exact per partial but addition is not associative, so merging partials can
// differ from a sequential sum in the last bits.
func floatsClose(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// sameResults asserts two results are equal: exactly for counts, integer
// sums, distincts, rankings and quantile values, within float tolerance for
// float sums.
func sameResults(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Matched != want.Matched || got.Truncated != want.Truncated ||
		got.TotalRows != want.TotalRows {
		t.Fatalf("result headers differ: got %d/%v/%d want %d/%v/%d",
			got.Matched, got.Truncated, got.TotalRows,
			want.Matched, want.Truncated, want.TotalRows)
	}
	if !reflect.DeepEqual(got.Scans, want.Scans) {
		t.Fatalf("select rows differ: %d vs %d scans", len(got.Scans), len(want.Scans))
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("row count %d != %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		gr, wr := got.Rows[i], want.Rows[i]
		if !reflect.DeepEqual(gr.Key, wr.Key) {
			t.Fatalf("row %d key %+v != %+v", i, gr.Key, wr.Key)
		}
		if len(gr.Aggs) != len(wr.Aggs) {
			t.Fatalf("row %d agg count differs", i)
		}
		for j := range gr.Aggs {
			ga, wa := gr.Aggs[j], wr.Aggs[j]
			if ga.Op != wa.Op || ga.Field != wa.Field || ga.Count != wa.Count ||
				ga.Int != wa.Int || ga.IsInt != wa.IsInt ||
				!reflect.DeepEqual(ga.Top, wa.Top) ||
				!reflect.DeepEqual(ga.Qs, wa.Qs) || len(ga.Vals) != len(wa.Vals) {
				t.Fatalf("row %d agg %d differs:\n got %+v\nwant %+v", i, j, ga, wa)
			}
			if !floatsClose(ga.Float, wa.Float) {
				t.Fatalf("row %d agg %d float %v != %v", i, j, ga.Float, wa.Float)
			}
			for k := range ga.Vals {
				if !floatsClose(ga.Vals[k], wa.Vals[k]) {
					t.Fatalf("row %d agg %d val %d: %v != %v", i, j, k, ga.Vals[k], wa.Vals[k])
				}
			}
		}
	}
}

// TestBuilderMatchesParsedKey: the fluent builder and the JSON form
// canonicalize to the same cache key.
func TestBuilderMatchesParsedKey(t *testing.T) {
	built, err := NewBuilder().
		Years(2021, 2020).
		Ports(22, 2323).
		Qualified(true).
		GroupBy(FieldTool).
		Count().
		Sum(FieldPackets).
		Limit(20).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse([]byte(`{
		"where": {"and": [
			{"field": "qualified", "eq": true},
			{"field": "port", "in": [2323, 22]},
			{"field": "year", "in": [2020, 2021]}
		]},
		"group_by": ["tool"],
		"aggs": [{"op": "count"}, {"op": "sum", "field": "packets"}],
		"limit": 20
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if bk, pk := built.Key(), parsed.Canonicalize().Key(); bk != pk {
		t.Fatalf("builder key %q != parsed key %q", bk, pk)
	}
}

// TestOriginGroupingSkipsOriginless: origin group-bys drop scans from
// origin-less sources instead of inventing a zero group.
func TestOriginGroupingSkipsOriginless(t *testing.T) {
	scans, origins := genScans(200, 17)
	q, err := NewBuilder().GroupBy(FieldType).Count().Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), q,
		SliceSource{Scans: scans, Origins: origins}, // with origins
		SliceSource{Scans: scans},                   // without
	)
	if err != nil {
		t.Fatal(err)
	}
	var rows uint64
	for _, row := range res.Rows {
		rows += row.Aggs[0].Count
	}
	if rows != uint64(len(scans)) {
		t.Fatalf("origin rows = %d, want %d (origin-less source must not contribute)", rows, len(scans))
	}
	// Matched still counts both sources: the filter matched, only the
	// grouping had nowhere to put them.
	if res.Matched != uint64(2*len(scans)) {
		t.Fatalf("Matched = %d, want %d", res.Matched, 2*len(scans))
	}
}

// TestGroupCap: a grouping that explodes past maxGroups fails with a client
// error instead of exhausting memory.
func TestGroupCap(t *testing.T) {
	old := maxGroups
	maxGroups = 100
	defer func() { maxGroups = old }()
	q, err := NewBuilder().GroupBy(FieldASN).Count().Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(q)
	sc := core.Scan{Ports: []uint16{1}, Packets: 1}
	o := enrich.Origin{}
	for i := 0; i <= maxGroups; i++ {
		o.ASN = uint32(i)
		e.Observe(&sc, &o)
	}
	if _, err := e.Finish(); err == nil || !IsClientError(err) {
		t.Fatalf("group cap: err = %v", err)
	}
}

// TestZoneMapPruning: the compiled predicate actually prunes blocks (the
// planner wires Expr.matchBlock through to the reader).
func TestZoneMapPruning(t *testing.T) {
	scans, origins := genScans(4000, 19)
	// Archive in time order so blocks cover narrow year ranges the zone maps
	// can prune on (the live pipeline archives in stream order too).
	sorted := append([]*core.Scan(nil), scans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	data := writeArc(t, sorted, origins, false)
	rd := openArc(t, data)
	q, err := NewBuilder().Years(2016).Build()
	if err != nil {
		t.Fatal(err)
	}
	p := q.Predicate()
	pruned := 0
	for _, z := range rd.Blocks() {
		if !p.MatchBlock(&z) {
			pruned++
		}
	}
	if pruned == 0 {
		t.Fatalf("year filter pruned no blocks out of %d", rd.NumBlocks())
	}
	// And the pruned read still returns exactly the right scans.
	res, err := Run(context.Background(), q, ReaderSource{R: rd})
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, sc := range scans {
		if yearOf(sc.Start) == 2016 {
			want++
		}
	}
	if res.Matched != want {
		t.Fatalf("Matched = %d, want %d", res.Matched, want)
	}
}
