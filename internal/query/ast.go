// Package query is the analytical surface over campaign archives: a small
// typed AST of filter expressions and aggregations, a parser for a compact
// JSON request form, a planner that compiles filters onto the archive
// reader's zone-map predicate pushdown, and streaming per-block aggregation
// executors that compute group-by/top-k/distinct/quantile results during the
// scan — without ever materializing a scan list — and merge per-segment
// partial aggregates across a live store's catalog view.
//
// The paper's own analyses (§4–§6: volatility, recurrence, speed ECDFs,
// heavy-hitter rankings) are all instances of the same shape: filter the
// campaign set, group it, aggregate each group. This package makes that
// shape a first-class, servable request: synserve exposes it as POST
// /v1/query (the legacy fixed-parameter endpoints compile onto the same
// AST), the synscan facade exposes a fluent builder, and the batch analyses
// in internal/analysis execute through the same engine.
package query

import (
	"sort"
	"strconv"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/fingerprint"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/tools"
)

// Expr is one node of a filter expression tree. Expressions are built by the
// JSON parser, the fluent Builder, or the exported constructors (And, Or,
// Not, YearIn, ...), and compile onto the archive reader's zone-map pushdown
// via Query.Predicate.
type Expr interface {
	// match decides one decoded scan (o nil when the source has no origins;
	// origin-dependent leaves never match then).
	match(sc *core.Scan, o *enrich.Origin) bool
	// matchBlock conservatively decides a zone map: false proves no scan in
	// the block matches; true only means the block must be decoded.
	matchBlock(z *archive.ZoneMap) bool
	// canon returns the normalized form (sorted/deduped lists, flattened
	// and/or, double negation eliminated).
	canon() Expr
	// appendKey appends the node's canonical encoding (assumes canon ran).
	appendKey(b []byte) []byte
	// validate rejects malformed nodes with a client error.
	validate() error
}

func exprKey(e Expr) string { return string(e.appendKey(nil)) }

// ---- combinators ----

type andExpr struct{ kids []Expr }
type orExpr struct{ kids []Expr }
type notExpr struct{ kid Expr }

// And matches scans satisfying every child expression.
func And(kids ...Expr) Expr { return &andExpr{kids: kids} }

// Or matches scans satisfying at least one child expression.
func Or(kids ...Expr) Expr { return &orExpr{kids: kids} }

// Not matches scans the child rejects. Zone-map pruning stops beneath a Not
// (the child's block answer is conservative, so its negation proves
// nothing); blocks under a Not always decode.
func Not(kid Expr) Expr { return &notExpr{kid: kid} }

func (e *andExpr) match(sc *core.Scan, o *enrich.Origin) bool {
	for _, k := range e.kids {
		if !k.match(sc, o) {
			return false
		}
	}
	return true
}

// matchBlock: a block can satisfy the conjunction only if every child admits
// it — any child proving "no scan here matches" excludes the whole And.
func (e *andExpr) matchBlock(z *archive.ZoneMap) bool {
	for _, k := range e.kids {
		if !k.matchBlock(z) {
			return false
		}
	}
	return true
}

func (e *orExpr) match(sc *core.Scan, o *enrich.Origin) bool {
	for _, k := range e.kids {
		if k.match(sc, o) {
			return true
		}
	}
	return false
}

func (e *orExpr) matchBlock(z *archive.ZoneMap) bool {
	for _, k := range e.kids {
		if k.matchBlock(z) {
			return true
		}
	}
	return false
}

func (e *notExpr) match(sc *core.Scan, o *enrich.Origin) bool {
	return !e.kid.match(sc, o)
}

// matchBlock is always true: the child's matchBlock is conservative (true
// means "might match"), so its negation cannot prove absence.
func (e *notExpr) matchBlock(*archive.ZoneMap) bool { return true }

// canonKids canonicalizes, flattens same-typed children, dedupes by key and
// sorts deterministically.
func canonKids(kids []Expr, flatten func(Expr) []Expr) []Expr {
	var flat []Expr
	for _, k := range kids {
		c := k.canon()
		if sub := flatten(c); sub != nil {
			flat = append(flat, sub...)
		} else {
			flat = append(flat, c)
		}
	}
	seen := map[string]bool{}
	out := flat[:0]
	for _, k := range flat {
		key := exprKey(k)
		if !seen[key] {
			seen[key] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return exprKey(out[i]) < exprKey(out[j]) })
	return out
}

func (e *andExpr) canon() Expr {
	kids := canonKids(e.kids, func(c Expr) []Expr {
		if a, ok := c.(*andExpr); ok {
			return a.kids
		}
		return nil
	})
	if len(kids) == 1 {
		return kids[0]
	}
	return &andExpr{kids: kids}
}

func (e *orExpr) canon() Expr {
	kids := canonKids(e.kids, func(c Expr) []Expr {
		if o, ok := c.(*orExpr); ok {
			return o.kids
		}
		return nil
	})
	if len(kids) == 1 {
		return kids[0]
	}
	return &orExpr{kids: kids}
}

func (e *notExpr) canon() Expr {
	kid := e.kid.canon()
	if n, ok := kid.(*notExpr); ok {
		return n.kid
	}
	return &notExpr{kid: kid}
}

func appendKids(b []byte, name string, kids []Expr) []byte {
	b = append(b, name...)
	b = append(b, '(')
	for i, k := range kids {
		if i > 0 {
			b = append(b, '|')
		}
		b = k.appendKey(b)
	}
	return append(b, ')')
}

func (e *andExpr) appendKey(b []byte) []byte { return appendKids(b, "and", e.kids) }
func (e *orExpr) appendKey(b []byte) []byte  { return appendKids(b, "or", e.kids) }
func (e *notExpr) appendKey(b []byte) []byte {
	b = append(b, "not("...)
	b = e.kid.appendKey(b)
	return append(b, ')')
}

func validateKids(kind string, kids []Expr) error {
	if len(kids) == 0 {
		return errf("%s needs at least one operand", kind)
	}
	for _, k := range kids {
		if err := k.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (e *andExpr) validate() error { return validateKids("and", e.kids) }
func (e *orExpr) validate() error  { return validateKids("or", e.kids) }
func (e *notExpr) validate() error { return e.kid.validate() }

// ---- set-membership leaves ----

// inExpr matches scans whose field value is in the set. For FieldPort the
// semantics are "targets at least one of" (the paper's port filters). Ints
// carries year/tool/port/asn/type values; Strs carries country/org values.
type inExpr struct {
	field Field
	ints  []uint64
	strs  []string
}

// YearIn matches scans starting in one of the given UTC calendar years.
func YearIn(years ...int) Expr {
	e := &inExpr{field: FieldYear}
	for _, y := range years {
		e.ints = append(e.ints, uint64(uint16(y)))
	}
	return e
}

// ToolIn matches scans attributed to one of the given tools.
func ToolIn(ts ...tools.Tool) Expr {
	e := &inExpr{field: FieldTool}
	for _, t := range ts {
		e.ints = append(e.ints, uint64(t))
	}
	return e
}

// PortAny matches scans targeting at least one of the given ports.
func PortAny(ports ...uint16) Expr {
	e := &inExpr{field: FieldPort}
	for _, p := range ports {
		e.ints = append(e.ints, uint64(p))
	}
	return e
}

// ASNIn matches scans whose origin ASN is one of the given values.
func ASNIn(asns ...uint32) Expr {
	e := &inExpr{field: FieldASN}
	for _, a := range asns {
		e.ints = append(e.ints, uint64(a))
	}
	return e
}

// ISNIn matches scans whose ISN regularity class is one of the given values.
func ISNIn(cs ...fingerprint.ISNClass) Expr {
	e := &inExpr{field: FieldISN}
	for _, c := range cs {
		e.ints = append(e.ints, uint64(c))
	}
	return e
}

// TypeIn matches scans whose origin scanner type is one of the given values.
func TypeIn(ts ...inetmodel.ScannerType) Expr {
	e := &inExpr{field: FieldType}
	for _, t := range ts {
		e.ints = append(e.ints, uint64(t))
	}
	return e
}

// CountryIn matches scans whose origin country is one of the given ISO codes.
func CountryIn(codes ...string) Expr {
	return &inExpr{field: FieldCountry, strs: append([]string(nil), codes...)}
}

// OrgIn matches scans whose origin organization name is one of the given.
func OrgIn(names ...string) Expr {
	return &inExpr{field: FieldOrg, strs: append([]string(nil), names...)}
}

func (e *inExpr) match(sc *core.Scan, o *enrich.Origin) bool {
	switch e.field {
	case FieldYear:
		return containsInt(e.ints, uint64(uint16(yearOf(sc.Start))))
	case FieldTool:
		return containsInt(e.ints, uint64(sc.Tool))
	case FieldPort:
		for _, p := range sc.Ports {
			if containsInt(e.ints, uint64(p)) {
				return true
			}
		}
		return false
	case FieldISN:
		return containsInt(e.ints, uint64(sc.ISN))
	case FieldASN:
		return o != nil && containsInt(e.ints, uint64(o.ASN))
	case FieldType:
		return o != nil && containsInt(e.ints, uint64(o.Type))
	case FieldCountry:
		return o != nil && containsStr(e.strs, o.Country)
	case FieldOrg:
		return o != nil && containsStr(e.strs, o.OrgName)
	}
	return false
}

// containsInt binary-searches when the list is canonical (sorted), and falls
// back to linear scan otherwise; lists are tiny either way.
func containsInt(xs []uint64, v uint64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func containsStr(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func (e *inExpr) matchBlock(z *archive.ZoneMap) bool {
	switch e.field {
	case FieldYear:
		for _, y := range e.ints {
			if y >= uint64(z.MinYear) && y <= uint64(z.MaxYear) {
				return true
			}
		}
		return false
	case FieldTool:
		var want uint16
		for _, t := range e.ints {
			want |= 1 << uint(t)
		}
		return z.ToolBits&want != 0
	case FieldPort:
		for _, p := range e.ints {
			if z.MayContainPort(uint16(p)) {
				return true
			}
		}
		return false
	}
	// Origin fields carry no zone-map summary.
	return true
}

func (e *inExpr) canon() Expr {
	c := &inExpr{field: e.field}
	if len(e.ints) > 0 {
		c.ints = append([]uint64(nil), e.ints...)
		sort.Slice(c.ints, func(i, j int) bool { return c.ints[i] < c.ints[j] })
		c.ints = dedupInts(c.ints)
	}
	if len(e.strs) > 0 {
		c.strs = append([]string(nil), e.strs...)
		sort.Strings(c.strs)
		c.strs = dedupStrs(c.strs)
	}
	return c
}

func dedupInts(xs []uint64) []uint64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func dedupStrs(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func (e *inExpr) appendKey(b []byte) []byte {
	b = append(b, "in:"...)
	b = append(b, e.field.String()...)
	b = append(b, '(')
	for i, v := range e.ints {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendUint(b, v, 10)
	}
	for i, s := range e.strs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, s)
	}
	return append(b, ')')
}

func (e *inExpr) validate() error {
	if len(e.ints)+len(e.strs) == 0 {
		return errf("%s: empty value set", e.field)
	}
	if len(e.ints)+len(e.strs) > maxInValues {
		return errf("%s: value set exceeds %d entries", e.field, maxInValues)
	}
	switch e.field {
	case FieldYear:
		for _, y := range e.ints {
			if y > 65535 {
				return errf("year %d out of range", y)
			}
		}
	case FieldTool:
		for _, t := range e.ints {
			if t >= uint64(tools.NumTools()) {
				return errf("tool value %d out of range", t)
			}
		}
	case FieldPort:
		for _, p := range e.ints {
			if p > 65535 {
				return errf("port %d out of range", p)
			}
		}
	case FieldASN:
		for _, a := range e.ints {
			if a > 1<<32-1 {
				return errf("asn %d out of range", a)
			}
		}
	case FieldType:
		for _, t := range e.ints {
			if t > uint64(len(inetmodel.ScannerTypes)) {
				return errf("scanner type value %d out of range", t)
			}
		}
	case FieldISN:
		for _, c := range e.ints {
			if c > uint64(fingerprint.ISNMixed) {
				return errf("isn class value %d out of range", c)
			}
		}
	case FieldCountry, FieldOrg:
		if len(e.ints) > 0 {
			return errf("%s takes string values", e.field)
		}
	default:
		return errf("field %s does not support set membership", e.field)
	}
	return nil
}

// ---- qualified flag ----

type qualExpr struct{ want bool }

// Qualified matches scans whose over-threshold flag equals want.
func Qualified(want bool) Expr { return &qualExpr{want: want} }

func (e *qualExpr) match(sc *core.Scan, _ *enrich.Origin) bool {
	return sc.Qualified == e.want
}

func (e *qualExpr) matchBlock(z *archive.ZoneMap) bool {
	if e.want {
		return z.Qualified > 0
	}
	return z.Qualified < z.Scans
}

func (e *qualExpr) canon() Expr { return e }

func (e *qualExpr) appendKey(b []byte) []byte {
	if e.want {
		return append(b, "qual(1)"...)
	}
	return append(b, "qual(0)"...)
}

func (e *qualExpr) validate() error { return nil }

// ---- two-phase flag ----

type twoPhaseExpr struct{ want bool }

// TwoPhaseIs matches scans whose two-phase (scout + handshake) flag equals
// want. Blocks prune through the zone map's saturating two-phase counter;
// archives written before the phase extension carry a zero counter, so a
// want=true filter skips them wholesale.
func TwoPhaseIs(want bool) Expr { return &twoPhaseExpr{want: want} }

func (e *twoPhaseExpr) match(sc *core.Scan, _ *enrich.Origin) bool {
	return sc.TwoPhase == e.want
}

func (e *twoPhaseExpr) matchBlock(z *archive.ZoneMap) bool {
	if e.want {
		return z.TwoPhase > 0
	}
	// The counter saturates, so equality with Scans only proves "all
	// two-phase" while it is below the cap; at the cap we must decode.
	return uint32(z.TwoPhase) < z.Scans || z.TwoPhase == 65535
}

func (e *twoPhaseExpr) canon() Expr { return e }

func (e *twoPhaseExpr) appendKey(b []byte) []byte {
	if e.want {
		return append(b, "twophase(1)"...)
	}
	return append(b, "twophase(0)"...)
}

func (e *twoPhaseExpr) validate() error { return nil }

// ---- source prefix ----

type prefixExpr struct{ pfx inetmodel.Prefix }

// SrcIn matches scans whose source address falls inside the prefix.
func SrcIn(pfx inetmodel.Prefix) Expr { return &prefixExpr{pfx: pfx} }

func (e *prefixExpr) match(sc *core.Scan, _ *enrich.Origin) bool {
	return e.pfx.Contains(sc.Src)
}

func (e *prefixExpr) matchBlock(z *archive.ZoneMap) bool {
	return e.pfx.Last() >= z.MinSrc && e.pfx.First() <= z.MaxSrc
}

func (e *prefixExpr) canon() Expr { return e }

func (e *prefixExpr) appendKey(b []byte) []byte {
	b = append(b, "src("...)
	b = append(b, e.pfx.String()...)
	return append(b, ')')
}

func (e *prefixExpr) validate() error {
	if e.pfx.Bits > 32 {
		return errf("src prefix length %d out of range", e.pfx.Bits)
	}
	return nil
}

// ---- time range ----

// timeExpr bounds the scan start time in nanoseconds; nil means open.
type timeExpr struct{ min, max *int64 }

// TimeBetween matches scans starting in [minNS, maxNS].
func TimeBetween(minNS, maxNS int64) Expr {
	return &timeExpr{min: &minNS, max: &maxNS}
}

func (e *timeExpr) match(sc *core.Scan, _ *enrich.Origin) bool {
	if e.min != nil && sc.Start < *e.min {
		return false
	}
	if e.max != nil && sc.Start > *e.max {
		return false
	}
	return true
}

func (e *timeExpr) matchBlock(z *archive.ZoneMap) bool {
	if e.min != nil && z.MaxStart < *e.min {
		return false
	}
	if e.max != nil && z.MinStart > *e.max {
		return false
	}
	return true
}

func (e *timeExpr) canon() Expr { return e }

func (e *timeExpr) appendKey(b []byte) []byte {
	b = append(b, "time("...)
	b = appendOptInt(b, e.min)
	b = append(b, ';')
	b = appendOptInt(b, e.max)
	return append(b, ')')
}

func appendOptInt(b []byte, v *int64) []byte {
	if v == nil {
		return append(b, '*')
	}
	return strconv.AppendInt(b, *v, 10)
}

func (e *timeExpr) validate() error {
	if e.min == nil && e.max == nil {
		return errf("time range needs min_ns or max_ns")
	}
	if e.min != nil && e.max != nil && *e.min > *e.max {
		return errf("time range min_ns > max_ns")
	}
	return nil
}

// ---- numeric range ----

// rangeExpr bounds a numeric field; nil means open. Ranges carry no
// zone-map summary (beyond time/year/src, which have their own leaves), so
// they filter per scan only.
type rangeExpr struct {
	field    Field
	min, max *float64
}

// NumRange matches scans whose numeric field lies in [min, max]; pass nil
// for an open side.
func NumRange(f Field, min, max *float64) Expr {
	return &rangeExpr{field: f, min: min, max: max}
}

// RateBetween bounds the extrapolated rate (pps); a non-positive side is
// open, mirroring the legacy minrate/maxrate parameters.
func RateBetween(min, max float64) Expr {
	e := &rangeExpr{field: FieldRate}
	if min > 0 {
		e.min = &min
	}
	if max > 0 {
		e.max = &max
	}
	return e
}

func (e *rangeExpr) match(sc *core.Scan, _ *enrich.Origin) bool {
	v := numValue(e.field, sc, 1)
	if e.min != nil && v < *e.min {
		return false
	}
	if e.max != nil && v > *e.max {
		return false
	}
	return true
}

func (e *rangeExpr) matchBlock(*archive.ZoneMap) bool { return true }

func (e *rangeExpr) canon() Expr { return e }

func (e *rangeExpr) appendKey(b []byte) []byte {
	b = append(b, "rng:"...)
	b = append(b, e.field.String()...)
	b = append(b, '(')
	b = appendOptFloat(b, e.min)
	b = append(b, ';')
	b = appendOptFloat(b, e.max)
	return append(b, ')')
}

func appendOptFloat(b []byte, v *float64) []byte {
	if v == nil {
		return append(b, '*')
	}
	return strconv.AppendFloat(b, *v, 'g', -1, 64)
}

func (e *rangeExpr) validate() error {
	if !e.field.numeric() {
		return errf("field %s does not support range filtering", e.field)
	}
	if e.min == nil && e.max == nil {
		return errf("%s range needs min or max", e.field)
	}
	if e.min != nil && e.max != nil && *e.min > *e.max {
		return errf("%s range min > max", e.field)
	}
	return nil
}

// exprDepth returns the tree depth, for the parser's nesting cap.
func exprDepth(e Expr) int {
	switch n := e.(type) {
	case *andExpr:
		return 1 + maxKidDepth(n.kids)
	case *orExpr:
		return 1 + maxKidDepth(n.kids)
	case *notExpr:
		return 1 + exprDepth(n.kid)
	}
	return 1
}

func maxKidDepth(kids []Expr) int {
	d := 0
	for _, k := range kids {
		if kd := exprDepth(k); kd > d {
			d = kd
		}
	}
	return d
}

// exprString renders an expression for error messages and debugging.
func exprString(e Expr) string {
	if e == nil {
		return "true"
	}
	return exprKey(e)
}
