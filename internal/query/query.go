package query

import (
	"sort"
	"strconv"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
)

// Hard caps on request shape. Every cap violation is a ClientError (a 400,
// never a panic or an unbounded allocation): the parser enforces the
// structural ones before building nodes, and Validate re-checks everything
// for programmatically built queries.
const (
	// maxDepth bounds filter-tree nesting.
	maxDepth = 32
	// maxNodes bounds total filter-tree size.
	maxNodes = 4096
	// maxInValues bounds one set-membership list.
	maxInValues = 4096
	// maxTopK bounds a top_k capacity request.
	maxTopK = 65536
	// maxQuantiles bounds the quantile list of one aggregate.
	maxQuantiles = 32
	// maxGroupBy bounds grouping dimensions.
	maxGroupBy = 4
	// maxAggs bounds aggregates per query.
	maxAggs = 16
	// maxSelectLimit bounds a select-mode row limit.
	maxSelectLimit = 100000
)

// maxGroups bounds distinct groups materialized during execution; a query
// that exceeds it (e.g. grouping a decade by ASN with no filter) fails with
// a ClientError rather than exhausting memory. A variable so tests can
// exercise the cap without building a million groups.
var maxGroups = 1 << 20

// AggOp names an aggregation operator.
type AggOp uint8

const (
	aggInvalid AggOp = iota
	// OpCount counts matching scans (per group).
	OpCount
	// OpSum sums a numeric field exactly.
	OpSum
	// OpCountDistinct counts distinct field values exactly (set-based;
	// mergeable by union). Use for analyses that must be exact, e.g. the
	// per-type distinct-source table.
	OpCountDistinct
	// OpApproxDistinct estimates distinct field values with HyperLogLog
	// (16 KiB per group, ~0.81% error, mergeable by register max).
	OpApproxDistinct
	// OpTopK tracks the k heaviest field values per group (Space-Saving).
	OpTopK
	// OpQuantile reports quantiles of a numeric field (exact: per-group
	// float64 samples, merged by concatenation, sorted once at the end).
	OpQuantile
)

var aggOpNames = map[AggOp]string{
	OpCount: "count", OpSum: "sum", OpCountDistinct: "count_distinct",
	OpApproxDistinct: "approx_distinct", OpTopK: "top_k", OpQuantile: "quantile",
}

var aggOpsByName = func() map[string]AggOp {
	m := make(map[string]AggOp, len(aggOpNames))
	for op, n := range aggOpNames {
		m[n] = op
	}
	return m
}()

// String returns the operator's wire name.
func (op AggOp) String() string {
	if n, ok := aggOpNames[op]; ok {
		return n
	}
	return "op(" + strconv.Itoa(int(op)) + ")"
}

// AggOpByName resolves a wire name.
func AggOpByName(s string) (AggOp, bool) {
	op, ok := aggOpsByName[s]
	return op, ok
}

// Agg is one aggregate to compute per group.
type Agg struct {
	// Op selects the operator.
	Op AggOp
	// Field is the operand (unused for OpCount).
	Field Field
	// K is the capacity for OpTopK.
	K int
	// Qs are the requested quantiles for OpQuantile, each in [0, 1].
	Qs []float64
}

// OrderBy selects result-row ordering for aggregate queries.
type OrderBy uint8

const (
	// OrderDefault sorts by the first aggregate's scalar descending, ties
	// by group key ascending — the paper's "top N by volume" table shape.
	OrderDefault OrderBy = iota
	// OrderKey sorts by group key ascending (year series, port lists).
	OrderKey
)

// Query is one analytical request: an optional filter, optional grouping,
// and the aggregates to compute. With no GroupBy and no Aggs the query runs
// in select mode, streaming matching scans up to Limit.
type Query struct {
	// Where filters scans; nil matches everything.
	Where Expr
	// GroupBy are the grouping dimensions (empty = one global group).
	GroupBy []Field
	// Aggs are the aggregates per group.
	Aggs []Agg
	// Order picks aggregate-row ordering.
	Order OrderBy
	// Limit caps returned rows (select mode: scans; aggregate mode: groups
	// after sorting). Zero means the mode's default.
	Limit int
}

// SelectMode reports whether the query streams raw scans (no grouping, no
// aggregates) rather than aggregate rows.
func (q *Query) SelectMode() bool { return len(q.GroupBy) == 0 && len(q.Aggs) == 0 }

// Validate rejects malformed queries with a ClientError. Parse-produced
// queries are already validated; call this on programmatically built ones.
func (q *Query) Validate() error {
	if q.Where != nil {
		if d := exprDepth(q.Where); d > maxDepth {
			return errf("filter nesting depth %d exceeds %d", d, maxDepth)
		}
		if n := exprNodes(q.Where); n > maxNodes {
			return errf("filter has %d nodes, exceeds %d", n, maxNodes)
		}
		if err := q.Where.validate(); err != nil {
			return err
		}
	}
	if len(q.GroupBy) > maxGroupBy {
		return errf("group_by has %d fields, exceeds %d", len(q.GroupBy), maxGroupBy)
	}
	seen := map[Field]bool{}
	for _, f := range q.GroupBy {
		if !f.groupable() {
			return errf("field %s is not groupable", f)
		}
		if seen[f] {
			return errf("duplicate group_by field %s", f)
		}
		seen[f] = true
	}
	if len(q.Aggs) > maxAggs {
		return errf("query has %d aggregates, exceeds %d", len(q.Aggs), maxAggs)
	}
	if q.SelectMode() {
		if q.Limit < 0 || q.Limit > maxSelectLimit {
			return errf("limit %d out of range [0, %d]", q.Limit, maxSelectLimit)
		}
		return nil
	}
	if len(q.Aggs) == 0 {
		return errf("group_by requires at least one aggregate")
	}
	if q.Limit < 0 {
		return errf("limit %d out of range", q.Limit)
	}
	for i := range q.Aggs {
		if err := q.Aggs[i].validate(); err != nil {
			return err
		}
	}
	return nil
}

func (a *Agg) validate() error {
	switch a.Op {
	case OpCount:
		if a.Field != fInvalid {
			return errf("count takes no field")
		}
	case OpSum:
		if !a.Field.numeric() {
			return errf("sum: field %s is not numeric", a.Field)
		}
	case OpCountDistinct, OpApproxDistinct:
		if !a.Field.distinctable() {
			return errf("%s: field %s is not distinct-countable", a.Op, a.Field)
		}
	case OpTopK:
		if !a.Field.topKable() {
			return errf("top_k: field %s is not rankable", a.Field)
		}
		if a.K < 1 || a.K > maxTopK {
			return errf("top_k: k=%d out of range [1, %d]", a.K, maxTopK)
		}
	case OpQuantile:
		if !a.Field.numeric() {
			return errf("quantile: field %s is not numeric", a.Field)
		}
		if len(a.Qs) == 0 {
			return errf("quantile: no quantiles requested")
		}
		if len(a.Qs) > maxQuantiles {
			return errf("quantile: %d quantiles exceeds %d", len(a.Qs), maxQuantiles)
		}
		for _, v := range a.Qs {
			if !(v >= 0 && v <= 1) {
				return errf("quantile: q=%v out of [0, 1]", v)
			}
		}
	default:
		return errf("unknown aggregate operator")
	}
	if a.Op != OpTopK && a.K != 0 {
		return errf("%s takes no k", a.Op)
	}
	if a.Op != OpQuantile && len(a.Qs) != 0 {
		return errf("%s takes no quantiles", a.Op)
	}
	return nil
}

// exprNodes counts tree nodes, for the size cap.
func exprNodes(e Expr) int {
	switch n := e.(type) {
	case *andExpr:
		total := 1
		for _, k := range n.kids {
			total += exprNodes(k)
		}
		return total
	case *orExpr:
		total := 1
		for _, k := range n.kids {
			total += exprNodes(k)
		}
		return total
	case *notExpr:
		return 1 + exprNodes(n.kid)
	}
	return 1
}

// Canonicalize returns the query in normal form: filter lists sorted and
// deduped, and/or flattened, double negation removed, quantile lists sorted.
// Two semantically identical requests canonicalize to equal Keys, so they
// share one result-cache entry. The receiver is not modified.
func (q *Query) Canonicalize() *Query {
	c := &Query{
		GroupBy: append([]Field(nil), q.GroupBy...),
		Order:   q.Order,
		Limit:   q.Limit,
	}
	if q.Where != nil {
		c.Where = q.Where.canon()
	}
	c.Aggs = make([]Agg, len(q.Aggs))
	for i, a := range q.Aggs {
		ca := Agg{Op: a.Op, Field: a.Field, K: a.K}
		if len(a.Qs) > 0 {
			ca.Qs = append([]float64(nil), a.Qs...)
			sort.Float64s(ca.Qs)
			// Dedupe: repeated quantiles add rows but not information.
			out := ca.Qs[:0]
			for i, v := range ca.Qs {
				if i == 0 || v != ca.Qs[i-1] {
					out = append(out, v)
				}
			}
			ca.Qs = out
		}
		c.Aggs[i] = ca
	}
	return c
}

// Key renders a canonicalized query as a deterministic string, suitable as
// a result-cache key (prefix it with the catalog generation token).
// Canonicalize first: Key reflects the receiver as-is.
func (q *Query) Key() string {
	b := make([]byte, 0, 128)
	b = append(b, "w="...)
	if q.Where != nil {
		b = q.Where.appendKey(b)
	} else {
		b = append(b, '*')
	}
	b = append(b, ";g="...)
	for i, f := range q.GroupBy {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, f.String()...)
	}
	b = append(b, ";a="...)
	for i, a := range q.Aggs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, a.Op.String()...)
		if a.Field != fInvalid {
			b = append(b, ':')
			b = append(b, a.Field.String()...)
		}
		if a.Op == OpTopK {
			b = append(b, ':')
			b = strconv.AppendInt(b, int64(a.K), 10)
		}
		for j, v := range a.Qs {
			if j == 0 {
				b = append(b, ':')
			} else {
				b = append(b, '~')
			}
			b = strconv.AppendFloat(b, v, 'g', -1, 64)
		}
	}
	b = append(b, ";o="...)
	if q.Order == OrderKey {
		b = append(b, "key"...)
	} else {
		b = append(b, "agg"...)
	}
	b = append(b, ";l="...)
	b = strconv.AppendInt(b, int64(q.Limit), 10)
	return string(b)
}

// NeedsOrigin reports whether executing q requires enrichment origins
// (origin-field grouping or aggregation; origin filters degrade to
// non-matching on origin-less sources instead). Servers use it to reject
// origin queries against origin-less archives up front.
func (q *Query) NeedsOrigin() bool {
	for _, f := range q.GroupBy {
		if f.needsOrigin() {
			return true
		}
	}
	for _, a := range q.Aggs {
		if a.Field.needsOrigin() {
			return true
		}
	}
	return false
}

// predicate compiles the query's filter for the archive reader: the planner
// step. The returned Predicate carries the filter tree's zone-map pushdown
// (Expr.matchBlock), so the reader skips blocks no scan of which can match
// without decompressing them. A nil Where matches everything.
type predicate struct{ where Expr }

// Predicate returns the compiled pushdown predicate for q.
func (q *Query) Predicate() archive.Predicate { return &predicate{where: q.Where} }

func (p *predicate) MatchBlock(z *archive.ZoneMap) bool {
	if p.where == nil {
		return true
	}
	return p.where.matchBlock(z)
}

func (p *predicate) Match(sc *core.Scan, o *enrich.Origin) bool {
	if p.where == nil {
		return true
	}
	return p.where.match(sc, o)
}
