package query

import (
	"errors"
	"fmt"
)

// ClientError marks a request the caller got wrong — malformed JSON, an
// unknown field, a cap violation. Servers map it to a 400-class status;
// everything else from this package is an execution failure.
type ClientError struct{ msg string }

func (e *ClientError) Error() string { return e.msg }

// errf builds a ClientError.
func errf(format string, args ...any) error {
	return &ClientError{msg: fmt.Sprintf(format, args...)}
}

// IsClientError reports whether err (or anything it wraps) is a request
// error rather than an execution failure.
func IsClientError(err error) bool {
	var ce *ClientError
	return errors.As(err, &ce)
}
