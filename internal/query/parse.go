package query

import (
	"bytes"
	"encoding/json"
	"strings"

	"github.com/synscan/synscan/internal/fingerprint"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/tools"
)

// Parse decodes the compact JSON request form into a validated Query.
//
//	{
//	  "where": {"and": [
//	    {"field": "year", "in": [2020, 2021]},
//	    {"field": "port", "in": [22, 2323]},
//	    {"not": {"field": "tool", "eq": "Mirai-like"}},
//	    {"field": "rate_pps", "min": 1000},
//	    {"field": "src", "prefix": "10.0.0.0/8"},
//	    {"field": "time", "min_ns": 0, "max_ns": 1700000000000000000}
//	  ]},
//	  "group_by": ["tool"],
//	  "aggs": [
//	    {"op": "count"},
//	    {"op": "sum", "field": "packets"},
//	    {"op": "count_distinct", "field": "src"},
//	    {"op": "approx_distinct", "field": "src"},
//	    {"op": "top_k", "field": "port", "k": 10},
//	    {"op": "quantile", "field": "rate_pps", "qs": [0.5, 0.9, 0.99]}
//	  ],
//	  "order_by": "agg",
//	  "limit": 100
//	}
//
// Filter leaves name a field plus one operator: "in"/"eq" for discrete
// fields (tool and type values are display names, case-insensitive),
// "min"/"max" for numeric ranges, "min_ns"/"max_ns" for the time range,
// "prefix" for source CIDR containment. Combinators are "and", "or", "not".
// Omitting "where" matches everything; omitting "group_by" and "aggs"
// selects raw scans (capped by "limit").
//
// Every malformed input — unknown keys, wrong value types, empty operand
// lists, nesting or size beyond the package caps — returns a ClientError
// and never panics; see FuzzParse.
func Parse(data []byte) (*Query, error) {
	var req struct {
		Where   json.RawMessage `json:"where"`
		GroupBy []string        `json:"group_by"`
		Aggs    []struct {
			Op    string    `json:"op"`
			Field string    `json:"field"`
			K     int       `json:"k"`
			Qs    []float64 `json:"qs"`
		} `json:"aggs"`
		OrderBy string `json:"order_by"`
		Limit   *int   `json:"limit"`
	}
	if err := decodeStrict(data, &req); err != nil {
		return nil, errf("invalid request: %v", err)
	}
	q := &Query{}
	if len(req.Where) > 0 && !bytes.Equal(req.Where, []byte("null")) {
		nodes := 0
		e, err := parseNode(req.Where, 1, &nodes)
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if len(req.GroupBy) > maxGroupBy {
		return nil, errf("group_by has %d fields, exceeds %d", len(req.GroupBy), maxGroupBy)
	}
	for _, name := range req.GroupBy {
		f, ok := FieldByName(name)
		if !ok {
			return nil, errf("unknown group_by field %q", name)
		}
		q.GroupBy = append(q.GroupBy, f)
	}
	if len(req.Aggs) > maxAggs {
		return nil, errf("query has %d aggregates, exceeds %d", len(req.Aggs), maxAggs)
	}
	for _, ja := range req.Aggs {
		op, ok := AggOpByName(ja.Op)
		if !ok {
			return nil, errf("unknown aggregate op %q", ja.Op)
		}
		a := Agg{Op: op, K: ja.K, Qs: ja.Qs}
		if ja.Field != "" {
			f, ok := FieldByName(ja.Field)
			if !ok {
				return nil, errf("unknown aggregate field %q", ja.Field)
			}
			a.Field = f
		}
		q.Aggs = append(q.Aggs, a)
	}
	switch req.OrderBy {
	case "", "agg":
		q.Order = OrderDefault
	case "key":
		q.Order = OrderKey
	default:
		return nil, errf("unknown order_by %q (want \"agg\" or \"key\")", req.OrderBy)
	}
	if req.Limit != nil {
		q.Limit = *req.Limit
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// decodeStrict unmarshals rejecting unknown keys and trailing garbage.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second value (or non-whitespace trailer) is a malformed request.
	if dec.More() {
		return errf("trailing data after request object")
	}
	return nil
}

// parseNode parses one filter node, enforcing depth and node-count caps
// before recursing.
func parseNode(raw json.RawMessage, depth int, nodes *int) (Expr, error) {
	if depth > maxDepth {
		return nil, errf("filter nesting depth exceeds %d", maxDepth)
	}
	*nodes++
	if *nodes > maxNodes {
		return nil, errf("filter exceeds %d nodes", maxNodes)
	}
	var n struct {
		And    []json.RawMessage `json:"and"`
		Or     []json.RawMessage `json:"or"`
		Not    json.RawMessage   `json:"not"`
		Field  string            `json:"field"`
		In     []json.RawMessage `json:"in"`
		Eq     json.RawMessage   `json:"eq"`
		Min    *float64          `json:"min"`
		Max    *float64          `json:"max"`
		MinNS  *int64            `json:"min_ns"`
		MaxNS  *int64            `json:"max_ns"`
		Prefix string            `json:"prefix"`
	}
	if err := decodeStrict(raw, &n); err != nil {
		return nil, errf("invalid filter node: %v", err)
	}
	combinators := 0
	if n.And != nil {
		combinators++
	}
	if n.Or != nil {
		combinators++
	}
	if n.Not != nil {
		combinators++
	}
	if combinators > 1 || (combinators == 1 && n.Field != "") {
		return nil, errf("filter node mixes combinators and field predicates")
	}
	switch {
	case n.And != nil:
		kids, err := parseKids(n.And, depth, nodes)
		if err != nil {
			return nil, err
		}
		return &andExpr{kids: kids}, nil
	case n.Or != nil:
		kids, err := parseKids(n.Or, depth, nodes)
		if err != nil {
			return nil, err
		}
		return &orExpr{kids: kids}, nil
	case n.Not != nil:
		kid, err := parseNode(n.Not, depth+1, nodes)
		if err != nil {
			return nil, err
		}
		return &notExpr{kid: kid}, nil
	}
	if n.Field == "" {
		return nil, errf("filter node needs a combinator or a field")
	}
	f, ok := FieldByName(n.Field)
	if !ok {
		return nil, errf("unknown filter field %q", n.Field)
	}
	e, err := parseLeaf(f, n.In, n.Eq, n.Min, n.Max, n.MinNS, n.MaxNS, n.Prefix)
	if err != nil {
		return nil, err
	}
	if err := e.validate(); err != nil {
		return nil, err
	}
	return e, nil
}

func parseKids(raws []json.RawMessage, depth int, nodes *int) ([]Expr, error) {
	if len(raws) == 0 {
		return nil, errf("and/or needs at least one operand")
	}
	if len(raws) > maxNodes {
		return nil, errf("filter exceeds %d nodes", maxNodes)
	}
	kids := make([]Expr, 0, len(raws))
	for _, raw := range raws {
		kid, err := parseNode(raw, depth+1, nodes)
		if err != nil {
			return nil, err
		}
		kids = append(kids, kid)
	}
	return kids, nil
}

// parseLeaf builds the leaf predicate for field f from whichever operator
// keys the node carried.
func parseLeaf(f Field, in []json.RawMessage, eq json.RawMessage,
	min, max *float64, minNS, maxNS *int64, prefix string) (Expr, error) {
	// Reject operators that don't belong to the field up front, so a typo'd
	// request fails loudly instead of silently ignoring a key.
	hasSet := len(in) > 0 || len(eq) > 0
	hasRange := min != nil || max != nil
	hasTime := minNS != nil || maxNS != nil
	switch f {
	case FieldSrc:
		if hasSet || hasRange || hasTime || prefix == "" {
			return nil, errf("src takes exactly a \"prefix\"")
		}
		pfx, err := inetmodel.ParsePrefix(prefix)
		if err != nil {
			return nil, errf("invalid src prefix %q: %v", prefix, err)
		}
		return &prefixExpr{pfx: pfx}, nil
	case FieldTime:
		if hasSet || hasRange || prefix != "" || !hasTime {
			return nil, errf("time takes \"min_ns\"/\"max_ns\"")
		}
		return &timeExpr{min: minNS, max: maxNS}, nil
	case FieldQualified:
		if hasRange || hasTime || prefix != "" || len(in) > 0 || len(eq) == 0 {
			return nil, errf("qualified takes exactly an \"eq\" boolean")
		}
		var want bool
		if err := json.Unmarshal(eq, &want); err != nil {
			return nil, errf("qualified: eq wants a boolean")
		}
		return &qualExpr{want: want}, nil
	case FieldTwoPhase:
		if hasRange || hasTime || prefix != "" || len(in) > 0 || len(eq) == 0 {
			return nil, errf("two_phase takes exactly an \"eq\" boolean")
		}
		var want bool
		if err := json.Unmarshal(eq, &want); err != nil {
			return nil, errf("two_phase: eq wants a boolean")
		}
		return &twoPhaseExpr{want: want}, nil
	}
	if f.numeric() {
		if hasSet || hasTime || prefix != "" || !hasRange {
			return nil, errf("%s takes \"min\"/\"max\"", f)
		}
		return &rangeExpr{field: f, min: min, max: max}, nil
	}
	// Discrete set-membership fields.
	if hasRange || hasTime || prefix != "" || !hasSet {
		return nil, errf("%s takes \"in\" or \"eq\"", f)
	}
	if len(in) > 0 && len(eq) > 0 {
		return nil, errf("%s: give \"in\" or \"eq\", not both", f)
	}
	vals := in
	if len(eq) > 0 {
		vals = []json.RawMessage{eq}
	}
	if len(vals) > maxInValues {
		return nil, errf("%s: value set exceeds %d entries", f, maxInValues)
	}
	e := &inExpr{field: f}
	for _, raw := range vals {
		if err := appendInValue(e, f, raw); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// appendInValue parses one set-membership value for field f.
func appendInValue(e *inExpr, f Field, raw json.RawMessage) error {
	switch f {
	case FieldYear, FieldPort, FieldASN:
		var v uint64
		if err := json.Unmarshal(raw, &v); err != nil {
			return errf("%s: want a non-negative integer, got %s", f, raw)
		}
		e.ints = append(e.ints, v)
	case FieldTool:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return errf("tool: want a tool name, got %s", raw)
		}
		t, ok := toolsByName[strings.ToLower(s)]
		if !ok {
			return errf("unknown tool %q", s)
		}
		e.ints = append(e.ints, uint64(t))
	case FieldType:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return errf("type: want a scanner-type name, got %s", raw)
		}
		t, ok := typesByName[strings.ToLower(s)]
		if !ok {
			return errf("unknown scanner type %q", s)
		}
		e.ints = append(e.ints, uint64(t))
	case FieldISN:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return errf("isn: want a class name, got %s", raw)
		}
		c, ok := fingerprint.ISNClassByName(strings.ToLower(s))
		if !ok {
			return errf("unknown isn class %q", s)
		}
		e.ints = append(e.ints, uint64(c))
	case FieldCountry, FieldOrg:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return errf("%s: want a string, got %s", f, raw)
		}
		e.strs = append(e.strs, s)
	default:
		return errf("field %s does not support set membership", f)
	}
	return nil
}

// toolsByName maps lower-cased display names back to Tool values.
var toolsByName = func() map[string]tools.Tool {
	m := map[string]tools.Tool{}
	for _, t := range append([]tools.Tool{tools.ToolUnknown}, tools.Tools...) {
		m[strings.ToLower(t.String())] = t
	}
	return m
}()

// typesByName maps lower-cased display names back to ScannerType values.
var typesByName = func() map[string]inetmodel.ScannerType {
	m := map[string]inetmodel.ScannerType{}
	for _, t := range inetmodel.ScannerTypes {
		m[strings.ToLower(t.String())] = t
	}
	return m
}()
