package query

import (
	"encoding/json"
	"testing"

	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/tools"
)

// TestMarshalRoundTrip: every builder-constructed query must survive
// MarshalJSON → Parse with its canonical Key intact — the property the
// remote client depends on to POST local queries at /v1/query.
func TestMarshalRoundTrip(t *testing.T) {
	pfx, err := inetmodel.ParsePrefix("10.0.0.0/24")
	if err != nil {
		t.Fatal(err)
	}
	min, max := 100.0, 5000.0
	cases := []struct {
		name  string
		build func() (*Query, error)
	}{
		{"select-all", func() (*Query, error) { return NewBuilder().Build() }},
		{"select-filtered", func() (*Query, error) {
			return NewBuilder().Years(2020, 2021).Ports(443, 22).Limit(50).Build()
		}},
		{"count", func() (*Query, error) { return NewBuilder().Count().Build() }},
		{"grouped-topk", func() (*Query, error) {
			return NewBuilder().Qualified(true).GroupBy(FieldTool).
				Count().TopK(FieldPort, 10).Build()
		}},
		{"quantiles", func() (*Query, error) {
			return NewBuilder().Quantiles(FieldRate, 0.5, 0.9, 0.99).Build()
		}},
		{"tools-by-name", func() (*Query, error) {
			return NewBuilder().Tools(tools.ToolZMap, tools.ToolMirai).Count().Build()
		}},
		{"combinators", func() (*Query, error) {
			return NewBuilder().
				Where(Or(YearIn(2020), And(PortAny(23), Not(Qualified(true))))).
				Count().Build()
		}},
		{"src-prefix", func() (*Query, error) {
			return NewBuilder().Where(SrcIn(pfx)).Count().Build()
		}},
		{"time-range", func() (*Query, error) {
			return NewBuilder().Where(TimeBetween(1e15, 2e18)).Count().Build()
		}},
		{"num-range", func() (*Query, error) {
			return NewBuilder().Where(NumRange(FieldRate, &min, &max)).Count().Build()
		}},
		{"order-key", func() (*Query, error) {
			return NewBuilder().GroupBy(FieldYear).Count().OrderByKey().Build()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			wire, err := json.Marshal(q)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			back, err := Parse(wire)
			if err != nil {
				t.Fatalf("parse of marshaled form %s: %v", wire, err)
			}
			if got, want := back.Key(), q.Key(); got != want {
				t.Fatalf("round trip changed the query:\nwire %s\n got %s\nwant %s",
					wire, got, want)
			}
		})
	}
}
