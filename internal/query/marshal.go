package query

import (
	"encoding/json"

	"github.com/synscan/synscan/internal/fingerprint"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/tools"
)

// MarshalJSON renders the query in the compact request form Parse accepts —
// the /v1/query wire format — so a Query built with the fluent Builder can
// be POSTed to a remote synserve (the facade's retrying Client does
// exactly that) and round-trips: Parse(MarshalJSON(q)) has q's Key.
func (q *Query) MarshalJSON() ([]byte, error) {
	var req struct {
		Where   json.RawMessage `json:"where,omitempty"`
		GroupBy []string        `json:"group_by,omitempty"`
		Aggs    []wireAgg       `json:"aggs,omitempty"`
		OrderBy string          `json:"order_by,omitempty"`
		Limit   int             `json:"limit,omitempty"`
	}
	if q.Where != nil {
		raw, err := marshalExpr(q.Where)
		if err != nil {
			return nil, err
		}
		req.Where = raw
	}
	for _, f := range q.GroupBy {
		req.GroupBy = append(req.GroupBy, f.String())
	}
	for _, a := range q.Aggs {
		w := wireAgg{Op: a.Op.String(), K: a.K, Qs: a.Qs}
		if a.Op != OpCount {
			w.Field = a.Field.String()
		}
		req.Aggs = append(req.Aggs, w)
	}
	if q.Order == OrderKey {
		req.OrderBy = "key"
	}
	req.Limit = q.Limit
	return json.Marshal(&req)
}

type wireAgg struct {
	Op    string    `json:"op"`
	Field string    `json:"field,omitempty"`
	K     int       `json:"k,omitempty"`
	Qs    []float64 `json:"qs,omitempty"`
}

// marshalExpr renders one filter node in the wire form parseNode accepts.
func marshalExpr(e Expr) (json.RawMessage, error) {
	switch n := e.(type) {
	case *andExpr:
		return marshalKids("and", n.kids)
	case *orExpr:
		return marshalKids("or", n.kids)
	case *notExpr:
		kid, err := marshalExpr(n.kid)
		if err != nil {
			return nil, err
		}
		return json.Marshal(map[string]json.RawMessage{"not": kid})
	case *inExpr:
		return marshalIn(n)
	case *qualExpr:
		return json.Marshal(map[string]any{"field": FieldQualified.String(), "eq": n.want})
	case *twoPhaseExpr:
		return json.Marshal(map[string]any{"field": FieldTwoPhase.String(), "eq": n.want})
	case *prefixExpr:
		return json.Marshal(map[string]any{"field": FieldSrc.String(), "prefix": n.pfx.String()})
	case *timeExpr:
		m := map[string]any{"field": FieldTime.String()}
		if n.min != nil {
			m["min_ns"] = *n.min
		}
		if n.max != nil {
			m["max_ns"] = *n.max
		}
		return json.Marshal(m)
	case *rangeExpr:
		m := map[string]any{"field": n.field.String()}
		if n.min != nil {
			m["min"] = *n.min
		}
		if n.max != nil {
			m["max"] = *n.max
		}
		return json.Marshal(m)
	}
	return nil, errf("filter node %T has no wire form", e)
}

func marshalKids(op string, kids []Expr) (json.RawMessage, error) {
	raws := make([]json.RawMessage, 0, len(kids))
	for _, k := range kids {
		raw, err := marshalExpr(k)
		if err != nil {
			return nil, err
		}
		raws = append(raws, raw)
	}
	return json.Marshal(map[string][]json.RawMessage{op: raws})
}

// marshalIn renders a set-membership leaf, converting enum-coded members
// back to the display names the parser accepts.
func marshalIn(e *inExpr) (json.RawMessage, error) {
	vals := make([]any, 0, len(e.ints)+len(e.strs))
	switch e.field {
	case FieldYear, FieldPort, FieldASN:
		for _, v := range e.ints {
			vals = append(vals, v)
		}
	case FieldTool:
		for _, v := range e.ints {
			vals = append(vals, tools.Tool(v).String())
		}
	case FieldType:
		for _, v := range e.ints {
			vals = append(vals, inetmodel.ScannerType(v).String())
		}
	case FieldISN:
		for _, v := range e.ints {
			vals = append(vals, fingerprint.ISNClass(v).String())
		}
	case FieldCountry, FieldOrg:
		for _, s := range e.strs {
			vals = append(vals, s)
		}
	default:
		return nil, errf("field %s has no set-membership wire form", e.field)
	}
	return json.Marshal(map[string]any{"field": e.field.String(), "in": vals})
}
