package query

import (
	"sort"
	"strconv"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/sketch"
	"github.com/synscan/synscan/internal/stats"
)

// defaultSelectLimit caps select-mode responses when the request names none,
// matching the legacy /v1/scans default.
const defaultSelectLimit = 1000

// topKCapacity sizes the Space-Saving tracker for a requested k: generously
// over-provisioned so per-segment partials stay unsaturated (and therefore
// merge exactly) on realistic cardinalities, while still bounded.
func topKCapacity(k int) int {
	c := 8 * k
	if c < 4096 {
		c = 4096
	}
	if c > maxTopK {
		c = maxTopK
	}
	return c
}

// Executor streams scans into per-group aggregate state: one Executor per
// partial (a static archive, one segment-store view), merged in stream order
// and finished once. Aggregation happens during the scan — no scan list is
// ever materialized; per-group state is counters, a distinct set or sketch,
// a bounded heavy-hitter tracker, or a float64 quantile sample.
//
// Not safe for concurrent use; run one Executor per goroutine and Merge.
type Executor struct {
	q   *Query
	err error

	// Select mode.
	selLimit int
	scans    []ScanRec

	// Aggregate mode.
	matched uint64
	groups  map[string]*group
	order   []string // group keys in first-seen stream order
}

// group is one group-by bucket's accumulated state.
type group struct {
	coords []coord
	aggs   []aggState
}

// coord is one group-key coordinate: num for integer-keyed fields, str for
// country/org.
type coord struct {
	num uint64
	str string
}

type aggState struct {
	count   uint64
	sumI    uint64
	sumF    float64
	set     map[uint64]struct{}
	hll     *sketch.HyperLogLog
	topk    *sketch.TopK
	samples []float64
}

// ScanRec is one select-mode result: the scan and, when the source carries
// enrichment, its origin.
type ScanRec struct {
	Scan   *core.Scan
	Origin *enrich.Origin
}

// NewExecutor builds a partial executor for a validated query.
func NewExecutor(q *Query) *Executor {
	e := &Executor{q: q}
	if q.SelectMode() {
		e.selLimit = q.Limit
		if e.selLimit == 0 {
			e.selLimit = defaultSelectLimit
		}
	} else {
		e.groups = make(map[string]*group)
	}
	return e
}

// Observe folds one matching scan into the partial state. The caller has
// already applied the query's filter (the reader's predicate pushdown);
// Observe only aggregates. o is nil when the source carries no origins.
func (e *Executor) Observe(sc *core.Scan, o *enrich.Origin) {
	if e.err != nil {
		return
	}
	e.matched++
	if e.q.SelectMode() {
		if len(e.scans) < e.selLimit {
			var op *enrich.Origin
			if o != nil {
				cp := *o
				op = &cp
			}
			e.scans = append(e.scans, ScanRec{Scan: sc, Origin: op})
		}
		return
	}
	// Group coordinates; FieldPort explodes one row per targeted port, and
	// packet sums are then split evenly across the port rows (integer
	// division, matching the exact per-port packet tables).
	portSplit := 1
	var rows [][]coord
	if len(e.q.GroupBy) == 0 {
		rows = globalRow
	} else {
		rows = e.coordRows(sc, o)
		if rows == nil {
			return // an origin group-by over an origin-less scan
		}
		for _, f := range e.q.GroupBy {
			if f == FieldPort {
				portSplit = len(sc.Ports)
			}
		}
	}
	for _, coords := range rows {
		g, ok := e.groups[coordKey(coords)]
		if !ok {
			if len(e.groups) >= maxGroups {
				e.err = errf("query exceeds %d groups; add a filter or coarser grouping", maxGroups)
				return
			}
			g = &group{coords: coords, aggs: make([]aggState, len(e.q.Aggs))}
			key := coordKey(coords)
			e.groups[key] = g
			e.order = append(e.order, key)
		}
		for i := range e.q.Aggs {
			observeAgg(&e.q.Aggs[i], &g.aggs[i], sc, o, portSplit)
		}
	}
}

// globalRow is the single empty-key row of an ungrouped aggregate query.
var globalRow = [][]coord{{}}

// coordRows builds the group-key rows for one scan: the cross product of
// each group field's coordinates (only FieldPort yields more than one).
// nil means the scan has no coordinate for some field and contributes no row.
func (e *Executor) coordRows(sc *core.Scan, o *enrich.Origin) [][]coord {
	base := make([]coord, len(e.q.GroupBy))
	portAt := -1
	for i, f := range e.q.GroupBy {
		switch f {
		case FieldPort:
			portAt = i
			if len(sc.Ports) == 0 {
				return nil
			}
		case FieldYear:
			base[i] = coord{num: uint64(uint16(yearOf(sc.Start)))}
		case FieldTool:
			base[i] = coord{num: uint64(sc.Tool)}
		case FieldQualified:
			if sc.Qualified {
				base[i] = coord{num: 1}
			}
		case FieldTwoPhase:
			if sc.TwoPhase {
				base[i] = coord{num: 1}
			}
		case FieldISN:
			base[i] = coord{num: uint64(sc.ISN)}
		case FieldCountry:
			if o == nil {
				return nil
			}
			base[i] = coord{str: o.Country}
		case FieldASN:
			if o == nil {
				return nil
			}
			base[i] = coord{num: uint64(o.ASN)}
		case FieldType:
			if o == nil {
				return nil
			}
			base[i] = coord{num: uint64(o.Type)}
		case FieldOrg:
			if o == nil {
				return nil
			}
			base[i] = coord{str: o.OrgName}
		}
	}
	if portAt < 0 {
		return [][]coord{base}
	}
	rows := make([][]coord, 0, len(sc.Ports))
	for _, p := range sc.Ports {
		row := make([]coord, len(base))
		copy(row, base)
		row[portAt] = coord{num: uint64(p)}
		rows = append(rows, row)
	}
	return rows
}

// coordKey encodes coordinates as a map key.
func coordKey(coords []coord) string {
	b := make([]byte, 0, 16)
	for _, c := range coords {
		b = strconv.AppendUint(b, c.num, 16)
		b = append(b, '\x00')
		b = append(b, c.str...)
		b = append(b, '\x00')
	}
	return string(b)
}

// observeAgg folds one scan row into one aggregate's state.
func observeAgg(a *Agg, st *aggState, sc *core.Scan, o *enrich.Origin, portSplit int) {
	switch a.Op {
	case OpCount:
		st.count++
	case OpSum:
		if a.Field.integerValued() {
			st.sumI += intValue(a.Field, sc, portSplit)
		} else {
			st.sumF += numValue(a.Field, sc, portSplit)
		}
	case OpCountDistinct:
		if st.set == nil {
			st.set = make(map[uint64]struct{})
		}
		for _, k := range keyValues(a.Field, sc, o, nil) {
			st.set[k] = struct{}{}
		}
	case OpApproxDistinct:
		if st.hll == nil {
			st.hll = sketch.NewHyperLogLog()
		}
		for _, k := range keyValues(a.Field, sc, o, nil) {
			st.hll.Add(k)
		}
	case OpTopK:
		if st.topk == nil {
			st.topk = sketch.NewTopK(topKCapacity(a.K))
		}
		for _, k := range keyValues(a.Field, sc, o, nil) {
			st.topk.Add(k)
		}
	case OpQuantile:
		st.samples = append(st.samples, numValue(a.Field, sc, portSplit))
	}
}

// Merge folds another partial (built from the same Query) into e, in stream
// order: counts and sums add, distinct sets union, HLL registers max, top-k
// trackers merge under the Space-Saving bound, quantile samples concatenate.
// The other executor must not be used afterwards.
func (e *Executor) Merge(o *Executor) {
	if e.err != nil {
		return
	}
	if o.err != nil {
		e.err = o.err
		return
	}
	e.matched += o.matched
	if e.q.SelectMode() {
		room := e.selLimit - len(e.scans)
		if room > len(o.scans) {
			room = len(o.scans)
		}
		if room > 0 {
			e.scans = append(e.scans, o.scans[:room]...)
		}
		return
	}
	for _, key := range o.order {
		og := o.groups[key]
		g, ok := e.groups[key]
		if !ok {
			if len(e.groups) >= maxGroups {
				e.err = errf("query exceeds %d groups; add a filter or coarser grouping", maxGroups)
				return
			}
			e.groups[key] = og
			e.order = append(e.order, key)
			continue
		}
		for i := range e.q.Aggs {
			mergeAgg(&e.q.Aggs[i], &g.aggs[i], &og.aggs[i])
		}
	}
}

func mergeAgg(a *Agg, dst, src *aggState) {
	switch a.Op {
	case OpCount:
		dst.count += src.count
	case OpSum:
		dst.sumI += src.sumI
		dst.sumF += src.sumF
	case OpCountDistinct:
		if dst.set == nil {
			dst.set = src.set
		} else {
			for k := range src.set {
				dst.set[k] = struct{}{}
			}
		}
	case OpApproxDistinct:
		if dst.hll == nil {
			dst.hll = src.hll
		} else if src.hll != nil {
			dst.hll.Merge(src.hll)
		}
	case OpTopK:
		if dst.topk == nil {
			dst.topk = src.topk
		} else if src.topk != nil {
			dst.topk.Merge(src.topk)
		}
	case OpQuantile:
		dst.samples = append(dst.samples, src.samples...)
	}
}

// KeyVal is one rendered group-key coordinate.
type KeyVal struct {
	// Field is the group-by dimension.
	Field Field `json:"field"`
	// Num is the raw integer value (0 for string-keyed fields).
	Num uint64 `json:"num"`
	// Str is the display form.
	Str string `json:"str"`
}

// TopItem is one ranked heavy hitter.
type TopItem struct {
	// Key is the display form of the item.
	Key string `json:"key"`
	// Num is the raw integer value.
	Num uint64 `json:"num"`
	// Count is the estimated frequency (an upper bound).
	Count uint64 `json:"count"`
	// Err bounds the overestimate: true count >= Count - Err.
	Err uint64 `json:"err,omitempty"`
}

// AggValue is one finished aggregate of one row.
type AggValue struct {
	// Op and Field echo the request.
	Op    AggOp `json:"-"`
	Field Field `json:"-"`
	// Count holds count / count_distinct / approx_distinct results.
	Count uint64 `json:"count,omitempty"`
	// Int holds exact integer sums; Float holds float sums.
	Int   uint64  `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
	IsInt bool    `json:"-"`
	// Top holds the top_k ranking.
	Top []TopItem `json:"top,omitempty"`
	// Qs and Vals hold the requested quantiles and their values, aligned.
	Qs   []float64 `json:"qs,omitempty"`
	Vals []float64 `json:"vals,omitempty"`
}

// scalar returns the value rows sort by under OrderDefault.
func (v *AggValue) scalar() float64 {
	switch v.Op {
	case OpSum:
		if v.IsInt {
			return float64(v.Int)
		}
		return v.Float
	case OpQuantile:
		if len(v.Vals) > 0 {
			return v.Vals[0]
		}
		return 0
	case OpTopK:
		var t uint64
		for _, it := range v.Top {
			t += it.Count
		}
		return float64(t)
	default:
		return float64(v.Count)
	}
}

// Row is one result row of an aggregate query.
type Row struct {
	// Key holds one entry per group_by field (empty for the global group).
	Key []KeyVal `json:"key"`
	// Aggs holds one entry per requested aggregate, in request order.
	Aggs []AggValue `json:"aggs"`
}

// Result is a finished query.
type Result struct {
	// Matched counts scans that passed the filter (across all partials,
	// before any limit).
	Matched uint64
	// Scans holds select-mode rows, up to the limit.
	Scans []ScanRec
	// Truncated reports select-mode row loss to the limit.
	Truncated bool
	// Rows holds aggregate-mode rows, sorted, up to the limit.
	Rows []Row
	// TotalRows counts groups before the limit.
	TotalRows int
}

// Finish renders the accumulated state. The executor must not be used
// afterwards.
func (e *Executor) Finish() (*Result, error) {
	if e.err != nil {
		return nil, e.err
	}
	res := &Result{Matched: e.matched}
	if e.q.SelectMode() {
		res.Scans = e.scans
		res.Truncated = uint64(len(e.scans)) < e.matched
		return res, nil
	}
	res.TotalRows = len(e.order)
	res.Rows = make([]Row, 0, len(e.order))
	for _, key := range e.order {
		g := e.groups[key]
		row := Row{Key: make([]KeyVal, len(e.q.GroupBy)), Aggs: make([]AggValue, len(e.q.Aggs))}
		for i, f := range e.q.GroupBy {
			row.Key[i] = renderCoord(f, g.coords[i])
		}
		for i := range e.q.Aggs {
			row.Aggs[i] = finishAgg(&e.q.Aggs[i], &g.aggs[i])
		}
		res.Rows = append(res.Rows, row)
	}
	e.sortRows(res.Rows)
	if e.q.Limit > 0 && len(res.Rows) > e.q.Limit {
		res.Rows = res.Rows[:e.q.Limit]
	}
	return res, nil
}

func renderCoord(f Field, c coord) KeyVal {
	kv := KeyVal{Field: f, Num: c.num, Str: c.str}
	switch f {
	case FieldCountry, FieldOrg:
		// Str already holds the value.
	case FieldQualified, FieldTwoPhase:
		if c.num != 0 {
			kv.Str = "true"
		} else {
			kv.Str = "false"
		}
	default:
		kv.Str = renderKey(f, c.num)
	}
	return kv
}

func finishAgg(a *Agg, st *aggState) AggValue {
	v := AggValue{Op: a.Op, Field: a.Field}
	switch a.Op {
	case OpCount:
		v.Count = st.count
	case OpSum:
		if a.Field.integerValued() {
			v.Int = st.sumI
			v.IsInt = true
		} else {
			v.Float = st.sumF
		}
	case OpCountDistinct:
		v.Count = uint64(len(st.set))
	case OpApproxDistinct:
		if st.hll != nil {
			v.Count = st.hll.Estimate()
		}
	case OpTopK:
		if st.topk != nil {
			for _, it := range st.topk.Top(a.K) {
				v.Top = append(v.Top, TopItem{
					Key: renderKey(a.Field, it.Key), Num: it.Key,
					Count: it.Count, Err: it.Err,
				})
			}
		}
	case OpQuantile:
		v.Qs = a.Qs
		v.Vals = make([]float64, len(a.Qs))
		// One sort serves every requested quantile; the shared stats
		// interpolation keeps the engine bit-identical with the batch
		// analyses.
		sort.Float64s(st.samples)
		for i, q := range a.Qs {
			v.Vals[i] = stats.QuantileSorted(st.samples, q)
		}
	}
	return v
}

func (e *Executor) sortRows(rows []Row) {
	if e.q.Order == OrderKey || len(e.q.Aggs) == 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			return compareKeys(rows[i].Key, rows[j].Key) < 0
		})
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i].Aggs[0].scalar(), rows[j].Aggs[0].scalar()
		if a != b {
			return a > b
		}
		return compareKeys(rows[i].Key, rows[j].Key) < 0
	})
}

// compareKeys orders group keys: numeric fields by value, string fields
// lexically, field by field.
func compareKeys(a, b []KeyVal) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		av, bv := a[i], b[i]
		switch av.Field {
		case FieldCountry, FieldOrg:
			if av.Str != bv.Str {
				if av.Str < bv.Str {
					return -1
				}
				return 1
			}
		default:
			if av.Num != bv.Num {
				if av.Num < bv.Num {
					return -1
				}
				return 1
			}
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}
