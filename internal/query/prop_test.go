package query

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/fingerprint"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

// randQuery builds a random aggregate (or select) query over the genScans
// value distribution. Ordering is always by key: float-sum ulp drift between
// execution plans must never be able to flip a row order the comparison
// depends on.
func randQuery(r *rng.Rand, withOrigins bool) *Query {
	b := NewBuilder().OrderByKey()
	// Random filter: 0-3 conjoined clauses, possibly wrapped in not/or.
	nClauses := int(r.Uint32() % 4)
	for i := 0; i < nClauses; i++ {
		var e Expr
		switch r.Uint32() % 9 {
		case 0:
			e = YearIn(2015+int(r.Uint32()%10), 2015+int(r.Uint32()%10))
		case 1:
			e = PortAny(uint16(r.Uint32()%3000), uint16(r.Uint32()%3000))
		case 2:
			e = ToolIn(tools.Tool(r.Uint32()%7), tools.Tool(r.Uint32()%7))
		case 3:
			e = Qualified(r.Uint32()%2 == 0)
		case 4:
			e = RateBetween(float64(r.Uint32()%2000), 0)
		case 5:
			base := uint32(r.Uint32()) &^ 0xFFFFFF // keep a /8
			e = SrcIn(inetmodel.Prefix{Base: base, Bits: 8})
		case 6:
			e = TwoPhaseIs(r.Uint32()%2 == 0)
		case 7:
			e = ISNIn(fingerprint.ISNClass(r.Uint32()%4), fingerprint.ISNClass(r.Uint32()%4))
		default:
			lo := time.Date(2015+int(r.Uint32()%10), time.January, 1, 0, 0, 0, 0, time.UTC).UnixNano()
			e = TimeBetween(lo, lo+int64(200*24)*int64(time.Hour))
		}
		if r.Uint32()%4 == 0 {
			e = Not(e)
		}
		b.Where(e)
	}
	// Random grouping.
	groupPool := []Field{FieldYear, FieldTool, FieldPort, FieldQualified,
		FieldTwoPhase, FieldISN}
	if withOrigins {
		groupPool = append(groupPool, FieldType, FieldCountry)
	}
	nGroup := int(r.Uint32() % 3)
	for i := 0; i < nGroup && i < len(groupPool); i++ {
		f := groupPool[r.Uint32()%uint32(len(groupPool))]
		dup := false
		for _, g := range b.groupBy {
			if g == f {
				dup = true
			}
		}
		if !dup {
			b.GroupBy(f)
		}
	}
	// Aggregates: every operator, so each random archive exercises them all.
	b.Count().
		Sum(FieldPackets).
		Sum(FieldRate).
		Sum(FieldTwoPhase).
		Sum(FieldHandshakePackets).
		Sum(FieldPayloadBytes).
		CountDistinct(FieldSrc).
		ApproxDistinct(FieldSrc).
		TopK(FieldISN, 4).
		TopK(FieldPort, 8).
		Quantiles(FieldRate, 0.5, 0.9, 0.99)
	q, err := b.Build()
	if err != nil {
		panic(err) // generator bug, not an input property
	}
	return q
}

// materializedRun is the reference plan: read EVERY scan (no pushdown, no
// predicate), buffer the matching ones, then aggregate the buffered list.
func materializedRun(t *testing.T, q *Query, rd *archive.Reader) *Result {
	t.Helper()
	var scans []*core.Scan
	var origins []enrich.Origin
	err := rd.Scans(archive.Filter{}, func(sc *core.Scan, o enrich.Origin) {
		scans = append(scans, sc)
		origins = append(origins, o)
	})
	if err != nil {
		t.Fatal(err)
	}
	src := SliceSource{Scans: scans}
	if rd.HasOrigins() {
		src.Origins = origins
	}
	res, err := Run(context.Background(), q, src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPropPushdownEqualsMaterialized: for randomized archives and randomized
// queries, per-block pushdown aggregation equals the materialize-then-
// aggregate reference — with and without origins, in archived order and in
// time-sorted order (which makes the zone maps actually prune).
func TestPropPushdownEqualsMaterialized(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			r := rng.New(uint64(1000 + trial))
			withOrigins := trial%2 == 0
			scans, origins := genScans(1500+int(r.Uint32()%1500), uint64(trial))
			if trial%3 == 0 {
				sort.Slice(scans, func(i, j int) bool { return scans[i].Start < scans[j].Start })
			}
			data := writeArc(t, scans, origins, withOrigins)
			rd := openArc(t, data)
			for qi := 0; qi < 6; qi++ {
				q := randQuery(r, withOrigins)
				got, err := Run(context.Background(), q, ReaderSource{R: rd})
				if err != nil {
					t.Fatal(err)
				}
				want := materializedRun(t, q, rd)
				sameResults(t, got, want)
			}
		})
	}
}

// TestPropDegradedReads: with a corrupted block and skip-corrupt readers,
// pushdown and materialized plans still agree — both lose exactly the
// damaged block's scans.
func TestPropDegradedReads(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			r := rng.New(uint64(2000 + trial))
			withOrigins := trial%2 == 0
			scans, origins := genScans(2000, uint64(100+trial))
			data := writeArc(t, scans, origins, withOrigins)

			// Corrupt one block's compressed payload (past the CRC prefix, so
			// the checksum catches it).
			probe := openArc(t, data)
			blocks := probe.Blocks()
			z := blocks[int(r.Uint32())%len(blocks)]
			off := int(z.Offset) + 4 + int(z.CompressedLen)/2
			data[off] ^= 0xFF

			rd := openArc(t, data, archive.WithSkipCorrupt())
			for qi := 0; qi < 4; qi++ {
				q := randQuery(r, withOrigins)
				got, err := Run(context.Background(), q, ReaderSource{R: rd})
				if err != nil {
					t.Fatal(err)
				}
				want := materializedRun(t, q, rd)
				sameResults(t, got, want)
			}
			if rd.CorruptBlocks() == 0 {
				t.Fatal("corruption was never observed")
			}
		})
	}
}

// TestPropAcrossCompaction: aggregates over a live segment store are
// unchanged by compaction — the merged segment set is a different partial
// decomposition of the same scan stream.
func TestPropAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	sw, err := archive.OpenSegmentDir(dir, archive.SegmentConfig{
		TelescopeSize: 4096, Origins: true, BlockBytes: 4 << 10,
		MaxSegmentScans: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	scans, origins := genScans(2400, 42)
	for i, sc := range scans {
		if err := sw.AddWithOrigin(sc, origins[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Seal(); err != nil {
		t.Fatal(err)
	}

	cat, err := archive.OpenCatalog(dir, archive.CatalogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	defer sw.Close()

	r := rng.New(7)
	queries := make([]*Query, 5)
	for i := range queries {
		queries[i] = randQuery(r, true)
	}
	runAll := func() []*Result {
		v := cat.View()
		defer v.Release()
		if v.Len() == 0 {
			t.Fatal("no segments visible")
		}
		out := make([]*Result, len(queries))
		for i, q := range queries {
			res, err := Run(context.Background(), q, ViewSource{V: v})
			if err != nil {
				t.Fatal(err)
			}
			out[i] = res
		}
		return out
	}

	before := runAll()
	comp := archive.NewCompactor(sw, archive.CompactorConfig{MinRun: 2})
	mergedTotal := 0
	for {
		merged, err := comp.CompactOnce()
		if err != nil {
			t.Fatal(err)
		}
		if merged == 0 {
			break
		}
		mergedTotal += merged
	}
	if mergedTotal == 0 {
		t.Fatal("compaction merged nothing; store config defeats the test")
	}
	if _, err := cat.Refresh(); err != nil {
		t.Fatal(err)
	}
	after := runAll()
	for i := range queries {
		sameResults(t, after[i], before[i])
	}
}
