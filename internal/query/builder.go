package query

import (
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/tools"
)

// Builder assembles a Query fluently. Filter methods conjoin (AND); use
// Where for arbitrary expressions (Or/Not). Build canonicalizes and
// validates, so a Builder-produced query is ready for Run and for cache
// keying.
//
//	q, err := query.NewBuilder().
//	        Years(2020, 2021).
//	        Ports(22, 2323).
//	        Qualified(true).
//	        GroupBy(query.FieldTool).
//	        Count().
//	        Sum(query.FieldPackets).
//	        TopK(query.FieldPort, 10).
//	        Build()
type Builder struct {
	where   []Expr
	groupBy []Field
	aggs    []Agg
	order   OrderBy
	limit   int
}

// NewBuilder starts an empty query (matches everything, selects scans).
func NewBuilder() *Builder { return &Builder{} }

// Years restricts to scans starting in the given UTC calendar years.
func (b *Builder) Years(years ...int) *Builder { return b.Where(YearIn(years...)) }

// Tools restricts to the given tool attributions.
func (b *Builder) Tools(ts ...tools.Tool) *Builder { return b.Where(ToolIn(ts...)) }

// Ports restricts to scans targeting at least one of the given ports.
func (b *Builder) Ports(ports ...uint16) *Builder { return b.Where(PortAny(ports...)) }

// SrcPrefix restricts to sources inside the prefix.
func (b *Builder) SrcPrefix(pfx inetmodel.Prefix) *Builder { return b.Where(SrcIn(pfx)) }

// TimeRange restricts to scans starting in [minNS, maxNS].
func (b *Builder) TimeRange(minNS, maxNS int64) *Builder {
	return b.Where(TimeBetween(minNS, maxNS))
}

// RateRange bounds the extrapolated rate (pps); a non-positive side is open.
func (b *Builder) RateRange(min, max float64) *Builder {
	return b.Where(RateBetween(min, max))
}

// Qualified restricts to scans whose campaign flag equals want.
func (b *Builder) Qualified(want bool) *Builder { return b.Where(Qualified(want)) }

// Where conjoins an arbitrary filter expression.
func (b *Builder) Where(e Expr) *Builder {
	b.where = append(b.where, e)
	return b
}

// GroupBy adds grouping dimensions.
func (b *Builder) GroupBy(fields ...Field) *Builder {
	b.groupBy = append(b.groupBy, fields...)
	return b
}

// Count adds a scan-count aggregate.
func (b *Builder) Count() *Builder {
	b.aggs = append(b.aggs, Agg{Op: OpCount})
	return b
}

// Sum adds an exact sum over a numeric field.
func (b *Builder) Sum(f Field) *Builder {
	b.aggs = append(b.aggs, Agg{Op: OpSum, Field: f})
	return b
}

// CountDistinct adds an exact distinct count over a field.
func (b *Builder) CountDistinct(f Field) *Builder {
	b.aggs = append(b.aggs, Agg{Op: OpCountDistinct, Field: f})
	return b
}

// ApproxDistinct adds a HyperLogLog distinct estimate over a field.
func (b *Builder) ApproxDistinct(f Field) *Builder {
	b.aggs = append(b.aggs, Agg{Op: OpApproxDistinct, Field: f})
	return b
}

// TopK adds a heavy-hitter ranking of the k most frequent values of f.
func (b *Builder) TopK(f Field, k int) *Builder {
	b.aggs = append(b.aggs, Agg{Op: OpTopK, Field: f, K: k})
	return b
}

// Quantiles adds quantile estimates of a numeric field.
func (b *Builder) Quantiles(f Field, qs ...float64) *Builder {
	b.aggs = append(b.aggs, Agg{Op: OpQuantile, Field: f, Qs: qs})
	return b
}

// OrderByKey sorts result rows by group key instead of the first aggregate.
func (b *Builder) OrderByKey() *Builder {
	b.order = OrderKey
	return b
}

// Limit caps returned rows (select mode: scans; aggregate mode: groups).
func (b *Builder) Limit(n int) *Builder {
	b.limit = n
	return b
}

// Build canonicalizes and validates the assembled query.
func (b *Builder) Build() (*Query, error) {
	q := &Query{GroupBy: b.groupBy, Aggs: b.aggs, Order: b.order, Limit: b.limit}
	switch len(b.where) {
	case 0:
	case 1:
		q.Where = b.where[0]
	default:
		q.Where = And(b.where...)
	}
	q = q.Canonicalize()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}
