package query

import (
	"context"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
)

// Source is anything the engine can execute a query against under predicate
// pushdown: it streams every scan matching p to emit, in its own stable
// order, with the scan's origin when it has one (nil otherwise).
type Source interface {
	Query(ctx context.Context, p archive.Predicate, emit func(sc *core.Scan, o *enrich.Origin)) error
}

// ReaderSource adapts an archive reader: the predicate's zone-map pushdown
// skips blocks without decompressing them, and scans stream in file order.
type ReaderSource struct{ R *archive.Reader }

// Query implements Source.
func (s ReaderSource) Query(ctx context.Context, p archive.Predicate, emit func(sc *core.Scan, o *enrich.Origin)) error {
	hasOrigins := s.R.HasOrigins()
	return s.R.Query(ctx, p, func(sc *core.Scan, o enrich.Origin) {
		var op *enrich.Origin
		if hasOrigins {
			oc := o
			op = &oc
		}
		emit(sc, op)
	})
}

// ViewSource adapts a catalog view: each pinned segment streams in manifest
// order, so the concatenation preserves the store's emit order.
type ViewSource struct{ V *archive.CatalogView }

// Query implements Source.
func (s ViewSource) Query(ctx context.Context, p archive.Predicate, emit func(sc *core.Scan, o *enrich.Origin)) error {
	for i := 0; i < s.V.Len(); i++ {
		if err := (ReaderSource{R: s.V.Reader(i)}).Query(ctx, p, emit); err != nil {
			return err
		}
	}
	return nil
}

// SliceSource adapts in-memory scans (the simulator's per-year collections):
// no blocks to prune, the predicate filters scan by scan. Origins, when
// present, must parallel Scans.
type SliceSource struct {
	Scans   []*core.Scan
	Origins []enrich.Origin
}

// Query implements Source.
func (s SliceSource) Query(ctx context.Context, p archive.Predicate, emit func(sc *core.Scan, o *enrich.Origin)) error {
	for i, sc := range s.Scans {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		var op *enrich.Origin
		if s.Origins != nil {
			op = &s.Origins[i]
		}
		if !p.Match(sc, op) {
			continue
		}
		emit(sc, op)
	}
	return nil
}

// Run executes q against the sources in order: one partial Executor per
// source, folded left-to-right, so results are deterministic in source and
// stream order. The query is validated first; aggregation streams — no
// matching-scan list is materialized.
func Run(ctx context.Context, q *Query, srcs ...Source) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	p := q.Predicate()
	var total *Executor
	for _, src := range srcs {
		part := NewExecutor(q)
		if err := src.Query(ctx, p, part.Observe); err != nil {
			return nil, err
		}
		if total == nil {
			total = part
		} else {
			total.Merge(part)
		}
	}
	if total == nil {
		total = NewExecutor(q)
	}
	return total.Finish()
}
