package query

import (
	"strings"
	"testing"
)

// FuzzParse hardens the request parser: arbitrary bytes must either produce a
// valid query or a ClientError (a 400 to the HTTP layer) — never a panic, a
// non-client error, or an unbounded allocation. Valid outputs must survive
// Canonicalize/Key/Validate, the path every served request takes.
func FuzzParse(f *testing.F) {
	// A fully-featured valid request.
	f.Add([]byte(`{
		"where": {"and": [
			{"field": "year", "in": [2020, 2021]},
			{"field": "port", "in": [22, 2323]},
			{"not": {"field": "tool", "eq": "Mirai-like"}},
			{"or": [
				{"field": "rate_pps", "min": 10, "max": 5000},
				{"field": "qualified", "eq": true}
			]},
			{"field": "src", "prefix": "10.0.0.0/8"},
			{"field": "time", "min_ns": 1, "max_ns": 9e18}
		]},
		"group_by": ["tool", "year"],
		"aggs": [
			{"op": "count"},
			{"op": "sum", "field": "packets"},
			{"op": "count_distinct", "field": "src"},
			{"op": "approx_distinct", "field": "src"},
			{"op": "top_k", "field": "port", "k": 10},
			{"op": "quantile", "field": "rate_pps", "qs": [0.5, 0.9, 0.99]}
		],
		"order_by": "key",
		"limit": 100
	}`))
	// Select mode.
	f.Add([]byte(`{"where": {"field": "year", "eq": 2020}, "limit": 50}`))
	f.Add([]byte(`{}`))
	// Malformed JSON.
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"where": {"and": [}}`))
	f.Add([]byte(`{"unknown_key": 1}`))
	f.Add([]byte(`{"limit": 1}{"limit": 2}`))
	// Structural abuse: nesting beyond maxDepth, oversized in-lists.
	f.Add([]byte(`{"where": ` + strings.Repeat(`{"not": `, 64) +
		`{"field": "year", "eq": 2020}` + strings.Repeat(`}`, 64) + `}`))
	f.Add([]byte(`{"where": {"field": "port", "in": [` +
		strings.Repeat("1,", 8192) + `1]}, "aggs": [{"op": "count"}]}`))
	// Absurd parameters: must come back as client errors, not allocations.
	f.Add([]byte(`{"aggs": [{"op": "top_k", "field": "port", "k": 1000000000}]}`))
	f.Add([]byte(`{"aggs": [{"op": "top_k", "field": "port", "k": -1}]}`))
	f.Add([]byte(`{"aggs": [{"op": "quantile", "field": "rate_pps", "qs": [1.5, -2, 1e300]}]}`))
	f.Add([]byte(`{"aggs": [{"op": "quantile", "field": "rate_pps", "qs": []}]}`))
	f.Add([]byte(`{"group_by": ["rate_pps"], "aggs": [{"op": "count"}]}`))
	f.Add([]byte(`{"group_by": ["port"]}`))
	f.Add([]byte(`{"where": {"field": "src", "prefix": "999.0.0.0/40"}}`))
	f.Add([]byte(`{"where": {"field": "year", "in": [-1, 1e20]}}`))
	f.Add([]byte(`{"where": {"field": "tool", "eq": "no-such-tool"}}`))
	f.Add([]byte(`{"limit": -5}`))
	f.Add([]byte(`{"limit": 100000000}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Parse(data)
		if err != nil {
			if !IsClientError(err) {
				t.Fatalf("non-client parse error: %v", err)
			}
			return
		}
		// Accepted queries must be servable end to end.
		c := q.Canonicalize()
		if err := c.Validate(); err != nil {
			t.Fatalf("canonicalized query fails validation: %v", err)
		}
		if c.Key() == "" {
			t.Fatal("empty cache key")
		}
		_ = c.Predicate()
	})
}
