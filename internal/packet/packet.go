// Package packet implements a minimal, allocation-conscious codec for the
// three layers a network telescope cares about: Ethernet II, IPv4 and TCP.
//
// The design follows the gopacket DecodingLayer idiom: each layer type has a
// DecodeFromBytes method that parses into preallocated struct fields (no
// per-packet allocation) and an AppendTo method that serializes the layer
// onto a byte slice. On top of the generic layers, the package provides
// Probe — the compact decoded tuple (timestamp, addresses, ports, header
// fields) that the campaign detector and fingerprint engine operate on — with
// a fused fast-path marshal/unmarshal for full Ethernet+IPv4+TCP frames.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("packet: truncated input")
	ErrNotIPv4     = errors.New("packet: not an IPv4 packet")
	ErrBadIHL      = errors.New("packet: IPv4 header length out of range")
	ErrNotTCP      = errors.New("packet: not a TCP segment")
	ErrBadDataOff  = errors.New("packet: TCP data offset out of range")
	ErrBadChecksum = errors.New("packet: checksum mismatch")
)

// EtherType values.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeIPv6 uint16 = 0x86DD
)

// IP protocol numbers.
const (
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
	ProtoICMP uint8 = 1
)

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
	FlagURG uint8 = 1 << 5
)

// Header sizes for the no-options fast path.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20
	TCPHeaderLen      = 20
	// FrameLen is the size of a minimal Ethernet+IPv4+TCP frame.
	FrameLen = EthernetHeaderLen + IPv4HeaderLen + TCPHeaderLen
)

// Ethernet is an Ethernet II header.
type Ethernet struct {
	DstMAC    [6]byte
	SrcMAC    [6]byte
	EtherType uint16
}

// DecodeFromBytes parses an Ethernet header from data.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < EthernetHeaderLen {
		return ErrTruncated
	}
	copy(e.DstMAC[:], data[0:6])
	copy(e.SrcMAC[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return nil
}

// AppendTo serializes the header onto b and returns the extended slice.
func (e *Ethernet) AppendTo(b []byte) []byte {
	b = append(b, e.DstMAC[:]...)
	b = append(b, e.SrcMAC[:]...)
	return binary.BigEndian.AppendUint16(b, e.EtherType)
}

// IPv4 is an IPv4 header. Options are preserved verbatim.
type IPv4 struct {
	TOS        uint8
	TotalLen   uint16
	ID         uint16
	Flags      uint8 // 3 bits: reserved, DF, MF
	FragOffset uint16
	TTL        uint8
	Protocol   uint8
	Checksum   uint16
	Src, Dst   uint32
	Options    []byte
}

// HeaderLen returns the encoded header length in bytes.
func (ip *IPv4) HeaderLen() int { return IPv4HeaderLen + (len(ip.Options)+3)&^3 }

// DecodeFromBytes parses an IPv4 header. The Options slice aliases data.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return ErrTruncated
	}
	vihl := data[0]
	if vihl>>4 != 4 {
		return ErrNotIPv4
	}
	ihl := int(vihl&0x0f) * 4
	if ihl < IPv4HeaderLen {
		return ErrBadIHL
	}
	if len(data) < ihl {
		return ErrTruncated
	}
	ip.TOS = data[1]
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOffset = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = binary.BigEndian.Uint32(data[12:16])
	ip.Dst = binary.BigEndian.Uint32(data[16:20])
	if ihl > IPv4HeaderLen {
		ip.Options = data[IPv4HeaderLen:ihl]
	} else {
		ip.Options = nil
	}
	return nil
}

// AppendTo serializes the header (with a freshly computed checksum) onto b.
// TotalLen must already be set by the caller.
func (ip *IPv4) AppendTo(b []byte) []byte {
	optLen := (len(ip.Options) + 3) &^ 3
	ihl := (IPv4HeaderLen + optLen) / 4
	start := len(b)
	b = append(b, byte(4<<4|ihl), ip.TOS)
	b = binary.BigEndian.AppendUint16(b, ip.TotalLen)
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(ip.Flags)<<13|ip.FragOffset&0x1fff)
	b = append(b, ip.TTL, ip.Protocol, 0, 0) // checksum placeholder
	b = binary.BigEndian.AppendUint32(b, ip.Src)
	b = binary.BigEndian.AppendUint32(b, ip.Dst)
	b = append(b, ip.Options...)
	for i := len(ip.Options); i < optLen; i++ {
		b = append(b, 0)
	}
	cs := Checksum(b[start:])
	binary.BigEndian.PutUint16(b[start+10:start+12], cs)
	return b
}

// VerifyChecksum reports whether the header checksum over data (one full
// IPv4 header) is valid.
func (ip *IPv4) VerifyChecksum(header []byte) bool {
	return Checksum(header) == 0
}

// TCP is a TCP header. Options are preserved verbatim (already padded).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte
}

// HeaderLen returns the encoded header length in bytes.
func (t *TCP) HeaderLen() int { return TCPHeaderLen + (len(t.Options)+3)&^3 }

// DecodeFromBytes parses a TCP header. The Options slice aliases data.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < TCPHeaderLen {
		return ErrTruncated
	}
	off := int(data[12]>>4) * 4
	if off < TCPHeaderLen {
		return ErrBadDataOff
	}
	if len(data) < off {
		return ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.Flags = data[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	if off > TCPHeaderLen {
		t.Options = data[TCPHeaderLen:off]
	} else {
		t.Options = nil
	}
	return nil
}

// AppendTo serializes the header onto b with the checksum computed over the
// IPv4 pseudo-header (src, dst) and an empty payload.
func (t *TCP) AppendTo(b []byte, src, dst uint32) []byte {
	return t.AppendPayload(b, src, dst, nil)
}

// AppendPayload serializes the header followed by payload onto b, with the
// checksum computed over the IPv4 pseudo-header (src, dst), the header and
// the payload — the segment form of the reactive path's PSH-ACK probes.
func (t *TCP) AppendPayload(b []byte, src, dst uint32, payload []byte) []byte {
	optLen := (len(t.Options) + 3) &^ 3
	off := (TCPHeaderLen + optLen) / 4
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b, byte(off<<4), t.Flags&0x3f)
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = append(b, 0, 0) // checksum placeholder
	b = binary.BigEndian.AppendUint16(b, t.Urgent)
	b = append(b, t.Options...)
	for i := len(t.Options); i < optLen; i++ {
		b = append(b, 0)
	}
	b = append(b, payload...)
	cs := tcpChecksum(b[start:], src, dst)
	binary.BigEndian.PutUint16(b[start+16:start+18], cs)
	return b
}

// Checksum computes the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// tcpChecksum computes the TCP checksum including the IPv4 pseudo-header.
func tcpChecksum(segment []byte, src, dst uint32) uint16 {
	var sum uint32
	sum += src >> 16
	sum += src & 0xffff
	sum += dst >> 16
	sum += dst & 0xffff
	sum += uint32(ProtoTCP)
	sum += uint32(len(segment))
	n := len(segment)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[i : i+2]))
	}
	if n%2 == 1 {
		sum += uint32(segment[n-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// FormatIPv4 renders a uint32 address in dotted-quad notation.
func FormatIPv4(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// ParseIPv4 parses a dotted-quad address into a uint32.
func ParseIPv4(s string) (uint32, error) {
	var parts [4]uint32
	idx := 0
	var cur uint32
	digits := 0
	for i := 0; i < len(s); i++ {
		switch ch := s[i]; {
		case ch >= '0' && ch <= '9':
			cur = cur*10 + uint32(ch-'0')
			digits++
			if cur > 255 || digits > 3 {
				return 0, fmt.Errorf("packet: invalid IPv4 address %q", s)
			}
		case ch == '.':
			if digits == 0 || idx >= 3 {
				return 0, fmt.Errorf("packet: invalid IPv4 address %q", s)
			}
			parts[idx] = cur
			idx++
			cur, digits = 0, 0
		default:
			return 0, fmt.Errorf("packet: invalid IPv4 address %q", s)
		}
	}
	if digits == 0 || idx != 3 {
		return 0, fmt.Errorf("packet: invalid IPv4 address %q", s)
	}
	parts[3] = cur
	return parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3], nil
}
