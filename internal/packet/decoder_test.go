package packet

import (
	"bytes"
	"testing"
)

// decoderCorpus builds the frame set shared by the differential and
// allocation tests: every transport the codec knows, payload and
// payload-less TCP, and assorted damage.
func decoderCorpus() [][]byte {
	frames := [][]byte{
		(&Probe{Src: 0x0a000001, Dst: 0xc0a80001, SrcPort: 40000, DstPort: 443,
			Seq: 7, Ack: 0, IPID: 54321, TTL: 64, Flags: FlagSYN, Window: 1024}).MarshalFrame(),
		(&Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Flags: FlagSYN}).MarshalFrame(),
		(&Probe{Src: 9, Dst: 8, SrcPort: 7, DstPort: 6, Proto: ProtoUDP}).MarshalFrame(),
		(&Probe{Src: 5, Dst: 4, Flags: ICMPEchoRequest, SrcPort: 77, Seq: 3, Proto: ProtoICMP}).MarshalFrame(),
		(&Probe{Src: 11, Dst: 12, SrcPort: 13, DstPort: 80, Flags: FlagPSH | FlagACK,
			Seq: 100, Ack: 200, Payload: []byte("GET / HTTP/1.1\r\n")}).MarshalFrame(),
		(&Probe{Src: 21, Dst: 22, SrcPort: 23, DstPort: 22, Flags: FlagPSH | FlagACK,
			Payload: []byte("SSH-2.0-scanner")}).MarshalFrame(),
	}
	// Truncations of the SYN frame and a corrupted IHL.
	valid := frames[0]
	for cut := 1; cut < len(valid); cut += 5 {
		frames = append(frames, valid[:cut])
	}
	bad := append([]byte{}, valid...)
	bad[14] = 0x45 | 0x0a
	frames = append(frames, bad, []byte{}, make([]byte, EthernetHeaderLen))
	return frames
}

// probesEquivalent compares two decoded probes field-by-field. Payload is
// compared by contents: UnmarshalFrame yields nil for "no payload" while the
// Decoder yields a reused zero-length slice — the documented difference.
func probesEquivalent(a, b *Probe) bool {
	return a.Time == b.Time && a.Src == b.Src && a.Dst == b.Dst &&
		a.SrcPort == b.SrcPort && a.DstPort == b.DstPort &&
		a.Seq == b.Seq && a.Ack == b.Ack && a.IPID == b.IPID &&
		a.TTL == b.TTL && a.Flags == b.Flags && a.Window == b.Window &&
		a.Proto == b.Proto && bytes.Equal(a.Payload, b.Payload)
}

// TestDecoderMatchesUnmarshalFrame is the decode half of the differential
// suite: one reused Decoder+Probe over the whole corpus must agree with a
// fresh UnmarshalFrame on every frame — same error class, same fields —
// even though the Decoder recycles its Payload backing between calls.
func TestDecoderMatchesUnmarshalFrame(t *testing.T) {
	var d Decoder
	var reused Probe
	for i, frame := range decoderCorpus() {
		var ref Probe
		refErr := ref.UnmarshalFrame(frame)
		reused.Time = int64(i) // Decode must preserve Time
		ref.Time = int64(i)
		gotErr := d.Decode(frame, &reused)
		if (refErr == nil) != (gotErr == nil) || (refErr != nil && refErr != gotErr) {
			t.Fatalf("frame %d: Decode err %v, UnmarshalFrame err %v", i, gotErr, refErr)
		}
		if refErr != nil {
			continue
		}
		if !probesEquivalent(&reused, &ref) {
			t.Fatalf("frame %d: Decode %+v != UnmarshalFrame %+v", i, reused, ref)
		}
	}
}

// TestDecoderPayloadReuse pins the ownership rule: payload bytes are copies
// (scribbling the frame after Decode must not change them) and the backing
// array is reused across calls (no growth once warmed).
func TestDecoderPayloadReuse(t *testing.T) {
	var d Decoder
	var p Probe
	frame := (&Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Flags: FlagPSH | FlagACK,
		Payload: []byte("hello payload")}).MarshalFrame()
	if err := d.Decode(frame, &p); err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		frame[i] = 0xff
	}
	if string(p.Payload) != "hello payload" {
		t.Fatalf("payload aliases the frame: %q", p.Payload)
	}
	first := cap(p.Payload)
	frame2 := (&Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Flags: FlagPSH | FlagACK,
		Payload: []byte("bye")}).MarshalFrame()
	if err := d.Decode(frame2, &p); err != nil {
		t.Fatal(err)
	}
	if string(p.Payload) != "bye" {
		t.Fatalf("second decode payload = %q", p.Payload)
	}
	if cap(p.Payload) != first {
		t.Fatalf("payload backing not reused: cap %d -> %d", first, cap(p.Payload))
	}
}

// TestDecoderNoAllocsOnCorpus is the fuzz-corpus allocation spot-check: a
// warmed Decoder must not allocate on any corpus frame, payloads included.
func TestDecoderNoAllocsOnCorpus(t *testing.T) {
	var d Decoder
	var p Probe
	corpus := decoderCorpus()
	for _, frame := range corpus { // warm the payload backing
		_ = d.Decode(frame, &p)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, frame := range corpus {
			_ = d.Decode(frame, &p)
		}
	})
	if allocs != 0 {
		t.Fatalf("Decoder allocated %.1f times per corpus pass, want 0", allocs)
	}
}
