package packet

// Decoder is the reusable frame parser of the zero-alloc ingest path. It
// follows the gopacket DecodingLayerParser idiom: the layer structs live in
// the Decoder and are re-parsed in place, and the decoded tuple is written
// into a caller-owned Probe out-param, so a steady-state capture loop —
// one Decoder, one Probe, millions of frames — performs no per-packet heap
// allocation. Probe.UnmarshalFrame remains as the convenience form for
// one-shot decodes; the two are proven field-identical by the differential
// tests and the shared fuzz corpus.
//
// Ownership rules (enforced by the alloctest budget `decode`):
//
//   - The Probe is the caller's. Decode overwrites every field except Time
//     (the timestamp comes from the capture layer, not the wire).
//   - Probe.Payload's backing array is reused across Decode calls: a decode
//     that extracts TCP payload appends into Payload[:0] instead of
//     allocating. Payload bytes are therefore COPIES of the frame (never
//     aliases), but they are only valid until the caller's next Decode into
//     the same Probe — hand-offs that outlive the probe (batching into a
//     channel, retaining in a flow) must copy, which is exactly what
//     ShardedDetector.Ingest and fingerprint.Votes do.
//   - The Decoder itself is not safe for concurrent use; give each capture
//     goroutine its own (the struct is ~100 bytes).
type Decoder struct {
	eth  Ethernet
	ip   IPv4
	tcp  TCP
	udp  UDP
	icmp ICMPEcho
}

// Decode parses an Ethernet+IPv4 frame into p, reusing p's Payload backing
// array. Semantics are identical to Probe.UnmarshalFrame: TCP, UDP and ICMP
// echo transports are decoded (Proto records which); other protocols and
// non-IPv4 frames return ErrNotTCP / ErrNotIPv4, which the telescope counts
// and drops. On error p's contents are unspecified (reuse it anyway — the
// next successful Decode overwrites everything).
func (d *Decoder) Decode(frame []byte, p *Probe) error {
	if err := d.eth.DecodeFromBytes(frame); err != nil {
		return err
	}
	if d.eth.EtherType != EtherTypeIPv4 {
		return ErrNotIPv4
	}
	if err := d.ip.DecodeFromBytes(frame[EthernetHeaderLen:]); err != nil {
		return err
	}
	if d.ip.FragOffset != 0 {
		// Later fragments carry no transport header; scanners never
		// fragment.
		return ErrNotTCP
	}
	// The probe keeps its zero-length Payload backing through every decode
	// (payload-less or not) so one early payload-carrying frame warms the
	// buffer for the rest of the capture.
	payload := p.Payload[:0]
	*p = Probe{Time: p.Time, Src: d.ip.Src, Dst: d.ip.Dst, IPID: d.ip.ID, TTL: d.ip.TTL}
	p.Payload = payload
	rest := frame[EthernetHeaderLen+d.ip.HeaderLen():]
	switch d.ip.Protocol {
	case ProtoTCP:
		if err := d.tcp.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.SrcPort, p.DstPort = d.tcp.SrcPort, d.tcp.DstPort
		p.Seq, p.Ack = d.tcp.Seq, d.tcp.Ack
		p.Flags = d.tcp.Flags
		p.Window = d.tcp.Window
		// Payload: the bytes between the TCP header and the IP total
		// length, bounded by the capture. Copied into the probe's reused
		// backing, because capture layers recycle the frame buffer between
		// records.
		end := int(d.ip.TotalLen) - d.ip.HeaderLen()
		if end > len(rest) {
			end = len(rest)
		}
		if off := d.tcp.HeaderLen(); end > off {
			p.Payload = append(p.Payload, rest[off:end]...)
		}
		return nil
	case ProtoUDP:
		if err := d.udp.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.Proto = ProtoUDP
		p.SrcPort, p.DstPort = d.udp.SrcPort, d.udp.DstPort
		return nil
	case ProtoICMP:
		if err := d.icmp.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.Proto = ProtoICMP
		p.Flags = d.icmp.Type
		p.SrcPort = d.icmp.ID
		p.Seq = uint32(d.icmp.Seq)
		return nil
	default:
		return ErrNotTCP
	}
}
