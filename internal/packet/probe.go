package packet

import (
	"encoding/binary"
	"fmt"
)

// Probe is the decoded tuple the telescope pipeline operates on: one TCP
// probe (usually a SYN) observed at a monitored address. It carries exactly
// the header fields the paper's methodology consumes — the IP identification
// and TCP sequence number are what the tool fingerprints of §3.3 key on.
//
// Probe is a plain value type, cheap to copy and suitable for tight loops
// over hundreds of millions of packets.
type Probe struct {
	// Time is the capture timestamp in nanoseconds on the (virtual) clock.
	Time int64
	// Src and Dst are the IPv4 source and destination addresses.
	Src, Dst uint32
	// SrcPort and DstPort are the TCP ports.
	SrcPort, DstPort uint16
	// Seq and Ack are the TCP sequence and acknowledgment numbers.
	Seq, Ack uint32
	// IPID is the IPv4 identification field.
	IPID uint16
	// TTL is the IPv4 time-to-live as observed at the telescope.
	TTL uint8
	// Flags holds the TCP control bits (for ICMP, the echo type).
	Flags uint8
	// Window is the advertised TCP receive window.
	Window uint16
	// Proto is the IP protocol. Zero is treated as TCP so that the
	// overwhelmingly common case needs no initialization; UDP and ICMP
	// probes (reflection sweeps, ping scans) set it explicitly and are
	// dropped by the telescope's TCP/SYN filter.
	Proto uint8
	// Payload holds TCP payload bytes, if any. One-way SYN scanning never
	// carries a payload; it appears on the reactive path's phase-two
	// PSH-ACK segments (the application data a two-phase scanner sends
	// once a synthesized SYN-ACK completes its handshake).
	Payload []byte
}

// IsTCP reports whether the probe is a TCP segment.
func (p *Probe) IsTCP() bool { return p.Proto == 0 || p.Proto == ProtoTCP }

// IsSYN reports whether the probe is a pure TCP SYN (SYN set, ACK clear) —
// the filter the paper applies to separate scans from backscatter (§3.2).
func (p *Probe) IsSYN() bool {
	return p.IsTCP() && p.Flags&FlagSYN != 0 && p.Flags&FlagACK == 0
}

// IsSYNACK reports whether the probe is a SYN-ACK — the responder's
// synthesized second handshake step on the reactive path.
func (p *Probe) IsSYNACK() bool {
	return p.IsTCP() && p.Flags&FlagSYN != 0 && p.Flags&FlagACK != 0
}

// IsACK reports whether the probe is a plain ACK segment (ACK set, no SYN,
// RST or FIN): the handshake-completing and data-carrying segments of a
// two-phase scanner's second phase.
func (p *Probe) IsACK() bool {
	return p.IsTCP() && p.Flags&FlagACK != 0 &&
		p.Flags&(FlagSYN|FlagRST|FlagFIN) == 0
}

// HasPayload reports whether the probe carries TCP payload bytes.
func (p *Probe) HasPayload() bool { return len(p.Payload) > 0 }

// String renders the probe in a compact tcpdump-like form.
func (p *Probe) String() string {
	return fmt.Sprintf("%s:%d > %s:%d flags=%#02x seq=%d ipid=%d",
		FormatIPv4(p.Src), p.SrcPort, FormatIPv4(p.Dst), p.DstPort,
		p.Flags, p.Seq, p.IPID)
}

// defaultMACs used in generated frames; the telescope never inspects them.
var (
	srcMAC = [6]byte{0x02, 0x53, 0x59, 0x4e, 0x00, 0x01} // locally administered
	dstMAC = [6]byte{0x02, 0x53, 0x59, 0x4e, 0x00, 0x02}
)

// AppendFrame serializes the probe as a minimal Ethernet+IPv4+transport
// frame onto b and returns the extended slice (54 bytes for a payload-less
// TCP segment, 42 for UDP and ICMP). Checksums are valid.
func (p *Probe) AppendFrame(b []byte) []byte {
	eth := Ethernet{DstMAC: dstMAC, SrcMAC: srcMAC, EtherType: EtherTypeIPv4}
	b = eth.AppendTo(b)
	proto := p.Proto
	if proto == 0 {
		proto = ProtoTCP
	}
	var transportLen int
	switch proto {
	case ProtoTCP:
		transportLen = TCPHeaderLen + len(p.Payload)
	case ProtoUDP:
		transportLen = UDPHeaderLen
	case ProtoICMP:
		transportLen = ICMPHeaderLen
	default:
		transportLen = 0
	}
	ip := IPv4{
		TotalLen: uint16(IPv4HeaderLen + transportLen),
		ID:       p.IPID,
		Flags:    0x2, // DF, as set by all the scanners we model
		TTL:      p.TTL,
		Protocol: proto,
		Src:      p.Src,
		Dst:      p.Dst,
	}
	b = ip.AppendTo(b)
	switch proto {
	case ProtoUDP:
		udp := UDP{SrcPort: p.SrcPort, DstPort: p.DstPort}
		return udp.AppendTo(b, p.Src, p.Dst, nil)
	case ProtoICMP:
		echo := ICMPEcho{Type: p.Flags, ID: p.SrcPort, Seq: uint16(p.Seq)}
		return echo.AppendTo(b)
	default:
		tcp := TCP{
			SrcPort: p.SrcPort,
			DstPort: p.DstPort,
			Seq:     p.Seq,
			Ack:     p.Ack,
			Flags:   p.Flags,
			Window:  p.Window,
		}
		return tcp.AppendPayload(b, p.Src, p.Dst, p.Payload)
	}
}

// MarshalFrame is AppendFrame into a fresh slice.
func (p *Probe) MarshalFrame() []byte {
	return p.AppendFrame(make([]byte, 0, FrameLen+len(p.Payload)))
}

// UnmarshalFrame parses an Ethernet+IPv4 frame into p. TCP, UDP and ICMP
// echo transports are decoded (Proto records which); other protocols and
// non-IPv4 frames return ErrNotTCP / ErrNotIPv4, which the telescope counts
// and drops. The Time field is left untouched (it comes from the capture
// layer, not the wire).
func (p *Probe) UnmarshalFrame(frame []byte) error {
	var eth Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil {
		return err
	}
	if eth.EtherType != EtherTypeIPv4 {
		return ErrNotIPv4
	}
	var ip IPv4
	if err := ip.DecodeFromBytes(frame[EthernetHeaderLen:]); err != nil {
		return err
	}
	if ip.FragOffset != 0 {
		// Later fragments carry no transport header; scanners never
		// fragment.
		return ErrNotTCP
	}
	*p = Probe{Time: p.Time, Src: ip.Src, Dst: ip.Dst, IPID: ip.ID, TTL: ip.TTL}
	rest := frame[EthernetHeaderLen+ip.HeaderLen():]
	switch ip.Protocol {
	case ProtoTCP:
		var tcp TCP
		if err := tcp.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.SrcPort, p.DstPort = tcp.SrcPort, tcp.DstPort
		p.Seq, p.Ack = tcp.Seq, tcp.Ack
		p.Flags = tcp.Flags
		p.Window = tcp.Window
		// Payload: the bytes between the TCP header and the IP total
		// length, bounded by the capture. Copied, because capture layers
		// reuse the frame buffer between records.
		end := int(ip.TotalLen) - ip.HeaderLen()
		if end > len(rest) {
			end = len(rest)
		}
		if off := tcp.HeaderLen(); end > off {
			p.Payload = append([]byte(nil), rest[off:end]...)
		}
		return nil
	case ProtoUDP:
		var udp UDP
		if err := udp.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.Proto = ProtoUDP
		p.SrcPort, p.DstPort = udp.SrcPort, udp.DstPort
		return nil
	case ProtoICMP:
		var echo ICMPEcho
		if err := echo.DecodeFromBytes(rest); err != nil {
			return err
		}
		p.Proto = ProtoICMP
		p.Flags = echo.Type
		p.SrcPort = echo.ID
		p.Seq = uint32(echo.Seq)
		return nil
	default:
		return ErrNotTCP
	}
}

// encodedProbeLen is the size of the compact binary encoding used by
// EncodeBinary/DecodeBinary for spooling probe streams to disk without the
// overhead of full frames.
const encodedProbeLen = 8 + 4 + 4 + 2 + 2 + 4 + 4 + 2 + 1 + 1 + 2 + 1

// AppendBinary encodes the probe in the compact 35-byte fixed-width format.
func (p *Probe) AppendBinary(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(p.Time))
	b = binary.BigEndian.AppendUint32(b, p.Src)
	b = binary.BigEndian.AppendUint32(b, p.Dst)
	b = binary.BigEndian.AppendUint16(b, p.SrcPort)
	b = binary.BigEndian.AppendUint16(b, p.DstPort)
	b = binary.BigEndian.AppendUint32(b, p.Seq)
	b = binary.BigEndian.AppendUint32(b, p.Ack)
	b = binary.BigEndian.AppendUint16(b, p.IPID)
	b = append(b, p.TTL, p.Flags)
	b = binary.BigEndian.AppendUint16(b, p.Window)
	return append(b, p.Proto)
}

// DecodeBinary decodes a probe previously encoded with AppendBinary.
func (p *Probe) DecodeBinary(b []byte) error {
	if len(b) < encodedProbeLen {
		return ErrTruncated
	}
	p.Time = int64(binary.BigEndian.Uint64(b[0:8]))
	p.Src = binary.BigEndian.Uint32(b[8:12])
	p.Dst = binary.BigEndian.Uint32(b[12:16])
	p.SrcPort = binary.BigEndian.Uint16(b[16:18])
	p.DstPort = binary.BigEndian.Uint16(b[18:20])
	p.Seq = binary.BigEndian.Uint32(b[20:24])
	p.Ack = binary.BigEndian.Uint32(b[24:28])
	p.IPID = binary.BigEndian.Uint16(b[28:30])
	p.TTL = b[30]
	p.Flags = b[31]
	p.Window = binary.BigEndian.Uint16(b[32:34])
	p.Proto = b[34]
	return nil
}

// BinaryLen returns the length of the compact binary encoding.
func BinaryLen() int { return encodedProbeLen }
