package packet

import "encoding/binary"

// UDP and ICMP codecs complete the telescope's view of unsolicited traffic:
// TCP dominates (98% of TCP being SYN scans is the paper's premise), but a
// real capture also carries UDP probes (SSDP/DNS/NTP reflection sweeps) and
// ICMP echo sweeps. The telescope counts and drops them; the workload
// generator emits a small share of both so that filtering is exercised.

// UDPHeaderLen is the fixed UDP header size.
const UDPHeaderLen = 8

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	// Length covers header plus payload.
	Length   uint16
	Checksum uint16
}

// DecodeFromBytes parses a UDP header.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	return nil
}

// AppendTo serializes the header and payload with a checksum over the IPv4
// pseudo-header.
func (u *UDP) AppendTo(b []byte, src, dst uint32, payload []byte) []byte {
	start := len(b)
	length := UDPHeaderLen + len(payload)
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(length))
	b = append(b, 0, 0) // checksum placeholder
	b = append(b, payload...)
	cs := udpChecksum(b[start:], src, dst)
	if cs == 0 {
		cs = 0xffff // RFC 768: transmitted zero means "no checksum"
	}
	binary.BigEndian.PutUint16(b[start+6:start+8], cs)
	return b
}

func udpChecksum(segment []byte, src, dst uint32) uint16 {
	var sum uint32
	sum += src>>16 + src&0xffff + dst>>16 + dst&0xffff
	sum += uint32(ProtoUDP) + uint32(len(segment))
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[i : i+2]))
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ICMP echo types.
const (
	ICMPEchoRequest uint8 = 8
	ICMPEchoReply   uint8 = 0
	ICMPHeaderLen         = 8
)

// ICMPEcho is an ICMP echo request/reply header.
type ICMPEcho struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	ID, Seq  uint16
}

// DecodeFromBytes parses an ICMP echo header.
func (ic *ICMPEcho) DecodeFromBytes(data []byte) error {
	if len(data) < ICMPHeaderLen {
		return ErrTruncated
	}
	ic.Type = data[0]
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	ic.ID = binary.BigEndian.Uint16(data[4:6])
	ic.Seq = binary.BigEndian.Uint16(data[6:8])
	return nil
}

// AppendTo serializes the header with its checksum (no payload).
func (ic *ICMPEcho) AppendTo(b []byte) []byte {
	start := len(b)
	b = append(b, ic.Type, ic.Code, 0, 0)
	b = binary.BigEndian.AppendUint16(b, ic.ID)
	b = binary.BigEndian.AppendUint16(b, ic.Seq)
	cs := Checksum(b[start:])
	binary.BigEndian.PutUint16(b[start+2:start+4], cs)
	return b
}
