package packet

import "testing"

// FuzzUnmarshalFrame hardens the frame parser against arbitrary bytes: it
// must never panic and never read out of bounds, whatever a capture file
// contains. Run with `go test -fuzz=FuzzUnmarshalFrame` for a real fuzzing
// session; the seed corpus runs in every ordinary `go test`.
func FuzzUnmarshalFrame(f *testing.F) {
	valid := (&Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Flags: FlagSYN}).MarshalFrame()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(make([]byte, 14))
	udp := (&Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: ProtoUDP}).MarshalFrame()
	f.Add(udp)
	icmp := (&Probe{Src: 1, Dst: 2, Flags: ICMPEchoRequest, Proto: ProtoICMP}).MarshalFrame()
	f.Add(icmp)
	// Truncations and corruptions of a valid frame.
	for cut := 1; cut < len(valid); cut += 7 {
		f.Add(valid[:cut])
	}
	corrupt := append([]byte{}, valid...)
	corrupt[14] = 0x45 | 0x0a // absurd IHL
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Probe
		if err := p.UnmarshalFrame(data); err != nil {
			return // errors are fine; panics are not
		}
		// On success the probe must self-describe consistently.
		if p.Proto != 0 && p.Proto != ProtoTCP && p.Proto != ProtoUDP && p.Proto != ProtoICMP {
			t.Fatalf("accepted unknown proto %d", p.Proto)
		}
	})
}

// FuzzDecodeBinary does the same for the compact fixed-width codec.
func FuzzDecodeBinary(f *testing.F) {
	valid := (&Probe{Time: 1, Src: 2, Dst: 3}).AppendBinary(nil)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Probe
		_ = p.DecodeBinary(data)
	})
}
