package packet

import "testing"

// FuzzUnmarshalFrame hardens the frame parser against arbitrary bytes: it
// must never panic and never read out of bounds, whatever a capture file
// contains. Run with `go test -fuzz=FuzzUnmarshalFrame` for a real fuzzing
// session; the seed corpus runs in every ordinary `go test`.
func FuzzUnmarshalFrame(f *testing.F) {
	valid := (&Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Flags: FlagSYN}).MarshalFrame()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(make([]byte, 14))
	udp := (&Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: ProtoUDP}).MarshalFrame()
	f.Add(udp)
	icmp := (&Probe{Src: 1, Dst: 2, Flags: ICMPEchoRequest, Proto: ProtoICMP}).MarshalFrame()
	f.Add(icmp)
	// Truncations and corruptions of a valid frame.
	for cut := 1; cut < len(valid); cut += 7 {
		f.Add(valid[:cut])
	}
	corrupt := append([]byte{}, valid...)
	corrupt[14] = 0x45 | 0x0a // absurd IHL
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Probe
		if err := p.UnmarshalFrame(data); err != nil {
			return // errors are fine; panics are not
		}
		// On success the probe must self-describe consistently.
		if p.Proto != 0 && p.Proto != ProtoTCP && p.Proto != ProtoUDP && p.Proto != ProtoICMP {
			t.Fatalf("accepted unknown proto %d", p.Proto)
		}
	})
}

// FuzzHandshakeFrame hardens the payload path of the frame codec: arbitrary
// payload bytes must round-trip through a PSH-ACK frame exactly, and
// arbitrary input bytes must never panic the payload extractor (including
// frames whose IP total length disagrees with the capture length).
func FuzzHandshakeFrame(f *testing.F) {
	f.Add([]byte("GET / HTTP/1.1\r\n"), []byte{})
	f.Add([]byte{}, []byte{})
	pshack := (&Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4,
		Flags: FlagPSH | FlagACK, Seq: 5, Ack: 6,
		Payload: []byte("SSH-2.0-")}).MarshalFrame()
	f.Add([]byte{0x16, 0x03, 0x01}, pshack)
	// A frame claiming more payload than was captured.
	short := append([]byte{}, pshack...)
	short = short[:len(short)-4]
	f.Add([]byte("x"), short)

	f.Fuzz(func(t *testing.T, payload, raw []byte) {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		in := Probe{Src: 0x0a000001, Dst: 0xc0a80001, SrcPort: 40000,
			DstPort: 80, Seq: 100, Ack: 200, TTL: 64,
			Flags: FlagPSH | FlagACK, Window: 65535, Payload: payload}
		frame := in.MarshalFrame()
		var out Probe
		if err := out.UnmarshalFrame(frame); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if string(out.Payload) != string(payload) {
			t.Fatalf("payload mismatch: sent %d bytes, got %d", len(payload), len(out.Payload))
		}
		var p Probe
		_ = p.UnmarshalFrame(raw) // must not panic
	})
}

// FuzzDecoder drives the reusable Decoder with the same corpus as
// FuzzUnmarshalFrame and holds it to the one-shot parser's behavior: same
// error, same fields, payload bytes equal — with one Decoder and one Probe
// reused across every input, so any corpus-order state leak surfaces.
func FuzzDecoder(f *testing.F) {
	valid := (&Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Flags: FlagSYN}).MarshalFrame()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(make([]byte, 14))
	f.Add((&Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: ProtoUDP}).MarshalFrame())
	f.Add((&Probe{Src: 1, Dst: 2, Flags: ICMPEchoRequest, Proto: ProtoICMP}).MarshalFrame())
	f.Add((&Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Flags: FlagPSH | FlagACK,
		Payload: []byte("SSH-2.0-")}).MarshalFrame())
	for cut := 1; cut < len(valid); cut += 7 {
		f.Add(valid[:cut])
	}
	corrupt := append([]byte{}, valid...)
	corrupt[14] = 0x45 | 0x0a
	f.Add(corrupt)

	var d Decoder
	var got Probe
	f.Fuzz(func(t *testing.T, data []byte) {
		var want Probe
		wantErr := want.UnmarshalFrame(data)
		gotErr := d.Decode(data, &got)
		if wantErr != gotErr {
			t.Fatalf("Decode err %v, UnmarshalFrame err %v", gotErr, wantErr)
		}
		if wantErr != nil {
			return
		}
		if got.Src != want.Src || got.Dst != want.Dst ||
			got.SrcPort != want.SrcPort || got.DstPort != want.DstPort ||
			got.Seq != want.Seq || got.Ack != want.Ack ||
			got.IPID != want.IPID || got.TTL != want.TTL ||
			got.Flags != want.Flags || got.Window != want.Window ||
			got.Proto != want.Proto || string(got.Payload) != string(want.Payload) {
			t.Fatalf("Decode %+v != UnmarshalFrame %+v", got, want)
		}
	})
}

// FuzzDecodeBinary does the same for the compact fixed-width codec.
func FuzzDecodeBinary(f *testing.F) {
	valid := (&Probe{Time: 1, Src: 2, Dst: 3}).AppendBinary(nil)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Probe
		_ = p.DecodeBinary(data)
	})
}
