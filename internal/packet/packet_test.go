package packet

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{
		DstMAC:    [6]byte{1, 2, 3, 4, 5, 6},
		SrcMAC:    [6]byte{7, 8, 9, 10, 11, 12},
		EtherType: EtherTypeIPv4,
	}
	b := e.AppendTo(nil)
	if len(b) != EthernetHeaderLen {
		t.Fatalf("encoded length %d", len(b))
	}
	var got Ethernet
	if err := got.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip: %+v != %+v", got, e)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var e Ethernet
	if err := e.DecodeFromBytes(make([]byte, 13)); err != ErrTruncated {
		t.Fatalf("got %v, want ErrTruncated", err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{
		TOS:      0x10,
		TotalLen: 40,
		ID:       54321,
		Flags:    0x2,
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      0xC0A80001,
		Dst:      0x08080808,
	}
	b := ip.AppendTo(nil)
	if len(b) != IPv4HeaderLen {
		t.Fatalf("encoded length %d", len(b))
	}
	var got IPv4
	if err := got.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if got.Checksum == 0 {
		t.Fatal("checksum not set")
	}
	if !got.VerifyChecksum(b) {
		t.Fatal("checksum does not verify")
	}
	got.Checksum = 0
	ip.Checksum = 0
	if got.Src != ip.Src || got.Dst != ip.Dst || got.ID != ip.ID ||
		got.TTL != ip.TTL || got.Protocol != ip.Protocol || got.TOS != ip.TOS ||
		got.Flags != ip.Flags || got.TotalLen != ip.TotalLen {
		t.Fatalf("round trip: %+v != %+v", got, ip)
	}
}

func TestIPv4Options(t *testing.T) {
	ip := IPv4{
		TotalLen: 44,
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      1,
		Dst:      2,
		Options:  []byte{0x94, 0x04, 0x00, 0x00}, // router alert
	}
	b := ip.AppendTo(nil)
	if len(b) != 24 {
		t.Fatalf("encoded length %d, want 24", len(b))
	}
	var got IPv4
	if err := got.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Options, ip.Options) {
		t.Fatalf("options %x != %x", got.Options, ip.Options)
	}
	if got.HeaderLen() != 24 {
		t.Fatalf("HeaderLen = %d", got.HeaderLen())
	}
}

func TestIPv4Malformed(t *testing.T) {
	var ip IPv4
	if err := ip.DecodeFromBytes(make([]byte, 10)); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	b := make([]byte, 20)
	b[0] = 6 << 4 // IPv6 version nibble
	if err := ip.DecodeFromBytes(b); err != ErrNotIPv4 {
		t.Fatalf("version: %v", err)
	}
	b[0] = 4<<4 | 3 // IHL 12 bytes < 20
	if err := ip.DecodeFromBytes(b); err != ErrBadIHL {
		t.Fatalf("ihl: %v", err)
	}
	b[0] = 4<<4 | 15 // IHL 60 > len(data)
	if err := ip.DecodeFromBytes(b); err != ErrTruncated {
		t.Fatalf("ihl overflow: %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	tcp := TCP{
		SrcPort: 44321,
		DstPort: 443,
		Seq:     0xdeadbeef,
		Ack:     0,
		Flags:   FlagSYN,
		Window:  65535,
		Urgent:  0,
	}
	b := tcp.AppendTo(nil, 0x01020304, 0x05060708)
	if len(b) != TCPHeaderLen {
		t.Fatalf("encoded length %d", len(b))
	}
	var got TCP
	if err := got.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != tcp.SrcPort || got.DstPort != tcp.DstPort ||
		got.Seq != tcp.Seq || got.Flags != tcp.Flags || got.Window != tcp.Window {
		t.Fatalf("round trip: %+v != %+v", got, tcp)
	}
	if got.Checksum == 0 {
		t.Fatal("checksum not computed")
	}
}

func TestTCPOptions(t *testing.T) {
	tcp := TCP{
		SrcPort: 1,
		DstPort: 2,
		Flags:   FlagSYN,
		Options: []byte{0x02, 0x04, 0x05, 0xb4}, // MSS 1460
	}
	b := tcp.AppendTo(nil, 1, 2)
	if len(b) != 24 {
		t.Fatalf("encoded length %d", len(b))
	}
	var got TCP
	if err := got.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Options, tcp.Options) {
		t.Fatalf("options %x != %x", got.Options, tcp.Options)
	}
}

func TestTCPMalformed(t *testing.T) {
	var tcp TCP
	if err := tcp.DecodeFromBytes(make([]byte, 19)); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	b := make([]byte, 20)
	b[12] = 2 << 4 // data offset 8 bytes < 20
	if err := tcp.DecodeFromBytes(b); err != ErrBadDataOff {
		t.Fatalf("offset: %v", err)
	}
	b[12] = 10 << 4 // 40 bytes > len
	if err := tcp.DecodeFromBytes(b); err != ErrTruncated {
		t.Fatalf("offset overflow: %v", err)
	}
}

func TestChecksumRFC1071(t *testing.T) {
	// Classic RFC 1071 example.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
	// Odd length.
	if got := Checksum([]byte{0xab}); got != ^uint16(0xab00) {
		t.Fatalf("odd Checksum = %#04x", got)
	}
}

func TestFlags(t *testing.T) {
	p := Probe{Flags: FlagSYN}
	if !p.IsSYN() {
		t.Fatal("SYN not detected")
	}
	p.Flags = FlagSYN | FlagACK
	if p.IsSYN() {
		t.Fatal("SYN/ACK misclassified as scan probe")
	}
	p.Flags = FlagRST
	if p.IsSYN() {
		t.Fatal("RST misclassified")
	}
}

func TestParseFormatIPv4(t *testing.T) {
	cases := []struct {
		s    string
		want uint32
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xffffffff},
		{"192.168.0.1", 0xC0A80001},
		{"8.8.8.8", 0x08080808},
	}
	for _, c := range cases {
		got, err := ParseIPv4(c.s)
		if err != nil {
			t.Fatalf("ParseIPv4(%q): %v", c.s, err)
		}
		if got != c.want {
			t.Fatalf("ParseIPv4(%q) = %#x, want %#x", c.s, got, c.want)
		}
		if back := FormatIPv4(got); back != c.s {
			t.Fatalf("FormatIPv4(%#x) = %q, want %q", got, back, c.s)
		}
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", "1.2.3.4x", "1234.1.1.1"} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Fatalf("ParseIPv4(%q) should fail", bad)
		}
	}
}

func TestParseFormatRoundTripQuick(t *testing.T) {
	f := func(a uint32) bool {
		got, err := ParseIPv4(FormatIPv4(a))
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProbeFrameRoundTrip(t *testing.T) {
	p := Probe{
		Time:    12345,
		Src:     0x0A000001,
		Dst:     0xC0A80002,
		SrcPort: 54321,
		DstPort: 23,
		Seq:     0xC0A80002, // Mirai-style
		IPID:    777,
		TTL:     55,
		Flags:   FlagSYN,
		Window:  14600,
	}
	frame := p.MarshalFrame()
	if len(frame) != FrameLen {
		t.Fatalf("frame length %d, want %d", len(frame), FrameLen)
	}
	var got Probe
	if err := got.UnmarshalFrame(frame); err != nil {
		t.Fatal(err)
	}
	got.Time = p.Time // Time is not on the wire
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, p)
	}
}

func TestProbeFrameChecksumsValid(t *testing.T) {
	p := Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Flags: FlagSYN}
	frame := p.MarshalFrame()
	ipHeader := frame[EthernetHeaderLen : EthernetHeaderLen+IPv4HeaderLen]
	if Checksum(ipHeader) != 0 {
		t.Fatal("IP checksum invalid")
	}
	var ip IPv4
	if err := ip.DecodeFromBytes(ipHeader); err != nil {
		t.Fatal(err)
	}
	if !ip.VerifyChecksum(ipHeader) {
		t.Fatal("VerifyChecksum failed")
	}
}

func TestProbeFrameRejects(t *testing.T) {
	var p Probe
	if err := p.UnmarshalFrame(make([]byte, 5)); err != ErrTruncated {
		t.Fatalf("short frame: %v", err)
	}
	// IPv6 ethertype.
	e := Ethernet{EtherType: EtherTypeIPv6}
	frame := e.AppendTo(nil)
	frame = append(frame, make([]byte, 40)...)
	if err := p.UnmarshalFrame(frame); err != ErrNotIPv4 {
		t.Fatalf("ipv6 frame: %v", err)
	}
	// Unknown transport protocol (GRE).
	good := (&Probe{Src: 1, Dst: 2, Flags: FlagSYN}).MarshalFrame()
	good[EthernetHeaderLen+9] = 47
	if err := p.UnmarshalFrame(good); err != ErrNotTCP {
		t.Fatalf("gre packet: %v", err)
	}
	// Fragment.
	good = (&Probe{Src: 1, Dst: 2, Flags: FlagSYN}).MarshalFrame()
	good[EthernetHeaderLen+6] = 0x00
	good[EthernetHeaderLen+7] = 0x10 // frag offset 16
	if err := p.UnmarshalFrame(good); err != ErrNotTCP {
		t.Fatalf("fragment: %v", err)
	}
}

func TestUDPFrameRoundTrip(t *testing.T) {
	in := Probe{Src: 0x01020304, Dst: 0x05060708, SrcPort: 5353, DstPort: 1900,
		TTL: 60, Proto: ProtoUDP}
	frame := in.MarshalFrame()
	if len(frame) != EthernetHeaderLen+IPv4HeaderLen+UDPHeaderLen {
		t.Fatalf("udp frame length %d", len(frame))
	}
	var got Probe
	if err := got.UnmarshalFrame(frame); err != nil {
		t.Fatal(err)
	}
	if got.Proto != ProtoUDP || got.SrcPort != 5353 || got.DstPort != 1900 {
		t.Fatalf("udp round trip: %+v", got)
	}
	if got.IsTCP() || got.IsSYN() {
		t.Fatal("udp probe classified as TCP/SYN")
	}
}

func TestICMPFrameRoundTrip(t *testing.T) {
	in := Probe{Src: 1, Dst: 2, SrcPort: 777, Seq: 42, TTL: 60,
		Flags: ICMPEchoRequest, Proto: ProtoICMP}
	frame := in.MarshalFrame()
	if len(frame) != EthernetHeaderLen+IPv4HeaderLen+ICMPHeaderLen {
		t.Fatalf("icmp frame length %d", len(frame))
	}
	var got Probe
	if err := got.UnmarshalFrame(frame); err != nil {
		t.Fatal(err)
	}
	if got.Proto != ProtoICMP || got.Flags != ICMPEchoRequest ||
		got.SrcPort != 777 || got.Seq != 42 {
		t.Fatalf("icmp round trip: %+v", got)
	}
	if got.IsSYN() {
		t.Fatal("icmp probe classified as SYN")
	}
}

func TestUDPCodec(t *testing.T) {
	u := UDP{SrcPort: 9, DstPort: 53}
	b := u.AppendTo(nil, 1, 2, []byte{0xde, 0xad})
	if len(b) != UDPHeaderLen+2 {
		t.Fatalf("length %d", len(b))
	}
	var got UDP
	if err := got.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 9 || got.DstPort != 53 || got.Length != 10 || got.Checksum == 0 {
		t.Fatalf("udp decode: %+v", got)
	}
	if err := got.DecodeFromBytes(b[:7]); err != ErrTruncated {
		t.Fatalf("short udp: %v", err)
	}
}

func TestICMPCodec(t *testing.T) {
	e := ICMPEcho{Type: ICMPEchoRequest, ID: 11, Seq: 22}
	b := e.AppendTo(nil)
	// The encoded header must checksum to zero.
	if Checksum(b) != 0 {
		t.Fatal("icmp checksum invalid")
	}
	var got ICMPEcho
	if err := got.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if got.Type != ICMPEchoRequest || got.ID != 11 || got.Seq != 22 {
		t.Fatalf("icmp decode: %+v", got)
	}
	if err := got.DecodeFromBytes(b[:5]); err != ErrTruncated {
		t.Fatalf("short icmp: %v", err)
	}
}

func TestProbeBinaryRoundTripQuick(t *testing.T) {
	f := func(tm int64, src, dst, seq, ack uint32, sp, dp, ipid, win uint16, ttl, flags uint8) bool {
		p := Probe{
			Time: tm, Src: src, Dst: dst, SrcPort: sp, DstPort: dp,
			Seq: seq, Ack: ack, IPID: ipid, TTL: ttl, Flags: flags, Window: win,
		}
		b := p.AppendBinary(nil)
		if len(b) != BinaryLen() {
			return false
		}
		var got Probe
		if err := got.DecodeBinary(b); err != nil {
			return false
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProbeBinaryTruncated(t *testing.T) {
	var p Probe
	if err := p.DecodeBinary(make([]byte, BinaryLen()-1)); err != ErrTruncated {
		t.Fatalf("got %v", err)
	}
}

func TestProbeString(t *testing.T) {
	p := Probe{Src: 0x01020304, Dst: 0x05060708, SrcPort: 1000, DstPort: 80, Flags: FlagSYN}
	s := p.String()
	if s == "" || len(s) < 20 {
		t.Fatalf("String() = %q", s)
	}
}

func BenchmarkProbeMarshalFrame(b *testing.B) {
	p := Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Flags: FlagSYN}
	buf := make([]byte, 0, FrameLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.AppendFrame(buf[:0])
	}
}

func BenchmarkProbeUnmarshalFrame(b *testing.B) {
	frame := (&Probe{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Flags: FlagSYN}).MarshalFrame()
	var p Probe
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.UnmarshalFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func TestServiceName(t *testing.T) {
	cases := map[uint16]string{
		22:    "ssh",
		80:    "http",
		443:   "https",
		2323:  "telnet-alt",
		3389:  "rdp",
		8545:  "json-rpc",
		12345: "",
	}
	for port, want := range cases {
		if got := ServiceName(port); got != want {
			t.Errorf("ServiceName(%d) = %q, want %q", port, got, want)
		}
	}
}
