package packet

import (
	"testing"

	"github.com/synscan/synscan/internal/alloctest"
)

// TestAllocBudgetDecode is the enforced budget for the frame-decode hot
// path: a warmed Decoder must perform zero heap allocations per corpus pass
// — payload frames, transport variants and damaged input included. The
// budget is reported under "decode" (see internal/alloctest).
func TestAllocBudgetDecode(t *testing.T) {
	var d Decoder
	var p Probe
	corpus := decoderCorpus()
	alloctest.Check(t, "decode", 0, func() {
		for _, frame := range corpus {
			_ = d.Decode(frame, &p)
		}
	})
}
