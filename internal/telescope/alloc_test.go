package telescope

import (
	"testing"

	"github.com/synscan/synscan/internal/alloctest"
	"github.com/synscan/synscan/internal/packet"
)

// TestAllocBudgetObserve is the enforced budget for telescope ingress:
// membership (binary search), SYN filtering, port policy and outage windows
// are all allocation-free, for accepted and dropped packets alike. Reported
// under "telescope-observe".
func TestAllocBudgetObserve(t *testing.T) {
	tel := small(t)
	tel.BlockPort(23)
	tel.AddOutage(5000, 6000)
	probes := []packet.Probe{
		{Time: 1, Dst: tel.At(0), DstPort: 80, Flags: packet.FlagSYN},
		{Time: 2, Dst: tel.At(tel.Size() - 1), DstPort: 443, Flags: packet.FlagSYN},
		{Time: 3, Dst: 0x01010101, DstPort: 80, Flags: packet.FlagSYN},
		{Time: 4, Dst: tel.At(1), DstPort: 23, Flags: packet.FlagSYN},
		{Time: 5500, Dst: tel.At(2), DstPort: 80, Flags: packet.FlagSYN},
		{Time: 6, Dst: tel.At(3), DstPort: 80, Flags: packet.FlagACK},
		{Time: 7, Dst: tel.At(4), DstPort: 53, Proto: packet.ProtoUDP},
		{Time: -1, Dst: tel.At(5), DstPort: 80, Flags: packet.FlagSYN},
	}
	alloctest.Check(t, "telescope-observe", 0, func() {
		for i := range probes {
			_ = tel.Observe(&probes[i])
		}
	})
}
