package telescope

import (
	"testing"

	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
)

// TestObserveMetricsMirrorStats: with a registry attached, the obs counters
// must agree exactly with the Stats struct over a mixed packet diet.
func TestObserveMetricsMirrorStats(t *testing.T) {
	tel, err := New(ScaledConfig(1, 2048))
	if err != nil {
		t.Fatal(err)
	}
	tel.BlockPort(23)
	// ScaledConfig gates the port policy on PolicyEpoch; run the diet after it.
	base := PolicyEpoch
	tel.AddOutage(base+5000, base+6000)
	reg := obs.NewRegistry()
	tel.SetMetrics(reg)

	monitored := tel.At(0)
	probes := []packet.Probe{
		{Time: base + 1, Dst: monitored, DstPort: 80, Flags: packet.FlagSYN},                  // accepted
		{Time: base + 2, Dst: monitored, DstPort: 23, Flags: packet.FlagSYN},                  // policy
		{Time: base + 3, Dst: 1, DstPort: 80, Flags: packet.FlagSYN},                          // not monitored
		{Time: base + 4, Dst: monitored, DstPort: 80, Flags: packet.FlagSYN | packet.FlagACK}, // not SYN
		{Time: base + 5500, Dst: monitored, DstPort: 80, Flags: packet.FlagSYN},               // outage
		{Time: -7, Dst: monitored, DstPort: 80, Flags: packet.FlagSYN},                        // bad time
	}
	for i := range probes {
		tel.Observe(&probes[i])
	}

	st := tel.Stats()
	s := reg.Snapshot()
	for name, want := range map[string]uint64{
		"telescope.packets.accepted":   st.Accepted,
		"telescope.drop.policy":        st.Policy,
		"telescope.drop.not_monitored": st.NotMonitored,
		"telescope.drop.not_syn":       st.NotSYN,
		"telescope.drop.not_tcp":       st.NotTCP,
		"telescope.drop.outage":        st.Outage,
		"telescope.drop.bad_time":      st.BadTime,
	} {
		if got := s.Counter(name); got != want {
			t.Fatalf("%s = %d, want %d (stats %+v)", name, got, want, st)
		}
	}
	if st.Accepted != 1 || st.Policy != 1 || st.NotMonitored != 1 || st.NotSYN != 1 || st.Outage != 1 || st.BadTime != 1 {
		t.Fatalf("unexpected stats mix: %+v", st)
	}

	// Detach: further packets must not move the counters.
	tel.SetMetrics(nil)
	tel.Observe(&probes[0])
	if got := reg.Snapshot().Counter("telescope.packets.accepted"); got != 1 {
		t.Fatalf("detached telescope still counting: %d", got)
	}
}
