// Package telescope models the measurement infrastructure of the paper: a
// network telescope assembled from partially populated address blocks whose
// unused addresses attract only backscatter and scanning traffic (§3.2).
//
// A Telescope owns three responsibilities:
//
//  1. membership — which addresses are monitored (the used addresses of the
//     partially populated blocks are invisible to the capture);
//  2. filtering — keep TCP packets with only the SYN flag set (the standard
//     practice for separating scans from backscatter) and enforce the
//     ingress policy that drops ports 23 and 445 after 2016;
//  3. accounting — per-reason drop counters and outage windows, so analyses
//     can report on exactly what the capture saw.
package telescope

import (
	"errors"
	"fmt"
	"sort"

	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
)

// PartialBlock is one address block routed to the telescope, of which only
// the unpopulated fraction is monitored.
type PartialBlock struct {
	// Prefix is the routed block.
	Prefix inetmodel.Prefix
	// MonitoredFraction in (0, 1] is the share of the block's addresses
	// that are unused and therefore monitored.
	MonitoredFraction float64
}

// Config describes a telescope deployment.
type Config struct {
	// Blocks are the routed blocks with their monitored fractions.
	Blocks []PartialBlock
	// Seed determines which specific addresses are monitored.
	Seed uint64
	// BlockedPorts are dropped at the network ingress (the operational
	// policy of §3.2: 23/TCP and 445/TCP since the advent of Mirai).
	BlockedPorts []uint16
	// PolicyFrom is the time (ns) the BlockedPorts policy took effect;
	// packets before it pass the port filter. Zero blocks unconditionally.
	PolicyFrom int64
}

// PolicyEpoch is when the §3.2 ingress policy was deployed: the operators
// started dropping 23/TCP and 445/TCP on 2017-01-01, after Mirai and
// WannaCry made those ports dominate the ingress volume.
const PolicyEpoch int64 = 1483228800000000000

// PaperConfig returns the deployment described in §3.2: three partially
// populated /16 blocks monitoring 71,536 addresses in total, with ports 23
// and 445 dropped at the ingress from PolicyEpoch on.
func PaperConfig(seed uint64) Config {
	return Config{
		Blocks: []PartialBlock{
			{Prefix: inetmodel.MustPrefix("203.10.0.0/16"), MonitoredFraction: 0.42},
			{Prefix: inetmodel.MustPrefix("198.51.0.0/16"), MonitoredFraction: 0.31},
			{Prefix: inetmodel.MustPrefix("131.180.0.0/16"), MonitoredFraction: 0.36155},
		},
		Seed:         seed,
		BlockedPorts: []uint16{23, 445},
		PolicyFrom:   PolicyEpoch,
	}
}

// ScaledConfig returns a telescope of roughly the given size spread over the
// same three blocks, for fast simulations. The per-block fractions keep the
// paper's relative proportions; a block cannot monitor more than all of its
// addresses, so fractions are clamped to 1 when approxSize exceeds what the
// paper's proportions can deliver (the result is then smaller than asked,
// bounded by the three blocks' total address count).
func ScaledConfig(seed uint64, approxSize int) Config {
	c := PaperConfig(seed)
	paperTotal := 0.0
	for _, b := range c.Blocks {
		paperTotal += b.MonitoredFraction * float64(b.Prefix.Size())
	}
	scale := float64(approxSize) / paperTotal
	for i := range c.Blocks {
		f := c.Blocks[i].MonitoredFraction * scale
		if f > 1 {
			f = 1
		}
		c.Blocks[i].MonitoredFraction = f
	}
	return c
}

// DropReason classifies why an arriving packet was not recorded.
type DropReason uint8

// Drop reasons.
const (
	Accepted DropReason = iota
	DropNotMonitored
	DropNotSYN
	DropPolicy
	DropOutage
	DropNotTCP
	DropBadTime
)

// String names the reason.
func (d DropReason) String() string {
	switch d {
	case Accepted:
		return "accepted"
	case DropNotMonitored:
		return "not-monitored"
	case DropNotSYN:
		return "not-syn"
	case DropPolicy:
		return "policy"
	case DropOutage:
		return "outage"
	case DropNotTCP:
		return "not-tcp"
	case DropBadTime:
		return "bad-time"
	default:
		return "invalid"
	}
}

// Stats counts the fate of arriving packets.
type Stats struct {
	Accepted     uint64
	NotMonitored uint64
	NotSYN       uint64
	NotTCP       uint64
	Policy       uint64
	Outage       uint64
	BadTime      uint64
}

// Total returns the number of packets that arrived.
func (s Stats) Total() uint64 {
	return s.Accepted + s.NotMonitored + s.NotSYN + s.NotTCP + s.Policy + s.Outage + s.BadTime
}

type outage struct{ from, to int64 }

// Telescope is a configured deployment. It is safe for concurrent reads
// (Contains/At/Size) but Observe mutates counters and must be serialized.
type Telescope struct {
	addrs      []uint32 // sorted monitored addresses
	blocked    [1024]uint64
	policyFrom int64
	outages    []outage
	stats      Stats
	met        *telMetrics // nil when metrics are disabled
}

// telMetrics mirrors Stats into an observability registry so the ingress
// drop mix is scrapeable mid-capture (the Stats struct itself is only
// safely readable between Observe calls).
type telMetrics struct {
	accepted     *obs.Counter
	notMonitored *obs.Counter
	notSYN       *obs.Counter
	notTCP       *obs.Counter
	policy       *obs.Counter
	outage       *obs.Counter
	badTime      *obs.Counter
}

// SetMetrics attaches an observability registry: Observe reports the
// accept/drop mix under telescope.packets.accepted and telescope.drop.*
// alongside the Stats counters. A nil registry detaches.
func (t *Telescope) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		t.met = nil
		return
	}
	t.met = &telMetrics{
		accepted:     reg.Counter("telescope.packets.accepted"),
		notMonitored: reg.Counter("telescope.drop.not_monitored"),
		notSYN:       reg.Counter("telescope.drop.not_syn"),
		notTCP:       reg.Counter("telescope.drop.not_tcp"),
		policy:       reg.Counter("telescope.drop.policy"),
		outage:       reg.Counter("telescope.drop.outage"),
		badTime:      reg.Counter("telescope.drop.bad_time"),
	}
}

// New builds the telescope for cfg, materializing the monitored address set
// deterministically from the seed.
func New(cfg Config) (*Telescope, error) {
	if len(cfg.Blocks) == 0 {
		return nil, errors.New("telescope: no blocks configured")
	}
	t := &Telescope{}
	r := rng.New(cfg.Seed).Derive("telescope/membership")
	for _, b := range cfg.Blocks {
		if b.MonitoredFraction <= 0 || b.MonitoredFraction > 1 {
			return nil, fmt.Errorf("telescope: block %v fraction %v out of (0,1]", b.Prefix, b.MonitoredFraction)
		}
		size := b.Prefix.Size()
		// Choose round(fraction*size) distinct offsets via a keyed
		// permutation: deterministic, and exactly the requested count.
		n := uint64(b.MonitoredFraction*float64(size) + 0.5)
		if n == 0 {
			n = 1
		}
		perm := rng.NewFeistelPerm(size, r.Derive(b.Prefix.String()))
		for i := uint64(0); i < n; i++ {
			t.addrs = append(t.addrs, b.Prefix.Nth(perm.Apply(i)))
		}
	}
	sort.Slice(t.addrs, func(i, j int) bool { return t.addrs[i] < t.addrs[j] })
	for _, p := range cfg.BlockedPorts {
		t.blockPort(p)
	}
	t.policyFrom = cfg.PolicyFrom
	return t, nil
}

func (t *Telescope) blockPort(p uint16) { t.blocked[p>>6] |= 1 << (p & 63) }

// BlockPort adds a port to the ingress drop policy.
func (t *Telescope) BlockPort(p uint16) { t.blockPort(p) }

// PortBlocked reports whether the ingress policy drops the port.
func (t *Telescope) PortBlocked(p uint16) bool {
	return t.blocked[p>>6]&(1<<(p&63)) != 0
}

// AddOutage registers a [from, to) window during which the telescope
// recorded nothing (server failures, routing withdrawals — §3.2).
func (t *Telescope) AddOutage(from, to int64) {
	if to > from {
		t.outages = append(t.outages, outage{from, to})
	}
}

// Size returns the number of monitored addresses.
func (t *Telescope) Size() int { return len(t.addrs) }

// At returns the i-th monitored address in ascending order.
func (t *Telescope) At(i int) uint32 { return t.addrs[i] }

// Contains reports whether ip is monitored.
func (t *Telescope) Contains(ip uint32) bool {
	i := sort.Search(len(t.addrs), func(j int) bool { return t.addrs[j] >= ip })
	return i < len(t.addrs) && t.addrs[i] == ip
}

// Observe applies membership, SYN filtering, ingress policy and outage
// windows to one arriving packet, updates the counters, and returns whether
// the packet enters the dataset. It is Check followed by Record.
func (t *Telescope) Observe(p *packet.Probe) DropReason {
	r := t.Check(p)
	t.Record(r)
	return r
}

// Check classifies one arriving packet without touching any counter: pure
// membership, SYN filtering, ingress policy and outage-window evaluation.
// The reactive responder uses it to form its own verdict (a non-SYN on a
// live handshake is accepted there) before accounting via Record.
func (t *Telescope) Check(p *packet.Probe) DropReason {
	// A negative timestamp cannot come from the capture infrastructure: it is
	// the signature of a record damaged upstream (and decoded anyway by a
	// resyncing reader — a corrupted flowlog delta can walk the decoded clock
	// below zero). Dropping it here keeps garbage out of the time-bucketed
	// analyses instead of crediting traffic to before the epoch.
	if p.Time < 0 {
		return DropBadTime
	}
	for _, o := range t.outages {
		if p.Time >= o.from && p.Time < o.to {
			return DropOutage
		}
	}
	if t.PortBlocked(p.DstPort) && p.Time >= t.policyFrom {
		return DropPolicy
	}
	if !t.Contains(p.Dst) {
		return DropNotMonitored
	}
	if !p.IsTCP() {
		return DropNotTCP
	}
	if !p.IsSYN() {
		return DropNotSYN
	}
	return Accepted
}

// Record accounts one packet's fate in the stats and metrics. Split from
// Check so a wrapping responder can re-classify a packet (e.g. accept a
// phase-two ACK the passive filter would drop) and still keep the ingress
// counters truthful.
func (t *Telescope) Record(r DropReason) {
	switch r {
	case Accepted:
		t.stats.Accepted++
		if t.met != nil {
			t.met.accepted.Inc()
		}
	case DropNotMonitored:
		t.stats.NotMonitored++
		if t.met != nil {
			t.met.notMonitored.Inc()
		}
	case DropNotSYN:
		t.stats.NotSYN++
		if t.met != nil {
			t.met.notSYN.Inc()
		}
	case DropPolicy:
		t.stats.Policy++
		if t.met != nil {
			t.met.policy.Inc()
		}
	case DropOutage:
		t.stats.Outage++
		if t.met != nil {
			t.met.outage.Inc()
		}
	case DropNotTCP:
		t.stats.NotTCP++
		if t.met != nil {
			t.met.notTCP.Inc()
		}
	case DropBadTime:
		t.stats.BadTime++
		if t.met != nil {
			t.met.badTime.Inc()
		}
	}
}

// Stats returns a copy of the counters.
func (t *Telescope) Stats() Stats { return t.stats }
