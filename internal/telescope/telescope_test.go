package telescope

import (
	"testing"

	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/packet"
)

func small(t *testing.T) *Telescope {
	t.Helper()
	tel, err := New(Config{
		Blocks: []PartialBlock{
			{Prefix: inetmodel.MustPrefix("10.1.0.0/20"), MonitoredFraction: 0.5},
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tel
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no blocks should error")
	}
	bad := Config{Blocks: []PartialBlock{{Prefix: inetmodel.MustPrefix("10.0.0.0/24"), MonitoredFraction: 1.5}}}
	if _, err := New(bad); err == nil {
		t.Fatal("fraction > 1 should error")
	}
	bad.Blocks[0].MonitoredFraction = 0
	if _, err := New(bad); err == nil {
		t.Fatal("fraction 0 should error")
	}
}

func TestMembershipExactCount(t *testing.T) {
	tel := small(t)
	if got, want := tel.Size(), 2048; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	// Every monitored address is inside the block, sorted, unique.
	prefix := inetmodel.MustPrefix("10.1.0.0/20")
	var prev uint32
	for i := 0; i < tel.Size(); i++ {
		a := tel.At(i)
		if !prefix.Contains(a) {
			t.Fatalf("address %s outside block", packet.FormatIPv4(a))
		}
		if i > 0 && a <= prev {
			t.Fatal("addresses not strictly ascending")
		}
		prev = a
		if !tel.Contains(a) {
			t.Fatal("Contains(At(i)) must hold")
		}
	}
	if tel.Contains(0x0B000000) {
		t.Fatal("address outside all blocks reported monitored")
	}
}

func TestMembershipDeterministic(t *testing.T) {
	cfg := Config{
		Blocks: []PartialBlock{{Prefix: inetmodel.MustPrefix("10.9.0.0/22"), MonitoredFraction: 0.3}},
		Seed:   7,
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() {
		t.Fatal("sizes differ")
	}
	for i := 0; i < a.Size(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatal("membership differs for same seed")
		}
	}
}

func TestPaperConfigSize(t *testing.T) {
	tel, err := New(PaperConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// §3.2: on average 71,536 unrouted addresses monitored.
	if got := tel.Size(); got != 71536 {
		t.Fatalf("paper telescope size = %d, want 71536", got)
	}
}

func TestScaledConfig(t *testing.T) {
	tel, err := New(ScaledConfig(1, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if got := tel.Size(); got < 4090 || got > 4102 {
		t.Fatalf("scaled size = %d, want ~4096", got)
	}
}

// TestScaledConfigClampsFractions: asking for more addresses than the
// paper's proportions can deliver must clamp every block's fraction into
// the documented (0, 1] contract instead of producing fractions > 1 that
// New rejects (pre-fix, any approxSize above ~196k broke the constructor).
func TestScaledConfigClampsFractions(t *testing.T) {
	// Three /16 blocks hold at most 3*65536 addresses; ask for far more.
	cfg := ScaledConfig(1, 1<<20)
	total := 0.0
	for _, b := range cfg.Blocks {
		if b.MonitoredFraction <= 0 || b.MonitoredFraction > 1 {
			t.Fatalf("block %v fraction %v out of (0,1]", b.Prefix, b.MonitoredFraction)
		}
		total += b.MonitoredFraction * float64(b.Prefix.Size())
	}
	tel, err := New(cfg)
	if err != nil {
		t.Fatalf("over-scaled config must stay constructible: %v", err)
	}
	// Saturated: every block fully monitored.
	if want := 3 * 65536; tel.Size() != want {
		t.Fatalf("saturated size = %d, want %d", tel.Size(), want)
	}
	// Moderate over-scaling clamps only the blocks that overflow.
	cfg = ScaledConfig(1, 150000)
	for _, b := range cfg.Blocks {
		if b.MonitoredFraction <= 0 || b.MonitoredFraction > 1 {
			t.Fatalf("block %v fraction %v out of (0,1]", b.Prefix, b.MonitoredFraction)
		}
	}
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestObserveFiltering(t *testing.T) {
	tel := small(t)
	tel.BlockPort(23)
	monitored := tel.At(0)

	cases := []struct {
		name  string
		probe packet.Probe
		want  DropReason
	}{
		{"accepted", packet.Probe{Dst: monitored, DstPort: 80, Flags: packet.FlagSYN}, Accepted},
		{"outside", packet.Probe{Dst: 0x0B000000, DstPort: 80, Flags: packet.FlagSYN}, DropNotMonitored},
		{"synack", packet.Probe{Dst: monitored, DstPort: 80, Flags: packet.FlagSYN | packet.FlagACK}, DropNotSYN},
		{"rst", packet.Probe{Dst: monitored, DstPort: 80, Flags: packet.FlagRST}, DropNotSYN},
		{"policy", packet.Probe{Dst: monitored, DstPort: 23, Flags: packet.FlagSYN}, DropPolicy},
		{"bad-time", packet.Probe{Time: -1, Dst: monitored, DstPort: 80, Flags: packet.FlagSYN}, DropBadTime},
	}
	for _, c := range cases {
		p := c.probe
		if got := tel.Observe(&p); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
	s := tel.Stats()
	if s.Accepted != 1 || s.NotMonitored != 1 || s.NotSYN != 2 || s.Policy != 1 || s.BadTime != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.Total() != 6 {
		t.Fatalf("Total = %d", s.Total())
	}
}

func TestObserveOutage(t *testing.T) {
	tel := small(t)
	tel.AddOutage(100, 200)
	tel.AddOutage(200, 100) // inverted: ignored
	monitored := tel.At(0)
	p := packet.Probe{Time: 150, Dst: monitored, DstPort: 80, Flags: packet.FlagSYN}
	if got := tel.Observe(&p); got != DropOutage {
		t.Fatalf("in-outage packet: %v", got)
	}
	p.Time = 200 // boundary: outage is [from, to)
	if got := tel.Observe(&p); got != Accepted {
		t.Fatalf("post-outage packet: %v", got)
	}
	if s := tel.Stats(); s.Outage != 1 {
		t.Fatalf("outage count %d", s.Outage)
	}
}

func TestPortBlockedViaConfig(t *testing.T) {
	tel, err := New(Config{
		Blocks:       []PartialBlock{{Prefix: inetmodel.MustPrefix("10.0.0.0/24"), MonitoredFraction: 1}},
		Seed:         1,
		BlockedPorts: []uint16{23, 445},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tel.PortBlocked(23) || !tel.PortBlocked(445) || tel.PortBlocked(80) {
		t.Fatal("blocked-port set wrong")
	}
}

// TestPaperConfigIngressPolicy: PaperConfig must carry the §3.2 ingress
// policy — ports 23 and 445 dropped from PolicyEpoch (2017-01-01) on, and
// *only* from then on. Before the fix the constructor left BlockedPorts
// empty, so paper-config telescopes never enforced the policy at all.
func TestPaperConfigIngressPolicy(t *testing.T) {
	cfg := PaperConfig(3)
	if len(cfg.BlockedPorts) == 0 || cfg.PolicyFrom != PolicyEpoch {
		t.Fatalf("PaperConfig lacks the ingress policy: %+v", cfg)
	}
	tel, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	monitored := tel.At(0)
	probe := func(ts int64, port uint16) packet.Probe {
		return packet.Probe{Time: ts, Dst: monitored, DstPort: port, Flags: packet.FlagSYN}
	}
	cases := []struct {
		name string
		p    packet.Probe
		want DropReason
	}{
		{"telnet-2015", probe(PolicyEpoch-2*365*24*3600*1e9, 23), Accepted},
		{"smb-pre-epoch", probe(PolicyEpoch-1, 445), Accepted},
		{"telnet-at-epoch", probe(PolicyEpoch, 23), DropPolicy},
		{"smb-2018", probe(PolicyEpoch+365*24*3600*1e9, 445), DropPolicy},
		{"http-2018", probe(PolicyEpoch+365*24*3600*1e9, 80), Accepted},
	}
	for _, c := range cases {
		p := c.p
		if got := tel.Observe(&p); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
	if s := tel.Stats(); s.Policy != 2 || s.Accepted != 3 {
		t.Fatalf("stats %+v", s)
	}
}

// TestCheckIsPure: Check must never move a counter; Observe = Check+Record.
func TestCheckIsPure(t *testing.T) {
	tel := small(t)
	p := packet.Probe{Dst: tel.At(0), DstPort: 80, Flags: packet.FlagSYN}
	for i := 0; i < 3; i++ {
		if got := tel.Check(&p); got != Accepted {
			t.Fatalf("Check = %v", got)
		}
	}
	if s := tel.Stats(); s.Total() != 0 {
		t.Fatalf("Check moved counters: %+v", s)
	}
	tel.Record(Accepted)
	if s := tel.Stats(); s.Accepted != 1 {
		t.Fatalf("Record missed: %+v", s)
	}
}

func TestDropReasonString(t *testing.T) {
	want := map[DropReason]string{
		Accepted: "accepted", DropNotMonitored: "not-monitored",
		DropNotSYN: "not-syn", DropPolicy: "policy", DropOutage: "outage",
		DropBadTime: "bad-time", DropReason(99): "invalid",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}

func TestFullBlockMonitored(t *testing.T) {
	tel, err := New(Config{
		Blocks: []PartialBlock{{Prefix: inetmodel.MustPrefix("192.0.2.0/24"), MonitoredFraction: 1}},
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tel.Size() != 256 {
		t.Fatalf("Size = %d", tel.Size())
	}
	for ip := uint32(0xC0000200); ip <= 0xC00002FF; ip++ {
		if !tel.Contains(ip) {
			t.Fatalf("fully monitored block missing %s", packet.FormatIPv4(ip))
		}
	}
}

func BenchmarkObserve(b *testing.B) {
	tel, err := New(ScaledConfig(1, 8192))
	if err != nil {
		b.Fatal(err)
	}
	p := packet.Probe{Dst: tel.At(100), DstPort: 80, Flags: packet.FlagSYN}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel.Observe(&p)
	}
}

func BenchmarkContains(b *testing.B) {
	tel, err := New(ScaledConfig(1, 65536))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel.Contains(uint32(i * 2654435761))
	}
}
