package flowlog

import (
	"bytes"
	"io"
	"testing"

	"github.com/synscan/synscan/internal/faultinject"
	"github.com/synscan/synscan/internal/packet"
)

// FuzzReader hardens the spool parser, in both fail-fast and resync modes:
// arbitrary bytes must never panic, valid prefixes must decode exactly the
// records they contain, and resync mode must always terminate with io.EOF
// rather than an error.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 4096)
	for i := 0; i < 5; i++ {
		p := packet.Probe{Time: int64(i) * 1e9, Src: uint32(i), Flags: packet.FlagSYN, Proto: 6}
		w.Write(&p)
	}
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:headerLen])
	f.Add(valid[:len(valid)-5])
	corrupt := append([]byte{}, valid...)
	corrupt[4] = 99 // bad version
	f.Add(corrupt)
	// Seeded fault-injection corpora: scattered flips past the spool header,
	// and a corrupting-reader pass over the whole stream.
	for seed := uint64(1); seed <= 3; seed++ {
		flipped := append([]byte{}, valid...)
		faultinject.FlipBytes(flipped, seed, 3*int(seed), headerLen, 0)
		f.Add(flipped)
		noisy, err := io.ReadAll(faultinject.NewReader(bytes.NewReader(valid), faultinject.ReaderConfig{
			Seed: seed, CorruptRate: 0.02 * float64(seed), CorruptStart: headerLen,
		}))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(noisy)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, opts := range [][]ReaderOption{nil, {WithResync()}} {
			r, err := NewReader(bytes.NewReader(data), opts...)
			if err != nil {
				continue
			}
			var p packet.Probe
			for i := 0; i < 10000; i++ {
				err := r.Next(&p)
				if err == io.EOF {
					break
				}
				if err != nil {
					if len(opts) > 0 {
						t.Fatalf("resync reader surfaced %v", err)
					}
					break // parse error in fail-fast mode: fine
				}
			}
		}
	})
}
