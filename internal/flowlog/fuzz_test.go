package flowlog

import (
	"bytes"
	"io"
	"testing"

	"github.com/synscan/synscan/internal/packet"
)

// FuzzReader hardens the spool parser: arbitrary bytes must never panic,
// and valid prefixes must decode exactly the records they contain.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 4096)
	for i := 0; i < 5; i++ {
		p := packet.Probe{Time: int64(i) * 1e9, Src: uint32(i), Flags: packet.FlagSYN}
		w.Write(&p)
	}
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:headerLen])
	f.Add(valid[:len(valid)-5])
	corrupt := append([]byte{}, valid...)
	corrupt[4] = 99 // bad version
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var p packet.Probe
		for i := 0; i < 10000; i++ {
			if err := r.Next(&p); err != nil {
				if err == io.EOF {
					return
				}
				return // parse error: fine
			}
		}
	})
}
