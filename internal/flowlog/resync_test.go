package flowlog

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
)

// resyncSpool writes n millisecond-spaced TCP probes starting in 2020 and
// returns the stream plus each record's file offset.
func resyncSpool(t *testing.T, n int) ([]byte, []int, []packet.Probe) {
	t.Helper()
	const base = int64(1577836800) * 1e9 // 2020-01-01 UTC, ns
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 4096)
	if err != nil {
		t.Fatal(err)
	}
	offsets := make([]int, n)
	probes := make([]packet.Probe, n)
	for i := 0; i < n; i++ {
		if err := w.Flush(); err != nil { // expose the true offset through the bufio layer
			t.Fatal(err)
		}
		offsets[i] = buf.Len()
		probes[i] = packet.Probe{
			Time: base + int64(i)*1e6, Src: 0xC0A80000 + uint32(i), Dst: uint32(i),
			SrcPort: 40000, DstPort: 23, Seq: uint32(i) * 7, TTL: 64,
			Flags: packet.FlagSYN, Window: 1024, Proto: 6,
		}
		if err := w.Write(&probes[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), offsets, probes
}

// TestResyncOverflowVarint: a record whose timestamp varint is smashed into
// an overflow is skipped; the stream re-anchors on the next record and every
// later probe still decodes (timestamps shifted by the lost delta, the
// documented delta-encoding consequence).
func TestResyncOverflowVarint(t *testing.T) {
	data, offsets, probes := resyncSpool(t, 50)
	bad := append([]byte{}, data...)
	for i := 0; i < 10; i++ {
		bad[offsets[10]+i] = 0xff
	}

	rd, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	var p packet.Probe
	var lastErr error
	for lastErr == nil {
		lastErr = rd.Next(&p)
	}
	if lastErr == io.EOF || !errors.Is(lastErr, errOverflow) {
		t.Fatalf("default reader: got %v, want overflow error", lastErr)
	}

	reg := obs.NewRegistry()
	rd2, err := NewReader(bytes.NewReader(bad), WithResync())
	if err != nil {
		t.Fatal(err)
	}
	rd2.SetMetrics(reg)
	var got []packet.Probe
	for {
		var q packet.Probe
		if err := rd2.Next(&q); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("resync reader errored: %v", err)
		}
		got = append(got, q)
	}
	if len(got) != 49 {
		t.Fatalf("recovered %d probes, want 49 (all but the smashed one)", len(got))
	}
	// Record 10's delta was lost with the record, so every probe after the
	// gap sits one delta (1 ms) early.
	for i, q := range got {
		want := probes[i]
		if i >= 10 {
			want = probes[i+1]
			want.Time -= 1e6
		}
		if !reflect.DeepEqual(q, want) {
			t.Fatalf("probe %d:\n got %+v\nwant %+v", i, q, want)
		}
	}
	if rd2.Resyncs() != 1 || rd2.SkippedBytes() == 0 {
		t.Fatalf("Resyncs = %d, SkippedBytes = %d", rd2.Resyncs(), rd2.SkippedBytes())
	}
	snap := reg.Snapshot()
	if snap.Counter("faults.flowlog.resyncs") != 1 ||
		snap.Counter("faults.flowlog.skipped_bytes") != rd2.SkippedBytes() {
		t.Fatalf("metrics disagree: resyncs %d skipped %d",
			snap.Counter("faults.flowlog.resyncs"), snap.Counter("faults.flowlog.skipped_bytes"))
	}
}

// TestResyncImplausibleDelta: a corrupted timestamp that still decodes as a
// varint but jumps decades is treated as damage, not data.
func TestResyncImplausibleDelta(t *testing.T) {
	data, offsets, _ := resyncSpool(t, 20)
	bad := append([]byte{}, data...)
	// Rewrite record 5's delta varint (3 bytes at default spacing) into a
	// maximal 10-byte varint the bounds check must reject. That grows the
	// record, so splice instead of overwrite.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	rec := bad[offsets[5]:offsets[6]]
	spliced := append(append(append([]byte{}, bad[:offsets[5]]...), huge...), rec[len(rec)-recordBodyLen:]...)
	spliced = append(spliced, bad[offsets[6]:]...)

	rd, err := NewReader(bytes.NewReader(spliced), WithResync())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var p packet.Probe
	for {
		if err := rd.Next(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("resync reader errored: %v", err)
		}
		n++
	}
	if rd.Resyncs() == 0 {
		t.Fatal("implausible delta did not trigger a resync")
	}
	if n < 18 {
		t.Fatalf("recovered only %d of 20 probes", n)
	}
}

// TestResyncTruncatedTail: a record cut off at end of stream ends a resync
// reader with clean io.EOF; the default reader surfaces io.ErrUnexpectedEOF.
func TestResyncTruncatedTail(t *testing.T) {
	data, offsets, _ := resyncSpool(t, 5)
	cut := data[:offsets[4]+5] // mid-record

	rd, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	var p packet.Probe
	var lastErr error
	for lastErr == nil {
		lastErr = rd.Next(&p)
	}
	if !errors.Is(lastErr, io.ErrUnexpectedEOF) {
		t.Fatalf("default reader: got %v, want io.ErrUnexpectedEOF", lastErr)
	}

	rd2, err := NewReader(bytes.NewReader(cut), WithResync())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if err := rd2.Next(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("resync reader errored: %v", err)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("read %d probes before the truncated tail, want 4", n)
	}
	if rd2.SkippedBytes() != 5 {
		t.Fatalf("SkippedBytes = %d, want 5", rd2.SkippedBytes())
	}
}
