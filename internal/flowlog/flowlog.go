// Package flowlog implements a compact append-only spool format for probe
// streams. Telescope operators re-analyze captures constantly; full pcap
// frames carry link/network framing and checksums the analyses never read.
// A flowlog record stores exactly the Probe tuple, with the timestamp
// encoded as a zigzag varint delta from the previous record — about 30
// bytes per probe against pcap's 70, and parsing is a flat copy instead of
// a three-layer decode.
//
// Format:
//
//	header:  magic "SYNL" | version u8 | reserved u8 | telescopeSize u32 (BE)
//	record:  uvarint(zigzag(time delta ns)) | src u32 | dst u32 |
//	         srcPort u16 | dstPort u16 | seq u32 | ack u32 | ipid u16 |
//	         ttl u8 | flags u8 | window u16 | proto u8   (all BE)
package flowlog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/synscan/synscan/internal/packet"
)

// Magic identifies a flowlog stream.
var Magic = [4]byte{'S', 'Y', 'N', 'L'}

const (
	version       = 1
	headerLen     = 10
	recordBodyLen = 27
)

// Errors.
var (
	ErrBadMagic   = errors.New("flowlog: bad magic")
	ErrBadVersion = errors.New("flowlog: unsupported version")
)

var errOverflow = errors.New("varint overflows 64 bits")

// Writer appends probes to a spool.
type Writer struct {
	w    *bufio.Writer
	last int64
	buf  [binary.MaxVarintLen64 + recordBodyLen]byte
	err  error
}

// NewWriter writes the header and returns a spool writer. telescopeSize is
// recorded so analyzers can extrapolate without out-of-band knowledge.
func NewWriter(w io.Writer, telescopeSize int) (*Writer, error) {
	var hdr [headerLen]byte
	copy(hdr[:4], Magic[:])
	hdr[4] = version
	binary.BigEndian.PutUint32(hdr[6:10], uint32(telescopeSize))
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// zigzag maps signed deltas to unsigned varint-friendly values.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write appends one probe. Records may carry any timestamps, but streams
// written in time order compress best.
func (w *Writer) Write(p *packet.Probe) error {
	if w.err != nil {
		return w.err
	}
	n := binary.PutUvarint(w.buf[:], zigzag(p.Time-w.last))
	w.last = p.Time
	b := w.buf[n : n+recordBodyLen]
	binary.BigEndian.PutUint32(b[0:4], p.Src)
	binary.BigEndian.PutUint32(b[4:8], p.Dst)
	binary.BigEndian.PutUint16(b[8:10], p.SrcPort)
	binary.BigEndian.PutUint16(b[10:12], p.DstPort)
	binary.BigEndian.PutUint32(b[12:16], p.Seq)
	binary.BigEndian.PutUint32(b[16:20], p.Ack)
	binary.BigEndian.PutUint16(b[20:22], p.IPID)
	b[22] = p.TTL
	b[23] = p.Flags
	binary.BigEndian.PutUint16(b[24:26], p.Window)
	b[26] = p.Proto
	if _, err := w.w.Write(w.buf[:n+recordBodyLen]); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Flush flushes buffered records.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader reads a spool.
type Reader struct {
	r       *bufio.Reader
	last    int64
	telSize int
	idx     uint64 // records decoded so far; names the record in errors
}

// NewReader validates the header and returns a spool reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("flowlog: header: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	if [4]byte(hdr[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if hdr[4] != version {
		return nil, ErrBadVersion
	}
	return &Reader{
		r:       br,
		telSize: int(binary.BigEndian.Uint32(hdr[6:10])),
	}, nil
}

// TelescopeSize returns the monitored-address count recorded in the header.
func (r *Reader) TelescopeSize() int { return r.telSize }

// readUvarint is binary.ReadUvarint with byte accounting: it additionally
// reports how many bytes it consumed, so the caller can tell a clean end of
// stream (EOF before any byte) from a record cut off mid-varint.
func (r *Reader) readUvarint() (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		c, err := r.r.ReadByte()
		if err != nil {
			return 0, i, err
		}
		if c < 0x80 {
			if i == binary.MaxVarintLen64-1 && c > 1 {
				return 0, i + 1, errOverflow
			}
			return x | uint64(c)<<s, i + 1, nil
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, binary.MaxVarintLen64, errOverflow
}

// Next decodes the next record into p. It returns io.EOF at a clean end of
// stream; a record cut off anywhere — even inside the leading timestamp
// varint — surfaces io.ErrUnexpectedEOF wrapped with the record's index.
func (r *Reader) Next(p *packet.Probe) error {
	delta, n, err := r.readUvarint()
	if err != nil {
		if err == io.EOF && n == 0 {
			return io.EOF
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("flowlog: record %d: truncated timestamp: %w", r.idx, io.ErrUnexpectedEOF)
		}
		return fmt.Errorf("flowlog: record %d: timestamp: %w", r.idx, err)
	}
	var b [recordBodyLen]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("flowlog: record %d: truncated record: %w", r.idx, io.ErrUnexpectedEOF)
		}
		return fmt.Errorf("flowlog: record %d: %w", r.idx, err)
	}
	r.last += unzigzag(delta)
	p.Time = r.last
	p.Src = binary.BigEndian.Uint32(b[0:4])
	p.Dst = binary.BigEndian.Uint32(b[4:8])
	p.SrcPort = binary.BigEndian.Uint16(b[8:10])
	p.DstPort = binary.BigEndian.Uint16(b[10:12])
	p.Seq = binary.BigEndian.Uint32(b[12:16])
	p.Ack = binary.BigEndian.Uint32(b[16:20])
	p.IPID = binary.BigEndian.Uint16(b[20:22])
	p.TTL = b[22]
	p.Flags = b[23]
	p.Window = binary.BigEndian.Uint16(b[24:26])
	p.Proto = b[26]
	r.idx++
	return nil
}
