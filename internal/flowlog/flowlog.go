// Package flowlog implements a compact append-only spool format for probe
// streams. Telescope operators re-analyze captures constantly; full pcap
// frames carry link/network framing and checksums the analyses never read.
// A flowlog record stores exactly the Probe tuple, with the timestamp
// encoded as a zigzag varint delta from the previous record — about 30
// bytes per probe against pcap's 70, and parsing is a flat copy instead of
// a three-layer decode.
//
// Format:
//
//	header:  magic "SYNL" | version u8 | reserved u8 | telescopeSize u32 (BE)
//	record:  uvarint(zigzag(time delta ns)) | src u32 | dst u32 |
//	         srcPort u16 | dstPort u16 | seq u32 | ack u32 | ipid u16 |
//	         ttl u8 | flags u8 | window u16 | proto u8   (all BE)
//
// Records are header-only: application payload bytes (the phase-two
// pushes a reactive telescope elicits) are not stored — the fixed record
// body has no room for them. Reactive captures that must preserve
// payloads for replay belong in pcap/pcapng, whose frames carry them.
package flowlog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
)

// Magic identifies a flowlog stream.
var Magic = [4]byte{'S', 'Y', 'N', 'L'}

const (
	version       = 1
	headerLen     = 10
	recordBodyLen = 27
	maxRecordLen  = binary.MaxVarintLen64 + recordBodyLen

	// maxResyncDeltaNS bounds a plausible inter-record timestamp delta
	// (~2 years) for WithResync readers. The first record's delta is
	// absolute time and exempt.
	maxResyncDeltaNS = 730 * 24 * 3600 * 1e9
)

// Errors.
var (
	ErrBadMagic   = errors.New("flowlog: bad magic")
	ErrBadVersion = errors.New("flowlog: unsupported version")
)

var errOverflow = errors.New("varint overflows 64 bits")

// Writer appends probes to a spool.
type Writer struct {
	w    *bufio.Writer
	last int64
	buf  [binary.MaxVarintLen64 + recordBodyLen]byte
	err  error
}

// NewWriter writes the header and returns a spool writer. telescopeSize is
// recorded so analyzers can extrapolate without out-of-band knowledge.
func NewWriter(w io.Writer, telescopeSize int) (*Writer, error) {
	var hdr [headerLen]byte
	copy(hdr[:4], Magic[:])
	hdr[4] = version
	binary.BigEndian.PutUint32(hdr[6:10], uint32(telescopeSize))
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// zigzag maps signed deltas to unsigned varint-friendly values.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write appends one probe. Records may carry any timestamps, but streams
// written in time order compress best.
func (w *Writer) Write(p *packet.Probe) error {
	if w.err != nil {
		return w.err
	}
	n := binary.PutUvarint(w.buf[:], zigzag(p.Time-w.last))
	w.last = p.Time
	b := w.buf[n : n+recordBodyLen]
	binary.BigEndian.PutUint32(b[0:4], p.Src)
	binary.BigEndian.PutUint32(b[4:8], p.Dst)
	binary.BigEndian.PutUint16(b[8:10], p.SrcPort)
	binary.BigEndian.PutUint16(b[10:12], p.DstPort)
	binary.BigEndian.PutUint32(b[12:16], p.Seq)
	binary.BigEndian.PutUint32(b[16:20], p.Ack)
	binary.BigEndian.PutUint16(b[20:22], p.IPID)
	b[22] = p.TTL
	b[23] = p.Flags
	binary.BigEndian.PutUint16(b[24:26], p.Window)
	b[26] = p.Proto
	if _, err := w.w.Write(w.buf[:n+recordBodyLen]); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Flush flushes buffered records.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader reads a spool.
type Reader struct {
	r       *bufio.Reader
	last    int64
	telSize int
	idx     uint64 // records decoded so far; names the record in errors

	resync   bool
	resyncs  uint64
	skipped  uint64
	mResyncs *obs.Counter
	mSkipped *obs.Counter
}

// ReaderOption configures a Reader.
type ReaderOption func(*Reader)

// WithResync makes the reader recover from in-stream corruption instead of
// failing: an overflowing timestamp varint or an implausible inter-record
// delta (beyond ±2 years) triggers a forward scan to the next offset that
// decodes as a plausible record (bounded delta, protocol byte in the set
// the writer emits), and a record cut off at end of stream is dropped with
// a clean io.EOF. Skipped spans are counted in Resyncs/SkippedBytes and the
// faults.flowlog.* metrics. Flowlog records carry no checksum, so damage
// confined to the fixed-width body decodes silently — resync bounds
// structural damage, it cannot prove integrity. And because timestamps are
// delta-encoded, records after a resynced gap inherit the last good
// record's clock and may sit offset by the skipped records' deltas.
func WithResync() ReaderOption {
	return func(r *Reader) { r.resync = true }
}

// NewReader validates the header and returns a spool reader.
func NewReader(r io.Reader, opts ...ReaderOption) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("flowlog: header: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	if [4]byte(hdr[:4]) != Magic {
		return nil, ErrBadMagic
	}
	if hdr[4] != version {
		return nil, ErrBadVersion
	}
	rd := &Reader{
		r:       br,
		telSize: int(binary.BigEndian.Uint32(hdr[6:10])),
	}
	for _, o := range opts {
		o(rd)
	}
	rd.SetMetrics(nil)
	return rd, nil
}

// TelescopeSize returns the monitored-address count recorded in the header.
func (r *Reader) TelescopeSize() int { return r.telSize }

// SetMetrics wires the reader's fault instrumentation (resyncs performed,
// bytes skipped while resyncing). A nil registry disables it.
func (r *Reader) SetMetrics(reg *obs.Registry) {
	r.mResyncs = reg.Counter("faults.flowlog.resyncs")
	r.mSkipped = reg.Counter("faults.flowlog.skipped_bytes")
}

// Resyncs returns how many corruption recoveries a WithResync reader has
// performed.
func (r *Reader) Resyncs() uint64 { return r.resyncs }

// SkippedBytes returns how many bytes a WithResync reader has discarded
// while scanning for record boundaries.
func (r *Reader) SkippedBytes() uint64 { return r.skipped }

// Next decodes the next record into p. It returns io.EOF at a clean end of
// stream; a record cut off anywhere — even inside the leading timestamp
// varint — surfaces io.ErrUnexpectedEOF wrapped with the record's index.
// A reader built WithResync skips corrupt spans instead of erroring; see
// WithResync.
func (r *Reader) Next(p *packet.Probe) error {
	for {
		buf, peekErr := r.r.Peek(maxRecordLen)
		if len(buf) == 0 {
			if peekErr == nil || peekErr == io.EOF {
				return io.EOF
			}
			return peekErr
		}
		delta, n := binary.Uvarint(buf)
		if n < 0 {
			if r.resync {
				if !r.resyncScan() {
					return io.EOF
				}
				continue
			}
			return fmt.Errorf("flowlog: record %d: timestamp: %w", r.idx, errOverflow)
		}
		if n == 0 || len(buf) < n+recordBodyLen {
			// Fewer bytes remain than one record needs.
			if peekErr != nil && peekErr != io.EOF {
				return fmt.Errorf("flowlog: record %d: %w", r.idx, peekErr)
			}
			if r.resync {
				d, _ := r.r.Discard(len(buf))
				r.addSkipped(d)
				return io.EOF
			}
			if n == 0 {
				return fmt.Errorf("flowlog: record %d: truncated timestamp: %w", r.idx, io.ErrUnexpectedEOF)
			}
			return fmt.Errorf("flowlog: record %d: truncated record: %w", r.idx, io.ErrUnexpectedEOF)
		}
		d := unzigzag(delta)
		if r.resync && r.idx > 0 && (d > maxResyncDeltaNS || d < -maxResyncDeltaNS) {
			if !r.resyncScan() {
				return io.EOF
			}
			continue
		}
		b := buf[n : n+recordBodyLen]
		r.last += d
		p.Time = r.last
		p.Src = binary.BigEndian.Uint32(b[0:4])
		p.Dst = binary.BigEndian.Uint32(b[4:8])
		p.SrcPort = binary.BigEndian.Uint16(b[8:10])
		p.DstPort = binary.BigEndian.Uint16(b[10:12])
		p.Seq = binary.BigEndian.Uint32(b[12:16])
		p.Ack = binary.BigEndian.Uint32(b[16:20])
		p.IPID = binary.BigEndian.Uint16(b[20:22])
		p.TTL = b[22]
		p.Flags = b[23]
		p.Window = binary.BigEndian.Uint16(b[24:26])
		p.Proto = b[26]
		if _, err := r.r.Discard(n + recordBodyLen); err != nil {
			return fmt.Errorf("flowlog: record %d: %w", r.idx, err)
		}
		r.idx++
		return nil
	}
}

// resyncScan advances the stream one byte at a time until an offset decodes
// as a plausible record, counting the span it skips. It reports false when
// the stream ends first (the remaining tail is consumed and counted).
func (r *Reader) resyncScan() bool {
	r.resyncs++
	r.mResyncs.Inc()
	skipped := 0
	for {
		n, _ := r.r.Discard(1)
		skipped += n
		if n == 0 {
			r.addSkipped(skipped)
			return false
		}
		buf, _ := r.r.Peek(maxRecordLen)
		if len(buf) == 0 {
			r.addSkipped(skipped)
			return false
		}
		if plausibleRecord(buf) {
			r.addSkipped(skipped)
			return true
		}
	}
}

// plausibleRecord reports whether buf starts with a believable record: a
// full record's worth of bytes, a bounded timestamp delta, and a protocol
// byte among ICMP/TCP/UDP. Zero-proto records are legal but are not used as
// anchors — zero bytes are far too common in record bodies to resync on.
func plausibleRecord(buf []byte) bool {
	delta, n := binary.Uvarint(buf)
	if n <= 0 || len(buf) < n+recordBodyLen {
		return false
	}
	if d := unzigzag(delta); d > maxResyncDeltaNS || d < -maxResyncDeltaNS {
		return false
	}
	switch buf[n+recordBodyLen-1] {
	case 1, 6, 17:
		return true
	}
	return false
}

func (r *Reader) addSkipped(n int) {
	r.skipped += uint64(n)
	r.mSkipped.Add(uint64(n))
}
