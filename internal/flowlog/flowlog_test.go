package flowlog

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/pcap"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 71536)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	pr := tools.NewMasscan(7, r)
	var in []packet.Probe
	tm := int64(0)
	for i := 0; i < 1000; i++ {
		p := pr.Probe(r.Uint32(), uint16(r.Intn(1000)))
		tm += int64(r.Intn(1e9))
		p.Time = tm
		in = append(in, p)
		if err := w.Write(&p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.TelescopeSize() != 71536 {
		t.Fatalf("telescope size = %d", rd.TelescopeSize())
	}
	var p packet.Probe
	for i := range in {
		if err := rd.Next(&p); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(p, in[i]) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, p, in[i])
		}
	}
	if err := rd.Next(&p); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(times []int64, src, dst, seq uint32, sp, dp uint16) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 100)
		if err != nil {
			return false
		}
		var in []packet.Probe
		for _, tm := range times {
			p := packet.Probe{Time: tm, Src: src, Dst: dst, Seq: seq,
				SrcPort: sp, DstPort: dp, Flags: packet.FlagSYN}
			in = append(in, p)
			if err := w.Write(&p); err != nil {
				return false
			}
		}
		w.Flush()
		rd, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var p packet.Probe
		for i := range in {
			if err := rd.Next(&p); err != nil || !reflect.DeepEqual(p, in[i]) {
				return false
			}
		}
		return rd.Next(&p) == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDeltas(t *testing.T) {
	// Out-of-order timestamps must round-trip (zigzag).
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 10)
	times := []int64{100, 50, -200, 1 << 62, 0}
	for _, tm := range times {
		p := packet.Probe{Time: tm}
		if err := w.Write(&p); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	rd, _ := NewReader(&buf)
	var p packet.Probe
	for i, want := range times {
		if err := rd.Next(&p); err != nil {
			t.Fatal(err)
		}
		if p.Time != want {
			t.Fatalf("record %d: time %d, want %d", i, p.Time, want)
		}
	}
}

func TestHeaderErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("short header accepted")
	}
	bad := append([]byte("XXXX"), make([]byte, 6)...)
	if _, err := NewReader(bytes.NewReader(bad)); err != ErrBadMagic {
		t.Fatalf("bad magic: %v", err)
	}
	badVer := append([]byte{}, Magic[:]...)
	badVer = append(badVer, 99, 0, 0, 0, 0, 0)
	if _, err := NewReader(bytes.NewReader(badVer)); err != ErrBadVersion {
		t.Fatalf("bad version: %v", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 10)
	p := packet.Probe{Time: 1e9, Src: 1}
	w.Write(&p)
	w.Flush()
	raw := buf.Bytes()
	rd, err := NewReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.Next(&p); err == nil {
		t.Fatal("truncated record accepted")
	}
}

// TestTruncationSurfacesUnexpectedEOF: a stream cut anywhere inside a
// record — including mid-varint in the leading timestamp, which a plain
// binary.ReadUvarint at the first byte would report as a clean io.EOF —
// must surface io.ErrUnexpectedEOF naming the truncated record. Only cuts
// exactly on a record boundary are a clean end of stream.
func TestTruncationSurfacesUnexpectedEOF(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := map[int]bool{}
	var ends []int
	for i := 0; i < 3; i++ {
		// Terabyte-scale deltas force multi-byte timestamp varints, so
		// mid-varint cut points exist for every record.
		p := packet.Probe{Time: int64(i+1) * 1e12, Src: uint32(i)}
		if err := w.Write(&p); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		boundaries[buf.Len()] = true
		ends = append(ends, buf.Len())
	}
	raw := buf.Bytes()

	drain := func(data []byte) (int, error) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return 0, err
		}
		var p packet.Probe
		for n := 0; ; n++ {
			if err := rd.Next(&p); err != nil {
				return n, err
			}
		}
	}

	for cut := headerLen + 1; cut < len(raw); cut++ {
		if boundaries[cut] {
			continue
		}
		if _, err := drain(raw[:cut]); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}

	// A cut one byte into the second record's timestamp varint names
	// record 1 in the error.
	if _, err := drain(raw[:ends[0]+1]); err == nil || !strings.Contains(err.Error(), "record 1") {
		t.Fatalf("mid-varint cut error %v, want it to name record 1", err)
	}

	// The intact stream still ends cleanly.
	if n, err := drain(raw); n != 3 || err != io.EOF {
		t.Fatalf("clean stream: %d records, %v; want 3, io.EOF", n, err)
	}
}

func TestSmallerThanPcap(t *testing.T) {
	// The headline claim: flowlog is much denser than pcap for the same
	// probe stream.
	r := rng.New(2)
	pr := tools.NewZMap(9, r)
	var fl, pc bytes.Buffer
	fw, _ := NewWriter(&fl, 4096)
	pw, _ := pcap.NewWriter(&pc)
	frame := make([]byte, 0, packet.FrameLen)
	tm := int64(0)
	for i := 0; i < 5000; i++ {
		p := pr.Probe(r.Uint32(), 443)
		tm += int64(r.Intn(1e8))
		p.Time = tm
		fw.Write(&p)
		frame = p.AppendFrame(frame[:0])
		pw.WritePacket(p.Time, frame)
	}
	fw.Flush()
	pw.Flush()
	ratio := float64(pc.Len()) / float64(fl.Len())
	if ratio < 2 {
		t.Fatalf("flowlog only %.2fx denser than pcap (%d vs %d bytes)",
			ratio, fl.Len(), pc.Len())
	}
}

func BenchmarkWrite(b *testing.B) {
	w, _ := NewWriter(io.Discard, 4096)
	p := packet.Probe{Time: 1, Src: 2, Dst: 3, Seq: 4, Flags: packet.FlagSYN}
	b.SetBytes(29)
	for i := 0; i < b.N; i++ {
		p.Time += 1e6
		if err := w.Write(&p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 4096)
	p := packet.Probe{Src: 2, Dst: 3, Seq: 4, Flags: packet.FlagSYN}
	const n = 100000
	for i := 0; i < n; i++ {
		p.Time += 1e6
		w.Write(&p)
	}
	w.Flush()
	raw := buf.Bytes()
	b.SetBytes(29)
	b.ResetTimer()
	var rd *Reader
	for i := 0; i < b.N; i++ {
		if i%n == 0 {
			var err error
			rd, err = NewReader(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
		}
		if err := rd.Next(&p); err != nil {
			b.Fatal(err)
		}
	}
}
