package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry names and owns a process's metrics. Metric accessors return the
// same instance for the same name, creating on first use, so independent
// pipeline stages wire themselves up without central declarations. A nil
// *Registry is the disabled mode: every accessor returns nil, which every
// metric type accepts, so instrumented code never branches on enablement.
//
// Naming convention: dot-separated lowercase path, unit suffix for
// histograms ("detector.merge_ns", "telescope.drop.policy").
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge evaluated lazily at snapshot time — for
// values that are cheap and safe to read from any goroutine (channel
// lengths, atomic loads) but wasteful to push on every change. fn must be
// race-free against the pipeline. Re-registering a name replaces it.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every metric's current value. Safe to call from any
// goroutine concurrently with metric updates; values across metrics are
// near-simultaneous, not a consistent cut. A nil registry yields the zero
// Snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFns {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a Registry's metrics, the unit of
// exposition: it marshals to JSON directly and renders as sorted text.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Counter returns a counter's value, 0 when absent.
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns a gauge's value, 0 when absent.
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// CountersWithPrefix returns every counter whose name starts with prefix,
// keyed by full name. The degraded-mode surfaces use it to roll up the
// "faults." family without enumerating each reader's metric; an empty
// prefix returns a copy of all counters.
func (s Snapshot) CountersWithPrefix(prefix string) map[string]uint64 {
	out := make(map[string]uint64)
	for name, v := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			out[name] = v
		}
	}
	return out
}

// WriteJSON writes the snapshot as one indented JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes one "name value" line per metric, sorted by name —
// histograms as "name count=N sum=S max=M p50=… p99=…". The format is
// stable line-per-metric for grepping and periodic stderr dumps.
func (s Snapshot) WriteText(w io.Writer) error {
	type line struct{ name, val string }
	var lines []line
	for name, v := range s.Counters {
		lines = append(lines, line{name, fmt.Sprint(v)})
	}
	for name, v := range s.Gauges {
		lines = append(lines, line{name, fmt.Sprint(v)})
	}
	for name, h := range s.Histograms {
		lines = append(lines, line{name, fmt.Sprintf(
			"count=%d sum=%d max=%d p50=%d p99=%d",
			h.Count, h.Sum, h.Max, h.Quantile(0.5), h.Quantile(0.99))})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%s %s\n", l.name, l.val); err != nil {
			return err
		}
	}
	return nil
}

// StartDump begins periodically writing text snapshots of reg to w until
// the returned stop function is called. A nil registry or non-positive
// interval yields a no-op stop. Used by the commands' -metrics-interval
// flag for a live stderr view of a long replay.
func StartDump(reg *Registry, w io.Writer, every time.Duration) (stop func()) {
	if reg == nil || every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				snap := reg.Snapshot()
				fmt.Fprintf(w, "--- metrics %s ---\n", time.Now().Format(time.RFC3339))
				snap.WriteText(w)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
