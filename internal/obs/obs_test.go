package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(7)
	sp := StartSpan(h)
	sp.End()
	Span{}.End()
}

// TestCounterConcurrent verifies no increments are lost across stripes.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Fatalf("Value = %d, want %d", got, goroutines*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

// TestHistogramBucketRoundTrip: every index's lower bound maps back to the
// same index, and observations land in buckets whose bounds contain them.
func TestHistogramBucketRoundTrip(t *testing.T) {
	for idx := 0; idx < histBuckets; idx++ {
		lo := histLowerBound(idx)
		if got := histIndex(uint64(lo)); got != idx {
			t.Fatalf("histIndex(lowerBound(%d)=%d) = %d", idx, lo, got)
		}
	}
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1<<40 + 12345} {
		idx := histIndex(uint64(v))
		lo := histLowerBound(idx)
		if lo > v {
			t.Fatalf("value %d below its bucket's lower bound %d", v, lo)
		}
		if idx+1 < histBuckets {
			if hi := histLowerBound(idx + 1); v >= hi {
				t.Fatalf("value %d at/above next bucket's lower bound %d", v, hi)
			}
		}
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	h.Observe(-5) // clamps to 0
	s := h.snapshot()
	if s.Count != 101 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.Max != 100 {
		t.Fatalf("Max = %d", s.Max)
	}
	if s.Sum != 5050 {
		t.Fatalf("Sum = %d", s.Sum)
	}
	if m := s.Mean(); m < 49 || m > 51 {
		t.Fatalf("Mean = %v", m)
	}
	// Median of 0,1..100 is 50; log-linear resolution is ~6%.
	if q := s.Quantile(0.5); q < 44 || q > 56 {
		t.Fatalf("p50 = %d, want ~50", q)
	}
	if q := s.Quantile(0); q != 0 {
		t.Fatalf("p0 = %d", q)
	}
	if q := s.Quantile(1); q < 90 {
		t.Fatalf("p100 = %d, want >= 90", q)
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return same counter")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name must return same gauge")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name must return same histogram")
	}
}

func TestCountersWithPrefix(t *testing.T) {
	r := NewRegistry()
	r.Counter("faults.archive.corrupt_blocks").Add(3)
	r.Counter("faults.pcap.resyncs").Add(2)
	r.Counter("telescope.drop.policy").Add(9)
	s := r.Snapshot()
	got := s.CountersWithPrefix("faults.")
	want := map[string]uint64{
		"faults.archive.corrupt_blocks": 3,
		"faults.pcap.resyncs":           2,
	}
	if len(got) != len(want) {
		t.Fatalf("CountersWithPrefix(faults.) = %v", got)
	}
	for name, v := range want {
		if got[name] != v {
			t.Fatalf("%s = %d, want %d", name, got[name], v)
		}
	}
	if all := s.CountersWithPrefix(""); len(all) != 3 {
		t.Fatalf("empty prefix returned %d counters, want all 3", len(all))
	}
	if none := s.CountersWithPrefix("nope."); len(none) != 0 {
		t.Fatalf("unmatched prefix returned %v", none)
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	r.GaugeFunc("x", func() int64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestSnapshotDuringConcurrentUpdates scrapes while many goroutines write:
// run with -race to validate the lock discipline.
func TestSnapshotDuringConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("fn", func() int64 { return 42 })
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(int64(i))
			}
		}(i)
	}
	deadline := time.After(50 * time.Millisecond)
	for {
		s := r.Snapshot()
		if s.Gauge("fn") != 42 {
			t.Fatal("gauge func not evaluated")
		}
		select {
		case <-deadline:
			close(done)
			wg.Wait()
			final := r.Snapshot()
			if final.Counter("c") == 0 {
				t.Fatal("counter never advanced")
			}
			return
		default:
		}
	}
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("pipeline.in").Add(7)
	r.Gauge("queue.depth").Set(3)
	r.Histogram("stage_ns").Observe(1000)

	var txt bytes.Buffer
	if err := r.Snapshot().WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pipeline.in 7", "queue.depth 3", "stage_ns count=1"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text exposition missing %q:\n%s", want, txt.String())
		}
	}

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if back.Counter("pipeline.in") != 7 || back.Gauge("queue.depth") != 3 {
		t.Fatalf("round-tripped snapshot wrong: %+v", back)
	}
	if h := back.Histograms["stage_ns"]; h.Count != 1 || h.Sum != 1000 {
		t.Fatalf("round-tripped histogram wrong: %+v", h)
	}
}

func TestStartDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("ticks").Inc()
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := StartDump(r, w, time.Millisecond)
	defer stop()
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		s := buf.String()
		mu.Unlock()
		if strings.Contains(s, "ticks 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no dump within deadline:\n%s", s)
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if s := StartDump(nil, w, time.Millisecond); s == nil {
		t.Fatal("nil registry StartDump must return a stop func")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
