// Package obs is the pipeline's observability subsystem: dependency-free
// metric primitives (sharded counters, gauges, log-linear histograms), a
// race-safe Registry with text and JSON exposition, and stage-scoped timing
// spans. Every pipeline stage — telescope ingress, campaign detection,
// shard queues, enrichment, analysis collection — reports through these
// types, so operational questions (drop mix, flow-table occupancy, queue
// depth, per-stage latency) have first-class answers instead of requiring
// ad-hoc printf instrumentation.
//
// Two properties shape the design:
//
//  1. The disabled path is free. Every metric method is a no-op on a nil
//     receiver, and a nil *Registry hands out nil metrics, so instrumented
//     hot paths pay one predictable branch when observability is off.
//  2. The enabled path never blocks the pipeline. Counters are striped
//     across cache lines to keep concurrent producers (the shard workers)
//     off each other's cache lines; histograms use per-bucket atomics; a
//     Snapshot scraped from another goroutine reads only atomics and is
//     safe during full-rate ingest.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// counterStripes is the number of independent cells a Counter spreads its
// increments over; must be a power of two.
const counterStripes = 8

// cell is one cache-line-padded counter stripe. 64 bytes of padding keeps
// adjacent stripes out of each other's cache lines on common hardware.
type cell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. Increments from
// different goroutines land on (usually) different stripes, so heavy
// concurrent use does not serialize on one cache line. All methods are
// no-ops on a nil receiver.
type Counter struct {
	cells [counterStripes]cell
}

// stripeIdx picks a stripe from the address of a stack slot: distinct
// goroutines run on distinct stacks, so concurrent writers spread across
// stripes while one goroutine keeps hitting the same hot cell.
func stripeIdx() uint64 {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b))) * 0x9e3779b97f4a7c15
	return h >> (64 - 3) // top bits index the 8 stripes
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.cells[stripeIdx()].n.Add(n)
}

// Value sums the stripes. Concurrent adds may or may not be included.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is an instantaneous value (queue depth, open flows, cache size).
// All methods are no-ops on a nil receiver; concurrent use is safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: log-linear, HDR-style. Values below histSub are
// recorded exactly (one bucket per value); above that, every power-of-two
// range is split into histSub linear sub-buckets, so relative error is
// bounded by 1/histSub (~6%) across the full int64 range. 960 buckets
// exactly cover [0, 2^63): the largest int64 lands in bucket 959.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	histBuckets = (63-histSubBits+1)*histSub + histSub
)

// Histogram records a distribution of non-negative int64 observations
// (durations in nanoseconds, batch sizes, lags). Negative observations are
// clamped to zero. All methods are no-ops on a nil receiver; Observe is
// safe for concurrent use and concurrent with snapshots.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// histIndex maps a value to its bucket.
func histIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	k := bits.Len64(v) - 1 // 2^k <= v < 2^(k+1)
	shift := uint(k - histSubBits)
	idx := (k-histSubBits+1)*histSub + int((v>>shift)&(histSub-1))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// histLowerBound inverts histIndex: the smallest value in bucket idx.
func histLowerBound(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	octave := idx >> histSubBits // >= 1
	pos := idx & (histSub - 1)
	return int64(histSub+pos) << uint(octave-1)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[histIndex(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// snapshot captures the histogram's current state. Not atomic across
// buckets — counts observed mid-scrape may land on either side — but every
// read is an atomic load, so it is race-free during concurrent Observes.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Lower: histLowerBound(i), Count: n})
		}
	}
	return s
}

// Bucket is one non-empty histogram bucket: Count observations at or above
// Lower (and below the next bucket's Lower).
type Bucket struct {
	Lower int64  `json:"lower"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observation, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the lower bound of the bucket containing the q-quantile
// (q in [0,1]); resolution is the bucket width (~6% relative).
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count-1))
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if rank < seen {
			return b.Lower
		}
	}
	return s.Buckets[len(s.Buckets)-1].Lower
}

// Span times one stage execution into a Histogram of nanosecond durations.
// The zero Span (and any Span from a nil histogram) is inert, so callers
// never need to branch on whether metrics are enabled:
//
//	sp := obs.StartSpan(reg.Histogram("collect.run_ns"))
//	stage()
//	sp.End()
type Span struct {
	h  *Histogram
	t0 time.Time
}

// StartSpan begins timing into h. A nil h yields an inert span.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// End records the elapsed time. Safe to call on the zero Span.
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(time.Since(s.t0).Nanoseconds())
	}
}
