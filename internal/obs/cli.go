package obs

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers its handlers on http.DefaultServeMux
	"os"
)

// WriteSnapshotFile writes the snapshot as indented JSON to path, with "-"
// meaning stdout. This is the commands' -metrics sink.
func WriteSnapshotFile(s Snapshot, path string) error {
	if path == "-" {
		return s.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StartPprof serves net/http/pprof on addr from a background goroutine,
// returning once the listener is bound so address errors surface at startup.
// The commands' -pprof flag. The server runs for the process lifetime.
func StartPprof(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go http.Serve(ln, nil) //nolint:errcheck // lifetime of the process
	return nil
}
