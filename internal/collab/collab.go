// Package collab reconstructs logical distributed scans from individually
// detected campaigns. The paper shows that counting scans per source
// overstates actor counts once campaigns are sharded over many hosts
// (§4.1, §6.4: coverage modes at 1/n, /24s of collaborating academic
// scanners) and concludes that "counting scans as single-source will
// largely bias measurements; future work should take this into account."
// This package is that future work: a grouping pass over detected campaigns
// that merges shards of one logical scan.
//
// Two campaigns are considered shards of the same scan when they
//
//   - were attributed to the same tool,
//   - probed the same port set,
//   - ran over overlapping time windows with similar start times, and
//   - either originate from one /24 (coordinated infrastructure) or have
//     similar per-shard rates and sizes (equal slices of one target space).
package collab

import (
	"hash/fnv"
	"sort"
	"time"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/tools"
)

// Config tunes the grouping heuristics. The zero value gets defaults.
type Config struct {
	// MaxStartSkew is the maximum difference between shard start times
	// (default 6h — shards of one scan are launched together).
	MaxStartSkew int64
	// MinOverlap is the minimum fractional overlap of two shards' time
	// windows, relative to the shorter one (default 0.5).
	MinOverlap float64
	// MaxRateRatio bounds how much two shards' rates may differ
	// (default 3: equal slices scan at equal speeds).
	MaxRateRatio float64
}

func (c *Config) defaults() {
	if c.MaxStartSkew == 0 {
		c.MaxStartSkew = int64(6 * time.Hour)
	}
	if c.MinOverlap == 0 {
		c.MinOverlap = 0.5
	}
	if c.MaxRateRatio == 0 {
		c.MaxRateRatio = 3
	}
}

// Group is one reconstructed logical scan: one or more campaigns.
type Group struct {
	// Scans are the member campaigns, in start order.
	Scans []*core.Scan
	// Tool is the shared tool attribution.
	Tool tools.Tool
	// SameSlash24 reports whether all members share one /24.
	SameSlash24 bool
	// TotalPackets and TotalCoverage aggregate the members.
	TotalPackets  uint64
	TotalCoverage float64
}

// Sources returns the number of member campaigns (= source addresses).
func (g *Group) Sources() int { return len(g.Scans) }

// portSig hashes a campaign's sorted port list.
func portSig(ports []uint16) uint64 {
	h := fnv.New64a()
	var b [2]byte
	for _, p := range ports {
		b[0], b[1] = byte(p>>8), byte(p)
		h.Write(b[:])
	}
	return h.Sum64()
}

type bucketKey struct {
	tool  tools.Tool
	ports uint64
}

// Detect groups qualified campaigns into logical scans. Unqualified flows
// are ignored. Singleton groups (ordinary single-source scans) are included
// in the result, so len(result) is the logical scan count.
func Detect(scans []*core.Scan, cfg Config) []Group {
	cfg.defaults()

	buckets := map[bucketKey][]*core.Scan{}
	for _, sc := range scans {
		if !sc.Qualified {
			continue
		}
		k := bucketKey{sc.Tool, portSig(sc.Ports)}
		buckets[k] = append(buckets[k], sc)
	}

	// Deterministic bucket order.
	keys := make([]bucketKey, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tool != keys[j].tool {
			return keys[i].tool < keys[j].tool
		}
		return keys[i].ports < keys[j].ports
	})

	var out []Group
	for _, k := range keys {
		members := buckets[k]
		sort.Slice(members, func(i, j int) bool {
			if members[i].Start != members[j].Start {
				return members[i].Start < members[j].Start
			}
			return members[i].Src < members[j].Src
		})
		// Greedy clustering in start order: attach each scan to the first
		// open cluster it is compatible with.
		var clusters [][]*core.Scan
		for _, sc := range members {
			placed := false
			for ci := range clusters {
				if compatible(clusters[ci][0], sc, &cfg) {
					clusters[ci] = append(clusters[ci], sc)
					placed = true
					break
				}
			}
			if !placed {
				clusters = append(clusters, []*core.Scan{sc})
			}
		}
		for _, cl := range clusters {
			g := Group{Scans: cl, Tool: k.tool, SameSlash24: true}
			for _, sc := range cl {
				g.TotalPackets += sc.Packets
				g.TotalCoverage += sc.Coverage
				if sc.Src>>8 != cl[0].Src>>8 {
					g.SameSlash24 = false
				}
			}
			if g.TotalCoverage > 1 {
				g.TotalCoverage = 1
			}
			if len(cl) == 1 {
				g.SameSlash24 = false
			}
			out = append(out, g)
		}
	}
	return out
}

// compatible reports whether b can join a's cluster.
func compatible(a, b *core.Scan, cfg *Config) bool {
	skew := b.Start - a.Start
	if skew < 0 {
		skew = -skew
	}
	if skew > cfg.MaxStartSkew {
		return false
	}
	// Window overlap relative to the shorter scan.
	lo, hi := maxI64(a.Start, b.Start), minI64(a.End, b.End)
	if hi <= lo {
		return false
	}
	shorter := minI64(a.End-a.Start, b.End-b.Start)
	if shorter > 0 && float64(hi-lo) < cfg.MinOverlap*float64(shorter) {
		return false
	}
	// One /24 is a strong coordination signal on its own.
	if a.Src>>8 == b.Src>>8 {
		return true
	}
	// Otherwise require equal-slice behavior: similar rates and sizes.
	if a.RatePPS <= 0 || b.RatePPS <= 0 {
		return false
	}
	r := a.RatePPS / b.RatePPS
	if r < 1 {
		r = 1 / r
	}
	if r > cfg.MaxRateRatio {
		return false
	}
	s := float64(a.Packets) / float64(b.Packets)
	if s < 1 {
		s = 1 / s
	}
	return s <= cfg.MaxRateRatio
}

// Stats summarizes a Detect result.
type Stats struct {
	// RawScans is the number of per-source campaigns grouped.
	RawScans int
	// LogicalScans is the number of groups.
	LogicalScans int
	// Collaborative is the number of groups with more than one member.
	Collaborative int
	// LargestGroup is the member count of the biggest group.
	LargestGroup int
	// InflationFactor is RawScans / LogicalScans — how much single-source
	// counting overstates actor activity.
	InflationFactor float64
}

// Summarize computes aggregate statistics over groups.
func Summarize(groups []Group) Stats {
	st := Stats{LogicalScans: len(groups)}
	for _, g := range groups {
		st.RawScans += len(g.Scans)
		if len(g.Scans) > 1 {
			st.Collaborative++
		}
		if len(g.Scans) > st.LargestGroup {
			st.LargestGroup = len(g.Scans)
		}
	}
	if st.LogicalScans > 0 {
		st.InflationFactor = float64(st.RawScans) / float64(st.LogicalScans)
	}
	return st
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
