package collab

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

// mkScan builds a qualified campaign for grouping tests.
func mkScan(src uint32, tool tools.Tool, ports []uint16, start, dur int64, packets uint64, rate float64) *core.Scan {
	return &core.Scan{
		Src: src, Start: start, End: start + dur,
		Packets: packets, DistinctDsts: int(packets),
		Ports: ports, Tool: tool, Qualified: true,
		RatePPS: rate, Coverage: 0.1,
	}
}

const hour = int64(time.Hour)

func TestDetectGroupsSlash24Shards(t *testing.T) {
	base := uint32(0x0A0B0C00)
	ports := []uint16{443}
	var scans []*core.Scan
	for i := 0; i < 4; i++ {
		scans = append(scans, mkScan(base|uint32(i+1), tools.ToolZMap, ports,
			int64(i)*hour/4, 10*hour, 500, 20000))
	}
	// An unrelated singleton far away in time.
	scans = append(scans, mkScan(0xC0FFEE01, tools.ToolZMap, ports, 100*hour, hour, 300, 9000))

	groups := Detect(scans, Config{})
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	st := Summarize(groups)
	if st.Collaborative != 1 || st.LargestGroup != 4 {
		t.Fatalf("stats: %+v", st)
	}
	for _, g := range groups {
		if len(g.Scans) == 4 {
			if !g.SameSlash24 {
				t.Fatal("shard group must be flagged same-/24")
			}
			if g.TotalPackets != 2000 {
				t.Fatalf("TotalPackets = %d", g.TotalPackets)
			}
		}
	}
	if st.InflationFactor < 2 {
		t.Fatalf("inflation factor = %v", st.InflationFactor)
	}
}

func TestDetectGroupsEqualSliceShards(t *testing.T) {
	// Shards scattered across the Internet but with equal rates/sizes and
	// synchronized windows.
	ports := []uint16{80, 8080}
	var scans []*core.Scan
	srcs := []uint32{0x01000001, 0x42000001, 0x7B000001}
	for i, src := range srcs {
		scans = append(scans, mkScan(src, tools.ToolMasscan, ports,
			int64(i)*hour, 12*hour, 400, 15000))
	}
	groups := Detect(scans, Config{})
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
	if groups[0].SameSlash24 {
		t.Fatal("scattered shards must not be flagged same-/24")
	}
}

func TestDetectSeparatesTools(t *testing.T) {
	ports := []uint16{22}
	a := mkScan(1, tools.ToolZMap, ports, 0, 10*hour, 500, 20000)
	b := mkScan(2, tools.ToolMasscan, ports, 0, 10*hour, 500, 20000)
	groups := Detect([]*core.Scan{a, b}, Config{})
	if len(groups) != 2 {
		t.Fatalf("different tools merged: %d groups", len(groups))
	}
}

func TestDetectSeparatesPortSets(t *testing.T) {
	a := mkScan(1, tools.ToolZMap, []uint16{22}, 0, 10*hour, 500, 20000)
	b := mkScan(2, tools.ToolZMap, []uint16{22, 2222}, 0, 10*hour, 500, 20000)
	if groups := Detect([]*core.Scan{a, b}, Config{}); len(groups) != 2 {
		t.Fatalf("different port sets merged: %d groups", len(groups))
	}
}

func TestDetectSeparatesDisjointWindows(t *testing.T) {
	ports := []uint16{443}
	a := mkScan(1, tools.ToolZMap, ports, 0, hour, 500, 20000)
	b := mkScan(2, tools.ToolZMap, ports, 48*hour, hour, 500, 20000)
	if groups := Detect([]*core.Scan{a, b}, Config{}); len(groups) != 2 {
		t.Fatalf("disjoint windows merged: %d groups", len(groups))
	}
}

func TestDetectRateMismatch(t *testing.T) {
	ports := []uint16{443}
	// Scattered sources with a 10x rate gap: not equal slices.
	a := mkScan(0x01000001, tools.ToolZMap, ports, 0, 10*hour, 500, 2000)
	b := mkScan(0x50000001, tools.ToolZMap, ports, 0, 10*hour, 5000, 20000)
	if groups := Detect([]*core.Scan{a, b}, Config{}); len(groups) != 2 {
		t.Fatalf("rate-mismatched scans merged: %d groups", len(groups))
	}
}

func TestDetectIgnoresUnqualified(t *testing.T) {
	s := mkScan(1, tools.ToolZMap, []uint16{80}, 0, hour, 500, 20000)
	s.Qualified = false
	if groups := Detect([]*core.Scan{s}, Config{}); len(groups) != 0 {
		t.Fatal("unqualified flows must be ignored")
	}
}

func TestDetectDeterministic(t *testing.T) {
	var scans []*core.Scan
	for i := 0; i < 50; i++ {
		scans = append(scans, mkScan(uint32(i*1000+1), tools.ToolZMap, []uint16{443},
			int64(i%5)*hour, 10*hour, uint64(400+i%3*10), 15000))
	}
	a := Summarize(Detect(scans, Config{}))
	b := Summarize(Detect(scans, Config{}))
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestDetectOrderInvariant: grouping is a set operation — permuting the
// input campaign order must yield the identical group set (same members,
// same aggregates), not merely the same summary counts. Detect sorts each
// bucket before its greedy pass; this test is the property pinning that.
func TestDetectOrderInvariant(t *testing.T) {
	// A mixed population: two /24 shard families, one equal-slice family,
	// tool/port variants, and scattered singletons.
	var scans []*core.Scan
	for i := 0; i < 6; i++ {
		scans = append(scans, mkScan(0x0A0B0C00|uint32(i+1), tools.ToolZMap, []uint16{443},
			int64(i)*hour/6, 10*hour, 500, 20000))
		scans = append(scans, mkScan(0x14161800|uint32(i+1), tools.ToolMasscan, []uint16{22, 80},
			int64(i)*hour/3, 8*hour, 400, 15000))
	}
	for i := 0; i < 5; i++ {
		scans = append(scans, mkScan(uint32(0x30000000+i*1<<16), tools.ToolZMap, []uint16{3389},
			int64(i)*hour/5, 12*hour, 600, 18000))
	}
	for i := 0; i < 20; i++ {
		scans = append(scans, mkScan(uint32(0x50000000+i*7919), tools.Tool(i%5), []uint16{uint16(1000 + i)},
			int64(100+i*30)*hour, hour, 300, 9000))
	}

	// Canonical fingerprint of a Detect result: per group the sorted member
	// identities plus the aggregates, then the group list itself sorted.
	canon := func(groups []Group) []string {
		sigs := make([]string, 0, len(groups))
		for _, g := range groups {
			members := make([]string, 0, len(g.Scans))
			for _, sc := range g.Scans {
				members = append(members, fmt.Sprintf("%08x@%d", sc.Src, sc.Start))
			}
			sort.Strings(members)
			sigs = append(sigs, fmt.Sprintf("%v|%s|pkts=%d|cov=%.6f|s24=%v",
				g.Tool, strings.Join(members, ","), g.TotalPackets, g.TotalCoverage, g.SameSlash24))
		}
		sort.Strings(sigs)
		return sigs
	}

	want := canon(Detect(scans, Config{}))
	if len(want) == 0 {
		t.Fatal("no groups detected")
	}
	r := rng.New(99)
	for trial := 0; trial < 25; trial++ {
		perm := append([]*core.Scan(nil), scans...)
		for i := len(perm) - 1; i > 0; i-- {
			j := r.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		got := canon(Detect(perm, Config{}))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: permuted input changed the group set:\n got %d groups %v\nwant %d groups %v",
				trial, len(got), got, len(want), want)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.LogicalScans != 0 || st.InflationFactor != 0 {
		t.Fatalf("empty stats: %+v", st)
	}
}
