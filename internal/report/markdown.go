package report

import (
	"fmt"
	"io"
	"strings"

	"github.com/synscan/synscan/internal/analysis"
	"github.com/synscan/synscan/internal/tools"
)

// Markdown renders the complete evaluation as a Markdown document — the
// auto-generated counterpart of EXPERIMENTS.md, suitable for committing
// next to a changed calibration.
func Markdown(w io.Writer, ev *analysis.Evaluation) {
	fmt.Fprintf(w, "# synscan evaluation\n\n")
	fmt.Fprintf(w, "Configuration: seed %d, scale %g, telescope %d addresses.\n\n",
		ev.Seed, ev.Scale, ev.TelescopeSize)

	fmt.Fprintf(w, "## Table 1 — ecosystem over the decade\n\n")
	mdHeader(w, "year", "pkts/day", "scans/month", "sources", "masscan", "nmap", "mirai", "zmap")
	for _, r := range ev.Table1 {
		mdRow(w, fmt.Sprint(r.Year), Count(r.PacketsPerDay), Count(r.ScansPerMonth),
			fmt.Sprint(r.DistinctSources),
			Pct(r.ToolShares[tools.ToolMasscan]), Pct(r.ToolShares[tools.ToolNMap]),
			Pct(r.ToolShares[tools.ToolMirai]), Pct(r.ToolShares[tools.ToolZMap]))
	}

	fmt.Fprintf(w, "\n## Table 2 — scanner types\n\n")
	mdHeader(w, "type", "sources", "scans", "packets")
	for _, r := range ev.Table2 {
		mdRow(w, r.Type.String(), Pct(r.Sources), Pct(r.Scans), Pct(r.Packets))
	}

	fmt.Fprintf(w, "\n## Figure 1 — disclosure response\n\n")
	fmt.Fprintf(w, "Peak %.1fx baseline on day %d; KS(before vs final weeks) p = %.3f (same distribution: %v).\n",
		ev.Figure1.PeakFactor, ev.Figure1.PeakDay, ev.Figure1.KS.P,
		ev.Figure1.KS.SameDistribution(0.05))

	fmt.Fprintf(w, "\n## Figure 2 — weekly /16 volatility (2020)\n\n")
	fmt.Fprintf(w, "Blocks changing >= 2x week-over-week: sources %s, scans %s, packets %s; stable blocks %s.\n",
		Pct(ev.Figure2.SourcesTwofold), Pct(ev.Figure2.ScansTwofold),
		Pct(ev.Figure2.PacketsTwofold), Pct(ev.Figure2.Stable))

	fmt.Fprintf(w, "\n## Figure 3 — ports per source\n\n")
	mdHeader(w, "year", "single port", ">=3 ports", ">=5 ports")
	for _, r := range ev.Figure3 {
		mdRow(w, fmt.Sprint(r.Year), Pct(r.SinglePortShare), Pct(r.ThreePlusShare), Pct(r.FivePlusShare))
	}

	fmt.Fprintf(w, "\n## Figure 7 — speed and coverage per type (2022)\n\n")
	mdHeader(w, "type", "scans", "mean pps", ">1000 pps", "mean coverage")
	for _, r := range ev.Figure7 {
		mdRow(w, r.Type.String(), fmt.Sprint(r.Scans), Count(r.MeanSpeedPPS),
			Pct(r.Above1000PPS), Pct(r.MeanCoverage))
	}

	fmt.Fprintf(w, "\n## Figure 8 — institutional port coverage (2024)\n\n")
	mdHeader(w, "organization", "kind", "ports", "packets")
	for _, r := range ev.Figure8 {
		mdRow(w, r.Org, r.Kind.String(), fmt.Sprint(r.PortsCovered), Count(float64(r.Packets)))
	}

	fmt.Fprintf(w, "\n## §5.1 — coverage and co-scanning\n\n")
	mdHeader(w, "year", "privileged coverage", "80&8080 co-scan", ">=3 ports")
	for _, r := range ev.Sec51 {
		mdRow(w, fmt.Sprint(r.Year), Pct(r.PrivilegedCoverage), Pct(r.CoScan80_8080), Pct(r.ThreePlusShare))
	}
	fmt.Fprintf(w, "\n>=3-port trend: R = %.3f (p = %.4f); paper: R = 0.88, p < 0.05.\n",
		ev.ThreePlusTrend.R, ev.ThreePlusTrend.P)

	fmt.Fprintf(w, "\n## §6.3 — speeds by tool (median pps)\n\n")
	mdHeader(w, "year", "zmap", "masscan", "nmap", "mirai", "top-100 mean")
	for _, r := range ev.Sec63 {
		mdRow(w, fmt.Sprint(r.Year),
			Count(r.MedianPPS[tools.ToolZMap]), Count(r.MedianPPS[tools.ToolMasscan]),
			Count(r.MedianPPS[tools.ToolNMap]), Count(r.MedianPPS[tools.ToolMirai]),
			Count(r.Top100MeanPPS))
	}
	fmt.Fprintf(w, "\nTop-100 speed trend: R = %.3f (p = %.4f); paper: R = 0.356, p < 0.001.\n",
		ev.Top100Trend.R, ev.Top100Trend.P)

	fmt.Fprintf(w, "\n## §7 extensions\n\n")
	mdHeader(w, "year", "institutional pkt share", "blockable share", "collab inflation")
	for i := range ev.Bias {
		mdRow(w, fmt.Sprint(ev.Bias[i].Year), Pct(ev.Bias[i].InstPacketShare),
			Pct(ev.Blockable[i].Share), fmt.Sprintf("%.2fx", ev.Collab[i].InflationFactor))
	}

	fmt.Fprintf(w, "\n## Blocklist staleness (2022)\n\n")
	mdHeader(w, "weeks old", "coverage", "institutional coverage")
	for k := range ev.Blocklist.HitRate {
		mdRow(w, fmt.Sprint(k), Pct(ev.Blocklist.HitRate[k]), Pct(ev.Blocklist.InstHitRate[k]))
	}
}

func mdHeader(w io.Writer, cells ...string) {
	fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	seps := make([]string, len(cells))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
}

func mdRow(w io.Writer, cells ...string) {
	fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
}
