package report

import (
	"strings"
	"testing"

	"github.com/synscan/synscan/internal/analysis"
	"github.com/synscan/synscan/internal/collab"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/tools"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("a", "bbbb", "c")
	tb.AddRow("xxxxxx", "y")
	tb.AddRow("1", "2", "3")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "------") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	// Column "bbbb" must start at the same offset in every row.
	idx := strings.Index(lines[0], "bbbb")
	if idx < 0 {
		t.Fatal("header missing")
	}
	if lines[2][idx] != 'y' {
		t.Fatalf("misaligned row: %q", lines[2])
	}
}

func TestPctCount(t *testing.T) {
	if Pct(0.1234) != "12.34%" {
		t.Fatalf("Pct = %q", Pct(0.1234))
	}
	cases := map[float64]string{
		5:      "5",
		1500:   "1.5K",
		2.5e6:  "2.50M",
		3.1e9:  "3.10B",
		999:    "999",
		1000:   "1.0K",
		999999: "1000.0K",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRenderTable1(t *testing.T) {
	rows := []analysis.Table1Row{{
		Year:              2020,
		PacketsPerDay:     1.2e6,
		ScansPerMonth:     400,
		TopPortsByPackets: []analysis.PortShare{{Port: 3389, Share: 0.26}},
		TopPortsBySources: []analysis.PortShare{{Port: 80, Share: 0.35}},
		TopPortsByScans:   []analysis.PortShare{{Port: 80, Share: 0.16}},
		ToolShares: map[tools.Tool]float64{
			tools.ToolMasscan: 0.2, tools.ToolZMap: 0.13,
		},
	}}
	var b strings.Builder
	Table1(&b, rows)
	out := b.String()
	for _, want := range []string{"2020", "1.20M", "3389(26.0%)", "20.00%", "13.00%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTable2(t *testing.T) {
	var b strings.Builder
	Table2(&b, []analysis.Table2Row{
		{Type: inetmodel.TypeInstitutional, Sources: 0.0016, Scans: 0.0745, Packets: 0.3263},
	})
	out := b.String()
	if !strings.Contains(out, "Institutional") || !strings.Contains(out, "32.63%") {
		t.Fatalf("Table2 output:\n%s", out)
	}
}

func TestRenderCDFAndSeries(t *testing.T) {
	var b strings.Builder
	CDF(&b, "speeds", stats.NewECDF([]float64{1, 2, 3, 4, 100}))
	if !strings.Contains(b.String(), "p50") {
		t.Fatalf("CDF output:\n%s", b.String())
	}
	b.Reset()
	Series(&b, "trend", []float64{1, 2}, []float64{10, 20})
	if !strings.Contains(b.String(), "trend:") {
		t.Fatal("Series output missing name")
	}
}

func TestRenderFigures(t *testing.T) {
	var b strings.Builder
	Figure4(&b, 2020, []analysis.Figure4Port{{
		Port: 80, Packets: 1000,
		ToolShare: map[tools.Tool]float64{tools.ToolZMap: 0.5, tools.ToolUnknown: 0.5},
	}})
	if !strings.Contains(b.String(), "Figure 4") || !strings.Contains(b.String(), "50.00%") {
		t.Fatalf("Figure4:\n%s", b.String())
	}

	b.Reset()
	Figure5(&b, []analysis.Figure5Port{{
		Port: 443, Scans: 10,
		TypeShare: map[inetmodel.ScannerType]float64{inetmodel.TypeInstitutional: 0.41},
	}})
	if !strings.Contains(b.String(), "443") || !strings.Contains(b.String(), "41.00%") {
		t.Fatalf("Figure5:\n%s", b.String())
	}

	b.Reset()
	Figure7(&b, []analysis.Figure7Row{{
		Type: inetmodel.TypeInstitutional, Scans: 5, MeanSpeedPPS: 90000,
		MedianSpeedPPS: 50000, Above1000PPS: 0.84, MeanCoverage: 0.4,
	}})
	if !strings.Contains(b.String(), "84.00%") {
		t.Fatalf("Figure7:\n%s", b.String())
	}

	b.Reset()
	Figure8(&b, []analysis.Figure8Row{{
		Org: "Censys", Kind: inetmodel.KindCompany, PortsCovered: 65536, FullRange: true, Packets: 12345,
	}})
	if !strings.Contains(b.String(), "Censys") || !strings.Contains(b.String(), "yes") {
		t.Fatalf("Figure8:\n%s", b.String())
	}

	b.Reset()
	Figure910(&b, []analysis.Figure910Row{{Org: "Onyphe", Ports2023: 29000, Ports2024: 65536}})
	if !strings.Contains(b.String(), "+36536") {
		t.Fatalf("Figure910:\n%s", b.String())
	}
}

func TestHistogramSortedBars(t *testing.T) {
	var b strings.Builder
	Histogram(&b, "tools", map[string]uint64{"a": 1, "b": 10, "c": 5})
	out := b.String()
	ia, ib, ic := strings.Index(out, "a "), strings.Index(out, "b "), strings.Index(out, "c ")
	if !(ib < ic && ic < ia) {
		t.Fatalf("histogram not sorted desc:\n%s", out)
	}
	if !strings.Contains(out, "####") {
		t.Fatal("bars missing")
	}
}

func TestPortMap(t *testing.T) {
	density := []float64{0, 0.001, 0.2, 0.5, 0.99, 1.0}
	got := PortMap(density)
	if len(got) != 6 {
		t.Fatalf("length %d", len(got))
	}
	if got[0] != ' ' {
		t.Fatalf("zero density must be blank: %q", got)
	}
	if got[1] == ' ' {
		t.Fatalf("tiny density must be visible: %q", got)
	}
	if got[5] != '@' {
		t.Fatalf("full density must be darkest: %q", got)
	}
	// Monotone shading.
	rank := map[byte]int{' ': 0, '.': 1, ':': 2, 'o': 3, 'O': 4, '@': 5}
	for i := 1; i < len(got); i++ {
		if rank[got[i]] < rank[got[i-1]] {
			t.Fatalf("shading not monotone: %q", got)
		}
	}
}

func TestMarkdown(t *testing.T) {
	ev := &analysis.Evaluation{
		Seed: 1, Scale: 0.001, TelescopeSize: 2048,
		Table1: []analysis.Table1Row{{Year: 2020, PacketsPerDay: 1000,
			ToolShares: map[tools.Tool]float64{tools.ToolZMap: 0.13}}},
		Table2:    []analysis.Table2Row{{Type: inetmodel.TypeInstitutional, Packets: 0.32}},
		Figure1:   &analysis.Figure1Result{PeakFactor: 12, PeakDay: 10},
		Figure2:   &analysis.Figure2Result{PacketsTwofold: 0.6, Stable: 0.28},
		Figure3:   []*analysis.Figure3Result{{Year: 2020, SinglePortShare: 0.74}},
		Figure7:   []analysis.Figure7Row{{Type: inetmodel.TypeInstitutional, Scans: 5}},
		Figure8:   []analysis.Figure8Row{{Org: "Censys", PortsCovered: 65536}},
		Sec51:     []*analysis.Sec51Result{{Year: 2020, CoScan80_8080: 0.87}},
		Sec63:     []*analysis.Sec63Result{{Year: 2020, MedianPPS: map[tools.Tool]float64{tools.ToolZMap: 25000}}},
		Bias:      []*analysis.BiasResult{{Year: 2020, InstPacketShare: 0.2}},
		Blockable: []*analysis.BlockableResult{{Year: 2020, Share: 0.85}},
		Collab:    []collab.Stats{{RawScans: 10, LogicalScans: 8, InflationFactor: 1.25}},
		Blocklist: &analysis.BlocklistResult{
			HitRate: []float64{1, 0.6}, InstHitRate: []float64{1, 0.99}, Weeks: 2},
	}
	var b strings.Builder
	Markdown(&b, ev)
	out := b.String()
	for _, want := range []string{"# synscan evaluation", "| year |", "Censys",
		"Institutional", "87.00%", "1.25x", "| --- |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
