// Package report renders analysis results as aligned text tables and CDF
// dumps — the output format of cmd/syneval and the examples.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/synscan/synscan/internal/analysis"
	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/stats"
	"github.com/synscan/synscan/internal/tools"
)

// Table is a simple aligned-column text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var n int64
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		m, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		n += int64(m)
		return err
	}
	if err := line(t.header); err != nil {
		return n, err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return n, err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return n, err
		}
	}
	return n, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b)
	return b.String()
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// Count formats large counts compactly (12.3K, 4.5M).
func Count(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Table1 renders the headline table, one column block per year.
func Table1(w io.Writer, rows []analysis.Table1Row) {
	t := NewTable("year", "pkts/day", "scans/month", "top by pkts", "top by srcs", "top by scans",
		"masscan", "nmap", "mirai", "zmap")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprint(r.Year),
			Count(r.PacketsPerDay),
			Count(r.ScansPerMonth),
			portList(r.TopPortsByPackets),
			portList(r.TopPortsBySources),
			portList(r.TopPortsByScans),
			Pct(r.ToolShares[tools.ToolMasscan]),
			Pct(r.ToolShares[tools.ToolNMap]),
			Pct(r.ToolShares[tools.ToolMirai]),
			Pct(r.ToolShares[tools.ToolZMap]),
		)
	}
	t.WriteTo(w)
}

func portList(ps []analysis.PortShare) string {
	parts := make([]string, 0, len(ps))
	for _, p := range ps {
		parts = append(parts, fmt.Sprintf("%d(%.1f%%)", p.Port, p.Share*100))
	}
	return strings.Join(parts, " ")
}

// Table2 renders the scanner-type breakdown.
func Table2(w io.Writer, rows []analysis.Table2Row) {
	t := NewTable("scanner type", "sources", "scans", "packets")
	for _, r := range rows {
		t.AddRow(r.Type.String(), Pct(r.Sources), Pct(r.Scans), Pct(r.Packets))
	}
	t.WriteTo(w)
}

// CDF renders an ECDF at canonical probe points.
func CDF(w io.Writer, name string, e *stats.ECDF) {
	fmt.Fprintf(w, "%s (n=%d):\n", name, e.Len())
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		fmt.Fprintf(w, "  p%-4.0f %12.4g\n", q*100, e.Quantile(q))
	}
}

// Series renders (x, y) pairs one per line.
func Series(w io.Writer, name string, xs, ys []float64) {
	fmt.Fprintf(w, "%s:\n", name)
	for i := range xs {
		fmt.Fprintf(w, "  %12.4g %12.4g\n", xs[i], ys[i])
	}
}

// PortLabel renders a port with its service name when one is well known
// ("3389/rdp", plain "9222" otherwise).
func PortLabel(port uint16) string {
	if name := packet.ServiceName(port); name != "" {
		return fmt.Sprintf("%d/%s", port, name)
	}
	return fmt.Sprint(port)
}

// Figure4 renders the top-ports × tool-mix figure.
func Figure4(w io.Writer, year int, ports []analysis.Figure4Port) {
	t := NewTable("port", "packets", "zmap", "masscan", "mirai", "other")
	for _, fp := range ports {
		t.AddRow(
			PortLabel(fp.Port),
			Count(float64(fp.Packets)),
			Pct(fp.ToolShare[tools.ToolZMap]),
			Pct(fp.ToolShare[tools.ToolMasscan]),
			Pct(fp.ToolShare[tools.ToolMirai]),
			Pct(fp.ToolShare[tools.ToolUnknown]),
		)
	}
	fmt.Fprintf(w, "Figure 4 — top ports by traffic and tool mix, %d\n", year)
	t.WriteTo(w)
}

// Figure5 renders the scanner-type-per-port figure.
func Figure5(w io.Writer, rows []analysis.Figure5Port) {
	t := NewTable("port", "scans", "hosting", "enterprise", "institutional", "residential", "unknown")
	for _, fp := range rows {
		t.AddRow(
			PortLabel(fp.Port),
			fmt.Sprint(fp.Scans),
			Pct(fp.TypeShare[inetmodel.TypeHosting]),
			Pct(fp.TypeShare[inetmodel.TypeEnterprise]),
			Pct(fp.TypeShare[inetmodel.TypeInstitutional]),
			Pct(fp.TypeShare[inetmodel.TypeResidential]),
			Pct(fp.TypeShare[inetmodel.TypeUnknown]),
		)
	}
	t.WriteTo(w)
}

// Figure7 renders the speed/coverage-by-type figure.
func Figure7(w io.Writer, rows []analysis.Figure7Row) {
	t := NewTable("scanner type", "scans", "mean pps", "median pps", ">1000pps", "mean coverage")
	for _, r := range rows {
		t.AddRow(r.Type.String(), fmt.Sprint(r.Scans),
			Count(r.MeanSpeedPPS), Count(r.MedianSpeedPPS),
			Pct(r.Above1000PPS), Pct(r.MeanCoverage))
	}
	t.WriteTo(w)
}

// Figure8 renders the institutional port-coverage figure, with a 64-bucket
// port map per organization — the textual form of the appendix figures
// (each cell is a 1024-port slice of the range; darker means denser).
func Figure8(w io.Writer, rows []analysis.Figure8Row) {
	t := NewTable("organization", "kind", "ports", "full range", "packets", "port map 0..65535")
	for _, r := range rows {
		full := ""
		if r.FullRange {
			full = "yes"
		}
		t.AddRow(r.Org, r.Kind.String(), fmt.Sprint(r.PortsCovered), full,
			Count(float64(r.Packets)), PortMap(r.Density[:]))
	}
	t.WriteTo(w)
}

// portMapGlyphs maps coverage density to a shade ramp.
var portMapGlyphs = []byte(" .:oO@")

// PortMap renders per-bucket coverage densities as a shade string.
func PortMap(density []float64) string {
	out := make([]byte, len(density))
	for i, d := range density {
		idx := int(d * float64(len(portMapGlyphs)))
		if idx >= len(portMapGlyphs) {
			idx = len(portMapGlyphs) - 1
		}
		if d > 0 && idx == 0 {
			idx = 1 // any coverage at all must be visible
		}
		out[i] = portMapGlyphs[idx]
	}
	return string(out)
}

// Figure910 renders the appendix year-over-year comparison.
func Figure910(w io.Writer, rows []analysis.Figure910Row) {
	t := NewTable("organization", "ports 2023", "ports 2024", "delta")
	for _, r := range rows {
		t.AddRow(r.Org, fmt.Sprint(r.Ports2023), fmt.Sprint(r.Ports2024),
			fmt.Sprintf("%+d", r.Ports2024-r.Ports2023))
	}
	t.WriteTo(w)
}

// Histogram renders counts per label, sorted descending.
func Histogram(w io.Writer, name string, m map[string]uint64) {
	type kv struct {
		k string
		v uint64
	}
	var all []kv
	var max uint64
	for k, v := range m {
		all = append(all, kv{k, v})
		if v > max {
			max = v
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	fmt.Fprintf(w, "%s:\n", name)
	for _, e := range all {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", int(e.v*40/max))
		}
		fmt.Fprintf(w, "  %-20s %10d %s\n", e.k, e.v, bar)
	}
}
