// Package alloctest turns allocation discipline into declarative,
// test-enforced budgets. The hot paths of the pipeline — frame decode,
// detector absorb, telescope membership, pooled archive block reads — are
// each pinned by a named budget ("decode" = 0 allocs/op, "archive-block-read"
// ≤ 2, ...); Check measures the path under the same discipline
// testing.AllocsPerRun uses and fails the ordinary `go test ./...` run the
// moment a change makes a gated path allocate past its budget.
//
// Measure is usable outside tests (cmd/synbench reports the same numbers as
// alloc_* fields), and every Check appends a JSON line to the file named by
// the ALLOCTEST_REPORT environment variable so CI can collect the budget
// report as an artifact.
package alloctest

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"
)

// Result is one measured budget path, as written to the ALLOCTEST_REPORT
// file (one JSON object per line).
type Result struct {
	// Path names the gated hot path, e.g. "decode" or "detector-absorb".
	Path string `json:"path"`
	// AllocsPerOp and BytesPerOp are the measured per-operation averages.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Budget is the maximum allowed AllocsPerOp.
	Budget float64 `json:"budget"`
	// Pass reports AllocsPerOp <= Budget.
	Pass bool `json:"pass"`
}

// Measure runs fn rounds times and returns the average heap allocations and
// bytes per call. Like testing.AllocsPerRun it warms fn once first and pins
// the measurement to one OS thread's view by forcing GOMAXPROCS(1), so other
// goroutines' allocations do not leak into the count; unlike it, Measure
// also reports bytes (runtime.MemStats.TotalAlloc delta) from the same run
// and needs no *testing.T, so cmd/synbench can emit the identical numbers.
func Measure(rounds int, fn func()) (allocsPerOp, bytesPerOp float64) {
	if rounds < 1 {
		rounds = 1
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // warm caches, pools and lazily-grown buffers

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(rounds)
	bytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(rounds)
	return allocsPerOp, bytesPerOp
}

// Check measures fn and fails t if it allocates more than maxAllocs per call
// on average. The average is truncated to a whole allocation first — the
// same convention testing.AllocsPerRun callers use — so a single stray
// runtime allocation (a GC worker scheduling onto the measured P) amortized
// across the rounds does not fail a zero budget; a path that really
// allocates shows ≥ 1 per op. Every check also appends its Result to the
// ALLOCTEST_REPORT file when that variable is set, pass or fail, so the CI
// artifact shows the whole budget table.
func Check(t *testing.T, path string, maxAllocs float64, fn func()) {
	t.Helper()
	allocs, bytes := Measure(100, fn)
	res := Result{
		Path:        path,
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		Budget:      maxAllocs,
		Pass:        math.Floor(allocs) <= maxAllocs,
	}
	report(res)
	if !res.Pass {
		t.Errorf("alloctest: %s allocates %.2f/op (%.1f B/op), budget %.0f",
			path, allocs, bytes, maxAllocs)
	} else {
		t.Logf("alloctest: %s %.2f allocs/op, %.1f B/op (budget %.0f)", path, allocs, bytes, maxAllocs)
	}
}

var reportMu sync.Mutex

// report appends res as one JSON line to $ALLOCTEST_REPORT, if set. Failures
// to write are swallowed: the report is diagnostics, the t.Errorf in Check is
// the enforcement.
func report(res Result) {
	path := os.Getenv("ALLOCTEST_REPORT")
	if path == "" {
		return
	}
	line, err := json.Marshal(res)
	if err != nil {
		return
	}
	reportMu.Lock()
	defer reportMu.Unlock()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	f.Write(append(line, '\n'))
}
