package alloctest

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestMeasureDistinguishesAllocation(t *testing.T) {
	sink := make([]byte, 0, 64)
	allocs, bytes := Measure(50, func() {
		sink = append(sink[:0], 1, 2, 3) // reuses backing: no allocation
	})
	if allocs != 0 || bytes != 0 {
		t.Fatalf("non-allocating fn measured at %.2f allocs/op, %.1f B/op", allocs, bytes)
	}
	var escape []byte
	allocs, bytes = Measure(50, func() {
		escape = make([]byte, 1024)
	})
	_ = escape
	if allocs < 1 {
		t.Fatalf("allocating fn measured at %.2f allocs/op", allocs)
	}
	if bytes < 1024 {
		t.Fatalf("1 KiB/op fn measured at %.1f B/op", bytes)
	}
}

func TestCheckWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.jsonl")
	t.Setenv("ALLOCTEST_REPORT", path)
	Check(t, "selftest-zero", 0, func() {})
	Check(t, "selftest-budgeted", 8, func() { _ = make([]byte, 16) })

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var got []Result
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var r Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad report line %q: %v", sc.Text(), err)
		}
		got = append(got, r)
	}
	if len(got) != 2 {
		t.Fatalf("%d report lines, want 2", len(got))
	}
	if got[0].Path != "selftest-zero" || !got[0].Pass || got[0].Budget != 0 {
		t.Fatalf("first line %+v", got[0])
	}
	if got[1].Path != "selftest-budgeted" || !got[1].Pass {
		t.Fatalf("second line %+v", got[1])
	}
}
