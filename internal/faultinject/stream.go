package faultinject

import (
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/rng"
)

// StreamConfig parameterizes a Stream mutator. The zero value passes probes
// through untouched.
type StreamConfig struct {
	// Seed determines every mutation decision.
	Seed uint64
	// DropRate is the probability a probe is silently discarded.
	DropRate float64
	// DupRate is the probability a probe is delivered twice back to back
	// (the duplicate keeps the original timestamp, like a mirrored span
	// port).
	DupRate float64
	// ReorderRate is the probability a probe is held back and re-emitted
	// after later probes, displacing it in the stream.
	ReorderRate float64
	// ReorderDepth bounds how many probes may be held back at once
	// (default 16). A held probe is force-released when the buffer fills.
	ReorderDepth int
	// SkewRate is the probability a probe's timestamp is perturbed by a
	// uniform offset in [-MaxSkew, +MaxSkew].
	SkewRate float64
	// MaxSkew is the clock-skew bound in nanoseconds.
	MaxSkew int64
}

// StreamStats counts the mutations a Stream performed.
type StreamStats struct {
	// In and Out count probes entering Apply and probes emitted.
	In, Out uint64
	// Dropped, Duplicated, Reordered and Skewed count each fault kind.
	Dropped, Duplicated, Reordered, Skewed uint64
}

// Stream mutates a probe stream at telescope ingress: drop, duplicate,
// reorder, clock-skew — the packet-level damage of a lossy capture path.
// Mutations are deterministic in (seed, arrival index). Not safe for
// concurrent use; wrap the single ingress goroutine.
type Stream struct {
	cfg   StreamConfig
	rnd   *rng.Rand
	held  []packet.Probe
	stats StreamStats
}

// NewStream builds a mutator from cfg.
func NewStream(cfg StreamConfig) *Stream {
	if cfg.ReorderDepth <= 0 {
		cfg.ReorderDepth = 16
	}
	return &Stream{cfg: cfg, rnd: rng.New(cfg.Seed).Derive("faultinject/stream")}
}

// Apply feeds one probe through the mutator; surviving probes (possibly
// duplicated, delayed or skewed) are delivered to emit. The probe is copied,
// so callers may reuse p.
func (s *Stream) Apply(p *packet.Probe, emit func(*packet.Probe)) {
	s.stats.In++
	if s.rnd.Bool(s.cfg.DropRate) {
		s.stats.Dropped++
		return
	}
	q := *p
	if s.cfg.MaxSkew > 0 && s.rnd.Bool(s.cfg.SkewRate) {
		q.Time += s.rnd.Int63n(2*s.cfg.MaxSkew+1) - s.cfg.MaxSkew
		s.stats.Skewed++
	}
	if s.rnd.Bool(s.cfg.ReorderRate) {
		s.stats.Reordered++
		s.held = append(s.held, q)
		if len(s.held) > s.cfg.ReorderDepth {
			s.release(emit)
		}
		return
	}
	s.deliver(&q, emit)
	// Occasionally let a held probe out behind the current one, so held
	// probes interleave with the live stream instead of all surfacing at
	// Flush.
	if len(s.held) > 0 && s.rnd.Bool(0.5) {
		s.release(emit)
	}
}

// deliver emits one probe and possibly its duplicate.
func (s *Stream) deliver(p *packet.Probe, emit func(*packet.Probe)) {
	s.stats.Out++
	emit(p)
	if s.rnd.Bool(s.cfg.DupRate) {
		s.stats.Duplicated++
		s.stats.Out++
		dup := *p
		emit(&dup)
	}
}

// release emits the oldest held probe.
func (s *Stream) release(emit func(*packet.Probe)) {
	p := s.held[0]
	s.held = s.held[1:]
	s.deliver(&p, emit)
}

// Flush delivers every still-held probe in hold order. Call at end of
// stream.
func (s *Stream) Flush(emit func(*packet.Probe)) {
	for len(s.held) > 0 {
		s.release(emit)
	}
}

// Stats returns the mutation counters.
func (s *Stream) Stats() StreamStats { return s.stats }
