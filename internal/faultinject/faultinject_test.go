package faultinject

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/packet"
)

func testPayload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 7)
	}
	return b
}

// Corruption must be a function of (seed, offset) only: reading the same
// stream through different chunk sizes must yield identical bytes.
func TestReaderCorruptionChunkingIndependent(t *testing.T) {
	src := testPayload(4096)
	cfg := ReaderConfig{Seed: 42, CorruptRate: 0.05}

	read := func(chunk int) []byte {
		r := NewReader(bytes.NewReader(src), cfg)
		var out []byte
		buf := make([]byte, chunk)
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		return out
	}

	a, b := read(1), read(1024)
	if !bytes.Equal(a, b) {
		t.Fatal("corruption depends on read chunking")
	}
	if bytes.Equal(a, src) {
		t.Fatal("CorruptRate=0.05 over 4 KiB corrupted nothing")
	}
	diff := 0
	for i := range a {
		if a[i] != src[i] {
			diff++
		}
	}
	if diff < 100 || diff > 350 {
		t.Fatalf("%d corrupted bytes, want ~205 (5%% of 4096)", diff)
	}
}

func TestReaderCorruptRegion(t *testing.T) {
	src := testPayload(4096)
	r := NewReader(bytes.NewReader(src), ReaderConfig{
		Seed: 7, CorruptRate: 1, CorruptStart: 100, CorruptEnd: 200,
	})
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		in := i >= 100 && i < 200
		if (out[i] != src[i]) != in {
			t.Fatalf("byte %d corrupted=%v, want %v", i, out[i] != src[i], in)
		}
	}
}

func TestReaderTruncateAndFail(t *testing.T) {
	src := testPayload(1000)
	out, err := io.ReadAll(NewReader(bytes.NewReader(src), ReaderConfig{TruncateAt: 333}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, src[:333]) {
		t.Fatalf("truncated read returned %d bytes, want 333 intact", len(out))
	}

	out, err = io.ReadAll(NewReader(bytes.NewReader(src), ReaderConfig{FailAt: 100}))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !bytes.Equal(out, src[:100]) {
		t.Fatalf("failing read delivered %d bytes before the error, want 100", len(out))
	}
}

func TestReaderShortReads(t *testing.T) {
	src := testPayload(500)
	r := NewReader(bytes.NewReader(src), ReaderConfig{Seed: 3, ShortReads: true})
	buf := make([]byte, 256)
	var out []byte
	sawShort := false
	for {
		n, err := r.Read(buf)
		if n > 8 {
			t.Fatalf("short-read mode delivered %d bytes", n)
		}
		if n > 0 && n < 256 {
			sawShort = true
		}
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawShort || !bytes.Equal(out, src) {
		t.Fatalf("short reads lost data: got %d bytes", len(out))
	}
}

func TestFlipBytes(t *testing.T) {
	src := testPayload(1024)
	data := append([]byte(nil), src...)
	pos := FlipBytes(data, 9, 10, 100, 600)
	if len(pos) != 10 {
		t.Fatalf("%d positions, want 10", len(pos))
	}
	flipped := map[int]bool{}
	for i, p := range pos {
		if p < 100 || p >= 600 {
			t.Fatalf("position %d outside [100, 600)", p)
		}
		if i > 0 && pos[i-1] >= p {
			t.Fatal("positions not ascending and distinct")
		}
		flipped[p] = true
	}
	for i := range data {
		if (data[i] != src[i]) != flipped[i] {
			t.Fatalf("byte %d changed=%v, flipped=%v", i, data[i] != src[i], flipped[i])
		}
	}

	again := append([]byte(nil), src...)
	pos2 := FlipBytes(again, 9, 10, 100, 600)
	if !bytes.Equal(again, data) {
		t.Fatal("FlipBytes is not deterministic")
	}
	for i := range pos {
		if pos[i] != pos2[i] {
			t.Fatal("FlipBytes positions are not deterministic")
		}
	}
}

func streamRun(seed uint64, n int, cfg StreamConfig) ([]packet.Probe, StreamStats) {
	cfg.Seed = seed
	s := NewStream(cfg)
	var out []packet.Probe
	emit := func(p *packet.Probe) { out = append(out, *p) }
	for i := 0; i < n; i++ {
		p := packet.Probe{
			Time: int64(i) * 1e6, Src: uint32(i % 17), Dst: uint32(i),
			DstPort: uint16(i % 3), Flags: packet.FlagSYN,
		}
		s.Apply(&p, emit)
	}
	s.Flush(emit)
	return out, s.Stats()
}

func TestStreamMutatorDeterministicAndAccounted(t *testing.T) {
	cfg := StreamConfig{
		DropRate: 0.1, DupRate: 0.05, ReorderRate: 0.2,
		SkewRate: 0.3, MaxSkew: int64(time.Second),
	}
	a, sa := streamRun(11, 2000, cfg)
	b, sb := streamRun(11, 2000, cfg)
	if len(a) != len(b) || sa != sb {
		t.Fatalf("same seed diverged: %d vs %d probes, %+v vs %+v", len(a), len(b), sa, sb)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("probe %d differs between identical runs", i)
		}
	}
	if sa.In != 2000 {
		t.Fatalf("In = %d", sa.In)
	}
	if want := sa.In - sa.Dropped + sa.Duplicated; sa.Out != want {
		t.Fatalf("Out = %d, want In-Dropped+Duplicated = %d", sa.Out, want)
	}
	if uint64(len(a)) != sa.Out {
		t.Fatalf("emitted %d probes, stats say %d", len(a), sa.Out)
	}
	if sa.Dropped == 0 || sa.Duplicated == 0 || sa.Reordered == 0 || sa.Skewed == 0 {
		t.Fatalf("some fault kind never fired: %+v", sa)
	}

	c, sc := streamRun(12, 2000, cfg)
	if len(c) == len(a) && sc == sa {
		t.Fatal("different seeds produced identical mutation schedules")
	}
}

func TestStreamZeroConfigIsTransparent(t *testing.T) {
	out, st := streamRun(5, 100, StreamConfig{})
	if len(out) != 100 || st.Out != 100 || st.Dropped+st.Duplicated+st.Reordered+st.Skewed != 0 {
		t.Fatalf("zero config mutated the stream: %d probes, %+v", len(out), st)
	}
	for i, p := range out {
		if p.Dst != uint32(i) {
			t.Fatalf("zero config reordered: probe %d has Dst %d", i, p.Dst)
		}
	}
}

func TestShardStallerDeterministicPerShard(t *testing.T) {
	run := func() uint64 {
		st := NewShardStaller(21, 0.3, time.Microsecond)
		for shard := 0; shard < 4; shard++ {
			for i := 0; i < 50; i++ {
				st.Stall(shard)
			}
		}
		return st.Stalls()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stall counts differ between identical runs: %d vs %d", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("stall count %d of 200, want partial", a)
	}
}
