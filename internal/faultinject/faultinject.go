// Package faultinject provides deterministic, seeded fault injection for
// robustness testing across the pipeline. The paper's decade of data
// survives real-world damage — telescope outages, truncated trace files,
// partially corrupt captures are explicit in its methodology (§3.2) — so the
// reproduction must keep producing answers when its inputs break. This
// package manufactures that breakage on demand, reproducibly:
//
//   - Reader wraps any io.Reader and corrupts, truncates, short-reads or
//     hard-fails the byte stream at seeded positions, for exercising the
//     capture codecs (pcap, pcapng, flowlog) and the SYNA archive.
//   - Stream mutates a probe stream at telescope ingress: drop, duplicate,
//     reorder and clock-skew, the packet-level damage a lossy span port or a
//     capture box under pressure produces.
//   - ShardStaller injects processing stalls into individual shards of the
//     sharded campaign detector, for verifying backpressure and the
//     determinism of the merging flush under uneven shard progress.
//
// Every fault is a pure function of (seed, position), never of wall-clock
// time or read chunking, so a failing case replays byte-identically from its
// seed alone.
package faultinject

import (
	"errors"
	"io"

	"github.com/synscan/synscan/internal/rng"
)

// ErrInjected is the error a Reader configured with FailAt returns when the
// stream reaches the failure offset.
var ErrInjected = errors.New("faultinject: injected read error")

// mix64 is a splitmix64-style finalizer: the per-offset fault oracle.
// Keying faults on mix64(seed, offset) rather than on a sequential generator
// makes them independent of how callers chunk their reads.
func mix64(seed, x uint64) uint64 {
	x ^= seed + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ReaderConfig parameterizes NewReader. The zero value injects nothing (the
// Reader is then a transparent wrapper).
type ReaderConfig struct {
	// Seed determines every fault position and corruption value.
	Seed uint64
	// CorruptRate is the per-byte probability of XOR-corrupting the byte
	// with a seeded nonzero mask.
	CorruptRate float64
	// CorruptStart and CorruptEnd restrict corruption to stream offsets in
	// [CorruptStart, CorruptEnd). CorruptEnd == 0 means no upper bound, so
	// the zero region corrupts the whole stream.
	CorruptStart, CorruptEnd int64
	// TruncateAt, when > 0, ends the stream with io.EOF after that many
	// bytes — a trace file cut off mid-record.
	TruncateAt int64
	// FailAt, when > 0, returns ErrInjected once that many bytes have been
	// delivered — a read error from failing storage.
	FailAt int64
	// ShortReads delivers seeded 1..8 byte reads regardless of the buffer
	// size, exercising io.Reader-contract edge cases in downstream parsers.
	ShortReads bool
}

// Reader is a fault-injecting io.Reader wrapper. Not safe for concurrent
// use. The fault schedule is fixed by the config seed; see ReaderConfig.
type Reader struct {
	r   io.Reader
	cfg ReaderConfig
	off int64
	rnd *rng.Rand // consumed only for short-read sizing
}

// NewReader wraps r with the configured fault schedule.
func NewReader(r io.Reader, cfg ReaderConfig) *Reader {
	return &Reader{r: r, cfg: cfg, rnd: rng.New(cfg.Seed).Derive("faultinject/shortread")}
}

// Offset returns the number of bytes delivered so far.
func (f *Reader) Offset() int64 { return f.off }

// Read implements io.Reader with the configured faults applied.
func (f *Reader) Read(p []byte) (int, error) {
	if f.cfg.TruncateAt > 0 && f.off >= f.cfg.TruncateAt {
		return 0, io.EOF
	}
	if f.cfg.FailAt > 0 && f.off >= f.cfg.FailAt {
		return 0, ErrInjected
	}
	max := len(p)
	if f.cfg.ShortReads && max > 1 {
		if n := 1 + f.rnd.Intn(8); n < max {
			max = n
		}
	}
	if f.cfg.TruncateAt > 0 && f.off+int64(max) > f.cfg.TruncateAt {
		max = int(f.cfg.TruncateAt - f.off)
	}
	if f.cfg.FailAt > 0 && f.off+int64(max) > f.cfg.FailAt {
		max = int(f.cfg.FailAt - f.off)
	}
	n, err := f.r.Read(p[:max])
	f.corrupt(p[:n], f.off)
	f.off += int64(n)
	return n, err
}

// corrupt applies the offset-keyed corruption oracle to one delivered chunk.
func (f *Reader) corrupt(b []byte, base int64) {
	if f.cfg.CorruptRate <= 0 {
		return
	}
	threshold := uint64(f.cfg.CorruptRate * float64(1<<32))
	for i := range b {
		off := base + int64(i)
		if off < f.cfg.CorruptStart || (f.cfg.CorruptEnd > 0 && off >= f.cfg.CorruptEnd) {
			continue
		}
		h := mix64(f.cfg.Seed, uint64(off))
		if h>>32 < threshold {
			mask := byte(h)
			if mask == 0 {
				mask = 0xff
			}
			b[i] ^= mask
		}
	}
}

// FlipBytes deterministically XOR-corrupts n distinct byte positions of
// data within [lo, hi) and returns the flipped positions in ascending
// order. It mutates data in place; tests use the returned positions to know
// exactly how many faults were injected (hi <= 0 means len(data)). Fewer
// than n positions are flipped when the region is smaller than n.
func FlipBytes(data []byte, seed uint64, n, lo, hi int) []int {
	if hi <= 0 || hi > len(data) {
		hi = len(data)
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi || n <= 0 {
		return nil
	}
	if n > hi-lo {
		n = hi - lo
	}
	seen := make(map[int]struct{}, n)
	positions := make([]int, 0, n)
	for i := uint64(0); len(positions) < n; i++ {
		pos := lo + int(mix64(seed, i)%uint64(hi-lo))
		if _, dup := seen[pos]; dup {
			continue
		}
		seen[pos] = struct{}{}
		mask := byte(mix64(seed, i) >> 8)
		if mask == 0 {
			mask = 0xff
		}
		data[pos] ^= mask
		positions = append(positions, pos)
	}
	sortInts(positions)
	return positions
}

// sortInts is an insertion sort: position lists are tiny and this avoids an
// import for one call site.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
