package faultinject

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/synscan/synscan/internal/rng"
)

// ShardStaller injects deterministic processing stalls into individual
// shards of the sharded campaign detector. Wire its Stall method into
// core.ShardedConfig.StallHook: each shard draws from its own seeded
// stream, so which batches stall is reproducible per shard regardless of
// cross-shard scheduling. Safe for concurrent use — the hook is called from
// every shard goroutine.
//
// Stalls exercise two properties the detector must keep under uneven shard
// progress: Ingest backpressure (a stalled shard's bounded queue fills and
// blocks the router instead of growing without bound) and the merging
// flush's determinism (the emitted campaign multiset and order must not
// depend on which shard lagged).
type ShardStaller struct {
	rate   float64
	stall  time.Duration
	seed   uint64
	stalls atomic.Uint64

	mu   sync.Mutex
	rnds map[int]*rng.Rand
}

// NewShardStaller stalls a shard for the given duration with probability
// rate at each processed message.
func NewShardStaller(seed uint64, rate float64, stall time.Duration) *ShardStaller {
	return &ShardStaller{rate: rate, stall: stall, seed: seed, rnds: make(map[int]*rng.Rand)}
}

// Stall is the core.ShardedConfig.StallHook entry point: it decides from
// the shard's seeded stream whether this message stalls, and sleeps if so.
func (st *ShardStaller) Stall(shard int) {
	st.mu.Lock()
	r := st.rnds[shard]
	if r == nil {
		r = rng.New(st.seed).DeriveN("faultinject/stall", uint64(shard))
		st.rnds[shard] = r
	}
	hit := r.Bool(st.rate)
	st.mu.Unlock()
	if hit {
		st.stalls.Add(1)
		time.Sleep(st.stall)
	}
}

// Stalls returns the number of stalls injected so far.
func (st *ShardStaller) Stalls() uint64 { return st.stalls.Load() }
