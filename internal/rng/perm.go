package rng

// This file implements the two target-space permutation algorithms used by
// real high-performance Internet scanners. They matter to the reproduction
// for two reasons: (1) the workload generator uses them to drive "exhaustive"
// small-space scans exactly the way the real tools walk the IPv4 space, and
// (2) the ablation benchmarks compare their iteration cost.

import "math/bits"

// zmapPrime is the smallest prime larger than 2^32 (2^32 + 15). ZMap iterates
// over the multiplicative group of integers modulo this prime: the group is
// cyclic, so repeatedly multiplying by a generator visits every element of
// [1, p-1] exactly once in a pseudorandom order, with O(1) state.
const zmapPrime uint64 = 1<<32 + 15

// mulmod64 returns a*b mod m using 128-bit intermediate arithmetic.
func mulmod64(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a%m, b%m)
	// hi < m is guaranteed because (a%m)*(b%m) < m^2 and m < 2^64,
	// which is the precondition bits.Div64 requires.
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

// powmod computes base^exp mod m.
func powmod(base, exp, m uint64) uint64 {
	result := uint64(1)
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			result = mulmod64(result, base, m)
		}
		base = mulmod64(base, base, m)
		exp >>= 1
	}
	return result
}

// factorize returns the distinct prime factors of n by trial division.
// n here is always p-1 for a 33-bit prime, so this is fast and runs once.
func factorize(n uint64) []uint64 {
	var factors []uint64
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			factors = append(factors, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		factors = append(factors, n)
	}
	return factors
}

// primitiveRoot finds the smallest primitive root modulo prime p.
func primitiveRoot(p uint64) uint64 {
	phi := p - 1
	factors := factorize(phi)
	for g := uint64(2); ; g++ {
		ok := true
		for _, q := range factors {
			if powmod(g, phi/q, p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g
		}
	}
}

// CyclicPerm iterates the IPv4 address space [0, 2^32) in the pseudorandom
// order produced by walking the multiplicative group mod zmapPrime — the
// exact construction ZMap uses. Group elements in (2^32, p-1] do not map to
// addresses and are skipped transparently, exactly as ZMap does.
//
// The zero value is not usable; construct with NewCyclicPerm.
type CyclicPerm struct {
	gen     uint64 // group generator for this scan
	start   uint64 // first group element emitted
	current uint64
	first   bool
}

// groupPrimRoot is computed once: the smallest primitive root of zmapPrime.
var groupPrimRoot = primitiveRoot(zmapPrime)

// NewCyclicPerm creates a permutation of [0, 2^32) seeded by r. Each call
// with an independent Rand yields a different generator and starting point,
// like independent ZMap invocations.
func NewCyclicPerm(r *Rand) *CyclicPerm {
	// A random generator of the full group: root^k is a generator iff
	// gcd(k, p-1) == 1. Retry until coprime; density of coprimes is high.
	phi := zmapPrime - 1
	var k uint64
	for {
		k = r.Uint64()%phi + 1
		if gcd(k, phi) == 1 {
			break
		}
	}
	gen := powmod(groupPrimRoot, k, zmapPrime)
	start := r.Uint64()%(zmapPrime-1) + 1
	return &CyclicPerm{gen: gen, start: start, current: start, first: true}
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Next returns the next IPv4 address in the permutation. done is true when
// the walk has returned to its starting element, i.e. all 2^32 addresses
// have been emitted.
func (c *CyclicPerm) Next() (addr uint32, done bool) {
	for {
		if !c.first && c.current == c.start {
			return 0, true
		}
		c.first = false
		v := c.current
		c.current = mulmod64(c.current, c.gen, zmapPrime)
		if v <= 1<<32 {
			return uint32(v - 1), false
		}
		// Group element beyond the address space: skip, as ZMap does.
	}
}

// Shard restricts the permutation to shard i of n, ZMap's "sharding" feature
// for splitting one logical scan across multiple hosts: shard i starts i
// steps into the walk and then advances by gen^n each step, so the n shards
// partition the group exactly.
func (c *CyclicPerm) Shard(i, n int) *CyclicPerm {
	if n <= 1 {
		return c
	}
	stride := powmod(c.gen, uint64(n), zmapPrime)
	start := c.start
	for j := 0; j < i; j++ {
		start = mulmod64(start, c.gen, zmapPrime)
	}
	return &CyclicPerm{gen: stride, start: start, current: start, first: true}
}

// FeistelPerm is a format-preserving permutation of [0, n) built from a
// balanced Feistel network over the smallest even-bit-width power of two
// >= n, with cycle walking to stay inside the range. This is the same
// construction as Masscan's BlackRock randomizer (which uses an unbalanced
// a*b split; the balanced variant has identical properties for our use).
type FeistelPerm struct {
	n        uint64
	halfBits uint
	halfMask uint64
	rounds   int
	keys     [8]uint64
}

// NewFeistelPerm builds a permutation of [0, n) keyed by r. n must be >= 2.
func NewFeistelPerm(n uint64, r *Rand) *FeistelPerm {
	if n < 2 {
		n = 2
	}
	bits := uint(1)
	for uint64(1)<<(2*bits) < n {
		bits++
	}
	f := &FeistelPerm{
		n:        n,
		halfBits: bits,
		halfMask: uint64(1)<<bits - 1,
		rounds:   4,
	}
	for i := range f.keys {
		f.keys[i] = r.Uint64()
	}
	return f
}

// round is the Feistel F-function: a splitmix-style mix of (half, key).
func (f *FeistelPerm) round(half, key uint64) uint64 {
	return splitmix64(half*0x9e3779b97f4a7c15 + key)
}

func (f *FeistelPerm) encryptOnce(x uint64) uint64 {
	l := x >> f.halfBits
	r := x & f.halfMask
	for i := 0; i < f.rounds; i++ {
		l, r = r, l^(f.round(r, f.keys[i])&f.halfMask)
	}
	return l<<f.halfBits | r
}

func (f *FeistelPerm) decryptOnce(x uint64) uint64 {
	l := x >> f.halfBits
	r := x & f.halfMask
	for i := f.rounds - 1; i >= 0; i-- {
		l, r = r^(f.round(l, f.keys[i])&f.halfMask), l
	}
	return l<<f.halfBits | r
}

// Apply maps index i in [0, n) to its permuted position, cycle-walking out
// of the padding region. It panics if i >= n.
func (f *FeistelPerm) Apply(i uint64) uint64 {
	if i >= f.n {
		panic("rng: FeistelPerm.Apply index out of range")
	}
	x := f.encryptOnce(i)
	for x >= f.n {
		x = f.encryptOnce(x)
	}
	return x
}

// Invert maps a permuted position back to its index. It panics if x >= n.
func (f *FeistelPerm) Invert(x uint64) uint64 {
	if x >= f.n {
		panic("rng: FeistelPerm.Invert index out of range")
	}
	i := f.decryptOnce(x)
	for i >= f.n {
		i = f.decryptOnce(i)
	}
	return i
}

// Len returns the size of the permuted range.
func (f *FeistelPerm) Len() uint64 { return f.n }
