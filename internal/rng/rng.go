// Package rng provides deterministic, splittable pseudo-random number
// generation for the synscan simulators.
//
// Every stochastic component of the workload model draws from a Rand that is
// derived from a single root seed and a textual label. Re-running a scenario
// with the same seed therefore reproduces the exact same packet stream, which
// is what makes the benchmark harness and the regression tests deterministic.
//
// The package also implements the two address-space permutation algorithms
// used by real Internet-wide scanners:
//
//   - CyclicPerm: iteration over the multiplicative group of integers modulo
//     a prime just above 2^32, as used by ZMap to enumerate IPv4 in a
//     pseudorandom order without keeping per-address state.
//   - FeistelPerm: a balanced Feistel network with cycle walking over an
//     arbitrary range, the construction behind Masscan's "BlackRock"
//     randomizer.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// splitmix64 is the seed-expansion function recommended for initializing
// xoshiro state. It is also used to derive child seeds from (seed, label).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// xoshiro256** by Blackman and Vigna: fast, 256-bit state, passes BigCrush.
type xoshiro struct {
	s [4]uint64
}

func newXoshiro(seed uint64) *xoshiro {
	var x xoshiro
	sm := seed
	for i := range x.s {
		sm = splitmix64(sm)
		x.s[i] = sm
	}
	// All-zero state is invalid; splitmix64 of anything is never all zero
	// across four outputs, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

func (x *xoshiro) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Int63 and Seed make xoshiro satisfy math/rand.Source64.
func (x *xoshiro) Int63() int64 { return int64(x.Uint64() >> 1) }

func (x *xoshiro) Seed(seed int64) {
	*x = *newXoshiro(uint64(seed))
}

// Rand is a deterministic random source. It embeds *math/rand.Rand so the
// full stdlib distribution toolkit (Perm, Shuffle, Zipf via rand.NewZipf,
// NormFloat64, ExpFloat64, ...) is available, while the underlying state is
// our own seeded xoshiro256**.
type Rand struct {
	*rand.Rand
	seed uint64
	src  *xoshiro
}

// New returns a Rand rooted at seed.
func New(seed uint64) *Rand {
	src := newXoshiro(seed)
	return &Rand{Rand: rand.New(src), seed: seed, src: src}
}

// Seed returns the seed this Rand was created with.
func (r *Rand) Seed() uint64 { return r.seed }

// Derive returns an independent child generator identified by label.
// Children with distinct labels produce statistically independent streams,
// and the same (seed, label) pair always yields the same stream. Derive does
// not consume any randomness from the parent, so the order in which children
// are derived does not matter.
func (r *Rand) Derive(label string) *Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(splitmix64(r.seed ^ h.Sum64()))
}

// DeriveN returns an independent child generator identified by label and an
// index, for per-entity streams (e.g. one stream per campaign).
func (r *Rand) DeriveN(label string, n uint64) *Rand {
	h := fnv.New64a()
	h.Write([]byte(label))
	return New(splitmix64(splitmix64(r.seed^h.Sum64()) + n))
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.src.Uint64() >> 32) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// LogNormal samples exp(N(mu, sigma^2)). Scanning-speed and campaign-size
// distributions in the workload model are log-normal: most actors are slow
// and small, a heavy tail is fast and large — matching the paper's
// observation that the speed advantage of high-performance tools "is only
// realized by a select few at the very high end".
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto samples a Pareto(xm, alpha) variate: xm * U^(-1/alpha).
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm * math.Pow(u, -1/alpha)
}

// Poisson samples a Poisson(lambda) count. For small lambda it uses Knuth's
// product method; for large lambda a normal approximation with continuity
// correction, which is ample for workload sizing.
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
	if n < 0 {
		return 0
	}
	return n
}

// Exp samples an exponential inter-arrival with the given rate (events per
// unit time). Used to place probe arrivals as a Poisson process.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return r.ExpFloat64() / rate
}

// WeightedChoice holds a discrete distribution for repeated sampling by
// cumulative binary search.
type WeightedChoice struct {
	cum []float64
}

// NewWeightedChoice builds a sampler over the given non-negative weights.
// Weights need not sum to one. A nil or all-zero weight vector yields a
// sampler that always returns 0.
func NewWeightedChoice(weights []float64) *WeightedChoice {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	return &WeightedChoice{cum: cum}
}

// Sample draws an index distributed according to the weights.
func (w *WeightedChoice) Sample(r *Rand) int {
	if len(w.cum) == 0 {
		return 0
	}
	total := w.cum[len(w.cum)-1]
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Len returns the number of categories.
func (w *WeightedChoice) Len() int { return len(w.cum) }
