package rng

import (
	"testing"
	"testing/quick"
)

func TestMulmod(t *testing.T) {
	cases := []struct{ a, b, m, want uint64 }{
		{0, 5, 7, 0},
		{3, 4, 7, 5},
		// (p-1)^2 mod p == 1 for prime p.
		{1<<32 + 14, 1<<32 + 14, zmapPrime, 1},
	}
	for _, c := range cases {
		if got := mulmod64(c.a, c.b, c.m); got != c.want {
			t.Errorf("mulmod64(%d,%d,%d) = %d, want %d", c.a, c.b, c.m, got, c.want)
		}
	}
}

func TestMulmodQuick(t *testing.T) {
	// Property: for small moduli the naive product agrees.
	f := func(a, b uint32, m uint16) bool {
		mod := uint64(m) + 2
		return mulmod64(uint64(a), uint64(b), mod) == uint64(a)%mod*(uint64(b)%mod)%mod
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowmod(t *testing.T) {
	if got := powmod(2, 10, 1000); got != 24 {
		t.Fatalf("2^10 mod 1000 = %d, want 24", got)
	}
	// Fermat: a^(p-1) == 1 mod p for prime p and gcd(a,p)=1.
	for _, a := range []uint64{2, 3, 12345, 1 << 31} {
		if got := powmod(a, zmapPrime-1, zmapPrime); got != 1 {
			t.Fatalf("Fermat violated for a=%d: got %d", a, got)
		}
	}
}

func TestFactorize(t *testing.T) {
	got := factorize(360) // 2^3 * 3^2 * 5
	want := []uint64{2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("factorize(360) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("factorize(360) = %v, want %v", got, want)
		}
	}
	if got := factorize(13); len(got) != 1 || got[0] != 13 {
		t.Fatalf("factorize(13) = %v", got)
	}
}

func TestPrimitiveRootSmall(t *testing.T) {
	// The multiplicative group mod 7 has generators {3, 5}; smallest is 3.
	if got := primitiveRoot(7); got != 3 {
		t.Fatalf("primitiveRoot(7) = %d, want 3", got)
	}
	// Verify the precomputed root for the ZMap prime generates the group:
	// root^((p-1)/q) != 1 for every prime factor q.
	for _, q := range factorize(zmapPrime - 1) {
		if powmod(groupPrimRoot, (zmapPrime-1)/q, zmapPrime) == 1 {
			t.Fatalf("groupPrimRoot %d is not a primitive root", groupPrimRoot)
		}
	}
}

func TestCyclicPermNoDuplicates(t *testing.T) {
	r := New(1)
	c := NewCyclicPerm(r)
	seen := make(map[uint32]bool, 200000)
	for i := 0; i < 200000; i++ {
		addr, done := c.Next()
		if done {
			t.Fatal("cycle ended far too early")
		}
		if seen[addr] {
			t.Fatalf("duplicate address %d at step %d", addr, i)
		}
		seen[addr] = true
	}
}

func TestCyclicPermDeterministic(t *testing.T) {
	a := NewCyclicPerm(New(5))
	b := NewCyclicPerm(New(5))
	for i := 0; i < 1000; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x != y {
			t.Fatal("same seed should give same permutation")
		}
	}
}

func TestCyclicPermDifferentSeeds(t *testing.T) {
	a := NewCyclicPerm(New(5))
	b := NewCyclicPerm(New(6))
	same := 0
	for i := 0; i < 100; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x == y {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 steps", same)
	}
}

func TestCyclicPermShardPartition(t *testing.T) {
	const n = 4
	const perShard = 5000
	base := NewCyclicPerm(New(9))

	shardSeen := make(map[uint32]int)
	for i := 0; i < n; i++ {
		s := NewCyclicPerm(New(9)).Shard(i, n)
		for j := 0; j < perShard; j++ {
			addr, done := s.Next()
			if done {
				t.Fatal("shard cycle ended early")
			}
			if prev, dup := shardSeen[addr]; dup {
				t.Fatalf("address %d emitted by shards %d and %d", addr, prev, i)
			}
			shardSeen[addr] = i
		}
	}

	// The union of the shards' first perShard addresses must cover the
	// unsharded walk's first n*perShard-14 addresses (up to 14 group
	// elements in the whole cycle are skipped because they exceed 2^32,
	// which can shift shard/global alignment by at most that much).
	covered := 0
	total := n*perShard - 14
	for i := 0; i < total; i++ {
		addr, _ := base.Next()
		if _, ok := shardSeen[addr]; ok {
			covered++
		}
	}
	if covered < total-14 {
		t.Fatalf("shards cover only %d/%d of the unsharded prefix", covered, total)
	}
}

func TestCyclicPermShardIdentity(t *testing.T) {
	a := NewCyclicPerm(New(3))
	b := NewCyclicPerm(New(3)).Shard(0, 1)
	for i := 0; i < 100; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x != y {
			t.Fatal("Shard(0,1) must be the identity sharding")
		}
	}
}

func TestFeistelBijectionSmall(t *testing.T) {
	for _, n := range []uint64{2, 3, 10, 100, 1000, 4096, 5000} {
		f := NewFeistelPerm(n, New(n))
		seen := make([]bool, n)
		for i := uint64(0); i < n; i++ {
			x := f.Apply(i)
			if x >= n {
				t.Fatalf("n=%d: Apply(%d) = %d out of range", n, i, x)
			}
			if seen[x] {
				t.Fatalf("n=%d: value %d produced twice", n, x)
			}
			seen[x] = true
			if inv := f.Invert(x); inv != i {
				t.Fatalf("n=%d: Invert(Apply(%d)) = %d", n, i, inv)
			}
		}
	}
}

func TestFeistelRoundTripQuick(t *testing.T) {
	f := NewFeistelPerm(1<<32, New(77))
	prop := func(i uint32) bool {
		x := f.Apply(uint64(i))
		return x < 1<<32 && f.Invert(x) == uint64(i)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFeistelDeterministic(t *testing.T) {
	a := NewFeistelPerm(1<<20, New(4))
	b := NewFeistelPerm(1<<20, New(4))
	for i := uint64(0); i < 1000; i++ {
		if a.Apply(i) != b.Apply(i) {
			t.Fatal("same seed should give same permutation")
		}
	}
}

func TestFeistelPanicsOutOfRange(t *testing.T) {
	f := NewFeistelPerm(100, New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Apply out of range should panic")
		}
	}()
	f.Apply(100)
}

func TestFeistelTinyRange(t *testing.T) {
	f := NewFeistelPerm(1, New(1)) // clamps to 2
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	if f.Apply(0) == f.Apply(1) {
		t.Fatal("degenerate permutation")
	}
}

func BenchmarkCyclicPermNext(b *testing.B) {
	c := NewCyclicPerm(New(1))
	for i := 0; i < b.N; i++ {
		_, _ = c.Next()
	}
}

func BenchmarkFeistelApply(b *testing.B) {
	f := NewFeistelPerm(1<<32, New(1))
	for i := 0; i < b.N; i++ {
		_ = f.Apply(uint64(i) & 0xffffffff)
	}
}
