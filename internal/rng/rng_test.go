package rng

import (
	"math"
	"testing"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: same seed diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestDeriveIsStable(t *testing.T) {
	root := New(7)
	a := root.Derive("campaigns")
	b := root.Derive("campaigns")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Derive with same label should be reproducible")
		}
	}
}

func TestDeriveIndependentLabels(t *testing.T) {
	root := New(7)
	a := root.Derive("alpha")
	b := root.Derive("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("labels alpha/beta produced %d/100 identical values", same)
	}
}

func TestDeriveDoesNotConsumeParentState(t *testing.T) {
	a := New(99)
	b := New(99)
	_ = a.Derive("child") // must not advance a's stream
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive consumed parent state")
	}
}

func TestDeriveN(t *testing.T) {
	root := New(5)
	a := root.DeriveN("c", 1)
	b := root.DeriveN("c", 2)
	c := root.DeriveN("c", 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("DeriveN with different indices should differ")
	}
	a2 := c.Uint64()
	_ = a2
	// reproducibility
	x := root.DeriveN("c", 7)
	y := root.DeriveN("c", 7)
	for i := 0; i < 50; i++ {
		if x.Uint64() != y.Uint64() {
			t.Fatal("DeriveN not reproducible")
		}
	}
}

func TestUint32Range(t *testing.T) {
	r := New(3)
	var sawHigh, sawLow bool
	for i := 0; i < 10000; i++ {
		v := r.Uint32()
		if v > 1<<31 {
			sawHigh = true
		} else {
			sawLow = true
		}
	}
	if !sawHigh || !sawLow {
		t.Fatal("Uint32 does not cover both halves of the range")
	}
}

func TestBool(t *testing.T) {
	r := New(11)
	n := 100000
	count := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			count++
		}
	}
	p := float64(count) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %.4f, want ~0.30", p)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) must be false")
	}
}

func TestLogNormal(t *testing.T) {
	r := New(13)
	n := 200000
	sumLog := 0.0
	for i := 0; i < n; i++ {
		v := r.LogNormal(2.0, 0.5)
		if v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
		sumLog += math.Log(v)
	}
	mean := sumLog / float64(n)
	if math.Abs(mean-2.0) > 0.02 {
		t.Fatalf("log-mean = %.4f, want ~2.0", mean)
	}
}

func TestPareto(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1.5, 2.0)
		if v < 1.5 {
			t.Fatalf("Pareto(1.5, 2) returned %v < xm", v)
		}
	}
}

func TestPoissonSmallLambda(t *testing.T) {
	r := New(19)
	n := 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Poisson(3.5)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-3.5) > 0.05 {
		t.Fatalf("Poisson(3.5) mean = %.4f", mean)
	}
}

func TestPoissonLargeLambda(t *testing.T) {
	r := New(23)
	n := 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Poisson(500)
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-500) > 2 {
		t.Fatalf("Poisson(500) mean = %.2f", mean)
	}
}

func TestPoissonEdge(t *testing.T) {
	r := New(29)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive lambda must be 0")
	}
}

func TestExp(t *testing.T) {
	r := New(31)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(4.0)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.25) > 0.005 {
		t.Fatalf("Exp(4) mean = %.4f, want ~0.25", mean)
	}
	if !math.IsInf(r.Exp(0), 1) {
		t.Fatal("Exp(0) must be +Inf")
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(37)
	w := NewWeightedChoice([]float64{1, 2, 7})
	n := 100000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	want := []float64{0.1, 0.2, 0.7}
	for i, c := range counts {
		p := float64(c) / float64(n)
		if math.Abs(p-want[i]) > 0.01 {
			t.Fatalf("category %d frequency %.4f, want ~%.1f", i, p, want[i])
		}
	}
}

func TestWeightedChoiceEdge(t *testing.T) {
	r := New(41)
	empty := NewWeightedChoice(nil)
	if empty.Sample(r) != 0 {
		t.Fatal("empty sampler must return 0")
	}
	zero := NewWeightedChoice([]float64{0, 0, 0})
	if zero.Sample(r) != 0 {
		t.Fatal("all-zero sampler must return 0")
	}
	single := NewWeightedChoice([]float64{5})
	for i := 0; i < 10; i++ {
		if single.Sample(r) != 0 {
			t.Fatal("single-category sampler must return 0")
		}
	}
	if single.Len() != 1 {
		t.Fatal("Len mismatch")
	}
	// Zero-weight categories must never be sampled.
	gap := NewWeightedChoice([]float64{1, 0, 1})
	for i := 0; i < 10000; i++ {
		if gap.Sample(r) == 1 {
			t.Fatal("zero-weight category was sampled")
		}
	}
}

func TestStdlibIntegration(t *testing.T) {
	// The embedded *rand.Rand must work: Perm, Shuffle, Intn.
	r := New(43)
	p := r.Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm(10) invalid: %v", p)
		}
		seen[v] = true
	}
	for i := 0; i < 100; i++ {
		if v := r.Intn(5); v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkDerive(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Derive("label")
	}
}

func BenchmarkWeightedChoice(b *testing.B) {
	r := New(1)
	w := NewWeightedChoice([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Sample(r)
	}
}
