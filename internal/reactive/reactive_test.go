package reactive

import (
	"sync"
	"testing"

	"github.com/synscan/synscan/internal/inetmodel"
	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/telescope"
)

func passive(t testing.TB) *telescope.Telescope {
	t.Helper()
	tel, err := telescope.New(telescope.Config{
		Blocks: []telescope.PartialBlock{
			{Prefix: inetmodel.MustPrefix("10.1.0.0/20"), MonitoredFraction: 0.5},
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tel
}

func syn(tel *telescope.Telescope, ts int64, src uint32, sp, dp uint16) packet.Probe {
	return packet.Probe{Time: ts, Src: src, Dst: tel.At(0), SrcPort: sp,
		DstPort: dp, Seq: 1000, Flags: packet.FlagSYN, TTL: 64}
}

func TestRespondAndPhase2(t *testing.T) {
	tel := passive(t)
	rt := New(tel, Policy{Seed: 7})
	reg := obs.NewRegistry()
	rt.SetMetrics(reg)

	p := syn(tel, 100, 0xC0A80001, 40000, 80)
	d := rt.Observe(&p)
	if d.Reason != telescope.Accepted || d.Phase != 1 || !d.Responded {
		t.Fatalf("scout SYN: %+v", d)
	}
	// The SYN-ACK mirrors the connection and acknowledges seq+1.
	if d.Resp.Src != p.Dst || d.Resp.Dst != p.Src ||
		d.Resp.SrcPort != p.DstPort || d.Resp.DstPort != p.SrcPort {
		t.Fatalf("SYN-ACK tuple not mirrored: %+v", d.Resp)
	}
	if !d.Resp.IsSYNACK() || d.Resp.Ack != p.Seq+1 {
		t.Fatalf("SYN-ACK flags/ack wrong: %+v", d.Resp)
	}

	// The handshake-completing ACK would be dropped passively, but is
	// phase-two here.
	ack := p
	ack.Time = 200
	ack.Seq, ack.Ack = p.Seq+1, d.Resp.Seq+1
	ack.Flags = packet.FlagACK
	if dd := rt.Observe(&ack); dd.Reason != telescope.Accepted || dd.Phase != 2 {
		t.Fatalf("handshake ACK: %+v", dd)
	}

	// The payload push too.
	push := ack
	push.Time = 300
	push.Flags = packet.FlagPSH | packet.FlagACK
	push.Payload = []byte("GET / HTTP/1.1\r\n")
	if dd := rt.Observe(&push); dd.Reason != telescope.Accepted || dd.Phase != 2 {
		t.Fatalf("payload push: %+v", dd)
	}

	// A stranger's ACK stays dropped.
	other := ack
	other.SrcPort = 999
	if dd := rt.Observe(&other); dd.Reason != telescope.DropNotSYN || dd.Phase != 0 {
		t.Fatalf("uninvited ACK: %+v", dd)
	}

	st := rt.Stats()
	if st.Responded != 1 || st.Phase2 != 2 || st.Payloads != 1 {
		t.Fatalf("stats %+v", st)
	}
	snap := reg.Snapshot()
	if snap.Counters["reactive.synacks.sent"] != 1 ||
		snap.Counters["reactive.phase2.accepted"] != 2 ||
		snap.Counters["reactive.phase2.payloads"] != 1 {
		t.Fatalf("metrics %+v", snap.Counters)
	}
	// Passive accounting stays truthful: 3 accepted (1 SYN + 2 phase-two),
	// 1 not-syn drop.
	ts := tel.Stats()
	if ts.Accepted != 3 || ts.NotSYN != 1 {
		t.Fatalf("telescope stats %+v", ts)
	}
}

func TestInviteExpiry(t *testing.T) {
	tel := passive(t)
	rt := New(tel, Policy{Seed: 7, StateTTL: 1e9})
	p := syn(tel, 0, 0xC0A80001, 40000, 80)
	if d := rt.Observe(&p); !d.Responded {
		t.Fatal("no response")
	}
	late := p
	late.Time = 2e9 // past the 1s TTL
	late.Flags = packet.FlagACK
	late.Ack = 1
	if d := rt.Observe(&late); d.Reason != telescope.DropNotSYN {
		t.Fatalf("expired handshake admitted: %+v", d)
	}
	if st := rt.Stats(); st.Expired != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPortAllowlist(t *testing.T) {
	tel := passive(t)
	rt := New(tel, Policy{Seed: 7, Ports: []uint16{80, 8080}})
	p := syn(tel, 0, 0xC0A80001, 40000, 443)
	d := rt.Observe(&p)
	if d.Reason != telescope.Accepted || d.Phase != 1 {
		t.Fatalf("SYN off-allowlist must still be accepted passively: %+v", d)
	}
	if d.Responded {
		t.Fatal("responded outside the allowlist")
	}
	p2 := syn(tel, 0, 0xC0A80001, 40001, 8080)
	if d := rt.Observe(&p2); !d.Responded {
		t.Fatal("no response on allowlisted port")
	}
	if st := rt.Stats(); st.PolicyDenied != 1 || st.Responded != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRateLimit(t *testing.T) {
	tel := passive(t)
	rt := New(tel, Policy{Seed: 7, RatePerSec: 1, Burst: 1})
	p1 := syn(tel, 0, 0xC0A80001, 40000, 80)
	p2 := syn(tel, 1000, 0xC0A80002, 40000, 80)
	p3 := syn(tel, 1e9, 0xC0A80003, 40000, 80)
	if d := rt.Observe(&p1); !d.Responded {
		t.Fatal("first SYN not answered")
	}
	if d := rt.Observe(&p2); d.Responded {
		t.Fatal("bucket should be empty")
	}
	if d := rt.Observe(&p3); !d.Responded {
		t.Fatal("bucket should have refilled after 1s")
	}
	if st := rt.Stats(); st.RateLimited != 1 || st.Responded != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDeterministicResponses(t *testing.T) {
	mk := func() []packet.Probe {
		tel := passive(t)
		rt := New(tel, Policy{Seed: 42, RatePerSec: 100})
		var out []packet.Probe
		for i := 0; i < 50; i++ {
			p := syn(tel, int64(i)*1e7, 0xC0A80000+uint32(i), uint16(40000+i), 80)
			if d := rt.Observe(&p); d.Responded {
				out = append(out, d.Resp)
			}
		}
		return out
	}
	a, b := mk(), mk()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("response streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ap, bp := a[i], b[i]
		if ap.Seq != bp.Seq || ap.Src != bp.Src || ap.Ack != bp.Ack {
			t.Fatalf("response %d differs: %+v vs %+v", i, ap, bp)
		}
	}
}

func TestStateEviction(t *testing.T) {
	tel := passive(t)
	rt := New(tel, Policy{Seed: 7, MaxState: 2})
	for i := 0; i < 3; i++ {
		p := syn(tel, int64(i), 0xC0A80001, uint16(40000+i), 80)
		if d := rt.Observe(&p); !d.Responded {
			t.Fatalf("SYN %d not answered", i)
		}
	}
	if st := rt.Stats(); st.Evicted != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The evicted (oldest) invitation no longer admits its handshake.
	old := syn(tel, 10, 0xC0A80001, 40000, 80)
	old.Flags = packet.FlagACK
	if d := rt.Observe(&old); d.Phase == 2 {
		t.Fatal("evicted invitation still live")
	}
	// The newest one does.
	fresh := syn(tel, 10, 0xC0A80001, 40002, 80)
	fresh.Flags = packet.FlagACK
	if d := rt.Observe(&fresh); d.Phase != 2 {
		t.Fatalf("fresh invitation dead: %+v", d)
	}
}

// TestConcurrentObserve exercises the responder's shared state under the
// race detector: many goroutines, overlapping tuples, counters conserved.
func TestConcurrentObserve(t *testing.T) {
	tel := passive(t)
	rt := New(tel, Policy{Seed: 7, RatePerSec: 1e6})
	rt.SetMetrics(obs.NewRegistry())
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p := syn(tel, int64(i)*1e6, 0xC0A80000+uint32(w), uint16(40000+i%64), 80)
				d := rt.Observe(&p)
				if d.Responded {
					ack := p
					ack.Flags = packet.FlagACK
					ack.Ack = d.Resp.Seq + 1
					rt.Observe(&ack)
				}
			}
		}(w)
	}
	wg.Wait()
	st := rt.Stats()
	if st.Responded == 0 || st.Phase2 == 0 {
		t.Fatalf("no reactive traffic under concurrency: %+v", st)
	}
	ts := tel.Stats()
	if got := ts.Accepted; got != workers*perWorker+st.Phase2 {
		t.Fatalf("accepted %d, want %d SYNs + %d phase-two", got, workers*perWorker, st.Phase2)
	}
}
