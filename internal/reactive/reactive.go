// Package reactive turns the passive telescope into a Spoki-style reactive
// telescope: it answers arriving SYNs with synthesized SYN-ACKs so that the
// second phase of two-phase scanners — the stateful handshake-and-payload
// connections that follow an irregular-ISN scout probe — becomes visible.
//
// A passive darknet only ever sees the first packet of a scan. Spoki
// (PAPERS.md) showed that a large scanner ecosystem probes in two phases:
// a stateless scout (masscan-style, ISN derived from the target) elicits a
// SYN-ACK, and seconds later the same source returns with a full TCP
// handshake from its kernel stack (regular ISN) and pushes an application
// payload. The Telescope here wraps the passive telescope's pure Check
// classifier, keeps a small table of the handshakes it has invited, and
// admits the phase-two ACK/PSH-ACK segments the passive SYN filter would
// drop — while keeping the underlying drop accounting truthful via Record.
//
// Everything is deterministic: responder ISNs are keyed off the policy seed
// and the connection 4-tuple, the rate limiter runs on the virtual packet
// clock, and state eviction is strictly FIFO. The type is safe for
// concurrent use so sharded ingest paths can share one responder.
package reactive

import (
	"sync"

	"github.com/synscan/synscan/internal/obs"
	"github.com/synscan/synscan/internal/packet"
	"github.com/synscan/synscan/internal/telescope"
)

// Policy configures the responder.
type Policy struct {
	// RatePerSec caps synthesized SYN-ACKs per second (token bucket on the
	// virtual clock). Zero means unlimited — every eligible SYN is answered.
	RatePerSec float64
	// Burst is the token-bucket depth; it defaults to max(1, RatePerSec).
	Burst int
	// Ports restricts responses to an allowlist of destination ports.
	// Empty answers on every port the telescope accepts.
	Ports []uint16
	// Seed keys the responder's ISNs, making response streams reproducible.
	Seed uint64
	// StateTTL is how long (ns) an invited handshake stays acceptable.
	// Defaults to 30 virtual seconds, Spoki's reassembly horizon.
	StateTTL int64
	// MaxState caps tracked handshake tuples; the oldest invitation is
	// evicted first. Defaults to 65536.
	MaxState int
}

// DefaultPolicy answers every port at 1000 SYN-ACKs/s — roughly the
// provisioning a real reactive deployment needs to keep up with a mid-size
// telescope's ingress.
func DefaultPolicy(seed uint64) Policy {
	return Policy{RatePerSec: 1000, Seed: seed}
}

// Disposition is the responder's verdict on one arriving packet.
type Disposition struct {
	// Reason is the effective ingress classification: Accepted for both
	// phase-one SYNs and phase-two segments of live handshakes, otherwise
	// the passive telescope's drop reason.
	Reason telescope.DropReason
	// Phase is 1 for an accepted SYN, 2 for an accepted post-response
	// segment, 0 for a drop.
	Phase int
	// Responded reports that a SYN-ACK was synthesized for this packet.
	Responded bool
	// Resp is the synthesized SYN-ACK when Responded is set. Its Time
	// equals the probe's arrival time; callers model the return path delay.
	Resp packet.Probe
}

// tuple keys responder state by the full connection 4-tuple.
type tuple struct {
	src, dst uint32
	sp, dp   uint16
}

// invite is one outstanding synthesized handshake.
type invite struct {
	isn    uint32 // responder's ISN (the scanner ACKs isn+1)
	expiry int64
}

// Stats counts the responder's activity.
type Stats struct {
	// Responded counts synthesized SYN-ACKs.
	Responded uint64
	// Phase2 counts accepted post-response segments.
	Phase2 uint64
	// Payloads counts accepted phase-two segments carrying payload bytes.
	Payloads uint64
	// RateLimited counts eligible SYNs that found the bucket empty.
	RateLimited uint64
	// PolicyDenied counts accepted SYNs on ports outside the allowlist.
	PolicyDenied uint64
	// Evicted counts invitations dropped by the MaxState cap.
	Evicted uint64
	// Expired counts invitations that lapsed before phase two arrived.
	Expired uint64
}

// Telescope is a reactive wrapper around a passive telescope. Concurrent
// Observe calls are serialized internally.
type Telescope struct {
	base *telescope.Telescope
	pol  Policy

	mu       sync.Mutex
	allow    [1024]uint64 // port allowlist bitmap; allowAll short-circuits
	allowAll bool
	state    map[tuple]invite
	queue    []tuple // FIFO insertion order for deterministic eviction
	qHead    int
	tokens   float64
	lastRef  int64
	stats    Stats
	met      *metrics
}

type metrics struct {
	responded   *obs.Counter
	phase2      *obs.Counter
	payloads    *obs.Counter
	rateLimited *obs.Counter
	policy      *obs.Counter
	evicted     *obs.Counter
	expired     *obs.Counter
	stateSize   *obs.Gauge
}

// New wraps a passive telescope with the responder policy.
func New(base *telescope.Telescope, pol Policy) *Telescope {
	if pol.StateTTL <= 0 {
		pol.StateTTL = 30 * 1e9
	}
	if pol.MaxState <= 0 {
		pol.MaxState = 1 << 16
	}
	if pol.Burst <= 0 {
		pol.Burst = int(pol.RatePerSec)
		if pol.Burst < 1 {
			pol.Burst = 1
		}
	}
	t := &Telescope{
		base:  base,
		pol:   pol,
		state: make(map[tuple]invite),
	}
	t.tokens = float64(pol.Burst)
	t.allowAll = len(pol.Ports) == 0
	for _, p := range pol.Ports {
		t.allow[p>>6] |= 1 << (p & 63)
	}
	return t
}

// SetMetrics attaches an observability registry: the responder reports under
// reactive.* alongside the wrapped telescope's counters. A nil registry
// detaches.
func (t *Telescope) SetMetrics(reg *obs.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if reg == nil {
		t.met = nil
		return
	}
	t.met = &metrics{
		responded:   reg.Counter("reactive.synacks.sent"),
		phase2:      reg.Counter("reactive.phase2.accepted"),
		payloads:    reg.Counter("reactive.phase2.payloads"),
		rateLimited: reg.Counter("reactive.drop.ratelimit"),
		policy:      reg.Counter("reactive.drop.policy"),
		evicted:     reg.Counter("reactive.state.evicted"),
		expired:     reg.Counter("reactive.state.expired"),
		stateSize:   reg.Gauge("reactive.state.size"),
	}
}

// Base returns the wrapped passive telescope.
func (t *Telescope) Base() *telescope.Telescope { return t.base }

// Stats returns a copy of the responder counters.
func (t *Telescope) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

func (t *Telescope) portAllowed(p uint16) bool {
	return t.allowAll || t.allow[p>>6]&(1<<(p&63)) != 0
}

// respISN derives the responder's deterministic ISN for a connection.
func respISN(seed uint64, k tuple) uint32 {
	x := seed ^ uint64(k.src)<<32 ^ uint64(k.dst)
	x ^= uint64(k.sp)<<48 | uint64(k.dp)<<16
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return uint32(x ^ (x >> 31))
}

// Observe classifies one arriving packet, possibly synthesizing a SYN-ACK,
// and keeps both the responder's and the wrapped telescope's accounting.
func (t *Telescope) Observe(p *packet.Probe) Disposition {
	r := t.base.Check(p)
	t.mu.Lock()
	defer t.mu.Unlock()
	switch r {
	case telescope.Accepted:
		// Phase one: a SYN the passive telescope would record anyway.
		d := Disposition{Reason: telescope.Accepted, Phase: 1}
		t.respond(p, &d)
		t.base.Record(telescope.Accepted)
		return d
	case telescope.DropNotSYN:
		// The passive filter drops it; accept it as phase two if it
		// belongs to a handshake we invited.
		k := tuple{p.Src, p.Dst, p.SrcPort, p.DstPort}
		if inv, ok := t.state[k]; ok && p.IsTCP() && !p.IsSYNACK() {
			if p.Time <= inv.expiry {
				t.stats.Phase2++
				if p.HasPayload() {
					t.stats.Payloads++
				}
				if t.met != nil {
					t.met.phase2.Inc()
					if p.HasPayload() {
						t.met.payloads.Inc()
					}
				}
				t.base.Record(telescope.Accepted)
				return Disposition{Reason: telescope.Accepted, Phase: 2}
			}
			delete(t.state, k)
			t.stats.Expired++
			if t.met != nil {
				t.met.expired.Inc()
				t.met.stateSize.Set(int64(len(t.state)))
			}
		}
		t.base.Record(telescope.DropNotSYN)
		return Disposition{Reason: telescope.DropNotSYN}
	default:
		t.base.Record(r)
		return Disposition{Reason: r}
	}
}

// respond decides whether to answer an accepted SYN and, if so, synthesizes
// the SYN-ACK and registers the invitation. Caller holds t.mu.
func (t *Telescope) respond(p *packet.Probe, d *Disposition) {
	if !t.portAllowed(p.DstPort) {
		t.stats.PolicyDenied++
		if t.met != nil {
			t.met.policy.Inc()
		}
		return
	}
	if t.pol.RatePerSec > 0 {
		if p.Time > t.lastRef {
			t.tokens += float64(p.Time-t.lastRef) * t.pol.RatePerSec / 1e9
			if max := float64(t.pol.Burst); t.tokens > max {
				t.tokens = max
			}
			t.lastRef = p.Time
		}
		if t.tokens < 1 {
			t.stats.RateLimited++
			if t.met != nil {
				t.met.rateLimited.Inc()
			}
			return
		}
		t.tokens--
	}
	k := tuple{p.Src, p.Dst, p.SrcPort, p.DstPort}
	if _, exists := t.state[k]; !exists {
		t.evictFor(p.Time)
		t.queue = append(t.queue, k)
	}
	isn := respISN(t.pol.Seed, k)
	t.state[k] = invite{isn: isn, expiry: p.Time + t.pol.StateTTL}
	t.stats.Responded++
	if t.met != nil {
		t.met.responded.Inc()
		t.met.stateSize.Set(int64(len(t.state)))
	}
	d.Responded = true
	d.Resp = packet.Probe{
		Time:    p.Time,
		Src:     p.Dst,
		Dst:     p.Src,
		SrcPort: p.DstPort,
		DstPort: p.SrcPort,
		Seq:     isn,
		Ack:     p.Seq + 1,
		TTL:     64,
		Flags:   packet.FlagSYN | packet.FlagACK,
		Window:  65535,
	}
}

// evictFor makes room for one insertion: first sweeps expired invitations
// from the FIFO front, then force-evicts the oldest if still at capacity.
// Caller holds t.mu.
func (t *Telescope) evictFor(now int64) {
	for t.qHead < len(t.queue) && len(t.state) >= t.pol.MaxState {
		k := t.queue[t.qHead]
		t.qHead++
		inv, ok := t.state[k]
		if !ok {
			continue // re-invited later or already expired out
		}
		delete(t.state, k)
		if inv.expiry < now {
			t.stats.Expired++
			if t.met != nil {
				t.met.expired.Inc()
			}
		} else {
			t.stats.Evicted++
			if t.met != nil {
				t.met.evicted.Inc()
			}
		}
	}
	// Compact the consumed queue prefix once it dominates the slice.
	if t.qHead > 1024 && t.qHead*2 > len(t.queue) {
		t.queue = append(t.queue[:0], t.queue[t.qHead:]...)
		t.qHead = 0
	}
}
