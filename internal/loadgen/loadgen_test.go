package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/enrich"
	"github.com/synscan/synscan/internal/obs"
)

func TestRunBasics(t *testing.T) {
	var hits atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Clients:  8,
		Requests: 200,
		Mix:      StandardMix(),
		Seed:     42,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 200 {
		t.Fatalf("Requests = %d, want 200", res.Requests)
	}
	if hits.Load() != 200 {
		t.Fatalf("server saw %d hits, want 200", hits.Load())
	}
	if res.Status[200] != 200 {
		t.Fatalf("Status[200] = %d, want 200", res.Status[200])
	}
	if res.Errors != 0 || res.Rejected != 0 {
		t.Fatalf("unexpected errors=%d rejected=%d", res.Errors, res.Rejected)
	}
	if res.P50Ms <= 0 || res.P99Ms < res.P50Ms || res.MaxMs < res.P99Ms {
		t.Fatalf("quantiles out of order: p50=%v p99=%v max=%v", res.P50Ms, res.P99Ms, res.MaxMs)
	}
	if res.Throughput <= 0 {
		t.Fatalf("Throughput = %v, want > 0", res.Throughput)
	}
	var total uint64
	for _, n := range res.ByName {
		total += n
	}
	if total != 200 {
		t.Fatalf("ByName sums to %d, want 200", total)
	}
	// The hot entry (weight 4) should dominate the quantile entry (weight 1).
	if res.ByName["scans-hot"] <= res.ByName["query-quantile"] {
		t.Fatalf("weights not respected: hot=%d quantile=%d",
			res.ByName["scans-hot"], res.ByName["query-quantile"])
	}
	if got := reg.Snapshot().Counter("loadgen.requests"); got != 200 {
		t.Fatalf("loadgen.requests = %d, want 200", got)
	}
}

func TestRunCountsRejectionsAndRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/query") {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Clients:  4,
		Requests: 120,
		Mix:      StandardMix(),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("expected some 429s to be counted as Rejected")
	}
	if !res.RetryAfterSeen {
		t.Fatal("Retry-After header was sent but not observed")
	}
	if res.Errors != 0 {
		t.Fatalf("429s must not count as errors, got Errors=%d", res.Errors)
	}
	if err := res.Check(SLO{MaxRejectShare: 0.0001}); err == nil {
		t.Fatal("SLO with tiny MaxRejectShare should fail")
	}
}

func TestRunCountsServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	res, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Clients: 2, Requests: 20,
		Mix: HotMix(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 20 {
		t.Fatalf("Errors = %d, want 20 (all 500s)", res.Errors)
	}
	if err := res.Check(SLO{MaxErrorRate: 0.01}); err == nil {
		t.Fatal("SLO with MaxErrorRate should fail when everything 500s")
	}
}

func TestRunDurationMode(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	start := time.Now()
	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Clients:  4,
		Duration: 150 * time.Millisecond,
		Mix:      HotMix(),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("duration mode ran %v, want ~150ms", el)
	}
	if res.Requests == 0 {
		t.Fatal("duration mode completed zero requests")
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Clients: 1, Requests: 1, Mix: HotMix()}); err == nil {
		t.Fatal("missing BaseURL should error")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Requests: 1}); err == nil {
		t.Fatal("empty mix should error")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x", Mix: HotMix()}); err == nil {
		t.Fatal("neither Requests nor Duration should error")
	}
}

func TestSLOCheck(t *testing.T) {
	res := Result{
		Requests: 1000, P99Ms: 45, Throughput: 800,
		Errors: 5, Rejected: 100,
	}
	if err := res.Check(SLO{}); err != nil {
		t.Fatalf("empty SLO must pass: %v", err)
	}
	if err := res.Check(SLO{MaxP99: 50 * time.Millisecond, MaxErrorRate: 0.01, MaxRejectShare: 0.2, MinThroughput: 500}); err != nil {
		t.Fatalf("satisfied SLO must pass: %v", err)
	}
	err := res.Check(SLO{MaxP99: 10 * time.Millisecond, MinThroughput: 900})
	if err == nil {
		t.Fatal("violated SLO must fail")
	}
	// Both violations should be reported, not just the first.
	if msg := err.Error(); !strings.Contains(msg, "p99") || !strings.Contains(msg, "throughput") {
		t.Fatalf("want both violations in error, got: %v", msg)
	}
}

func TestFixtureArchive(t *testing.T) {
	path := t.TempDir() + "/fixture.syna"
	const n = 500
	if err := WriteFixtureArchive(path, n, 9); err != nil {
		t.Fatal(err)
	}
	rd, err := archive.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if rd.NumScans() != n {
		t.Fatalf("NumScans = %d, want %d", rd.NumScans(), n)
	}
	var got uint64
	years := map[int]bool{}
	err = rd.Scans(archive.Filter{}, func(sc *core.Scan, _ enrich.Origin) {
		got++
		years[time.Unix(0, sc.Start).UTC().Year()] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("scanned %d, want %d", got, n)
	}
	if len(years) < 5 {
		t.Fatalf("fixture spans %d years, want the decade", len(years))
	}
	// Determinism: the same seed writes byte-identical archives.
	path2 := t.TempDir() + "/fixture2.syna"
	if err := WriteFixtureArchive(path2, n, 9); err != nil {
		t.Fatal(err)
	}
	b1, b2 := mustRead(t, path), mustRead(t, path2)
	if string(b1) != string(b2) {
		t.Fatal("fixture archives with the same seed differ")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
