package loadgen

import "fmt"

// StandardMix is the default production-shaped request mix: a hot identical
// query (exercises the result cache and, under concurrency, singleflight
// collapse), cache-busting scan reads (every request is a fresh archive
// walk), a pushdown-pruned POST /v1/query, a full-scan decade quantile, the
// deprecated fixed-parameter table endpoints, and the stats page. Weights
// roughly follow a dashboard-plus-analysts profile: mostly cheap repeated
// reads, a steady trickle of expensive novel queries.
func StandardMix() []Request {
	return []Request{
		{
			Name:   "scans-hot",
			Path:   "/v1/scans?year=2020&port=443&limit=50",
			Weight: 4,
		},
		{
			Name: "scans-cold",
			PathFn: func(i uint64) string {
				// Vary year and minrate so consecutive requests never share a
				// canonical key: each one misses the cache and walks blocks.
				return fmt.Sprintf("/v1/scans?year=%d&minrate=%d&limit=100",
					2015+i%10, 100+i%89)
			},
			Weight: 2,
		},
		{
			Name: "query-pruned",
			Path: "/v1/query",
			Body: func(i uint64) []byte {
				return []byte(fmt.Sprintf(
					`{"where":{"and":[{"field":"year","eq":%d},{"field":"port","in":[443]}]},"aggs":[{"op":"count"}]}`,
					2015+i%10))
			},
			Weight: 2,
		},
		{
			Name: "query-quantile",
			Path: "/v1/query",
			Body: func(i uint64) []byte {
				// No filter: a full-decade scan the zone maps cannot prune.
				return []byte(`{"aggs":[{"op":"quantile","field":"rate_pps","qs":[0.5,0.9,0.99]}]}`)
			},
			Weight: 1,
		},
		{
			Name:   "tables-legacy",
			Path:   "/v1/tables/ports?year=2021&top=10",
			Weight: 2,
		},
		{
			Name:   "stats",
			Path:   "/v1/stats",
			Weight: 1,
		},
	}
}

// HotMix is a single identical expensive query repeated by every client —
// the worst case for naive servers (a thundering herd on one cache key) and
// the best case for singleflight, which should collapse all concurrent
// copies into one archive walk.
func HotMix() []Request {
	return []Request{{
		Name: "query-hot",
		Path: "/v1/query",
		Body: func(uint64) []byte {
			return []byte(`{"group_by":["tool"],"aggs":[{"op":"count"},{"op":"quantile","field":"rate_pps","qs":[0.5,0.99]}]}`)
		},
	}}
}
