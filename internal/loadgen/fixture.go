package loadgen

import (
	"sort"
	"time"

	"github.com/synscan/synscan/internal/archive"
	"github.com/synscan/synscan/internal/core"
	"github.com/synscan/synscan/internal/rng"
	"github.com/synscan/synscan/internal/tools"
)

// FixtureScans builds n deterministic closed flows spread over the 2015–2024
// decade with realistic port, tool, and rate diversity, time-sorted so the
// written archive carries tight per-block year zone maps (the layout a
// compacted store produces — StandardMix's pruned queries then actually
// prune).
func FixtureScans(n int, seed uint64) []*core.Scan {
	r := rng.New(seed).Derive("loadgen-fixture")
	ports := []uint16{22, 23, 80, 443, 445, 3389, 5060, 8080}
	tls := []tools.Tool{tools.ToolZMap, tools.ToolMasscan, tools.ToolMirai, tools.ToolUnicorn}
	out := make([]*core.Scan, n)
	for i := 0; i < n; i++ {
		year := 2015 + i%10
		start := time.Date(year, time.January, 1, 0, 0, 0, 0, time.UTC).UnixNano() +
			int64(r.Intn(300*24))*int64(time.Hour)
		out[i] = &core.Scan{
			Src:          uint32(r.Intn(1 << 30)),
			Start:        start,
			End:          start + int64(1+r.Intn(120))*int64(time.Minute),
			Packets:      uint64(50 + r.Intn(5000)),
			DistinctDsts: 20 + r.Intn(1000),
			Ports:        []uint16{ports[r.Intn(len(ports))]},
			Tool:         tls[r.Intn(len(tls))],
			Qualified:    i%3 != 0,
			RatePPS:      float64(100 + r.Intn(100000)),
			Coverage:     float64(r.Intn(1000)) / 1000,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// WriteFixtureArchive writes n fixture scans as one sealed archive at path,
// ready for synserve to load. It is the store behind cmd/synload's
// self-serving mode and the CI load-smoke step.
func WriteFixtureArchive(path string, n int, seed uint64) error {
	w, err := archive.Create(path, archive.WriterConfig{TelescopeSize: 65536})
	if err != nil {
		return err
	}
	for _, sc := range FixtureScans(n, seed) {
		if err := w.Add(sc); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
